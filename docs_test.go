package pdht_test

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The docs gate: the markdown front door must not rot. TestDocsLinks
// verifies every relative link in the documentation set points at a file
// that exists, and TestReadmeQuickstartIsCompiled pins the README's
// quickstart code block byte-for-byte to examples/readme/main.go — which
// the examples CI job builds and vets, so "the quickstart compiles as
// written" is machine-checked, not aspirational. The docs CI job runs
// exactly these tests.

// docsFiles is the documentation set under the link check.
var docsFiles = []string{"README.md", "DESIGN.md", "EXPERIMENTS.md", "PAPERS.md", "PAPER.md", "ROADMAP.md", "CHANGES.md"}

// mdLink matches inline markdown links [text](target). Reference-style
// links are not used in this repo.
var mdLink = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

func TestDocsLinks(t *testing.T) {
	for _, doc := range docsFiles {
		body, err := os.ReadFile(doc)
		if err != nil {
			t.Fatalf("documentation file missing: %v", err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(body), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") {
				continue // external; CI has no network guarantee
			}
			target, _, _ = strings.Cut(target, "#")
			if target == "" {
				continue // pure fragment, same file
			}
			if _, err := os.Stat(filepath.FromSlash(target)); err != nil {
				t.Errorf("%s links to %q, which does not exist", doc, m[1])
			}
		}
	}
}

func TestReadmeQuickstartIsCompiled(t *testing.T) {
	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	// The first ```go fence in the README is the quickstart.
	_, rest, found := strings.Cut(string(readme), "```go\n")
	if !found {
		t.Fatal("README.md has no go code block")
	}
	block, _, found := strings.Cut(rest, "```")
	if !found {
		t.Fatal("README.md quickstart block is unterminated")
	}
	example, err := os.ReadFile(filepath.Join("examples", "readme", "main.go"))
	if err != nil {
		t.Fatal(err)
	}
	// The example file is the block plus a leading doc comment; the code
	// from `package main` down must match byte for byte.
	idx := strings.Index(string(example), "package main")
	if idx < 0 {
		t.Fatal("examples/readme/main.go has no package clause")
	}
	if compiled := string(example[idx:]); block != compiled {
		t.Errorf("README quickstart diverged from examples/readme/main.go;\nREADME block:\n%s\ncompiled example:\n%s",
			block, compiled)
	}
}

// TestDocsNameShippedFlags guards the operational docs against flag rot:
// every `-flag` the README's cluster section tells the user to type must
// exist in cmd/pdht-node.
func TestDocsNameShippedFlags(t *testing.T) {
	main, err := os.ReadFile(filepath.Join("cmd", "pdht-node", "main.go"))
	if err != nil {
		t.Fatal(err)
	}
	for _, flag := range []string{"replicas", "adaptive", "gossip-interval", "suspicion", "backend", "demo", "demo-topk", "publish", "query", "members", "report", "http", "slow-query", "data-dir", "fsync", "snapshot-interval", "chaos-seed", "chaos-drop", "chaos-latency", "chaos-jitter", "chaos-schedule"} {
		if !strings.Contains(string(main), fmt.Sprintf("%q", flag)) {
			t.Errorf("README documents -%s but cmd/pdht-node does not define it", flag)
		}
	}
	chaosMain, err := os.ReadFile(filepath.Join("cmd", "pdht-chaos", "main.go"))
	if err != nil {
		t.Fatal(err)
	}
	for _, flag := range []string{"n", "seed", "schedule", "drop", "latency", "jitter", "entries", "workers", "keys", "adaptive", "boot-timeout"} {
		if !strings.Contains(string(chaosMain), fmt.Sprintf("%q", flag)) {
			t.Errorf("README/EXPERIMENTS.md document pdht-chaos -%s but cmd/pdht-chaos does not define it", flag)
		}
	}
	simMain, err := os.ReadFile(filepath.Join("cmd", "pdht-sim", "main.go"))
	if err != nil {
		t.Fatal(err)
	}
	for _, flag := range []string{"strategy", "topk-k", "topk-terms", "topk-groups", "topk-group-size", "topk-copies", "topk-uniform"} {
		if !strings.Contains(string(simMain), fmt.Sprintf("%q", flag)) {
			t.Errorf("EXPERIMENTS.md documents -%s but cmd/pdht-sim does not define it", flag)
		}
	}
	top, err := os.ReadFile(filepath.Join("cmd", "pdht-top", "main.go"))
	if err != nil {
		t.Fatal(err)
	}
	for _, flag := range []string{"seed", "interval", "once", "json"} {
		if !strings.Contains(string(top), fmt.Sprintf("%q", flag)) {
			t.Errorf("README documents -%s but cmd/pdht-top does not define it", flag)
		}
	}
}
