// Package client is the application-facing API of the live partial DHT:
// context-first, batched, typed-error access to a cluster of pdht nodes.
//
// Open builds one of two handles over the same Client surface:
//
//   - Member mode (default): a full peer — it serves the
//     Query/Insert/Refresh/Broadcast/Gossip RPCs, participates in SWIM
//     membership, holds its share of the index, and can host content for
//     the unstructured broadcast. This is the embed-a-node story.
//
//   - Client-only mode (WithClientOnly): a lightweight handle that speaks
//     the wire protocol to an existing cluster without joining it — no
//     serving socket, no gossip participation, no index share. It fetches
//     the membership view from a seed, routes client-side, and re-syncs
//     from stale-view responses. This is the access-a-cluster story.
//
// Every request takes a context: cancellation and deadlines abort
// in-flight legs (index probes, broadcast fan-out, insert writes) and
// surface as context.Canceled or ErrTimeout. Failures are typed —
// ErrClosed, ErrNoMembers, ErrStaleView, ErrTimeout — and errors.Is-able.
//
// QueryMany and PublishMany are first-class batched operations: keys are
// grouped by responsible peer and each group crosses the wire as a single
// OpBatch round trip with per-key results, amortizing the per-request cost
// exactly where a heavy query stream needs it.
//
// Availability under churn comes from the replica layer underneath
// (internal/replica, WithReplication): every index entry lives at an
// r-member replica set, writes fan out to all of it, reads fail over from
// the primary through the backups before any broadcast, and hits
// read-repair members that lost their copy — so a dead primary costs one
// extra RPC, not a broadcast, until membership convergence repairs the set.
package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"pdht/internal/metadata"
	"pdht/internal/node"
	"pdht/internal/obs"
	"pdht/internal/store"
	"pdht/internal/topk"
)

// The typed failures of the request path, re-exported from the node
// engine so errors.Is works across both packages.
var (
	// ErrClosed reports a request issued after Close.
	ErrClosed = node.ErrClosed
	// ErrNoMembers reports that no cluster member is known or reachable.
	ErrNoMembers = node.ErrNoMembers
	// ErrStaleView reports a membership view that disagreed with every
	// peer asked and could not be refreshed.
	ErrStaleView = node.ErrStaleView
	// ErrTimeout reports a deadline expiry mid-request; it wraps
	// context.DeadlineExceeded.
	ErrTimeout = node.ErrTimeout
)

// ErrBadQuery reports query text ParseAndQuery could not parse — a
// malformed topk: prefix, an unparsable k, or a broken predicate. It is
// typed so callers can distinguish "your input is wrong" from cluster
// failures.
var ErrBadQuery = errors.New("client: bad query")

// KV is one key→value pair of a batched publish.
type KV struct {
	Key   uint64
	Value uint64
}

// QueryTrace is one finished query's per-leg causality record, delivered to
// a WithTraceHook hook and retained by the slow-query log: the key, the
// wall-clock span, the end-to-end outcome, and every leg — index probes
// primary → ranked backups, the broadcast fan-out, the insert-gate verdict,
// refreshes, read repairs and stale-view re-syncs — with its offset,
// duration and outcome. Timeline() renders it for humans.
type QueryTrace = obs.QueryTrace

// TraceLeg is one step of a QueryTrace.
type TraceLeg = obs.Leg

// FleetReport is the cluster-wide aggregation ClusterReport assembles from
// per-peer metrics snapshots: one row per reachable peer, cluster hit rate,
// pooled latency quantiles, the measured cluster msgs/query next to the
// cost model's prediction, and the spread of the per-peer adaptive tuners.
type FleetReport = obs.FleetReport

// FleetPeer is one peer's row of a FleetReport.
type FleetPeer = obs.FleetPeer

// TopKResult is one resolved distributed top-k query: the k best
// documents cluster-wide plus the protocol's cost accounting (rounds,
// wire legs, peers probed/skipped/failed, early termination).
type TopKResult = topk.Result

// TopKEntry is one scored document of a TopKResult.
type TopKEntry = topk.Entry

// Result reports one resolved query.
type Result struct {
	// Key echoes the queried key — batched results stay self-describing
	// even when the caller reorders or filters them.
	Key uint64
	// Answered reports whether the query resolved at all; FromIndex
	// whether the partial index answered it (vs the broadcast fallback).
	Answered  bool
	FromIndex bool
	// InsertGated reports that the broadcast resolved the key but the
	// adaptive control plane refused to index it (member mode only).
	InsertGated bool
	// Value is the resolved value when Answered.
	Value uint64
	// Responsible is the peer routing selected for the key; AnsweredBy
	// the peer that actually supplied the value.
	Responsible string
	AnsweredBy  string
	// Messages is the total message cost the request paid on the wire —
	// the live analogue of the paper's cost accounting.
	Messages int
}

// Client is one handle on the partial DHT — a full member node or a
// non-serving cluster client, depending on the Open options. Safe for
// concurrent use.
type Client struct {
	nd *node.Node         // member mode
	rc *node.RemoteClient // client-only mode
}

// Open builds a handle on the partial DHT. With default options it starts
// a member node on TCP loopback seeding a fresh cluster; WithSeeds joins
// an existing one; WithClientOnly connects without joining. The context
// bounds the bootstrap (bind, join, membership fetch).
//
// The returned handle must be Closed; in member mode that departs the
// cluster ungracefully (the membership layer detects and evicts it, the
// index handoff re-homes its entries).
func Open(ctx context.Context, opts ...Option) (*Client, error) {
	var cfg config
	for _, opt := range opts {
		opt(&cfg)
	}
	nodeCfg, remoteCfg, err := cfg.build()
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, ctxErr(err)
	}
	if cfg.clientOnly {
		rc, err := node.DialRemote(ctx, cfg.tr, remoteCfg)
		if err != nil {
			return nil, err
		}
		return &Client{rc: rc}, nil
	}
	// Member mode. Durability first: WithDataDir opens the file-backed
	// store here — recovery (replay, torn-tail truncation, remaining-TTL
	// accounting) runs once, and the node built below re-admits the
	// recovered entries before it joins the cluster.
	st := cfg.store
	if cfg.dataDir != "" {
		fs, err := store.OpenFile(store.FileOptions{Dir: cfg.dataDir})
		if err != nil {
			return nil, fmt.Errorf("client: open data dir: %w", err)
		}
		st = fs
	}
	nodeCfg.Store = st
	// Try the seeds in order — the first that joins wins; a node with no
	// seeds starts its own cluster. A failed New leaves store ownership
	// here (the store survives attempts unchanged), so it is released only
	// when every seed fails.
	seeds := cfg.seeds
	if len(seeds) == 0 {
		seeds = []string{""}
	}
	var lastErr error
	for _, seed := range seeds {
		nodeCfg.Seed = seed
		nd, err := node.New(cfg.tr, nodeCfg)
		if err == nil {
			return &Client{nd: nd}, nil
		}
		lastErr = err
		if err := ctx.Err(); err != nil {
			lastErr = ctxErr(err)
			break
		}
	}
	if st != nil {
		st.Close()
	}
	return nil, fmt.Errorf("client: open: %w", lastErr)
}

// ctxErr translates a context failure into the typed taxonomy, exactly as
// the engines do: deadline expiry becomes ErrTimeout, cancellation stays
// context.Canceled.
func ctxErr(err error) error {
	if errors.Is(err, context.DeadlineExceeded) {
		return ErrTimeout
	}
	return err
}

// Close releases the handle: a member node departs and shuts down, a
// client-only handle drops its connections. Idempotent.
func (c *Client) Close() error {
	if c.nd != nil {
		return c.nd.Close()
	}
	return c.rc.Close()
}

// Serving reports whether this handle is a full member node (true) or a
// non-serving client (false).
func (c *Client) Serving() bool { return c.nd != nil }

// Addr returns the member node's serving address, empty in client-only
// mode.
func (c *Client) Addr() string {
	if c.nd != nil {
		return c.nd.Addr()
	}
	return ""
}

// Members returns the handle's current view of the cluster membership.
func (c *Client) Members() []string {
	if c.nd != nil {
		return c.nd.Members()
	}
	return c.rc.Members()
}

// Report renders the member node's self-measurement status block, with
// ok=false in client-only mode (a non-serving client measures nothing).
func (c *Client) Report() (string, bool) {
	if c.nd == nil {
		return "", false
	}
	return c.nd.Report().String(), true
}

// DebugHandler returns the member node's debug HTTP plane — /metrics
// (Prometheus text exposition of every layer's instruments), /report (the
// self-measurement as JSON), /traces (the slow-query ring), /healthz and
// /debug/pprof — ready to mount on any mux or serve on its own port, as
// cmd/pdht-node's -http flag does. ok=false in client-only mode.
func (c *Client) DebugHandler() (http.Handler, bool) {
	if c.nd == nil {
		return nil, false
	}
	return c.nd.DebugHandler(), true
}

// ClusterReport polls every cluster member for a metrics snapshot (the
// OpStats RPC) and aggregates them into a fleet-wide report: per-peer rows
// sorted by address, cluster hit rate and pooled p50/p90/p99, the measured
// cluster msgs/query — and, in member mode with enough observed traffic,
// the paper's cost model prediction for that number alongside. Members that
// fail to answer within ctx (or the call timeout) are skipped; the report
// covers the reachable fleet and fails only when nobody answered.
func (c *Client) ClusterReport(ctx context.Context) (FleetReport, error) {
	if c.nd != nil {
		return c.nd.ClusterReport(ctx)
	}
	return c.rc.ClusterReport(ctx)
}

// SlowQueries returns the member node's retained slow-query traces, newest
// first — empty unless WithSlowQueryLog enabled the ring, and always empty
// in client-only mode.
func (c *Client) SlowQueries() []QueryTrace {
	if c.nd == nil {
		return nil
	}
	return c.nd.SlowQueries()
}

// Query resolves one key with the paper's selection algorithm: index
// search at the responsible replica group, broadcast on a miss, insert of
// the resolved value with keyTtl, TTL refresh on a hit. An unresolvable
// key is not an error — Answered stays false; errors are the typed
// lifecycle and context failures.
func (c *Client) Query(ctx context.Context, key uint64) (Result, error) {
	var (
		res node.QueryResult
		err error
	)
	if c.nd != nil {
		res, err = c.nd.Query(ctx, key)
	} else {
		res, err = c.rc.Query(ctx, key)
	}
	return toResult(key, res), err
}

// QueryMany resolves a batch of keys with one OpBatch request per
// destination peer: group by responsible node, a single round trip per
// group, per-key results (aligned with keys). Keys the batch cannot
// resolve fall back to the full per-key selection algorithm concurrently.
// On a context failure the results gathered so far are returned with the
// typed error.
func (c *Client) QueryMany(ctx context.Context, keys []uint64) ([]Result, error) {
	var (
		rs  []node.QueryResult
		err error
	)
	if c.nd != nil {
		rs, err = c.nd.QueryMany(ctx, keys)
	} else {
		rs, err = c.rc.QueryMany(ctx, keys)
	}
	out := make([]Result, len(rs))
	for i := range rs {
		out[i] = toResult(keys[i], rs[i])
	}
	return out, err
}

// Publish makes key→value resolvable through the cluster. A member node
// installs the pair in its local content store (the durable home the
// broadcast searches); a client-only handle, which answers no broadcasts,
// installs it at the key's index replica group with keyTtl — it expires
// unless queries keep it alive or the client republishes.
func (c *Client) Publish(ctx context.Context, key, value uint64) error {
	if c.nd != nil {
		return c.nd.Publish(ctx, key, value)
	}
	return c.rc.Publish(ctx, key, value)
}

// PublishMany publishes a batch of pairs; in client-only mode the inserts
// are grouped by destination peer, one OpBatch round trip each.
func (c *Client) PublishMany(ctx context.Context, pairs []KV) error {
	kvs := make([]node.KV, len(pairs))
	for i, p := range pairs {
		kvs[i] = node.KV{Key: p.Key, Value: p.Value}
	}
	if c.nd != nil {
		return c.nd.PublishMany(ctx, kvs)
	}
	return c.rc.PublishMany(ctx, kvs)
}

// QueryTopK runs one distributed top-k query: the k best documents
// cluster-wide for the term set, under the threshold-algorithm round
// protocol (internal/topk). Terms are index keys — typically single
// metadata predicates hashed via the paper's canonical form, as
// ParseAndQuery's topk: syntax produces. A member node coordinates with
// sketch-fed term weights and a probe schedule learned from past yield; a
// client-only handle coordinates the same protocol with uniform weights.
func (c *Client) QueryTopK(ctx context.Context, terms []uint64, k int) (TopKResult, error) {
	if c.nd != nil {
		return c.nd.QueryTopK(ctx, terms, k)
	}
	return c.rc.QueryTopK(ctx, terms, k)
}

// ParseAndQuery parses the paper's query syntax — element=value predicates
// joined by AND, e.g. "title=Weather Iráklion AND date=2004/03/14" — maps
// the conjunction to its index key, and resolves it like Query.
//
// A "topk:<k> " prefix switches to the distributed top-k form: the rest of
// the string is predicates joined by AND, each hashed to its own term key,
// and the whole resolved via QueryTopK. The returned Result carries the
// best document (Value) under the first term's key; callers that want the
// full ranked list parse with ParseTopK and call QueryTopK directly. A
// malformed topk: query fails with ErrBadQuery — it never falls back to
// the conjunctive parser.
func (c *Client) ParseAndQuery(ctx context.Context, query string) (Result, error) {
	if hasTopKPrefix(query) {
		k, terms, err := ParseTopK(query)
		if err != nil {
			return Result{}, err
		}
		res, err := c.QueryTopK(ctx, terms, k)
		if err != nil {
			return Result{}, err
		}
		out := Result{Key: terms[0], Messages: res.Legs}
		if len(res.Entries) > 0 {
			out.Answered = true
			out.Value = res.Entries[0].Doc
		}
		return out, nil
	}
	q, err := metadata.ParseQuery(query)
	if err != nil {
		return Result{}, err
	}
	return c.Query(ctx, uint64(q.Key()))
}

// hasTopKPrefix reports whether the query text opts into the top-k form.
func hasTopKPrefix(s string) bool {
	return strings.HasPrefix(strings.TrimSpace(s), "topk:")
}

// ParseTopK parses the mini-language's top-k form:
//
//	topk:<k> <pred> AND <pred> AND ...
//
// where each predicate is element=value and maps to its own term key (the
// hash of its canonical single-predicate form). Failures — unparsable or
// non-positive k, no predicates, a broken predicate — are ErrBadQuery.
func ParseTopK(query string) (k int, terms []uint64, err error) {
	s := strings.TrimSpace(query)
	if !strings.HasPrefix(s, "topk:") {
		return 0, nil, fmt.Errorf("%w: %q has no topk: prefix", ErrBadQuery, query)
	}
	s = s[len("topk:"):]
	num, rest, found := strings.Cut(s, " ")
	if !found {
		return 0, nil, fmt.Errorf("%w: topk:<k> needs predicates after the count", ErrBadQuery)
	}
	k, convErr := strconv.Atoi(num)
	if convErr != nil || k < 1 {
		return 0, nil, fmt.Errorf("%w: top-k count %q must be a positive integer", ErrBadQuery, num)
	}
	q, parseErr := metadata.ParseQuery(rest)
	if parseErr != nil {
		return 0, nil, fmt.Errorf("%w: %v", ErrBadQuery, parseErr)
	}
	terms = make([]uint64, len(q.Predicates))
	for i, p := range q.Predicates {
		terms[i] = uint64(metadata.Query{Predicates: []metadata.Predicate{p}}.Key())
	}
	return k, terms, nil
}

// toResult maps the engine's result onto the public one.
func toResult(key uint64, r node.QueryResult) Result {
	return Result{
		Key:         key,
		Answered:    r.Answered,
		FromIndex:   r.FromIndex,
		InsertGated: r.InsertGated,
		Value:       r.Value,
		Responsible: r.Responsible,
		AnsweredBy:  r.AnsweredBy,
		Messages:    r.Total(),
	}
}
