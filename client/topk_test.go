package client

import (
	"context"
	"errors"
	"testing"

	"pdht/internal/metadata"
	"pdht/internal/transport"
)

// predKey is the term key of one element=value predicate — what the
// topk: mini-language hashes each predicate to.
func predKey(elem, val string) uint64 {
	return uint64(metadata.Query{Predicates: []metadata.Predicate{{Element: elem, Value: val}}}.Key())
}

func TestParseTopKTable(t *testing.T) {
	cases := []struct {
		name  string
		query string
		k     int
		terms []uint64
		bad   bool
	}{
		{
			name:  "single predicate",
			query: "topk:5 term=weather",
			k:     5,
			terms: []uint64{predKey("term", "weather")},
		},
		{
			name:  "multi predicate",
			query: "topk:10 term=weather AND date=2004/03/14",
			k:     10,
			terms: []uint64{predKey("term", "weather"), predKey("date", "2004/03/14")},
		},
		{
			name:  "surrounding whitespace",
			query: "  topk:2 title=Weather Iráklion  ",
			k:     2,
			terms: []uint64{predKey("title", "Weather Iráklion")},
		},
		{name: "non-integer k", query: "topk:x term=weather", bad: true},
		{name: "zero k", query: "topk:0 term=weather", bad: true},
		{name: "negative k", query: "topk:-3 term=weather", bad: true},
		{name: "missing predicates", query: "topk:5", bad: true},
		{name: "blank predicates", query: "topk:5   ", bad: true},
		{name: "broken predicate", query: "topk:5 weather", bad: true},
		{name: "empty value", query: "topk:5 term=", bad: true},
		{name: "no prefix", query: "term=weather", bad: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			k, terms, err := ParseTopK(tc.query)
			if tc.bad {
				if err == nil {
					t.Fatalf("ParseTopK(%q) accepted, want ErrBadQuery", tc.query)
				}
				if !errors.Is(err, ErrBadQuery) {
					t.Fatalf("ParseTopK(%q) error %v is not ErrBadQuery", tc.query, err)
				}
				return
			}
			if err != nil {
				t.Fatalf("ParseTopK(%q): %v", tc.query, err)
			}
			if k != tc.k {
				t.Fatalf("k = %d, want %d", k, tc.k)
			}
			if len(terms) != len(tc.terms) {
				t.Fatalf("terms = %v, want %v", terms, tc.terms)
			}
			for i := range terms {
				if terms[i] != tc.terms[i] {
					t.Fatalf("terms[%d] = %d, want %d", i, terms[i], tc.terms[i])
				}
			}
		})
	}
}

// A malformed topk: query must fail typed at the API surface — never fall
// back to the conjunctive parser (which would misread "topk:x ..." as a
// predicate and silently query a junk key).
func TestParseAndQueryTopKMalformedFailsTyped(t *testing.T) {
	members := openCluster(t, transport.NewMemory(), 1)
	if _, err := members[0].ParseAndQuery(context.Background(), "topk:x term=weather"); !errors.Is(err, ErrBadQuery) {
		t.Fatalf("malformed topk query error = %v, want ErrBadQuery", err)
	}
}

// The mini-language end to end: publish documents under predicate term
// keys, resolve "topk:<k> ..." through ParseAndQuery, and read the full
// ranked list via QueryTopK — on a member handle and a client-only one.
func TestQueryTopKThroughClient(t *testing.T) {
	ctx := context.Background()
	tr := transport.NewMemory()
	members := openCluster(t, tr, 3)

	tWeather := predKey("term", "weather")
	tCrete := predKey("term", "crete")
	// Doc 100 matches both terms at member 1; doc 200 matches one term at
	// member 2. Top-1 for {weather, crete} is doc 100.
	if err := members[1].Publish(ctx, tWeather, 100); err != nil {
		t.Fatal(err)
	}
	if err := members[1].Publish(ctx, tCrete, 100); err != nil {
		t.Fatal(err)
	}
	if err := members[2].Publish(ctx, tWeather, 200); err != nil {
		t.Fatal(err)
	}

	res, err := members[0].QueryTopK(ctx, []uint64{tWeather, tCrete}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 2 || res.Entries[0].Doc != 100 || res.Entries[1].Doc != 200 {
		t.Fatalf("member top-k entries = %+v, want docs [100 200]", res.Entries)
	}
	if res.Entries[0].Score != 2 || res.Entries[1].Score != 1 {
		t.Fatalf("member top-k scores = %+v, want [2 1]", res.Entries)
	}

	parsed, err := members[0].ParseAndQuery(ctx, "topk:1 term=weather AND term=crete")
	if err != nil {
		t.Fatal(err)
	}
	if !parsed.Answered || parsed.Value != 100 {
		t.Fatalf("ParseAndQuery topk result = %+v, want doc 100", parsed)
	}
	if parsed.Key != tWeather {
		t.Fatalf("ParseAndQuery topk key = %d, want first term %d", parsed.Key, tWeather)
	}

	cl, err := Open(ctx, withTransport(tr), WithClientOnly(), WithSeeds(members[0].Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	clRes, err := cl.QueryTopK(ctx, []uint64{tWeather, tCrete}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(clRes.Entries) != 1 || clRes.Entries[0].Doc != 100 || clRes.Entries[0].Score != 2 {
		t.Fatalf("client-only top-k entries = %+v, want doc 100 at score 2", clRes.Entries)
	}
}
