package client

import (
	"context"
	"errors"
	"testing"
	"time"

	"pdht/internal/transport"
)

// openCluster boots n member handles on one transport (the first seeds the
// cluster) and waits for full membership.
func openCluster(t *testing.T, tr transport.Transport, n int, extra ...Option) []*Client {
	t.Helper()
	ctx := context.Background()
	base := []Option{
		withTransport(tr),
		WithRoundDuration(50 * time.Millisecond),
		WithKeyTtl(1 << 16), // nothing expires mid-test
	}
	base = append(base, extra...)
	members := make([]*Client, n)
	for i := range members {
		opts := base
		if i > 0 {
			opts = append(append([]Option(nil), base...), WithSeeds(members[0].Addr()))
		}
		m, err := Open(ctx, opts...)
		if err != nil {
			t.Fatal(err)
		}
		members[i] = m
		t.Cleanup(func() { m.Close() })
	}
	waitFor(t, 5*time.Second, func() bool {
		for _, m := range members {
			if len(m.Members()) != n {
				return false
			}
		}
		return true
	}, "full membership")
	return members
}

func waitFor(t *testing.T, d time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestOpenMemberAndClientOverTCP is the embed acceptance criterion: Open
// works in both member and non-serving client mode over real sockets. A
// 3-member TCP cluster forms, a client-only handle connects through a
// seed, resolves a key published at a member (miss → broadcast → insert),
// hits the index on the repeat, and batch-queries — without ever appearing
// in the members' views.
func TestOpenMemberAndClientOverTCP(t *testing.T) {
	ctx := context.Background()
	members := openCluster(t, transport.NewTCP(), 3)

	if !members[0].Serving() || members[0].Addr() == "" {
		t.Fatalf("member handle not serving: addr %q", members[0].Addr())
	}
	if err := members[1].Publish(ctx, 777, 42); err != nil {
		t.Fatal(err)
	}

	cl, err := Open(ctx, WithTCP(), WithClientOnly(),
		WithSeeds(members[0].Addr()), WithKeyTtl(1<<16))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if cl.Serving() {
		t.Fatal("client-only handle claims to serve")
	}
	if got := len(cl.Members()); got != 3 {
		t.Fatalf("client sees %d members, want 3", got)
	}

	first, err := cl.Query(ctx, 777)
	if err != nil {
		t.Fatal(err)
	}
	if !first.Answered || first.Value != 42 {
		t.Fatalf("first client query = %+v, want broadcast answer 42", first)
	}
	second, err := cl.Query(ctx, 777)
	if err != nil {
		t.Fatal(err)
	}
	if !second.FromIndex || second.Value != 42 {
		t.Fatalf("second client query = %+v, want index hit 42", second)
	}

	// Batched access over TCP, keys warm and cold mixed.
	if err := members[2].Publish(ctx, 888, 43); err != nil {
		t.Fatal(err)
	}
	results, err := cl.QueryMany(ctx, []uint64{777, 888})
	if err != nil {
		t.Fatal(err)
	}
	if !results[0].FromIndex || results[0].Value != 42 || results[0].Key != 777 {
		t.Fatalf("batch warm key = %+v, want index hit 42", results[0])
	}
	if !results[1].Answered || results[1].Value != 43 || results[1].Key != 888 {
		t.Fatalf("batch cold key = %+v, want broadcast answer 43", results[1])
	}

	// The non-serving client never joined the membership.
	for i, m := range members {
		if got := len(m.Members()); got != 3 {
			t.Fatalf("member %d sees %d members after client traffic, want 3", i, got)
		}
	}
}

// TestClientOnlyPublishIndexes pins the client-mode Publish contract: the
// pair lands in the cluster's index (resolvable by anyone) rather than in
// a content store the client does not have.
func TestClientOnlyPublishIndexes(t *testing.T) {
	ctx := context.Background()
	tr := transport.NewMemory()
	members := openCluster(t, tr, 3)
	cl, err := Open(ctx, withTransport(tr), WithClientOnly(),
		WithSeeds(members[0].Addr()), WithKeyTtl(1<<16))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if err := cl.PublishMany(ctx, []KV{{Key: 901, Value: 1}, {Key: 902, Value: 2}}); err != nil {
		t.Fatal(err)
	}
	for i, want := range map[uint64]uint64{901: 1, 902: 2} {
		res, err := members[1].Query(ctx, i)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Answered || !res.FromIndex || res.Value != want {
			t.Fatalf("member query for client-published key %d = %+v, want index hit %d", i, res, want)
		}
	}
}

// TestClientSurvivesMembershipChange kills a member and checks the
// non-serving client recovers through the stale-view protocol: the first
// routed request after the change may be refused with the responder's
// membership state, the client re-syncs and the retry resolves.
func TestClientSurvivesMembershipChange(t *testing.T) {
	ctx := context.Background()
	tr := transport.NewMemory()
	members := openCluster(t, tr, 4, WithGossipInterval(20*time.Millisecond))
	cl, err := Open(ctx, withTransport(tr), WithClientOnly(),
		WithSeeds(members[0].Addr(), members[1].Addr()), WithKeyTtl(1<<16))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	for k := uint64(1); k <= 10; k++ {
		if err := members[int(k)%3].Publish(ctx, k, k*100); err != nil {
			t.Fatal(err)
		}
	}

	// Kill the last member; survivors converge on a 3-member view.
	members[3].Close()
	waitFor(t, 10*time.Second, func() bool {
		for _, m := range members[:3] {
			if len(m.Members()) != 3 {
				return false
			}
		}
		return true
	}, "survivors to converge")

	// The client still holds the 4-member view; queries must recover via
	// resync rather than fail. Keys resolve from index or broadcast.
	for k := uint64(1); k <= 10; k++ {
		res, err := cl.Query(ctx, k)
		if err != nil {
			t.Fatalf("query %d after membership change: %v", k, err)
		}
		if !res.Answered || res.Value != k*100 {
			t.Fatalf("query %d after membership change = %+v, want %d", k, res, k*100)
		}
	}
	if got := len(cl.Members()); got != 3 {
		t.Fatalf("client still sees %d members, want 3 after resync", got)
	}
}

// TestParseAndQuery drives the metadata syntax end to end through the
// public API.
func TestParseAndQuery(t *testing.T) {
	ctx := context.Background()
	members := openCluster(t, transport.NewMemory(), 2)

	// Publishing under the query's key is the application's job; the
	// members resolve the text to the same key the client will.
	res, err := members[0].ParseAndQuery(ctx, "title=Weather Iráklion AND date=2004/03/14")
	if err != nil {
		t.Fatal(err)
	}
	if res.Answered {
		t.Fatalf("unpublished metadata query answered: %+v", res)
	}
	if _, err := members[0].ParseAndQuery(ctx, "no-equals-sign"); err == nil {
		t.Fatal("malformed query accepted")
	}
}

// TestTypedErrors pins the error taxonomy across the public surface.
func TestTypedErrors(t *testing.T) {
	ctx := context.Background()

	// Client-only mode without seeds is a configuration error; with
	// unreachable seeds it is ErrNoMembers.
	if _, err := Open(ctx, withTransport(transport.NewMemory()), WithClientOnly()); err == nil {
		t.Fatal("client-only open without seeds succeeded")
	}
	if _, err := Open(ctx, withTransport(transport.NewMemory()), WithClientOnly(),
		WithSeeds("mem-nowhere")); !errors.Is(err, ErrNoMembers) {
		t.Fatalf("open with dead seeds: err = %v, want ErrNoMembers", err)
	}

	tr := transport.NewMemory()
	members := openCluster(t, tr, 2)
	cl, err := Open(ctx, withTransport(tr), WithClientOnly(), WithSeeds(members[0].Addr()))
	if err != nil {
		t.Fatal(err)
	}
	cl.Close()
	if _, err := cl.Query(ctx, 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("query on closed client: err = %v, want ErrClosed", err)
	}
	if err := cl.Publish(ctx, 1, 2); !errors.Is(err, ErrClosed) {
		t.Fatalf("publish on closed client: err = %v, want ErrClosed", err)
	}

	// A member handle propagates the same taxonomy.
	m := members[0]
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := m.Query(cancelled, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("query with cancelled ctx: err = %v, want context.Canceled", err)
	}
}

// TestQueryManyAlignment pins the batched result contract: results align
// with keys, carry the keys, and duplicates are answered independently.
func TestQueryManyAlignment(t *testing.T) {
	ctx := context.Background()
	tr := transport.NewMemory()
	members := openCluster(t, tr, 3)
	pairs := make([]KV, 8)
	keys := make([]uint64, 0, 9)
	for i := range pairs {
		pairs[i] = KV{Key: uint64(1000 + i), Value: uint64(i)}
		keys = append(keys, pairs[i].Key)
	}
	keys = append(keys, keys[0]) // duplicate
	if err := members[1].PublishMany(ctx, pairs); err != nil {
		t.Fatal(err)
	}
	results, err := members[0].QueryMany(ctx, keys)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(keys) {
		t.Fatalf("got %d results for %d keys", len(results), len(keys))
	}
	for i, res := range results {
		if res.Key != keys[i] {
			t.Fatalf("result %d carries key %d, want %d", i, res.Key, keys[i])
		}
		if !res.Answered || res.Value != keys[i]-1000 {
			t.Fatalf("result %d = %+v, want value %d", i, res, keys[i]-1000)
		}
	}
}

// TestOpenSeedFallback opens a member through a seed list whose first
// entry is dead — the second must carry the join.
func TestOpenSeedFallback(t *testing.T) {
	ctx := context.Background()
	tr := transport.NewMemory()
	members := openCluster(t, tr, 2)
	m, err := Open(ctx, withTransport(tr), WithRoundDuration(50*time.Millisecond),
		WithSeeds("mem-dead", members[0].Addr()))
	if err != nil {
		t.Fatalf("open with half-dead seed list: %v", err)
	}
	defer m.Close()
	waitFor(t, 5*time.Second, func() bool { return len(m.Members()) == 3 }, "joiner view")
}

// TestReportModes pins Report availability: member handles measure,
// client-only handles do not.
func TestReportModes(t *testing.T) {
	ctx := context.Background()
	tr := transport.NewMemory()
	members := openCluster(t, tr, 2)
	if rep, ok := members[0].Report(); !ok || rep == "" {
		t.Fatalf("member report = (%q, %v), want a status block", rep, ok)
	}
	cl, err := Open(ctx, withTransport(tr), WithClientOnly(), WithSeeds(members[0].Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, ok := cl.Report(); ok {
		t.Fatal("client-only handle claims to have a report")
	}
}
