package client

import (
	"fmt"
	"time"

	"pdht/internal/node"
	"pdht/internal/store"
	"pdht/internal/transport"
)

// Store is the persistence plane a member node journals through,
// re-exported so WithStore users can supply their own implementation.
type Store = store.Store

// config collects what the options build. The zero value plus defaults is
// a ring-backend member node on TCP, listening on a loopback port.
type config struct {
	tr         transport.Transport
	listen     string
	seeds      []string
	clientOnly bool

	backend     string
	repl        int
	keyTtl      int
	capacity    int
	round       time.Duration
	callTimeout time.Duration
	gossipEvery time.Duration
	maintainEnv float64

	adaptive    bool
	retuneEvery time.Duration

	traceHook     func(QueryTrace)
	slowThreshold time.Duration
	slowCapacity  int
	traceSampling *float64 // nil: default 1.0; pointer so explicit 0 disables

	dataDir string
	store   Store
}

// Option configures Open. Options are applied in order; later options win.
type Option func(*config)

// WithTCP selects the socket transport — the default, spelled out for
// explicitness in deployment code.
func WithTCP() Option {
	return func(c *config) { c.tr = transport.NewTCP() }
}

// withTransport injects an arbitrary transport — the test seam for the
// in-memory loopback network.
func withTransport(tr transport.Transport) Option {
	return func(c *config) { c.tr = tr }
}

// WithListen sets the member node's serving address ("127.0.0.1:0" by
// default: loopback, port picked by the OS). Ignored in client-only mode.
func WithListen(addr string) Option {
	return func(c *config) { c.listen = addr }
}

// WithSeeds names existing cluster members to join through (member mode)
// or to bootstrap the membership view from (client-only mode). Seeds are
// tried in order until one answers. A member node with no seeds starts a
// new cluster.
func WithSeeds(seeds ...string) Option {
	return func(c *config) { c.seeds = append(c.seeds, seeds...) }
}

// WithClientOnly selects the lightweight non-serving mode: the handle
// speaks the wire protocol to an existing cluster (it requires seeds) but
// serves nothing, gossips nothing and never appears in any membership
// view. Queries route client-side over a membership view fetched from the
// seeds and kept fresh through stale-view responses.
func WithClientOnly() Option {
	return func(c *config) { c.clientOnly = true }
}

// WithBackend selects the structured overlay: "ring" (default), "trie" or
// "kademlia". Every node and client of a cluster must agree on it.
func WithBackend(name string) Option {
	return func(c *config) { c.backend = name }
}

// WithReplication sets the replica-group size (the paper's repl, default
// 3). Every node and client of a cluster must agree on it.
func WithReplication(repl int) Option {
	return func(c *config) { c.repl = repl }
}

// WithKeyTtl sets the expiration time, in rounds, attached to inserted and
// refreshed keys — the paper's keyTtl knob (default 120).
func WithKeyTtl(rounds int) Option {
	return func(c *config) { c.keyTtl = rounds }
}

// WithCapacity sets the member node's index cache size (the paper's stor,
// default 1024). Ignored in client-only mode.
func WithCapacity(entries int) Option {
	return func(c *config) { c.capacity = entries }
}

// WithRoundDuration maps the paper's one-second round onto wall time
// (default 1s). All nodes of a cluster must agree on it; TTLs cross the
// wire in rounds.
func WithRoundDuration(d time.Duration) Option {
	return func(c *config) { c.round = d }
}

// WithCallTimeout bounds each outbound RPC (default 2s).
func WithCallTimeout(d time.Duration) Option {
	return func(c *config) { c.callTimeout = d }
}

// WithGossipInterval sets the SWIM membership protocol period of a member
// node (default: one round). Ignored in client-only mode.
func WithGossipInterval(d time.Duration) Option {
	return func(c *config) { c.gossipEvery = d }
}

// WithMaintainEnv sets the per-routing-entry per-round probe probability
// of the local overlay instance (the paper's env). Ignored in client-only
// mode.
func WithMaintainEnv(p float64) Option {
	return func(c *config) { c.maintainEnv = p }
}

// WithAdaptive turns the query-adaptive control plane on for a member
// node: it sketches its own query stream, refits the paper's model every
// retuneInterval (0 means 60 rounds), retunes keyTtl online, and refuses
// to index keys whose measured rate falls below the fitted fMin. Ignored
// in client-only mode (a non-serving client indexes nothing of its own).
func WithAdaptive(retuneInterval time.Duration) Option {
	return func(c *config) {
		c.adaptive = true
		c.retuneEvery = retuneInterval
	}
}

// WithTraceHook registers hook to receive every finished Query's trace —
// the per-leg causality record of index probes (primary → ranked backups),
// the broadcast fan-out, the insert-gate verdict, refreshes, read repairs
// and stale-view re-syncs, each with its offset and duration. The hook is
// called synchronously at the end of Query in both member and client-only
// mode; keep it cheap. QueryTrace.Timeline renders the record for humans.
func WithTraceHook(hook func(QueryTrace)) Option {
	return func(c *config) { c.traceHook = hook }
}

// WithTraceSampling sets the fraction of traced queries whose trace also
// propagates over the wire (default 1.0): sampled queries carry a trace ID
// on every RPC leg, and the servers they touch return server-side spans —
// index lookups, inserts, refreshes, content lookups, store appends — that
// are stitched into the QueryTrace as legs with Peer set, turning a trace
// into a cluster-wide causality tree. Zero disables wire propagation while
// keeping client-side traces. Sampling only applies to queries that are
// traced at all (WithTraceHook, WithSlowQueryLog, or a caller-supplied
// trace); without those the query hot path allocates nothing regardless.
func WithTraceSampling(rate float64) Option {
	return func(c *config) { c.traceSampling = &rate }
}

// WithSlowQueryLog keeps the traces of the most recent queries that took
// threshold or longer in a ring of the given capacity (0: 64), served on
// the member node's debug endpoint under /traces and readable through
// SlowQueries. Ignored in client-only mode.
func WithSlowQueryLog(threshold time.Duration, capacity int) Option {
	return func(c *config) {
		c.slowThreshold = threshold
		c.slowCapacity = capacity
	}
}

// WithDataDir makes the member node durable: every index and content
// mutation is journaled to a write-ahead log under dir (created if
// missing), periodically compacted into a snapshot, and a handle reopened
// on the same directory rejoins warm — index entries re-admitted at their
// remaining TTL, published content served again without republishing.
// Incompatible with client-only mode (a non-serving client holds nothing
// to persist). Later WithDataDir/WithStore options win.
func WithDataDir(dir string) Option {
	return func(c *config) {
		c.dataDir = dir
		c.store = nil
	}
}

// WithStore injects a persistence implementation directly — the seam for
// custom stores and for sharing one preopened store with its recovery
// stats. The member node owns s once Open succeeds and closes it on
// Close. Incompatible with client-only mode.
func WithStore(s Store) Option {
	return func(c *config) {
		c.store = s
		c.dataDir = ""
	}
}

// build validates the option set and splits it into the two engines'
// configurations.
func (c *config) build() (node.Config, node.RemoteConfig, error) {
	if c.tr == nil {
		c.tr = transport.NewTCP()
	}
	if c.clientOnly && len(c.seeds) == 0 {
		return node.Config{}, node.RemoteConfig{}, fmt.Errorf("client: client-only mode needs WithSeeds")
	}
	if c.clientOnly && (c.dataDir != "" || c.store != nil) {
		return node.Config{}, node.RemoteConfig{}, fmt.Errorf("client: client-only mode cannot persist (no index or content of its own)")
	}
	nodeCfg := node.DefaultConfig()
	nodeCfg.Addr = c.listen
	nodeCfg.Backend = node.Backend(c.backend)
	if c.backend == "" {
		nodeCfg.Backend = node.BackendRing
	}
	if c.repl != 0 {
		nodeCfg.Repl = c.repl
	}
	if c.keyTtl != 0 {
		nodeCfg.KeyTtl = c.keyTtl
	}
	if c.capacity != 0 {
		nodeCfg.Capacity = c.capacity
	}
	if c.round != 0 {
		nodeCfg.RoundDuration = c.round
	}
	if c.callTimeout != 0 {
		nodeCfg.CallTimeout = c.callTimeout
	}
	nodeCfg.GossipInterval = c.gossipEvery
	nodeCfg.MaintainEnv = c.maintainEnv
	nodeCfg.Adaptive = c.adaptive
	nodeCfg.RetuneInterval = c.retuneEvery
	nodeCfg.TraceHook = c.traceHook
	nodeCfg.SlowQueryThreshold = c.slowThreshold
	nodeCfg.SlowQueryCapacity = c.slowCapacity
	sampling := 1.0
	if c.traceSampling != nil {
		sampling = *c.traceSampling
	}
	nodeCfg.TraceSampling = sampling

	remoteCfg := node.RemoteConfig{
		Seeds:       c.seeds,
		Backend:     nodeCfg.Backend,
		Repl:        c.repl,
		KeyTtl:      c.keyTtl,
		CallTimeout: c.callTimeout,
	}
	remoteCfg.TraceHook = c.traceHook
	remoteCfg.TraceSampling = sampling
	return nodeCfg, remoteCfg, nil
}
