// Calibrate: close the loop between measurement and model. The paper
// plugs literature constants into its cost model (α = 1.2 from [Srip01]);
// a real deployment can instead observe its own query stream, recover the
// workload skew by maximum likelihood, and re-derive fMin, maxRank and
// keyTtl from what it actually serves. This example runs the selection
// algorithm, collects per-key query counts, estimates α from them, and
// compares the calibrated model against the ground truth the simulation
// was configured with.
//
//	go run ./examples/calibrate
package main

import (
	"fmt"
	"log"

	"pdht"
)

func main() {
	// Ground truth: a network whose workload skew we pretend not to know.
	cfg := pdht.DefaultSimConfig()
	cfg.Strategy = pdht.StrategyPartialTTL
	cfg.Peers = 2000
	cfg.Keys = 4000
	cfg.Repl = 20
	cfg.Alpha = 1.2
	cfg.Rounds = 600
	cfg.WarmupRounds = 100
	cfg.CollectKeyCounts = true

	res, err := pdht.Simulate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("observed %d queries over %d rounds\n", res.Queries, res.MeasuredRounds)

	// Step 1: recover the Zipf exponent from the observed counts.
	alphaHat, err := pdht.EstimateAlpha(res.KeyQueryCounts, cfg.Keys)
	if err != nil {
		log.Fatal(err)
	}
	fQryHat := float64(res.Queries) / float64(res.MeasuredRounds) / float64(cfg.Peers)
	fmt.Printf("estimated α = %.3f (truth: %.3f)\n", alphaHat, cfg.Alpha)
	fmt.Printf("measured fQry = %.5f 1/s (truth: %.5f)\n\n", fQryHat, cfg.FQry)

	// Step 2: solve the model twice — with the configured truth and with
	// the measurements — and compare what matters operationally.
	truth := cfg.ModelParams()
	measured := truth
	measured.Alpha = alphaHat
	measured.FQry = fQryHat

	solTruth, err := pdht.Solve(truth)
	if err != nil {
		log.Fatal(err)
	}
	solHat, err := pdht.Solve(measured)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-28s %12s %12s\n", "derived quantity", "from truth", "from stream")
	fmt.Printf("%-28s %12.3g %12.3g\n", "fMin [queries/round]", solTruth.FMin, solHat.FMin)
	fmt.Printf("%-28s %12d %12d\n", "maxRank [keys]", solTruth.MaxRank, solHat.MaxRank)
	fmt.Printf("%-28s %12.0f %12.0f\n", "keyTtl = 1/fMin [rounds]",
		pdht.IdealKeyTtl(solTruth), pdht.IdealKeyTtl(solHat))
	fmt.Printf("%-28s %12.0f %12.0f\n", "partial cost [msg/s]",
		pdht.PartialCost(solTruth), pdht.PartialCost(solHat))

	fmt.Println("\nno configuration was read to produce the right-hand column —")
	fmt.Println("the index can tune itself from traffic it observes anyway (§5.1.1/§6)")
}
