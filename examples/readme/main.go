// This is the README.md quickstart, verbatim: the code block under
// "Quickstart" must stay byte-identical to main() below (the docs CI job
// diffs them), so the README's first contact with the API is compiled and
// vetted on every push.
//
//	go run ./examples/readme
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"pdht"
)

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Boot a two-member cluster on TCP loopback. The first call seeds a
	// fresh cluster; the second joins through it. In production these
	// run in different processes on different machines. Every handle of
	// a cluster must agree on the replication factor — it shapes replica
	// placement, which is computed locally by each peer.
	opts := []pdht.ClientOption{pdht.WithReplication(2)}
	seed, err := pdht.Open(ctx, append(opts, pdht.WithListen("127.0.0.1:0"))...)
	if err != nil {
		log.Fatal(err)
	}
	defer seed.Close()
	peer, err := pdht.Open(ctx, append(opts, pdht.WithSeeds(seed.Addr()))...)
	if err != nil {
		log.Fatal(err)
	}
	defer peer.Close()

	// Publish: make two metadata keys resolvable through the cluster.
	article := pdht.QueryKey(pdht.Predicate{Element: "title", Value: "Weather Iráklion"})
	date := pdht.QueryKey(pdht.Predicate{Element: "date", Value: "2004/03/14"})
	if err := peer.PublishMany(ctx, []pdht.ClientKV{
		{Key: article, Value: 2001},
		{Key: date, Value: 2002},
	}); err != nil {
		log.Fatal(err)
	}

	// Connect a lightweight client — speaks the wire protocol, serves
	// nothing, appears in no membership view — and resolve a batch:
	// one OpBatch round trip per destination peer.
	cl, err := pdht.Open(ctx, append(opts, pdht.WithClientOnly(), pdht.WithSeeds(seed.Addr()))...)
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	results, err := cl.QueryMany(ctx, []uint64{article, date})
	if err != nil {
		log.Fatal(err)
	}
	for _, res := range results {
		fmt.Printf("answered=%v value=%d by=%s\n", res.Answered, res.Value, res.AnsweredBy)
	}
}
