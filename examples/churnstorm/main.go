// Churnstorm: why the paper's cost model is dominated by routing-table
// maintenance. Peers come and go on hour-scale sessions; the DHT probes its
// routing entries at rate env per entry per round to stay navigable
// (eq. 8, calibrated from [MaCa03]). This example sweeps the probe rate
// under harsh churn and shows the trade both ways: probe too little and
// lookups wander through stale entries or fail outright; probe too much
// and maintenance swamps every saving the index was built for.
//
//	go run ./examples/churnstorm
package main

import (
	"fmt"
	"log"

	"pdht"
)

func main() {
	base := pdht.DefaultSimConfig()
	base.Strategy = pdht.StrategyPartialTTL
	base.Peers = 1500
	base.Keys = 3000
	base.Repl = 15
	base.Rounds = 300
	base.WarmupRounds = 60
	// Harsh weather: five-minute sessions, half the population offline
	// at any moment.
	base.Churn = pdht.ChurnModel{MeanOnline: 300, MeanOffline: 300}

	fmt.Println("1500 peers, 50% online at any time, five-minute sessions")
	fmt.Println("sweeping the probe rate env (the paper uses 1/14):")
	fmt.Println()
	fmt.Printf("%-8s %14s %10s %10s %9s %11s\n",
		"env", "maint msg/rnd", "failures", "mean hops", "hit rate", "total msg")

	type row struct {
		env   float64
		total float64
	}
	var best row
	for _, env := range []float64{0, 1.0 / 100.0, 1.0 / 50.0, 1.0 / 14.0, 1.0 / 5.0, 1.0 / 2.0} {
		cfg := base
		cfg.Env = env
		res, err := pdht.Simulate(cfg)
		if err != nil {
			log.Fatal(err)
		}
		maint := 0.0
		for class, rate := range res.ByClass {
			if class.String() == "maintenance" {
				maint = rate
			}
		}
		fmt.Printf("%-8.4f %14.1f %10d %10.2f %9.3f %11.1f\n",
			env, maint, res.RouteFailures, res.MeanLookupHops, res.HitRate, res.MsgPerRound)
		if best.total == 0 || res.MsgPerRound < best.total {
			best = row{env: env, total: res.MsgPerRound}
		}
	}

	fmt.Println()
	fmt.Printf("cheapest total at env ≈ %.4f — below it, stale routing wastes hops;\n", best.env)
	fmt.Println("above it, probes are pure overhead. env is a real knob, not a constant.")
}
