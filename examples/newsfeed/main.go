// Newsfeed: the paper's motivating application (§1, §4) — a decentralized
// news system whose articles are described by metadata files. The example
// shows how element=value predicates become index keys, why the paper's
// key1 (title AND date) deserves indexing while key2 (size=2405) does not,
// and what partial indexing saves on the full Table 1 scenario.
//
//	go run ./examples/newsfeed
package main

import (
	"fmt"
	"log"

	"pdht"
)

func main() {
	// A corpus standing in for the paper's 2,000 articles × 20 keys.
	articles := pdht.GenerateArticles(2000, 7)
	totalKeys := 0
	for i := range articles {
		totalKeys += len(articles[i].Keys(20))
	}
	fmt.Printf("corpus: %d articles → %d metadata keys\n\n", len(articles), totalKeys)

	// The paper's example predicates.
	key1 := pdht.QueryKey(
		pdht.Predicate{Element: "title", Value: "Weather Iráklion"},
		pdht.Predicate{Element: "date", Value: "2004/03/14"},
	)
	key2 := pdht.QueryKey(pdht.Predicate{Element: "size", Value: "2405"})
	fmt.Printf("key1 = hash(title AND date) = %016x\n", key1)
	fmt.Printf("key2 = hash(size=2405)      = %016x\n\n", key2)

	// The model's verdict: with Zipf(1.2) popularity, a key queried like
	// a head key clears fMin easily; a key queried like deep tail never
	// does.
	scenario := pdht.DefaultScenario()
	sol, err := pdht.Solve(scenario)
	if err != nil {
		log.Fatal(err)
	}
	dist := sol // readable alias for the printout below
	fmt.Printf("indexing threshold fMin = %.3g queries/round\n", dist.FMin)
	fmt.Printf("→ a popular conjunction like key1 (rank ≈ 100) stays indexed\n")
	fmt.Printf("→ an incidental predicate like key2 (rank ≈ %d, beyond maxRank %d) times out\n\n",
		scenario.Keys, sol.MaxRank)

	// What the news system pays per second under each design.
	fmt.Printf("%-22s %12s\n", "design", "msg/s")
	fmt.Printf("%-22s %12.0f\n", "index everything", pdht.IndexAllCost(scenario))
	fmt.Printf("%-22s %12.0f\n", "broadcast everything", pdht.NoIndexCost(scenario))
	fmt.Printf("%-22s %12.0f\n\n", "query-adaptive PDHT", pdht.PartialCost(sol))

	// And across the day: the paper's busy (1/30) to calm (1/7200) range.
	pts, err := pdht.Sweep(scenario, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-8s %10s %10s %10s %10s\n", "fQry", "indexAll", "noIndex", "partial", "TTL algo")
	for _, p := range pts {
		fmt.Printf("%-8s %10.0f %10.0f %10.0f %10.0f\n",
			pdht.FormatFrequency(p.FQry), p.IndexAll, p.NoIndex, p.Partial, p.PartialTTL)
	}
}
