// Newsfeed: the paper's motivating application (§1, §4) — a decentralized
// news system whose articles are described by metadata files — served by a
// live cluster through the public client API. Element=value predicates
// become index keys, members host the corpus, and a non-serving client
// asks the paper's own example query in its own syntax; the model's
// verdict on what deserves indexing closes the loop.
//
//	go run ./examples/newsfeed
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"pdht"
)

// waitMembers blocks until every handle sees n members — the gossip
// layer's convergence barrier, polled through the public API.
func waitMembers(handles []*pdht.Client, n int) {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		converged := true
		for _, h := range handles {
			if len(h.Members()) != n {
				converged = false
				break
			}
		}
		if converged {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	log.Fatal("cluster did not converge")
}

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	// A corpus standing in for the paper's 2,000 articles × 20 keys.
	articles := pdht.GenerateArticles(200, 7)

	// A 3-member cluster over TCP loopback; the corpus' metadata keys are
	// published at the members round-robin (value = article ID).
	opts := []pdht.ClientOption{pdht.WithTCP(), pdht.WithRoundDuration(100 * time.Millisecond)}
	seedNode, err := pdht.Open(ctx, opts...)
	if err != nil {
		log.Fatal(err)
	}
	defer seedNode.Close()
	members := []*pdht.Client{seedNode}
	for i := 0; i < 2; i++ {
		m, err := pdht.Open(ctx, append(opts, pdht.WithSeeds(seedNode.Addr()))...)
		if err != nil {
			log.Fatal(err)
		}
		defer m.Close()
		members = append(members, m)
	}
	waitMembers(members, len(members))
	batches := make([][]pdht.ClientKV, len(members))
	totalKeys := 0
	for i := range articles {
		for _, ik := range articles[i].Keys(20) {
			m := i % len(members)
			batches[m] = append(batches[m], pdht.ClientKV{Key: uint64(ik.Key), Value: uint64(articles[i].ID)})
			totalKeys++
		}
	}
	for i, m := range members {
		if err := m.PublishMany(ctx, batches[i]); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("corpus: %d articles → %d metadata keys, hosted by %d members\n\n",
		len(articles), totalKeys, len(members))

	// A reader is a non-serving client: it speaks the wire protocol but
	// joins nothing. It asks in the paper's own syntax.
	reader, err := pdht.Open(ctx, pdht.WithTCP(), pdht.WithClientOnly(), pdht.WithSeeds(seedNode.Addr()))
	if err != nil {
		log.Fatal(err)
	}
	defer reader.Close()

	query := fmt.Sprintf("title=%s AND date=%s", articles[0].Title, articles[0].Date)
	first, err := reader.ParseAndQuery(ctx, query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%q\n  → article %d (broadcast resolved it: %d msgs; now inserted with keyTtl)\n",
		query, first.Value, first.Messages)
	second, err := reader.ParseAndQuery(ctx, query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  → repeat: fromIndex=%v (%d msgs)\n\n", second.FromIndex, second.Messages)

	// The whole front page in one batched request: the title key of every
	// tenth article, grouped by responsible peer, one round trip each.
	var frontPage []uint64
	for i := 0; i < len(articles); i += 10 {
		frontPage = append(frontPage,
			pdht.QueryKey(pdht.Predicate{Element: "title", Value: articles[i].Title}))
	}
	results, err := reader.QueryMany(ctx, frontPage)
	if err != nil {
		log.Fatal(err)
	}
	answered := 0
	for _, res := range results {
		if res.Answered {
			answered++
		}
	}
	fmt.Printf("front page: %d/%d title queries answered in one batch\n\n", answered, len(frontPage))

	// The model's verdict on the paper's two example keys: a popular
	// conjunction clears fMin, an incidental predicate never does.
	scenario := pdht.DefaultScenario()
	sol, err := pdht.Solve(scenario)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexing threshold fMin = %.3g queries/round\n", sol.FMin)
	fmt.Printf("→ a popular conjunction (rank ≈ 100) stays indexed\n")
	fmt.Printf("→ an incidental predicate (rank beyond maxRank %d) times out\n\n", sol.MaxRank)
	fmt.Printf("%-22s %12s\n", "design", "msg/s")
	fmt.Printf("%-22s %12.0f\n", "index everything", pdht.IndexAllCost(scenario))
	fmt.Printf("%-22s %12.0f\n", "broadcast everything", pdht.NoIndexCost(scenario))
	fmt.Printf("%-22s %12.0f\n", "query-adaptive PDHT", pdht.PartialCost(sol))
}
