// Topk: distributed top-k queries through the public API — the
// threshold-algorithm round protocol of internal/topk, coordinated by a
// member handle over a 4-node TCP cluster. Four peers host articles
// matching a 3-term query to different degrees; a cold QueryTopK walks
// the plan while the bound is unproven, every answered query credits the
// winning peers back into the adaptive planner, and the warm repeat
// probes the proven holders first — meeting the threshold and skipping
// the cold tail entirely. The same query class is reachable from the
// string mini-language via ParseAndQuery's "topk:<k>" prefix.
//
//	go run ./examples/topk
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"pdht"
)

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// 1. A 4-member TCP cluster on loopback. Replica sets of 2: the
	// planner's cold-start first round covers at least repl peers (fewer
	// could not even cover one document's holders), so a smaller repl
	// gives the warm plan room to concentrate.
	opts := []pdht.ClientOption{
		pdht.WithRoundDuration(100 * time.Millisecond),
		pdht.WithReplication(2),
	}
	seed, err := pdht.Open(ctx, opts...)
	if err != nil {
		log.Fatal(err)
	}
	defer seed.Close()
	members := []*pdht.Client{seed}
	for i := 0; i < 3; i++ {
		m, err := pdht.Open(ctx, append(opts, pdht.WithSeeds(seed.Addr()))...)
		if err != nil {
			log.Fatal(err)
		}
		defer m.Close()
		members = append(members, m)
	}
	waitMembers(members)

	// 2. The corpus. A document matches a term when its hosting peer
	// published it under that key; its score is the sum of matched term
	// weights (uniform 1 here), so full matches score 3.0.
	terms := []uint64{
		pdht.QueryKey(pdht.Predicate{Element: "title", Value: "weather"}),
		pdht.QueryKey(pdht.Predicate{Element: "title", Value: "crete"}),
		pdht.QueryKey(pdht.Predicate{Element: "date", Value: "2004/03/14"}),
	}
	publish := func(cl *pdht.Client, doc uint64, under []uint64) {
		kvs := make([]pdht.ClientKV, len(under))
		for i, term := range under {
			kvs[i] = pdht.ClientKV{Key: term, Value: doc}
		}
		if err := cl.PublishMany(ctx, kvs); err != nil {
			log.Fatal(err)
		}
	}
	publish(members[0], 401, terms)      // full match at the seed
	publish(members[1], 402, terms)      // full match at peer 1
	publish(members[2], 403, terms[:2])  // partial: 2 of 3 terms
	publish(members[3], 404, terms[2:3]) // partial: 1 of 3 terms

	// 3. Cold: the planner has no yield history, so the plan is blind —
	// the protocol keeps probing until the bound is proven.
	cold, err := seed.QueryTopK(ctx, terms, 2)
	if err != nil {
		log.Fatal(err)
	}
	report("cold", cold)

	// 4. Warm: the cold answer credited the winning hosts into the
	// planner's yield summary. The warm plan fronts them; two full-score
	// candidates meet the threshold (no unseen document can beat
	// maxScore) and the partial-match peers are never contacted.
	warm, err := seed.QueryTopK(ctx, terms, 2)
	if err != nil {
		log.Fatal(err)
	}
	report("warm", warm)
	if warm.Legs < cold.Legs || warm.Early {
		fmt.Printf("\nthe warm plan probed the proven holders first: "+
			"%d wire legs vs %d cold\n", warm.Legs, cold.Legs)
	}

	// 5. The same query through the string mini-language: "topk:<k>"
	// ahead of the paper's predicate syntax. The scalar Result carries
	// the best document.
	best, err := seed.ParseAndQuery(ctx,
		"topk:1 title=weather AND title=crete AND date=2004/03/14")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmini-language best document: %d (answered=%v)\n",
		best.Value, best.Answered)
}

// report prints one resolved top-k query: the ranked entries and what the
// round protocol paid for them.
func report(label string, res pdht.TopKResult) {
	fmt.Printf("%s query:\n", label)
	for i, e := range res.Entries {
		fmt.Printf("  #%d article %d (score %.1f)\n", i+1, e.Doc, e.Score)
	}
	fmt.Printf("  %d rounds, %d wire legs, %d peers probed, %d skipped, early=%v\n",
		res.Rounds, res.Legs, res.Probed, res.Skipped, res.Early)
}

// waitMembers blocks until every handle sees the full membership — the
// gossip layer's convergence barrier, polled through the public API.
func waitMembers(handles []*pdht.Client) {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		converged := true
		for _, h := range handles {
			if len(h.Members()) != len(handles) {
				converged = false
				break
			}
		}
		if converged {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	log.Fatal("cluster did not converge")
}
