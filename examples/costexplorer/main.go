// Costexplorer: an interactive what-if over the paper's cost model. Sweep
// any scenario dimension from the command line and see where the
// crossovers fall — when a DHT stops paying for itself, how workload skew
// changes the picture, and how big the index wants to be.
//
//	go run ./examples/costexplorer                 # the paper's scenario
//	go run ./examples/costexplorer -peers 100000   # a bigger network
//	go run ./examples/costexplorer -alpha 0.8      # flatter popularity
//	go run ./examples/costexplorer -repl 10        # scarcer replicas
package main

import (
	"flag"
	"fmt"
	"log"

	"pdht"
)

func main() {
	base := pdht.DefaultScenario()
	peers := flag.Int("peers", base.NumPeers, "total peers")
	keys := flag.Int("keys", base.Keys, "unique keys")
	repl := flag.Int("repl", base.Repl, "replication factor")
	stor := flag.Int("stor", base.Stor, "index slots per peer")
	alpha := flag.Float64("alpha", base.Alpha, "Zipf exponent")
	flag.Parse()

	s := base
	s.NumPeers, s.Keys, s.Repl, s.Stor, s.Alpha = *peers, *keys, *repl, *stor, *alpha
	pts, err := pdht.Sweep(s, nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("scenario: %d peers, %d keys, repl %d, stor %d, α %.2f\n",
		s.NumPeers, s.Keys, s.Repl, s.Stor, s.Alpha)
	fmt.Printf("broadcast search costs %.0f msgs\n\n", pdht.NoIndexCost(s)/s.TotalQueries())

	fmt.Printf("%-8s %11s %11s %11s %11s %9s %8s\n",
		"fQry", "indexAll", "noIndex", "partial", "TTL algo", "idx frac", "winner")
	var crossover string
	prevNoIndexWins := false
	for i, p := range pts {
		winner := "indexAll"
		best := p.IndexAll
		if p.NoIndex < best {
			winner, best = "noIndex", p.NoIndex
		}
		if p.Partial < best {
			winner = "partial"
		}
		noIndexWins := p.NoIndex < p.IndexAll
		if i > 0 && noIndexWins && !prevNoIndexWins {
			crossover = pdht.FormatFrequency(p.FQry)
		}
		prevNoIndexWins = noIndexWins
		fmt.Printf("%-8s %11.0f %11.0f %11.0f %11.0f %9.3f %8s\n",
			pdht.FormatFrequency(p.FQry), p.IndexAll, p.NoIndex, p.Partial,
			p.PartialTTL, p.IndexFraction, winner)
	}

	fmt.Println()
	if crossover != "" {
		fmt.Printf("baselines cross near fQry = %s: busier than that, maintain a DHT; calmer, just flood\n", crossover)
	} else {
		fmt.Println("one baseline dominates across the whole range")
	}
	fmt.Println("partial indexing beats both everywhere — it is the adaptive mix of the two")

	// The §5.1.1 robustness check for this scenario.
	sens, err := pdht.TTLSensitivity(s, nil, []float64{-0.5, 0.5})
	if err != nil {
		log.Fatal(err)
	}
	worst := 0.0
	for _, sp := range sens {
		if d := sp.DeltaSavings; d > worst {
			worst = d
		}
	}
	fmt.Printf("mis-estimating keyTtl by ±50%% costs at most %.3f of the savings here\n", worst)
}
