// Flashcrowd: the query distribution changes completely mid-run — the
// situation the paper argues partial indexes must survive ("the popularity
// of keys can change dramatically over time", §1; adaptation observed in
// §5.2). The selection algorithm is given no notice: old favorites simply
// stop being queried and expire, new favorites miss once, get broadcast,
// and enter the index.
//
//	go run ./examples/flashcrowd
package main

import (
	"fmt"
	"log"
	"strings"

	"pdht"
)

func main() {
	cfg := pdht.DefaultSimConfig()
	cfg.Strategy = pdht.StrategyPartialTTL
	cfg.Peers = 1500
	cfg.Keys = 3000
	cfg.Repl = 15
	cfg.Rounds = 700
	cfg.WarmupRounds = 100
	cfg.KeyTtl = 120 // short TTL so the handover is visible quickly
	cfg.TraceEvery = 50

	const shiftRound = 450
	cfg.Shifts = pdht.ShiftSchedule{
		{Round: shiftRound, Kind: pdht.ShiftShuffle},
	}

	res, err := pdht.Simulate(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("flash crowd at round %d: every key gets a new popularity rank\n", shiftRound)
	fmt.Printf("keyTtl %d rounds; watch the hit rate dip and recover:\n\n", cfg.KeyTtl)
	fmt.Printf("%-8s %-10s %-9s %s\n", "round", "hit rate", "indexed", "")
	for _, tp := range res.Trace {
		bar := strings.Repeat("█", int(tp.HitRate*40))
		marker := ""
		if tp.Round >= shiftRound && tp.Round < shiftRound+cfg.TraceEvery {
			marker = "  ← shift"
		}
		fmt.Printf("%-8d %-10.3f %-9d %s%s\n", tp.Round, tp.HitRate, tp.IndexedKeys, bar, marker)
	}

	fmt.Printf("\noverall: %.1f%% hit rate, %d of %d queries answered, %.0f msg/round\n",
		100*res.HitRate, res.Answered, res.Queries, res.MsgPerRound)
	fmt.Println("no peer was told about the shift — expiry and insert-on-miss did all the work")
}
