// Quickstart: the to-index-or-not decision and the selection algorithm in
// thirty lines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"pdht"
)

func main() {
	// 1. The analytical model (paper §2–4): at the paper's busy-period
	// query rate, how much of the key space is worth indexing?
	scenario := pdht.DefaultScenario()
	sol, err := pdht.Solve(scenario)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scenario: %d peers, %d keys, one query per peer every 30 s\n",
		scenario.NumPeers, scenario.Keys)
	fmt.Printf("broadcast search: %.0f msgs   index search: %.1f msgs\n",
		sol.CSUnstr, sol.CSIndx)
	fmt.Printf("indexing threshold fMin: %.2g queries/s → index the top %d keys (%.0f%%)\n",
		sol.FMin, sol.MaxRank, 100*float64(sol.MaxRank)/float64(scenario.Keys))
	fmt.Printf("cost: indexAll %.0f, noIndex %.0f, partial %.0f msg/s\n\n",
		pdht.IndexAllCost(scenario), pdht.NoIndexCost(scenario), pdht.PartialCost(sol))

	// 2. The selection algorithm (paper §5), simulated end to end on a
	// small network: peers flood on index misses, insert results with a
	// TTL, and the index converges to the popular keys on its own.
	cfg := pdht.DefaultSimConfig()
	cfg.Strategy = pdht.StrategyPartialTTL
	cfg.Peers = 1000
	cfg.Keys = 2000
	cfg.Repl = 10
	cfg.Rounds = 200
	cfg.WarmupRounds = 50
	res, err := pdht.Simulate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated %d peers for %d rounds (keyTtl %d rounds, derived from the model)\n",
		cfg.Peers, cfg.Rounds, res.KeyTtlUsed)
	fmt.Printf("measured: %.0f msg/round (model predicts %.0f)\n",
		res.MsgPerRound, res.ModelMsgPerRound)
	fmt.Printf("%.1f%% of queries answered from the index; index holds %.0f of %d keys\n",
		100*res.HitRate, res.MeanIndexedKeys, cfg.Keys)
}
