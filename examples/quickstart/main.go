// Quickstart: the to-index-or-not decision, and the selection algorithm
// running live — a real cluster over TCP loopback, embedded through the
// public client API in a few dozen lines.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"pdht"
)

// waitMembers blocks until every handle sees n members — the gossip
// layer's convergence barrier, polled through the public API.
func waitMembers(handles []*pdht.Client, n int) {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		converged := true
		for _, h := range handles {
			if len(h.Members()) != n {
				converged = false
				break
			}
		}
		if converged {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	log.Fatal("cluster did not converge")
}

func main() {
	// 1. The analytical model (paper §2–4): at the paper's busy-period
	// query rate, how much of the key space is worth indexing?
	scenario := pdht.DefaultScenario()
	sol, err := pdht.Solve(scenario)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scenario: %d peers, %d keys, one query per peer every 30 s\n",
		scenario.NumPeers, scenario.Keys)
	fmt.Printf("indexing threshold fMin: %.2g queries/s → index the top %d keys (%.0f%%)\n",
		sol.FMin, sol.MaxRank, 100*float64(sol.MaxRank)/float64(scenario.Keys))
	fmt.Printf("cost: indexAll %.0f, noIndex %.0f, partial %.0f msg/s\n\n",
		pdht.IndexAllCost(scenario), pdht.NoIndexCost(scenario), pdht.PartialCost(sol))

	// 2. The selection algorithm (paper §5), live: a 3-member cluster on
	// TCP loopback, built with pdht.Open. The first member seeds the
	// cluster; the others join through it.
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	opts := []pdht.ClientOption{pdht.WithTCP(), pdht.WithRoundDuration(100 * time.Millisecond)}
	seed, err := pdht.Open(ctx, opts...)
	if err != nil {
		log.Fatal(err)
	}
	defer seed.Close()
	var members []*pdht.Client
	for i := 0; i < 2; i++ {
		m, err := pdht.Open(ctx, append(opts, pdht.WithSeeds(seed.Addr()))...)
		if err != nil {
			log.Fatal(err)
		}
		defer m.Close()
		members = append(members, m)
	}
	waitMembers(append(members, seed), 3)
	fmt.Printf("3-member cluster on TCP loopback, seeded by %s\n", seed.Addr())

	// Members host content; a miss is resolved by broadcast and inserted
	// into the partial index with keyTtl.
	pairs := make([]pdht.ClientKV, 50)
	for i := range pairs {
		pairs[i] = pdht.ClientKV{Key: uint64(1000 + i), Value: uint64(i)}
	}
	if err := members[0].PublishMany(ctx, pairs); err != nil {
		log.Fatal(err)
	}

	first, err := members[1].Query(ctx, 1007)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cold query: answered=%v fromIndex=%v value=%d (%d msgs — the broadcast)\n",
		first.Answered, first.FromIndex, first.Value, first.Messages)
	second, err := seed.Query(ctx, 1007)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("repeat query: answered=%v fromIndex=%v (%d msgs — the index)\n\n",
		second.Answered, second.FromIndex, second.Messages)

	// 3. The batched access path: a non-serving client — it joins no
	// membership, serves nothing — resolves 32 keys with one OpBatch
	// round trip per destination peer.
	cl, err := pdht.Open(ctx, pdht.WithTCP(), pdht.WithClientOnly(), pdht.WithSeeds(seed.Addr()))
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	keys := make([]uint64, 32)
	for i := range keys {
		keys[i] = uint64(1000 + i)
	}
	results, err := cl.QueryMany(ctx, keys)
	if err != nil {
		log.Fatal(err)
	}
	answered, fromIndex, msgs := 0, 0, 0
	for _, res := range results {
		if res.Answered {
			answered++
		}
		if res.FromIndex {
			fromIndex++
		}
		msgs += res.Messages
	}
	fmt.Printf("client-only batch of %d keys: %d answered, %d from the index, %d msgs total\n",
		len(keys), answered, fromIndex, msgs)
	if rep, ok := seed.Report(); ok {
		fmt.Printf("\nseed's self-measurement:\n%s", rep)
	}
}
