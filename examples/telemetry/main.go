// Telemetry: the observability plane of a live cluster — per-query traces
// through WithTraceHook, the slow-query ring, and the debug HTTP endpoint
// every member node can serve (/metrics Prometheus text, /report JSON,
// /traces, /healthz, /debug/pprof).
//
//	go run ./examples/telemetry
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"

	"pdht"
)

// waitMembers blocks until every handle sees n members — the gossip
// layer's convergence barrier, polled through the public API.
func waitMembers(handles []*pdht.Client, n int) {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		converged := true
		for _, h := range handles {
			if len(h.Members()) != n {
				converged = false
				break
			}
		}
		if converged {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	log.Fatal("cluster did not converge")
}

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// 1. A 3-member cluster on TCP loopback, with a trace hook and the
	// slow-query log on the seed. In production each member runs in its own
	// process (cmd/pdht-node -http :6060 serves the same debug plane).
	var traces []pdht.QueryTrace
	opts := []pdht.ClientOption{pdht.WithRoundDuration(100 * time.Millisecond)}
	seed, err := pdht.Open(ctx, append(opts,
		pdht.WithTraceHook(func(qt pdht.QueryTrace) { traces = append(traces, qt) }),
		pdht.WithSlowQueryLog(1*time.Nanosecond, 16), // everything is "slow": a demo, not advice
	)...)
	if err != nil {
		log.Fatal(err)
	}
	defer seed.Close()
	handles := []*pdht.Client{seed}
	for i := 0; i < 2; i++ {
		m, err := pdht.Open(ctx, append(opts, pdht.WithSeeds(seed.Addr()))...)
		if err != nil {
			log.Fatal(err)
		}
		defer m.Close()
		handles = append(handles, m)
	}
	waitMembers(handles, 3)

	// 2. Publish and query: the cold query walks probe → broadcast →
	// insert; repeats hit the index. Every query lands in the hook.
	key := pdht.QueryKey(pdht.Predicate{Element: "title", Value: "Weather Iráklion"})
	if err := handles[1].Publish(ctx, key, 2001); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := seed.Query(ctx, key); err != nil {
			log.Fatal(err)
		}
	}

	// 3. The per-leg timelines the hook collected.
	fmt.Printf("=== %d traced queries ===\n", len(traces))
	for _, qt := range traces {
		fmt.Print(qt.Timeline())
	}

	// 4. The same queries, as the slow-query ring retains them (newest
	// first) — what /traces serves.
	fmt.Printf("=== slow-query ring: %d retained ===\n", len(seed.SlowQueries()))

	// 5. The debug HTTP plane, scraped like Prometheus would. The handler
	// mounts on any mux; cmd/pdht-node serves it with -http.
	handler, _ := seed.DebugHandler()
	srv := httptest.NewServer(handler)
	defer srv.Close()
	for _, path := range []string{"/healthz", "/metrics"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			log.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if path == "/metrics" {
			fmt.Println("=== /metrics (node-layer excerpt) ===")
			for _, line := range strings.Split(string(body), "\n") {
				if strings.HasPrefix(line, "pdht_node_queries_total") ||
					strings.HasPrefix(line, "pdht_node_hits_total") ||
					strings.HasPrefix(line, "pdht_node_broadcasts_total") {
					fmt.Println(line)
				}
			}
		} else {
			fmt.Printf("=== %s ===\n%s", path, body)
		}
	}
}
