// Fleet: cluster-wide observability through the public API — wire-propagated
// trace spans stitched into one cross-peer timeline, and ClusterReport, the
// fleet aggregation pdht-top renders live. A 3-member TCP cluster takes some
// traffic; one traced query shows the server-side legs of every peer it
// touched; then every member's metrics registry is polled over the OpStats
// RPC and merged into one FleetReport — per-peer rows plus pooled cluster
// quantiles and the measured msgs/query the paper's cost model prices.
//
//	go run ./examples/fleet
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"pdht"
)

// waitMembers blocks until every handle sees n members — the gossip
// layer's convergence barrier, polled through the public API.
func waitMembers(handles []*pdht.Client, n int) {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		converged := true
		for _, h := range handles {
			if len(h.Members()) != n {
				converged = false
				break
			}
		}
		if converged {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	log.Fatal("cluster did not converge")
}

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// 1. A 3-member TCP cluster. The seed keeps a trace hook; sampling is
	// on by default, so every traced query also carries its trace ID on the
	// wire and collects server-side spans from the peers it touches.
	var traces []pdht.QueryTrace
	opts := []pdht.ClientOption{pdht.WithRoundDuration(100 * time.Millisecond)}
	seed, err := pdht.Open(ctx, append(opts,
		pdht.WithTraceHook(func(qt pdht.QueryTrace) { traces = append(traces, qt) }),
		pdht.WithTraceSampling(1.0), // explicit, for the record: sample every traced query
	)...)
	if err != nil {
		log.Fatal(err)
	}
	defer seed.Close()
	handles := []*pdht.Client{seed}
	for i := 0; i < 2; i++ {
		m, err := pdht.Open(ctx, append(opts, pdht.WithSeeds(seed.Addr()))...)
		if err != nil {
			log.Fatal(err)
		}
		defer m.Close()
		handles = append(handles, m)
	}
	waitMembers(handles, 3)

	// 2. Publish a small corpus and drive queries from every member: cold
	// queries walk probe → broadcast → insert, repeats hit the index.
	keys := make([]uint64, 8)
	for i := range keys {
		keys[i] = pdht.QueryKey(pdht.Predicate{Element: "article", Value: fmt.Sprintf("a-%d", i)})
		if err := handles[i%3].Publish(ctx, keys[i], uint64(2000+i)); err != nil {
			log.Fatal(err)
		}
	}
	for round := 0; round < 3; round++ {
		for i, k := range keys {
			if _, err := handles[(round+i)%3].Query(ctx, k); err != nil {
				log.Fatal(err)
			}
		}
	}

	// 3. One stitched timeline: the seed's cold query crossed the wire, so
	// its record carries legs from the answering peers themselves (the
	// "@peer" lines) next to the client-side probes.
	for _, qt := range traces {
		if qt.Outcome == "broadcast" {
			fmt.Println("=== one cross-peer timeline (server-side legs are @peer) ===")
			fmt.Print(qt.Timeline())
			break
		}
	}

	// 4. The fleet view: every member polled over OpStats, merged into one
	// report. pdht-top renders exactly this, live.
	fr, err := seed.ClusterReport(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("=== ClusterReport: %d peers ===\n", len(fr.Peers))
	fmt.Printf("fleet: %d queries, hit %.1f%%, %.2f msgs/query, p50 %v p99 %v, keyTtl %.0f–%.0f\n",
		fr.Queries, 100*fr.HitRate, fr.MsgsPerQuery, fr.P50, fr.P99, fr.KeyTtlMin, fr.KeyTtlMax)
	for _, p := range fr.Peers {
		fmt.Printf("  %-22s qps %5.1f  hit %5.1f%%  p99 %8v  alive %d\n",
			p.Addr, p.QPS, 100*p.HitRate, p.P99, p.MembersAlive)
	}
}
