// Durable: the warm-restart story end to end — a member node publishes
// content into a data directory, is hard-stopped, and a new process
// reopened on the same directory answers the query without republishing
// anything. The second half shows the contrast: an in-memory member loses
// everything the moment it stops.
//
//	go run ./examples/durable
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"pdht"
)

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	dir, err := os.MkdirTemp("", "pdht-durable-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	opts := []pdht.ClientOption{
		pdht.WithTCP(),
		pdht.WithRoundDuration(100 * time.Millisecond),
		pdht.WithKeyTtl(600), // a minute of index lifetime: restarts are seconds
	}

	// Incarnation one: a durable single-member cluster. Every publish and
	// every index mutation is journaled to the write-ahead log under dir.
	first, err := pdht.Open(ctx, append(opts, pdht.WithDataDir(dir))...)
	if err != nil {
		log.Fatal(err)
	}
	const key, value = 42, 4242
	if err := first.Publish(ctx, key, value); err != nil {
		log.Fatal(err)
	}
	res, err := first.Query(ctx, key) // miss → broadcast → indexed with keyTtl
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("incarnation 1 (durable, %s):\n  published %d→%d, first query answered=%v value=%d\n",
		dir, key, value, res.Answered, res.Value)

	// Hard stop. (Close is graceful here — it compacts the WAL into a
	// snapshot — but a kill -9 recovers identically from the raw log; the
	// CI smoke job does exactly that to the pdht-node binary.)
	if err := first.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("  stopped.")

	// Incarnation two: a new process, same directory. Recovery replays the
	// snapshot and WAL before the node joins anything: content comes back
	// verbatim, index entries at their REMAINING TTL. Nothing is
	// republished — the query below is answered from recovered state.
	second, err := pdht.Open(ctx, append(opts, pdht.WithDataDir(dir))...)
	if err != nil {
		log.Fatal(err)
	}
	defer second.Close()
	res, err = second.Query(ctx, key)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("incarnation 2 (same dir, nothing republished):\n  query answered=%v fromIndex=%v value=%d\n",
		res.Answered, res.FromIndex, res.Value)
	if !res.Answered || res.Value != value {
		log.Fatalf("recovered node failed to answer %d→%d: %+v", key, value, res)
	}

	// The volatile contrast: the same restart without a data directory
	// comes back empty — the published pair is simply gone.
	volatile, err := pdht.Open(ctx, opts...)
	if err != nil {
		log.Fatal(err)
	}
	if err := volatile.Publish(ctx, key, value); err != nil {
		log.Fatal(err)
	}
	if err := volatile.Close(); err != nil {
		log.Fatal(err)
	}
	reborn, err := pdht.Open(ctx, opts...)
	if err != nil {
		log.Fatal(err)
	}
	defer reborn.Close()
	res, err = reborn.Query(ctx, key)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("volatile restart for contrast:\n  query answered=%v — in-memory state died with the process\n",
		res.Answered)
	if res.Answered {
		log.Fatal("volatile restart unexpectedly answered; the contrast is broken")
	}
}
