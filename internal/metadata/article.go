package metadata

import (
	"fmt"
	"sort"
	"strings"

	"pdht/internal/keyspace"
)

// Standard metadata element names, matching the paper's example
// (title = "Weather Iráklion", author = "Crete Weather Service",
// date = "2004/03/14", size = "2405").
const (
	ElemTitle    = "title"
	ElemAuthor   = "author"
	ElemDate     = "date"
	ElemSize     = "size"
	ElemCategory = "category"
	ElemTerm     = "term" // a single content term from the title/body
)

// Article is one news item together with its metadata file.
type Article struct {
	ID       int
	Title    string
	Author   string
	Date     string // YYYY/MM/DD, as in the paper's example
	Category string
	Size     int // bytes, like the paper's size = "2405"
	Body     string
}

// Elements returns the article's metadata as element→value pairs.
func (a *Article) Elements() map[string]string {
	return map[string]string{
		ElemTitle:    a.Title,
		ElemAuthor:   a.Author,
		ElemDate:     a.Date,
		ElemCategory: a.Category,
		ElemSize:     fmt.Sprintf("%d", a.Size),
	}
}

// Predicate is a single element = value condition.
type Predicate struct {
	Element string
	Value   string
}

// String renders the canonical form element=value, lowercased. Canonical
// form matters: the key for a predicate is the hash of this string, so two
// peers phrasing the same condition must produce identical keys.
func (p Predicate) String() string {
	return strings.ToLower(p.Element) + "=" + strings.ToLower(p.Value)
}

// Query is a conjunction of predicates (element1 = value1 AND
// element2 = value2, as in §1).
type Query struct {
	Predicates []Predicate
}

// Canonical returns the canonical string for the conjunction: predicates in
// lexicographic order joined by '&', so predicate order at the querying peer
// does not change the key.
func (q Query) Canonical() string {
	parts := make([]string, len(q.Predicates))
	for i, p := range q.Predicates {
		parts[i] = p.String()
	}
	sort.Strings(parts)
	return strings.Join(parts, "&")
}

// Key returns the index key for the query: the hash of its canonical form.
func (q Query) Key() keyspace.Key {
	return keyspace.HashString(q.Canonical())
}

// IndexKey is one (predicate-combination → key) pair extracted from an
// article's metadata: what actually gets inserted into the distributed
// index.
type IndexKey struct {
	Canonical string
	Key       keyspace.Key
}

// Keys generates the index keys for an article: single element=value pairs,
// content terms of the title (stop words removed), and the concatenated
// pairs the paper singles out as worth indexing (e.g. title AND date). The
// result is deduplicated and capped at maxKeys entries in a deterministic
// order; maxKeys ≤ 0 means no cap. The paper's scenario uses 20 keys per
// article.
func (a *Article) Keys(maxKeys int) []IndexKey {
	queries := make([]Query, 0, 24)
	single := func(elem, val string) {
		queries = append(queries, Query{Predicates: []Predicate{{elem, val}}})
	}
	// Single-element predicates over the whole metadata file.
	single(ElemTitle, a.Title)
	single(ElemAuthor, a.Author)
	single(ElemDate, a.Date)
	single(ElemCategory, a.Category)
	single(ElemSize, fmt.Sprintf("%d", a.Size))
	// Per-term predicates from the title and body, stop words removed.
	terms := ContentTerms(a.Title)
	terms = append(terms, ContentTerms(a.Body)...)
	for _, t := range terms {
		single(ElemTerm, t)
	}
	// Concatenated pairs — the paper's key1 = hash(title=… AND date=…).
	pair := func(e1, v1, e2, v2 string) {
		queries = append(queries, Query{Predicates: []Predicate{{e1, v1}, {e2, v2}}})
	}
	pair(ElemTitle, a.Title, ElemDate, a.Date)
	pair(ElemAuthor, a.Author, ElemDate, a.Date)
	pair(ElemCategory, a.Category, ElemDate, a.Date)
	pair(ElemAuthor, a.Author, ElemCategory, a.Category)
	pair(ElemTitle, a.Title, ElemAuthor, a.Author)
	pair(ElemTitle, a.Title, ElemCategory, a.Category)
	pair(ElemSize, fmt.Sprintf("%d", a.Size), ElemDate, a.Date)
	// Term-scoped refinements: what a reader actually types ("eruption
	// news from today", "weather stories in sport").
	for _, t := range terms {
		pair(ElemTerm, t, ElemDate, a.Date)
		pair(ElemTerm, t, ElemCategory, a.Category)
	}

	seen := make(map[string]bool, len(queries))
	out := make([]IndexKey, 0, len(queries))
	for _, q := range queries {
		c := q.Canonical()
		if seen[c] {
			continue
		}
		seen[c] = true
		out = append(out, IndexKey{Canonical: c, Key: q.Key()})
		if maxKeys > 0 && len(out) == maxKeys {
			break
		}
	}
	return out
}
