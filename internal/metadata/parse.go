package metadata

import (
	"fmt"
	"strings"
)

// ParseQuery parses the paper's query syntax — a conjunction of
// element = value predicates joined by AND (§1: "Queries may contain
// predicates on the different metadata attributes, such as
// element1 = value1 AND element2 = value2") — into a Query.
//
//	q, err := ParseQuery(`title=Weather Iráklion AND date=2004/03/14`)
//
// Element names and values are trimmed of surrounding whitespace; values
// may contain '=' (only the first one separates element from value) and
// internal spaces. The conjunction operator is the uppercase word AND
// surrounded by spaces, as the paper writes it; a lowercase " and " is
// literal value text ("title=supply and demand" is one predicate). The
// canonical key of the result does not depend on predicate order.
func ParseQuery(s string) (Query, error) {
	if strings.TrimSpace(s) == "" {
		return Query{}, fmt.Errorf("metadata: empty query")
	}
	parts := splitAnd(s)
	q := Query{Predicates: make([]Predicate, 0, len(parts))}
	for _, part := range parts {
		part = strings.TrimSpace(part)
		if part == "" {
			return Query{}, fmt.Errorf("metadata: empty predicate in %q", s)
		}
		eq := strings.IndexByte(part, '=')
		if eq < 0 {
			return Query{}, fmt.Errorf("metadata: predicate %q has no '='", part)
		}
		elem := strings.TrimSpace(part[:eq])
		val := strings.TrimSpace(part[eq+1:])
		if elem == "" {
			return Query{}, fmt.Errorf("metadata: predicate %q has no element name", part)
		}
		if val == "" {
			return Query{}, fmt.Errorf("metadata: predicate %q has no value", part)
		}
		q.Predicates = append(q.Predicates, Predicate{Element: elem, Value: val})
	}
	return q, nil
}

// splitAnd splits on the uppercase keyword " AND ", leaving lowercase
// "and" inside values untouched.
func splitAnd(s string) []string {
	return strings.Split(s, " AND ")
}
