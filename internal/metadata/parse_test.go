package metadata

import "testing"

func TestParseQueryPaperExample(t *testing.T) {
	q, err := ParseQuery("title=Weather Iráklion AND date=2004/03/14")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Predicates) != 2 {
		t.Fatalf("got %d predicates", len(q.Predicates))
	}
	want := Query{Predicates: []Predicate{
		{ElemTitle, "Weather Iráklion"}, {ElemDate, "2004/03/14"},
	}}
	if q.Key() != want.Key() {
		t.Errorf("parsed key differs from constructed key")
	}
}

func TestParseQuerySinglePredicate(t *testing.T) {
	q, err := ParseQuery("size=2405")
	if err != nil {
		t.Fatal(err)
	}
	if q.Canonical() != "size=2405" {
		t.Errorf("canonical = %q", q.Canonical())
	}
}

func TestParseQueryLowercaseAndIsLiteral(t *testing.T) {
	// Lowercase " and " is value text, not the conjunction operator.
	q, err := ParseQuery("title=supply and demand")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Predicates) != 1 {
		t.Fatalf("got %d predicates: %+v", len(q.Predicates), q.Predicates)
	}
	if q.Predicates[0].Value != "supply and demand" {
		t.Errorf("value = %q", q.Predicates[0].Value)
	}
}

func TestParseQueryValueQuirks(t *testing.T) {
	// Values may contain '=' and the letters "and".
	q, err := ParseQuery("title=supply and demand AND author=x=y")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Predicates) != 2 {
		t.Fatalf("got %d predicates: %+v", len(q.Predicates), q.Predicates)
	}
	if q.Predicates[0].Value != "supply and demand" {
		t.Errorf("value = %q", q.Predicates[0].Value)
	}
	if q.Predicates[1].Value != "x=y" {
		t.Errorf("value = %q", q.Predicates[1].Value)
	}
}

func TestParseQueryWhitespace(t *testing.T) {
	q, err := ParseQuery("  title =  Weather   AND  date = 2004/03/14 ")
	if err != nil {
		t.Fatal(err)
	}
	if q.Predicates[0].Element != "title" || q.Predicates[0].Value != "Weather" {
		t.Errorf("trimming failed: %+v", q.Predicates[0])
	}
}

func TestParseQueryErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"   ",
		"title",
		"=value",
		"title=",
		"a=1 AND ",
		"a=1 AND b",
	} {
		if _, err := ParseQuery(bad); err == nil {
			t.Errorf("ParseQuery(%q) succeeded", bad)
		}
	}
}

func TestParseQueryOrderIndependentKey(t *testing.T) {
	a, _ := ParseQuery("x=1 AND y=2")
	b, _ := ParseQuery("y=2 AND x=1")
	if a.Key() != b.Key() {
		t.Error("predicate order changed the parsed key")
	}
}
