package metadata

import (
	"fmt"
	"math/rand/v2"
)

// Corpus generation: a deterministic synthetic news corpus standing in for
// the paper's "2,000 unique news articles" (§4). Titles are built from small
// word pools (including stop words, so the stop-word path is exercised),
// authors are drawn from a fixed set of news services, dates walk backward
// from a fixed day, and sizes are plausible article byte counts.

var (
	genTopics = []string{
		"weather", "election", "markets", "football", "earthquake",
		"festival", "harvest", "strike", "summit", "discovery",
		"eruption", "drought", "regatta", "census", "exhibition",
	}
	genPlaces = []string{
		"iraklion", "lausanne", "geneva", "athens", "zurich",
		"chania", "bern", "patras", "basel", "rethymno",
	}
	genConnectors = []string{
		"in the", "at", "hits the", "update from", "report on the",
	}
	genAuthors = []string{
		"Crete Weather Service", "Alpine News Agency", "Hellenic Press",
		"Lakeside Daily", "Island Courier", "Mountain Observer",
		"Harbor Gazette", "Valley Tribune",
	}
	genCategories = []string{
		"weather", "politics", "economy", "sport", "science", "culture",
	}
	genBodyWords = []string{
		"officials", "residents", "measurements", "forecast", "season",
		"committee", "results", "analysis", "response", "preparations",
		"vessels", "records", "observers", "ministry", "announcement",
	}
)

// GenerateArticles returns n synthetic articles, deterministic for a given
// seed. IDs are 0..n−1.
func GenerateArticles(n int, seed uint64) []Article {
	rng := rand.New(rand.NewPCG(seed, seed^0x5bf03635))
	out := make([]Article, n)
	for i := range out {
		out[i] = generateOne(i, rng)
	}
	return out
}

func generateOne(id int, rng *rand.Rand) Article {
	topic := genTopics[rng.IntN(len(genTopics))]
	place := genPlaces[rng.IntN(len(genPlaces))]
	conn := genConnectors[rng.IntN(len(genConnectors))]
	title := fmt.Sprintf("%s %s %s", topic, conn, place)
	// Dates walk backward one day per ~80 articles so the corpus spans a
	// few weeks, like a real news archive; exact calendar validity is
	// irrelevant, only that equal strings hash equal.
	day := 28 - (id/80)%28
	month := 3 - (id/(80*28))%3
	if month < 1 {
		month = 1
	}
	body := fmt.Sprintf("the %s and the %s of %s",
		genBodyWords[rng.IntN(len(genBodyWords))],
		genBodyWords[rng.IntN(len(genBodyWords))],
		place)
	return Article{
		ID:       id,
		Title:    title,
		Author:   genAuthors[rng.IntN(len(genAuthors))],
		Date:     fmt.Sprintf("2004/%02d/%02d", month, day),
		Category: genCategories[rng.IntN(len(genCategories))],
		Size:     800 + rng.IntN(4000),
		Body:     body,
	}
}

// CorpusKeys generates the index keys of every article, capped at
// keysPerArticle each (the paper's scenario: 2,000 articles × 20 keys =
// 40,000 keys). Keys are returned grouped per article, in article order.
func CorpusKeys(articles []Article, keysPerArticle int) [][]IndexKey {
	out := make([][]IndexKey, len(articles))
	for i := range articles {
		out[i] = articles[i].Keys(keysPerArticle)
	}
	return out
}
