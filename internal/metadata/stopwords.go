// Package metadata models the decentralized news system that motivates the
// paper (§1, §4): peers publish news articles described by metadata files of
// element–value pairs (title, author, date, size, …). Queries are
// conjunctions of predicates over those elements; index keys are obtained by
// hashing single or concatenated element=value pairs, after removing stop
// words — "a standard approach in information retrieval" that the paper
// assumes (§4). Article is one generated news item; Query a parsed
// conjunction of Predicates; IndexKey a hashed element=value pair — the
// unit the DHT actually indexes.
package metadata

import "strings"

// stopWords is the globally known stop-word set the paper assumes all peers
// share (§4). It is the usual short-function-word list used in IR systems.
var stopWords = map[string]bool{
	"a": true, "an": true, "and": true, "are": true, "as": true, "at": true,
	"be": true, "but": true, "by": true, "for": true, "from": true,
	"has": true, "he": true, "in": true, "is": true, "it": true, "its": true,
	"of": true, "on": true, "or": true, "that": true, "the": true,
	"their": true, "then": true, "there": true, "these": true, "they": true,
	"this": true, "to": true, "was": true, "were": true, "will": true,
	"with": true, "not": true, "no": true, "so": true, "we": true,
}

// IsStopWord reports whether w (case-insensitive) is in the shared stop-word
// set.
func IsStopWord(w string) bool {
	return stopWords[strings.ToLower(w)]
}

// ContentTerms tokenizes s on whitespace, lowercases, strips surrounding
// punctuation, and removes stop words and empty tokens — the terms worth
// considering as index keys.
func ContentTerms(s string) []string {
	fields := strings.Fields(strings.ToLower(s))
	out := make([]string, 0, len(fields))
	for _, f := range fields {
		f = strings.Trim(f, ".,;:!?\"'()[]{}")
		if f == "" || stopWords[f] {
			continue
		}
		out = append(out, f)
	}
	return out
}
