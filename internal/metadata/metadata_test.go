package metadata

import (
	"strings"
	"testing"

	"pdht/internal/keyspace"
)

func TestIsStopWord(t *testing.T) {
	for _, w := range []string{"the", "The", "AND", "of"} {
		if !IsStopWord(w) {
			t.Errorf("IsStopWord(%q) = false, want true", w)
		}
	}
	for _, w := range []string{"weather", "iraklion", ""} {
		if IsStopWord(w) {
			t.Errorf("IsStopWord(%q) = true, want false", w)
		}
	}
}

func TestContentTerms(t *testing.T) {
	got := ContentTerms("The Weather in Iráklion, today!")
	want := []string{"weather", "iráklion", "today"}
	if len(got) != len(want) {
		t.Fatalf("ContentTerms = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("term %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestContentTermsEmptyAndAllStops(t *testing.T) {
	if terms := ContentTerms(""); len(terms) != 0 {
		t.Errorf("ContentTerms(\"\") = %v", terms)
	}
	if terms := ContentTerms("the and of to"); len(terms) != 0 {
		t.Errorf("all-stop-word input produced %v", terms)
	}
}

func TestPredicateCanonical(t *testing.T) {
	p := Predicate{Element: "Title", Value: "Weather Iráklion"}
	if got := p.String(); got != "title=weather iráklion" {
		t.Errorf("Predicate.String = %q", got)
	}
}

func TestQueryCanonicalOrderIndependent(t *testing.T) {
	q1 := Query{Predicates: []Predicate{
		{ElemTitle, "Weather Iraklion"}, {ElemDate, "2004/03/14"},
	}}
	q2 := Query{Predicates: []Predicate{
		{ElemDate, "2004/03/14"}, {ElemTitle, "Weather Iraklion"},
	}}
	if q1.Canonical() != q2.Canonical() {
		t.Errorf("canonical forms differ: %q vs %q", q1.Canonical(), q2.Canonical())
	}
	if q1.Key() != q2.Key() {
		t.Error("keys differ for the same conjunction in different order")
	}
}

func TestQueryKeyMatchesHash(t *testing.T) {
	q := Query{Predicates: []Predicate{{ElemSize, "2405"}}}
	if q.Key() != keyspace.HashString("size=2405") {
		t.Error("query key must be the hash of the canonical form")
	}
}

func TestArticleKeysPaperExample(t *testing.T) {
	a := Article{
		ID:     1,
		Title:  "Weather Iráklion",
		Author: "Crete Weather Service",
		Date:   "2004/03/14",
		Size:   2405,
	}
	keys := a.Keys(0)
	byCanon := make(map[string]bool, len(keys))
	for _, k := range keys {
		byCanon[k.Canonical] = true
	}
	// The paper's key1: hash(title=… AND date=…) must be generated.
	if !byCanon["date=2004/03/14&title=weather iráklion"] {
		t.Errorf("missing paper's key1; got %v", keysCanonicals(keys))
	}
	// The paper's key2: hash(size=2405) — generated too (the model, not
	// the generator, decides it is not worth indexing).
	if !byCanon["size=2405"] {
		t.Errorf("missing size predicate; got %v", keysCanonicals(keys))
	}
	// Stop words never become term keys.
	for c := range byCanon {
		if strings.HasPrefix(c, "term=") && IsStopWord(strings.TrimPrefix(c, "term=")) {
			t.Errorf("stop word indexed: %q", c)
		}
	}
}

func keysCanonicals(keys []IndexKey) []string {
	out := make([]string, len(keys))
	for i, k := range keys {
		out[i] = k.Canonical
	}
	return out
}

func TestArticleKeysDeduplicated(t *testing.T) {
	a := Article{Title: "weather weather weather", Author: "x", Date: "2004/01/01", Category: "weather", Size: 1}
	keys := a.Keys(0)
	seen := make(map[string]bool)
	for _, k := range keys {
		if seen[k.Canonical] {
			t.Fatalf("duplicate canonical %q", k.Canonical)
		}
		seen[k.Canonical] = true
	}
}

func TestArticleKeysCap(t *testing.T) {
	a := Article{Title: "alpha beta gamma delta epsilon", Author: "a", Date: "d", Category: "c", Size: 9}
	if got := len(a.Keys(3)); got != 3 {
		t.Errorf("capped Keys returned %d, want 3", got)
	}
	uncapped := len(a.Keys(0))
	if uncapped < 8 {
		t.Errorf("uncapped Keys returned only %d", uncapped)
	}
	if got := len(a.Keys(uncapped + 10)); got != uncapped {
		t.Errorf("cap beyond natural count returned %d, want %d", got, uncapped)
	}
}

func TestGenerateArticlesDeterministic(t *testing.T) {
	a := GenerateArticles(50, 7)
	b := GenerateArticles(50, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("article %d differs across runs with same seed", i)
		}
	}
	c := GenerateArticles(50, 8)
	same := 0
	for i := range a {
		if a[i].Title == c[i].Title {
			same++
		}
	}
	if same == 50 {
		t.Error("different seeds produced identical corpora")
	}
}

func TestGenerateArticlesIDs(t *testing.T) {
	arts := GenerateArticles(10, 1)
	for i, a := range arts {
		if a.ID != i {
			t.Errorf("article %d has ID %d", i, a.ID)
		}
		if a.Size < 800 || a.Size >= 4800 {
			t.Errorf("article %d has implausible size %d", i, a.Size)
		}
		if a.Title == "" || a.Author == "" || a.Date == "" {
			t.Errorf("article %d has empty metadata: %+v", i, a)
		}
	}
}

func TestCorpusKeysScenarioScale(t *testing.T) {
	// The paper's scenario: 2,000 articles × 20 keys = 40,000 keys.
	// Our generator must be able to supply 20 distinct keys per article.
	arts := GenerateArticles(100, 3)
	grouped := CorpusKeys(arts, 20)
	for i, keys := range grouped {
		if len(keys) != 20 {
			t.Fatalf("article %d generated %d keys, want 20 (title %q)",
				i, len(keys), arts[i].Title)
		}
	}
}

func TestElements(t *testing.T) {
	a := Article{Title: "t", Author: "au", Date: "d", Category: "c", Size: 5}
	e := a.Elements()
	if e[ElemTitle] != "t" || e[ElemSize] != "5" {
		t.Errorf("Elements() = %v", e)
	}
}
