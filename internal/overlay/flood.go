package overlay

import (
	"pdht/internal/netsim"
	"pdht/internal/stats"
)

// FloodResult reports the outcome and cost of one flood.
type FloodResult struct {
	// Reached is the number of distinct online peers that processed the
	// query (including the origin).
	Reached int
	// Messages is the number of transmissions, counting the duplicate
	// deliveries that give flooding its dup factor.
	Messages int
	// Found reports whether any reached peer matched.
	Found bool
	// FoundAt is the first matching peer (breadth-first order); only
	// meaningful when Found.
	FoundAt netsim.PeerID
}

// DupFactor returns Messages/Reached — the paper's message duplication
// factor dup, measured rather than assumed.
func (r FloodResult) DupFactor() float64 {
	if r.Reached == 0 {
		return 0
	}
	return float64(r.Messages) / float64(r.Reached)
}

// Flood performs a Gnutella-style breadth-first flood from origin with the
// given TTL: every online peer that sees the query for the first time
// forwards it to all neighbors except the one it came from, until the TTL
// expires. Every transmission to an online peer is one message of the given
// class; duplicates are delivered (and counted) but not re-forwarded. The
// flood does not stop early on a match — Gnutella queries keep propagating —
// so its cost is independent of where the data sits.
//
// match may be nil when the flood is used purely for dissemination.
func (g *Graph) Flood(origin netsim.PeerID, ttl int, match func(netsim.PeerID) bool, class stats.MsgClass) FloodResult {
	res := FloodResult{}
	if !g.net.Online(origin) {
		return res
	}
	visited := make(map[netsim.PeerID]bool, 64)
	visited[origin] = true
	res.Reached = 1
	if match != nil && match(origin) {
		res.Found, res.FoundAt = true, origin
	}
	frontier := []netsim.PeerID{origin}
	for depth := 0; depth < ttl && len(frontier) > 0; depth++ {
		var next []netsim.PeerID
		for _, p := range frontier {
			for _, q := range g.adj[p] {
				if !g.net.Online(q) {
					// A connection to an offline peer is
					// already torn down; nothing is sent.
					continue
				}
				res.Messages++
				if visited[q] {
					continue // duplicate delivery
				}
				visited[q] = true
				res.Reached++
				if match != nil && !res.Found && match(q) {
					res.Found, res.FoundAt = true, q
				}
				next = append(next, q)
			}
		}
		frontier = next
	}
	g.net.Send(class, int64(res.Messages))
	return res
}
