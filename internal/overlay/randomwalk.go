package overlay

import (
	"math/rand/v2"

	"pdht/internal/netsim"
	"pdht/internal/stats"
)

// WalkResult reports the outcome and cost of a multi-walker search.
type WalkResult struct {
	// Found reports whether any walker hit a matching peer.
	Found bool
	// FoundAt is the matching peer; only meaningful when Found.
	FoundAt netsim.PeerID
	// Messages is the number of walker steps taken (one message each).
	Messages int
	// Visited is the number of peer visits, counting revisits.
	Visited int
}

// RandomWalks searches the overlay with the [LvCa02] strategy the paper's
// cost model assumes: `walkers` concurrent random walks from origin, each
// stepping to a uniformly random online neighbor, checking every visited
// peer against match. Walkers advance in lockstep and all stop as soon as
// one finds a match — the idealization of the paper's "checking back with
// the requester". Each step is one message of the given class.
//
// A walker with no online neighbor dies. The search gives up when all
// walkers are dead or each has taken maxSteps steps.
func (g *Graph) RandomWalks(origin netsim.PeerID, walkers, maxSteps int, match func(netsim.PeerID) bool, rng *rand.Rand, class stats.MsgClass) WalkResult {
	res := WalkResult{}
	defer func() { g.net.Send(class, int64(res.Messages)) }()
	if !g.net.Online(origin) || walkers < 1 || maxSteps < 1 {
		return res
	}
	res.Visited = 1
	if match(origin) {
		res.Found, res.FoundAt = true, origin
		return res
	}
	at := make([]netsim.PeerID, 0, walkers)
	prev := make([]netsim.PeerID, 0, walkers)
	for i := 0; i < walkers; i++ {
		at = append(at, origin)
		prev = append(prev, -1)
	}
	for step := 0; step < maxSteps && len(at) > 0; step++ {
		alive := at[:0]
		alivePrev := prev[:0]
		for i := range at {
			next, ok := g.onlineNeighbor(at[i], prev[i], rng)
			if !ok {
				// Allow doubling back before giving up: a
				// degree-1 peer's only exit is where it came
				// from.
				next, ok = g.onlineNeighbor(at[i], -1, rng)
			}
			if !ok {
				continue // walker dies
			}
			res.Messages++
			res.Visited++
			if match(next) {
				res.Found, res.FoundAt = true, next
				return res
			}
			alivePrev = append(alivePrev, at[i])
			alive = append(alive, next)
		}
		at, prev = alive, alivePrev
	}
	return res
}

// SearchConfig tunes the unstructured search that stands in for cSUnstr.
type SearchConfig struct {
	// Walkers is the number of concurrent random walks (k in [LvCa02]).
	Walkers int
	// MaxSteps bounds each walker's length. Zero means "enough to cover
	// the expected numPeers/repl visits with a 4× safety margin".
	MaxSteps int
	// FloodTTL bounds the fallback flood used when the walks fail; the
	// paper assumes the unstructured search always finds existing data,
	// so exhausted walks fall back to flooding. Zero disables fallback.
	FloodTTL int
}

// Search runs the paper's unstructured search: k random walks, falling back
// to a flood if they fail. It reports whether a matching peer was found and
// leaves the message counts on the network's counters (class
// stats.MsgBroadcast).
func (g *Graph) Search(origin netsim.PeerID, cfg SearchConfig, expectedCopies int, match func(netsim.PeerID) bool, rng *rand.Rand) (found bool, messages int) {
	walkers := cfg.Walkers
	if walkers < 1 {
		walkers = 16
	}
	maxSteps := cfg.MaxSteps
	if maxSteps < 1 {
		// Expected visits to hit one of expectedCopies random holders
		// is about n/expectedCopies; spread across walkers with 4×
		// margin.
		n := g.net.Size()
		if expectedCopies < 1 {
			expectedCopies = 1
		}
		maxSteps = 4*n/(expectedCopies*walkers) + 1
	}
	wr := g.RandomWalks(origin, walkers, maxSteps, match, rng, stats.MsgBroadcast)
	if wr.Found {
		return true, wr.Messages
	}
	if cfg.FloodTTL > 0 {
		fr := g.Flood(origin, cfg.FloodTTL, match, stats.MsgBroadcast)
		return fr.Found, wr.Messages + fr.Messages
	}
	return false, wr.Messages
}
