package overlay

import (
	"math/rand/v2"
	"testing"

	"pdht/internal/keyspace"
	"pdht/internal/netsim"
	"pdht/internal/stats"
)

func newGraph(t *testing.T, n, degree int, seed uint64) (*Graph, *netsim.Network, *rand.Rand) {
	t.Helper()
	net := netsim.New(n)
	rng := rand.New(rand.NewPCG(seed, seed^0xdeadbeef))
	g, err := NewRandomGraph(net, degree, rng)
	if err != nil {
		t.Fatal(err)
	}
	return g, net, rng
}

func TestNewRandomGraphValidation(t *testing.T) {
	net := netsim.New(10)
	rng := rand.New(rand.NewPCG(1, 2))
	for _, d := range []int{0, -1, 10, 50} {
		if _, err := NewRandomGraph(net, d, rng); err == nil {
			t.Errorf("degree %d accepted", d)
		}
	}
}

func TestGraphDegreeAndSymmetry(t *testing.T) {
	g, _, _ := newGraph(t, 500, 4, 1)
	var total int
	for i := 0; i < 500; i++ {
		p := netsim.PeerID(i)
		if g.Degree(p) < 4 {
			t.Errorf("peer %d has degree %d < 4", i, g.Degree(p))
		}
		total += g.Degree(p)
		for _, q := range g.Neighbors(p) {
			found := false
			for _, r := range g.Neighbors(q) {
				if r == p {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("edge %d—%d not symmetric", p, q)
			}
		}
	}
	mean := g.MeanDegree()
	if mean < 7 || mean > 9 { // each peer opens 4, receives ≈4
		t.Errorf("mean degree = %v, want ≈ 8", mean)
	}
	if total != int(mean*500) {
		t.Errorf("MeanDegree inconsistent with sum")
	}
}

func TestFloodReachesEveryoneWhenConnected(t *testing.T) {
	g, net, _ := newGraph(t, 300, 4, 2)
	res := g.Flood(0, 50, nil, stats.MsgBroadcast)
	if res.Reached != 300 {
		t.Errorf("flood reached %d of 300 peers", res.Reached)
	}
	if res.Messages <= res.Reached {
		t.Errorf("flood sent %d messages for %d peers — no duplicates in a random graph is implausible", res.Messages, res.Reached)
	}
	if d := res.DupFactor(); d < 1 || d > 10 {
		t.Errorf("dup factor = %v, want a small multiple of 1", d)
	}
	if got := net.Counters().Get(stats.MsgBroadcast); got != int64(res.Messages) {
		t.Errorf("counters recorded %d, result says %d", got, res.Messages)
	}
}

func TestFloodTTLLimitsReach(t *testing.T) {
	g, _, _ := newGraph(t, 2000, 3, 3)
	shallow := g.Flood(0, 1, nil, stats.MsgBroadcast)
	deep := g.Flood(0, 6, nil, stats.MsgBroadcast)
	if shallow.Reached >= deep.Reached {
		t.Errorf("TTL=1 reached %d, TTL=6 reached %d", shallow.Reached, deep.Reached)
	}
	// TTL 1 reaches exactly origin + its online neighbors.
	if want := g.Degree(0) + 1; shallow.Reached != want {
		t.Errorf("TTL=1 reached %d, want %d", shallow.Reached, want)
	}
}

func TestFloodSkipsOfflinePeers(t *testing.T) {
	g, net, _ := newGraph(t, 200, 4, 4)
	for i := 100; i < 200; i++ {
		net.SetOnline(netsim.PeerID(i), false)
	}
	res := g.Flood(0, 50, nil, stats.MsgBroadcast)
	if res.Reached > 100 {
		t.Errorf("flood reached %d peers but only 100 are online", res.Reached)
	}
}

func TestFloodFromOfflineOrigin(t *testing.T) {
	g, net, _ := newGraph(t, 50, 3, 5)
	net.SetOnline(7, false)
	res := g.Flood(7, 10, nil, stats.MsgBroadcast)
	if res.Reached != 0 || res.Messages != 0 || res.Found {
		t.Errorf("offline origin flooded: %+v", res)
	}
}

func TestFloodMatch(t *testing.T) {
	g, _, _ := newGraph(t, 100, 3, 6)
	res := g.Flood(0, 20, func(p netsim.PeerID) bool { return p == 42 }, stats.MsgBroadcast)
	if !res.Found || res.FoundAt != 42 {
		t.Errorf("flood did not find peer 42: %+v", res)
	}
	res = g.Flood(0, 20, func(netsim.PeerID) bool { return false }, stats.MsgBroadcast)
	if res.Found {
		t.Error("flood found a match where none exists")
	}
}

func TestRandomWalksFindPlantedContent(t *testing.T) {
	g, _, rng := newGraph(t, 1000, 4, 7)
	store := NewStore(g.Net())
	key := keyspace.HashString("title=weather iraklion")
	if _, err := store.ReplicateRandom(key, 50, rng); err != nil {
		t.Fatal(err)
	}
	res := g.RandomWalks(0, 16, 200, store.OnlineHolderMatch(key), rng, stats.MsgBroadcast)
	if !res.Found {
		t.Fatal("random walks failed to find content replicated at 5% of peers")
	}
	if !store.HasAt(res.FoundAt, key) {
		t.Errorf("walks claim key at %d, which holds nothing", res.FoundAt)
	}
	// The point of walks over flooding (and of replication): far fewer
	// messages than visiting everyone.
	if res.Messages >= 1000 {
		t.Errorf("walks used %d messages — no better than flooding", res.Messages)
	}
}

func TestRandomWalksRespectBudget(t *testing.T) {
	g, _, rng := newGraph(t, 500, 4, 8)
	res := g.RandomWalks(0, 8, 10, func(netsim.PeerID) bool { return false }, rng, stats.MsgBroadcast)
	if res.Found {
		t.Error("found nonexistent content")
	}
	if res.Messages > 8*10 {
		t.Errorf("walks took %d steps, budget is 80", res.Messages)
	}
}

func TestRandomWalksDegenerateInputs(t *testing.T) {
	g, net, rng := newGraph(t, 50, 3, 9)
	match := func(netsim.PeerID) bool { return false }
	if res := g.RandomWalks(0, 0, 10, match, rng, stats.MsgBroadcast); res.Messages != 0 {
		t.Error("zero walkers should send nothing")
	}
	if res := g.RandomWalks(0, 4, 0, match, rng, stats.MsgBroadcast); res.Messages != 0 {
		t.Error("zero steps should send nothing")
	}
	net.SetOnline(3, false)
	if res := g.RandomWalks(3, 4, 10, match, rng, stats.MsgBroadcast); res.Messages != 0 {
		t.Error("offline origin should send nothing")
	}
}

func TestRandomWalksMatchAtOrigin(t *testing.T) {
	g, _, rng := newGraph(t, 50, 3, 10)
	res := g.RandomWalks(5, 4, 10, func(p netsim.PeerID) bool { return p == 5 }, rng, stats.MsgBroadcast)
	if !res.Found || res.FoundAt != 5 || res.Messages != 0 {
		t.Errorf("origin match should be free: %+v", res)
	}
}

func TestRandomWalksDieInDeadNeighborhood(t *testing.T) {
	g, net, rng := newGraph(t, 100, 3, 11)
	// Kill everyone but the origin: walkers cannot take a single step.
	for i := 1; i < 100; i++ {
		net.SetOnline(netsim.PeerID(i), false)
	}
	res := g.RandomWalks(0, 8, 50, func(netsim.PeerID) bool { return false }, rng, stats.MsgBroadcast)
	if res.Found || res.Messages != 0 {
		t.Errorf("walkers escaped a dead neighborhood: %+v", res)
	}
}

func TestSearchFallsBackToFlood(t *testing.T) {
	g, _, rng := newGraph(t, 400, 4, 12)
	store := NewStore(g.Net())
	key := keyspace.HashString("rare")
	if _, err := store.ReplicateRandom(key, 1, rng); err != nil {
		t.Fatal(err)
	}
	// One replica in 400 peers with a starved walk budget: the fallback
	// flood must still find it (the paper assumes unstructured search
	// always finds existing keys).
	cfg := SearchConfig{Walkers: 2, MaxSteps: 2, FloodTTL: 50}
	found, msgs := g.Search(0, cfg, 1, store.OnlineHolderMatch(key), rng)
	if !found {
		t.Fatal("search with flood fallback missed existing content")
	}
	if msgs <= 4 {
		t.Errorf("fallback search reported only %d messages", msgs)
	}
}

func TestSearchDefaultBudget(t *testing.T) {
	g, _, rng := newGraph(t, 1000, 4, 13)
	store := NewStore(g.Net())
	key := keyspace.HashString("common")
	if _, err := store.ReplicateRandom(key, 100, rng); err != nil {
		t.Fatal(err)
	}
	found, msgs := g.Search(0, SearchConfig{}, 100, store.OnlineHolderMatch(key), rng)
	if !found {
		t.Fatal("default search missed content at 10% of peers")
	}
	// Expected cost ≈ numPeers/repl·dup = 10·dup; allow generous slack.
	if msgs > 400 {
		t.Errorf("default search used %d messages for 10%% replication", msgs)
	}
}

func TestStoreReplicateRandom(t *testing.T) {
	net := netsim.New(100)
	rng := rand.New(rand.NewPCG(14, 15))
	store := NewStore(net)
	key := keyspace.HashString("k")
	holders, err := store.ReplicateRandom(key, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(holders) != 10 {
		t.Fatalf("placed %d replicas, want 10", len(holders))
	}
	seen := make(map[netsim.PeerID]bool)
	for _, p := range holders {
		if seen[p] {
			t.Fatalf("peer %d holds two replicas", p)
		}
		seen[p] = true
		if !store.HasAt(p, key) {
			t.Errorf("HasAt(%d) = false for a holder", p)
		}
	}
	if store.Keys() != 1 {
		t.Errorf("Keys = %d, want 1", store.Keys())
	}
}

func TestStoreReplacePlacement(t *testing.T) {
	net := netsim.New(50)
	rng := rand.New(rand.NewPCG(16, 17))
	store := NewStore(net)
	key := keyspace.HashString("k")
	first, _ := store.ReplicateRandom(key, 5, rng)
	second, _ := store.ReplicateRandom(key, 5, rng)
	// Old holders that are not re-chosen must no longer hold the key.
	inSecond := make(map[netsim.PeerID]bool)
	for _, p := range second {
		inSecond[p] = true
	}
	for _, p := range first {
		if !inSecond[p] && store.HasAt(p, key) {
			t.Errorf("stale replica at %d after re-replication", p)
		}
	}
}

func TestStoreValidation(t *testing.T) {
	net := netsim.New(10)
	rng := rand.New(rand.NewPCG(18, 19))
	store := NewStore(net)
	key := keyspace.HashString("k")
	if _, err := store.ReplicateRandom(key, 0, rng); err == nil {
		t.Error("repl=0 accepted")
	}
	if _, err := store.ReplicateRandom(key, 11, rng); err == nil {
		t.Error("repl>n accepted")
	}
}

func TestMeasuredDupFactorPlausible(t *testing.T) {
	// Full flooding duplicates heavily: every peer forwards to all
	// neighbors but the sender, so dup ≈ meanDegree − 1 (≈ 5 here). This
	// is exactly why the paper's cost model assumes walk-based search
	// (dup = 1.8 [LvCa02]) instead of flooding.
	g, _, rng := newGraph(t, 5000, 3, 20)
	res := g.Flood(0, 30, nil, stats.MsgBroadcast)
	if d := res.DupFactor(); d < g.MeanDegree()-2 || d > g.MeanDegree() {
		t.Errorf("flood dup factor = %v, want ≈ meanDegree−1 = %v", d, g.MeanDegree()-1)
	}

	// Walk-based search revisits far less: its per-visit duplication is
	// near the paper's 1.8, not the flood's 5.
	store := NewStore(g.Net())
	key := keyspace.HashString("planted")
	if _, err := store.ReplicateRandom(key, 50, rng); err != nil {
		t.Fatal(err)
	}
	var visits, msgs int
	for trial := 0; trial < 20; trial++ {
		origin, _ := g.Net().RandomOnline(rng)
		wr := g.RandomWalks(origin, 16, 400, store.OnlineHolderMatch(key), rng, stats.MsgBroadcast)
		visits += wr.Visited
		msgs += wr.Messages
	}
	dup := float64(msgs) / float64(visits)
	if dup > 3 {
		t.Errorf("walk duplication = %v, want well below the flood's", dup)
	}
}
