// Package overlay implements the unstructured peer-to-peer network of the
// paper's model: a Gnutella-like random topology in which "each peer has a
// few open connections to other peers" (§3.1), searched either by flooding
// or — as the paper assumes for its cost model — by multiple random walks
// [LvCa02]. Content is replicated at random peers with a given factor, and
// search cost is measured in messages, including the duplicates the
// topology inflicts (the paper's dup factor). Graph is the topology;
// Store holds the replicated content the searches look for.
package overlay

import (
	"fmt"
	"math/rand/v2"

	"pdht/internal/netsim"
)

// Graph is an undirected random overlay over a network's peers. Edges are
// static for the lifetime of the graph (Gnutella connections are long-
// lived relative to queries); liveness is consulted per operation through
// the network.
type Graph struct {
	net *netsim.Network
	adj [][]netsim.PeerID
}

// NewRandomGraph builds a random overlay in which every peer opens `degree`
// connections to distinct uniformly random other peers; since connections
// are symmetric, the mean total degree is about twice that. degree must be
// at least 1 and below the network size.
func NewRandomGraph(net *netsim.Network, degree int, rng *rand.Rand) (*Graph, error) {
	n := net.Size()
	if degree < 1 || degree >= n {
		return nil, fmt.Errorf("overlay: degree %d out of [1,%d)", degree, n)
	}
	g := &Graph{net: net, adj: make([][]netsim.PeerID, n)}
	seen := make([]map[netsim.PeerID]bool, n)
	for i := range seen {
		seen[i] = make(map[netsim.PeerID]bool, 2*degree)
	}
	for i := 0; i < n; i++ {
		from := netsim.PeerID(i)
		for opened := 0; opened < degree; {
			to := netsim.PeerID(rng.IntN(n))
			if to == from || seen[i][to] {
				// Resample; with degree ≪ n this terminates
				// quickly, and duplicate edges would distort
				// the dup factor.
				continue
			}
			seen[i][to] = true
			seen[to][from] = true
			g.adj[i] = append(g.adj[i], to)
			g.adj[to] = append(g.adj[to], from)
			opened++
		}
	}
	return g, nil
}

// Net returns the underlying network.
func (g *Graph) Net() *netsim.Network { return g.net }

// Neighbors returns p's adjacency list (online or not). The slice is owned
// by the graph; callers must not mutate it.
func (g *Graph) Neighbors(p netsim.PeerID) []netsim.PeerID {
	return g.adj[p]
}

// Degree returns the number of connections of p.
func (g *Graph) Degree(p netsim.PeerID) int { return len(g.adj[p]) }

// MeanDegree returns the average degree across all peers.
func (g *Graph) MeanDegree() float64 {
	var total int
	for _, a := range g.adj {
		total += len(a)
	}
	return float64(total) / float64(len(g.adj))
}

// onlineNeighbor returns a uniformly random online neighbor of p other than
// exclude, or ok=false if there is none. exclude < 0 excludes nobody.
func (g *Graph) onlineNeighbor(p netsim.PeerID, exclude netsim.PeerID, rng *rand.Rand) (netsim.PeerID, bool) {
	adj := g.adj[p]
	// Reservoir-style single pass keeps this allocation-free on the hot
	// path (every random-walk step calls it).
	var pick netsim.PeerID
	count := 0
	for _, q := range adj {
		if q == exclude || !g.net.Online(q) {
			continue
		}
		count++
		if rng.IntN(count) == 0 {
			pick = q
		}
	}
	if count == 0 {
		return 0, false
	}
	return pick, true
}
