package overlay

import (
	"fmt"
	"math/rand/v2"

	"pdht/internal/keyspace"
	"pdht/internal/netsim"
)

// Store tracks which peers hold a replica of which content key. The paper
// replicates content "randomly with a certain factor" (§4) so that the
// unstructured search has numPeers/repl expected cost; replicas stay where
// they are when a peer goes offline (the peer will serve them again when it
// returns), which is why search cost rises under churn.
type Store struct {
	net     *netsim.Network
	holders map[keyspace.Key][]netsim.PeerID
	at      map[netsim.PeerID]map[keyspace.Key]bool
}

// NewStore returns an empty content store over the network.
func NewStore(net *netsim.Network) *Store {
	return &Store{
		net:     net,
		holders: make(map[keyspace.Key][]netsim.PeerID),
		at:      make(map[netsim.PeerID]map[keyspace.Key]bool),
	}
}

// ReplicateRandom places key at repl distinct uniformly random peers and
// returns them. Re-replicating an existing key replaces its placement.
func (s *Store) ReplicateRandom(key keyspace.Key, repl int, rng *rand.Rand) ([]netsim.PeerID, error) {
	n := s.net.Size()
	if repl < 1 || repl > n {
		return nil, fmt.Errorf("overlay: replication factor %d out of [1,%d]", repl, n)
	}
	for _, p := range s.holders[key] {
		delete(s.at[p], key)
	}
	chosen := make([]netsim.PeerID, 0, repl)
	seen := make(map[netsim.PeerID]bool, repl)
	for len(chosen) < repl {
		p := netsim.PeerID(rng.IntN(n))
		if seen[p] {
			continue
		}
		seen[p] = true
		chosen = append(chosen, p)
		if s.at[p] == nil {
			s.at[p] = make(map[keyspace.Key]bool)
		}
		s.at[p][key] = true
	}
	s.holders[key] = chosen
	return chosen, nil
}

// Holders returns the peers holding key (online or not). The slice is owned
// by the store.
func (s *Store) Holders(key keyspace.Key) []netsim.PeerID {
	return s.holders[key]
}

// HasAt reports whether peer p holds a replica of key.
func (s *Store) HasAt(p netsim.PeerID, key keyspace.Key) bool {
	return s.at[p][key]
}

// OnlineHolderMatch returns a match function for searches: true at peers
// that hold key. Liveness is enforced by the search algorithms themselves
// (they never visit offline peers), so the predicate only checks holding.
func (s *Store) OnlineHolderMatch(key keyspace.Key) func(netsim.PeerID) bool {
	return func(p netsim.PeerID) bool { return s.at[p][key] }
}

// Keys returns the number of distinct keys stored.
func (s *Store) Keys() int { return len(s.holders) }
