package overlay

import (
	"math/rand/v2"
	"testing"

	"pdht/internal/keyspace"
	"pdht/internal/netsim"
	"pdht/internal/stats"
)

func benchGraph(b *testing.B, n int) (*Graph, *Store, *rand.Rand) {
	b.Helper()
	net := netsim.New(n)
	rng := rand.New(rand.NewPCG(1, 2))
	g, err := NewRandomGraph(net, 4, rng)
	if err != nil {
		b.Fatal(err)
	}
	return g, NewStore(net), rng
}

func BenchmarkFlood(b *testing.B) {
	g, _, _ := benchGraph(b, 2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Flood(netsim.PeerID(i%2000), 32, nil, stats.MsgBroadcast)
	}
}

func BenchmarkRandomWalkSearch(b *testing.B) {
	g, store, rng := benchGraph(b, 2000)
	key := keyspace.HashString("bench")
	if _, err := store.ReplicateRandom(key, 100, rng); err != nil {
		b.Fatal(err)
	}
	match := store.OnlineHolderMatch(key)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := g.RandomWalks(netsim.PeerID(i%2000), 16, 100, match, rng, stats.MsgBroadcast)
		if !res.Found {
			b.Fatal("walks missed 5% replication")
		}
	}
}

func BenchmarkSearchWithFallback(b *testing.B) {
	g, store, rng := benchGraph(b, 2000)
	key := keyspace.HashString("bench2")
	if _, err := store.ReplicateRandom(key, 100, rng); err != nil {
		b.Fatal(err)
	}
	match := store.OnlineHolderMatch(key)
	cfg := SearchConfig{Walkers: 16, FloodTTL: 32}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		found, _ := g.Search(netsim.PeerID(i%2000), cfg, 100, match, rng)
		if !found {
			b.Fatal("search failed")
		}
	}
}
