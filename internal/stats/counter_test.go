package stats

import (
	"strings"
	"sync"
	"testing"
)

func TestCountersAddGet(t *testing.T) {
	var c Counters
	c.Add(MsgBroadcast, 5)
	c.Inc(MsgBroadcast)
	c.Add(MsgIndexLookup, 3)
	if got := c.Get(MsgBroadcast); got != 6 {
		t.Errorf("Get(MsgBroadcast) = %d, want 6", got)
	}
	if got := c.Get(MsgIndexLookup); got != 3 {
		t.Errorf("Get(MsgIndexLookup) = %d, want 3", got)
	}
	if got := c.Get(MsgUpdate); got != 0 {
		t.Errorf("Get(MsgUpdate) = %d, want 0", got)
	}
	if got := c.Total(); got != 9 {
		t.Errorf("Total() = %d, want 9", got)
	}
}

func TestCountersNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add with negative count did not panic")
		}
	}()
	var c Counters
	c.Add(MsgBroadcast, -1)
}

func TestCountersUnknownClassPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add with unknown class did not panic")
		}
	}()
	var c Counters
	c.Add(MsgClass(99), 1)
}

func TestCountersReset(t *testing.T) {
	var c Counters
	c.Add(MsgMaintenance, 7)
	c.Reset()
	if got := c.Total(); got != 0 {
		t.Errorf("Total() after Reset = %d, want 0", got)
	}
}

func TestCountersSnapshotAndDiff(t *testing.T) {
	var c Counters
	c.Add(MsgBroadcast, 10)
	s1 := c.Snapshot()
	c.Add(MsgBroadcast, 5)
	c.Add(MsgUpdate, 2)
	s2 := c.Snapshot()
	d := Diff(s2, s1)
	if d[MsgBroadcast] != 5 {
		t.Errorf("Diff broadcast = %d, want 5", d[MsgBroadcast])
	}
	if d[MsgUpdate] != 2 {
		t.Errorf("Diff update = %d, want 2", d[MsgUpdate])
	}
	if d[MsgMaintenance] != 0 {
		t.Errorf("Diff maintenance = %d, want 0", d[MsgMaintenance])
	}
}

func TestCountersConcurrent(t *testing.T) {
	var c Counters
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc(MsgBroadcast)
			}
		}()
	}
	wg.Wait()
	if got := c.Get(MsgBroadcast); got != workers*per {
		t.Errorf("concurrent count = %d, want %d", got, workers*per)
	}
}

func TestMsgClassString(t *testing.T) {
	for _, c := range Classes() {
		if s := c.String(); strings.HasPrefix(s, "msgclass(") {
			t.Errorf("class %d has no name", int(c))
		}
	}
	if s := MsgClass(42).String(); s != "msgclass(42)" {
		t.Errorf("unknown class string = %q", s)
	}
}

func TestFormatSnapshot(t *testing.T) {
	var c Counters
	if got := FormatSnapshot(c.Snapshot()); got != "(no messages)" {
		t.Errorf("empty snapshot = %q", got)
	}
	c.Add(MsgBroadcast, 3)
	c.Add(MsgUpdate, 1)
	got := FormatSnapshot(c.Snapshot())
	if !strings.Contains(got, "broadcast=3") || !strings.Contains(got, "update=1") {
		t.Errorf("snapshot = %q, want broadcast=3 and update=1", got)
	}
	if strings.Contains(got, "maintenance") {
		t.Errorf("snapshot %q should omit zero classes", got)
	}
}
