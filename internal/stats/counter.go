// Package stats provides the measurement plumbing shared by the simulator,
// the benchmarks and the example programs: message counters keyed by class,
// streaming mean/variance accumulators, fixed-bucket histograms and plain-text
// table rendering.
//
// The paper's unit of cost is the number of messages sent per round (one
// round = one second), broken down by what the message was for. MsgClass
// enumerates those purposes; Counters accumulates per-class totals so that a
// simulation run can be compared line-by-line against the analytical model.
package stats

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// MsgClass identifies what a simulated message was sent for. The classes
// mirror the cost components of the paper's model: unstructured search
// (cSUnstr), index search (cSIndx), routing-table maintenance (cRtn), update
// propagation (cUpd) and replica-subnet flooding (the repl·dup2 term of
// cSIndx2).
type MsgClass int

const (
	// MsgBroadcast counts messages of a search in the unstructured
	// network (flooding or random walks) — the cSUnstr component.
	MsgBroadcast MsgClass = iota
	// MsgIndexLookup counts routing hops of a DHT lookup — cSIndx.
	MsgIndexLookup
	// MsgMaintenance counts routing-table probe messages — cRtn.
	MsgMaintenance
	// MsgUpdate counts update/insert messages between replicas — cUpd.
	MsgUpdate
	// MsgReplicaFlood counts messages flooded through the replica
	// subnetwork during a query or insert — the repl·dup2 term.
	MsgReplicaFlood
	// MsgTopK counts OpTopK probe legs of distributed top-k queries —
	// the numPeers·TopKRound·TopKProbe traffic term added to eq. 17.
	MsgTopK
	// MsgControl counts everything else (joins, key transfers, eviction
	// notices). The analytical model has no such term; keeping them
	// separate makes the comparison honest.
	MsgControl

	numMsgClasses
)

// String returns the short label used in tables and logs.
func (c MsgClass) String() string {
	switch c {
	case MsgBroadcast:
		return "broadcast"
	case MsgIndexLookup:
		return "lookup"
	case MsgMaintenance:
		return "maintenance"
	case MsgUpdate:
		return "update"
	case MsgReplicaFlood:
		return "replica-flood"
	case MsgTopK:
		return "topk"
	case MsgControl:
		return "control"
	default:
		return fmt.Sprintf("msgclass(%d)", int(c))
	}
}

// MarshalText renders the class as its short label, so JSON maps keyed by
// MsgClass (Report.Messages) read "broadcast", not "0".
func (c MsgClass) MarshalText() ([]byte, error) {
	if c < 0 || c >= numMsgClasses {
		return nil, fmt.Errorf("stats: unknown message class %d", int(c))
	}
	return []byte(c.String()), nil
}

// UnmarshalText parses the short label back, completing the round trip.
func (c *MsgClass) UnmarshalText(text []byte) error {
	for i := MsgClass(0); i < numMsgClasses; i++ {
		if i.String() == string(text) {
			*c = i
			return nil
		}
	}
	return fmt.Errorf("stats: unknown message class %q", text)
}

// Classes lists all message classes in display order.
func Classes() []MsgClass {
	out := make([]MsgClass, numMsgClasses)
	for i := range out {
		out[i] = MsgClass(i)
	}
	return out
}

// Counters accumulates message counts by class. The zero value is ready to
// use. Counters is safe for concurrent use.
type Counters struct {
	mu     sync.Mutex
	counts [numMsgClasses]int64
}

// Add records n messages of class c. n may be any non-negative count;
// negative values are rejected with a panic because a message, once sent,
// cannot be unsent.
func (ct *Counters) Add(c MsgClass, n int64) {
	if n < 0 {
		panic(fmt.Sprintf("stats: negative message count %d for class %s", n, c))
	}
	if c < 0 || c >= numMsgClasses {
		panic(fmt.Sprintf("stats: unknown message class %d", int(c)))
	}
	ct.mu.Lock()
	ct.counts[c] += n
	ct.mu.Unlock()
}

// Inc records a single message of class c.
func (ct *Counters) Inc(c MsgClass) { ct.Add(c, 1) }

// Get returns the accumulated count for class c.
func (ct *Counters) Get(c MsgClass) int64 {
	if c < 0 || c >= numMsgClasses {
		panic(fmt.Sprintf("stats: unknown message class %d", int(c)))
	}
	ct.mu.Lock()
	defer ct.mu.Unlock()
	return ct.counts[c]
}

// Total returns the sum over all classes.
func (ct *Counters) Total() int64 {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	var t int64
	for _, v := range ct.counts {
		t += v
	}
	return t
}

// Snapshot returns a copy of the per-class counts, indexed by MsgClass.
func (ct *Counters) Snapshot() map[MsgClass]int64 {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	out := make(map[MsgClass]int64, numMsgClasses)
	for i, v := range ct.counts {
		out[MsgClass(i)] = v
	}
	return out
}

// Reset zeroes all counters.
func (ct *Counters) Reset() {
	ct.mu.Lock()
	ct.counts = [numMsgClasses]int64{}
	ct.mu.Unlock()
}

// Diff returns the per-class difference ct − prev. It is used to compute
// per-round rates from two snapshots of cumulative counters.
func Diff(cur, prev map[MsgClass]int64) map[MsgClass]int64 {
	out := make(map[MsgClass]int64, len(cur))
	for c, v := range cur {
		out[c] = v - prev[c]
	}
	return out
}

// FormatSnapshot renders a snapshot as "class=count" pairs in display order,
// omitting zero classes. Useful in test failure messages.
func FormatSnapshot(snap map[MsgClass]int64) string {
	keys := make([]MsgClass, 0, len(snap))
	for c := range snap {
		keys = append(keys, c)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	var b strings.Builder
	for _, c := range keys {
		if snap[c] == 0 {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", c, snap[c])
	}
	if b.Len() == 0 {
		return "(no messages)"
	}
	return b.String()
}
