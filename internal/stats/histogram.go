package stats

import (
	"fmt"
	"sort"
	"strings"
)

// Histogram is a fixed-boundary histogram over float64 samples. Boundaries
// are upper bounds: a sample x lands in the first bucket whose bound is
// ≥ x; samples above the last bound land in the overflow bucket.
//
// It is used to characterize simulated quantities the analytical model only
// treats in expectation — lookup hop counts, flood reach, replica staleness.
type Histogram struct {
	bounds []float64
	counts []int64 // len(bounds)+1; last is overflow
	total  int64
	sum    float64
}

// NewHistogram returns a histogram with the given strictly increasing upper
// bounds. It panics if bounds is empty or not strictly increasing, because a
// histogram with a malformed axis silently misclassifies every sample.
func NewHistogram(bounds ...float64) *Histogram {
	if len(bounds) == 0 {
		panic("stats: histogram needs at least one bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("stats: histogram bounds not increasing at %d: %v", i, bounds))
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]int64, len(bounds)+1),
	}
}

// LinearBounds returns n evenly spaced bounds covering (0, max].
func LinearBounds(max float64, n int) []float64 {
	if n <= 0 || max <= 0 {
		panic("stats: LinearBounds needs positive max and n")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = max * float64(i+1) / float64(n)
	}
	return out
}

// Observe adds one sample.
func (h *Histogram) Observe(x float64) {
	i := sort.SearchFloat64s(h.bounds, x)
	h.counts[i]++
	h.total++
	h.sum += x
}

// N returns the number of samples observed.
func (h *Histogram) N() int64 { return h.total }

// Mean returns the mean of all observed samples (not bucket midpoints).
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Count returns the count in bucket i, where i indexes the bounds and
// len(bounds) is the overflow bucket.
func (h *Histogram) Count(i int) int64 { return h.counts[i] }

// Buckets returns the number of buckets including overflow.
func (h *Histogram) Buckets() int { return len(h.counts) }

// Quantile returns an upper bound for the q-quantile (0 ≤ q ≤ 1) using the
// bucket boundaries: the bound of the first bucket whose cumulative count
// reaches q·N. For the overflow bucket it returns +Inf via the last bound
// doubled, which is deliberate: a quantile that escaped the axis should look
// alarming, not plausible.
func (h *Histogram) Quantile(q float64) float64 {
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v out of [0,1]", q))
	}
	if h.total == 0 {
		return 0
	}
	target := int64(q * float64(h.total))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.bounds[len(h.bounds)-1] * 2
		}
	}
	return h.bounds[len(h.bounds)-1] * 2
}

// String renders a compact one-line summary.
func (h *Histogram) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%.2f p50≤%.3g p95≤%.3g p99≤%.3g",
		h.total, h.Mean(), h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99))
	return b.String()
}
