package stats

import (
	"strings"
	"testing"
)

func TestHistogramBucketing(t *testing.T) {
	h := NewHistogram(1, 2, 4)
	for _, x := range []float64{0.5, 1.0, 1.5, 2.0, 3.9, 4.0, 100} {
		h.Observe(x)
	}
	// bounds are upper-inclusive: 0.5,1.0 → bucket0; 1.5,2.0 → bucket1;
	// 3.9,4.0 → bucket2; 100 → overflow.
	want := []int64{2, 2, 2, 1}
	for i, w := range want {
		if got := h.Count(i); got != w {
			t.Errorf("bucket %d = %d, want %d", i, got, w)
		}
	}
	if h.N() != 7 {
		t.Errorf("N = %d, want 7", h.N())
	}
	if h.Buckets() != 4 {
		t.Errorf("Buckets = %d, want 4", h.Buckets())
	}
}

func TestHistogramMean(t *testing.T) {
	h := NewHistogram(10)
	h.Observe(2)
	h.Observe(4)
	if !almostEqual(h.Mean(), 3, 1e-12) {
		t.Errorf("Mean = %v, want 3", h.Mean())
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(1, 2, 3, 4, 5)
	for i := 0; i < 100; i++ {
		h.Observe(float64(i%5) + 0.5) // 20 samples per bucket
	}
	if q := h.Quantile(0.5); q != 3 {
		t.Errorf("p50 = %v, want 3", q)
	}
	if q := h.Quantile(0.01); q != 1 {
		t.Errorf("p1 = %v, want 1", q)
	}
	if q := h.Quantile(1.0); q != 5 {
		t.Errorf("p100 = %v, want 5", q)
	}
}

func TestHistogramQuantileOverflow(t *testing.T) {
	h := NewHistogram(1)
	h.Observe(50)
	if q := h.Quantile(0.99); q != 2 { // last bound doubled
		t.Errorf("overflow quantile = %v, want 2", q)
	}
}

func TestHistogramEmptyQuantile(t *testing.T) {
	h := NewHistogram(1, 2)
	if q := h.Quantile(0.5); q != 0 {
		t.Errorf("empty quantile = %v, want 0", q)
	}
}

func TestHistogramBadBoundsPanics(t *testing.T) {
	for _, bounds := range [][]float64{{}, {2, 1}, {1, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v) did not panic", bounds)
				}
			}()
			NewHistogram(bounds...)
		}()
	}
}

func TestHistogramBadQuantilePanics(t *testing.T) {
	h := NewHistogram(1)
	defer func() {
		if recover() == nil {
			t.Error("Quantile(1.5) did not panic")
		}
	}()
	h.Quantile(1.5)
}

func TestLinearBounds(t *testing.T) {
	b := LinearBounds(10, 5)
	want := []float64{2, 4, 6, 8, 10}
	for i := range want {
		if b[i] != want[i] {
			t.Errorf("LinearBounds[%d] = %v, want %v", i, b[i], want[i])
		}
	}
}

func TestLinearBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("LinearBounds(0, 0) did not panic")
		}
	}()
	LinearBounds(0, 0)
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram(1, 2)
	h.Observe(0.5)
	s := h.String()
	if !strings.Contains(s, "n=1") {
		t.Errorf("String() = %q, want n=1", s)
	}
}
