package stats

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("demo", "name", "value", "note")
	tb.AddRow("alpha", 1.2, "skew")
	tb.AddRow("peers", 20000, "total")
	out := tb.RenderString()
	if !strings.Contains(out, "== demo ==") {
		t.Errorf("missing title in %q", out)
	}
	for _, want := range []string{"name", "value", "alpha", "1.20", "20000"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("got %d lines, want 5:\n%s", len(lines), out)
	}
}

func TestTableNoTitle(t *testing.T) {
	tb := NewTable("", "a")
	tb.AddRow("x")
	if strings.Contains(tb.RenderString(), "==") {
		t.Error("untitled table rendered a title")
	}
}

func TestTableRaggedRows(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("only-one")
	tb.AddRow("x", "y", "extra")
	out := tb.RenderString()
	if !strings.Contains(out, "extra") {
		t.Errorf("ragged row lost a cell:\n%s", out)
	}
}

func TestTableRenderCSV(t *testing.T) {
	tb := NewTable("ignored title", "fQry", "cost")
	tb.AddRow("1/30", 25219.0)
	tb.AddRow("value,with,commas", 1.5)
	var b strings.Builder
	if err := tb.RenderCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Contains(out, "ignored title") {
		t.Error("CSV must not contain the title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines, want 3:\n%s", len(lines), out)
	}
	if lines[0] != "fQry,cost" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[2], `"value,with,commas"`) {
		t.Errorf("comma cell not quoted: %q", lines[2])
	}
}

func TestFormatFloat(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0"},
		{1234.6, "1235"},
		{-2000, "-2000"},
		{3.14159, "3.14"},
		{0.000123456, "0.0001235"},
		{0.5, "0.5"},
	}
	for _, c := range cases {
		if got := formatFloat(c.in); got != c.want {
			t.Errorf("formatFloat(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestRenderJSON(t *testing.T) {
	tb := NewTable("demo", "x", "y")
	tb.AddRow("a", 1.5)
	var buf strings.Builder
	if err := tb.RenderJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got struct {
		Title  string     `json:"title"`
		Header []string   `json:"header"`
		Rows   [][]string `json:"rows"`
	}
	if err := json.Unmarshal([]byte(buf.String()), &got); err != nil {
		t.Fatalf("invalid JSON %q: %v", buf.String(), err)
	}
	if got.Title != "demo" || len(got.Header) != 2 || len(got.Rows) != 1 || got.Rows[0][1] != "1.50" {
		t.Fatalf("round-trip = %+v", got)
	}
	empty := NewTable("empty", "x")
	buf.Reset()
	if err := empty.RenderJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"rows":[]`) {
		t.Fatalf("empty table must encode rows as [], got %q", buf.String())
	}
}
