package stats

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestWelfordKnownValues(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Observe(x)
	}
	if w.N() != 8 {
		t.Errorf("N = %d, want 8", w.N())
	}
	if !almostEqual(w.Mean(), 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", w.Mean())
	}
	// Population variance of this classic dataset is 4; unbiased sample
	// variance is 32/7.
	if !almostEqual(w.Variance(), 32.0/7.0, 1e-12) {
		t.Errorf("Variance = %v, want %v", w.Variance(), 32.0/7.0)
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Errorf("Min/Max = %v/%v, want 2/9", w.Min(), w.Max())
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.StdDev() != 0 {
		t.Error("empty accumulator should report zeros")
	}
	w.Observe(3.5)
	if w.Mean() != 3.5 || w.Variance() != 0 {
		t.Errorf("single sample: mean=%v var=%v", w.Mean(), w.Variance())
	}
}

func TestWelfordMergeMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	var seq, a, b Welford
	for i := 0; i < 1000; i++ {
		x := rng.NormFloat64()*3 + 10
		seq.Observe(x)
		if i%2 == 0 {
			a.Observe(x)
		} else {
			b.Observe(x)
		}
	}
	a.Merge(b)
	if a.N() != seq.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), seq.N())
	}
	if !almostEqual(a.Mean(), seq.Mean(), 1e-9) {
		t.Errorf("merged Mean = %v, want %v", a.Mean(), seq.Mean())
	}
	if !almostEqual(a.Variance(), seq.Variance(), 1e-9) {
		t.Errorf("merged Variance = %v, want %v", a.Variance(), seq.Variance())
	}
	if a.Min() != seq.Min() || a.Max() != seq.Max() {
		t.Errorf("merged Min/Max = %v/%v, want %v/%v", a.Min(), a.Max(), seq.Min(), seq.Max())
	}
}

func TestWelfordMergeEmpty(t *testing.T) {
	var a, b Welford
	a.Observe(1)
	a.Observe(3)
	before := a
	a.Merge(b) // merging empty is a no-op
	if a != before {
		t.Error("merging empty accumulator changed state")
	}
	b.Merge(a) // merging into empty copies
	if b.Mean() != 2 || b.N() != 2 {
		t.Errorf("merge into empty: mean=%v n=%d", b.Mean(), b.N())
	}
}

// Property: mean is always within [min, max] and variance is non-negative.
func TestWelfordProperties(t *testing.T) {
	f := func(xs []float64) bool {
		var w Welford
		ok := true
		n := 0
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
				continue
			}
			w.Observe(x)
			n++
		}
		if n == 0 {
			return true
		}
		ok = ok && w.Mean() >= w.Min()-1e-9 && w.Mean() <= w.Max()+1e-9
		ok = ok && w.Variance() >= 0
		ok = ok && w.N() == int64(n)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
