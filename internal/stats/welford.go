package stats

import "math"

// Welford is a streaming mean/variance accumulator using Welford's online
// algorithm. It is numerically stable for long runs (millions of rounds) and
// requires O(1) memory. The zero value is an empty accumulator.
type Welford struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Observe adds one sample.
func (w *Welford) Observe(x float64) {
	if w.n == 0 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	w.n++
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// N returns the number of samples observed.
func (w *Welford) N() int64 { return w.n }

// Mean returns the sample mean, or 0 if no samples were observed.
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance, or 0 for fewer than two
// samples.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Min returns the smallest observed sample, or 0 if empty.
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest observed sample, or 0 if empty.
func (w *Welford) Max() float64 { return w.max }

// Merge combines another accumulator into w using Chan et al.'s parallel
// update, so per-goroutine accumulators can be reduced without bias.
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	delta := o.mean - w.mean
	w.mean += delta * float64(o.n) / float64(n)
	w.m2 += o.m2 + delta*delta*float64(w.n)*float64(o.n)/float64(n)
	if o.min < w.min {
		w.min = o.min
	}
	if o.max > w.max {
		w.max = o.max
	}
	w.n = n
}
