package stats

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Table renders aligned plain-text tables: the output format of every
// experiment binary in this repository. Columns are right-aligned except the
// first, which is left-aligned (row labels).
type Table struct {
	header []string
	rows   [][]string
	title  string
}

// NewTable returns a table with the given column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{title: title, header: append([]string(nil), header...)}
}

// AddRow appends a row. Cells are formatted with %v; float64 cells are
// formatted with 4 significant digits, which is what the paper's plots
// resolve to.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case float32:
			row[i] = formatFloat(float64(v))
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v != v: // NaN
		return "NaN"
	case v >= 1000 || v <= -1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 1 || v <= -1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	ncol := len(t.header)
	for _, r := range t.rows {
		if len(r) > ncol {
			ncol = len(r)
		}
	}
	widths := make([]int, ncol)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.header)
	for _, r := range t.rows {
		measure(r)
	}
	if t.title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.title)
	}
	writeRow := func(r []string) {
		for i := 0; i < ncol; i++ {
			cell := ""
			if i < len(r) {
				cell = r[i]
			}
			if i == 0 {
				fmt.Fprintf(w, "%-*s", widths[i], cell)
			} else {
				fmt.Fprintf(w, "  %*s", widths[i], cell)
			}
		}
		fmt.Fprintln(w)
	}
	writeRow(t.header)
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	fmt.Fprintln(w, strings.Repeat("-", total-2))
	for _, r := range t.rows {
		writeRow(r)
	}
}

// RenderString returns the rendered table as a string.
func (t *Table) RenderString() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// RenderJSON writes the table as one JSON object — {title, header, rows} —
// the machine-readable form the benchmark trajectory tooling consumes. Cells
// stay strings, exactly as rendered: the format is a transport for recorded
// measurements, not a typed schema.
func (t *Table) RenderJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	rows := t.rows
	if rows == nil {
		rows = [][]string{}
	}
	return enc.Encode(struct {
		Title  string     `json:"title"`
		Header []string   `json:"header"`
		Rows   [][]string `json:"rows"`
	}{Title: t.title, Header: t.header, Rows: rows})
}

// RenderCSV writes the table as RFC-4180 CSV: one header record, one record
// per row. The title is not emitted — CSV consumers name their files.
func (t *Table) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.header); err != nil {
		return err
	}
	for _, r := range t.rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
