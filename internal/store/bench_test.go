package store

import (
	"fmt"
	"testing"
	"time"
)

// closeRaw releases a store without the Close-time compaction, so recovery
// benchmark iterations keep replaying the same WAL instead of a snapshot.
func (s *FileStore) closeRaw() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	close(s.stop)
	s.done.Wait()
	s.wal.Close()
}

// BenchmarkWALAppend measures the per-record journaling cost under each
// fsync policy — the price one cache mutation pays for durability.
func BenchmarkWALAppend(b *testing.B) {
	for _, policy := range []SyncPolicy{SyncNever, SyncInterval, SyncAlways} {
		b.Run(policy.String(), func(b *testing.B) {
			s, err := OpenFile(FileOptions{
				Dir:           b.TempDir(),
				Fsync:         policy,
				SnapshotEvery: time.Hour,
				SnapshotBytes: 1 << 30, // appends only; no compaction in-loop
			})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			d := time.Now().Add(time.Hour)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.Append(Record{Op: OpInsert, Key: uint64(i), Value: uint64(i), Deadline: d}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRecovery measures OpenFile's replay cost against WAL length —
// the restart latency a peer pays before it can rejoin warm.
func BenchmarkRecovery(b *testing.B) {
	for _, n := range []int{1_000, 10_000} {
		b.Run(fmt.Sprintf("records=%d", n), func(b *testing.B) {
			dir := b.TempDir()
			s, err := OpenFile(FileOptions{Dir: dir, Fsync: SyncNever, SnapshotEvery: time.Hour, SnapshotBytes: 1 << 30})
			if err != nil {
				b.Fatal(err)
			}
			d := time.Now().Add(24 * time.Hour)
			for i := 0; i < n; i++ {
				if err := s.Append(Record{Op: OpInsert, Key: uint64(i), Value: uint64(i), Deadline: d}); err != nil {
					b.Fatal(err)
				}
			}
			// Leave the records in the WAL (no Close-time compaction) so the
			// benchmark replays frames, not a snapshot.
			if err := s.Sync(); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, err := OpenFile(FileOptions{Dir: dir, Fsync: SyncNever, SnapshotEvery: time.Hour, SnapshotBytes: 1 << 30})
				if err != nil {
					b.Fatal(err)
				}
				if got := len(r.Recovered()); got != n {
					b.Fatalf("recovered %d, want %d", got, n)
				}
				b.StopTimer()
				// Close would compact and change what the next iteration
				// replays; close the fd without absorbing the WAL.
				r.closeRaw()
				b.StartTimer()
			}
			b.StopTimer()
			s.Close()
		})
	}
}
