// Package store is the durability plane of the live node subsystem: a
// pluggable persistence layer for one peer's index cache and content store,
// so a restarted peer rejoins warm instead of paying the worst-case
// cold-cache cost the churn experiments measure.
//
// The paper's whole economy is amortizing a key's indexing cost over its
// TTL lifetime; throwing the index away on every restart forfeits that
// investment at exactly the moment (a rolling upgrade, a crash-loop) when
// a fleet restarts most. The contract that preserves the economy across a
// reboot is the REMAINING-TTL invariant: entries are journaled with their
// absolute wall-clock expiry deadline, not a duration, and recovery
// re-admits each one at whatever lifetime it has left — an entry granted
// 120 rounds that crashed at round 70 comes back with 50, and one that
// lapsed while the process was down is dropped (and counted), never
// resurrected. The tuner's granted-TTL semantics (PR 3) are thereby
// restart-invariant: a retune changes only what future inserts receive,
// on disk exactly as in memory.
//
// Two implementations ship: Noop (the default — nothing persists, every
// operation is free, so an in-memory node pays nothing for the seam) and
// FileStore (file.go — an append-only WAL of CRC32-framed records with a
// configurable fsync policy, periodically compacted into a snapshot file,
// with torn-tail-tolerant crash recovery). The node writes through the
// core.Cache mutation hook; nothing else in the system knows durability
// exists.
package store

import (
	"time"

	"pdht/internal/obs"
)

// Op labels one journaled mutation.
type Op uint8

const (
	// OpInsert: key was indexed with Value until Deadline.
	OpInsert Op = iota + 1
	// OpRefresh: key's expiry was reset to Deadline (TTL reset on a hit).
	OpRefresh
	// OpExpire: key lapsed out of the index (TTL expiry or capacity
	// eviction) and must not be resurrected by replay.
	OpExpire
	// OpPublish: key→Value entered the local content store. Content has
	// no expiry; Deadline is zero.
	OpPublish
	// OpHandoff: key was pushed to a replica set's new member on a view
	// change. Audit only — the holder keeps its copy (the repair planner's
	// no-deletion rule), so replay ignores these records.
	OpHandoff
)

// Record is one journaled mutation: the operation, the key it touched,
// and — where the operation carries them — the stored value and the
// absolute wall-clock expiry deadline. Deadlines are absolute by design:
// a duration would restart the clock on every reboot and break the
// remaining-TTL invariant.
type Record struct {
	Op       Op
	Key      uint64
	Value    uint64
	Deadline time.Time
}

// Entry is one row recovered from durable state: an index entry with its
// absolute expiry deadline, or — when Deadline is zero — a content-store
// entry, which never expires.
type Entry struct {
	Key      uint64
	Value    uint64
	Deadline time.Time
}

// RecoveryStats reports what one recovery replay found, kept and dropped.
type RecoveryStats struct {
	// Recovered is the number of live index entries re-admitted; Content
	// the number of content-store entries.
	Recovered int
	Content   int
	// Expired counts index entries whose deadline had already passed at
	// replay time: the process was down longer than their remaining TTL,
	// so §5.1 expiry semantics demand they stay gone.
	Expired int
	// DroppedRecords counts WAL records discarded at the torn tail (bad
	// CRC, impossible length, short read) and TruncatedBytes the WAL bytes
	// cut off with them. SnapshotDropped reports a snapshot file that was
	// present but unreadable and therefore ignored.
	DroppedRecords  int
	TruncatedBytes  int64
	SnapshotDropped bool
	// Replay is the wall-clock cost of the whole recovery pass.
	Replay time.Duration
}

// Store is the persistence plane one node writes through. Implementations
// must be safe for concurrent use: the node appends under its own lock,
// but background compaction and scrape-time metric reads run concurrently.
type Store interface {
	// Recovered returns the entries replayed from durable state when the
	// store was opened, index entries carrying their absolute deadlines
	// and content entries a zero one. The slice is owned by the store;
	// callers must not modify it.
	Recovered() []Entry
	// Stats reports what the opening replay kept and dropped.
	Stats() RecoveryStats
	// Append journals one mutation. Durability is governed by the
	// implementation's sync policy; an error means the record may not
	// survive a crash, not that the in-memory system is wrong — callers
	// keep serving and watch the store's error counter.
	Append(rec Record) error
	// Sync forces buffered records to stable storage.
	Sync() error
	// RegisterMetrics installs the store's instruments (pdht_store_*) on
	// reg. Idempotent; the owning node calls it once at construction.
	RegisterMetrics(reg *obs.Registry)
	// Close flushes, compacts if possible, and releases the store.
	Close() error
}

// Noop is the default store: nothing persists and every operation is free.
// It exists so call sites can treat "no persistence" uniformly; the node
// additionally skips the write-through hook entirely when its store is nil,
// so the hot path pays nothing either way.
type Noop struct{}

// NewNoop returns the no-op store.
func NewNoop() Noop { return Noop{} }

func (Noop) Recovered() []Entry            { return nil }
func (Noop) Stats() RecoveryStats          { return RecoveryStats{} }
func (Noop) Append(Record) error           { return nil }
func (Noop) Sync() error                   { return nil }
func (Noop) RegisterMetrics(*obs.Registry) {}
func (Noop) Close() error                  { return nil }
