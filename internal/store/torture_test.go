package store

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// writeFrames encodes recs into one byte slice, the exact bytes Append
// would lay down.
func writeFrames(recs ...Record) []byte {
	var buf []byte
	for _, r := range recs {
		buf = encodeFrame(buf, r)
	}
	return buf
}

// TestWALTorture feeds recovery every flavor of on-disk damage a crash (or
// a hostile filesystem) can leave behind. The invariant under test: OpenFile
// never panics and never errors on damaged content — it keeps every intact
// prefix record, reports what it dropped, and leaves the store appendable.
func TestWALTorture(t *testing.T) {
	d := time.Now().Add(time.Hour).Truncate(0)
	intact := []Record{
		{Op: OpInsert, Key: 1, Value: 11, Deadline: d},
		{Op: OpInsert, Key: 2, Value: 22, Deadline: d},
		{Op: OpPublish, Key: 9, Value: 99},
	}

	cases := []struct {
		name string
		// mutate damages the on-disk state before reopen. wal starts as
		// the three intact records.
		mutate        func(t *testing.T, dir string, wal []byte) []byte
		wantRecovered int // index + content entries surviving
		wantDropped   int // minimum DroppedRecords
		wantSnapDrop  bool
	}{
		{
			name: "truncated tail mid-frame",
			mutate: func(t *testing.T, dir string, wal []byte) []byte {
				return wal[:len(wal)-7] // tear the last frame's payload
			},
			wantRecovered: 2,
			wantDropped:   1,
		},
		{
			name: "bit flip in last payload",
			mutate: func(t *testing.T, dir string, wal []byte) []byte {
				wal[len(wal)-3] ^= 0x40
				return wal
			},
			wantRecovered: 2,
			wantDropped:   1,
		},
		{
			name: "bit flip in first frame drops everything after",
			mutate: func(t *testing.T, dir string, wal []byte) []byte {
				wal[frameHeaderLen+2] ^= 0x01
				return wal
			},
			wantRecovered: 0,
			wantDropped:   1,
		},
		{
			name: "absurd length field",
			mutate: func(t *testing.T, dir string, wal []byte) []byte {
				tail := wal[2*(frameHeaderLen+payloadLen):]
				binary.LittleEndian.PutUint32(tail[0:], maxPayload+1)
				return wal
			},
			wantRecovered: 2,
			wantDropped:   1,
		},
		{
			name: "trailing garbage after intact frames",
			mutate: func(t *testing.T, dir string, wal []byte) []byte {
				return append(wal, 0xde, 0xad, 0xbe, 0xef)
			},
			wantRecovered: 3,
			wantDropped:   1,
		},
		{
			name: "empty WAL no snapshot",
			mutate: func(t *testing.T, dir string, wal []byte) []byte {
				return []byte{}
			},
			wantRecovered: 0,
		},
		{
			name: "missing WAL entirely",
			mutate: func(t *testing.T, dir string, wal []byte) []byte {
				os.Remove(filepath.Join(dir, walName))
				return nil // mutate handled the file itself; write nothing
			},
			wantRecovered: 0,
		},
		{
			name: "snapshot with bad magic is dropped, WAL still replays",
			mutate: func(t *testing.T, dir string, wal []byte) []byte {
				if err := os.WriteFile(filepath.Join(dir, snapshotName), []byte("NOTASNAP"), 0o644); err != nil {
					t.Fatal(err)
				}
				return wal
			},
			wantRecovered: 3,
			wantSnapDrop:  true,
		},
		{
			name: "torn snapshot keeps decoded prefix",
			mutate: func(t *testing.T, dir string, wal []byte) []byte {
				snap := append(append([]byte{}, snapshotMagic...),
					writeFrames(Record{Op: OpInsert, Key: 50, Value: 500, Deadline: d})...)
				snap = append(snap, writeFrames(Record{Op: OpInsert, Key: 51, Value: 510, Deadline: d})[:10]...)
				if err := os.WriteFile(filepath.Join(dir, snapshotName), snap, 0o644); err != nil {
					t.Fatal(err)
				}
				return wal
			},
			wantRecovered: 4, // 50 from the snapshot prefix + the 3 WAL records
			wantSnapDrop:  true,
		},
		{
			name: "duplicate records after compaction race",
			mutate: func(t *testing.T, dir string, wal []byte) []byte {
				// The crash window between snapshot rename and WAL truncate:
				// the snapshot already absorbed the WAL's history, so replay
				// sees everything twice. Must converge, not double-count.
				snap := append(append([]byte{}, snapshotMagic...), writeFrames(intact...)...)
				if err := os.WriteFile(filepath.Join(dir, snapshotName), snap, 0o644); err != nil {
					t.Fatal(err)
				}
				return wal
			},
			wantRecovered: 3,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			if err := os.WriteFile(filepath.Join(dir, walName), writeFrames(intact...), 0o644); err != nil {
				t.Fatal(err)
			}
			if wal := tc.mutate(t, dir, writeFrames(intact...)); wal != nil {
				if err := os.WriteFile(filepath.Join(dir, walName), wal, 0o644); err != nil {
					t.Fatal(err)
				}
			}

			s := openT(t, dir)
			defer s.Close()
			st := s.Stats()
			if got := len(s.Recovered()); got != tc.wantRecovered {
				t.Errorf("recovered %d entries, want %d (stats %+v)", got, tc.wantRecovered, st)
			}
			if st.DroppedRecords < tc.wantDropped {
				t.Errorf("DroppedRecords = %d, want >= %d", st.DroppedRecords, tc.wantDropped)
			}
			if st.SnapshotDropped != tc.wantSnapDrop {
				t.Errorf("SnapshotDropped = %v, want %v", st.SnapshotDropped, tc.wantSnapDrop)
			}
			if tc.wantDropped > 0 && st.TruncatedBytes == 0 && tc.name != "absurd length field" {
				// every drop case here damages the tail, so bytes must be
				// reported (absurd-length damages mid-file length bytes too,
				// but the cut still happens at that offset, counted below)
				t.Errorf("dropped records but TruncatedBytes = 0")
			}

			// The store must remain fully usable after any damage.
			if err := s.Append(Record{Op: OpInsert, Key: 77, Value: 770, Deadline: d}); err != nil {
				t.Fatalf("append after damaged recovery: %v", err)
			}
			s.Close()
			r := openT(t, dir)
			defer r.Close()
			if _, ok := recoveredMap(r)[77]; !ok {
				t.Error("append after damaged recovery did not survive reopen")
			}
		})
	}
}

// TestWALTortureRandomTruncation chops the WAL at every possible byte
// offset; recovery must never panic and must keep exactly the whole frames
// before the cut.
func TestWALTortureRandomTruncation(t *testing.T) {
	d := time.Now().Add(time.Hour)
	full := writeFrames(
		Record{Op: OpInsert, Key: 1, Value: 1, Deadline: d},
		Record{Op: OpInsert, Key: 2, Value: 2, Deadline: d},
		Record{Op: OpPublish, Key: 3, Value: 3},
	)
	frame := frameHeaderLen + payloadLen
	for cut := 0; cut <= len(full); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, walName), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s := openT(t, dir)
		want := cut / frame
		if got := len(s.Recovered()); got != want {
			t.Fatalf("cut at %d: recovered %d entries, want %d", cut, got, want)
		}
		if cut%frame != 0 && s.Stats().DroppedRecords == 0 {
			t.Fatalf("cut at %d left a partial frame but nothing was reported dropped", cut)
		}
		s.Close()
	}
}
