package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"pdht/internal/obs"
)

// FileStore is the file-backed Store: an append-only WAL of length-prefixed,
// CRC32-framed records plus a periodically compacted snapshot, both under
// one directory. It keeps an in-memory mirror of the durable state (the
// same bounded universe as the index cache plus the content store), so
// compaction never has to consult the owning node: a snapshot is the mirror
// serialized, and WAL truncation follows the snapshot rename.
//
// Crash safety:
//
//   - WAL appends are single write(2) calls, so a crash tears at most the
//     last frame. Recovery scans the WAL front to back and truncates at
//     the first bad frame (short read, impossible length, CRC mismatch) —
//     everything before it is kept, everything after is counted dropped.
//   - Snapshots are written to a temp file, fsynced, and renamed into
//     place, so a crash mid-snapshot leaves the previous snapshot intact.
//     The WAL is truncated only after the rename; a crash in between
//     leaves snapshot + pre-snapshot WAL, whose replay is idempotent (the
//     WAL holds exactly the history the snapshot absorbed).
//   - fsync policy is configurable (SyncAlways / SyncInterval / SyncNever).
//     A kill -9 loses nothing under any policy — the data is in the page
//     cache; only power loss can eat the unsynced window.
type FileStore struct {
	opts FileOptions

	mu        sync.Mutex
	wal       *os.File
	walSize   int64
	dirty     bool // unsynced appends
	closed    bool
	index     map[uint64]mirrorEntry
	content   map[uint64]uint64
	recovered []Entry
	stats     RecoveryStats

	walAppends atomic.Uint64
	walBytes   atomic.Uint64
	fsyncCount atomic.Uint64
	snapCount  atomic.Uint64
	appendErrs atomic.Uint64
	snapHist   atomic.Pointer[obs.Histogram]
	regOnce    sync.Once

	stop chan struct{}
	done sync.WaitGroup
}

// mirrorEntry is one row of the durable-state mirror; deadline is the
// absolute expiry in Unix nanoseconds, carried exactly as journaled.
type mirrorEntry struct {
	value    uint64
	deadline int64
}

// SyncPolicy selects when WAL appends reach stable storage.
type SyncPolicy uint8

const (
	// SyncInterval (the default): a background flusher fsyncs every
	// SyncEvery while appends are outstanding. Bounded loss on power
	// failure, negligible append cost.
	SyncInterval SyncPolicy = iota
	// SyncAlways: fsync after every append. No loss window, every append
	// pays a disk flush.
	SyncAlways
	// SyncNever: fsync only at snapshots and on Close. For tests,
	// benchmarks and deployments that trust the page cache.
	SyncNever
)

// ParseSyncPolicy maps the CLI spellings onto the policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "interval":
		return SyncInterval, nil
	case "always":
		return SyncAlways, nil
	case "none":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("store: unknown fsync policy %q (want always, interval or none)", s)
}

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncNever:
		return "none"
	default:
		return "interval"
	}
}

// FileOptions parameterizes OpenFile; zero fields take the documented
// defaults.
type FileOptions struct {
	// Dir is the data directory, created if missing. Required.
	Dir string
	// Fsync is the WAL durability policy (default SyncInterval).
	Fsync SyncPolicy
	// SyncEvery is the SyncInterval flush period (default 100ms).
	SyncEvery time.Duration
	// SnapshotEvery is the compaction period: how often outstanding WAL
	// records are absorbed into a fresh snapshot and the WAL truncated
	// (default 1m). Compaction also triggers whenever the WAL exceeds
	// SnapshotBytes (default 4MiB), whichever comes first.
	SnapshotEvery time.Duration
	SnapshotBytes int64

	// now is the test seam for the replay clock.
	now func() time.Time
}

func (o *FileOptions) setDefaults() {
	if o.SyncEvery == 0 {
		o.SyncEvery = 100 * time.Millisecond
	}
	if o.SnapshotEvery == 0 {
		o.SnapshotEvery = time.Minute
	}
	if o.SnapshotBytes == 0 {
		o.SnapshotBytes = 4 << 20
	}
	if o.now == nil {
		o.now = time.Now
	}
}

// The on-disk names under Dir.
const (
	walName      = "wal.log"
	snapshotName = "snapshot.db"
	snapshotTmp  = "snapshot.tmp"
)

// snapshotMagic heads a snapshot file; the trailing byte is the format
// version.
var snapshotMagic = []byte("PDHTSNP1")

// Frame layout: u32 payload length, u32 CRC32 (IEEE) of the payload, then
// the payload — op(1) | key(8) | value(8) | deadline unix-nanos(8), all
// little-endian, zero deadline for records without one.
const (
	frameHeaderLen = 8
	payloadLen     = 1 + 8 + 8 + 8
	// maxPayload bounds the length field during recovery: anything larger
	// is corruption, not a record a future version could have written.
	maxPayload = 1 << 12
)

// ErrClosed reports an operation on a closed store.
var ErrClosed = errors.New("store: closed")

// OpenFile opens (or creates) the file-backed store under opts.Dir and
// runs crash recovery: the snapshot is loaded, the WAL replayed on top
// with the tail truncated at the first corrupt frame, and index entries
// whose deadline already passed are dropped and counted. The surviving
// state is available through Recovered and Stats.
func OpenFile(opts FileOptions) (*FileStore, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("store: FileOptions.Dir is required")
	}
	opts.setDefaults()
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &FileStore{
		opts:    opts,
		index:   make(map[uint64]mirrorEntry),
		content: make(map[uint64]uint64),
		stop:    make(chan struct{}),
	}
	start := time.Now()
	s.loadSnapshot()
	if err := s.replayWAL(); err != nil {
		return nil, err
	}
	s.finishRecovery(start)
	s.done.Add(1)
	go s.background()
	return s, nil
}

// loadSnapshot applies the snapshot file, if one exists, to the mirror. A
// missing or empty file means "no snapshot yet"; a present-but-unreadable
// one is ignored and reported (the WAL may still carry the state).
func (s *FileStore) loadSnapshot() {
	body, err := os.ReadFile(filepath.Join(s.opts.Dir, snapshotName))
	if err != nil || len(body) == 0 {
		return
	}
	if len(body) < len(snapshotMagic) || string(body[:len(snapshotMagic)]) != string(snapshotMagic) {
		s.stats.SnapshotDropped = true
		return
	}
	rest := body[len(snapshotMagic):]
	for len(rest) > 0 {
		rec, n, ok := decodeFrame(rest)
		if !ok {
			// A torn snapshot should be impossible (temp + rename); keep
			// what decoded and report the anomaly.
			s.stats.SnapshotDropped = true
			return
		}
		s.apply(rec)
		rest = rest[n:]
	}
}

// replayWAL opens the WAL, applies every intact frame to the mirror, and
// truncates the file at the first bad one — the torn tail a crash
// mid-append leaves behind.
func (s *FileStore) replayWAL() error {
	wal, err := os.OpenFile(filepath.Join(s.opts.Dir, walName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	body, err := io.ReadAll(wal)
	if err != nil {
		wal.Close()
		return fmt.Errorf("store: %w", err)
	}
	good := int64(0)
	rest := body
	for len(rest) > 0 {
		rec, n, ok := decodeFrame(rest)
		if !ok {
			break
		}
		if rec.Op >= OpInsert && rec.Op <= OpHandoff {
			s.apply(rec)
		} else {
			// CRC-valid but unknown op: a future format. Skip it but say so.
			s.stats.DroppedRecords++
		}
		good += int64(n)
		rest = rest[n:]
	}
	if tail := int64(len(body)) - good; tail > 0 {
		// Torn or corrupt tail: cut it off so appends resume on a clean
		// frame boundary. At least one record died here; the garbage may
		// hide more, but their count is unknowable.
		s.stats.DroppedRecords++
		s.stats.TruncatedBytes = tail
		if err := wal.Truncate(good); err != nil {
			wal.Close()
			return fmt.Errorf("store: truncating torn WAL tail: %w", err)
		}
	}
	if _, err := wal.Seek(good, io.SeekStart); err != nil {
		wal.Close()
		return fmt.Errorf("store: %w", err)
	}
	s.wal = wal
	s.walSize = good
	return nil
}

// finishRecovery drops index entries already expired at replay time and
// freezes the recovered set and stats.
func (s *FileStore) finishRecovery(start time.Time) {
	now := s.opts.now().UnixNano()
	for k, e := range s.index {
		if e.deadline <= now {
			delete(s.index, k)
			s.stats.Expired++
			continue
		}
		s.recovered = append(s.recovered, Entry{Key: k, Value: e.value, Deadline: time.Unix(0, e.deadline)})
	}
	s.stats.Recovered = len(s.recovered)
	for k, v := range s.content {
		s.recovered = append(s.recovered, Entry{Key: k, Value: v})
	}
	s.stats.Content = len(s.content)
	s.stats.Replay = time.Since(start)
}

// apply folds one record into the mirror. WAL order is chronological, so
// plain replay converges; the one duplicate window (snapshot renamed, WAL
// not yet truncated) replays exactly the history the snapshot absorbed and
// lands on the same state.
func (s *FileStore) apply(rec Record) {
	switch rec.Op {
	case OpInsert:
		s.index[rec.Key] = mirrorEntry{value: rec.Value, deadline: deadlineNanos(rec.Deadline)}
	case OpRefresh:
		if e, ok := s.index[rec.Key]; ok {
			e.deadline = deadlineNanos(rec.Deadline)
			s.index[rec.Key] = e
		}
	case OpExpire:
		delete(s.index, rec.Key)
	case OpPublish:
		s.content[rec.Key] = rec.Value
	case OpHandoff:
		// Audit only: the holder keeps its copy.
	}
}

func deadlineNanos(t time.Time) int64 {
	if t.IsZero() {
		return 0
	}
	return t.UnixNano()
}

// encodeFrame appends rec's frame to buf and returns the extended slice.
func encodeFrame(buf []byte, rec Record) []byte {
	var payload [payloadLen]byte
	payload[0] = byte(rec.Op)
	binary.LittleEndian.PutUint64(payload[1:], rec.Key)
	binary.LittleEndian.PutUint64(payload[9:], rec.Value)
	binary.LittleEndian.PutUint64(payload[17:], uint64(deadlineNanos(rec.Deadline)))
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:], payloadLen)
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload[:]))
	buf = append(buf, hdr[:]...)
	return append(buf, payload[:]...)
}

// decodeFrame reads one frame off the front of b, returning the record,
// the bytes consumed, and whether the frame was intact.
func decodeFrame(b []byte) (Record, int, bool) {
	if len(b) < frameHeaderLen {
		return Record{}, 0, false
	}
	n := binary.LittleEndian.Uint32(b[0:])
	crc := binary.LittleEndian.Uint32(b[4:])
	if n < payloadLen || n > maxPayload || len(b) < frameHeaderLen+int(n) {
		return Record{}, 0, false
	}
	payload := b[frameHeaderLen : frameHeaderLen+int(n)]
	if crc32.ChecksumIEEE(payload) != crc {
		return Record{}, 0, false
	}
	rec := Record{
		Op:    Op(payload[0]),
		Key:   binary.LittleEndian.Uint64(payload[1:]),
		Value: binary.LittleEndian.Uint64(payload[9:]),
	}
	if d := int64(binary.LittleEndian.Uint64(payload[17:])); d != 0 {
		rec.Deadline = time.Unix(0, d)
	}
	return rec, frameHeaderLen + int(n), true
}

// Recovered returns the entries replayed at open.
func (s *FileStore) Recovered() []Entry { return s.recovered }

// Stats reports what the opening replay kept and dropped.
func (s *FileStore) Stats() RecoveryStats { return s.stats }

// Append journals one mutation: encode, single write(2) into the WAL,
// mirror update, fsync per policy. Safe for concurrent use.
func (s *FileStore) Append(rec Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		s.appendErrs.Add(1)
		return ErrClosed
	}
	var buf [frameHeaderLen + payloadLen]byte
	frame := encodeFrame(buf[:0], rec)
	if _, err := s.wal.Write(frame); err != nil {
		s.appendErrs.Add(1)
		return fmt.Errorf("store: wal append: %w", err)
	}
	s.walSize += int64(len(frame))
	s.dirty = true
	s.apply(rec)
	s.walAppends.Add(1)
	s.walBytes.Add(uint64(len(frame)))
	if s.opts.Fsync == SyncAlways {
		if err := s.syncLocked(); err != nil {
			s.appendErrs.Add(1)
			return err
		}
	}
	if s.walSize > s.opts.SnapshotBytes {
		if err := s.compactLocked(); err != nil {
			return err
		}
	}
	return nil
}

// Sync forces buffered WAL records to stable storage.
func (s *FileStore) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.syncLocked()
}

func (s *FileStore) syncLocked() error {
	if !s.dirty {
		return nil
	}
	if err := s.wal.Sync(); err != nil {
		return fmt.Errorf("store: wal fsync: %w", err)
	}
	s.dirty = false
	s.fsyncCount.Add(1)
	return nil
}

// Compact absorbs the outstanding WAL into a fresh snapshot and truncates
// the WAL. Runs automatically every SnapshotEvery and whenever the WAL
// crosses SnapshotBytes; exported for operational use.
func (s *FileStore) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.compactLocked()
}

func (s *FileStore) compactLocked() error {
	start := time.Now()
	now := s.opts.now().UnixNano()
	buf := make([]byte, 0, len(snapshotMagic)+(len(s.index)+len(s.content))*(frameHeaderLen+payloadLen))
	buf = append(buf, snapshotMagic...)
	for k, e := range s.index {
		if e.deadline <= now {
			// Expired entries need no snapshot row; the owning cache
			// journals its own expirations, this is just the mirror
			// dropping lapsed state a beat earlier.
			delete(s.index, k)
			continue
		}
		buf = encodeFrame(buf, Record{Op: OpInsert, Key: k, Value: e.value, Deadline: time.Unix(0, e.deadline)})
	}
	for k, v := range s.content {
		buf = encodeFrame(buf, Record{Op: OpPublish, Key: k, Value: v})
	}
	tmpPath := filepath.Join(s.opts.Dir, snapshotTmp)
	tmp, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: snapshot: %w", err)
	}
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return fmt.Errorf("store: snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: snapshot: %w", err)
	}
	if err := os.Rename(tmpPath, filepath.Join(s.opts.Dir, snapshotName)); err != nil {
		return fmt.Errorf("store: snapshot: %w", err)
	}
	s.fsyncCount.Add(1)
	syncDir(s.opts.Dir)
	// The snapshot now owns all journaled history; a crash before this
	// truncate replays snapshot + absorbed WAL, which is idempotent.
	if err := s.wal.Truncate(0); err != nil {
		return fmt.Errorf("store: wal truncate: %w", err)
	}
	if _, err := s.wal.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.walSize = 0
	s.dirty = false
	s.snapCount.Add(1)
	if h := s.snapHist.Load(); h != nil {
		h.Observe(time.Since(start))
	}
	return nil
}

// syncDir fsyncs a directory so a rename survives power loss; best effort
// (not all filesystems support it).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// WALSize returns the current WAL length in bytes.
func (s *FileStore) WALSize() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.walSize
}

// Entries returns the number of rows in the durable-state mirror (index
// plus content).
func (s *FileStore) Entries() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index) + len(s.content)
}

// background is the maintenance loop: interval fsync and periodic
// compaction.
func (s *FileStore) background() {
	defer s.done.Done()
	flush := time.NewTicker(s.opts.SyncEvery)
	defer flush.Stop()
	snap := time.NewTicker(s.opts.SnapshotEvery)
	defer snap.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-flush.C:
			if s.opts.Fsync == SyncInterval {
				s.mu.Lock()
				if !s.closed {
					s.syncLocked()
				}
				s.mu.Unlock()
			}
		case <-snap.C:
			s.mu.Lock()
			if !s.closed && s.walSize > 0 {
				s.compactLocked()
			}
			s.mu.Unlock()
		}
	}
}

// RegisterMetrics installs the pdht_store_* instruments on reg. The
// monotone counts are exposed through CounterFunc so appends journaled
// before registration (recovery happens at open, the registry exists only
// once the owning node is built) are not lost.
func (s *FileStore) RegisterMetrics(reg *obs.Registry) {
	s.regOnce.Do(func() {
		reg.CounterFunc("pdht_store_wal_appends_total",
			"Mutation records appended to the WAL.",
			func() float64 { return float64(s.walAppends.Load()) })
		reg.CounterFunc("pdht_store_wal_bytes_total",
			"Bytes appended to the WAL (frames, including headers).",
			func() float64 { return float64(s.walBytes.Load()) })
		reg.CounterFunc("pdht_store_fsyncs_total",
			"fsync calls issued (per-append, interval flushes and snapshots).",
			func() float64 { return float64(s.fsyncCount.Load()) })
		reg.CounterFunc("pdht_store_snapshots_total",
			"Compactions completed: snapshot written, WAL truncated.",
			func() float64 { return float64(s.snapCount.Load()) })
		reg.CounterFunc("pdht_store_append_errors_total",
			"WAL appends that failed; durability degraded, serving unaffected.",
			func() float64 { return float64(s.appendErrs.Load()) })
		reg.GaugeFunc("pdht_store_wal_size_bytes",
			"Current WAL length; drops to zero at each compaction.",
			func() float64 { return float64(s.WALSize()) })
		reg.GaugeFunc("pdht_store_mirror_entries",
			"Rows in the durable-state mirror (index plus content).",
			func() float64 { return float64(s.Entries()) })
		reg.Gauge("pdht_store_recovered_entries",
			"Entries re-admitted by the opening replay (index at remaining TTL, plus content).").
			Set(int64(s.stats.Recovered + s.stats.Content))
		reg.Gauge("pdht_store_replay_expired_entries",
			"Index entries whose TTL lapsed while the process was down, dropped at replay.").
			Set(int64(s.stats.Expired))
		reg.Gauge("pdht_store_replay_dropped_records",
			"WAL records discarded at the torn tail (plus unknown-op skips).").
			Set(int64(s.stats.DroppedRecords))
		reg.GaugeFunc("pdht_store_replay_seconds",
			"Wall-clock cost of the opening recovery replay.",
			func() float64 { return s.stats.Replay.Seconds() })
		s.snapHist.Store(reg.Histogram("pdht_store_snapshot_seconds",
			"Compaction duration: snapshot serialization, fsync, rename, WAL truncation.", nil))
	})
}

// Close stops the maintenance loop, takes a final snapshot (so the next
// open replays a compact file instead of the whole WAL), and releases the
// files. Idempotent.
func (s *FileStore) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	close(s.stop)
	s.done.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	var firstErr error
	if s.walSize > 0 {
		if err := s.compactLocked(); err != nil {
			firstErr = err
			// Compaction failed; at least push the raw WAL to disk.
			if err := s.wal.Sync(); err == nil {
				s.fsyncCount.Add(1)
			}
		}
	} else if err := s.syncLocked(); err != nil && firstErr == nil {
		firstErr = err
	}
	if err := s.wal.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}
