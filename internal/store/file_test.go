package store

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pdht/internal/obs"
)

// openT opens a FileStore under dir with a long snapshot period (tests
// compact explicitly) and no background fsync surprises.
func openT(t *testing.T, dir string, opts ...func(*FileOptions)) *FileStore {
	t.Helper()
	o := FileOptions{Dir: dir, Fsync: SyncNever, SnapshotEvery: time.Hour}
	for _, f := range opts {
		f(&o)
	}
	s, err := OpenFile(o)
	if err != nil {
		t.Fatalf("OpenFile(%s): %v", dir, err)
	}
	return s
}

// recoveredMap indexes a recovered set by key.
func recoveredMap(s *FileStore) map[uint64]Entry {
	out := make(map[uint64]Entry)
	for _, e := range s.Recovered() {
		out[e.Key] = e
	}
	return out
}

func TestFileStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	d1 := time.Now().Add(time.Hour).Truncate(0)
	d2 := time.Now().Add(2 * time.Hour).Truncate(0)
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.Append(Record{Op: OpInsert, Key: 1, Value: 11, Deadline: d1}))
	must(s.Append(Record{Op: OpInsert, Key: 2, Value: 22, Deadline: d1}))
	must(s.Append(Record{Op: OpRefresh, Key: 2, Deadline: d2}))
	must(s.Append(Record{Op: OpInsert, Key: 3, Value: 33, Deadline: d1}))
	must(s.Append(Record{Op: OpExpire, Key: 3}))
	must(s.Append(Record{Op: OpPublish, Key: 7, Value: 77}))
	must(s.Append(Record{Op: OpHandoff, Key: 1, Value: 11}))
	must(s.Close())

	r := openT(t, dir)
	defer r.Close()
	got := recoveredMap(r)
	if len(got) != 3 {
		t.Fatalf("recovered %d entries, want 3: %+v", len(got), got)
	}
	if e := got[1]; e.Value != 11 || !e.Deadline.Equal(d1) {
		t.Errorf("key 1: got value %d deadline %v, want 11 at %v", e.Value, e.Deadline, d1)
	}
	if e := got[2]; e.Value != 22 || !e.Deadline.Equal(d2) {
		t.Errorf("key 2: refresh not applied, got deadline %v want %v", e.Deadline, d2)
	}
	if _, ok := got[3]; ok {
		t.Error("key 3 was expired before the crash but replay resurrected it")
	}
	if e := got[7]; e.Value != 77 || !e.Deadline.IsZero() {
		t.Errorf("content key 7: got %+v, want value 77 with zero deadline", e)
	}
	st := r.Stats()
	if st.Recovered != 2 || st.Content != 1 || st.Expired != 0 || st.DroppedRecords != 0 {
		t.Errorf("stats: %+v", st)
	}
}

func TestFileStoreExpiredAtReplayAreDroppedAndCounted(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	if err := s.Append(Record{Op: OpInsert, Key: 1, Value: 1, Deadline: time.Now().Add(30 * time.Millisecond)}); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(Record{Op: OpInsert, Key: 2, Value: 2, Deadline: time.Now().Add(time.Hour)}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	time.Sleep(50 * time.Millisecond) // key 1's remaining TTL runs out while "down"

	r := openT(t, dir)
	defer r.Close()
	got := recoveredMap(r)
	if _, ok := got[1]; ok {
		t.Error("key 1 lapsed while the process was down but was resurrected")
	}
	if _, ok := got[2]; !ok {
		t.Error("key 2 still had remaining TTL but was dropped")
	}
	if st := r.Stats(); st.Expired != 1 || st.Recovered != 1 {
		t.Errorf("stats: %+v, want Expired=1 Recovered=1", st)
	}
}

func TestFileStoreCompactionTruncatesWALAndSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	d := time.Now().Add(time.Hour).Truncate(0)
	for k := uint64(0); k < 50; k++ {
		if err := s.Append(Record{Op: OpInsert, Key: k, Value: k * 10, Deadline: d}); err != nil {
			t.Fatal(err)
		}
	}
	if s.WALSize() == 0 {
		t.Fatal("WAL empty before compaction")
	}
	if err := s.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if got := s.WALSize(); got != 0 {
		t.Fatalf("WAL size %d after compaction, want 0", got)
	}
	// Post-compaction appends land in the fresh WAL.
	if err := s.Append(Record{Op: OpInsert, Key: 99, Value: 990, Deadline: d}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	r := openT(t, dir)
	defer r.Close()
	got := recoveredMap(r)
	if len(got) != 51 {
		t.Fatalf("recovered %d entries after compaction+reopen, want 51", len(got))
	}
	if e := got[42]; e.Value != 420 || !e.Deadline.Equal(d) {
		t.Errorf("key 42 deadline drifted through snapshot: %+v want value 420 at %v", e, d)
	}
}

func TestFileStoreSnapshotBytesTriggersCompaction(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, func(o *FileOptions) { o.SnapshotBytes = 5 * (frameHeaderLen + payloadLen) })
	d := time.Now().Add(time.Hour)
	for k := uint64(0); k < 20; k++ {
		if err := s.Append(Record{Op: OpInsert, Key: k, Value: k, Deadline: d}); err != nil {
			t.Fatal(err)
		}
	}
	if s.snapCount.Load() == 0 {
		t.Fatal("WAL grew past SnapshotBytes but no compaction ran")
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotName)); err != nil {
		t.Fatalf("no snapshot file after size-triggered compaction: %v", err)
	}
	s.Close()
	r := openT(t, dir)
	defer r.Close()
	if got := len(recoveredMap(r)); got != 20 {
		t.Fatalf("recovered %d entries, want 20", got)
	}
}

func TestFileStoreAppendAfterCloseFailsCleanly(t *testing.T) {
	s := openT(t, t.TempDir())
	s.Close()
	if err := s.Append(Record{Op: OpInsert, Key: 1, Value: 1, Deadline: time.Now().Add(time.Hour)}); err == nil {
		t.Fatal("append after Close succeeded")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for in, want := range map[string]SyncPolicy{"always": SyncAlways, "interval": SyncInterval, "none": SyncNever} {
		got, err := ParseSyncPolicy(in)
		if err != nil || got != want {
			t.Errorf("ParseSyncPolicy(%q) = %v, %v; want %v", in, got, err, want)
		}
		if got.String() != in {
			t.Errorf("SyncPolicy(%v).String() = %q, want %q", got, got.String(), in)
		}
	}
	if _, err := ParseSyncPolicy("fsync-maybe"); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestFileStoreMetricsExposition(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	d := time.Now().Add(time.Hour)
	s.Append(Record{Op: OpInsert, Key: 1, Value: 1, Deadline: d})
	s.Append(Record{Op: OpPublish, Key: 2, Value: 2})
	s.Close()

	r := openT(t, dir)
	defer r.Close()
	r.Append(Record{Op: OpInsert, Key: 3, Value: 3, Deadline: d})
	reg := obs.NewRegistry()
	r.RegisterMetrics(reg)
	r.RegisterMetrics(reg) // idempotent
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"pdht_store_wal_appends_total 1",
		"pdht_store_recovered_entries 2",
		"pdht_store_replay_expired_entries 0",
		"# TYPE pdht_store_wal_appends_total counter",
		"# TYPE pdht_store_snapshot_seconds histogram",
		"pdht_store_mirror_entries 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestNoopStoreIsFree(t *testing.T) {
	n := NewNoop()
	if err := n.Append(Record{Op: OpInsert, Key: 1}); err != nil {
		t.Fatal(err)
	}
	if got := n.Recovered(); got != nil {
		t.Fatalf("Noop recovered %v", got)
	}
	n.RegisterMetrics(obs.NewRegistry())
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
}
