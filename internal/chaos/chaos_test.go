package chaos

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"pdht/internal/transport"
)

// twoGroups returns two addresses landing in different groups of a k-way
// split (and, for oneway tests, the first one in group 0).
func twoGroups(t *testing.T, k int) (in0, other string) {
	t.Helper()
	for i := 0; i < 1000; i++ {
		a := fmt.Sprintf("addr-%d", i)
		switch GroupOf(a, k) {
		case 0:
			if in0 == "" {
				in0 = a
			}
		default:
			if other == "" {
				other = a
			}
		}
		if in0 != "" && other != "" {
			return in0, other
		}
	}
	t.Fatal("hash split produced a single group over 1000 addresses")
	return "", ""
}

func TestGroupOf(t *testing.T) {
	if GroupOf("x", 1) != 0 || GroupOf("x", 0) != 0 {
		t.Fatal("k<2 must collapse to group 0")
	}
	for _, k := range []int{2, 3, 5} {
		seen := map[int]int{}
		for i := 0; i < 300; i++ {
			a := fmt.Sprintf("peer-%04d", i)
			g := GroupOf(a, k)
			if g < 0 || g >= k {
				t.Fatalf("GroupOf(%q,%d) = %d out of range", a, k, g)
			}
			if g != GroupOf(a, k) {
				t.Fatal("GroupOf is not deterministic")
			}
			seen[g]++
		}
		if len(seen) != k {
			t.Fatalf("300 addresses filled %d of %d groups", len(seen), k)
		}
	}
}

func TestParseSchedule(t *testing.T) {
	s, err := ParseSchedule("healthy=2s, drop20+split3=10s ,heal=30s")
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 3 || s[1].Split != 3 || s[1].Drop != 0.20 || s[1].OneWay {
		t.Fatalf("parsed %+v", s)
	}
	if s.Total() != 42*time.Second {
		t.Fatalf("Total = %s", s.Total())
	}
	ow, err := ParseSchedule("oneway2+drop5=1s")
	if err != nil || ow[0].Split != 2 || !ow[0].OneWay || ow[0].Drop != 0.05 {
		t.Fatalf("oneway parse: %+v, %v", ow, err)
	}
	for _, bad := range []string{"", "x", "split1=1s", "drop200=1s", "split3", "split3=-1s", "wat=1s"} {
		if _, err := ParseSchedule(bad); err == nil {
			t.Fatalf("schedule %q should not parse", bad)
		}
	}
	// String round-trips through the parser.
	back, err := ParseSchedule(s.String())
	if err != nil || back.String() != s.String() {
		t.Fatalf("round trip: %q vs %q (%v)", back.String(), s.String(), err)
	}
}

// echoNet is a Memory transport with an echoing endpoint at each listed
// address, wrapped by a chaos Network.
func echoNet(t *testing.T, cfg Config, addrs ...string) *Network {
	t.Helper()
	mem := transport.NewMemory()
	for _, a := range addrs {
		if _, err := mem.Serve(a, func(req transport.Request) transport.Response {
			return transport.Response{OK: true, Value: req.Key}
		}); err != nil {
			t.Fatal(err)
		}
	}
	return New(mem, cfg)
}

func TestPartitionSemantics(t *testing.T) {
	a, b := twoGroups(t, 2)
	net := echoNet(t, Config{Seed: 7}, a, b)
	cli, err := net.Node(a).Dial(b)
	if err != nil {
		t.Fatal(err)
	}

	call := func(ctx context.Context) error {
		_, err := cli.Call(ctx, transport.Request{Op: transport.OpQuery, Key: 1})
		return err
	}
	if err := call(context.Background()); err != nil {
		t.Fatalf("healthy call failed: %v", err)
	}

	net.Split(2)
	// No deadline: the blackhole surfaces as ErrUnreachable immediately.
	if err := call(context.Background()); !errors.Is(err, transport.ErrUnreachable) {
		t.Fatalf("cut call without deadline: err = %v, want ErrUnreachable", err)
	}
	// With a deadline: the call waits it out, like a lost packet.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	start := time.Now()
	err = call(ctx)
	cancel()
	if !errors.Is(err, context.DeadlineExceeded) || time.Since(start) < 15*time.Millisecond {
		t.Fatalf("cut call with deadline: err = %v after %s, want DeadlineExceeded after ~20ms", err, time.Since(start))
	}

	net.Heal()
	if err := call(context.Background()); err != nil {
		t.Fatalf("healed call failed: %v", err)
	}

	// Loopback is exempt even under a split.
	net.Split(2)
	self, err := net.Node(a).Dial(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := self.Call(context.Background(), transport.Request{Op: transport.OpQuery}); err != nil {
		t.Fatalf("loopback call under split failed: %v", err)
	}
}

func TestOneWaySplit(t *testing.T) {
	in0, other := twoGroups(t, 2)
	net := echoNet(t, Config{Seed: 3}, in0, other)
	net.OneWay(2)

	// other → in0 is cut (traffic INTO group 0)…
	toZero, _ := net.Node(other).Dial(in0)
	if _, err := toZero.Call(context.Background(), transport.Request{Op: transport.OpQuery}); !errors.Is(err, transport.ErrUnreachable) {
		t.Fatalf("call into group 0 survived a one-way cut: %v", err)
	}
	// …but in0 → other still flows: group 0 can call out and hear replies.
	fromZero, _ := net.Node(in0).Dial(other)
	if _, err := fromZero.Call(context.Background(), transport.Request{Op: transport.OpQuery}); err != nil {
		t.Fatalf("outbound call from group 0 failed under one-way cut: %v", err)
	}
}

// The same seed must produce the same per-link fault sequence — the
// property that makes a failing chaos run reproducible.
func TestDropDeterminism(t *testing.T) {
	pattern := func() []bool {
		net := echoNet(t, Config{Seed: 99, Drop: 0.5}, "a", "b")
		cli, _ := net.Node("a").Dial("b")
		out := make([]bool, 60)
		for i := range out {
			_, err := cli.Call(context.Background(), transport.Request{Op: transport.OpQuery})
			out[i] = err == nil
		}
		return out
	}
	p1, p2 := pattern(), pattern()
	ok, dropped := 0, 0
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("call %d diverged across identically-seeded runs", i)
		}
		if p1[i] {
			ok++
		} else {
			dropped++
		}
	}
	// 60 draws at 1-(1-0.5)² = 75% loss: both outcomes must appear.
	if ok == 0 || dropped == 0 {
		t.Fatalf("drop 0.5 produced %d ok / %d dropped over 60 calls", ok, dropped)
	}
}

func TestDuplicateDelivery(t *testing.T) {
	var calls atomic.Int64
	mem := transport.NewMemory()
	if _, err := mem.Serve("b", func(req transport.Request) transport.Response {
		calls.Add(1)
		return transport.Response{OK: true}
	}); err != nil {
		t.Fatal(err)
	}
	net := New(mem, Config{Seed: 5, Duplicate: 1})
	cli, _ := net.Node("a").Dial("b")
	if _, err := cli.Call(context.Background(), transport.Request{Op: transport.OpQuery}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for calls.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("duplicate=1 delivered %d times, want 2", calls.Load())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestLatencyDelaysCalls(t *testing.T) {
	net := echoNet(t, Config{Seed: 2, LatencyBase: 30 * time.Millisecond}, "a", "b")
	cli, _ := net.Node("a").Dial("b")
	start := time.Now()
	if _, err := cli.Call(context.Background(), transport.Request{Op: transport.OpQuery}); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("call returned in %s, want ≥ 30ms base latency", d)
	}
}

func TestConvergenceBound(t *testing.T) {
	b100 := ConvergenceBound(100, 40*time.Millisecond, 200*time.Millisecond, 160*time.Millisecond, 0.125)
	b1000 := ConvergenceBound(1000, 40*time.Millisecond, 200*time.Millisecond, 160*time.Millisecond, 0.125)
	if b1000 <= b100 {
		t.Fatalf("bound must grow with n: %s vs %s", b100, b1000)
	}
	if b100 < time.Second || b1000 > 5*time.Minute {
		t.Fatalf("implausible bounds: n=100 %s, n=1000 %s", b100, b1000)
	}
	// Zero parameters take the gossip defaults instead of dividing by zero.
	if d := ConvergenceBound(0, 0, 0, 0, 0); d <= 0 {
		t.Fatalf("default bound %s", d)
	}
}
