//go:build !race

package chaos

// Test-scale constants. The race detector multiplies both CPU and memory
// cost per node by a large factor, so the build-tagged pair downscales the
// in-matrix chaos tests under -race while keeping the same code paths.
const (
	smokeFleetN     = 128
	invariantFleetN = 24
	invariantSeeds  = 10
)
