package chaos

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Phase is one timed fault state: an optional hash partition plus extra
// message drop, layered over the Network's baseline Config. The zero Phase
// is "healthy".
type Phase struct {
	// Name labels the phase in reports ("split3+drop20").
	Name string
	// Duration is how long the phase holds before the next one applies.
	Duration time.Duration
	// Drop is extra per-message drop probability during the phase,
	// composed with the baseline (1-(1-base)(1-phase)).
	Drop float64
	// Split ≥ 2 hash-partitions the network into that many groups.
	Split int
	// OneWay restricts the cut to traffic INTO group 0 (asymmetric loss);
	// requires Split ≥ 2.
	OneWay bool
}

// Scenario is a script of fault phases, applied in order.
type Scenario []Phase

// ParseSchedule parses the scenario mini-language shared by the in-process
// harness, cmd/pdht-chaos, and pdht-node's -chaos-schedule flag:
//
//	schedule  = phase ("," phase)*
//	phase     = token ("+" token)* "=" duration
//	token     = "healthy" | "heal" | "split" K | "oneway" K | "drop" PCT
//
// Example: "healthy=2s,drop20+split3=10s,heal=30s" — two seconds clean,
// ten seconds of 20% loss across a 3-way partition, then thirty seconds
// healed. K is the group count (≥2), PCT an integer percentage.
func ParseSchedule(s string) (Scenario, error) {
	var out Scenario
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, durStr, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("chaos: phase %q: want name=duration", part)
		}
		// Zero is legal: a trailing benign phase of zero duration tells
		// the runner "wait the computed convergence bound" (see Run).
		dur, err := time.ParseDuration(strings.TrimSpace(durStr))
		if err != nil || dur < 0 {
			return nil, fmt.Errorf("chaos: phase %q: bad duration %q", part, durStr)
		}
		p := Phase{Name: strings.TrimSpace(name), Duration: dur}
		for _, tok := range strings.Split(p.Name, "+") {
			tok = strings.TrimSpace(tok)
			switch {
			case tok == "healthy" || tok == "heal":
				// explicit no-op: partition cleared, no extra faults
			case strings.HasPrefix(tok, "split"):
				k, err := strconv.Atoi(tok[len("split"):])
				if err != nil || k < 2 {
					return nil, fmt.Errorf("chaos: phase %q: bad split group count", part)
				}
				p.Split = k
			case strings.HasPrefix(tok, "oneway"):
				k, err := strconv.Atoi(tok[len("oneway"):])
				if err != nil || k < 2 {
					return nil, fmt.Errorf("chaos: phase %q: bad oneway group count", part)
				}
				p.Split, p.OneWay = k, true
			case strings.HasPrefix(tok, "drop"):
				pct, err := strconv.Atoi(tok[len("drop"):])
				if err != nil || pct < 0 || pct > 100 {
					return nil, fmt.Errorf("chaos: phase %q: bad drop percentage", part)
				}
				p.Drop = float64(pct) / 100
			default:
				return nil, fmt.Errorf("chaos: phase %q: unknown token %q", part, tok)
			}
		}
		out = append(out, p)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("chaos: empty schedule")
	}
	return out, nil
}

// String renders the scenario back into the schedule mini-language.
func (s Scenario) String() string {
	parts := make([]string, len(s))
	for i, p := range s {
		name := p.Name
		if name == "" {
			name = "healthy"
		}
		parts[i] = fmt.Sprintf("%s=%s", name, p.Duration)
	}
	return strings.Join(parts, ",")
}

// Total returns the scenario's summed duration.
func (s Scenario) Total() time.Duration {
	var t time.Duration
	for _, p := range s {
		t += p.Duration
	}
	return t
}

// Run applies the phases to net in order, sleeping each phase's duration,
// and leaves the network HEALED (whatever the final phase was). stop
// aborts between sleeps; onPhase, if non-nil, observes each phase as it is
// applied.
func (s Scenario) Run(net *Network, stop <-chan struct{}, onPhase func(Phase)) {
	for _, p := range s {
		net.SetPhase(p)
		if onPhase != nil {
			onPhase(p)
		}
		t := time.NewTimer(p.Duration)
		select {
		case <-t.C:
		case <-stop:
			t.Stop()
			net.Heal()
			return
		}
	}
	net.Heal()
}

// ConvergenceBound computes the time a fleet of n members is allowed to
// re-converge on a single membership view after a heal, from the gossip
// parameters in play. The bound is the sum of the mechanisms a heal
// actually exercises, with a 2× safety factor:
//
//   - detect: in-flight suspicions at the heal instant may still expire
//     into deaths that then need refuting — one suspicion window plus a
//     few probe periods.
//   - resurrect: each side holds the other confirmed dead, so the only
//     crossing traffic is the dead-member anti-entropy sync
//     (gossip.Config.DeadSyncFraction). A member learns of its own death
//     claim — and refutes it with an incarnation bump — after a
//     geometric number of sync rounds with mean 1/frac; the slowest of n
//     members needs about ln(n)/frac rounds.
//   - spread: a refutation reaches everyone by epidemic full-state
//     exchange in about log₂(n) sync rounds.
//
// The chaos headline tests assert measured heal-to-convergence time stays
// under this bound; if gossip regresses (say the dead-sync path breaks),
// they fail rather than hang.
func ConvergenceBound(n int, probeInterval, suspicionTimeout, syncInterval time.Duration, deadSyncFraction float64) time.Duration {
	if n < 2 {
		n = 2
	}
	if probeInterval <= 0 {
		probeInterval = time.Second
	}
	if suspicionTimeout <= 0 {
		suspicionTimeout = 4 * probeInterval
	}
	if syncInterval <= 0 {
		syncInterval = 4 * probeInterval
	}
	if deadSyncFraction <= 0 {
		deadSyncFraction = 0.125
	}
	ln := math.Log(float64(n) + 1)
	log2 := math.Log2(float64(n) + 1)
	detect := suspicionTimeout + 4*probeInterval
	resurrect := time.Duration(float64(syncInterval) * (ln + 2) / deadSyncFraction)
	spread := time.Duration(float64(syncInterval) * (log2 + 2))
	return 2 * (detect + resurrect + spread)
}
