package chaos

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sort"
	"sync"
	"time"

	"pdht/internal/keyspace"
	"pdht/internal/node"
	"pdht/internal/transport"
	"pdht/internal/zipf"
)

// Fleet is N live node.Node instances in one process, wired through a
// chaos Network over the in-memory transport. Every node is the real
// thing — gossip, adaptive tuner, handoff, the full RPC surface — only the
// wire misbehaves on command.
type Fleet struct {
	Net   *Network
	Nodes []*node.Node
	Addrs []string

	// OnProgress, when set, is invoked roughly every two seconds from
	// WaitConverged with a convergence snapshot — how a five-minute
	// thousand-node wait distinguishes "still spreading" from "stuck".
	OnProgress func(elapsed time.Duration, p ProgressSnapshot)

	mem *transport.Memory
	rd  time.Duration
}

// ProgressSnapshot summarises how far a fleet is from a uniform view.
type ProgressSnapshot struct {
	// MinMembers and MaxMembers are the smallest and largest member
	// counts any node currently holds.
	MinMembers, MaxMembers int
	// DistinctViews is the number of distinct view hashes across the
	// fleet — 1 means converged (given full member counts).
	DistinctViews int
}

// Progress computes a convergence snapshot of the fleet.
func (f *Fleet) Progress() ProgressSnapshot {
	p := ProgressSnapshot{MinMembers: int(^uint(0) >> 1)}
	hashes := make(map[uint64]struct{}, 8)
	for _, n := range f.Nodes {
		m := len(n.Members())
		if m < p.MinMembers {
			p.MinMembers = m
		}
		if m > p.MaxMembers {
			p.MaxMembers = m
		}
		hashes[n.ViewHash()] = struct{}{}
	}
	p.DistinctViews = len(hashes)
	return p
}

// FleetConfig parameterizes a fleet boot.
type FleetConfig struct {
	// N is the fleet size (≥ 2).
	N int
	// Chaos is the baseline fault profile of the emulated network.
	Chaos Config
	// Node is the per-node configuration template. Addr and Seed are
	// overwritten per node; zero fields take DefaultFleetNode's values,
	// which compress the paper's one-second round onto 100ms so a
	// multi-minute scenario fits a test budget.
	Node node.Config
}

// DefaultFleetNode is the node template a fleet uses for zero FleetConfig
// fields: the paper's clock compressed 10× (100ms rounds), gossip beating
// every 40ms so membership timescales compress with it, and RPC timeouts
// tight enough that blackholed calls fail fast instead of stalling probes.
func DefaultFleetNode() node.Config {
	return node.Config{
		Repl:             3,
		KeyTtl:           120,
		Capacity:         4096,
		RoundDuration:    100 * time.Millisecond,
		CallTimeout:      250 * time.Millisecond,
		GossipInterval:   40 * time.Millisecond,
		SuspicionTimeout: 200 * time.Millisecond,
		SyncInterval:     160 * time.Millisecond,
		FloodOnMiss:      true,
	}
}

// fillNodeDefaults overlays DefaultFleetNode onto zero fields of c.
func fillNodeDefaults(c node.Config) node.Config {
	d := DefaultFleetNode()
	if c.Repl == 0 {
		c.Repl = d.Repl
	}
	if c.KeyTtl == 0 {
		c.KeyTtl = d.KeyTtl
	}
	if c.Capacity == 0 {
		c.Capacity = d.Capacity
	}
	if c.RoundDuration == 0 {
		c.RoundDuration = d.RoundDuration
	}
	if c.CallTimeout == 0 {
		c.CallTimeout = d.CallTimeout
	}
	if c.GossipInterval == 0 {
		c.GossipInterval = d.GossipInterval
	}
	if c.SuspicionTimeout == 0 {
		c.SuspicionTimeout = d.SuspicionTimeout
	}
	if c.SyncInterval == 0 {
		c.SyncInterval = d.SyncInterval
	}
	c.FloodOnMiss = true
	return c
}

// NewFleet boots cfg.N nodes ("peer-0000"…) over a fresh memory transport
// wrapped by a chaos Network with cfg.Chaos as the baseline profile. Nodes
// boot sequentially, each joining the first; the caller should
// WaitConverged before trusting placement. On error the partial fleet is
// torn down.
func NewFleet(cfg FleetConfig) (*Fleet, error) {
	if cfg.N < 2 {
		return nil, fmt.Errorf("chaos: fleet needs at least 2 nodes, got %d", cfg.N)
	}
	tmpl := fillNodeDefaults(cfg.Node)
	f := &Fleet{
		mem:   transport.NewMemory(),
		Addrs: make([]string, cfg.N),
		rd:    tmpl.RoundDuration,
	}
	f.Net = New(f.mem, cfg.Chaos)
	for i := range f.Addrs {
		f.Addrs[i] = fmt.Sprintf("peer-%04d", i)
	}
	f.Nodes = make([]*node.Node, cfg.N)
	boot := func(i int, seed string) error {
		c := tmpl
		c.Addr = f.Addrs[i]
		c.Seed = seed
		n, err := node.New(f.Net.Node(c.Addr), c)
		if err != nil {
			return fmt.Errorf("chaos: boot %s: %w", c.Addr, err)
		}
		f.Nodes[i] = n
		return nil
	}
	if err := boot(0, ""); err != nil {
		return nil, err
	}
	// Later nodes boot in parallel waves, each joining a random
	// already-booted node: a serial boot of a thousand nodes all joining
	// node 0 both takes minutes and melts the seed under full-state
	// exchanges, and no real fleet rolls out that way either.
	rng := rand.New(rand.NewPCG(cfg.Chaos.Seed, 0xb007))
	const wave = 64
	for lo := 1; lo < cfg.N; lo += wave {
		hi := lo + wave
		if hi > cfg.N {
			hi = cfg.N
		}
		errs := make(chan error, hi-lo)
		for i := lo; i < hi; i++ {
			seed := f.Addrs[rng.IntN(lo)]
			go func(i int, seed string) { errs <- boot(i, seed) }(i, seed)
		}
		var firstErr error
		for i := lo; i < hi; i++ {
			if err := <-errs; err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if firstErr != nil {
			f.Close()
			return nil, firstErr
		}
	}
	return f, nil
}

// Close shuts every node down, in parallel (a serial close of a thousand
// nodes would dominate test time).
func (f *Fleet) Close() {
	var wg sync.WaitGroup
	for _, n := range f.Nodes {
		if n == nil { // partial boot
			continue
		}
		wg.Add(1)
		go func(n *node.Node) {
			defer wg.Done()
			_ = n.Close()
		}(n)
	}
	wg.Wait()
}

// Converged reports whether every node has installed the identical full
// membership view: all view hashes equal (equal hash ⇒ byte-identical
// member lists) and node 0 seeing the whole fleet.
func (f *Fleet) Converged() bool {
	if len(f.Nodes[0].Members()) != len(f.Nodes) {
		return false
	}
	want := f.Nodes[0].ViewHash()
	for _, n := range f.Nodes[1:] {
		if n.ViewHash() != want {
			return false
		}
	}
	return true
}

// WaitConverged polls Converged until it holds or timeout elapses,
// returning the elapsed time and whether convergence was reached.
func (f *Fleet) WaitConverged(timeout time.Duration) (time.Duration, bool) {
	start := time.Now()
	poll := f.rd / 4
	if poll < 5*time.Millisecond {
		poll = 5 * time.Millisecond
	}
	lastReport := start
	for {
		if f.Converged() {
			return time.Since(start), true
		}
		if time.Since(start) > timeout {
			return time.Since(start), false
		}
		if f.OnProgress != nil && time.Since(lastReport) >= 2*time.Second {
			lastReport = time.Now()
			f.OnProgress(time.Since(start), f.Progress())
		}
		time.Sleep(poll)
	}
}

// PlacementDisagreements samples keys and counts those whose replica set
// differs between any node and node 0 — after convergence this must be
// zero, or two nodes would route the same key to different owners
// (double ownership).
func (f *Fleet) PlacementDisagreements(samples int, seed uint64) int {
	rng := rand.New(rand.NewPCG(seed, 0x5bf0_3635))
	bad := 0
	for i := 0; i < samples; i++ {
		k := rng.Uint64()
		want := fmt.Sprint(f.Nodes[0].ReplicaSet(k))
		for _, n := range f.Nodes[1:] {
			if fmt.Sprint(n.ReplicaSet(k)) != want {
				bad++
				break
			}
		}
	}
	return bad
}

// ---- Entry accounting ----

// ledgerEntry is one seeded index entry with its absolute wall-clock
// expiry. Ledger keys are never queried (a query hit refreshes the entry,
// moving its expiry), so the deadline recorded at seed time stays the
// truth for the entry's whole life regardless of handoffs.
type ledgerEntry struct {
	key      uint64
	value    uint64
	deadline time.Time
}

// Ledger is the ground truth for entry accounting: which keys were seeded,
// and exactly when each must disappear. Check compares it against the
// fleet's live indexes to detect loss (gone too early) and resurrection
// (alive too late) across partition-driven handoffs.
type Ledger struct {
	fleet   *Fleet
	entries []ledgerEntry
}

// SeedEntries installs count entries with the given TTL (in rounds)
// directly at their replica sets, recording each entry's absolute expiry.
// The pushes use the raw inner transport — seeding is test setup, not part
// of the chaos — and go out with a zero view hash, the handoff-path form
// that is valid across view transitions. The fleet should be converged
// and healthy; an unreachable replica fails the seed.
func (f *Fleet) SeedEntries(seed uint64, count, ttl int) (*Ledger, error) {
	l := &Ledger{fleet: f}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i := 0; i < count; i++ {
		k := uint64(keyspace.HashString(fmt.Sprintf("chaos-entry-%d-%d", seed, i)))
		e := ledgerEntry{key: k, value: k ^ 0xdecade, deadline: time.Now().Add(time.Duration(ttl) * f.rd)}
		for _, addr := range f.Nodes[0].ReplicaSet(k) {
			cli, err := f.mem.Dial(addr)
			if err != nil {
				return nil, fmt.Errorf("chaos: seed dial %s: %w", addr, err)
			}
			resp, err := cli.Call(ctx, transport.Request{Op: transport.OpInsert, Key: k, Value: e.value, TTL: ttl})
			if err != nil {
				return nil, fmt.Errorf("chaos: seed push %s: %w", addr, err)
			}
			if !resp.OK {
				return nil, fmt.Errorf("chaos: seed push %s refused: %s", addr, resp.Err)
			}
		}
		l.entries = append(l.entries, e)
	}
	return l, nil
}

// Accounting is a Ledger.Check result: every seeded entry classified
// against its absolute deadline.
type Accounting struct {
	// Checked is the ledger size; Indeterminate the entries whose
	// deadline is within the round-quantization slack of now, where
	// neither presence nor absence is evidence of anything.
	Checked       int `json:"checked"`
	Indeterminate int `json:"indeterminate"`
	// Held counts live entries found on some node before their deadline;
	// Lost those absent from EVERY node while still supposed to be alive
	// — an entry a partition or handoff dropped on the floor.
	Held int `json:"held"`
	Lost int `json:"lost"`
	// ExpiredGone counts entries past their deadline and properly absent
	// everywhere; Resurrected those still served past it — a stale copy
	// some handoff re-admitted with more lifetime than the original had
	// left.
	ExpiredGone int `json:"expiredGone"`
	Resurrected int `json:"resurrected"`
}

// Check scans the whole fleet for every ledger entry and classifies it.
// The slack around each deadline covers round quantization: nodes count
// rounds from their own epochs, so expiry lands within ±1 round of the
// wall-clock deadline, plus one round of sweep latency.
func (l *Ledger) Check() Accounting {
	slack := 3 * l.fleet.rd
	var acc Accounting
	for _, e := range l.entries {
		acc.Checked++
		held := false
		for _, n := range l.fleet.Nodes {
			if n.IndexHas(e.key) {
				held = true
				break
			}
		}
		now := time.Now()
		switch {
		case now.Before(e.deadline.Add(-slack)):
			if held {
				acc.Held++
			} else {
				acc.Lost++
			}
		case now.After(e.deadline.Add(slack)):
			if held {
				acc.Resurrected++
			} else {
				acc.ExpiredGone++
			}
		default:
			acc.Indeterminate++
		}
	}
	return acc
}

// ---- Scenario runner ----

// RunConfig parameterizes one full chaos run: boot, seed, fault script,
// heal, measure.
type RunConfig struct {
	// N is the fleet size; Node the per-node template (see FleetConfig).
	N    int
	Node node.Config
	// Chaos is the baseline fault profile; Chaos.Seed drives everything
	// derived (per-link streams, ledger keys, workload sampling).
	Chaos Config
	// Scenario is the fault script. A trailing benign phase ("heal=30s")
	// is treated as the convergence allowance: the runner strips it,
	// heals, and waits up to its duration for the fleet to re-converge —
	// measuring heal-to-convergence exactly instead of sleeping through
	// it.
	Scenario Scenario
	// Entries is the accounting ledger size (split between entries that
	// outlive the run, checked for loss, and entries that expire
	// mid-scenario, checked for resurrection). Zero skips accounting.
	Entries int
	// Workload, when positive, drives that many concurrent query workers
	// with a Zipf stream over WorkloadKeys published keys for the whole
	// scenario — the traffic the adaptive tuner fits. Requires
	// Node.Adaptive for the tuner envelope to be reported.
	Workload     int
	WorkloadKeys int
	// BootTimeout bounds initial convergence (default 60s + 50ms·N).
	BootTimeout time.Duration
	// PlacementSamples is the key sample size of the double-ownership
	// check (default 64).
	PlacementSamples int
	// OnPhase, if non-nil, observes each applied phase (progress logs).
	OnPhase func(Phase)
	// OnProgress, if non-nil, observes convergence snapshots while the
	// runner waits (boot and heal) — the long waits' heartbeat.
	OnProgress func(elapsed time.Duration, p ProgressSnapshot)
}

// Report is a chaos run's outcome, JSON-ready for cmd/pdht-chaos. All
// durations are nanoseconds (time.Duration's JSON form).
type Report struct {
	N        int    `json:"n"`
	Seed     uint64 `json:"seed"`
	Schedule string `json:"schedule"`

	// BootConverge is time-to-first-convergence after boot. HealConverge
	// is from the final heal to full re-convergence, and must stay under
	// Bound (ConvergenceBound for the gossip parameters in play);
	// Converged reports that re-convergence happened at all.
	BootConverge time.Duration `json:"bootConvergeNs"`
	HealConverge time.Duration `json:"healConvergeNs"`
	Bound        time.Duration `json:"boundNs"`
	Converged    bool          `json:"converged"`
	WithinBound  bool          `json:"withinBound"`

	// Accounting is the ledger verdict; PlacementDisagreements the
	// double-ownership sample count (want 0 after convergence).
	Accounting             Accounting `json:"accounting"`
	PlacementSamples       int        `json:"placementSamples"`
	PlacementDisagreements int        `json:"placementDisagreements"`

	// Fleet-summed repair-path counters.
	HandoffMsgs uint64 `json:"handoffMsgs"`
	HandoffKeys uint64 `json:"handoffKeys"`
	StaleViews  uint64 `json:"staleViews"`
	Queries     uint64 `json:"queries"`

	// Tuner envelope: the median actuated keyTtl across adaptive nodes,
	// the median model solution (Report.Model.KeyTtl, eq. 16 solved for
	// the fitted scenario), and the median relative deviation between
	// the two on each node — the acceptance criterion caps it at 0.25.
	TunerNodes     int     `json:"tunerNodes"`
	TunerTtl       float64 `json:"tunerTtl"`
	ModelTtl       float64 `json:"modelTtl"`
	TunerDeviation float64 `json:"tunerDeviation"`
}

// Run executes one full chaos scenario: boot the fleet, wait for
// convergence, seed the accounting ledger, start the query workload, play
// the fault script, heal, measure re-convergence against the computed
// bound, then audit entries, placement and the tuner envelope.
func Run(cfg RunConfig) (*Report, error) {
	if cfg.Chaos.Seed == 0 {
		cfg.Chaos.Seed = 1
	}
	if cfg.PlacementSamples == 0 {
		cfg.PlacementSamples = 64
	}
	if cfg.BootTimeout == 0 {
		cfg.BootTimeout = 60*time.Second + time.Duration(cfg.N)*50*time.Millisecond
	}
	scenario, healWindow := cfg.Scenario, time.Duration(0)
	if n := len(scenario); n > 0 && scenario[n-1].Split == 0 && scenario[n-1].Drop == 0 {
		healWindow = scenario[n-1].Duration
		scenario = scenario[:n-1]
	}

	f, err := NewFleet(FleetConfig{N: cfg.N, Chaos: cfg.Chaos, Node: cfg.Node})
	if err != nil {
		return nil, err
	}
	defer f.Close()
	f.OnProgress = cfg.OnProgress
	tmpl := fillNodeDefaults(cfg.Node)

	rep := &Report{N: cfg.N, Seed: cfg.Chaos.Seed, Schedule: cfg.Scenario.String()}
	rep.Bound = ConvergenceBound(cfg.N, tmpl.GossipInterval, tmpl.SuspicionTimeout, tmpl.SyncInterval, tmpl.DeadSyncFraction)
	if healWindow == 0 {
		healWindow = rep.Bound
	}

	boot, ok := f.WaitConverged(cfg.BootTimeout)
	rep.BootConverge = boot
	if !ok {
		return rep, fmt.Errorf("chaos: fleet of %d failed to converge within %s after boot", cfg.N, cfg.BootTimeout)
	}

	// Ledger: half the entries outlive the whole run (loss detection),
	// half expire mid-scenario (resurrection detection).
	var ledger *Ledger
	if cfg.Entries > 0 {
		longTTL := int((scenario.Total()+healWindow)/f.rd) + 120
		shortTTL := int(scenario.Total() / (2 * f.rd))
		if shortTTL < 2 {
			shortTTL = 2
		}
		long, err := f.SeedEntries(cfg.Chaos.Seed, (cfg.Entries+1)/2, longTTL)
		if err != nil {
			return rep, err
		}
		short, err := f.SeedEntries(cfg.Chaos.Seed+1, cfg.Entries/2, shortTTL)
		if err != nil {
			return rep, err
		}
		ledger = &Ledger{fleet: f, entries: append(long.entries, short.entries...)}
	}

	stopWorkload := startWorkload(f, cfg)
	scenario.Run(f.Net, nil, cfg.OnPhase)

	healStart := time.Now()
	heal, ok := f.WaitConverged(healWindow)
	rep.HealConverge, rep.Converged = heal, ok
	rep.WithinBound = ok && time.Since(healStart) <= rep.Bound
	stopWorkload()

	if ledger != nil {
		rep.Accounting = ledger.Check()
	}
	rep.PlacementSamples = cfg.PlacementSamples
	rep.PlacementDisagreements = f.PlacementDisagreements(cfg.PlacementSamples, cfg.Chaos.Seed)

	var devs []float64
	var ttls, models []float64
	for _, n := range f.Nodes {
		r := n.Report()
		rep.HandoffMsgs += r.HandoffMsgs
		rep.HandoffKeys += r.HandoffKeys
		rep.StaleViews += r.StaleViews
		rep.Queries += r.Queries
		if r.Adaptive != nil && r.Adaptive.Retunes > 0 && r.Model != nil && r.Model.KeyTtl > 0 {
			a, m := float64(r.Adaptive.KeyTtl), r.Model.KeyTtl
			devs = append(devs, abs(a-m)/m)
			ttls = append(ttls, a)
			models = append(models, m)
		}
	}
	rep.TunerNodes = len(devs)
	rep.TunerTtl, rep.ModelTtl, rep.TunerDeviation = median(ttls), median(models), median(devs)
	return rep, nil
}

// startWorkload publishes the workload key population and launches the
// query workers; the returned func stops them and waits for drain.
func startWorkload(f *Fleet, cfg RunConfig) func() {
	if cfg.Workload <= 0 {
		return func() {}
	}
	keys := cfg.WorkloadKeys
	if keys <= 0 {
		keys = 512
	}
	wlKey := func(i int) uint64 {
		return uint64(keyspace.HashString(fmt.Sprintf("chaos-wl-%d-%d", cfg.Chaos.Seed, i)))
	}
	ctx, cancel := context.WithCancel(context.Background())
	pubCtx, pubCancel := context.WithTimeout(ctx, 60*time.Second)
	for i := 0; i < keys; i++ {
		// Publish errors are tolerable: a missing key just makes the
		// first query for it resolve by broadcast, which is also load.
		_ = f.Nodes[i%len(f.Nodes)].Publish(pubCtx, wlKey(i), uint64(i))
	}
	pubCancel()

	dist, err := zipf.New(0.9, keys)
	if err != nil {
		cancel()
		return func() {}
	}
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workload; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(cfg.Chaos.Seed, uint64(w)*2+1))
			s := zipf.NewSampler(dist, rng)
			for ctx.Err() == nil {
				n := f.Nodes[rng.IntN(len(f.Nodes))]
				qctx, qcancel := context.WithTimeout(ctx, 2*time.Second)
				_, _ = n.Query(qctx, wlKey(s.Sample()))
				qcancel()
			}
		}(w)
	}
	return func() {
		cancel()
		wg.Wait()
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sort.Float64s(xs)
	return xs[len(xs)/2]
}
