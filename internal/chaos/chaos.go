// Package chaos is the fault-injection and scale-emulation layer: a
// transport.Transport wrapper that subjects every call to deterministic,
// seed-driven network misbehavior — per-link drop probability, latency
// (base + jitter), duplication, reordering, and named partition schedules
// (split, heal, asymmetric one-way loss) — plus a Scenario type that
// scripts timed fault phases and a Fleet harness that drives hundreds to
// thousands of live node.Node instances in-process over the wrapped memory
// transport.
//
// The wrapper is transport-agnostic: the in-process fleet wraps
// transport.Memory, and pdht-node's -chaos-* flags wrap TCP with the same
// schedule — partition groups are pure hashes of addresses (GroupOf), so
// fifty containers apply an identical split with no coordination.
//
// Fault semantics, per call:
//
//   - A cut or dropped message BLACKHOLES: the call blocks until its
//     context expires (exactly what a lost packet looks like to the
//     caller), or fails immediately with transport.ErrUnreachable when the
//     context has no deadline. Drop is applied independently to the
//     request and the response leg, so a link with drop p loses calls at
//     rate 1-(1-p)².
//   - Latency sleeps base+jitter·u before delivery; reorder adds an extra
//     delay to a fraction of messages, which genuinely reorders them
//     against concurrently in-flight calls on the same link.
//   - Duplicate delivers the request twice (the second response is
//     discarded) — inserts and refreshes must be idempotent under it.
//
// Determinism: every (src, dst) link draws from its own PCG stream seeded
// from (Seed, hash(src), hash(dst)), so a given seed produces the same
// per-link fault sequence run to run; what stays scheduler-dependent is
// only how concurrent calls interleave. Self-calls (src == dst) are
// exempt from all faults — loopback does not traverse the network.
package chaos

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sync"
	"time"

	"pdht/internal/keyspace"
	"pdht/internal/transport"
)

// Config is the baseline fault profile of a Network — the knobs applied to
// every inter-node message before any Phase overlay.
type Config struct {
	// Seed drives every per-link random stream. Zero means 1.
	Seed uint64
	// Drop is the per-message drop probability per direction.
	Drop float64
	// LatencyBase/LatencyJitter delay each message by base + jitter·u,
	// u uniform in [0,1).
	LatencyBase   time.Duration
	LatencyJitter time.Duration
	// Duplicate is the probability a request is delivered twice.
	Duplicate float64
	// Reorder is the probability a message waits ReorderDelay extra —
	// enough to slip behind later messages on the same link.
	Reorder      float64
	ReorderDelay time.Duration
}

// Network wraps an inner transport with the fault layer and the partition
// state. One Network models one emulated network; per-node transports are
// obtained from Node(self) so each call knows its source.
type Network struct {
	inner transport.Transport
	seed  uint64

	mu       sync.RWMutex
	base     Config
	phase    Phase
	groupCnt int  // 0 = no partition
	oneWay   bool // with groupCnt: only traffic INTO group 0 is cut
}

// New wraps inner with a fault layer configured by cfg.
func New(inner transport.Transport, cfg Config) *Network {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.ReorderDelay == 0 {
		cfg.ReorderDelay = 4*cfg.LatencyJitter + 2*time.Millisecond
	}
	return &Network{inner: inner, seed: cfg.Seed, base: cfg}
}

// GroupOf returns addr's partition group in a k-way split: a pure hash of
// the address, so every process — in-memory fleet node or container —
// computes the same assignment with no coordination.
func GroupOf(addr string, k int) int {
	if k < 2 {
		return 0
	}
	return int(uint64(keyspace.HashString("chaos-group:"+addr)) % uint64(k))
}

// SetPhase installs a fault phase: the partition mode and the phase's
// extra drop, layered over the baseline Config. A zero Phase is "healthy"
// (heal + baseline faults only).
func (n *Network) SetPhase(p Phase) {
	n.mu.Lock()
	n.phase = p
	n.groupCnt = p.Split
	n.oneWay = p.OneWay
	n.mu.Unlock()
}

// Split cuts the network into k hash-assigned groups (all cross-group
// traffic blackholes, both directions).
func (n *Network) Split(k int) { n.SetPhase(Phase{Split: k}) }

// OneWay cuts only traffic INTO group 0 of a k-way hash split: group 0
// can call out and hear replies, but no one can call in — the asymmetric
// loss that exercises gossip's refutation path.
func (n *Network) OneWay(k int) { n.SetPhase(Phase{Split: k, OneWay: true}) }

// Heal clears the partition and any phase faults; baseline faults remain.
func (n *Network) Heal() { n.SetPhase(Phase{}) }

// linkRule is the snapshot of fault parameters governing one call.
type linkRule struct {
	cut       bool
	drop      float64
	base      time.Duration
	jitter    time.Duration
	duplicate float64
	reorder   float64
	rdelay    time.Duration
}

// ruleFor computes the current rule for the src→dst direction.
func (n *Network) ruleFor(src, dst string) linkRule {
	n.mu.RLock()
	defer n.mu.RUnlock()
	r := linkRule{
		drop:      combineP(n.base.Drop, n.phase.Drop),
		base:      n.base.LatencyBase,
		jitter:    n.base.LatencyJitter,
		duplicate: n.base.Duplicate,
		reorder:   n.base.Reorder,
		rdelay:    n.base.ReorderDelay,
	}
	if n.groupCnt >= 2 {
		gs, gd := GroupOf(src, n.groupCnt), GroupOf(dst, n.groupCnt)
		if gs != gd && (!n.oneWay || gd == 0) {
			r.cut = true
		}
	}
	return r
}

// combineP composes two independent drop probabilities.
func combineP(a, b float64) float64 { return 1 - (1-a)*(1-b) }

// Node returns the transport facade for one node: Serve passes through to
// the inner transport; Dial wraps each client with the fault layer, with
// self recorded as the call source.
func (n *Network) Node(self string) transport.Transport {
	return &nodeFacade{net: n, self: self}
}

type nodeFacade struct {
	net  *Network
	self string
}

func (f *nodeFacade) Serve(addr string, h transport.Handler) (transport.Server, error) {
	return f.net.inner.Serve(addr, h)
}

func (f *nodeFacade) Dial(addr string) (transport.Client, error) {
	inner, err := f.net.inner.Dial(addr)
	if err != nil {
		return nil, err
	}
	if addr == f.self {
		return inner, nil // loopback is exempt
	}
	h1, h2 := uint64(keyspace.HashString(f.self)), uint64(keyspace.HashString(addr))
	return &linkClient{
		inner: inner, net: f.net, src: f.self, dst: addr,
		rng: rand.New(rand.NewPCG(f.net.seed^h1, h2|1)),
	}, nil
}

// linkClient applies the fault layer to one directed link. The rng is
// owned by the client (one per dialed connection — the node's pool keeps
// one per destination), guarded by its own mutex so concurrent calls draw
// from a single deterministic stream.
type linkClient struct {
	inner transport.Client
	net   *Network
	src   string
	dst   string

	mu  sync.Mutex
	rng *rand.Rand
}

// draws is one call's worth of random decisions, taken in a fixed order so
// the stream stays aligned regardless of which faults are active.
type draws struct {
	dropReq, dropResp float64
	latency           float64
	duplicate         float64
	reorder           float64
}

func (c *linkClient) draw() draws {
	c.mu.Lock()
	defer c.mu.Unlock()
	return draws{
		dropReq:   c.rng.Float64(),
		dropResp:  c.rng.Float64(),
		latency:   c.rng.Float64(),
		duplicate: c.rng.Float64(),
		reorder:   c.rng.Float64(),
	}
}

// blackhole models a lost message: the caller waits out its deadline.
func blackhole(ctx context.Context, src, dst string) (transport.Response, error) {
	if _, ok := ctx.Deadline(); !ok {
		return transport.Response{}, fmt.Errorf("%w: %s->%s (chaos drop)", transport.ErrUnreachable, src, dst)
	}
	<-ctx.Done()
	return transport.Response{}, ctx.Err()
}

func (c *linkClient) Call(ctx context.Context, req transport.Request) (transport.Response, error) {
	rule := c.net.ruleFor(c.src, c.dst)
	d := c.draw()

	if rule.cut || d.dropReq < rule.drop {
		return blackhole(ctx, c.src, c.dst)
	}
	delay := rule.base + time.Duration(d.latency*float64(rule.jitter))
	if d.reorder < rule.reorder {
		delay += rule.rdelay
	}
	if delay > 0 {
		t := time.NewTimer(delay)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return transport.Response{}, ctx.Err()
		}
	}
	if d.duplicate < rule.duplicate {
		// Second delivery of the same request; its response is discarded.
		// The receiver cannot tell it from a client retry.
		go func() { _, _ = c.inner.Call(ctx, req) }()
	}
	resp, err := c.inner.Call(ctx, req)
	if err != nil {
		return resp, err
	}
	if d.dropResp < rule.drop {
		// The request was served but the response vanished: the caller
		// times out, the side effect stands — the at-least-once ambiguity
		// real networks force on every RPC layer.
		return blackhole(ctx, c.src, c.dst)
	}
	return resp, nil
}

func (c *linkClient) Close() error { return c.inner.Close() }
