//go:build race

package chaos

// Downscaled counterparts of scale_norace.go: same scenarios and
// assertions, small enough that the race detector's per-node overhead
// keeps the suite inside the CI budget.
const (
	smokeFleetN     = 32
	invariantFleetN = 12
	invariantSeeds  = 3
)
