package chaos

import (
	"context"
	"fmt"
	"os"
	"testing"
	"time"

	"pdht/internal/adapt"
	"pdht/internal/node"
)

// smallTuner keeps the adaptive control plane's fixed memory footprint
// per node small enough to run hundreds of instances in one process.
func smallTuner() adapt.Config {
	return adapt.Config{SketchWidth: 1 << 10, TopK: 64, DistinctBits: 1 << 12}
}

// TestFleetSmoke is the in-matrix scale test: a fleet (128 nodes, 32
// under -race) boots, converges, survives a lossy 3-way partition, and
// re-converges within the computed bound with every seeded entry
// accounted for.
func TestFleetSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet smoke test skipped in -short mode")
	}
	rep, err := Run(RunConfig{
		N:     smokeFleetN,
		Chaos: Config{Seed: 20040314},
		Scenario: Scenario{
			{Name: "healthy", Duration: 500 * time.Millisecond},
			{Name: "drop20+split3", Duration: 3 * time.Second, Drop: 0.20, Split: 3},
			{Name: "heal", Duration: 0}, // 0 → runner uses the computed bound
		},
		Entries: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("smoke n=%d: boot %s, heal %s (bound %s), accounting %+v",
		rep.N, rep.BootConverge.Round(time.Millisecond), rep.HealConverge.Round(time.Millisecond), rep.Bound.Round(time.Millisecond), rep.Accounting)
	if !rep.Converged {
		t.Fatalf("fleet did not re-converge after heal within %s", rep.Bound)
	}
	if !rep.WithinBound {
		t.Errorf("heal convergence %s exceeded bound %s", rep.HealConverge, rep.Bound)
	}
	if rep.Accounting.Lost > 0 || rep.Accounting.Resurrected > 0 {
		t.Errorf("entry accounting: %d lost, %d resurrected (want 0/0): %+v",
			rep.Accounting.Lost, rep.Accounting.Resurrected, rep.Accounting)
	}
	if rep.Accounting.Held == 0 {
		t.Error("accounting never saw a live entry — the check is vacuous")
	}
	if rep.PlacementDisagreements != 0 {
		t.Errorf("%d/%d sampled keys double-owned after convergence", rep.PlacementDisagreements, rep.PlacementSamples)
	}
	if rep.HandoffMsgs == 0 {
		t.Error("a 3-way split should have exercised the handoff path")
	}
}

// TestChaosInvariants is the property-style sweep: across random seeds
// and alternating fault shapes, no index entry may be served past its
// absolute expiry, none may be lost while live, and no key may be
// double-owned once the fleet re-converges.
func TestChaosInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos invariant sweep skipped in -short mode")
	}
	shapes := []Phase{
		{Name: "split2+drop10", Duration: 1500 * time.Millisecond, Split: 2, Drop: 0.10},
		{Name: "oneway2", Duration: 1500 * time.Millisecond, Split: 2, OneWay: true},
		{Name: "split3+drop20", Duration: 1500 * time.Millisecond, Split: 3, Drop: 0.20},
		{Name: "drop30", Duration: 1500 * time.Millisecond, Drop: 0.30},
	}
	for seed := uint64(1); seed <= uint64(invariantSeeds); seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			fault := shapes[int(seed)%len(shapes)]
			rep, err := Run(RunConfig{
				N:     invariantFleetN,
				Chaos: Config{Seed: seed, Drop: 0.02, LatencyBase: time.Millisecond, LatencyJitter: 2 * time.Millisecond},
				Scenario: Scenario{
					{Name: "healthy", Duration: 400 * time.Millisecond},
					fault,
					{Name: "heal", Duration: 0},
				},
				Entries: 40,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Converged {
				t.Fatalf("seed %d (%s): no re-convergence within %s", seed, fault.Name, rep.Bound)
			}
			if rep.Accounting.Lost > 0 {
				t.Errorf("seed %d (%s): %d live entries lost", seed, fault.Name, rep.Accounting.Lost)
			}
			if rep.Accounting.Resurrected > 0 {
				t.Errorf("seed %d (%s): %d entries served past absolute expiry", seed, fault.Name, rep.Accounting.Resurrected)
			}
			if rep.PlacementDisagreements != 0 {
				t.Errorf("seed %d (%s): %d keys double-owned post-convergence", seed, fault.Name, rep.PlacementDisagreements)
			}
		})
	}
}

// TestExpiredEntryNotServed drives the serve surface itself: after a
// seeded entry's absolute deadline, no node may answer a query for it from
// the index — the end-to-end form of the resurrection invariant.
func TestExpiredEntryNotServed(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet test skipped in -short mode")
	}
	f, err := NewFleet(FleetConfig{N: 8, Chaos: Config{Seed: 11}})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, ok := f.WaitConverged(30 * time.Second); !ok {
		t.Fatal("8-node fleet failed to converge")
	}
	const ttl = 4 // rounds; 400ms at the fleet's 100ms round
	ledger, err := f.SeedEntries(11, 8, ttl)
	if err != nil {
		t.Fatal(err)
	}
	// Wait past every deadline plus the accounting slack.
	time.Sleep(time.Duration(ttl)*f.rd + 4*f.rd)
	acc := ledger.Check()
	if acc.Resurrected > 0 {
		t.Fatalf("%d entries still indexed past expiry", acc.Resurrected)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for _, e := range ledger.entries {
		for _, n := range f.Nodes[:3] {
			res, err := n.Query(ctx, e.key)
			if err != nil {
				t.Fatal(err)
			}
			if res.FromIndex {
				t.Fatalf("node %s served key %d from the index past its expiry", n.Addr(), e.key)
			}
		}
	}
}

// TestTunerStabilityEnvelope runs an adaptive fleet under a lossy phase
// with a live Zipf workload and checks the actuated keyTtl stays within
// the acceptance envelope — 25% of the model solution fitted to the same
// observed traffic (Report.Model.KeyTtl).
func TestTunerStabilityEnvelope(t *testing.T) {
	if testing.Short() {
		t.Skip("tuner envelope test skipped in -short mode")
	}
	nodeCfg := node.Config{
		Adaptive:       true,
		Tuner:          smallTuner(),
		RetuneInterval: 2 * time.Second,
	}
	rep, err := Run(RunConfig{
		N:     16,
		Node:  nodeCfg,
		Chaos: Config{Seed: 77},
		Scenario: Scenario{
			{Name: "healthy", Duration: 4 * time.Second},
			{Name: "drop15", Duration: 3 * time.Second, Drop: 0.15},
			{Name: "heal", Duration: 5 * time.Second},
		},
		Workload:     6,
		WorkloadKeys: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("tuner: %d nodes fitted, actuated ttl %.0f vs model %.0f, median deviation %.3f (queries %d)",
		rep.TunerNodes, rep.TunerTtl, rep.ModelTtl, rep.TunerDeviation, rep.Queries)
	if rep.TunerNodes == 0 {
		t.Fatal("no node produced both a retune and a model fit — the envelope check is vacuous")
	}
	if rep.TunerDeviation > 0.25 {
		t.Errorf("median tuner deviation %.3f exceeds the 25%% envelope (ttl %.0f vs model %.0f)",
			rep.TunerDeviation, rep.TunerTtl, rep.ModelTtl)
	}
}

// TestChaosHeadline1000 is the nightly headline: a thousand live nodes
// under 20% loss across a 3-way partition, healed, must re-converge
// within the computed bound with zero entries lost or resurrected and the
// tuner inside its envelope. Gated behind PDHT_CHAOS=1 — it needs minutes
// and many cores. Run with: PDHT_CHAOS=1 go test ./internal/chaos/ -run
// TestChaosHeadline1000 -v -timeout 10m
func TestChaosHeadline1000(t *testing.T) {
	if os.Getenv("PDHT_CHAOS") == "" {
		t.Skip("set PDHT_CHAOS=1 to run the 1000-node headline scenario")
	}
	rep, err := Run(RunConfig{
		N: 1000,
		Node: node.Config{
			// A thousand in-process nodes cannot afford the 40ms protocol
			// period the small fleets use — full-state anti-entropy alone
			// would be ~n²/sync entry merges per second, on however few
			// cores the runner has. The membership timescales stretch ~50×
			// and the dead-sync channel widens to compensate;
			// ConvergenceBound is computed from these same parameters, so
			// the assertion adapts with them. Suspicion must cover many
			// probe rounds: on an oversubscribed runner a probe ack can
			// starve for seconds, and a tight suspicion window turns that
			// scheduling noise into mass eviction/resurrection churn that
			// never converges.
			GossipInterval:   2 * time.Second,
			SuspicionTimeout: 15 * time.Second,
			SyncInterval:     4 * time.Second,
			DeadSyncFraction: 0.5,
			CallTimeout:      time.Second,
			Adaptive:         true,
			Tuner:            smallTuner(),
			RetuneInterval:   10 * time.Second,
		},
		Chaos: Config{Seed: 1000},
		Scenario: Scenario{
			{Name: "healthy", Duration: 2 * time.Second},
			// The split must outlast SuspicionTimeout by a detection
			// margin, or no node is ever evicted and the partition is
			// membership-invisible (no handoff, nothing to heal).
			{Name: "drop20+split3", Duration: 30 * time.Second, Drop: 0.20, Split: 3},
			{Name: "heal", Duration: 0},
		},
		Entries:      200,
		Workload:     4,
		WorkloadKeys: 512,
		BootTimeout:  5 * time.Minute,
		OnPhase:      func(p Phase) { t.Logf("phase %s for %s", p.Name, p.Duration) },
		OnProgress: func(elapsed time.Duration, p ProgressSnapshot) {
			t.Logf("  t=%s members %d..%d, %d distinct views",
				elapsed.Round(time.Second), p.MinMembers, p.MaxMembers, p.DistinctViews)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("headline: boot %s, heal %s (bound %s), accounting %+v, handoff %d msgs / %d keys, tuner dev %.3f over %d nodes",
		rep.BootConverge.Round(time.Millisecond), rep.HealConverge.Round(time.Millisecond),
		rep.Bound.Round(time.Millisecond), rep.Accounting, rep.HandoffMsgs, rep.HandoffKeys,
		rep.TunerDeviation, rep.TunerNodes)
	if !rep.Converged || !rep.WithinBound {
		t.Errorf("1000-node heal convergence %s vs bound %s (converged=%v)", rep.HealConverge, rep.Bound, rep.Converged)
	}
	if rep.Accounting.Lost > 0 || rep.Accounting.Resurrected > 0 {
		t.Errorf("accounting: %+v", rep.Accounting)
	}
	if rep.PlacementDisagreements != 0 {
		t.Errorf("%d keys double-owned", rep.PlacementDisagreements)
	}
	if rep.HandoffMsgs == 0 {
		t.Error("a split longer than the suspicion timeout must evict members and exercise handoff")
	}
	if rep.TunerNodes > 0 && rep.TunerDeviation > 0.25 {
		t.Errorf("tuner deviation %.3f exceeds envelope", rep.TunerDeviation)
	}
}
