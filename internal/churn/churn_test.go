package churn

import (
	"math"
	"math/rand/v2"
	"testing"

	"pdht/internal/netsim"
)

func TestModelValidate(t *testing.T) {
	cases := []struct {
		m  Model
		ok bool
	}{
		{Model{MeanOnline: 100, MeanOffline: 50}, true},
		{Model{MeanOnline: 100, MeanOffline: 0}, true},
		{Model{MeanOnline: 0, MeanOffline: 50}, false},
		{Model{MeanOnline: -1, MeanOffline: 50}, false},
		{Model{MeanOnline: math.NaN(), MeanOffline: 50}, false},
		{Model{MeanOnline: 100, MeanOffline: -2}, false},
		{Model{MeanOnline: math.Inf(1), MeanOffline: 1}, false},
	}
	for _, c := range cases {
		if err := c.m.Validate(); (err == nil) != c.ok {
			t.Errorf("Validate(%+v): err=%v, want ok=%v", c.m, err, c.ok)
		}
	}
}

func TestOnlineFraction(t *testing.T) {
	m := Model{MeanOnline: 300, MeanOffline: 100}
	if got := m.OnlineFraction(); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("OnlineFraction = %v, want 0.75", got)
	}
}

func TestNewProcessStationaryStart(t *testing.T) {
	nw := netsim.New(10000)
	rng := rand.New(rand.NewPCG(1, 2))
	m := Model{MeanOnline: 300, MeanOffline: 100}
	if _, err := NewProcess(nw, m, rng); err != nil {
		t.Fatal(err)
	}
	frac := float64(nw.OnlineCount()) / float64(nw.Size())
	if math.Abs(frac-0.75) > 0.03 {
		t.Errorf("initial online fraction = %v, want ≈ 0.75", frac)
	}
}

func TestNewProcessRejectsBadModel(t *testing.T) {
	nw := netsim.New(10)
	rng := rand.New(rand.NewPCG(1, 2))
	if _, err := NewProcess(nw, Model{}, rng); err == nil {
		t.Error("NewProcess accepted a zero model")
	}
}

func TestNoChurnModel(t *testing.T) {
	nw := netsim.New(100)
	rng := rand.New(rand.NewPCG(1, 2))
	p, err := NewProcess(nw, Model{MeanOnline: 100, MeanOffline: 0}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 500; r++ {
		nw.AdvanceRound()
		if flipped := p.Step(); flipped != 0 {
			t.Fatalf("round %d: %d peers flipped in a churn-free network", r, flipped)
		}
	}
	if nw.OnlineCount() != 100 {
		t.Errorf("OnlineCount = %d, want 100", nw.OnlineCount())
	}
}

func TestStationaryFractionHolds(t *testing.T) {
	nw := netsim.New(5000)
	rng := rand.New(rand.NewPCG(7, 8))
	m := Model{MeanOnline: 60, MeanOffline: 30}
	p, err := NewProcess(nw, m, rng)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	const rounds = 400
	for r := 0; r < rounds; r++ {
		nw.AdvanceRound()
		p.Step()
		sum += float64(nw.OnlineCount()) / float64(nw.Size())
	}
	avg := sum / rounds
	want := m.OnlineFraction()
	if math.Abs(avg-want) > 0.03 {
		t.Errorf("mean online fraction over %d rounds = %v, want ≈ %v", rounds, avg, want)
	}
	if p.Flips() == 0 {
		t.Error("no peer ever changed state under churn")
	}
}

func TestChurnRateScalesWithSessionLength(t *testing.T) {
	// Shorter sessions must produce more flips per round.
	run := func(meanOnline float64) float64 {
		nw := netsim.New(2000)
		rng := rand.New(rand.NewPCG(5, 6))
		p, err := NewProcess(nw, Model{MeanOnline: meanOnline, MeanOffline: meanOnline}, rng)
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < 200; r++ {
			nw.AdvanceRound()
			p.Step()
		}
		return float64(p.Flips()) / 200
	}
	fast := run(20)
	slow := run(200)
	if fast <= slow {
		t.Errorf("flips/round: fast sessions %v not above slow sessions %v", fast, slow)
	}
}

func TestStepDeterministic(t *testing.T) {
	run := func() int64 {
		nw := netsim.New(500)
		rng := rand.New(rand.NewPCG(9, 10))
		p, err := NewProcess(nw, Model{MeanOnline: 50, MeanOffline: 25}, rng)
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < 100; r++ {
			nw.AdvanceRound()
			p.Step()
		}
		return p.Flips()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same seed produced different flip counts: %d vs %d", a, b)
	}
}
