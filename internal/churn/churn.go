// Package churn drives peer arrivals and departures. The paper stresses
// that "P2P clients are extremely transient in nature" [ChRa03] and that
// routing-table maintenance against this churn is the dominant indexing
// cost; this package supplies the on/off process that the DHT's maintenance
// machinery (internal/dht) works against.
//
// Sessions follow the standard exponential on/off model: a peer stays
// online for an Exp(1/MeanOnline) number of rounds, then offline for an
// Exp(1/MeanOffline) number of rounds. Model holds the two means; Process
// drives a netsim population one round at a time, initialized in its
// stationary distribution so measurements need no warm-up.
package churn

import (
	"fmt"
	"math"
	"math/rand/v2"

	"pdht/internal/netsim"
)

// Model parameterizes the on/off session process, in rounds.
type Model struct {
	// MeanOnline is the mean session length. The Gnutella measurements
	// behind the paper's env constant correspond to sessions on the
	// order of an hour.
	MeanOnline float64
	// MeanOffline is the mean absence length.
	MeanOffline float64
}

// Validate checks the model is well-posed.
func (m Model) Validate() error {
	if m.MeanOnline <= 0 || math.IsNaN(m.MeanOnline) || math.IsInf(m.MeanOnline, 0) {
		return fmt.Errorf("churn: MeanOnline = %v must be positive and finite", m.MeanOnline)
	}
	if m.MeanOffline < 0 || math.IsNaN(m.MeanOffline) || math.IsInf(m.MeanOffline, 0) {
		return fmt.Errorf("churn: MeanOffline = %v must be non-negative and finite", m.MeanOffline)
	}
	return nil
}

// OnlineFraction returns the stationary probability that a peer is online:
// MeanOnline / (MeanOnline + MeanOffline).
func (m Model) OnlineFraction() float64 {
	return m.MeanOnline / (m.MeanOnline + m.MeanOffline)
}

// Process binds a Model to a network and advances it round by round.
type Process struct {
	model    Model
	net      *netsim.Network
	rng      *rand.Rand
	nextFlip []int // round at which each peer changes state
	flips    int64 // total state changes, for measurement
}

// NewProcess initializes the churn process in its stationary distribution:
// each peer is online with probability OnlineFraction(), and its first
// state change is scheduled with the memoryless residual of its current
// state. MeanOffline = 0 degenerates to a churn-free network.
func NewProcess(net *netsim.Network, model Model, rng *rand.Rand) (*Process, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	p := &Process{
		model:    model,
		net:      net,
		rng:      rng,
		nextFlip: make([]int, net.Size()),
	}
	for i := 0; i < net.Size(); i++ {
		id := netsim.PeerID(i)
		if model.MeanOffline == 0 {
			net.SetOnline(id, true)
			p.nextFlip[i] = math.MaxInt
			continue
		}
		online := rng.Float64() < model.OnlineFraction()
		net.SetOnline(id, online)
		p.nextFlip[i] = net.Round() + p.duration(online)
	}
	return p, nil
}

// duration draws the length in rounds of a session in the given state,
// at least 1.
func (p *Process) duration(online bool) int {
	mean := p.model.MeanOffline
	if online {
		mean = p.model.MeanOnline
	}
	d := int(math.Round(p.rng.ExpFloat64() * mean))
	if d < 1 {
		d = 1
	}
	return d
}

// Step advances the process to the network's current round, flipping every
// peer whose timer expired. Call once per round after
// Network.AdvanceRound. Returns the number of peers that changed state.
func (p *Process) Step() int {
	now := p.net.Round()
	flipped := 0
	for i := range p.nextFlip {
		if p.nextFlip[i] > now {
			continue
		}
		id := netsim.PeerID(i)
		online := !p.net.Online(id)
		p.net.SetOnline(id, online)
		p.nextFlip[i] = now + p.duration(online)
		flipped++
		p.flips++
	}
	return flipped
}

// Flips returns the total number of state changes so far.
func (p *Process) Flips() int64 { return p.flips }
