// Package experiments regenerates every table and figure of the paper's
// evaluation, plus the validation and ablation experiments DESIGN.md
// defines. Each experiment returns a rendered plain-text table (the repo's
// equivalent of the paper's plots) together with the underlying numbers, so
// the same code serves the pdht-bench binary, the benchmark suite and the
// EXPERIMENTS.md record. Each TableN/FigureN function returns a rendered
// stats.Table; ValidationRow and CalibrationResult carry the underlying
// numbers.
package experiments

import (
	"fmt"

	"pdht/internal/model"
	"pdht/internal/stats"
)

// Table1 renders the parameters of the sample scenario — the paper's
// Table 1, symbol by symbol.
func Table1(p model.Params) *stats.Table {
	t := stats.NewTable("Table 1 — parameters of the sample scenario",
		"description", "param", "value")
	t.AddRow("Total number of peers", "numPeers", p.NumPeers)
	t.AddRow("Number of unique keys", "keys", p.Keys)
	t.AddRow("Storage capacity for indexing per peer", "stor", p.Stor)
	t.AddRow("Replication factor", "repl", p.Repl)
	t.AddRow("α of query Zipf distribution", "α", p.Alpha)
	t.AddRow("Frequency of queries per peer per second", "fQry",
		fmt.Sprintf("%s 1/s to %s 1/s",
			model.FormatFrequency(1.0/30.0), model.FormatFrequency(1.0/7200.0)))
	t.AddRow("Avg. update freq. per key", "fUpd", fmt.Sprintf("1/%d 1/s", 3600*24))
	t.AddRow("Route maintenance constant", "env", fmt.Sprintf("1/14 ≈ %.4f", p.Env))
	t.AddRow("Message duplication factor (unstructured)", "dup", p.Dup)
	t.AddRow("Message duplication factor (replica subnet)", "dup2", p.Dup2)
	return t
}

// Fig1 reproduces Figure 1: total messages per second versus query
// frequency for indexAll (eq. 11), noIndex (eq. 12) and ideal partial
// indexing (eq. 13).
func Fig1(p model.Params) (*stats.Table, []model.SweepPoint, error) {
	pts, err := model.Sweep(p, nil)
	if err != nil {
		return nil, nil, err
	}
	t := stats.NewTable("Figure 1 — query frequency vs total messages per second",
		"fQry", "indexAll", "noIndex", "partial")
	for _, pt := range pts {
		t.AddRow(model.FormatFrequency(pt.FQry), pt.IndexAll, pt.NoIndex, pt.Partial)
	}
	return t, pts, nil
}

// Fig2 reproduces Figure 2: savings of ideal partial indexing compared to
// indexing all keys and compared to broadcasting all queries.
func Fig2(p model.Params) (*stats.Table, []model.SweepPoint, error) {
	pts, err := model.Sweep(p, nil)
	if err != nil {
		return nil, nil, err
	}
	t := stats.NewTable("Figure 2 — savings of ideal partial indexing",
		"fQry", "vs indexAll", "vs noIndex")
	for _, pt := range pts {
		t.AddRow(model.FormatFrequency(pt.FQry), pt.SavingsVsIndexAll, pt.SavingsVsNoIndex)
	}
	return t, pts, nil
}

// Fig3 reproduces Figure 3: the fraction of keys worth indexing and the
// probability that a query is answered from the index.
func Fig3(p model.Params) (*stats.Table, []model.SweepPoint, error) {
	pts, err := model.Sweep(p, nil)
	if err != nil {
		return nil, nil, err
	}
	t := stats.NewTable("Figure 3 — index size and hit probability (ideal partial indexing)",
		"fQry", "index size", "pIndxd", "maxRank")
	for _, pt := range pts {
		t.AddRow(model.FormatFrequency(pt.FQry), pt.IndexFraction, pt.PIndxd, pt.Solution.MaxRank)
	}
	return t, pts, nil
}

// Fig4 reproduces Figure 4: savings of the TTL selection algorithm
// (eq. 17, keyTtl = 1/fMin) against both baselines.
func Fig4(p model.Params) (*stats.Table, []model.SweepPoint, error) {
	pts, err := model.Sweep(p, nil)
	if err != nil {
		return nil, nil, err
	}
	t := stats.NewTable("Figure 4 — savings of the selection algorithm",
		"fQry", "vs indexAll", "vs noIndex", "keyTtl", "E[index]", "pIndxd")
	for _, pt := range pts {
		t.AddRow(model.FormatFrequency(pt.FQry),
			pt.TTLSavingsVsIndexAll, pt.TTLSavingsVsNoIndex,
			pt.TTL.KeyTtl, pt.TTL.IndexSize, pt.TTL.PIndxd)
	}
	return t, pts, nil
}

// TTLSens reproduces the §5.1.1 sensitivity claim: savings with keyTtl
// mis-estimated by ±25% and ±50%.
func TTLSens(p model.Params) (*stats.Table, []model.TTLSensitivityPoint, error) {
	errs := []float64{-0.5, -0.25, 0, 0.25, 0.5}
	pts, err := model.TTLSensitivity(p, nil, errs)
	if err != nil {
		return nil, nil, err
	}
	t := stats.NewTable("§5.1.1 — keyTtl estimation-error sensitivity",
		"fQry", "error", "keyTtl", "savings vs noIndex", "Δsavings")
	for _, pt := range pts {
		t.AddRow(model.FormatFrequency(pt.FQry),
			fmt.Sprintf("%+.0f%%", pt.Error*100),
			pt.KeyTtl, pt.SavingsVsNoIndex, pt.DeltaSavings)
	}
	return t, pts, nil
}

// KarySweep is ablation A5: the paper's footnote-3 generalization to k-ary
// key spaces. Bigger branching factors buy shorter lookups but bigger
// routing tables, so the probing cost of eq. 8 grows; which side wins
// depends on the query/maintenance balance.
func KarySweep(p model.Params) (*stats.Table, error) {
	pts, err := model.KarySweep(p, nil)
	if err != nil {
		return nil, err
	}
	best, err := model.OptimalKary(p, nil)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable(
		fmt.Sprintf("Ablation A5 — k-ary key space at fQry = %s (optimal k = %d)",
			model.FormatFrequency(p.FQry), best.K),
		"k", "cSIndx [msg]", "cRtn [msg/s/key]", "indexAll [msg/s]")
	for _, pt := range pts {
		t.AddRow(pt.K, pt.CSIndx, pt.CRtn, pt.IndexAll)
	}
	return t, nil
}

// AlphaSweep is ablation A2: how the Zipf exponent moves the worthwhile
// index size and the savings (the paper fixes α = 1.2 from [Srip01]; this
// shows what less and more skewed workloads do).
func AlphaSweep(p model.Params, alphas []float64) (*stats.Table, error) {
	if len(alphas) == 0 {
		alphas = []float64{0.6, 0.8, 1.0, 1.2, 1.5, 2.0}
	}
	t := stats.NewTable("Ablation A2 — Zipf exponent α at fQry = "+model.FormatFrequency(p.FQry),
		"α", "maxRank", "index frac", "pIndxd", "partial msg/s", "savings vs noIndex")
	for _, a := range alphas {
		q := p
		q.Alpha = a
		costs, err := model.CostsAt(q, nil)
		if err != nil {
			return nil, err
		}
		t.AddRow(a,
			costs.Solution.MaxRank,
			float64(costs.Solution.MaxRank)/float64(q.Keys),
			costs.Solution.PIndxd,
			costs.Partial,
			model.Savings(costs.Partial, costs.NoIndex))
	}
	return t, nil
}
