package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"pdht/internal/stats"
	"pdht/internal/store"
)

// StoreBench measures the persistence plane on the local filesystem: the
// per-append cost of the WAL under each fsync policy, and the time to
// recover a peer's state from a raw WAL replay and from a compacted
// snapshot. Unlike the model-backed experiments the rows are wall-clock
// measurements, so CI records a trajectory, not a constant — what matters
// across PRs is the shape (always ≫ interval ≈ none; recovery linear in
// records), not the absolute microseconds.
func StoreBench(records int) (*stats.Table, error) {
	if records <= 0 {
		records = 10_000
	}
	t := stats.NewTable(
		fmt.Sprintf("Store: WAL append and recovery, %d records (wall-clock)", records),
		"case", "records", "total ms", "us/op")

	deadline := time.Now().Add(time.Hour)
	appendAll := func(s *store.FileStore, n int) error {
		for i := 0; i < n; i++ {
			r := store.Record{Op: store.OpInsert, Key: uint64(i), Value: uint64(i), Deadline: deadline}
			if err := s.Append(r); err != nil {
				return err
			}
		}
		return nil
	}
	row := func(name string, n int, d time.Duration) {
		t.AddRow(name, n, float64(d.Microseconds())/1e3, float64(d.Microseconds())/float64(n))
	}

	// BenchmarkWALAppend: per-append cost under each durability policy.
	// SyncAlways pays a real fsync per append, so it runs a smaller batch
	// to keep the whole experiment sub-second.
	for _, pc := range []struct {
		policy store.SyncPolicy
		n      int
	}{
		{store.SyncNever, records},
		{store.SyncInterval, records},
		{store.SyncAlways, records / 50},
	} {
		dir, err := os.MkdirTemp("", "pdht-storebench-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		s, err := store.OpenFile(store.FileOptions{
			Dir: dir, Fsync: pc.policy, SnapshotEvery: time.Hour, SnapshotBytes: 1 << 30,
		})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		if err := appendAll(s, pc.n); err != nil {
			s.Close()
			return nil, err
		}
		row("BenchmarkWALAppend/"+pc.policy.String(), pc.n, time.Since(start))
		if err := s.Close(); err != nil {
			return nil, err
		}
	}

	// BenchmarkRecovery: build one WAL of the full record count, then time
	// the two recovery paths. The raw-WAL replay opens a byte-for-byte
	// crash image of the log (Close would compact it away); the snapshot
	// path reopens the directory a graceful Close compacted.
	src, err := os.MkdirTemp("", "pdht-storebench-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(src)
	s, err := store.OpenFile(store.FileOptions{
		Dir: src, Fsync: store.SyncNever, SnapshotEvery: time.Hour, SnapshotBytes: 1 << 30,
	})
	if err != nil {
		return nil, err
	}
	if err := appendAll(s, records); err != nil {
		s.Close()
		return nil, err
	}
	wal, err := os.ReadFile(filepath.Join(src, "wal.log"))
	if err != nil {
		s.Close()
		return nil, err
	}
	if err := s.Close(); err != nil { // compacts: src now recovers from snapshot
		return nil, err
	}

	crash, err := os.MkdirTemp("", "pdht-storebench-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(crash)
	if err := os.WriteFile(filepath.Join(crash, "wal.log"), wal, 0o644); err != nil {
		return nil, err
	}
	for _, rc := range []struct {
		name string
		dir  string
	}{
		{"BenchmarkRecovery/wal", crash},
		{"BenchmarkRecovery/snapshot", src},
	} {
		r, err := store.OpenFile(store.FileOptions{Dir: rc.dir, Fsync: store.SyncNever, SnapshotEvery: time.Hour})
		if err != nil {
			return nil, err
		}
		rs := r.Stats()
		if rs.Recovered != records {
			r.Close()
			return nil, fmt.Errorf("experiments: %s recovered %d of %d records", rc.name, rs.Recovered, records)
		}
		row(rc.name, records, rs.Replay)
		if err := r.Close(); err != nil {
			return nil, err
		}
	}
	return t, nil
}
