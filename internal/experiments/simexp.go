package experiments

import (
	"fmt"

	"pdht/internal/churn"
	"pdht/internal/model"
	"pdht/internal/sim"
	"pdht/internal/stats"
	"pdht/internal/workload"
	"pdht/internal/zipf"
)

// ValidationRow is one strategy's measured-versus-predicted comparison.
type ValidationRow struct {
	Strategy sim.Strategy
	Result   sim.Result
	Ratio    float64 // measured / model
}

// Validate is experiment V1: run all four strategies through the
// message-level simulator at the given scale and compare measured message
// rates with the analytical model. The base config's Strategy field is
// ignored.
func Validate(base sim.Config) (*stats.Table, []ValidationRow, error) {
	t := stats.NewTable(
		fmt.Sprintf("V1 — simulator vs model (%d peers, %d keys, fQry %s)",
			base.Peers, base.Keys, model.FormatFrequency(base.FQry)),
		"strategy", "measured msg/s", "model msg/s", "ratio", "hit rate", "E[index]", "answered")
	var rows []ValidationRow
	for _, s := range []sim.Strategy{
		sim.StrategyNoIndex, sim.StrategyIndexAll,
		sim.StrategyPartialIdeal, sim.StrategyPartialTTL,
	} {
		cfg := base
		cfg.Strategy = s
		res, err := sim.Run(cfg)
		if err != nil {
			return nil, nil, fmt.Errorf("experiments: %v: %w", s, err)
		}
		ratio := 0.0
		if res.ModelMsgPerRound > 0 {
			ratio = res.MsgPerRound / res.ModelMsgPerRound
		}
		rows = append(rows, ValidationRow{Strategy: s, Result: res, Ratio: ratio})
		t.AddRow(s.String(), res.MsgPerRound, res.ModelMsgPerRound, ratio,
			res.HitRate, res.MeanIndexedKeys,
			fmt.Sprintf("%d/%d", res.Answered, res.Queries))
	}
	return t, rows, nil
}

// SimSweep runs one strategy across the frequency grid in the simulator —
// the measured counterpart of Figures 1–4. freqs nil means the paper's
// grid.
func SimSweep(base sim.Config, freqs []float64) (*stats.Table, []sim.Result, error) {
	if freqs == nil {
		freqs = model.FrequencyGrid()
	}
	t := stats.NewTable(
		fmt.Sprintf("Simulated sweep — %s (%d peers, %d keys)", base.Strategy, base.Peers, base.Keys),
		"fQry", "measured msg/s", "model msg/s", "hit rate", "index frac")
	var out []sim.Result
	for _, f := range freqs {
		cfg := base
		cfg.FQry = f
		res, err := sim.Run(cfg)
		if err != nil {
			return nil, nil, err
		}
		out = append(out, res)
		t.AddRow(model.FormatFrequency(f), res.MsgPerRound, res.ModelMsgPerRound,
			res.HitRate, res.IndexFraction())
	}
	return t, out, nil
}

// Adaptation is experiment S2: the selection algorithm under a complete
// query-distribution change. It returns the hit-rate/index-size time
// series around the shift; §5.2's claim is that the index follows the
// workload.
func Adaptation(base sim.Config, shiftRound int) (*stats.Table, sim.Result, error) {
	cfg := base
	cfg.Strategy = sim.StrategyPartialTTL
	cfg.Shifts = workload.Schedule{{Round: shiftRound, Kind: workload.ShiftShuffle}}
	if cfg.TraceEvery == 0 {
		cfg.TraceEvery = 30
	}
	res, err := sim.Run(cfg)
	if err != nil {
		return nil, sim.Result{}, err
	}
	t := stats.NewTable(
		fmt.Sprintf("S2 — adaptation to a query-distribution shuffle at round %d", shiftRound),
		"round", "hit rate", "answer rate", "indexed keys", "msg/round")
	for _, tp := range res.Trace {
		marker := ""
		if tp.Round >= shiftRound && tp.Round < shiftRound+cfg.TraceEvery {
			marker = " ← shift"
		}
		t.AddRow(fmt.Sprintf("%d%s", tp.Round, marker),
			tp.HitRate, tp.AnswerRate, tp.IndexedKeys, tp.MsgPerRound)
	}
	return t, res, nil
}

// Backends is ablation A1: the same TTL-selection scenario over the trie,
// the ring and the Kademlia DHT. The dynamics (hit rate, index size) must
// match; the absolute message rates may differ with the backends'
// routing-table sizes and lookup styles.
func Backends(base sim.Config) (*stats.Table, []sim.Result, error) {
	t := stats.NewTable("A1 — DHT backends under the selection algorithm",
		"backend", "msg/s", "hit rate", "E[index]", "answered")
	var out []sim.Result
	for _, b := range []sim.Backend{sim.BackendTrie, sim.BackendRing, sim.BackendKademlia} {
		cfg := base
		cfg.Strategy = sim.StrategyPartialTTL
		cfg.Backend = b
		res, err := sim.Run(cfg)
		if err != nil {
			return nil, nil, err
		}
		out = append(out, res)
		t.AddRow(b.String(), res.MsgPerRound, res.HitRate, res.MeanIndexedKeys,
			fmt.Sprintf("%d/%d", res.Answered, res.Queries))
	}
	return t, out, nil
}

// MaintenanceTradeoff is ablation A4: eq. 8's premise probed directly. The
// routing-maintenance constant env buys routing-table freshness under
// churn; sweeping the probe rate shows the trade between maintenance
// traffic and lookup quality (failed routes, detour hops). envs nil sweeps
// {0, 1/50, 1/14, 1/5}; the churn model is fixed at hour-scale sessions.
func MaintenanceTradeoff(base sim.Config, envs []float64) (*stats.Table, []sim.Result, error) {
	if envs == nil {
		envs = []float64{0, 1.0 / 50.0, 1.0 / 14.0, 1.0 / 5.0}
	}
	t := stats.NewTable("A4 — maintenance rate vs routing quality under churn",
		"env", "maintenance msg/s", "route failures", "mean hops", "hit rate", "total msg/s")
	var out []sim.Result
	for _, env := range envs {
		cfg := base
		cfg.Strategy = sim.StrategyPartialTTL
		cfg.Env = env
		if cfg.Churn.MeanOnline == 0 {
			// Half the population offline at any time — harsh
			// enough that stale routing state actually bites.
			cfg.Churn = churn.Model{MeanOnline: 300, MeanOffline: 300}
		}
		res, err := sim.Run(cfg)
		if err != nil {
			return nil, nil, err
		}
		out = append(out, res)
		t.AddRow(fmt.Sprintf("%.4f", env),
			res.ByClass[stats.MsgMaintenance],
			res.RouteFailures, res.MeanLookupHops, res.HitRate, res.MsgPerRound)
	}
	return t, out, nil
}

// CalibrationResult reports experiment A6.
type CalibrationResult struct {
	TrueAlpha      float64
	EstimatedAlpha float64
	TrueKeyTtl     float64 // 1/fMin at the configured parameters
	CalibratedTtl  float64 // 1/fMin at the measured parameters
	MeasuredFQry   float64
	Result         sim.Result
}

// Calibration is experiment A6: close the measurement loop the paper
// leaves open. A run of the selection algorithm records its own per-key
// query counts; the Zipf exponent is recovered from them by maximum
// likelihood (zipf.EstimateAlpha) and, together with the measured query
// rate, fed back into the analytical model. The calibrated keyTtl should
// land near the one derived from the configured ground truth.
func Calibration(base sim.Config) (*stats.Table, CalibrationResult, error) {
	cfg := base
	cfg.Strategy = sim.StrategyPartialTTL
	cfg.CollectKeyCounts = true
	res, err := sim.Run(cfg)
	if err != nil {
		return nil, CalibrationResult{}, err
	}
	estAlpha, err := zipf.EstimateAlpha(res.KeyQueryCounts, cfg.Keys)
	if err != nil {
		return nil, CalibrationResult{}, err
	}
	measuredFQry := float64(res.Queries) / float64(res.MeasuredRounds) / float64(cfg.Peers)

	truth := cfg.ModelParams()
	trueSol, err := model.Solve(truth, nil)
	if err != nil {
		return nil, CalibrationResult{}, err
	}
	measured := truth
	measured.Alpha = estAlpha
	measured.FQry = measuredFQry
	calSol, err := model.Solve(measured, nil)
	if err != nil {
		return nil, CalibrationResult{}, err
	}

	out := CalibrationResult{
		TrueAlpha:      cfg.Alpha,
		EstimatedAlpha: estAlpha,
		TrueKeyTtl:     model.IdealKeyTtl(trueSol),
		CalibratedTtl:  model.IdealKeyTtl(calSol),
		MeasuredFQry:   measuredFQry,
		Result:         res,
	}
	t := stats.NewTable("A6 — model calibration from the live query stream",
		"quantity", "configured", "measured/derived")
	t.AddRow("Zipf α", cfg.Alpha, estAlpha)
	t.AddRow("fQry [1/s]", cfg.FQry, measuredFQry)
	t.AddRow("keyTtl = 1/fMin [rounds]", out.TrueKeyTtl, out.CalibratedTtl)
	t.AddRow("maxRank", trueSol.MaxRank, calSol.MaxRank)
	return t, out, nil
}

// SelfTuning is ablation A3: the model-derived keyTtl versus the online
// estimator that starts from a coarse guess (the paper's future-work
// mechanism).
// TopKAB is experiment T1, the distributed top-k A/B: the adaptive
// planner (yield history plus sketch-fed term weights) against the
// uniform full-fan-out baseline at identical workloads and identical
// exact answers. The comparison runs at a fixed small scale — the uniform
// side pays peers−1 wire legs on every query, so large populations buy no
// extra signal, only wall-clock.
func TopKAB(base sim.Config) (*stats.Table, []sim.Result, error) {
	cfg := base
	cfg.Strategy = sim.StrategyPartialTopK
	if cfg.Peers > 128 {
		cfg.Peers = 128
		cfg.Keys = 256
		cfg.Repl = 10
	}
	cfg.FQry = 0.05
	cfg.Rounds = 120
	cfg.WarmupRounds = 40
	if cfg.TopKCopies > cfg.Peers {
		cfg.TopKCopies = cfg.Peers / 4
	}
	t := stats.NewTable(
		fmt.Sprintf("T1 — distributed top-k: adaptive planner vs uniform fan-out (%d peers, k=%d, %d terms/query)",
			cfg.Peers, cfg.TopKK, cfg.TopKTerms),
		"plan", "legs/query", "early %", "msg/s", "exact answers")
	var out []sim.Result
	for _, uniform := range []bool{true, false} {
		c := cfg
		c.TopKUniform = uniform
		res, err := sim.Run(c)
		if err != nil {
			return nil, nil, err
		}
		out = append(out, res)
		name := "adaptive"
		if uniform {
			name = "uniform"
		}
		t.AddRow(name, res.TopKLegsPerQuery, 100*res.TopKEarlyRate,
			res.MsgPerRound, fmt.Sprintf("%d/%d", res.Answered, res.Queries))
	}
	return t, out, nil
}

func SelfTuning(base sim.Config) (*stats.Table, []sim.Result, error) {
	t := stats.NewTable("A3 — model-derived vs self-tuned keyTtl",
		"mode", "final keyTtl", "msg/s", "hit rate", "E[index]")
	var out []sim.Result
	for _, tune := range []bool{false, true} {
		cfg := base
		cfg.Strategy = sim.StrategyPartialTTL
		cfg.SelfTuneTTL = tune
		res, err := sim.Run(cfg)
		if err != nil {
			return nil, nil, err
		}
		out = append(out, res)
		mode := "model 1/fMin"
		if tune {
			mode = "self-tuned"
		}
		t.AddRow(mode, res.KeyTtlUsed, res.MsgPerRound, res.HitRate, res.MeanIndexedKeys)
	}
	return t, out, nil
}
