package experiments

import (
	"strings"
	"testing"

	"pdht/internal/model"
	"pdht/internal/sim"
	"pdht/internal/stats"
)

func quickSim() sim.Config {
	cfg := sim.DefaultConfig()
	cfg.Peers = 800
	cfg.Keys = 1600
	cfg.Repl = 10
	cfg.Rounds = 100
	cfg.WarmupRounds = 30
	return cfg
}

func TestTable1ContainsEverySymbol(t *testing.T) {
	out := Table1(model.DefaultScenario()).RenderString()
	for _, sym := range []string{"numPeers", "keys", "stor", "repl", "α", "fQry", "fUpd", "env", "dup", "dup2", "20000", "40000", "100", "50", "1.20"} {
		if !strings.Contains(out, sym) {
			t.Errorf("Table 1 missing %q:\n%s", sym, out)
		}
	}
}

func TestFiguresRender(t *testing.T) {
	p := model.DefaultScenario()
	type figFn func(model.Params) (interface{ RenderString() string }, int)
	checks := []struct {
		name string
		rows int
		run  func() (string, int, error)
	}{
		{"fig1", 8, func() (string, int, error) {
			tb, pts, err := Fig1(p)
			if err != nil {
				return "", 0, err
			}
			return tb.RenderString(), len(pts), nil
		}},
		{"fig2", 8, func() (string, int, error) {
			tb, pts, err := Fig2(p)
			if err != nil {
				return "", 0, err
			}
			return tb.RenderString(), len(pts), nil
		}},
		{"fig3", 8, func() (string, int, error) {
			tb, pts, err := Fig3(p)
			if err != nil {
				return "", 0, err
			}
			return tb.RenderString(), len(pts), nil
		}},
		{"fig4", 8, func() (string, int, error) {
			tb, pts, err := Fig4(p)
			if err != nil {
				return "", 0, err
			}
			return tb.RenderString(), len(pts), nil
		}},
	}
	for _, c := range checks {
		out, n, err := c.run()
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if n != c.rows {
			t.Errorf("%s: %d rows, want %d", c.name, n, c.rows)
		}
		if !strings.Contains(out, "1/30") || !strings.Contains(out, "1/7200") {
			t.Errorf("%s output missing frequency labels:\n%s", c.name, out)
		}
	}
}

func TestTTLSens(t *testing.T) {
	tb, pts, err := TTLSens(model.DefaultScenario())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 8*5 {
		t.Errorf("sensitivity points = %d, want 40", len(pts))
	}
	out := tb.RenderString()
	if !strings.Contains(out, "-50%") || !strings.Contains(out, "+50%") {
		t.Errorf("sensitivity table missing error labels:\n%s", out)
	}
}

func TestAlphaSweep(t *testing.T) {
	tb, err := AlphaSweep(model.DefaultScenario(), nil)
	if err != nil {
		t.Fatal(err)
	}
	out := tb.RenderString()
	for _, a := range []string{"0.6", "1.20", "2"} {
		if !strings.Contains(out, a) {
			t.Errorf("alpha sweep missing %s:\n%s", a, out)
		}
	}
}

func TestValidate(t *testing.T) {
	tb, rows, err := Validate(quickSim())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("validation rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Result.Answered != r.Result.Queries {
			t.Errorf("%v: answered %d/%d", r.Strategy, r.Result.Answered, r.Result.Queries)
		}
		if r.Ratio < 0.3 || r.Ratio > 3.5 {
			t.Errorf("%v: ratio %v outside band", r.Strategy, r.Ratio)
		}
	}
	out := tb.RenderString()
	for _, s := range []string{"noIndex", "indexAll", "partial", "partialTTL"} {
		if !strings.Contains(out, s) {
			t.Errorf("validation table missing %s", s)
		}
	}
}

func TestSimSweepSubset(t *testing.T) {
	cfg := quickSim()
	cfg.Strategy = sim.StrategyPartialTTL
	_, results, err := SimSweep(cfg, []float64{1.0 / 30.0, 1.0 / 300.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	// Busier traffic, more messages.
	if results[0].MsgPerRound <= results[1].MsgPerRound {
		t.Errorf("sweep ordering wrong: %v vs %v",
			results[0].MsgPerRound, results[1].MsgPerRound)
	}
}

func TestAdaptation(t *testing.T) {
	cfg := quickSim()
	cfg.Rounds = 240
	cfg.WarmupRounds = 60
	cfg.KeyTtl = 50
	_, res, err := Adaptation(cfg, 180)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) == 0 {
		t.Fatal("no trace")
	}
}

func TestBackends(t *testing.T) {
	_, results, err := Backends(quickSim())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 { // trie, ring, kademlia
		t.Fatalf("results = %d", len(results))
	}
	for i := 1; i < len(results); i++ {
		if diff := results[0].HitRate - results[i].HitRate; diff > 0.15 || diff < -0.15 {
			t.Errorf("backend hit rates diverge: %v vs %v",
				results[0].HitRate, results[i].HitRate)
		}
	}
}

func TestKarySweepTable(t *testing.T) {
	tb, err := KarySweep(model.DefaultScenario())
	if err != nil {
		t.Fatal(err)
	}
	out := tb.RenderString()
	if !strings.Contains(out, "optimal k = 2") {
		t.Errorf("A5 table missing the optimum:\n%s", out)
	}
	for _, k := range []string{"2", "4", "8", "16", "32"} {
		if !strings.Contains(out, k) {
			t.Errorf("A5 table missing k=%s", k)
		}
	}
}

func TestMaintenanceTradeoff(t *testing.T) {
	cfg := quickSim()
	cfg.Rounds = 150
	tb, results, err := MaintenanceTradeoff(cfg, []float64{0, 1.0 / 14.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	// No probing means no maintenance traffic; probing means some.
	if results[0].ByClass[stats.MsgMaintenance] != 0 {
		t.Error("env=0 produced maintenance traffic")
	}
	if results[1].ByClass[stats.MsgMaintenance] <= 0 {
		t.Error("env=1/14 produced no maintenance traffic")
	}
	// Under churn, unmaintained routing detours more.
	if results[0].MeanLookupHops <= results[1].MeanLookupHops {
		t.Errorf("stale routing should cost hops: %v vs %v",
			results[0].MeanLookupHops, results[1].MeanLookupHops)
	}
	if !strings.Contains(tb.RenderString(), "0.0714") {
		t.Error("A4 table missing the paper's env")
	}
}

func TestCalibration(t *testing.T) {
	cfg := quickSim()
	cfg.Rounds = 400
	_, res, err := Calibration(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if diff := res.EstimatedAlpha - res.TrueAlpha; diff > 0.15 || diff < -0.15 {
		t.Errorf("estimated α = %v, true %v", res.EstimatedAlpha, res.TrueAlpha)
	}
	ratio := res.CalibratedTtl / res.TrueKeyTtl
	if ratio < 0.7 || ratio > 1.4 {
		t.Errorf("calibrated keyTtl %v vs true %v (ratio %v)",
			res.CalibratedTtl, res.TrueKeyTtl, ratio)
	}
	if res.MeasuredFQry <= 0 {
		t.Error("no measured query rate")
	}
}

func TestTopKAB(t *testing.T) {
	cfg := quickSim()
	tb, rows, err := TopKAB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("TopKAB returned %d rows, want uniform + adaptive", len(rows))
	}
	uni, ada := rows[0], rows[1]
	if uni.TopKLegsPerQuery <= ada.TopKLegsPerQuery {
		t.Fatalf("adaptive legs/query %v did not beat uniform %v",
			ada.TopKLegsPerQuery, uni.TopKLegsPerQuery)
	}
	out := tb.RenderString()
	for _, want := range []string{"uniform", "adaptive", "legs/query"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestSelfTuning(t *testing.T) {
	cfg := quickSim()
	cfg.Rounds = 300
	_, results, err := SelfTuning(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	if results[1].KeyTtlUsed == 600 {
		t.Error("self-tuner never moved off the initial guess")
	}
}
