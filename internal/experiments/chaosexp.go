package experiments

import (
	"fmt"
	"time"

	"pdht/internal/chaos"
	"pdht/internal/keyspace"
	"pdht/internal/stats"
)

// ChaosBench boots a live in-process fleet, runs the canonical chaos
// scenario (baseline loss, a lossy 3-way partition, heal), and reports the
// measured convergence and accounting outcome as one table — the fleet
// analogue of the store experiment: wall-clock rows whose shape (heal ≪
// bound, zero lost/resurrected, zero double-owned) is the contract CI
// tracks across PRs.
func ChaosBench(n int, seed uint64) (*stats.Table, error) {
	if n <= 0 {
		n = 48
	}
	if seed == 0 {
		seed = 1
	}
	rep, err := chaos.Run(chaos.RunConfig{
		N:     n,
		Chaos: chaos.Config{Seed: seed, Drop: 0.02, LatencyBase: time.Millisecond, LatencyJitter: 2 * time.Millisecond},
		Scenario: chaos.Scenario{
			{Name: "healthy", Duration: 400 * time.Millisecond},
			{Name: "drop20+split3", Duration: 1500 * time.Millisecond, Drop: 0.20, Split: 3},
			{Name: "heal", Duration: 0},
		},
		Entries: 48,
	})
	if err != nil {
		return nil, err
	}
	t := stats.NewTable(
		fmt.Sprintf("Chaos: %d-node fleet, %s (seed %d)", rep.N, rep.Schedule, rep.Seed),
		"metric", "value")
	t.AddRow("boot converge ms", rep.BootConverge.Milliseconds())
	t.AddRow("heal converge ms", rep.HealConverge.Milliseconds())
	t.AddRow("bound ms", rep.Bound.Milliseconds())
	t.AddRow("within bound", rep.WithinBound)
	t.AddRow("entries lost", rep.Accounting.Lost)
	t.AddRow("entries resurrected", rep.Accounting.Resurrected)
	t.AddRow("entries held live", rep.Accounting.Held)
	t.AddRow("entries expired clean", rep.Accounting.ExpiredGone)
	t.AddRow("double-owned keys", rep.PlacementDisagreements)
	t.AddRow("handoff msgs", rep.HandoffMsgs)
	t.AddRow("handoff keys accepted", rep.HandoffKeys)
	t.AddRow("stale-view refusals", rep.StaleViews)
	return t, nil
}

// ViewDeltaBench prices the incremental-view refactor at fleet scale:
// applying a one-join one-leave membership delta to a consistent-hash
// member ring versus rebuilding the ring from the full member list. The
// delta path is what every node pays per membership event, so its gap to
// the rebuild is the headroom that makes thousand-node fleets viable.
func ViewDeltaBench() (*stats.Table, error) {
	t := stats.NewTable(
		"View delta: member-ring delta application vs full rebuild (wall-clock)",
		"members", "rebuild us/op", "delta us/op", "speedup")
	for _, n := range []int{128, 512, 1000, 2000} {
		members := make([]string, n)
		for i := range members {
			members[i] = fmt.Sprintf("peer-%04d", i)
		}
		ring := keyspace.NewMemberRing(members, 3)
		joined := []string{fmt.Sprintf("peer-%04d", n)}
		left := []string{members[n/2]}

		iters := 200_000 / n
		if iters < 20 {
			iters = 20
		}
		start := time.Now()
		for i := 0; i < iters; i++ {
			if ring.Apply(joined, left) == nil {
				return nil, fmt.Errorf("viewdelta: Apply returned nil")
			}
		}
		delta := time.Since(start)

		full := append(append([]string(nil), members...), joined...)
		start = time.Now()
		for i := 0; i < iters; i++ {
			if keyspace.NewMemberRing(full, 3) == nil {
				return nil, fmt.Errorf("viewdelta: rebuild returned nil")
			}
		}
		rebuild := time.Since(start)

		du := float64(delta.Microseconds()) / float64(iters)
		ru := float64(rebuild.Microseconds()) / float64(iters)
		t.AddRow(n, ru, du, ru/du)
	}
	return t, nil
}
