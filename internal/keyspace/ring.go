package keyspace

import (
	"math/bits"
	"sort"
	"strconv"
)

// This file is the incremental membership ring: a consistent-hash ring over
// member *addresses* (not ranks), built so a membership delta — a handful of
// joins and leaves out of a thousand members — is applied by splicing only
// the changed virtual nodes instead of rebuilding the whole structure. Every
// node that knows the same membership set derives byte-identical rings with
// no extra protocol, because positions are pure hashes of addresses.
//
// The ring answers three questions for the live node layer:
//
//   - Group(key): the first repl distinct members clockwise from the key —
//     the replica set, with Group[0] the route primary.
//   - RouteHops(from, key): how many overlay hops an ideal-finger Chord
//     walk from `from` needs to land inside Group(key) — the hop metric the
//     simulator's materialized finger tables used to provide, now computed
//     on demand from the vnode array (a binary search per hop) instead of
//     from per-peer state that would need O(n) repair on every change.
//   - Affected(changed): the exact set of key arcs whose replica group can
//     differ because of the changed members — the basis for handoff
//     planning that scans only the affected fraction of the index instead
//     of every entry (see internal/replica.PlanRepair and node.planHandoff).
//
// Why ranks were the scaling bug: the simulator's dht.Ring hashes vnode
// positions from the peer's *rank* in the sorted member list, so one join
// shifts every later rank and silently re-positions almost every vnode —
// any "incremental" update on top of that is a lie. Hashing addresses makes
// a member's vnodes a function of the member alone, which is what makes
// delta application sound.

// RingVnodes is the number of virtual nodes each member projects onto the
// ring. More vnodes smooth load at the cost of proportionally more splice
// work per membership change; 4 matches the simulator's ring default.
const RingVnodes = 4

// ringVnode is one virtual node: a position owned by a member address.
type ringVnode struct {
	pos  Key
	addr string
}

// MemberRing is an immutable consistent-hash ring over a member set. Apply
// returns a new ring sharing no mutable state with the old one, so a node
// can keep serving reads from the old view while the next is assembled.
type MemberRing struct {
	vnodes  []ringVnode // sorted by pos, ties by addr
	members map[string]struct{}
	repl    int
}

// memberVnodes returns the ring positions addr projects. Position j is the
// hash of "addr#j": stable under any change to the rest of the membership.
func memberVnodes(addr string) []ringVnode {
	out := make([]ringVnode, RingVnodes)
	for j := range out {
		out[j] = ringVnode{pos: HashString(addr + "#" + strconv.Itoa(j)), addr: addr}
	}
	return out
}

func sortVnodes(v []ringVnode) {
	sort.Slice(v, func(a, b int) bool {
		if v[a].pos != v[b].pos {
			return v[a].pos < v[b].pos
		}
		return v[a].addr < v[b].addr
	})
}

// NewMemberRing builds a ring from scratch over the given members (order
// irrelevant, duplicates ignored). repl is the replica-group size Group
// targets; it is clamped to the member count at query time, so a ring can
// be built before the cluster has grown past repl members.
func NewMemberRing(members []string, repl int) *MemberRing {
	if repl < 1 {
		repl = 1
	}
	r := &MemberRing{
		vnodes:  make([]ringVnode, 0, len(members)*RingVnodes),
		members: make(map[string]struct{}, len(members)),
		repl:    repl,
	}
	for _, m := range members {
		if _, dup := r.members[m]; dup {
			continue
		}
		r.members[m] = struct{}{}
		r.vnodes = append(r.vnodes, memberVnodes(m)...)
	}
	sortVnodes(r.vnodes)
	return r
}

// Size returns the number of members on the ring.
func (r *MemberRing) Size() int { return len(r.members) }

// Repl returns the replica-group size Group targets (before clamping).
func (r *MemberRing) Repl() int { return r.repl }

// Contains reports whether addr is a ring member.
func (r *MemberRing) Contains(addr string) bool {
	_, ok := r.members[addr]
	return ok
}

// Apply returns a new ring with joined added and left removed. Only the
// changed members' vnodes are hashed; everything else is a single merge
// pass over the old sorted array — O(n + changed·log changed) with small
// constants, versus the full rebuild's O(n·v) hashing + O(n·v log n·v)
// sort. Joins already present and leaves not present are ignored.
func (r *MemberRing) Apply(joined, left []string) *MemberRing {
	rm := make(map[string]struct{}, len(left))
	for _, a := range left {
		if _, ok := r.members[a]; ok {
			rm[a] = struct{}{}
		}
	}
	var add []ringVnode
	added := make(map[string]struct{}, len(joined))
	for _, a := range joined {
		if _, ok := r.members[a]; ok {
			continue
		}
		if _, dup := added[a]; dup {
			continue
		}
		added[a] = struct{}{}
		add = append(add, memberVnodes(a)...)
	}
	sortVnodes(add)

	next := &MemberRing{
		vnodes:  make([]ringVnode, 0, len(r.vnodes)-len(rm)*RingVnodes+len(add)),
		members: make(map[string]struct{}, len(r.members)-len(rm)+len(added)),
		repl:    r.repl,
	}
	for m := range r.members {
		if _, gone := rm[m]; !gone {
			next.members[m] = struct{}{}
		}
	}
	for m := range added {
		next.members[m] = struct{}{}
	}
	// Merge the surviving old vnodes with the sorted additions.
	i := 0
	for _, v := range r.vnodes {
		if _, gone := rm[v.addr]; gone {
			continue
		}
		for i < len(add) && (add[i].pos < v.pos || (add[i].pos == v.pos && add[i].addr < v.addr)) {
			next.vnodes = append(next.vnodes, add[i])
			i++
		}
		next.vnodes = append(next.vnodes, v)
	}
	next.vnodes = append(next.vnodes, add[i:]...)
	return next
}

// successor returns the index of the first vnode at or clockwise after k,
// wrapping past the top of the key space.
func (r *MemberRing) successor(k Key) int {
	i := sort.Search(len(r.vnodes), func(i int) bool { return r.vnodes[i].pos >= k })
	if i == len(r.vnodes) {
		return 0
	}
	return i
}

// Group returns the replica group of key: the first min(repl, Size)
// distinct members encountered walking clockwise from key. Group[0] is the
// route primary. Returns nil on an empty ring.
func (r *MemberRing) Group(key Key) []string {
	n := len(r.members)
	if n == 0 {
		return nil
	}
	want := r.repl
	if want > n {
		want = n
	}
	out := make([]string, 0, want)
	i := r.successor(key)
	for len(out) < want {
		v := r.vnodes[i]
		if !containsAddr(out, v.addr) {
			out = append(out, v.addr)
		}
		i++
		if i == len(r.vnodes) {
			i = 0
		}
	}
	return out
}

func containsAddr(s []string, a string) bool {
	for _, x := range s {
		if x == a {
			return true
		}
	}
	return false
}

// RouteHops simulates an ideal-finger Chord walk from `from` to the replica
// group of key and returns the overlay hop count: 0 when `from` already
// holds the key's group, otherwise the number of distinct-peer forwardings
// a greedy power-of-two routing would take. Each iteration strictly shrinks
// the remaining clockwise distance by at least half, so the walk terminates
// in at most 64 steps plus the final hop to the owner.
func (r *MemberRing) RouteHops(from string, key Key) int {
	if len(r.vnodes) == 0 {
		return 0
	}
	group := r.Group(key)
	inGroup := make(map[string]struct{}, len(group))
	for _, a := range group {
		inGroup[a] = struct{}{}
	}
	if _, ok := inGroup[from]; ok {
		return 0
	}
	if _, ok := r.members[from]; !ok {
		// A non-member origin (external client) reaches the primary in one
		// logical hop: it dials Group[0] directly.
		return 1
	}
	cur := uint64(HashString(from + "#0"))
	curAddr := from
	target := uint64(key)
	hops := 0
	for iter := 0; iter < 96; iter++ {
		if _, ok := inGroup[curAddr]; ok {
			return hops
		}
		want := target - cur
		if want == 0 {
			want = 1
		}
		j := bits.Len64(want) - 1
		v := r.vnodes[r.successor(Key(cur+uint64(1)<<j))]
		if v.addr != curAddr {
			hops++
		}
		cur = uint64(v.pos)
		curAddr = v.addr
	}
	return hops
}

// Arc is the clockwise key interval (Lo, Hi]: Lo excluded, Hi included,
// wrapping through the top of the key space when Hi < Lo.
type Arc struct {
	Lo, Hi Key
}

// Contains reports whether k lies in the arc.
func (a Arc) Contains(k Key) bool {
	d := uint64(k) - uint64(a.Lo)
	return d != 0 && d <= uint64(a.Hi)-uint64(a.Lo)
}

// ArcSet is a union of arcs, with All short-circuiting to the whole key
// space (the conservative answer when a change touches everything — tiny
// clusters, or backends without arc geometry).
type ArcSet struct {
	All  bool
	Arcs []Arc
}

// Contains reports whether k lies in any arc of the set.
func (s ArcSet) Contains(k Key) bool {
	if s.All {
		return true
	}
	for _, a := range s.Arcs {
		if a.Contains(k) {
			return true
		}
	}
	return false
}

// Everything is the ArcSet covering the whole key space.
func Everything() ArcSet { return ArcSet{All: true} }

// Affected returns the exact set of keys whose replica group includes any
// of the given members on THIS ring: for each vnode p of a changed member,
// the arc (q, p] where q is the position at which a counterclockwise walk
// from p has seen repl distinct members other than the changed one. A key
// outside the returned set provably has the changed member outside its
// replica group here, so a transition that removes (or, evaluated on the
// new ring, adds) these members cannot alter that key's group — the
// property node handoff planning relies on, pinned by
// TestAffectedArcsCoverGroupChanges.
//
// Call it on the old ring for leavers and on the new ring for joiners;
// union the results. If the ring has at most repl distinct other members
// the walk wraps and the whole key space is affected (All=true).
func (r *MemberRing) Affected(changed []string) ArcSet {
	var out ArcSet
	seen := make(map[string]struct{}, len(changed))
	for _, addr := range changed {
		if _, ok := r.members[addr]; !ok {
			continue
		}
		if _, dup := seen[addr]; dup {
			continue
		}
		seen[addr] = struct{}{}
		for _, vn := range memberVnodes(addr) {
			lo, all := r.replPredecessor(vn.pos, addr)
			if all {
				return Everything()
			}
			out.Arcs = append(out.Arcs, Arc{Lo: lo, Hi: vn.pos})
		}
	}
	return out
}

// replPredecessor walks counterclockwise from the vnode at pos (owned by
// addr) until it has passed repl distinct members other than addr, and
// returns the position where the count was reached. all=true means the
// walk wrapped without finding repl distinct others — the arc is the whole
// ring.
func (r *MemberRing) replPredecessor(pos Key, addr string) (lo Key, all bool) {
	i := sort.Search(len(r.vnodes), func(i int) bool {
		if r.vnodes[i].pos != pos {
			return r.vnodes[i].pos > pos
		}
		return r.vnodes[i].addr >= addr
	})
	others := make(map[string]struct{}, r.repl)
	for steps := 0; steps < len(r.vnodes); steps++ {
		i--
		if i < 0 {
			i = len(r.vnodes) - 1
		}
		v := r.vnodes[i]
		if v.addr == addr {
			continue
		}
		others[v.addr] = struct{}{}
		if len(others) >= r.repl {
			return v.pos, false
		}
	}
	return 0, true
}
