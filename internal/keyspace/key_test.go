package keyspace

import (
	"fmt"
	"math/rand/v2"
	"strings"
	"testing"
	"testing/quick"
)

func TestHashStringDeterministicAndSpread(t *testing.T) {
	a := HashString("title=weather iraklion&date=2004/03/14")
	b := HashString("title=weather iraklion&date=2004/03/14")
	if a != b {
		t.Fatal("HashString is not deterministic")
	}
	if a == HashString("size=2405") {
		t.Fatal("distinct predicates collided (astronomically unlikely)")
	}
	// First-bit balance over many hashes: should be roughly 50/50 or the
	// trie would be badly skewed.
	ones := 0
	const n = 4096
	for i := 0; i < n; i++ {
		if HashString(strings.Repeat("k", 1)+string(rune('a'+i%26))+string(rune(i))).Bit(0) == 1 {
			ones++
		}
	}
	if ones < n/3 || ones > 2*n/3 {
		t.Errorf("first-bit balance %d/%d is badly skewed", ones, n)
	}
}

func TestBitMSBFirst(t *testing.T) {
	k := Key(0x8000000000000001)
	if k.Bit(0) != 1 {
		t.Error("Bit(0) should be the most significant bit")
	}
	if k.Bit(63) != 1 {
		t.Error("Bit(63) should be the least significant bit")
	}
	for i := 1; i < 63; i++ {
		if k.Bit(i) != 0 {
			t.Errorf("Bit(%d) = 1, want 0", i)
		}
	}
}

func TestBitPanics(t *testing.T) {
	for _, i := range []int{-1, 64, 1000} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Bit(%d) did not panic", i)
				}
			}()
			Key(0).Bit(i)
		}()
	}
}

func TestBitString(t *testing.T) {
	k := Key(0xA000000000000000) // 1010...
	if got := k.BitString(4); got != "1010" {
		t.Errorf("BitString(4) = %q, want 1010", got)
	}
	if got := k.BitString(0); got != "" {
		t.Errorf("BitString(0) = %q, want empty", got)
	}
	if got := Key(0).BitString(3); got != "000" {
		t.Errorf("zero key BitString(3) = %q", got)
	}
}

func TestHasPrefix(t *testing.T) {
	k := Key(0xA000000000000000) // 1010...
	cases := []struct {
		path string
		want bool
	}{
		{"", true},
		{"1", true},
		{"10", true},
		{"1010", true},
		{"0", false},
		{"11", false},
		{"1011", false},
	}
	for _, c := range cases {
		if got := k.HasPrefix(c.path); got != c.want {
			t.Errorf("HasPrefix(%q) = %v, want %v", c.path, got, c.want)
		}
	}
	if Key(0).HasPrefix(strings.Repeat("0", 65)) {
		t.Error("over-long path cannot be a prefix")
	}
}

func TestHasPrefixMalformedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("malformed path did not panic")
		}
	}()
	Key(0).HasPrefix("01x")
}

func TestValidPath(t *testing.T) {
	cases := []struct {
		path string
		want bool
	}{
		{"", true},
		{"0101", true},
		{"012", false},
		{"ab", false},
		{strings.Repeat("0", 64), true},
		{strings.Repeat("0", 65), false},
	}
	for _, c := range cases {
		if got := ValidPath(c.path); got != c.want {
			t.Errorf("ValidPath(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}

func TestCommonPrefixLen(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"0", "1", 0},
		{"01", "01", 2},
		{"0110", "0111", 3},
		{"01", "0110", 2},
	}
	for _, c := range cases {
		if got := CommonPrefixLen(c.a, c.b); got != c.want {
			t.Errorf("CommonPrefixLen(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestFlipAt(t *testing.T) {
	if got := FlipAt("0110", 0); got != "1" {
		t.Errorf("FlipAt(0110,0) = %q, want 1", got)
	}
	if got := FlipAt("0110", 2); got != "010" {
		t.Errorf("FlipAt(0110,2) = %q, want 010", got)
	}
	if got := FlipAt("0110", 3); got != "0111" {
		t.Errorf("FlipAt(0110,3) = %q, want 0111", got)
	}
}

func TestFlipAtPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FlipAt out of range did not panic")
		}
	}()
	FlipAt("01", 2)
}

// Property: a key always has its own bit-string as a prefix, and flipping
// any bit of that prefix yields a non-prefix.
func TestPrefixProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	f := func() bool {
		k := Key(rng.Uint64())
		n := rng.IntN(Bits) + 1
		p := k.BitString(n)
		if !k.HasPrefix(p) {
			return false
		}
		i := rng.IntN(n)
		return !k.HasPrefix(FlipAt(p, i))
	}
	if err := quick.Check(func() bool { return f() }, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: CommonPrefixLen is symmetric and bounded by both lengths.
func TestCommonPrefixLenProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	f := func() bool {
		a := Key(rng.Uint64()).BitString(rng.IntN(32))
		b := Key(rng.Uint64()).BitString(rng.IntN(32))
		n := CommonPrefixLen(a, b)
		if n != CommonPrefixLen(b, a) {
			return false
		}
		return n <= len(a) && n <= len(b)
	}
	if err := quick.Check(func() bool { return f() }, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestKeyString(t *testing.T) {
	if got := Key(0xAB).String(); got != "00000000000000ab" {
		t.Errorf("String = %q", got)
	}
}

// Regression test: raw FNV-64a hashes of strings differing only in the last
// byte differ by a small multiple of the FNV prime, clustering them within
// 1/65536 of the key space. The splitmix64 finalizer must spread them —
// without it, a peer's virtual ring positions all land on one spot and the
// trie's leaf assignment skews.
func TestHashStringSuffixAvalanche(t *testing.T) {
	var keys []uint64
	for j := 0; j < 16; j++ {
		keys = append(keys, uint64(HashString(fmt.Sprintf("ring-peer:7:%d", j))))
	}
	// Pairwise distances must not cluster: require every pair to be at
	// least 2^48 apart (raw FNV puts them all within ~δ·2^40).
	for i := 0; i < len(keys); i++ {
		for j := i + 1; j < len(keys); j++ {
			d := keys[i] - keys[j]
			if d > keys[j]-keys[i] {
				d = keys[j] - keys[i]
			}
			if d < 1<<48 {
				t.Fatalf("hashes %d and %d are only %d apart — finalizer missing?", i, j, d)
			}
		}
	}
}
