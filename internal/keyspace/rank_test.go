package keyspace

import (
	"math"
	"testing"
)

func TestRingDistanceWrapsAndIsAsymmetric(t *testing.T) {
	if d := RingDistance(10, 13); d != 3 {
		t.Fatalf("RingDistance(10,13) = %d, want 3", d)
	}
	// Wrapping: going clockwise from 13 back to 10 crosses zero.
	if d := RingDistance(13, 10); d != math.MaxUint64-2 {
		t.Fatalf("RingDistance(13,10) = %d, want 2⁶⁴−3", d)
	}
	if a, b := RingDistance(10, 13), RingDistance(13, 10); a+b != 0 {
		// uint64 arithmetic: the two directions sum to 2⁶⁴ ≡ 0.
		t.Fatalf("distances %d + %d do not close the ring", a, b)
	}
	if d := RingDistance(42, 42); d != 0 {
		t.Fatalf("RingDistance(x,x) = %d, want 0", d)
	}
}

func TestRankClosestOrdersBySuccessorWalk(t *testing.T) {
	key := Key(100)
	points := []Key{90, 110, 101, 5}
	// Clockwise from 100: 101 (d=1), 110 (d=10), then wrapping far: 5,
	// then 90 (just behind the key is the farthest successor).
	got := RankClosest(key, points)
	want := []int{2, 1, 3, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("RankClosest order = %v, want %v", got, want)
		}
	}
}

func TestRankClosestDeterministicAndNonMutating(t *testing.T) {
	key := HashString("some key")
	points := []Key{HashString("a"), HashString("b"), HashString("c"), HashString("d")}
	orig := append([]Key(nil), points...)
	first := RankClosest(key, points)
	second := RankClosest(key, points)
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("rankings differ across calls: %v vs %v", first, second)
		}
	}
	for i := range points {
		if points[i] != orig[i] {
			t.Fatal("RankClosest mutated its input")
		}
	}
	// Ties (identical points) break by index, keeping the order total.
	dup := []Key{7, 7, 7}
	got := RankClosest(3, dup)
	for i, idx := range []int{0, 1, 2} {
		if got[i] != idx {
			t.Fatalf("tie-break order = %v, want [0 1 2]", got)
		}
	}
}
