package keyspace

import (
	"fmt"
	"math/rand/v2"
	"reflect"
	"sort"
	"testing"
)

func ringAddrs(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("10.0.%d.%d:7000", i/256, i%256)
	}
	return out
}

// A ring is a pure function of its member set: construction order must not
// matter, and delta application must land on the exact ring a full rebuild
// of the final set produces — the property that lets a thousand nodes
// apply deltas independently and still agree on placement.
func TestMemberRingDeltaEqualsRebuild(t *testing.T) {
	addrs := ringAddrs(64)
	rng := rand.New(rand.NewPCG(7, 11))

	base := NewMemberRing(addrs[:48], 3)
	shuffled := append([]string(nil), addrs[:48]...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	if !reflect.DeepEqual(base.vnodes, NewMemberRing(shuffled, 3).vnodes) {
		t.Fatal("construction order changed the ring")
	}

	joined := addrs[48:56]
	left := addrs[:5]
	next := base.Apply(joined, left)

	want := make([]string, 0, 51)
	want = append(want, addrs[5:48]...)
	want = append(want, joined...)
	rebuilt := NewMemberRing(want, 3)
	if !reflect.DeepEqual(next.vnodes, rebuilt.vnodes) {
		t.Fatal("Apply(joined, left) diverged from full rebuild of the same set")
	}
	if next.Size() != 51 {
		t.Fatalf("Size = %d, want 51", next.Size())
	}
	// The base ring must be untouched (views are immutable snapshots).
	if base.Size() != 48 || !base.Contains(addrs[0]) {
		t.Fatal("Apply mutated the receiver")
	}

	// Redundant joins and leaves are ignored.
	same := next.Apply([]string{addrs[50]}, []string{"never-joined:1"})
	if !reflect.DeepEqual(same.vnodes, next.vnodes) {
		t.Fatal("redundant delta changed the ring")
	}
}

func TestMemberRingGroup(t *testing.T) {
	addrs := ringAddrs(20)
	r := NewMemberRing(addrs, 3)
	for i := 0; i < 200; i++ {
		k := Key(mix64(uint64(i) * 0x9e3779b97f4a7c15))
		g := r.Group(k)
		if len(g) != 3 {
			t.Fatalf("group size %d, want 3", len(g))
		}
		seen := map[string]bool{}
		for _, a := range g {
			if seen[a] {
				t.Fatalf("duplicate member %s in group", a)
			}
			seen[a] = true
		}
	}
	// Tiny cluster: group clamps to the member count.
	small := NewMemberRing(addrs[:2], 3)
	if g := small.Group(42); len(g) != 2 {
		t.Fatalf("clamped group size %d, want 2", len(g))
	}
	// Growth past repl un-clamps.
	if g := small.Apply(addrs[2:8], nil).Group(42); len(g) != 3 {
		t.Fatalf("post-growth group size %d, want 3", len(g))
	}
}

func TestMemberRingRouteHops(t *testing.T) {
	addrs := ringAddrs(256)
	r := NewMemberRing(addrs, 3)
	rng := rand.New(rand.NewPCG(3, 5))
	maxHops := 0
	for i := 0; i < 500; i++ {
		from := addrs[rng.IntN(len(addrs))]
		k := Key(rng.Uint64())
		h := r.RouteHops(from, k)
		if h < 0 || h > 96 {
			t.Fatalf("hops %d out of range", h)
		}
		if h > maxHops {
			maxHops = h
		}
		if containsAddr(r.Group(k), from) && h != 0 {
			t.Fatalf("origin in group but hops = %d", h)
		}
	}
	// An ideal-finger walk over 1024 vnodes should stay well under the
	// 64-step worst case — log₂(vnodes) ≈ 10 plus the terminal hop.
	if maxHops == 0 || maxHops > 16 {
		t.Fatalf("max hops %d implausible for 256 members", maxHops)
	}
	// Non-member origins dial the primary directly.
	if h := r.RouteHops("outsider:1", 42); h != 1 {
		t.Fatalf("outsider hops = %d, want 1", h)
	}
}

// The handoff-planning contract: Affected(changed) on the appropriate ring
// must cover every key whose replica group differs across a transition —
// keys outside the arcs provably keep their exact group, so the node skips
// them without looking.
func TestAffectedArcsCoverGroupChanges(t *testing.T) {
	rng := rand.New(rand.NewPCG(17, 23))
	for trial := 0; trial < 20; trial++ {
		n := 8 + rng.IntN(120)
		addrs := ringAddrs(n + 8)
		old := NewMemberRing(addrs[:n], 3)
		var joined, left []string
		for _, a := range addrs[n : n+1+rng.IntN(7)] {
			joined = append(joined, a)
		}
		for i := 0; i < 1+rng.IntN(3) && i < n-1; i++ {
			left = append(left, addrs[rng.IntN(n)])
		}
		next := old.Apply(joined, left)

		arcs := old.Affected(left)
		if !arcs.All {
			more := next.Affected(joined)
			if more.All {
				arcs = more
			} else {
				arcs.Arcs = append(arcs.Arcs, more.Arcs...)
			}
		}

		for i := 0; i < 2000; i++ {
			k := Key(rng.Uint64())
			same := reflect.DeepEqual(old.Group(k), next.Group(k))
			if !same && !arcs.Contains(k) {
				t.Fatalf("trial %d: key %v changed group outside affected arcs\nold=%v\nnew=%v",
					trial, k, old.Group(k), next.Group(k))
			}
		}
	}
}

// Affected must be exact per member on a single ring too: a key is inside
// a member's arcs iff the member is in its group.
func TestAffectedArcsExactForOneMember(t *testing.T) {
	addrs := ringAddrs(40)
	r := NewMemberRing(addrs, 3)
	rng := rand.New(rand.NewPCG(29, 31))
	for _, m := range []string{addrs[0], addrs[17], addrs[39]} {
		arcs := r.Affected([]string{m})
		if arcs.All {
			t.Fatal("40-member ring should not be fully affected by one member")
		}
		for i := 0; i < 4000; i++ {
			k := Key(rng.Uint64())
			inGroup := containsAddr(r.Group(k), m)
			if inGroup != arcs.Contains(k) {
				t.Fatalf("member %s key %v: inGroup=%v inArcs=%v", m, k, inGroup, !inGroup)
			}
		}
	}
	// Changing a member a tiny cluster depends on everywhere → whole space.
	tiny := NewMemberRing(addrs[:3], 3)
	if !tiny.Affected([]string{addrs[0]}).All {
		t.Fatal("3-member ring with repl 3: every key is affected")
	}
}

func TestArcContains(t *testing.T) {
	a := Arc{Lo: 100, Hi: 200}
	for k, want := range map[Key]bool{100: false, 101: true, 200: true, 201: false, 50: false} {
		if a.Contains(k) != want {
			t.Fatalf("Arc(100,200].Contains(%d) = %v, want %v", k, !want, want)
		}
	}
	// Wrapping arc.
	w := Arc{Lo: ^Key(0) - 10, Hi: 10}
	if !w.Contains(0) || !w.Contains(^Key(0)) || w.Contains(11) || w.Contains(^Key(0)-10) {
		t.Fatal("wrapping arc membership wrong")
	}
	if !Everything().Contains(12345) {
		t.Fatal("Everything must contain every key")
	}
}

func TestMemberRingSortedMergeKeepsOrder(t *testing.T) {
	addrs := ringAddrs(200)
	r := NewMemberRing(addrs[:100], 3)
	for i := 100; i < 200; i += 7 {
		hi := i + 7
		if hi > 200 {
			hi = 200
		}
		r = r.Apply(addrs[i:hi], addrs[i-100:i-93])
	}
	if !sort.SliceIsSorted(r.vnodes, func(a, b int) bool {
		if r.vnodes[a].pos != r.vnodes[b].pos {
			return r.vnodes[a].pos < r.vnodes[b].pos
		}
		return r.vnodes[a].addr < r.vnodes[b].addr
	}) {
		t.Fatal("vnode array lost sort order across deltas")
	}
}
