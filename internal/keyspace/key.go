// Package keyspace defines the binary key space the DHT indexes over.
//
// The paper assumes "a binary key space" (footnote 3) in which keys are
// obtained "by hashing single or concatenated key-value pairs" of metadata
// (§1). A Key here is a 64-bit identifier; peers in the trie DHT are
// responsible for all keys sharing their binary path prefix, so the package
// also provides the prefix algebra (bit extraction, common-prefix length,
// path containment) that routing is written against.
package keyspace

import (
	"fmt"
	"hash/fnv"
	"strings"
)

// Bits is the width of the key space. 64 bits is far beyond the paper's
// 40,000 keys; collisions are negligible and prefix routing never runs out
// of bits at any simulated scale.
const Bits = 64

// Key is a point in the binary key space.
type Key uint64

// HashString maps an arbitrary string (a metadata predicate such as
// `title=weather iraklion&date=2004/03/14`) to a Key: FNV-64a followed by a
// splitmix64 finalizer. Raw FNV has a known weakness for inputs differing
// only in their last byte — the outputs differ by a small multiple of the
// FNV prime (≈2⁴⁰), which clusters them within 1/65536 of the key space and
// skews any structure partitioned on high bits (trie leaves, ring arcs).
// The finalizer restores full avalanche. The paper does not prescribe a
// hash function.
func HashString(s string) Key {
	h := fnv.New64a()
	// fnv's Write never fails.
	h.Write([]byte(s))
	return Key(mix64(h.Sum64()))
}

// mix64 is the splitmix64 finalizer: a full-avalanche 64-bit permutation.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Bit returns the i-th most significant bit of k as 0 or 1. i must be in
// [0, Bits).
func (k Key) Bit(i int) byte {
	if i < 0 || i >= Bits {
		panic(fmt.Sprintf("keyspace: bit index %d out of [0,%d)", i, Bits))
	}
	return byte(k>>(Bits-1-i)) & 1
}

// BitString returns the n most significant bits of k as a string of '0' and
// '1' runes — the representation used for trie paths.
func (k Key) BitString(n int) string {
	if n < 0 || n > Bits {
		panic(fmt.Sprintf("keyspace: bit-string length %d out of [0,%d]", n, Bits))
	}
	var b strings.Builder
	b.Grow(n)
	for i := 0; i < n; i++ {
		b.WriteByte('0' + k.Bit(i))
	}
	return b.String()
}

// HasPrefix reports whether the binary expansion of k starts with path, a
// string of '0'/'1' runes. An empty path matches every key. It panics on a
// malformed path because a typo'd path would silently misroute every lookup.
func (k Key) HasPrefix(path string) bool {
	for i := 0; i < len(path); i++ {
		if c := path[i]; c != '0' && c != '1' {
			panic(fmt.Sprintf("keyspace: malformed path %q at index %d", path, i))
		}
	}
	if len(path) > Bits {
		return false
	}
	for i := 0; i < len(path); i++ {
		if k.Bit(i) != path[i]-'0' {
			return false
		}
	}
	return true
}

// String renders the key as fixed-width hex, so logs sort lexically in key
// order.
func (k Key) String() string { return fmt.Sprintf("%016x", uint64(k)) }

// ValidPath reports whether path is a well-formed binary path: only '0' and
// '1' runes and no longer than the key space.
func ValidPath(path string) bool {
	if len(path) > Bits {
		return false
	}
	for i := 0; i < len(path); i++ {
		if path[i] != '0' && path[i] != '1' {
			return false
		}
	}
	return true
}

// CommonPrefixLen returns the length of the longest common prefix of two
// binary paths.
func CommonPrefixLen(a, b string) int {
	n := min(len(a), len(b))
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// FlipAt returns path with the bit at index i flipped and truncated to i+1
// bits: the complementary subtree at level i, which is exactly the region a
// trie routing entry at level i must cover. i must be in [0, len(path)).
func FlipAt(path string, i int) string {
	if i < 0 || i >= len(path) {
		panic(fmt.Sprintf("keyspace: FlipAt index %d out of [0,%d)", i, len(path)))
	}
	b := []byte(path[:i+1])
	if b[i] == '0' {
		b[i] = '1'
	} else {
		b[i] = '0'
	}
	return string(b)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
