package keyspace

import "sort"

// This file is the replica-ranking half of the key space: a total,
// deterministic "closeness" order of peers around a key, which
// internal/replica uses to place the r replicas of an index entry and to
// fix the failover order reads walk. Peers are mapped into the key space by
// hashing their address (HashString), so every node that knows the same
// membership list derives the same ranking with no extra protocol.

// RingDistance returns the clockwise distance from a to b in the key ring:
// how far a successor-walk starting just after a travels before reaching b.
// The key space wraps, so the distance is asymmetric — RingDistance(a, b)
// and RingDistance(b, a) sum to 2⁶⁴ for distinct points — which is exactly
// what successor-style placement wants: each key has one nearest point in
// each direction, and ranking by clockwise distance yields a total order
// with no equidistant pairs (short of hash collisions).
func RingDistance(a, b Key) uint64 {
	return uint64(b) - uint64(a)
}

// RankClosest returns the indices of points ordered by ascending clockwise
// distance from key — the replica ranking: points[result[0]] is the first
// successor of key on the ring, points[result[1]] the next, and so on.
// Ties (colliding points) break by index, keeping the order total and
// deterministic. The input is not modified.
func RankClosest(key Key, points []Key) []int {
	out := make([]int, len(points))
	for i := range out {
		out[i] = i
	}
	sort.SliceStable(out, func(x, y int) bool {
		dx := RingDistance(key, points[out[x]])
		dy := RingDistance(key, points[out[y]])
		if dx != dy {
			return dx < dy
		}
		return out[x] < out[y]
	})
	return out
}
