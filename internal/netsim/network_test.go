package netsim

import (
	"math/rand/v2"
	"testing"

	"pdht/internal/stats"
)

func TestNewAllOnline(t *testing.T) {
	nw := New(10)
	if nw.Size() != 10 {
		t.Errorf("Size = %d, want 10", nw.Size())
	}
	if nw.OnlineCount() != 10 {
		t.Errorf("OnlineCount = %d, want 10", nw.OnlineCount())
	}
	for i := 0; i < 10; i++ {
		if !nw.Online(PeerID(i)) {
			t.Errorf("peer %d should start online", i)
		}
	}
}

func TestNewInvalidSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0)
}

func TestSetOnlineMaintainsCount(t *testing.T) {
	nw := New(5)
	nw.SetOnline(2, false)
	if nw.OnlineCount() != 4 {
		t.Errorf("OnlineCount = %d, want 4", nw.OnlineCount())
	}
	// Idempotent.
	nw.SetOnline(2, false)
	if nw.OnlineCount() != 4 {
		t.Errorf("OnlineCount after repeat = %d, want 4", nw.OnlineCount())
	}
	nw.SetOnline(2, true)
	if nw.OnlineCount() != 5 {
		t.Errorf("OnlineCount = %d, want 5", nw.OnlineCount())
	}
}

func TestPeerRangeChecks(t *testing.T) {
	nw := New(3)
	for _, p := range []PeerID{-1, 3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Online(%d) did not panic", p)
				}
			}()
			nw.Online(p)
		}()
	}
}

func TestRounds(t *testing.T) {
	nw := New(2)
	if nw.Round() != 0 {
		t.Errorf("initial round = %d", nw.Round())
	}
	if r := nw.AdvanceRound(); r != 1 || nw.Round() != 1 {
		t.Errorf("AdvanceRound = %d, Round = %d", r, nw.Round())
	}
}

func TestSendCounts(t *testing.T) {
	nw := New(2)
	nw.Send(stats.MsgBroadcast, 7)
	nw.Send(stats.MsgIndexLookup, 3)
	if got := nw.Counters().Get(stats.MsgBroadcast); got != 7 {
		t.Errorf("broadcast count = %d, want 7", got)
	}
	if got := nw.Counters().Total(); got != 10 {
		t.Errorf("total = %d, want 10", got)
	}
}

func TestRandomOnline(t *testing.T) {
	nw := New(10)
	rng := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 10; i++ {
		if i != 4 {
			nw.SetOnline(PeerID(i), false)
		}
	}
	for i := 0; i < 50; i++ {
		p, ok := nw.RandomOnline(rng)
		if !ok || p != 4 {
			t.Fatalf("RandomOnline = %d,%v — only peer 4 is online", p, ok)
		}
	}
	nw.SetOnline(4, false)
	if _, ok := nw.RandomOnline(rng); ok {
		t.Error("RandomOnline reported success on a dead network")
	}
}

func TestRandomOnlineUniformish(t *testing.T) {
	nw := New(4)
	rng := rand.New(rand.NewPCG(3, 4))
	counts := make([]int, 4)
	const n = 8000
	for i := 0; i < n; i++ {
		p, ok := nw.RandomOnline(rng)
		if !ok {
			t.Fatal("network is fully online")
		}
		counts[p]++
	}
	for i, c := range counts {
		if c < n/8 || c > n/2 {
			t.Errorf("peer %d drawn %d times of %d — far from uniform", i, c, n)
		}
	}
}
