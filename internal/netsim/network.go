// Package netsim is the in-memory network fabric underneath the simulator:
// a population of peers with online/offline state, a round clock (one round
// = one second, as in the paper), and message accounting by class.
//
// The paper's unit of cost is messages sent per round; latency, bandwidth
// and loss are outside its model. Accordingly, netsim does not deliver
// payloads asynchronously — overlay algorithms walk the topology directly
// and report every message they would have sent to the network's counters,
// which is exactly the quantity Figures 1–4 plot. Network is the
// population; PeerID names one peer within it.
package netsim

import (
	"fmt"
	"math/rand/v2"

	"pdht/internal/stats"
)

// PeerID identifies a peer: an index in [0, Size()).
type PeerID int

// Network is the peer population. It is not safe for concurrent mutation;
// the simulator is round-driven and single-threaded by design so that runs
// are reproducible from a seed.
type Network struct {
	online   []bool
	nOnline  int
	round    int
	counters stats.Counters
}

// New returns a network of n peers, all online.
func New(n int) *Network {
	if n <= 0 {
		panic(fmt.Sprintf("netsim: network size %d must be positive", n))
	}
	online := make([]bool, n)
	for i := range online {
		online[i] = true
	}
	return &Network{online: online, nOnline: n}
}

// Size returns the total number of peers, online or not.
func (nw *Network) Size() int { return len(nw.online) }

// Online reports whether p is currently online.
func (nw *Network) Online(p PeerID) bool {
	nw.check(p)
	return nw.online[p]
}

// SetOnline flips p's liveness.
func (nw *Network) SetOnline(p PeerID, on bool) {
	nw.check(p)
	if nw.online[p] == on {
		return
	}
	nw.online[p] = on
	if on {
		nw.nOnline++
	} else {
		nw.nOnline--
	}
}

// OnlineCount returns the number of peers currently online.
func (nw *Network) OnlineCount() int { return nw.nOnline }

// Round returns the current round number, starting at 0.
func (nw *Network) Round() int { return nw.round }

// AdvanceRound moves the clock forward one round and returns the new round.
func (nw *Network) AdvanceRound() int {
	nw.round++
	return nw.round
}

// Send records n messages of the given class. Every overlay algorithm calls
// this for each message it would have put on the wire.
func (nw *Network) Send(class stats.MsgClass, n int64) {
	nw.counters.Add(class, n)
}

// Counters exposes the cumulative message counters.
func (nw *Network) Counters() *stats.Counters { return &nw.counters }

// RandomOnline returns a uniformly random online peer. ok is false if the
// whole network is offline.
func (nw *Network) RandomOnline(rng *rand.Rand) (PeerID, bool) {
	if nw.nOnline == 0 {
		return 0, false
	}
	// Rejection sampling: with realistic online fractions (≥ a few
	// percent) this terminates in a handful of draws; the deterministic
	// fallback below guards the pathological case.
	for tries := 0; tries < 64; tries++ {
		p := PeerID(rng.IntN(len(nw.online)))
		if nw.online[p] {
			return p, true
		}
	}
	start := rng.IntN(len(nw.online))
	for i := 0; i < len(nw.online); i++ {
		p := PeerID((start + i) % len(nw.online))
		if nw.online[p] {
			return p, true
		}
	}
	return 0, false
}

func (nw *Network) check(p PeerID) {
	if p < 0 || int(p) >= len(nw.online) {
		panic(fmt.Sprintf("netsim: peer %d out of range [0,%d)", p, len(nw.online)))
	}
}
