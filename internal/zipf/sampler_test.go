package zipf

import (
	"math"
	"math/rand/v2"
	"testing"
)

func newTestSampler(alpha float64, keys int, seed uint64) *Sampler {
	return NewSampler(MustNew(alpha, keys), rand.New(rand.NewPCG(seed, seed^0x9e3779b9)))
}

func TestSamplerMatchesPMF(t *testing.T) {
	s := newTestSampler(1.2, 100, 7)
	const n = 200000
	counts := make([]int, 101)
	for i := 0; i < n; i++ {
		counts[s.SampleRank()]++
	}
	d := s.Dist()
	// Compare empirical frequency with PMF for the head ranks, where
	// counts are large enough for a tight bound.
	for r := 1; r <= 10; r++ {
		want := d.PMF(r)
		got := float64(counts[r]) / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("rank %d: empirical %v vs PMF %v", r, got, want)
		}
	}
	// And the head mass of the top 10 ranks.
	var head float64
	for r := 1; r <= 10; r++ {
		head += float64(counts[r]) / n
	}
	if math.Abs(head-d.HeadMass(10)) > 0.01 {
		t.Errorf("head mass empirical %v vs %v", head, d.HeadMass(10))
	}
}

func TestSamplerDeterministic(t *testing.T) {
	a := newTestSampler(1.2, 1000, 42)
	b := newTestSampler(1.2, 1000, 42)
	for i := 0; i < 1000; i++ {
		if x, y := a.Sample(), b.Sample(); x != y {
			t.Fatalf("sample %d diverged: %d vs %d", i, x, y)
		}
	}
}

func TestSampleIdentityMapping(t *testing.T) {
	s := newTestSampler(1.2, 50, 3)
	for i := 0; i < 500; i++ {
		k := s.Sample()
		if k < 0 || k >= 50 {
			t.Fatalf("sample %d out of range", k)
		}
	}
	if s.KeyAtRank(1) != 0 || s.KeyAtRank(50) != 49 {
		t.Error("identity mapping should map rank r to key r-1")
	}
	if s.KeyAtRank(0) != -1 || s.KeyAtRank(51) != -1 {
		t.Error("out-of-range rank should map to -1")
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	s := newTestSampler(1.2, 200, 11)
	s.Shuffle()
	seen := make(map[int]bool, 200)
	for r := 1; r <= 200; r++ {
		k := s.KeyAtRank(r)
		if k < 0 || k >= 200 {
			t.Fatalf("KeyAtRank(%d) = %d out of range", r, k)
		}
		if seen[k] {
			t.Fatalf("key %d appears twice after Shuffle", k)
		}
		seen[k] = true
	}
}

func TestShuffleChangesHead(t *testing.T) {
	s := newTestSampler(1.2, 10000, 5)
	before := s.KeyAtRank(1)
	s.Shuffle()
	// With 10,000 keys the probability the same key keeps rank 1 is 1e-4;
	// with this fixed seed it does not.
	if s.KeyAtRank(1) == before {
		t.Error("Shuffle left rank 1 unchanged (astronomically unlikely with this seed)")
	}
}

func TestShiftHeadRotates(t *testing.T) {
	s := newTestSampler(1.2, 10, 1)
	s.ShiftHead(4)
	// Identity [0 1 2 3 ...] rotated in the head: rank1→key1, rank2→key2,
	// rank3→key3, rank4→key0, tail unchanged.
	want := []int{1, 2, 3, 0, 4, 5, 6, 7, 8, 9}
	for r := 1; r <= 10; r++ {
		if got := s.KeyAtRank(r); got != want[r-1] {
			t.Errorf("after ShiftHead(4): KeyAtRank(%d) = %d, want %d", r, got, want[r-1])
		}
	}
	// Rotating the full head n times restores identity.
	s2 := newTestSampler(1.2, 6, 1)
	for i := 0; i < 6; i++ {
		s2.ShiftHead(6)
	}
	for r := 1; r <= 6; r++ {
		if s2.KeyAtRank(r) != r-1 {
			t.Errorf("6 rotations of 6: KeyAtRank(%d) = %d, want %d", r, s2.KeyAtRank(r), r-1)
		}
	}
}

func TestShiftHeadDegenerate(t *testing.T) {
	s := newTestSampler(1.2, 5, 1)
	s.ShiftHead(1) // no-op
	s.ShiftHead(0)
	s.ShiftHead(-3)
	for r := 1; r <= 5; r++ {
		if s.KeyAtRank(r) != r-1 {
			t.Error("ShiftHead(n<2) must be a no-op")
		}
	}
	s.ShiftHead(99) // clamped to keys
	if s.KeyAtRank(5) != 0 {
		t.Error("ShiftHead clamps n to keys and rotates")
	}
}

func BenchmarkSampleRank(b *testing.B) {
	s := newTestSampler(1.2, 40000, 9)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.SampleRank()
	}
}
