package zipf

import "math/rand/v2"

// Sampler draws ranks from a Distribution using inverse-CDF sampling with a
// caller-supplied random source, so workloads are reproducible from a seed.
//
// A Sampler additionally supports a rank permutation, which the
// flash-crowd/shift workloads use to change *which* key holds each
// popularity rank without changing the popularity shape — the scenario the
// paper's selection algorithm must adapt to (§5.2, §6).
type Sampler struct {
	dist *Distribution
	rng  *rand.Rand
	perm []int // perm[rank-1] = key index in [0, keys); nil means identity
}

// NewSampler returns a sampler over d driven by rng. rng must not be shared
// with another concurrent consumer.
func NewSampler(d *Distribution, rng *rand.Rand) *Sampler {
	return &Sampler{dist: d, rng: rng}
}

// Dist returns the underlying distribution.
func (s *Sampler) Dist() *Distribution { return s.dist }

// SampleRank draws a popularity rank in [1, keys].
func (s *Sampler) SampleRank() int {
	return s.dist.RankFor(s.rng.Float64())
}

// Sample draws a key index in [0, keys): the key currently occupying the
// sampled popularity rank under the active permutation.
func (s *Sampler) Sample() int {
	rank := s.SampleRank()
	if s.perm == nil {
		return rank - 1
	}
	return s.perm[rank-1]
}

// KeyAtRank returns the key index occupying the given rank under the active
// permutation. Rank is 1-based.
func (s *Sampler) KeyAtRank(rank int) int {
	if rank < 1 || rank > s.dist.Keys() {
		return -1
	}
	if s.perm == nil {
		return rank - 1
	}
	return s.perm[rank-1]
}

// Shuffle installs a fresh uniformly random rank→key permutation, modelling a
// complete change in query popularity (every key gets a new rank).
func (s *Sampler) Shuffle() {
	n := s.dist.Keys()
	if s.perm == nil {
		s.perm = make([]int, n)
		for i := range s.perm {
			s.perm[i] = i
		}
	}
	s.rng.Shuffle(n, func(i, j int) { s.perm[i], s.perm[j] = s.perm[j], s.perm[i] })
}

// ShiftHead rotates the keys occupying the top n ranks by one position,
// modelling a gradual popularity drift: yesterday's #1 becomes #n, everyone
// else moves up one. n is clamped to [2, keys]; n < 2 is a no-op.
func (s *Sampler) ShiftHead(n int) {
	keys := s.dist.Keys()
	if n > keys {
		n = keys
	}
	if n < 2 {
		return
	}
	if s.perm == nil {
		s.perm = make([]int, keys)
		for i := range s.perm {
			s.perm[i] = i
		}
	}
	first := s.perm[0]
	copy(s.perm[0:n-1], s.perm[1:n])
	s.perm[n-1] = first
}
