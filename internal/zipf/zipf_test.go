package zipf

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	cases := []struct {
		alpha float64
		keys  int
		ok    bool
	}{
		{1.2, 40000, true},
		{0, 10, true},
		{1.2, 0, false},
		{1.2, -5, false},
		{-0.1, 10, false},
		{math.NaN(), 10, false},
		{math.Inf(1), 10, false},
	}
	for _, c := range cases {
		_, err := New(c.alpha, c.keys)
		if (err == nil) != c.ok {
			t.Errorf("New(%v, %d): err=%v, want ok=%v", c.alpha, c.keys, err, c.ok)
		}
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew(-1, 0) did not panic")
		}
	}()
	MustNew(-1, 0)
}

func TestPMFNormalization(t *testing.T) {
	for _, alpha := range []float64{0, 0.5, 1.0, 1.2, 2.0} {
		d := MustNew(alpha, 1000)
		var sum float64
		for r := 1; r <= d.Keys(); r++ {
			sum += d.PMF(r)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("alpha=%v: PMF sums to %v, want 1", alpha, sum)
		}
	}
}

func TestPMFMonotoneDecreasing(t *testing.T) {
	d := MustNew(1.2, 500)
	for r := 2; r <= d.Keys(); r++ {
		if d.PMF(r) > d.PMF(r-1) {
			t.Fatalf("PMF(%d)=%v > PMF(%d)=%v", r, d.PMF(r), r-1, d.PMF(r-1))
		}
	}
}

func TestPMFOutOfRange(t *testing.T) {
	d := MustNew(1.2, 10)
	if d.PMF(0) != 0 || d.PMF(11) != 0 || d.PMF(-3) != 0 {
		t.Error("out-of-range ranks must have probability 0")
	}
}

func TestUniformCase(t *testing.T) {
	d := MustNew(0, 4)
	for r := 1; r <= 4; r++ {
		if math.Abs(d.PMF(r)-0.25) > 1e-12 {
			t.Errorf("alpha=0: PMF(%d)=%v, want 0.25", r, d.PMF(r))
		}
	}
}

func TestCDFBoundsAndMonotone(t *testing.T) {
	d := MustNew(1.2, 200)
	if d.CDF(0) != 0 {
		t.Errorf("CDF(0)=%v, want 0", d.CDF(0))
	}
	if d.CDF(200) != 1 {
		t.Errorf("CDF(keys)=%v, want 1", d.CDF(200))
	}
	if d.CDF(9999) != 1 {
		t.Errorf("CDF beyond keys = %v, want 1", d.CDF(9999))
	}
	prev := 0.0
	for r := 1; r <= 200; r++ {
		c := d.CDF(r)
		if c < prev {
			t.Fatalf("CDF(%d)=%v < CDF(%d)=%v", r, c, r-1, prev)
		}
		prev = c
	}
}

func TestHeadMassMatchesPaperIntuition(t *testing.T) {
	// With α=1.2 over 40,000 keys the head is heavy: the top 1% of keys
	// must cover well over half the query mass (this is why a small index
	// answers most queries — Fig. 3).
	d := MustNew(1.2, 40000)
	if hm := d.HeadMass(400); hm < 0.55 {
		t.Errorf("HeadMass(400) = %v, want > 0.55", hm)
	}
	if hm := d.HeadMass(40000); math.Abs(hm-1) > 1e-12 {
		t.Errorf("HeadMass(all) = %v, want 1", hm)
	}
}

func TestQueryProb(t *testing.T) {
	d := MustNew(1.2, 40000)
	// Busy round from the paper: 20,000 peers, fQry = 1/30 → ~667
	// queries/round. The top key is all but certain to be queried.
	if p := d.QueryProb(1, 20000.0/30.0); p < 0.999999 {
		t.Errorf("QueryProb(1, 667) = %v, want ≈1", p)
	}
	// A deep-tail key is almost never queried.
	if p := d.QueryProb(40000, 20000.0/30.0); p > 0.01 {
		t.Errorf("QueryProb(40000, 667) = %v, want small", p)
	}
	// Degenerate inputs.
	if d.QueryProb(1, 0) != 0 || d.QueryProb(0, 100) != 0 {
		t.Error("QueryProb must be 0 for zero load or invalid rank")
	}
}

func TestQueryProbAgainstNaiveFormula(t *testing.T) {
	d := MustNew(1.0, 100)
	for _, rank := range []int{1, 10, 100} {
		for _, q := range []float64{1, 10, 500.5} {
			p := d.PMF(rank)
			naive := 1 - math.Pow(1-p, q)
			got := d.QueryProb(rank, q)
			if math.Abs(got-naive) > 1e-9 {
				t.Errorf("QueryProb(%d,%v)=%v, naive=%v", rank, q, got, naive)
			}
		}
	}
}

func TestQueryProbMonotoneInRank(t *testing.T) {
	d := MustNew(1.2, 1000)
	prev := math.Inf(1)
	for r := 1; r <= 1000; r++ {
		p := d.QueryProb(r, 50)
		if p > prev+1e-15 {
			t.Fatalf("QueryProb increased at rank %d: %v > %v", r, p, prev)
		}
		prev = p
	}
}

func TestRankForInverts(t *testing.T) {
	d := MustNew(1.2, 1000)
	if d.RankFor(0) != 1 || d.RankFor(-1) != 1 {
		t.Error("RankFor(≤0) must be 1")
	}
	if d.RankFor(1) != d.Keys() || d.RankFor(2) != d.Keys() {
		t.Error("RankFor(≥1) must be keys")
	}
	// For any u strictly inside a rank's CDF interval, RankFor must
	// return that rank.
	for r := 1; r <= 1000; r += 37 {
		lo, hi := d.CDF(r-1), d.CDF(r)
		mid := (lo + hi) / 2
		if got := d.RankFor(mid); got != r {
			t.Errorf("RankFor(%v) = %d, want %d", mid, got, r)
		}
	}
}

// Property: RankFor(u) always returns the smallest rank with CDF(rank) ≥ u.
func TestRankForProperty(t *testing.T) {
	d := MustNew(1.2, 257)
	f := func(raw float64) bool {
		u := math.Mod(math.Abs(raw), 1)
		r := d.RankFor(u)
		if r < 1 || r > d.Keys() {
			return false
		}
		if d.CDF(r) < u {
			return false
		}
		if r > 1 && d.CDF(r-1) >= u && u > 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
