package zipf

import (
	"fmt"
	"math"
	"sort"
)

// EstimateAlpha fits a Zipf exponent to observed per-key query counts by
// maximum likelihood. counts holds how often each key was queried (any
// order; zeros allowed); keys is the size of the key universe the
// distribution is defined over, which may exceed len(counts) when unqueried
// keys were never observed individually.
//
// This closes the loop the paper leaves open ("refinements of the
// analytical model", §6): a deployment can observe its own query stream,
// recover α, and feed model.Solve with the measured skew instead of the
// [Srip01] constant.
//
// The estimator assigns ranks by sorting counts descending and maximizes
//
//	L(α) = −α·Σ cᵢ·ln(rankᵢ) − N·ln H(keys, α)
//
// with golden-section search over α ∈ [0, 8]. It needs at least two
// distinct observed counts; a flat profile is reported as α = 0.
func EstimateAlpha(counts []int, keys int) (float64, error) {
	if keys < 2 {
		return 0, fmt.Errorf("zipf: need at least 2 keys, got %d", keys)
	}
	if len(counts) > keys {
		return 0, fmt.Errorf("zipf: %d counts exceed %d keys", len(counts), keys)
	}
	sorted := append([]int(nil), counts...)
	sort.Sort(sort.Reverse(sort.IntSlice(sorted)))

	var total float64
	var weighted float64 // Σ cᵢ·ln(rankᵢ)
	for i, c := range sorted {
		if c < 0 {
			return 0, fmt.Errorf("zipf: negative count %d", c)
		}
		if c == 0 {
			break // sorted: everything after is zero too
		}
		total += float64(c)
		weighted += float64(c) * math.Log(float64(i+1))
	}
	if total == 0 {
		return 0, fmt.Errorf("zipf: no observations")
	}

	negLL := func(alpha float64) float64 {
		return alpha*weighted + total*math.Log(harmonic(keys, alpha))
	}
	return goldenMin(negLL, 0, 8, 1e-4), nil
}

// harmonic computes the generalized harmonic number H(n, α).
func harmonic(n int, alpha float64) float64 {
	var h float64
	for x := 1; x <= n; x++ {
		h += math.Pow(float64(x), -alpha)
	}
	return h
}

// goldenMin minimizes a unimodal function on [lo, hi] to the given
// tolerance by golden-section search.
func goldenMin(f func(float64) float64, lo, hi, tol float64) float64 {
	const phi = 0.6180339887498949 // (√5−1)/2
	a, b := lo, hi
	c := b - phi*(b-a)
	d := a + phi*(b-a)
	fc, fd := f(c), f(d)
	for b-a > tol {
		if fc < fd {
			b, d, fd = d, c, fc
			c = b - phi*(b-a)
			fc = f(c)
		} else {
			a, c, fc = c, d, fd
			d = a + phi*(b-a)
			fd = f(d)
		}
	}
	return (a + b) / 2
}
