package zipf

import (
	"math"
	"math/rand/v2"
	"testing"
)

// sampleCounts draws n queries from a Zipf(alpha, keys) and returns per-key
// counts.
func sampleCounts(alpha float64, keys, n int, seed uint64) []int {
	s := NewSampler(MustNew(alpha, keys), rand.New(rand.NewPCG(seed, seed^0xb00)))
	counts := make([]int, keys)
	for i := 0; i < n; i++ {
		counts[s.Sample()]++
	}
	return counts
}

func TestEstimateAlphaRecoversTruth(t *testing.T) {
	for _, alpha := range []float64{0.6, 1.0, 1.2, 1.8} {
		counts := sampleCounts(alpha, 2000, 200000, 7)
		got, err := EstimateAlpha(counts, 2000)
		if err != nil {
			t.Fatalf("alpha=%v: %v", alpha, err)
		}
		if math.Abs(got-alpha) > 0.06 {
			t.Errorf("alpha=%v: estimated %v", alpha, got)
		}
	}
}

func TestEstimateAlphaUniform(t *testing.T) {
	counts := make([]int, 500)
	for i := range counts {
		counts[i] = 100 // perfectly flat
	}
	got, err := EstimateAlpha(counts, 500)
	if err != nil {
		t.Fatal(err)
	}
	if got > 0.02 {
		t.Errorf("flat profile estimated as α=%v, want ≈0", got)
	}
}

func TestEstimateAlphaTruncatedObservationBiasesUp(t *testing.T) {
	// When only the head of the workload is observed (tail queries were
	// never seen), the dropped tail mass reads as extra skew: the MLE
	// overestimates α, and must never underestimate it. Deployments
	// should feed the estimator complete per-key counts where possible.
	counts := sampleCounts(1.2, 2000, 100000, 9)
	head := counts[:200]
	got, err := EstimateAlpha(head, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if got < 1.2 {
		t.Errorf("truncated observation underestimated α: %v", got)
	}
	if got > 1.6 {
		t.Errorf("truncation bias implausibly large: α=%v", got)
	}
}

func TestEstimateAlphaErrors(t *testing.T) {
	if _, err := EstimateAlpha([]int{1, 2}, 1); err == nil {
		t.Error("keys<2 accepted")
	}
	if _, err := EstimateAlpha([]int{1, 2, 3}, 2); err == nil {
		t.Error("more counts than keys accepted")
	}
	if _, err := EstimateAlpha([]int{0, 0}, 10); err == nil {
		t.Error("no observations accepted")
	}
	if _, err := EstimateAlpha([]int{3, -1}, 10); err == nil {
		t.Error("negative count accepted")
	}
}

func TestGoldenMin(t *testing.T) {
	min := goldenMin(func(x float64) float64 { return (x - 2.5) * (x - 2.5) }, 0, 8, 1e-6)
	if math.Abs(min-2.5) > 1e-4 {
		t.Errorf("goldenMin = %v, want 2.5", min)
	}
}

func BenchmarkEstimateAlpha(b *testing.B) {
	counts := sampleCounts(1.2, 2000, 100000, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EstimateAlpha(counts, 2000); err != nil {
			b.Fatal(err)
		}
	}
}
