// Package zipf implements the Zipf query-popularity distribution the paper
// assumes throughout (eq. 3): the probability of a query for the key at
// position rank is rank^−α normalized over the `keys` unique keys in the
// system. α = 1.2 is the value observed for Gnutella queries [Srip01] and is
// the paper's default.
//
// The package provides both the exact distribution (PMF, CDF, head mass —
// the sums behind equations 3, 5, 14 and 15) and a deterministic inverse-CDF
// sampler used by the workload generators. Everything is precomputed at
// construction: with the paper's 40,000 keys a Distribution costs two
// float64 slices and all queries are O(1) or O(log keys).
package zipf

import (
	"fmt"
	"math"
)

// Distribution is a Zipf distribution over ranks 1..Keys() with exponent
// Alpha(). It is immutable after construction and safe for concurrent use.
type Distribution struct {
	alpha   float64
	keys    int
	weights []float64 // weights[i] = (i+1)^-alpha
	cum     []float64 // cum[i] = sum of weights[0..i]
	norm    float64   // cum[keys-1], the generalized harmonic number H(keys, alpha)
}

// New returns the Zipf distribution with the given exponent over keys ranks.
// alpha may be any non-negative value (alpha = 0 is the uniform
// distribution); keys must be positive.
func New(alpha float64, keys int) (*Distribution, error) {
	if keys <= 0 {
		return nil, fmt.Errorf("zipf: keys must be positive, got %d", keys)
	}
	if alpha < 0 || math.IsNaN(alpha) || math.IsInf(alpha, 0) {
		return nil, fmt.Errorf("zipf: alpha must be a non-negative finite number, got %v", alpha)
	}
	d := &Distribution{
		alpha:   alpha,
		keys:    keys,
		weights: make([]float64, keys),
		cum:     make([]float64, keys),
	}
	var sum float64
	for i := 0; i < keys; i++ {
		w := math.Pow(float64(i+1), -alpha)
		d.weights[i] = w
		sum += w
		d.cum[i] = sum
	}
	d.norm = sum
	return d, nil
}

// MustNew is New for statically known-good parameters; it panics on error.
func MustNew(alpha float64, keys int) *Distribution {
	d, err := New(alpha, keys)
	if err != nil {
		panic(err)
	}
	return d
}

// Alpha returns the exponent.
func (d *Distribution) Alpha() float64 { return d.alpha }

// Keys returns the number of ranks.
func (d *Distribution) Keys() int { return d.keys }

// Norm returns the normalization constant, the generalized harmonic number
// Σ_{x=1..keys} x^−α.
func (d *Distribution) Norm() float64 { return d.norm }

// PMF returns the probability of a query for the key at the given rank
// (eq. 3). Ranks are 1-based, following the paper; out-of-range ranks have
// probability 0.
func (d *Distribution) PMF(rank int) float64 {
	if rank < 1 || rank > d.keys {
		return 0
	}
	return d.weights[rank-1] / d.norm
}

// CDF returns the probability that a query targets rank ≤ the given rank.
// CDF(0) = 0 and CDF(keys) = 1.
func (d *Distribution) CDF(rank int) float64 {
	if rank < 1 {
		return 0
	}
	if rank >= d.keys {
		return 1
	}
	return d.cum[rank-1] / d.norm
}

// HeadMass returns the probability that a query targets one of the maxRank
// most popular keys: Σ_{x≤maxRank} x^−α / Σ_{x≤keys} x^−α. This is exactly
// pIndxd of eq. 5 when maxRank keys are indexed.
func (d *Distribution) HeadMass(maxRank int) float64 { return d.CDF(maxRank) }

// QueryProb is eq. 4: the probability that the key at rank is queried at
// least once per round, given that all peers together send totalQueries
// Zipf-distributed queries per round. totalQueries = numPeers · fQry and need
// not be an integer.
func (d *Distribution) QueryProb(rank int, totalQueries float64) float64 {
	p := d.PMF(rank)
	if p == 0 || totalQueries <= 0 {
		return 0
	}
	// 1 − (1−p)^q, computed via expm1/log1p to stay accurate when p is
	// tiny (deep-tail ranks) and q is large (busy rounds).
	return -math.Expm1(totalQueries * math.Log1p(-p))
}

// RankFor returns the smallest rank whose CDF is ≥ u, for u in [0,1]. It is
// the inverse-CDF used by the sampler and exposed for tests.
func (d *Distribution) RankFor(u float64) int {
	if u <= 0 {
		return 1
	}
	if u >= 1 {
		return d.keys
	}
	target := u * d.norm
	// Binary search for the first cum[i] ≥ target.
	lo, hi := 0, d.keys-1
	for lo < hi {
		mid := (lo + hi) / 2
		if d.cum[mid] < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo + 1
}
