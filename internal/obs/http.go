package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
)

// Handler builds the debug HTTP plane every node serves under -http:
//
//	/metrics      Prometheus text exposition of reg
//	/report       report() as JSON (the node's self-measurement)
//	/traces       traces() as JSON (the slow-query ring, newest first)
//	/healthz      200 "ok" — the liveness probe
//	/debug/pprof  the standard runtime profiles
//
// report and traces are called per request; nil disables the endpoint
// (404). The handler holds no state of its own, so one node can serve it on
// any mux or test server.
func Handler(reg *Registry, report func() any, traces func() any) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	if report != nil {
		mux.HandleFunc("/report", jsonEndpoint(func() any { return report() }))
	}
	if traces != nil {
		mux.HandleFunc("/traces", jsonEndpoint(func() any { return traces() }))
	}
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func jsonEndpoint(value func() any) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(value()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	}
}
