package obs

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHandlerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("pdht_node_queries_total", "Queries.").Add(3)
	h := Handler(reg,
		func() any { return map[string]int{"queries": 3} },
		func() any { return []QueryTrace{{Key: 1, Outcome: "hit"}} },
	)
	srv := httptest.NewServer(h)
	defer srv.Close()

	get := func(path string) (int, string, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
	}

	code, body, ctype := get("/metrics")
	if code != 200 {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.Contains(ctype, "version=0.0.4") {
		t.Errorf("/metrics content type %q", ctype)
	}
	if !strings.Contains(body, "pdht_node_queries_total 3") {
		t.Errorf("/metrics body missing counter:\n%s", body)
	}

	code, body, ctype = get("/report")
	if code != 200 || !strings.Contains(ctype, "application/json") {
		t.Fatalf("/report status %d type %q", code, ctype)
	}
	var report map[string]int
	if err := json.Unmarshal([]byte(body), &report); err != nil || report["queries"] != 3 {
		t.Errorf("/report body %q err %v", body, err)
	}

	code, body, _ = get("/traces")
	if code != 200 || !strings.Contains(body, `"outcome": "hit"`) {
		t.Errorf("/traces status %d body %q", code, body)
	}

	code, body, _ = get("/healthz")
	if code != 200 || body != "ok\n" {
		t.Errorf("/healthz status %d body %q", code, body)
	}

	if code, _, _ = get("/debug/pprof/cmdline"); code != 200 {
		t.Errorf("/debug/pprof/cmdline status %d", code)
	}
}

func TestHandlerNilEndpointsDisabled(t *testing.T) {
	srv := httptest.NewServer(Handler(NewRegistry(), nil, nil))
	defer srv.Close()
	for _, path := range []string{"/report", "/traces"} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 404 {
			t.Errorf("%s status %d, want 404 when disabled", path, resp.StatusCode)
		}
	}
}
