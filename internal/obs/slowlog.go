package obs

import (
	"sync"
	"time"
)

// SlowLog is the ring-buffered slow-query log: finished traces whose
// duration crossed the threshold, newest overwriting oldest. It answers the
// "what was slow during that churn storm" question without storing every
// query — the ring bounds memory, the threshold bounds write traffic.
type SlowLog struct {
	threshold time.Duration

	mu    sync.Mutex
	ring  []QueryTrace
	next  int
	count int    // live entries in the ring
	total uint64 // traces ever recorded (ring overflow visible)
}

// NewSlowLog returns a log keeping the last capacity traces at or above
// threshold. Capacity below 1 is clamped to 1.
func NewSlowLog(capacity int, threshold time.Duration) *SlowLog {
	if capacity < 1 {
		capacity = 1
	}
	return &SlowLog{threshold: threshold, ring: make([]QueryTrace, capacity)}
}

// Threshold returns the admission threshold.
func (l *SlowLog) Threshold() time.Duration { return l.threshold }

// Record admits t if it crossed the threshold, reporting whether it did.
func (l *SlowLog) Record(t QueryTrace) bool {
	if t.Duration < l.threshold {
		return false
	}
	l.mu.Lock()
	l.ring[l.next] = t
	l.next = (l.next + 1) % len(l.ring)
	if l.count < len(l.ring) {
		l.count++
	}
	l.total++
	l.mu.Unlock()
	return true
}

// Total returns how many traces were ever recorded, including those the
// ring has since overwritten.
func (l *SlowLog) Total() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Dump returns the retained traces, newest first.
func (l *SlowLog) Dump() []QueryTrace {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]QueryTrace, 0, l.count)
	for i := 1; i <= l.count; i++ {
		out = append(out, l.ring[(l.next-i+len(l.ring))%len(l.ring)])
	}
	return out
}
