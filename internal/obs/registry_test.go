package obs

import (
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry builds the registry the exposition golden file pins: one
// family of each kind, multi-series families, label escaping, histogram
// expansion, and the specials (+Inf, integer-valued floats).
func goldenRegistry() *Registry {
	r := NewRegistry()
	q := r.Counter("pdht_node_queries_total", "Queries answered by this node.")
	q.Add(41)
	q.Inc()
	r.Counter("pdht_transport_requests_total", "Outbound RPCs by operation.", L("op", "query")).Add(7)
	r.Counter("pdht_transport_requests_total", "Outbound RPCs by operation.", L("op", "insert")).Add(2)
	r.Counter("pdht_obs_escaped_total", "Label escaping.", L("path", `a\b"c`+"\nd")).Inc()
	g := r.Gauge("pdht_transport_inflight", "Outbound RPCs in flight.")
	g.Add(3)
	g.Dec()
	r.GaugeFunc("pdht_adapt_fmin", "Fitted indexing threshold fMin (queries/round).", func() float64 {
		return math.Inf(1)
	})
	r.GaugeFunc("pdht_adapt_keyttl", "Actuated keyTtl (rounds).", func() float64 { return 120 })
	h := r.Histogram("pdht_node_query_seconds", "Query latency by outcome.",
		[]float64{0.001, 0.01, 0.1}, L("outcome", "hit"))
	h.Observe(500 * time.Microsecond)
	h.Observe(2 * time.Millisecond)
	h.Observe(2 * time.Millisecond)
	h.Observe(time.Second) // overflows the ladder into +Inf
	// A DefBuckets histogram pins the default ladder itself — including the
	// sub-millisecond bounds loopback RPCs actually land in.
	d := r.Histogram("pdht_transport_request_seconds", "RPC round-trip latency.", nil)
	d.Observe(3 * time.Microsecond)
	d.Observe(40 * time.Microsecond)
	d.Observe(300 * time.Microsecond)
	return r
}

// TestWritePrometheusGolden pins the exposition format byte for byte:
// HELP/TYPE lines, name ordering, label escaping, histogram
// _bucket/_sum/_count expansion, +Inf rendering.
func TestWritePrometheusGolden(t *testing.T) {
	var b strings.Builder
	if err := goldenRegistry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "exposition.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if b.String() != string(want) {
		t.Errorf("exposition diverged from golden file;\ngot:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestRegistrationIsIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("pdht_x_total", "x", L("op", "a"))
	b := r.Counter("pdht_x_total", "x", L("op", "a"))
	if a != b {
		t.Error("same (name, labels) returned two counters")
	}
	c := r.Counter("pdht_x_total", "x", L("op", "b"))
	if a == c {
		t.Error("different labels returned the same counter")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Errorf("aliased counter reads %d, want 1", b.Value())
	}
}

func TestRegistrationKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("pdht_x_total", "x")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("pdht_x_total", "x")
}

func TestHistogramQuantiles(t *testing.T) {
	h := newHistogram([]float64{0.010, 0.100, 1.0})
	if _, ok := h.Quantile(0.5); ok {
		t.Error("empty histogram produced a quantile")
	}
	// 90 fast (≤10ms), 9 medium (≤100ms), 1 slow (≤1s).
	for i := 0; i < 90; i++ {
		h.Observe(5 * time.Millisecond)
	}
	for i := 0; i < 9; i++ {
		h.Observe(50 * time.Millisecond)
	}
	h.Observe(500 * time.Millisecond)
	if got := h.Count(); got != 100 {
		t.Fatalf("Count = %d, want 100", got)
	}
	p50, _ := h.Quantile(0.50)
	if p50 <= 0 || p50 > 10*time.Millisecond {
		t.Errorf("p50 = %v, want within the ≤10ms bucket", p50)
	}
	p99, _ := h.Quantile(0.99)
	if p99 <= 10*time.Millisecond || p99 > 100*time.Millisecond {
		t.Errorf("p99 = %v, want within the (10ms, 100ms] bucket", p99)
	}
	p999, _ := h.Quantile(0.999)
	if p999 <= 100*time.Millisecond || p999 > time.Second {
		t.Errorf("p99.9 = %v, want within the (100ms, 1s] bucket", p999)
	}
	// The overflow bucket clamps to the last finite bound.
	h2 := newHistogram([]float64{0.001})
	h2.Observe(time.Minute)
	if q, _ := h2.Quantile(0.5); q != time.Millisecond {
		t.Errorf("overflow quantile = %v, want clamp to 1ms", q)
	}
}

func TestEscapeLabel(t *testing.T) {
	for in, want := range map[string]string{
		`plain`:      `plain`,
		`a"b`:        `a\"b`,
		`a\b`:        `a\\b`,
		"a\nb":       `a\nb`,
		`mem-0:7070`: `mem-0:7070`,
	} {
		if got := escapeLabel(in); got != want {
			t.Errorf("escapeLabel(%q) = %q, want %q", in, got, want)
		}
	}
}
