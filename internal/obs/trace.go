package obs

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Leg is one step of a traced query: an index probe at a replica, the
// broadcast fan-out, the insert-gate verdict, a write or read-repair leg, a
// stale-view re-sync. Start is the offset from the query's begin, so a
// timeline renders without absolute clocks.
type Leg struct {
	// Name identifies the step: "probe", "broadcast", "insert-gate",
	// "insert", "refresh", "read-repair", "stale-view", "resync".
	Name string `json:"name"`
	// Target is the peer the leg talked to, empty for local decisions.
	Target string `json:"target,omitempty"`
	// Outcome is the leg's result: "hit", "miss", "answered", "gated",
	// "allowed", "ok", "failed", ...
	Outcome string `json:"outcome"`
	// Start is the offset from the trace begin; Duration the leg's own
	// elapsed time (zero for instantaneous decisions).
	Start    time.Duration `json:"start"`
	Duration time.Duration `json:"duration"`
	// Peer is set when the leg was recorded *server-side* by a remote
	// node and shipped back in the RPC response: the recording peer's
	// address. Empty for legs the querying client recorded itself. A
	// failover trace distinguishes "the client probed the backup" (Target
	// set, Peer empty) from "the backup looked the key up in its own
	// index" (Peer set) through this field.
	Peer string `json:"peer,omitempty"`
}

// Span is one server-side step of a remote operation, recorded by the
// serving node and returned in the RPC response when the request carried a
// TraceID. Start is the offset from the moment the server received the
// request, so the client can splice the span into its own timeline using
// only the call's start time — no cross-host clock comparison.
type Span struct {
	// Name identifies the step: "index-lookup", "insert", "refresh",
	// "content-lookup", "batch", "store-append".
	Name string `json:"name"`
	// Outcome is the step's result: "hit", "miss", "stored", "refused",
	// "ok", "missing", "stale-view", ...
	Outcome string `json:"outcome"`
	// Start is the offset from request receipt; Duration the step's own
	// elapsed time (zero for instantaneous sub-steps).
	Start    time.Duration `json:"start,omitempty"`
	Duration time.Duration `json:"dur,omitempty"`
}

// QueryTrace is one finished query's causality record: the key, the
// wall-clock span, the end-to-end outcome, and every leg in completion
// order. It is immutable once delivered — safe to retain, dump as JSON, or
// render with Timeline.
type QueryTrace struct {
	Key      uint64        `json:"key"`
	Begin    time.Time     `json:"begin"`
	Duration time.Duration `json:"duration"`
	// Outcome summarizes the query: "hit", "broadcast", "unanswered",
	// "gated", "error".
	Outcome string `json:"outcome"`
	Legs    []Leg  `json:"legs"`
}

// Timeline renders the trace as an indented per-leg timeline, one line per
// leg — what examples and the slow-query dump print for humans.
func (t QueryTrace) Timeline() string {
	var b strings.Builder
	fmt.Fprintf(&b, "query key=%d outcome=%s total=%s\n", t.Key, t.Outcome, t.Duration)
	for _, l := range t.Legs {
		b.WriteString("  ")
		if l.Peer != "" {
			// Server-side leg: indent one step under the client leg that
			// carried it and name the peer that recorded it.
			fmt.Fprintf(&b, "  @%s ", l.Peer)
		}
		b.WriteString(l.Name)
		if l.Target != "" {
			fmt.Fprintf(&b, " %s", l.Target)
		}
		fmt.Fprintf(&b, " → %s", l.Outcome)
		if l.Duration > 0 {
			fmt.Fprintf(&b, " (+%s, %s)", l.Start, l.Duration)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Trace is the live recorder a query carries while in flight. Legs may be
// recorded concurrently (write fan-outs run on parallel goroutines); Finish
// seals the trace into an immutable QueryTrace. The zero number of
// synchronization points on the query hot path is preserved by construction:
// a node only allocates a Trace when a hook or the slow-query log asks for
// one.
type Trace struct {
	key   uint64
	begin time.Time

	// wireID, when nonzero, is the sampled cluster-wide identifier the
	// query's RPCs carry in Request.TraceID: instrumented servers see it,
	// record server-side spans, and ship them back for stitching. Written
	// once before the first RPC leg, read concurrently afterwards.
	wireID atomic.Uint64

	mu   sync.Mutex
	legs []Leg
}

// NewTrace starts recording a query against key.
func NewTrace(key uint64) *Trace {
	return &Trace{key: key, begin: time.Now()}
}

// Leg records a step that started at start and just ended. Safe for
// concurrent use.
func (t *Trace) Leg(name, target, outcome string, start time.Time) {
	now := time.Now()
	l := Leg{
		Name: name, Target: target, Outcome: outcome,
		Start:    start.Sub(t.begin),
		Duration: now.Sub(start),
	}
	t.mu.Lock()
	t.legs = append(t.legs, l)
	t.mu.Unlock()
}

// Mark records an instantaneous decision (no duration), such as the
// insert-gate verdict.
func (t *Trace) Mark(name, target, outcome string) {
	l := Leg{Name: name, Target: target, Outcome: outcome, Start: time.Since(t.begin)}
	t.mu.Lock()
	t.legs = append(t.legs, l)
	t.mu.Unlock()
}

// SetWireID marks the trace for cluster-wide propagation: every RPC the
// query issues from now on carries id in Request.TraceID, and server-side
// spans returned in responses are stitched in via AddSpans. A zero id is
// ignored — zero on the wire means "not traced".
func (t *Trace) SetWireID(id uint64) {
	if id != 0 {
		t.wireID.Store(id)
	}
}

// WireID returns the propagation identifier, zero when the trace is local
// only (unsampled).
func (t *Trace) WireID() uint64 { return t.wireID.Load() }

// AddSpans splices server-side spans recorded by peer into the trace.
// callStart is the client-side time the RPC carrying them was issued; each
// span's receipt-relative offset is rebased onto it, so the stitched legs
// sort correctly against client-side legs without cross-host clocks (the
// network half of the RTT is attributed to the call, not the span). Safe
// for concurrent use.
func (t *Trace) AddSpans(peer string, callStart time.Time, spans []Span) {
	if len(spans) == 0 {
		return
	}
	base := callStart.Sub(t.begin)
	t.mu.Lock()
	for _, s := range spans {
		t.legs = append(t.legs, Leg{
			Name: s.Name, Outcome: s.Outcome, Peer: peer,
			Start:    base + s.Start,
			Duration: s.Duration,
		})
	}
	t.mu.Unlock()
}

// Finish seals the trace with the end-to-end outcome and returns the
// immutable record. The Trace must not be used afterwards.
func (t *Trace) Finish(outcome string) QueryTrace {
	t.mu.Lock()
	legs := t.legs
	t.legs = nil
	t.mu.Unlock()
	return QueryTrace{
		Key: t.key, Begin: t.begin,
		Duration: time.Since(t.begin),
		Outcome:  outcome, Legs: legs,
	}
}

// traceKey is the context key a Trace travels under.
type traceKey struct{}

// WithTrace attaches a live trace to ctx, so every layer a query passes
// through — replica fan-outs, stale-view recovery, transport retries — can
// record legs without threading a parameter.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFrom returns the trace attached to ctx, nil when the query is not
// being traced. The nil check is the hot path's only tracing cost.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}
