package obs

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

// fleetSnap builds one peer's snapshot from a real registry carrying the
// series BuildFleetReport reads, with constant gauge sources so the result
// is deterministic. hitLat/missLat land in the per-outcome latency
// histograms on an explicit ladder shared by every test peer.
func fleetSnap(addr string, queries, hits uint64, msgs, uptime, keyTtl, fMin, wal, alive float64, hitLat, missLat []time.Duration) Snapshot {
	r := NewRegistry()
	r.Counter(fleetQueries, "q").Add(queries)
	r.Counter(fleetHits, "h").Add(hits)
	if addr == "127.0.0.1:7090" {
		// Only the first fixture peer coordinates top-k queries; the others
		// exercise the omitempty path of the report row.
		r.Counter(fleetTopKQueries, "tq").Add(4)
		r.Counter(fleetTopKLegs, "tl").Add(10)
	}
	r.GaugeFunc(fleetMessages, "m", func() float64 { return msgs })
	r.GaugeFunc(fleetUptime, "u", func() float64 { return uptime })
	r.GaugeFunc(fleetKeyTtl, "t", func() float64 { return keyTtl })
	r.GaugeFunc(fleetFMin, "f", func() float64 { return fMin })
	r.GaugeFunc(fleetWALBytes, "w", func() float64 { return wal })
	r.GaugeFunc(fleetAlive, "a", func() float64 { return alive })
	ladder := []float64{0.001, 0.01, 0.1}
	hh := r.Histogram(fleetQuerySeconds, "l", ladder, L("outcome", "hit"))
	for _, d := range hitLat {
		hh.Observe(d)
	}
	mh := r.Histogram(fleetQuerySeconds, "l", ladder, L("outcome", "miss"))
	for _, d := range missLat {
		mh.Observe(d)
	}
	s := r.Snapshot()
	s.Addr = addr
	return s
}

// fleetTestSnaps is the three-peer fixture the merge and golden tests
// share: one adaptive durable peer, one static memory-only peer, and one
// peer whose tuner has not fitted yet (fMin = NaN, exercising the Special
// encoding end to end).
func fleetTestSnaps() []Snapshot {
	ms := func(n time.Duration) time.Duration { return n * time.Millisecond }
	return []Snapshot{
		fleetSnap("127.0.0.1:7090", 600, 480, 1500, 300, 118, 0.25, 4096, 3,
			[]time.Duration{ms(2), ms(2), ms(5)}, []time.Duration{ms(50)}),
		fleetSnap("127.0.0.1:7091", 300, 120, 1200, 300, 120, 0, 0, 3,
			[]time.Duration{ms(2)}, []time.Duration{ms(50), ms(50)}),
		fleetSnap("127.0.0.1:7092", 100, 25, 800, 200, 120, math.NaN(), 0, 2,
			nil, []time.Duration{ms(50)}),
	}
}

// TestMergeOrderIndependent pins the algebra ClusterReport depends on:
// merging per-peer snapshots is commutative and associative, so every
// member of a fleet computes the identical fleet view no matter which
// peers answered first.
func TestMergeOrderIndependent(t *testing.T) {
	a, b, c := fleetTestSnaps()[0], fleetTestSnaps()[1], fleetTestSnaps()[2]
	flat := Merge(a, b, c)
	perms := map[string]Snapshot{
		"cba":      Merge(c, b, a),
		"bac":      Merge(b, a, c),
		"(ab)c":    Merge(Merge(a, b), c),
		"a(bc)":    Merge(a, Merge(b, c)),
		"(cb)a":    Merge(Merge(c, b), a),
		"((ab)c)∅": Merge(Merge(Merge(a, b), c)),
	}
	for name, got := range perms {
		if !reflect.DeepEqual(flat.Points, got.Points) {
			t.Errorf("Merge %s diverged from Merge(a,b,c):\ngot  %+v\nwant %+v", name, got.Points, flat.Points)
		}
	}
	// Spot-check the sums behind the equality.
	if q, _ := flat.Value(fleetQueries); q != 1000 {
		t.Errorf("merged queries = %v, want 1000", q)
	}
	if h, _ := flat.Value(fleetHits); h != 625 {
		t.Errorf("merged hits = %v, want 625", h)
	}
	if f, _ := flat.Value(fleetFMin); !math.IsNaN(f) {
		t.Errorf("merged fMin = %v, want NaN (one peer has not fitted)", f)
	}
}

// TestMergeMismatchedLadderDegradesStickily: histograms with different
// bucket ladders cannot pool bucket-wise; the merge must keep exact
// Sum/Count totals, drop the buckets, and reach the same degraded point
// from every merge order.
func TestMergeMismatchedLadderDegradesStickily(t *testing.T) {
	mk := func(bounds []float64, obs ...time.Duration) Snapshot {
		r := NewRegistry()
		h := r.Histogram("pdht_x_seconds", "x", bounds)
		for _, d := range obs {
			h.Observe(d)
		}
		return r.Snapshot()
	}
	a := mk([]float64{0.001, 0.01}, 2*time.Millisecond)
	b := mk([]float64{0.001}, 500*time.Microsecond)
	c := mk([]float64{0.001, 0.01}, 20*time.Millisecond)

	want := Merge(a, b, c)
	if p := want.Points[0]; p.Bounds != nil || p.Counts != nil {
		t.Fatalf("mismatched ladders kept a bucket vector: %+v", p)
	}
	if p := want.Points[0]; p.Count != 3 {
		t.Errorf("degraded Count = %d, want 3", p.Count)
	}
	for name, got := range map[string]Snapshot{
		"c,a,b":   Merge(c, a, b),
		"(a,c),b": Merge(Merge(a, c), b), // a,c pool bucket-wise first, then degrade
		"(b,c),a": Merge(Merge(b, c), a),
	} {
		if !reflect.DeepEqual(want.Points, got.Points) {
			t.Errorf("Merge %s diverged:\ngot  %+v\nwant %+v", name, got.Points, want.Points)
		}
	}
}

// TestBuildFleetReportOrderIndependent: the report — rows, aggregates and
// pooled quantiles — is identical for every ordering of the per-peer
// snapshots.
func TestBuildFleetReportOrderIndependent(t *testing.T) {
	snaps := fleetTestSnaps()
	want := BuildFleetReport(snaps)
	for _, perm := range [][]int{{2, 1, 0}, {1, 2, 0}, {2, 0, 1}} {
		shuffled := make([]Snapshot, len(snaps))
		for i, j := range perm {
			shuffled[i] = snaps[j]
		}
		got := BuildFleetReport(shuffled)
		if !reflect.DeepEqual(want.Peers, got.Peers) {
			t.Errorf("perm %v: rows diverged:\ngot  %+v\nwant %+v", perm, got.Peers, want.Peers)
		}
		if got.P50 != want.P50 || got.P90 != want.P90 || got.P99 != want.P99 {
			t.Errorf("perm %v: quantiles diverged: got %v/%v/%v want %v/%v/%v",
				perm, got.P50, got.P90, got.P99, want.P50, want.P90, want.P99)
		}
		if got.MsgsPerQuery != want.MsgsPerQuery || got.HitRate != want.HitRate {
			t.Errorf("perm %v: aggregates diverged", perm)
		}
	}
	// The aggregates themselves.
	if want.Queries != 1000 || want.Hits != 625 {
		t.Errorf("fleet totals = %d/%d, want 1000/625", want.Queries, want.Hits)
	}
	if want.HitRate != 0.625 {
		t.Errorf("fleet hit rate = %v, want 0.625", want.HitRate)
	}
	if want.MsgsPerQuery != 3.5 {
		t.Errorf("fleet msgs/query = %v, want 3.5 (3500 msgs / 1000 queries)", want.MsgsPerQuery)
	}
	if want.KeyTtlMin != 118 || want.KeyTtlMax != 120 {
		t.Errorf("keyTtl spread = %v–%v, want 118–120", want.KeyTtlMin, want.KeyTtlMax)
	}
	// The NaN fMin peer must not poison the spread; only the fitted peer
	// counts.
	if want.FMinMin != 0.25 || want.FMinMax != 0.25 {
		t.Errorf("fMin spread = %v–%v, want 0.25–0.25", want.FMinMin, want.FMinMax)
	}
}

// TestFleetReportJSONGolden pins the report's wire shape — the contract
// pdht-top -once -json consumers script against — byte for byte.
func TestFleetReportJSONGolden(t *testing.T) {
	fr := BuildFleetReport(fleetTestSnaps())
	fr.PredictedMsgsPerQuery = 3.25 // the node layer's model fit rides along
	got, err := json.MarshalIndent(fr, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	golden := filepath.Join("testdata", "fleet_report.golden")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if string(got) != string(want) {
		t.Errorf("FleetReport JSON diverged from golden file;\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestSnapshotJSONRoundTripsSpecials: NaN and ±Inf gauge samples — a
// tuner's fMin before its first fit — must survive the OpStats JSON hop.
func TestSnapshotJSONRoundTripsSpecials(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("pdht_adapt_fmin", "f", func() float64 { return math.NaN() })
	r.GaugeFunc("pdht_x_up", "u", func() float64 { return math.Inf(1) })
	r.GaugeFunc("pdht_x_down", "d", func() float64 { return math.Inf(-1) })
	r.GaugeFunc("pdht_x_plain", "p", func() float64 { return 42 })
	b, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatalf("snapshot with non-finite gauges did not marshal: %v", err)
	}
	var back Snapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if v, ok := back.Value("pdht_adapt_fmin"); !ok || !math.IsNaN(v) {
		t.Errorf("fMin round-tripped to %v, want NaN", v)
	}
	if v, _ := back.Value("pdht_x_up"); !math.IsInf(v, 1) {
		t.Errorf("+Inf round-tripped to %v", v)
	}
	if v, _ := back.Value("pdht_x_down"); !math.IsInf(v, -1) {
		t.Errorf("-Inf round-tripped to %v", v)
	}
	if v, _ := back.Value("pdht_x_plain"); v != 42 {
		t.Errorf("plain gauge round-tripped to %v, want 42", v)
	}
}
