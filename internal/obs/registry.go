// Package obs is the live telemetry plane of the node subsystem: a
// zero-dependency metrics registry (atomic counters, gauges and fixed-bucket
// latency histograms, allocation-free on the hot path), a per-query trace
// that records every leg of the selection algorithm with its duration and
// outcome, a ring-buffered slow-query log, and the debug HTTP handler that
// exposes all of it — /metrics in Prometheus text exposition format
// (hand-rolled, no client library), /report and /traces as JSON, /healthz,
// and net/http/pprof.
//
// The paper's premise is that a peer steers itself from measurements of its
// own query stream; this package is where those measurements become
// scrapeable. internal/transport, internal/node, internal/gossip and
// internal/adapt each register their metrics here under the
// pdht_<layer>_<name> naming scheme (see DESIGN.md "Observability"), and
// node.Report becomes a view over the same registry the /metrics endpoint
// serves, so the two surfaces can never disagree.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one constant name="value" pair attached to a metric at
// registration time — the per-op and per-outcome dimensions of the
// exposition. Labels are fixed for the metric's lifetime; there is no
// dynamic label lookup on the hot path.
type Label struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// L is shorthand for building a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Counter is a monotonically increasing uint64. Inc and Add are single
// atomic operations: safe for concurrent use, zero allocations.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous int64 value — an in-flight count, a view
// version, an index size. All operations are single atomics.
type Gauge struct {
	v atomic.Int64
}

// Set installs an absolute value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Inc adds one; Dec subtracts one; Add adds delta.
func (g *Gauge) Inc()            { g.v.Add(1) }
func (g *Gauge) Dec()            { g.v.Add(-1) }
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefBuckets are the default latency histogram bounds, in seconds: 1µs to
// 10s in a coarse exponential ladder. The memory-transport hot path lands
// in the single-digit microseconds, TCP RPCs in the tens-to-hundreds, churn
// recovery and timeouts in the second decades; all three ends must resolve
// or test/bench quantiles collapse into one bucket.
var DefBuckets = []float64{
	.000001, .0000025, .000005, .00001, .000025,
	.00005, .0001, .00025, .0005, .001, .0025, .005, .01,
	.025, .05, .1, .25, .5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket latency histogram: cumulative-style Prometheus
// exposition, atomic per-bucket counts, quantile extraction by linear
// interpolation. Observe is a bucket scan plus three atomics — no locks, no
// allocations — so it can sit on the per-RPC hot path.
type Histogram struct {
	bounds []float64 // upper bounds in seconds, ascending
	counts []atomic.Uint64
	over   atomic.Uint64 // observations above the last bound (+Inf bucket)
	sumNs  atomic.Int64
	total  atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)),
	}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	s := d.Seconds()
	i := 0
	for i < len(h.bounds) && s > h.bounds[i] {
		i++
	}
	if i < len(h.counts) {
		h.counts[i].Add(1)
	} else {
		h.over.Add(1)
	}
	h.sumNs.Add(int64(d))
	h.total.Add(1)
}

// Count returns the number of observations; Sum their total duration.
func (h *Histogram) Count() uint64      { return h.total.Load() }
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sumNs.Load()) }

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear interpolation
// within the bucket that holds it, the standard fixed-bucket estimator.
// Returns 0 with ok=false when nothing was observed. An answer from the
// overflow bucket clamps to the last finite bound: the histogram cannot
// resolve beyond its ladder.
func (h *Histogram) Quantile(q float64) (time.Duration, bool) {
	total := h.total.Load()
	if total == 0 || math.IsNaN(q) {
		return 0, false
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var seen float64
	lower := 0.0
	for i := range h.counts {
		n := float64(h.counts[i].Load())
		if seen+n >= rank && n > 0 {
			frac := (rank - seen) / n
			sec := lower + (h.bounds[i]-lower)*frac
			return time.Duration(sec * float64(time.Second)), true
		}
		seen += n
		lower = h.bounds[i]
	}
	return time.Duration(h.bounds[len(h.bounds)-1] * float64(time.Second)), true
}

// metricKind is the Prometheus TYPE of a family.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one registered metric: a label set plus its value source.
type series struct {
	labels  []Label
	counter *Counter
	gauge   *Gauge
	gaugeFn func() float64
	histo   *Histogram
}

// family groups the series sharing one metric name.
type family struct {
	name   string
	help   string
	kind   metricKind
	series []*series
}

// Registry holds a process's metric families and renders them in Prometheus
// text exposition format. Registration is idempotent per (name, labels):
// registering the same counter twice returns the same *Counter, so wiring
// code never has to thread metric handles around. Registration takes a
// lock; the returned handles are lock-free.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter registers (or finds) the counter name{labels}.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.register(name, help, kindCounter, labels, func() *series {
		return &series{counter: &Counter{}}
	})
	return s.counter
}

// Gauge registers (or finds) the gauge name{labels}.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.register(name, help, kindGauge, labels, func() *series {
		return &series{gauge: &Gauge{}}
	})
	return s.gauge
}

// GaugeFunc registers a gauge whose value is computed at scrape time — the
// bridge for state that already lives elsewhere (a tuner's fitted fMin, a
// view version behind a lock). fn must be safe for concurrent use.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, kindGauge, labels, func() *series {
		return &series{gaugeFn: fn}
	})
}

// CounterFunc registers a counter whose value is read at scrape time — the
// bridge for monotone counts that accumulate before (or independently of)
// registration, like a persistence layer's WAL append count that starts at
// recovery, before the owning node's registry exists. fn must be safe for
// concurrent use and must never decrease.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, kindCounter, labels, func() *series {
		return &series{gaugeFn: fn}
	})
}

// Histogram registers (or finds) the histogram name{labels} with the given
// bucket upper bounds in seconds (nil means DefBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	s := r.register(name, help, kindHistogram, labels, func() *series {
		return &series{histo: newHistogram(bounds)}
	})
	return s.histo
}

func (r *Registry) register(name, help string, kind metricKind, labels []Label, build func() *series) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind}
		r.families[name] = f
		r.order = append(r.order, name)
		sort.Strings(r.order)
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %s registered as %s and %s", name, f.kind, kind))
	}
	sig := labelSignature(labels)
	for _, s := range f.series {
		if labelSignature(s.labels) == sig {
			return s
		}
	}
	s := build()
	s.labels = append([]Label(nil), labels...)
	f.series = append(f.series, s)
	sort.Slice(f.series, func(i, j int) bool {
		return labelSignature(f.series[i].labels) < labelSignature(f.series[j].labels)
	})
	return s
}

func labelSignature(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = l.Name + "\x00" + l.Value
	}
	sort.Strings(parts)
	return strings.Join(parts, "\x01")
}

// WritePrometheus renders every registered family in the Prometheus text
// exposition format (version 0.0.4): # HELP and # TYPE lines once per
// family, one sample line per series, histogram series expanded into
// cumulative _bucket/_sum/_count samples. Families print in name order so
// the output is diff-stable — the golden-file tests depend on it.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, len(r.order))
	for i, name := range r.order {
		fams[i] = r.families[name]
	}
	r.mu.Unlock()
	var b strings.Builder
	for _, f := range fams {
		b.Reset()
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.series {
			writeSeries(&b, f, s)
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

func writeSeries(b *strings.Builder, f *family, s *series) {
	switch {
	case s.counter != nil:
		sampleLine(b, f.name, s.labels, "", "", formatUint(s.counter.Value()))
	case s.gauge != nil:
		sampleLine(b, f.name, s.labels, "", "", formatInt(s.gauge.Value()))
	case s.gaugeFn != nil:
		sampleLine(b, f.name, s.labels, "", "", formatFloat(s.gaugeFn()))
	case s.histo != nil:
		h := s.histo
		var cum uint64
		for i, bound := range h.bounds {
			cum += h.counts[i].Load()
			sampleLine(b, f.name+"_bucket", s.labels, "le", formatFloat(bound), formatUint(cum))
		}
		cum += h.over.Load()
		sampleLine(b, f.name+"_bucket", s.labels, "le", "+Inf", formatUint(cum))
		sampleLine(b, f.name+"_sum", s.labels, "", "", formatFloat(h.Sum().Seconds()))
		sampleLine(b, f.name+"_count", s.labels, "", "", formatUint(cum))
	}
}

// sampleLine writes one `name{labels} value` line; extraName/extraValue
// append the histogram "le" label after the registered ones.
func sampleLine(b *strings.Builder, name string, labels []Label, extraName, extraValue, value string) {
	b.WriteString(name)
	if len(labels) > 0 || extraName != "" {
		b.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(l.Name)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(l.Value))
			b.WriteByte('"')
		}
		if extraName != "" {
			if len(labels) > 0 {
				b.WriteByte(',')
			}
			b.WriteString(extraName)
			b.WriteString(`="`)
			b.WriteString(extraValue)
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(value)
	b.WriteByte('\n')
}

// escapeLabel escapes a label value per the exposition format: backslash,
// double quote and newline.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes a help string: backslash and newline (quotes are legal
// in help text).
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func formatUint(v uint64) string { return fmt.Sprintf("%d", v) }
func formatInt(v int64) string   { return fmt.Sprintf("%d", v) }

// formatFloat renders a float the way Prometheus expects: integers without
// a decimal point, specials as +Inf/-Inf/NaN.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return fmt.Sprintf("%d", int64(v))
	default:
		return fmt.Sprintf("%g", v)
	}
}
