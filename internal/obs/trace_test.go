package obs

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceRecordsLegsInOrder(t *testing.T) {
	tr := NewTrace(42)
	start := time.Now()
	tr.Leg("probe", "mem-1:7070", "miss", start)
	tr.Mark("insert-gate", "", "allowed")
	tr.Leg("broadcast", "", "answered", start)
	qt := tr.Finish("broadcast")
	if qt.Key != 42 || qt.Outcome != "broadcast" {
		t.Fatalf("sealed trace = key %d outcome %q", qt.Key, qt.Outcome)
	}
	if len(qt.Legs) != 3 {
		t.Fatalf("got %d legs, want 3", len(qt.Legs))
	}
	if qt.Legs[0].Name != "probe" || qt.Legs[1].Name != "insert-gate" || qt.Legs[2].Name != "broadcast" {
		t.Errorf("leg order = %q %q %q", qt.Legs[0].Name, qt.Legs[1].Name, qt.Legs[2].Name)
	}
	if qt.Legs[1].Duration != 0 {
		t.Errorf("Mark leg has duration %v, want 0", qt.Legs[1].Duration)
	}
	if qt.Duration <= 0 {
		t.Errorf("trace duration = %v, want > 0", qt.Duration)
	}
}

func TestTraceConcurrentLegs(t *testing.T) {
	tr := NewTrace(1)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tr.Leg("refresh", "peer", "ok", time.Now())
		}()
	}
	wg.Wait()
	if got := len(tr.Finish("hit").Legs); got != 16 {
		t.Errorf("got %d legs, want 16", got)
	}
}

func TestTraceContextRoundTrip(t *testing.T) {
	if TraceFrom(context.Background()) != nil {
		t.Fatal("untraced context returned a trace")
	}
	tr := NewTrace(7)
	ctx := WithTrace(context.Background(), tr)
	if TraceFrom(ctx) != tr {
		t.Fatal("trace did not round-trip through context")
	}
}

func TestTimelineRendering(t *testing.T) {
	qt := QueryTrace{
		Key: 9, Outcome: "hit", Duration: 3 * time.Millisecond,
		Legs: []Leg{
			{Name: "probe", Target: "mem-2:7070", Outcome: "failed", Duration: time.Millisecond},
			{Name: "probe", Target: "mem-0:7070", Outcome: "hit", Start: time.Millisecond, Duration: time.Millisecond},
			{Name: "insert-gate", Outcome: "gated"},
		},
	}
	out := qt.Timeline()
	for _, want := range []string{
		"query key=9 outcome=hit",
		"probe mem-2:7070 → failed",
		"probe mem-0:7070 → hit",
		"insert-gate → gated",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q:\n%s", want, out)
		}
	}
}

func TestQueryTraceJSON(t *testing.T) {
	qt := QueryTrace{Key: 5, Outcome: "hit", Legs: []Leg{{Name: "probe", Outcome: "hit"}}}
	b, err := json.Marshal(qt)
	if err != nil {
		t.Fatal(err)
	}
	var back QueryTrace
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Key != 5 || len(back.Legs) != 1 || back.Legs[0].Name != "probe" {
		t.Errorf("round trip lost data: %+v", back)
	}
	// Empty Target stays out of the wire form.
	if strings.Contains(string(b), "target") {
		t.Errorf("empty target serialized: %s", b)
	}
}

func TestSlowLogRing(t *testing.T) {
	l := NewSlowLog(3, 10*time.Millisecond)
	if l.Record(QueryTrace{Key: 1, Duration: time.Millisecond}) {
		t.Error("fast query admitted")
	}
	for k := uint64(2); k <= 6; k++ {
		if !l.Record(QueryTrace{Key: k, Duration: 20 * time.Millisecond}) {
			t.Errorf("slow query %d rejected", k)
		}
	}
	if l.Total() != 5 {
		t.Errorf("Total = %d, want 5", l.Total())
	}
	dump := l.Dump()
	if len(dump) != 3 {
		t.Fatalf("ring kept %d entries, want 3", len(dump))
	}
	// Newest first: 6, 5, 4.
	for i, want := range []uint64{6, 5, 4} {
		if dump[i].Key != want {
			t.Errorf("dump[%d].Key = %d, want %d", i, dump[i].Key, want)
		}
	}
	if NewSlowLog(0, 0) == nil || len(NewSlowLog(-5, 0).ring) != 1 {
		t.Error("capacity clamp broken")
	}
}
