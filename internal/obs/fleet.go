package obs

import (
	"math"
	"sort"
	"time"
)

// Metric names the fleet report reads out of per-peer snapshots. Keeping
// them in one place bounds the blast radius of a rename — the node package
// registers them, BuildFleetReport consumes them, and the golden-file test
// pins the resulting JSON.
const (
	fleetQueries      = "pdht_node_queries_total"
	fleetHits         = "pdht_node_hits_total"
	fleetMessages     = "pdht_node_messages_total"
	fleetQuerySeconds = "pdht_node_query_seconds"
	fleetUptime       = "pdht_node_uptime_seconds"
	fleetKeyTtl       = "pdht_node_keyttl_rounds"
	fleetFMin         = "pdht_adapt_fmin"
	fleetWALBytes     = "pdht_store_wal_size_bytes"
	fleetAlive        = "pdht_gossip_members_alive"
	fleetTopKQueries  = "pdht_topk_queries_total"
	fleetTopKLegs     = "pdht_topk_legs_total"
)

// FleetPeer is one peer's row of a FleetReport — what one line of pdht-top
// renders.
type FleetPeer struct {
	Addr    string  `json:"addr"`
	Queries uint64  `json:"queries"`
	Hits    uint64  `json:"hits"`
	HitRate float64 `json:"hit_rate"`
	// QPS is the peer's lifetime query rate: queries over uptime.
	QPS float64 `json:"qps"`
	// P99 is the peer's query latency tail, pooled across outcomes.
	P99 time.Duration `json:"p99"`
	// KeyTtl is the expiration time the peer currently attaches to
	// inserts/refreshes — the adaptive tuner's actuated value, or the
	// static configuration.
	KeyTtl float64 `json:"key_ttl"`
	// FMin is the tuner's fitted query-rate threshold; zero when the peer
	// runs non-adaptive or has not fitted yet.
	FMin float64 `json:"f_min,omitempty"`
	// WALBytes is the peer's write-ahead log size; zero for memory-only
	// peers.
	WALBytes int64 `json:"wal_bytes,omitempty"`
	// MembersAlive is the peer's own count of live members — divergence
	// across rows means the gossip views have not converged.
	MembersAlive int64 `json:"members_alive"`
	// MsgsPerQuery is the peer's measured message cost per query, the
	// paper's per-node cost figure.
	MsgsPerQuery float64 `json:"msgs_per_query"`
	// TopKLegsPerQuery is the peer's measured OpTopK probe legs per
	// coordinated top-k query; zero when the peer coordinated none.
	TopKLegsPerQuery float64 `json:"topk_legs_per_query,omitempty"`
}

// FleetReport is the cluster-wide view Client.ClusterReport assembles: one
// row per reachable peer plus aggregates computed from the merged
// snapshots — cluster hit rate, pooled latency quantiles, the measured
// msgs/query the paper's cost model predicts, and the spread of the
// per-peer tuners (how far the fleet's independent fits diverge).
type FleetReport struct {
	Peers []FleetPeer `json:"peers"`
	// Queries/Hits/HitRate aggregate the whole fleet.
	Queries uint64  `json:"queries"`
	Hits    uint64  `json:"hits"`
	HitRate float64 `json:"hit_rate"`
	// MsgsPerQuery is the measured cluster-wide message cost per query —
	// the paper's headline number (eq. 2/17 predicts it).
	MsgsPerQuery float64 `json:"msgs_per_query"`
	// PredictedMsgsPerQuery is SolveTTL's prediction for the same number,
	// filled in by the node layer when a model fit is available.
	PredictedMsgsPerQuery float64 `json:"predicted_msgs_per_query,omitempty"`
	// P50/P90/P99 are query latency quantiles over the *pooled* bucket
	// counts of every peer — not an average of per-peer quantiles.
	P50 time.Duration `json:"p50"`
	P90 time.Duration `json:"p90"`
	P99 time.Duration `json:"p99"`
	// KeyTtlMin/Max and FMinMin/Max bound the per-peer tuner state: a
	// wide spread means peers see different query streams (or have not
	// converged).
	KeyTtlMin float64 `json:"key_ttl_min"`
	KeyTtlMax float64 `json:"key_ttl_max"`
	FMinMin   float64 `json:"f_min_min,omitempty"`
	FMinMax   float64 `json:"f_min_max,omitempty"`
	// Merged is the full fleet-wide snapshot the aggregates were computed
	// from, for callers that want more than the report surfaces. Not part
	// of the JSON encoding.
	Merged Snapshot `json:"-"`
}

// BuildFleetReport assembles the fleet view from per-peer snapshots. The
// result is independent of the order snapshots are passed in: rows sort by
// address and aggregates come from the commutative Merge.
func BuildFleetReport(snaps []Snapshot) FleetReport {
	var fr FleetReport
	fr.KeyTtlMin, fr.FMinMin = math.Inf(1), math.Inf(1)
	for _, s := range snaps {
		fr.Peers = append(fr.Peers, peerRow(s))
	}
	sort.Slice(fr.Peers, func(i, j int) bool { return fr.Peers[i].Addr < fr.Peers[j].Addr })

	fr.Merged = Merge(snaps...)
	queries, _ := fr.Merged.Value(fleetQueries)
	hits, _ := fr.Merged.Value(fleetHits)
	fr.Queries, fr.Hits = uint64(queries), uint64(hits)
	if queries > 0 {
		fr.HitRate = hits / queries
		fr.MsgsPerQuery = fr.Merged.SumAcross(fleetMessages) / queries
	}
	if pooled, ok := fr.Merged.MergeHistograms(fleetQuerySeconds); ok {
		if d, ok := pooled.Quantile(0.50); ok {
			fr.P50 = d
		}
		if d, ok := pooled.Quantile(0.90); ok {
			fr.P90 = d
		}
		if d, ok := pooled.Quantile(0.99); ok {
			fr.P99 = d
		}
	}
	for _, p := range fr.Peers {
		fr.KeyTtlMin = math.Min(fr.KeyTtlMin, p.KeyTtl)
		fr.KeyTtlMax = math.Max(fr.KeyTtlMax, p.KeyTtl)
		if p.FMin > 0 {
			fr.FMinMin = math.Min(fr.FMinMin, p.FMin)
			fr.FMinMax = math.Max(fr.FMinMax, p.FMin)
		}
	}
	if math.IsInf(fr.KeyTtlMin, 1) {
		fr.KeyTtlMin = 0
	}
	if math.IsInf(fr.FMinMin, 1) {
		fr.FMinMin = 0
	}
	return fr
}

// peerRow distills one peer's snapshot into its report row. Absent series
// read as zero — a client-mode snapshot simply has no node counters — and
// non-finite tuner gauges (fMin before the first fit) are dropped rather
// than poisoning the row's JSON.
func peerRow(s Snapshot) FleetPeer {
	row := FleetPeer{Addr: s.Addr}
	queries, _ := s.Value(fleetQueries)
	hits, _ := s.Value(fleetHits)
	row.Queries, row.Hits = uint64(queries), uint64(hits)
	if queries > 0 {
		row.HitRate = hits / queries
		row.MsgsPerQuery = s.SumAcross(fleetMessages) / queries
	}
	if up, ok := s.Value(fleetUptime); ok && up > 0 {
		row.QPS = queries / up
	}
	if pooled, ok := s.MergeHistograms(fleetQuerySeconds); ok {
		if d, ok := pooled.Quantile(0.99); ok {
			row.P99 = d
		}
	}
	if v, ok := s.Value(fleetKeyTtl); ok && finite(v) {
		row.KeyTtl = v
	}
	if v, ok := s.Value(fleetFMin); ok && finite(v) {
		row.FMin = v
	}
	if v, ok := s.Value(fleetWALBytes); ok {
		row.WALBytes = int64(v)
	}
	if v, ok := s.Value(fleetAlive); ok {
		row.MembersAlive = int64(v)
	}
	if q, ok := s.Value(fleetTopKQueries); ok && q > 0 {
		legs, _ := s.Value(fleetTopKLegs)
		row.TopKLegsPerQuery = legs / q
	}
	return row
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
