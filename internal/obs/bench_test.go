package obs

import (
	"context"
	"testing"
	"time"
)

// The acceptance bar for the registry hot path: zero allocations per op.
// AllocsPerRun makes the bar a test, not just a benchmark to eyeball.

func TestCounterIncAllocs(t *testing.T) {
	c := NewRegistry().Counter("pdht_t_total", "t")
	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Errorf("Counter.Inc allocates %.1f per op, want 0", n)
	}
}

func TestGaugeSetAllocs(t *testing.T) {
	g := NewRegistry().Gauge("pdht_t", "t")
	if n := testing.AllocsPerRun(1000, func() { g.Set(7) }); n != 0 {
		t.Errorf("Gauge.Set allocates %.1f per op, want 0", n)
	}
}

func TestHistogramObserveAllocs(t *testing.T) {
	h := NewRegistry().Histogram("pdht_t_seconds", "t", DefBuckets)
	if n := testing.AllocsPerRun(1000, func() { h.Observe(3 * time.Millisecond) }); n != 0 {
		t.Errorf("Histogram.Observe allocates %.1f per op, want 0", n)
	}
}

func TestTraceFromUntracedAllocs(t *testing.T) {
	ctx := context.Background()
	if n := testing.AllocsPerRun(1000, func() { _ = TraceFrom(ctx) }); n != 0 {
		t.Errorf("TraceFrom on untraced ctx allocates %.1f per op, want 0", n)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("pdht_b_total", "b")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncParallel(b *testing.B) {
	c := NewRegistry().Counter("pdht_b_total", "b")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("pdht_b_seconds", "b", DefBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(250 * time.Microsecond)
	}
}

func BenchmarkHistogramObserveParallel(b *testing.B) {
	h := NewRegistry().Histogram("pdht_b_seconds", "b", DefBuckets)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(250 * time.Microsecond)
		}
	})
}

func BenchmarkWritePrometheus(b *testing.B) {
	r := goldenRegistry()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := r.WritePrometheus(discard{}); err != nil {
			b.Fatal(err)
		}
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
