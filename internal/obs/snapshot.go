package obs

import (
	"math"
	"sort"
	"time"
)

// SnapPoint is one metric series frozen at snapshot time, in a form that
// crosses the wire as JSON and merges across peers: counters and gauges
// carry a single sample, histograms carry their full bucket vector so a
// fleet-level quantile can be computed from bucket-wise sums rather than
// averaging per-peer quantiles (which is statistically meaningless).
type SnapPoint struct {
	Name   string  `json:"name"`
	Labels []Label `json:"labels,omitempty"`
	// Kind is the family's Prometheus type: "counter", "gauge",
	// "histogram".
	Kind string `json:"kind"`
	// Value is the sample for counters and gauges. encoding/json cannot
	// carry non-finite floats, and a GaugeFunc legitimately reads NaN or
	// +Inf (an adaptive tuner's fMin before the first fit) — those travel
	// in Special instead, with Value zeroed. Read through Sample().
	Value float64 `json:"value,omitempty"`
	// Special holds a non-finite sample as "NaN", "+Inf" or "-Inf".
	Special string `json:"special,omitempty"`
	// Bounds and Counts carry a histogram: per-bound observation counts
	// (non-cumulative) plus one trailing overflow element, so
	// len(Counts) == len(Bounds)+1.
	Bounds []float64 `json:"bounds,omitempty"`
	Counts []uint64  `json:"counts,omitempty"`
	// Sum is the histogram's total observed duration in seconds; Count
	// its observation count.
	Sum   float64 `json:"sum,omitempty"`
	Count uint64  `json:"count,omitempty"`
}

// Sample returns the point's counter/gauge value with non-finite specials
// restored.
func (p SnapPoint) Sample() float64 {
	switch p.Special {
	case "NaN":
		return math.NaN()
	case "+Inf":
		return math.Inf(1)
	case "-Inf":
		return math.Inf(-1)
	}
	return p.Value
}

// setSample stores v, routing non-finite values through Special so the
// point survives encoding/json.
func (p *SnapPoint) setSample(v float64) {
	switch {
	case math.IsNaN(v):
		p.Value, p.Special = 0, "NaN"
	case math.IsInf(v, 1):
		p.Value, p.Special = 0, "+Inf"
	case math.IsInf(v, -1):
		p.Value, p.Special = 0, "-Inf"
	default:
		p.Value, p.Special = v, ""
	}
}

// Quantile estimates the q-quantile of a histogram point by linear
// interpolation, the same estimator Histogram.Quantile uses, so a merged
// fleet histogram answers p99 exactly as a single node's would. Returns
// ok=false for non-histogram points, empty histograms, or a point whose
// bucket vector was dropped by a bounds-mismatched merge.
func (p SnapPoint) Quantile(q float64) (time.Duration, bool) {
	if len(p.Bounds) == 0 || len(p.Counts) != len(p.Bounds)+1 || p.Count == 0 || math.IsNaN(q) {
		return 0, false
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(p.Count)
	var seen float64
	lower := 0.0
	for i, bound := range p.Bounds {
		n := float64(p.Counts[i])
		if seen+n >= rank && n > 0 {
			frac := (rank - seen) / n
			sec := lower + (bound-lower)*frac
			return time.Duration(sec * float64(time.Second)), true
		}
		seen += n
		lower = bound
	}
	return time.Duration(p.Bounds[len(p.Bounds)-1] * float64(time.Second)), true
}

// Snapshot is one peer's registry frozen at a point in time: the payload of
// the OpStats RPC and the unit obs.Merge combines into a fleet view.
type Snapshot struct {
	// Addr identifies the peer the snapshot was taken from; the merged
	// fleet snapshot leaves it empty.
	Addr   string      `json:"addr,omitempty"`
	Points []SnapPoint `json:"points"`
}

// Snapshot freezes every registered series. Counter/gauge values are read
// atomically; GaugeFunc/CounterFunc sources are invoked, exactly as a
// scrape would. Points come out sorted by (name, label signature), the
// order Merge relies on.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	fams := make([]*family, len(r.order))
	for i, name := range r.order {
		fams[i] = r.families[name]
	}
	r.mu.Unlock()
	var snap Snapshot
	for _, f := range fams {
		for _, s := range f.series {
			p := SnapPoint{
				Name:   f.name,
				Labels: append([]Label(nil), s.labels...),
				Kind:   f.kind.String(),
			}
			switch {
			case s.counter != nil:
				p.setSample(float64(s.counter.Value()))
			case s.gauge != nil:
				p.setSample(float64(s.gauge.Value()))
			case s.gaugeFn != nil:
				p.setSample(s.gaugeFn())
			case s.histo != nil:
				h := s.histo
				p.Bounds = append([]float64(nil), h.bounds...)
				p.Counts = make([]uint64, len(h.bounds)+1)
				for i := range h.counts {
					p.Counts[i] = h.counts[i].Load()
				}
				p.Counts[len(h.bounds)] = h.over.Load()
				p.Sum = h.Sum().Seconds()
				p.Count = h.Count()
			}
			snap.Points = append(snap.Points, p)
		}
	}
	return snap
}

// Value returns the sample of the counter/gauge series name{labels}, with
// ok=false when the snapshot has no such series.
func (s Snapshot) Value(name string, labels ...Label) (float64, bool) {
	sig := labelSignature(labels)
	for _, p := range s.Points {
		if p.Name == name && labelSignature(p.Labels) == sig {
			return p.Sample(), true
		}
	}
	return 0, false
}

// Family returns every series of the named family.
func (s Snapshot) Family(name string) []SnapPoint {
	var out []SnapPoint
	for _, p := range s.Points {
		if p.Name == name {
			out = append(out, p)
		}
	}
	return out
}

// SumAcross sums the samples of every series in the named family — the
// per-class message counters collapsed into one total, for example.
func (s Snapshot) SumAcross(name string) float64 {
	var sum float64
	for _, p := range s.Family(name) {
		sum += p.Sample()
	}
	return sum
}

// MergeHistograms folds every series of the named histogram family into a
// single point — e.g. pdht_node_query_seconds merged across its per-outcome
// series so one quantile covers hits, broadcasts and misses together.
func (s Snapshot) MergeHistograms(name string) (SnapPoint, bool) {
	var merged SnapPoint
	found := false
	for _, p := range s.Family(name) {
		if p.Kind != "histogram" {
			continue
		}
		if !found {
			merged = p
			merged.Labels = nil
			merged.Counts = append([]uint64(nil), p.Counts...)
			found = true
			continue
		}
		merged = mergeHistogramPoints(merged, p)
	}
	return merged, found
}

// Merge combines per-peer snapshots into one fleet-wide snapshot: counter
// and gauge samples sum, histograms with identical bucket ladders merge
// bucket-wise (so quantiles of the merged point are quantiles of the pooled
// observations). Histograms whose ladders disagree — a mid-upgrade fleet —
// degrade to Sum/Count only, and the degradation is sticky, which together
// with the sorted output makes Merge associative and independent of peer
// order. The merged snapshot has no Addr.
func Merge(snaps ...Snapshot) Snapshot {
	type key struct {
		name string
		sig  string
	}
	byKey := make(map[key]*SnapPoint)
	var order []key
	for _, s := range snaps {
		for _, p := range s.Points {
			k := key{p.Name, labelSignature(p.Labels)}
			acc, ok := byKey[k]
			if !ok {
				cp := p
				cp.Labels = append([]Label(nil), p.Labels...)
				cp.Bounds = append([]float64(nil), p.Bounds...)
				cp.Counts = append([]uint64(nil), p.Counts...)
				byKey[k] = &cp
				order = append(order, k)
				continue
			}
			if acc.Kind == "histogram" || p.Kind == "histogram" {
				*acc = mergeHistogramPoints(*acc, p)
			} else {
				acc.setSample(acc.Sample() + p.Sample())
			}
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].name != order[j].name {
			return order[i].name < order[j].name
		}
		return order[i].sig < order[j].sig
	})
	out := Snapshot{Points: make([]SnapPoint, 0, len(order))}
	for _, k := range order {
		out.Points = append(out.Points, *byKey[k])
	}
	return out
}

// mergeHistogramPoints merges b into a. Identical bounds merge bucket-wise;
// anything else (mismatched ladders, an already-degraded side) drops the
// bucket vector and keeps the exact Sum/Count totals.
func mergeHistogramPoints(a, b SnapPoint) SnapPoint {
	out := a
	out.Sum = a.Sum + b.Sum
	out.Count = a.Count + b.Count
	if len(a.Bounds) > 0 && floatsEqual(a.Bounds, b.Bounds) &&
		len(a.Counts) == len(a.Bounds)+1 && len(b.Counts) == len(b.Bounds)+1 {
		counts := make([]uint64, len(a.Counts))
		for i := range counts {
			counts[i] = a.Counts[i] + b.Counts[i]
		}
		out.Counts = counts
		return out
	}
	out.Bounds, out.Counts = nil, nil
	return out
}

func floatsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
