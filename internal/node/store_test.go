package node

import (
	"context"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"pdht/internal/store"
	"pdht/internal/transport"
)

// openStore opens a file-backed store under dir, tuned for tests: no
// background fsync surprises, compaction only when asked.
func openStore(t *testing.T, dir string) *store.FileStore {
	t.Helper()
	s, err := store.OpenFile(store.FileOptions{Dir: dir, Fsync: store.SyncNever, SnapshotEvery: time.Hour})
	if err != nil {
		t.Fatalf("OpenFile(%s): %v", dir, err)
	}
	return s
}

// durableConfig is testConfig with room for a restart: keyTtl long enough
// (in wall time) that entries survive the kill/reopen window with plenty
// of remaining TTL left to assert on.
func durableConfig() Config {
	cfg := DefaultConfig()
	cfg.RoundDuration = 50 * time.Millisecond
	cfg.KeyTtl = 100 // 5s of lifetime
	cfg.CallTimeout = 2 * time.Second
	return cfg
}

// wallDeadlines maps every live index entry to its absolute wall-clock
// expiry, via the node's own epoch arithmetic — the representation that
// must be invariant across a restart.
func wallDeadlines(n *Node) map[uint64]time.Time {
	out := make(map[uint64]time.Time)
	for _, e := range n.liveEntries() {
		out[uint64(e.Key)] = n.roundDeadline(e.Expires)
	}
	return out
}

// TestNodeWarmRestartRemainingTTL is the tentpole's core invariant: a node
// that goes down and comes back on the same data directory re-admits every
// index entry at its REMAINING TTL — the recovered absolute deadline within
// one round of the pre-kill one — and serves recovered content without
// republishing.
func TestNodeWarmRestartRemainingTTL(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig()
	cfg.Store = openStore(t, dir)
	nd, err := New(transport.NewMemory(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	mustPublish(t, nd, 5, 555)
	mustPublish(t, nd, 6, 666)
	// Miss → broadcast (local content) → insert with keyTtl: both keys
	// enter the single-member replica set, i.e. this node's own cache.
	for _, k := range []uint64{5, 6} {
		if res := mustQuery(t, nd, k); !res.Answered {
			t.Fatalf("key %d unanswered", k)
		}
	}
	before := wallDeadlines(nd)
	if len(before) != 2 {
		t.Fatalf("pre-kill index holds %d entries, want 2", len(before))
	}
	if err := nd.Close(); err != nil {
		t.Fatal(err)
	}

	cfg2 := durableConfig()
	cfg2.Store = openStore(t, dir)
	if got := cfg2.Store.Stats().Recovered; got != 2 {
		t.Fatalf("store recovered %d index entries, want 2", got)
	}
	nd2, err := New(transport.NewMemory(), cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer nd2.Close()

	after := wallDeadlines(nd2)
	if len(after) != 2 {
		t.Fatalf("post-restart index holds %d entries, want 2: %v", len(after), after)
	}
	for k, d0 := range before {
		d1, ok := after[k]
		if !ok {
			t.Fatalf("key %d lost across restart", k)
		}
		// Conversion onto the new round clock rounds up, so the recovered
		// deadline may only move forward, and by less than one round.
		if d1.Before(d0.Add(-time.Millisecond)) || d1.After(d0.Add(cfg.RoundDuration)) {
			t.Errorf("key %d deadline %v → %v: restart moved it by %v, want within one %v round",
				k, d0, d1, d1.Sub(d0), cfg.RoundDuration)
		}
	}
	// Recovered content answers without republishing, and the index hit
	// proves the recovered entry serves reads, not just exists.
	res := mustQuery(t, nd2, 5)
	if !res.Answered || !res.FromIndex || res.Value != 555 {
		t.Fatalf("post-restart query = %+v, want index hit with value 555", res)
	}
	if nd2.StoredKeys() != 2 {
		t.Fatalf("post-restart content store holds %d keys, want 2", nd2.StoredKeys())
	}
}

// TestNodeCrashMidAppendRecovers models the kill -9 torn-write crash: the
// live node's WAL is copied as-is (no graceful Close, no final compaction)
// with a torn half-frame appended — exactly what a crash mid-append leaves.
// Recovery must drop only the torn tail and re-admit every intact entry at
// its remaining TTL.
func TestNodeCrashMidAppendRecovers(t *testing.T) {
	dir1, dir2 := t.TempDir(), t.TempDir()
	cfg := durableConfig()
	cfg.Store = openStore(t, dir1)
	nd, err := New(transport.NewMemory(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer nd.Close()
	for k := uint64(100); k < 110; k++ {
		mustPublish(t, nd, k, k*10)
		mustQuery(t, nd, k)
	}
	before := wallDeadlines(nd)
	if len(before) != 10 {
		t.Fatalf("pre-crash index holds %d entries, want 10", len(before))
	}

	// Snapshot the WAL bytes mid-flight — the crash image — and tear the
	// tail the way an interrupted write(2) would.
	wal, err := os.ReadFile(filepath.Join(dir1, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	if len(wal) == 0 {
		t.Fatal("live WAL empty; nothing was journaled")
	}
	torn := append(append([]byte{}, wal...), wal[:13]...)
	if err := os.WriteFile(filepath.Join(dir2, "wal.log"), torn, 0o644); err != nil {
		t.Fatal(err)
	}

	st2 := openStore(t, dir2)
	if st2.Stats().DroppedRecords == 0 {
		t.Fatal("torn tail not reported dropped")
	}
	cfg2 := durableConfig()
	cfg2.Store = st2
	nd2, err := New(transport.NewMemory(), cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer nd2.Close()
	after := wallDeadlines(nd2)
	if len(after) != 10 {
		t.Fatalf("post-crash index holds %d entries, want 10", len(after))
	}
	for k, d0 := range before {
		d1, ok := after[k]
		if !ok {
			t.Fatalf("key %d lost in the crash", k)
		}
		if d1.Before(d0.Add(-time.Millisecond)) || d1.After(d0.Add(cfg.RoundDuration)) {
			t.Errorf("key %d deadline moved %v across the crash, want within one round", k, d1.Sub(d0))
		}
	}
	if nd2.StoredKeys() != 10 {
		t.Fatalf("post-crash content store holds %d keys, want 10", nd2.StoredKeys())
	}
}

// TestClusterRestartStorm is the ISSUE's headline scenario: a 3-node
// cluster warms its index under a repeating workload, every node is killed
// and restarted (a rolling crash-loop), and the warm fleet — per-slot data
// directories — must come back at no less than 90% of its pre-storm hit
// rate, while the identical cold fleet measurably does not.
func TestClusterRestartStorm(t *testing.T) {
	const (
		nodes = 3
		keys  = 40
	)
	cfg := durableConfig()
	cfg.KeyTtl = 400 // 20s: the storm must not eat the TTL budget
	cfg.GossipInterval = 25 * time.Millisecond
	cfg.SuspicionTimeout = 100 * time.Millisecond
	cfg.SyncInterval = 50 * time.Millisecond
	bound := 100*cfg.GossipInterval + 2*cfg.SuspicionTimeout

	run := func(t *testing.T, storeFor StoreFactory) (pre, post float64) {
		c, err := NewClusterStores(transport.NewMemory(), nodes, cfg, storeFor)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if err := c.WaitConverged(bound); err != nil {
			t.Fatal(err)
		}
		corpus := make([]uint64, keys)
		for i := range corpus {
			corpus[i] = uint64(0xD00D_0000 + i)
		}
		c.PublishReplicated(corpus, nodes)

		sweep := func() float64 {
			hits := 0
			for i, k := range corpus {
				if res := mustQuery(t, c.Node(i%nodes), k); res.FromIndex {
					hits++
				}
			}
			return float64(hits) / float64(keys)
		}
		sweep()       // warm: every key broadcast-resolved and inserted
		pre = sweep() // measured operating point: repeats hit the index

		// The storm: the whole fleet goes down at once and comes back.
		// (A rolling restart would let the live majority repair each
		// revived slot from its replicas — only a full outage separates
		// durable state from volatile state.)
		for i := 0; i < nodes; i++ {
			if err := c.Kill(i); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < nodes; i++ {
			if err := c.Restart(i); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.WaitConverged(bound); err != nil {
			t.Fatal(err)
		}
		post = sweep()
		return pre, post
	}

	t.Run("warm", func(t *testing.T) {
		dirs := t.TempDir()
		pre, post := run(t, func(slot int) (store.Store, error) {
			return store.OpenFile(store.FileOptions{
				Dir: filepath.Join(dirs, "node", string(rune('a'+slot))), Fsync: store.SyncNever, SnapshotEvery: time.Hour,
			})
		})
		if pre < 0.9 {
			t.Fatalf("pre-storm hit rate %.2f; workload never warmed", pre)
		}
		if post < 0.9*pre {
			t.Fatalf("warm restart storm: hit rate %.2f → %.2f, want ≥ 0.9× the pre-storm rate", pre, post)
		}
	})
	t.Run("cold", func(t *testing.T) {
		pre, post := run(t, nil)
		if pre < 0.9 {
			t.Fatalf("pre-storm hit rate %.2f; workload never warmed", pre)
		}
		if post > 0.5*pre {
			t.Fatalf("cold restart storm: hit rate %.2f → %.2f; losing every volatile cache should cost far more", pre, post)
		}
	})
}

// TestLiveSnapshotNeverContainsExpired is the regression test for the
// snapshot/sweeper race: the round used to filter a cache snapshot must be
// read under the same lock that serializes the cache, or a stale round
// lets entries already expired at snapshot time into handoff and
// persistence plans. The concurrent load runs under -race in CI; the
// deterministic check pins the filter itself.
func TestLiveSnapshotNeverContainsExpired(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RoundDuration = time.Millisecond // contended, fast-moving clock
	cfg.KeyTtl = 3
	nd, err := New(transport.NewMemory(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer nd.Close()
	// Published keys make queries insert: every hit-or-miss cycles a
	// short-lived entry through the cache.
	for k := uint64(1000); k < 1008; k++ {
		mustPublish(t, nd, k, k)
	}

	// Concurrent load: queries keep inserting and expiring short-lived
	// entries while snapshots race the sweeper (the -race run is the
	// teeth of this half).
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := uint64(0); ; k++ {
			select {
			case <-stop:
				return
			default:
			}
			nd.Query(context.Background(), 1000+k%8)
		}
	}()
	deadline := time.Now().Add(300 * time.Millisecond)
	for time.Now().Before(deadline) {
		nd.liveEntries()
		nd.LiveKeys()
	}
	close(stop)
	wg.Wait()

	// Deterministic filter check: an entry whose deadline has passed must
	// never appear in a snapshot, even before the sweeper's next tick.
	nd.mu.Lock()
	now := nd.now()
	nd.cache.Put(77, 770, now+1, now) // lapses within ~1ms
	nd.mu.Unlock()
	time.Sleep(5 * time.Millisecond)
	for _, e := range nd.liveEntries() {
		if uint64(e.Key) == 77 {
			t.Fatalf("snapshot contains entry expired before snapshot time: %+v", e)
		}
	}
}

// TestNoopStoreKeepsHotPathClean pins the zero-cost contract: a node
// without Config.Store journals nothing and installs no cache hook.
func TestNoopStoreKeepsHotPathClean(t *testing.T) {
	nd, err := New(transport.NewMemory(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer nd.Close()
	if nd.persist != nil {
		t.Fatal("node without Config.Store grew a persistence plane")
	}
	mustPublish(t, nd, 1, 2)
	mustQuery(t, nd, 1)
}
