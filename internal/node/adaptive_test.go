package node

import (
	"strconv"
	"testing"
	"time"

	"pdht/internal/adapt"
	"pdht/internal/keyspace"
	"pdht/internal/transport"
)

// TestRetuneShrinkKeepsGrantedTTLs is the retune/sweeper interaction
// contract: when the control loop shrinks the tuned keyTtl, entries already
// in the index keep the expiration they were granted — only new inserts and
// refreshes see the new value. A retune must never mass-expire the index.
//
// The shrink is produced by the real control loop: the tuner's TTLMax clamp
// caps the recommendation far below the static KeyTtl, so the first
// successful retune is guaranteed to be a drastic shrink.
func TestRetuneShrinkKeepsGrantedTTLs(t *testing.T) {
	const shrunk = 5
	cfg := DefaultConfig()
	cfg.RoundDuration = 20 * time.Millisecond
	cfg.KeyTtl = 300 // granted lifetime: 6s, far beyond the test
	cfg.Adaptive = true
	cfg.RetuneInterval = 500 * time.Millisecond
	cfg.Tuner = adapt.Config{TTLMax: shrunk}
	cfg.GossipInterval = 20 * time.Millisecond
	// Two nodes: a retune needs at least two members to pose the model.
	c, err := NewCluster(transport.NewMemory(), 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.WaitConverged(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	n := c.Node(0)

	// Index 20 keys through the public query path at the static TTL,
	// before the first retune fires.
	keys := make([]uint64, 20)
	for i := range keys {
		keys[i] = uint64(keyspace.HashString("shrink:" + strconv.Itoa(i)))
		mustPublish(t, n, keys[i], uint64(i))
		if res := mustQuery(t, n, keys[i]); !res.Answered {
			t.Fatalf("key %d unanswered", i)
		}
	}
	now := n.now()
	n.mu.Lock()
	before := n.cache.Entries(now)
	n.mu.Unlock()
	if len(before) != len(keys) {
		t.Fatalf("%d entries live, want %d", len(before), len(keys))
	}
	granted := make(map[keyspace.Key]int, len(before))
	for _, e := range before {
		if e.Expires < now+cfg.KeyTtl/2 {
			t.Fatalf("entry %v expires at %d, granted TTL looks wrong (now %d) — a retune raced the inserts", e.Key, e.Expires, now)
		}
		granted[e.Key] = e.Expires
	}

	// Wait for the control loop to shrink the recommendation to TTLMax.
	waitFor(t, 10*time.Second, func() bool {
		r := n.Report()
		return r.Adaptive != nil && r.Adaptive.Retunes >= 1
	}, "the first retune")
	if got := n.keyTtl(); got != shrunk {
		t.Fatalf("keyTtl() = %d after the retune, want the clamped %d", got, shrunk)
	}

	// Existing entries keep their granted expiry, verified against the
	// same consistent snapshot surface the sweeper and handoff use.
	n.mu.Lock()
	after := n.cache.Entries(n.now())
	n.mu.Unlock()
	if len(after) != len(before) {
		t.Fatalf("shrinking the tuned TTL changed the live count %d → %d", len(before), len(after))
	}
	for _, e := range after {
		if want, ok := granted[e.Key]; !ok || e.Expires != want {
			t.Fatalf("entry %v expiry %d after retune, want the granted %d", e.Key, e.Expires, granted[e.Key])
		}
	}

	// A fresh key is granted the shrunken TTL.
	fresh := uint64(keyspace.HashString("shrink:fresh"))
	mustPublish(t, n, fresh, 999)
	if res := mustQuery(t, n, fresh); !res.Answered {
		t.Fatal("fresh key unanswered")
	}
	now = n.now()
	n.mu.Lock()
	exp, ok := n.cache.Expires(keyspace.Key(fresh), now)
	n.mu.Unlock()
	if !ok {
		t.Fatal("fresh key not indexed")
	}
	if exp > now+shrunk {
		t.Fatalf("fresh entry expires at %d, want at most now(%d)+%d", exp, now, shrunk)
	}

	// And the sweeper honors both: after the shrunken TTL elapses the
	// fresh entry is gone while the originally-granted ones survive.
	time.Sleep(time.Duration(3*shrunk) * cfg.RoundDuration)
	now = n.now()
	n.mu.Lock()
	_, freshAlive := n.cache.Expires(keyspace.Key(fresh), now)
	live := n.cache.Live(now)
	n.mu.Unlock()
	if freshAlive {
		t.Fatal("fresh entry with the shrunken TTL still live after it elapsed")
	}
	if live != len(keys) {
		t.Fatalf("%d original entries live, want all %d — the retune mass-expired the index", live, len(keys))
	}
}

// TestAdaptiveReportAndKeyTtlFallback covers the adaptive plumbing around a
// single node: the report carries the control plane's state, and keyTtl()
// serves the static knob until the first successful retune.
func TestAdaptiveReportAndKeyTtlFallback(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RoundDuration = 20 * time.Millisecond
	cfg.KeyTtl = 42
	cfg.Adaptive = true
	cfg.RetuneInterval = time.Hour
	n, err := New(transport.NewMemory(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	if got := n.keyTtl(); got != 42 {
		t.Fatalf("keyTtl() = %d before any retune, want the static 42", got)
	}
	mustPublish(t, n, 7, 7)
	mustQuery(t, n, 7)
	r := n.Report()
	if r.Adaptive == nil {
		t.Fatal("adaptive node's report lacks the control-plane state")
	}
	if r.Adaptive.KeyTtl != 42 || r.Adaptive.Tuner.Ready {
		t.Fatalf("adaptive state = %+v, want static TTL and a not-ready tuner", r.Adaptive)
	}
	if r.Adaptive.Tuner.Observed == 0 {
		t.Fatal("the tuner observed no queries")
	}
	if r.Adaptive.Tuner.MemoryBytes <= 0 || r.Adaptive.Tuner.MemoryBytes > 1<<21 {
		t.Fatalf("sketch memory %d bytes outside the bounded range", r.Adaptive.Tuner.MemoryBytes)
	}
	// A non-adaptive node reports no adaptive state.
	plain, err := New(transport.NewMemory(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	if plain.Report().Adaptive != nil {
		t.Fatal("non-adaptive node reports adaptive state")
	}
}
