package node

import (
	"context"
	"fmt"
	"sort"
	"time"

	"pdht/internal/store"
	"pdht/internal/transport"
)

// Cluster is the multi-node harness: it boots n nodes on one transport,
// joins them through the first node, and exposes kill/restart so tests can
// exercise churn. It is test plumbing promoted to the package proper
// because the CLI's demo mode and future load generators want the same
// choreography.
type Cluster struct {
	tr       transport.Transport
	cfg      Config
	nodes    []*Node
	addrs    []string
	storeFor StoreFactory
}

// StoreFactory supplies slot i's persistence store each time the slot
// boots — at cluster construction and again on every Restart. Returning
// (nil, nil) leaves the slot in-memory. A factory backed by per-slot data
// directories is what makes Restart a WARM restart: the revived node
// replays the store the killed incarnation journaled.
type StoreFactory func(slot int) (store.Store, error)

// NewCluster boots n nodes: the first seeds the cluster, the rest join it.
// cfg.Addr and cfg.Seed are overwritten per node; all other fields apply to
// every node.
func NewCluster(tr transport.Transport, n int, cfg Config) (*Cluster, error) {
	return NewClusterStores(tr, n, cfg, nil)
}

// NewClusterStores is NewCluster with a per-slot persistence seam: each
// slot's store comes from storeFor (nil means every slot is in-memory,
// exactly NewCluster). The cluster keeps the factory and reuses it in
// Restart, so kill/restart churn exercises the real recovery path.
func NewClusterStores(tr transport.Transport, n int, cfg Config, storeFor StoreFactory) (*Cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("node: cluster size %d must be positive", n)
	}
	c := &Cluster{tr: tr, cfg: cfg, nodes: make([]*Node, n), addrs: make([]string, n), storeFor: storeFor}
	for i := 0; i < n; i++ {
		nodeCfg := cfg
		nodeCfg.Addr = ""
		if i == 0 {
			nodeCfg.Seed = ""
		} else {
			nodeCfg.Seed = c.addrs[0]
		}
		if storeFor != nil {
			st, err := storeFor(i)
			if err != nil {
				c.Close()
				return nil, fmt.Errorf("node: cluster boot %d/%d: %w", i, n, err)
			}
			nodeCfg.Store = st
		}
		nd, err := New(tr, nodeCfg)
		if err != nil {
			if nodeCfg.Store != nil {
				nodeCfg.Store.Close() // ownership stays here on a failed New
			}
			c.Close()
			return nil, fmt.Errorf("node: cluster boot %d/%d: %w", i, n, err)
		}
		c.nodes[i] = nd
		c.addrs[i] = nd.Addr()
	}
	return c, nil
}

// Size returns the number of slots (live or killed).
func (c *Cluster) Size() int { return len(c.nodes) }

// Node returns the node in slot i, nil while killed.
func (c *Cluster) Node(i int) *Node { return c.nodes[i] }

// Addr returns the address of slot i (stable across kill/restart).
func (c *Cluster) Addr(i int) string { return c.addrs[i] }

// Kill crashes the node in slot i: its endpoint stops answering, modeling
// an ungraceful departure. No goodbye messages are sent, exactly like the
// simulator's crash-style Leave.
func (c *Cluster) Kill(i int) error {
	if c.nodes[i] == nil {
		return fmt.Errorf("node: slot %d already killed", i)
	}
	err := c.nodes[i].Close()
	c.nodes[i] = nil
	return err
}

// Restart revives slot i at its original address, joining through any
// live member. Without a store factory the cache comes back empty — crash
// recovery loses volatile state. With one (NewClusterStores), the revived
// node reopens its slot's store and rejoins WARM: recovered index entries
// re-admitted at their remaining TTL, recovered content served again.
func (c *Cluster) Restart(i int) error {
	if c.nodes[i] != nil {
		return fmt.Errorf("node: slot %d is alive", i)
	}
	seed := ""
	for j, nd := range c.nodes {
		if j != i && nd != nil {
			seed = c.addrs[j]
			break
		}
	}
	cfg := c.cfg
	cfg.Addr = c.addrs[i]
	cfg.Seed = seed
	if c.storeFor != nil {
		st, err := c.storeFor(i)
		if err != nil {
			return fmt.Errorf("node: restart %d: %w", i, err)
		}
		cfg.Store = st
	}
	nd, err := New(c.tr, cfg)
	if err != nil {
		if cfg.Store != nil {
			cfg.Store.Close() // ownership stays here on a failed New
		}
		return err
	}
	c.nodes[i] = nd
	return nil
}

// LiveAddrs returns the sorted addresses of the currently live slots.
func (c *Cluster) LiveAddrs() []string {
	out := make([]string, 0, len(c.nodes))
	for i, nd := range c.nodes {
		if nd != nil {
			out = append(out, c.addrs[i])
		}
	}
	sort.Strings(out)
	return out
}

// Converged reports whether every live node's membership view equals
// exactly the set of live slots — dead peers evicted everywhere, joiners
// adopted everywhere. This is the gossip layer's steady state; no
// coordinator is consulted, only each node's own view.
func (c *Cluster) Converged() bool {
	want := c.LiveAddrs()
	for _, nd := range c.nodes {
		if nd == nil {
			continue
		}
		got := nd.Members()
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
	}
	return true
}

// WaitConverged polls Converged until it holds or the timeout passes —
// the convergence barrier the churn tests and the CLI demo lean on. The
// timeout is the caller's convergence bound: typically a small multiple
// of the gossip interval plus the suspicion timeout.
func (c *Cluster) WaitConverged(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		// Check before testing the deadline: a zero or overspent budget
		// still succeeds when the cluster is already converged.
		if c.Converged() {
			return nil
		}
		if !time.Now().Before(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	views := make(map[string][]string)
	for i, nd := range c.nodes {
		if nd != nil {
			views[c.addrs[i]] = nd.Members()
		}
	}
	return fmt.Errorf("node: cluster not converged after %v: live %v, views %v",
		timeout, c.LiveAddrs(), views)
}

// PublishRoundRobin distributes keys across the live nodes' content
// stores, value = key (the tests only need a recognizable payload).
func (c *Cluster) PublishRoundRobin(keys []uint64) {
	live := make([]*Node, 0, len(c.nodes))
	for _, nd := range c.nodes {
		if nd != nil {
			live = append(live, nd)
		}
	}
	if len(live) == 0 {
		return
	}
	for i, k := range keys {
		live[i%len(live)].Publish(context.Background(), k, k)
	}
}

// PublishReplicated installs each key in the content stores of repl
// distinct live slots (deterministically by slot order), value = key —
// content replication in the paper's sense, so a single crashed node does
// not make its share of the corpus unanswerable.
func (c *Cluster) PublishReplicated(keys []uint64, repl int) {
	n := len(c.nodes)
	if repl > n {
		repl = n
	}
	for i, k := range keys {
		placed := 0
		for j := 0; j < n && placed < repl; j++ {
			nd := c.nodes[(i+j)%n]
			if nd == nil {
				continue
			}
			nd.Publish(context.Background(), k, k)
			placed++
		}
	}
}

// IndexedKeys returns the number of distinct keys live in any node's index
// cache — the cluster-wide ground truth for eq. 15.
func (c *Cluster) IndexedKeys() int {
	distinct := make(map[uint64]bool)
	for _, nd := range c.nodes {
		if nd == nil {
			continue
		}
		for _, k := range nd.LiveKeys() {
			distinct[k] = true
		}
	}
	return len(distinct)
}

// Close shuts every live node down.
func (c *Cluster) Close() {
	for i, nd := range c.nodes {
		if nd != nil {
			nd.Close()
			c.nodes[i] = nil
		}
	}
}
