package node

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"pdht/internal/obs"
	"pdht/internal/transport"
)

// Fleet aggregation: the node-side half of Client.ClusterReport. Every
// member is asked for a registry snapshot over the OpStats RPC (self is
// snapshotted directly), the per-peer snapshots merge through obs.Merge,
// and the paper's headline comparison — measured cluster msgs/query against
// SolveTTL's prediction — rides along from the local model fit.

// sampleWireID decides whether one traced query propagates its trace over
// the wire, and mints its cluster-wide ID when it does. One atomic add plus
// a splitmix64 finalizer — no allocations, no rand locks — so per-query
// sampling is cheap enough to sit next to trace creation. Returns 0
// (meaning "client-side only") for unsampled queries.
func sampleWireID(seq *atomic.Uint64, rate float64) uint64 {
	if rate <= 0 {
		return 0
	}
	id := mix64(seq.Add(1))
	if id == 0 {
		id = 1 // zero means untraced on the wire
	}
	if rate >= 1 {
		return id
	}
	// The mixed sequence is uniform over uint64; its top 53 bits make the
	// sampling coin.
	if float64(id>>11)/float64(1<<53) < rate {
		return id
	}
	return 0
}

// mix64 is the splitmix64 finalizer: a bijective avalanche over uint64.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// ClusterReport polls every member of the current view for a metrics
// snapshot and aggregates them into a fleet-wide report: per-peer rows,
// cluster hit rate and pooled latency quantiles, the measured cluster
// msgs/query, and — when this node's traffic supports a model fit — the
// cost model's prediction for the same number. Peers that fail to answer
// within the context (or CallTimeout) are skipped; the report covers the
// reachable fleet. Fails only when no peer answered at all.
func (n *Node) ClusterReport(ctx context.Context) (obs.FleetReport, error) {
	if err := ctx.Err(); err != nil {
		return obs.FleetReport{}, ctxErr(err)
	}
	snaps := fetchFleet(ctx, n.Members(), func(ctx context.Context, addr string) (obs.Snapshot, error) {
		if addr == n.cfg.Addr {
			s := n.reg.Snapshot()
			s.Addr = addr
			return s, nil
		}
		return n.fetchStats(ctx, addr)
	})
	if len(snaps) == 0 {
		return obs.FleetReport{}, fmt.Errorf("node: cluster report: no member answered")
	}
	fr := obs.BuildFleetReport(snaps)
	if m := n.Report().Model; m != nil {
		fr.PredictedMsgsPerQuery = m.PredictedMsgsPerQuery
	}
	return fr, nil
}

// fetchStats asks one peer for its registry snapshot.
func (n *Node) fetchStats(ctx context.Context, addr string) (obs.Snapshot, error) {
	resp, err := n.callWithin(ctx, addr, transport.Request{Op: transport.OpStats, From: n.cfg.Addr})
	return statsFromResponse(addr, resp, err)
}

// statsFromResponse validates one OpStats reply.
func statsFromResponse(addr string, resp transport.Response, err error) (obs.Snapshot, error) {
	switch {
	case err != nil:
		return obs.Snapshot{}, err
	case resp.Err != "":
		return obs.Snapshot{}, fmt.Errorf("node: stats from %s: %s", addr, resp.Err)
	case resp.Stats == nil:
		return obs.Snapshot{}, fmt.Errorf("node: stats from %s: empty reply", addr)
	}
	s := *resp.Stats
	if s.Addr == "" {
		s.Addr = addr
	}
	return s, nil
}

// fetchFleet polls addrs concurrently through fetch and returns the
// snapshots that arrived. Shared by the serving node and the client-only
// RemoteClient.
func fetchFleet(ctx context.Context, addrs []string, fetch func(context.Context, string) (obs.Snapshot, error)) []obs.Snapshot {
	var (
		mu    sync.Mutex
		snaps []obs.Snapshot
		wg    sync.WaitGroup
	)
	for _, addr := range addrs {
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			s, err := fetch(ctx, addr)
			if err != nil {
				return
			}
			mu.Lock()
			snaps = append(snaps, s)
			mu.Unlock()
		}(addr)
	}
	wg.Wait()
	return snaps
}
