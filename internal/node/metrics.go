package node

import (
	"net/http"
	"time"

	"pdht/internal/obs"
	"pdht/internal/stats"
)

// nodeMetrics holds the node layer's registered instruments. Every counter
// that Report serves lives here, on the same registry the /metrics endpoint
// renders — the two surfaces are views over one set of atomics and can never
// disagree.
type nodeMetrics struct {
	queries, hits, misses                     *obs.Counter
	broadcasts, broadcastAnswered             *obs.Counter
	inserts, refreshes                        *obs.Counter
	unanswered, rpcFailures                   *obs.Counter
	staleViews                                *obs.Counter
	handoffMsgs, handoffKeys                  *obs.Counter
	handoffPushOK, handoffPushFailed          *obs.Counter
	readRepairs                               *obs.Counter
	gatedInserts, retunes                     *obs.Counter
	topkQueries, topkRounds, topkLegs         *obs.Counter
	topkEarly                                 *obs.Counter
	indexSize, topkCandidates                 *obs.Gauge
	latencyHit, latencyBroadcast, latencyMiss *obs.Histogram
}

func newNodeMetrics(reg *obs.Registry) *nodeMetrics {
	m := &nodeMetrics{
		queries: reg.Counter("pdht_node_queries_total",
			"Queries this node resolved (or tried to) end to end."),
		hits: reg.Counter("pdht_node_hits_total",
			"Queries the index answered — the pIndxd events of eq. 14."),
		misses: reg.Counter("pdht_node_misses_total",
			"Queries the whole replica set missed on."),
		broadcasts: reg.Counter("pdht_node_broadcasts_total",
			"Unstructured broadcast searches issued after index misses."),
		broadcastAnswered: reg.Counter("pdht_node_broadcasts_answered_total",
			"Broadcast searches a content holder answered."),
		inserts: reg.Counter("pdht_node_inserts_total",
			"Broadcast-resolved keys inserted at their replica set."),
		refreshes: reg.Counter("pdht_node_refreshes_total",
			"Reset-on-hit TTL refreshes applied (served plus local)."),
		unanswered: reg.Counter("pdht_node_unanswered_total",
			"Queries nobody could answer: index missed and no content holder."),
		rpcFailures: reg.Counter("pdht_node_rpc_failures_total",
			"Outbound RPCs that failed at the transport level."),
		staleViews: reg.Counter("pdht_node_stale_views_total",
			"Routed RPCs a peer refused over a membership-hash mismatch."),
		handoffMsgs: reg.Counter("pdht_node_handoff_msgs_total",
			"Entry pushes sent on view changes (the replica repair pass)."),
		handoffKeys: reg.Counter("pdht_node_handoff_keys_total",
			"Handed-off entries the new owner accepted."),
		handoffPushOK: reg.Counter("pdht_node_handoff_push_ok_total",
			"Handoff pushes the destination accepted."),
		handoffPushFailed: reg.Counter("pdht_node_handoff_push_failed_total",
			"Handoff pushes that failed (transport error, timeout, or peer refusal) — a rising rate means repair traffic is getting stuck."),
		readRepairs: reg.Counter("pdht_node_read_repairs_total",
			"Replica-set members re-inserted on a hit after answering a refresh without the entry."),
		gatedInserts: reg.Counter("pdht_node_gated_inserts_total",
			"Broadcast-resolved keys the fMin gate refused to index."),
		retunes: reg.Counter("pdht_node_retunes_total",
			"Successful control-plane refits applied by this node."),
		indexSize: reg.Gauge("pdht_node_index_entries",
			"Live entries in the index cache (updated each round by the sweeper)."),
		topkQueries: reg.Counter("pdht_topk_queries_total",
			"Distributed top-k queries this node coordinated."),
		topkRounds: reg.Counter("pdht_topk_rounds_total",
			"Probe rounds run by coordinated top-k queries."),
		topkLegs: reg.Counter("pdht_topk_legs_total",
			"OpTopK wire legs issued by coordinated top-k queries (local self-scans are free)."),
		topkEarly: reg.Counter("pdht_topk_early_term_total",
			"Top-k queries the threshold bound terminated before every peer was drained."),
		topkCandidates: reg.Gauge("pdht_topk_candidates",
			"Candidate-set size of the most recent coordinated top-k query."),
	}
	m.latencyHit = reg.Histogram("pdht_node_query_seconds",
		"End-to-end query latency by outcome: hit (index answered), broadcast (resolved by flooding), miss (unanswered or cancelled).",
		nil, obs.L("outcome", "hit"))
	m.latencyBroadcast = reg.Histogram("pdht_node_query_seconds", "", nil, obs.L("outcome", "broadcast"))
	m.latencyMiss = reg.Histogram("pdht_node_query_seconds", "", nil, obs.L("outcome", "miss"))
	return m
}

// observeQuery files one finished unary query under its outcome bucket.
func (m *nodeMetrics) observeQuery(res QueryResult, d time.Duration) {
	switch {
	case res.FromIndex:
		m.latencyHit.Observe(d)
	case res.Answered:
		m.latencyBroadcast.Observe(d)
	default:
		m.latencyMiss.Observe(d)
	}
}

// registerGauges binds the scrape-time views that need the node itself: the
// content-store size and the per-class message counters Report also serves.
func (n *Node) registerGauges(reg *obs.Registry) {
	reg.GaugeFunc("pdht_node_stored_keys",
		"Keys in the local content store (what broadcasts can resolve here).",
		func() float64 { return float64(n.StoredKeys()) })
	reg.GaugeFunc("pdht_node_uptime_seconds",
		"Seconds since this node's epoch — the denominator of fleet-report QPS.",
		func() float64 { return time.Since(n.epoch).Seconds() })
	reg.GaugeFunc("pdht_node_keyttl_rounds",
		"Expiration time attached to inserts and refreshes from here on: the tuner's recommendation when adaptive, the static knob otherwise.",
		func() float64 { return float64(n.keyTtl()) })
	for _, c := range stats.Classes() {
		c := c
		reg.GaugeFunc("pdht_node_messages_total",
			"Messages sent by class, the cost breakdown of the paper's eq. 17.",
			func() float64 { return float64(n.counters.Get(c)) },
			obs.L("class", c.String()))
	}
}

// Metrics returns the node's registry — every layer's instruments
// (pdht_transport_*, pdht_node_*, pdht_gossip_*, pdht_adapt_*) registered at
// construction. Shared with Config.Metrics when one was supplied.
func (n *Node) Metrics() *obs.Registry { return n.reg }

// SlowQueries returns the retained slow-query traces, newest first — empty
// unless Config.SlowQueryThreshold enabled the log.
func (n *Node) SlowQueries() []obs.QueryTrace {
	if n.slowLog == nil {
		return nil
	}
	return n.slowLog.Dump()
}

// DebugHandler returns the node's debug HTTP plane: /metrics (Prometheus
// text), /report (the self-measurement as JSON), /traces (the slow-query
// ring), /healthz and /debug/pprof. What cmd/pdht-node serves under -http.
func (n *Node) DebugHandler() http.Handler {
	return obs.Handler(n.reg,
		func() any { return n.Report() },
		func() any { return n.SlowQueries() },
	)
}
