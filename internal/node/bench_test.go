package node

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"testing"
	"time"

	"pdht/internal/core"
	"pdht/internal/keyspace"
	"pdht/internal/transport"
)

// benchCluster boots a 3-node cluster on the in-memory transport with a
// TTL long enough that nothing expires mid-benchmark.
func benchCluster(b *testing.B, capacity int) *Cluster {
	b.Helper()
	cfg := DefaultConfig()
	cfg.RoundDuration = time.Second
	cfg.KeyTtl = 1 << 20
	cfg.Capacity = capacity
	// Membership beats fast so boot converges quickly; one second of
	// round has nothing to do with how often the failure detector ticks.
	cfg.GossipInterval = 10 * time.Millisecond
	c, err := NewCluster(transport.NewMemory(), 3, cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := c.WaitConverged(5 * time.Second); err != nil {
		b.Fatal(err)
	}
	return c
}

// BenchmarkNodeQuery measures the live serve path — the node-level
// baseline future transport or selection changes are compared against.
// The hit variant is the steady-state hot path (route + index probe +
// refresh); the miss variant pays the full selection loop (failed index
// search, broadcast fan-out, replica insert) on a fresh key each
// iteration.
func BenchmarkNodeQuery(b *testing.B) {
	b.Run("hit", func(b *testing.B) {
		c := benchCluster(b, 1024)
		defer c.Close()
		const key = 424242
		mustPublish(b, c.Node(1), key, 7)
		if res := mustQuery(b, c.Node(0), key); !res.Answered {
			b.Fatal("warm-up query unanswered")
		}
		if res := mustQuery(b, c.Node(0), key); !res.FromIndex {
			b.Fatal("warm-up repeat did not hit the index")
		}
		ctx := context.Background()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if res, err := c.Node(0).Query(ctx, key); err != nil || !res.FromIndex {
				b.Fatal("steady-state query missed the index")
			}
		}
	})

	b.Run("miss", func(b *testing.B) {
		c := benchCluster(b, 1<<21)
		defer c.Close()
		keys := make([]uint64, b.N)
		for i := range keys {
			keys[i] = uint64(keyspace.HashString("bench-miss:" + strconv.Itoa(i)))
			mustPublish(b, c.Node(1), keys[i], uint64(i))
		}
		ctx := context.Background()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if res, err := c.Node(0).Query(ctx, keys[i]); err != nil || !res.Answered || res.FromIndex {
				b.Fatalf("iteration %d: want a broadcast-answered miss, got %+v", i, res)
			}
		}
	})
}

// BenchmarkClientQueryMany prices the batched client API against N unary
// queries for the same warm keys — the amortize-per-request claim of the
// API redesign in numbers. The batch variant issues one OpBatch per
// destination peer (at most 2 here: three members, one of them the
// caller); the unary variant pays one index probe plus one refresh RPC per
// key. Round-trip and allocation counts per 32-key batch are the headline.
func BenchmarkClientQueryMany(b *testing.B) {
	const batch = 32
	warm := func(b *testing.B, c *Cluster) []uint64 {
		b.Helper()
		keys := make([]uint64, batch)
		for i := range keys {
			keys[i] = uint64(keyspace.HashString("batch-bench:" + strconv.Itoa(i)))
			mustPublish(b, c.Node(1), keys[i], uint64(i))
			if res := mustQuery(b, c.Node(0), keys[i]); !res.Answered {
				b.Fatal("warm-up query unanswered")
			}
		}
		return keys
	}

	b.Run("batch=32", func(b *testing.B) {
		c := benchCluster(b, 1024)
		defer c.Close()
		keys := warm(b, c)
		ctx := context.Background()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			results, err := c.Node(0).QueryMany(ctx, keys)
			if err != nil {
				b.Fatal(err)
			}
			for j := range results {
				if !results[j].FromIndex {
					b.Fatalf("key %d missed the warm index", keys[j])
				}
			}
		}
	})

	b.Run("unary=32", func(b *testing.B) {
		c := benchCluster(b, 1024)
		defer c.Close()
		keys := warm(b, c)
		ctx := context.Background()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, key := range keys {
				if res, err := c.Node(0).Query(ctx, key); err != nil || !res.FromIndex {
					b.Fatalf("key %d missed the warm index", key)
				}
			}
		}
	})
}

// BenchmarkHandoff measures the planning pass a view change triggers: for
// every cached entry, recompute the replica group under the old and new
// views and decide what this node owes whom. This is the membership
// subsystem's burst cost — it runs once per confirmed change, over the
// whole cache — so it lands with a baseline next to BenchmarkNodeQuery.
// The pushes themselves are plain OpInserts, priced by the query
// benchmarks.
func BenchmarkHandoff(b *testing.B) {
	members := make([]string, 6)
	for i := range members {
		members[i] = "node-" + strconv.Itoa(i)
	}
	old, err := buildView(members, BackendRing, 3, 0)
	if err != nil {
		b.Fatal(err)
	}
	survivors := append(append([]string(nil), members[:3]...), members[4:]...)
	next, err := buildView(survivors, BackendRing, 3, 0)
	if err != nil {
		b.Fatal(err)
	}
	for _, size := range []int{256, 4096} {
		b.Run("entries="+strconv.Itoa(size), func(b *testing.B) {
			entries := make([]core.Entry, size)
			for i := range entries {
				entries[i] = core.Entry{
					Key:     keyspace.HashString("handoff-bench:" + strconv.Itoa(i)),
					Value:   core.Value(i),
					Expires: 1000,
				}
			}
			// Sanity: the transition must actually move keys, from every
			// survivor's standpoint collectively.
			moved := 0
			for _, self := range survivors {
				moved += len(planHandoff(old, next, self, entries, 0))
			}
			if moved == 0 {
				b.Fatal("view transition moved no keys; the benchmark is vacuous")
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				planHandoff(old, next, survivors[i%len(survivors)], entries, 0)
			}
		})
	}
}

// BenchmarkViewDelta pins the refactor that makes thousand-node fleets
// viable: applying a membership delta to an installed view versus
// rebuilding the view from scratch. Delta application is a single sorted
// merge over the vnode array (O(n) memcpy, no hashing, no re-sort);
// the rebuild re-hashes and re-sorts every member. The gap is the per-node
// cost of every membership event across a large fleet.
func BenchmarkViewDelta(b *testing.B) {
	for _, n := range []int{128, 1000} {
		members := make([]string, n)
		for i := range members {
			members[i] = fmt.Sprintf("peer-%04d", i)
		}
		base, err := buildView(members, BackendRing, 3, 0)
		if err != nil {
			b.Fatal(err)
		}
		joined := []string{fmt.Sprintf("peer-%04d", n)}
		left := []string{members[n/2]}
		alive := make([]string, 0, n)
		for _, m := range members {
			if m != left[0] {
				alive = append(alive, m)
			}
		}
		alive = append(alive, joined...)
		sort.Strings(alive)
		// Sanity: the delta must land on the ring a rebuild produces.
		if dv := base.applyDelta(alive, joined, left, 2); dv == nil || dv.hash != mustBuildView(b, alive).hash {
			b.Fatal("delta view diverged from rebuild")
		}
		b.Run(fmt.Sprintf("delta/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if base.applyDelta(alive, joined, left, 2) == nil {
					b.Fatal("applyDelta returned nil")
				}
			}
		})
		b.Run(fmt.Sprintf("rebuild/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				mustBuildView(b, alive)
			}
		})
	}
}

func mustBuildView(b *testing.B, members []string) *view {
	b.Helper()
	v, err := buildView(members, BackendRing, 3, 0)
	if err != nil {
		b.Fatal(err)
	}
	return v
}
