package node

import (
	"strconv"
	"testing"
	"time"

	"pdht/internal/core"
	"pdht/internal/keyspace"
	"pdht/internal/transport"
)

// benchCluster boots a 3-node cluster on the in-memory transport with a
// TTL long enough that nothing expires mid-benchmark.
func benchCluster(b *testing.B, capacity int) *Cluster {
	b.Helper()
	cfg := DefaultConfig()
	cfg.RoundDuration = time.Second
	cfg.KeyTtl = 1 << 20
	cfg.Capacity = capacity
	// Membership beats fast so boot converges quickly; one second of
	// round has nothing to do with how often the failure detector ticks.
	cfg.GossipInterval = 10 * time.Millisecond
	c, err := NewCluster(transport.NewMemory(), 3, cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := c.WaitConverged(5 * time.Second); err != nil {
		b.Fatal(err)
	}
	return c
}

// BenchmarkNodeQuery measures the live serve path — the node-level
// baseline future transport or selection changes are compared against.
// The hit variant is the steady-state hot path (route + index probe +
// refresh); the miss variant pays the full selection loop (failed index
// search, broadcast fan-out, replica insert) on a fresh key each
// iteration.
func BenchmarkNodeQuery(b *testing.B) {
	b.Run("hit", func(b *testing.B) {
		c := benchCluster(b, 1024)
		defer c.Close()
		const key = 424242
		c.Node(1).Publish(key, 7)
		if res := c.Node(0).Query(key); !res.Answered {
			b.Fatal("warm-up query unanswered")
		}
		if res := c.Node(0).Query(key); !res.FromIndex {
			b.Fatal("warm-up repeat did not hit the index")
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if res := c.Node(0).Query(key); !res.FromIndex {
				b.Fatal("steady-state query missed the index")
			}
		}
	})

	b.Run("miss", func(b *testing.B) {
		c := benchCluster(b, 1<<21)
		defer c.Close()
		keys := make([]uint64, b.N)
		for i := range keys {
			keys[i] = uint64(keyspace.HashString("bench-miss:" + strconv.Itoa(i)))
			c.Node(1).Publish(keys[i], uint64(i))
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if res := c.Node(0).Query(keys[i]); !res.Answered || res.FromIndex {
				b.Fatalf("iteration %d: want a broadcast-answered miss, got %+v", i, res)
			}
		}
	})
}

// BenchmarkHandoff measures the planning pass a view change triggers: for
// every cached entry, recompute the replica group under the old and new
// views and decide what this node owes whom. This is the membership
// subsystem's burst cost — it runs once per confirmed change, over the
// whole cache — so it lands with a baseline next to BenchmarkNodeQuery.
// The pushes themselves are plain OpInserts, priced by the query
// benchmarks.
func BenchmarkHandoff(b *testing.B) {
	members := make([]string, 6)
	for i := range members {
		members[i] = "node-" + strconv.Itoa(i)
	}
	old, err := buildView(members, BackendRing, 3, 0)
	if err != nil {
		b.Fatal(err)
	}
	survivors := append(append([]string(nil), members[:3]...), members[4:]...)
	next, err := buildView(survivors, BackendRing, 3, 0)
	if err != nil {
		b.Fatal(err)
	}
	for _, size := range []int{256, 4096} {
		b.Run("entries="+strconv.Itoa(size), func(b *testing.B) {
			entries := make([]core.Entry, size)
			for i := range entries {
				entries[i] = core.Entry{
					Key:     keyspace.HashString("handoff-bench:" + strconv.Itoa(i)),
					Value:   core.Value(i),
					Expires: 1000,
				}
			}
			// Sanity: the transition must actually move keys, from every
			// survivor's standpoint collectively.
			moved := 0
			for _, self := range survivors {
				moved += len(planHandoff(old, next, self, entries, 0))
			}
			if moved == 0 {
				b.Fatal("view transition moved no keys; the benchmark is vacuous")
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				planHandoff(old, next, survivors[i%len(survivors)], entries, 0)
			}
		})
	}
}
