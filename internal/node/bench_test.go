package node

import (
	"strconv"
	"testing"
	"time"

	"pdht/internal/keyspace"
	"pdht/internal/transport"
)

// benchCluster boots a 3-node cluster on the in-memory transport with a
// TTL long enough that nothing expires mid-benchmark.
func benchCluster(b *testing.B, capacity int) *Cluster {
	b.Helper()
	cfg := DefaultConfig()
	cfg.RoundDuration = time.Second
	cfg.KeyTtl = 1 << 20
	cfg.Capacity = capacity
	c, err := NewCluster(transport.NewMemory(), 3, cfg)
	if err != nil {
		b.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		full := true
		for i := 0; i < c.Size(); i++ {
			if len(c.Node(i).Members()) != 3 {
				full = false
			}
		}
		if full {
			return c
		}
		time.Sleep(time.Millisecond)
	}
	b.Fatal("cluster never reached full membership")
	return nil
}

// BenchmarkNodeQuery measures the live serve path — the node-level
// baseline future transport or selection changes are compared against.
// The hit variant is the steady-state hot path (route + index probe +
// refresh); the miss variant pays the full selection loop (failed index
// search, broadcast fan-out, replica insert) on a fresh key each
// iteration.
func BenchmarkNodeQuery(b *testing.B) {
	b.Run("hit", func(b *testing.B) {
		c := benchCluster(b, 1024)
		defer c.Close()
		const key = 424242
		c.Node(1).Publish(key, 7)
		if res := c.Node(0).Query(key); !res.Answered {
			b.Fatal("warm-up query unanswered")
		}
		if res := c.Node(0).Query(key); !res.FromIndex {
			b.Fatal("warm-up repeat did not hit the index")
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if res := c.Node(0).Query(key); !res.FromIndex {
				b.Fatal("steady-state query missed the index")
			}
		}
	})

	b.Run("miss", func(b *testing.B) {
		c := benchCluster(b, 1<<21)
		defer c.Close()
		keys := make([]uint64, b.N)
		for i := range keys {
			keys[i] = uint64(keyspace.HashString("bench-miss:" + strconv.Itoa(i)))
			c.Node(1).Publish(keys[i], uint64(i))
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if res := c.Node(0).Query(keys[i]); !res.Answered || res.FromIndex {
				b.Fatalf("iteration %d: want a broadcast-answered miss, got %+v", i, res)
			}
		}
	})
}
