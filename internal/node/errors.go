package node

import (
	"context"
	"errors"
	"fmt"
)

// The typed failures of the application-facing request path. They are
// errors.Is-able sentinels: callers branch on the failure class, not on
// error strings. The public client package (pdht/client) re-exports them
// under the same names.
var (
	// ErrClosed reports a request issued after Close.
	ErrClosed = errors.New("pdht: closed")
	// ErrNoMembers reports that no cluster member is known or reachable —
	// a client whose seeds are all down, or a view that never formed.
	ErrNoMembers = errors.New("pdht: no reachable members")
	// ErrStaleView reports that the membership view disagreed with every
	// peer asked and could not be refreshed — the request was refused
	// rather than mis-routed.
	ErrStaleView = errors.New("pdht: stale membership view")
	// ErrTimeout reports that the caller's deadline expired mid-request.
	// It wraps context.DeadlineExceeded, so both
	// errors.Is(err, ErrTimeout) and
	// errors.Is(err, context.DeadlineExceeded) hold.
	ErrTimeout = fmt.Errorf("pdht: request timed out: %w", context.DeadlineExceeded)
)

// ctxErr translates a context failure into the API's typed errors: a
// deadline expiry becomes ErrTimeout, a cancellation stays
// context.Canceled (the caller chose to stop; that is not a timeout).
func ctxErr(err error) error {
	if errors.Is(err, context.DeadlineExceeded) {
		return ErrTimeout
	}
	return err
}
