package node

import (
	"slices"

	"pdht/internal/core"
	"pdht/internal/stats"
	"pdht/internal/transport"
)

// Key handoff: when a confirmed membership change moves a key's replica
// group, the entry must reach its new owners or the index silently loses
// it — the next query pays a broadcast the paper's model doesn't predict,
// and under sustained churn the partial index never reaches its
// steady-state hit rate. DistHash-style active re-replication is the fix:
// walk the local cache, recompute placement under the new view, and push
// what moved.
//
// Invariants:
//
//   - Exactly-once planning, at-least-once effect: for each entry, the
//     FIRST member of the old replica group that survived into the new
//     view is the designated pusher. Every survivor evaluates the same
//     deterministic rule against the same (old, new) view pair, so in the
//     converged case one node pushes and the rest stay silent; while views
//     are still settling, duplicate pushes are possible and harmless
//     (inserts are idempotent, latest-expiry wins).
//   - TTL preservation: entries travel with their REMAINING lifetime
//     (expires − now, in rounds), not a fresh keyTtl. A key that was about
//     to lapse still lapses on schedule at its new owner — the expiry
//     semantics of §5.1 are membership-change invariant.
//   - No deletion: the local copy is kept even when self left the group.
//     It stops being probed under the new view, so it simply expires on
//     schedule; dropping it early would lose data if the view flaps back.
//   - Pushes carry ViewHash 0: a handoff is, by definition, a message
//     between two sides of a view transition, so the stale-view guard
//     must not apply.

// handoffPush is one planned transfer: key→value to a new owner with its
// remaining TTL.
type handoffPush struct {
	to    string
	key   uint64
	value uint64
	ttl   int // remaining lifetime in rounds, ≥ 1
}

// planHandoff computes the pushes this node owes for a view transition.
// Pure function of (old view, new view, self, cache snapshot) — every
// surviving member of an entry's old group computes the same plan and the
// designated-pusher rule leaves at most one of them responsible.
func planHandoff(old, next *view, self string, entries []core.Entry, now int) []handoffPush {
	var plan []handoffPush
	for _, e := range entries {
		ttl := e.Expires - now
		if ttl < 1 {
			continue // lapsed between snapshot and planning
		}
		oldGroup := old.replicas(e.Key)
		pusher := ""
		for _, a := range oldGroup {
			if _, survived := next.rank[a]; survived {
				pusher = a
				break
			}
		}
		if pusher != self {
			// Either another survivor owns the push, or the whole old
			// group died with the data (nothing anyone can do), or self
			// holds a copy from an even older view — the current group
			// members handle those keys.
			continue
		}
		newGroup := next.replicas(e.Key)
		for _, a := range newGroup {
			if a == self || slices.Contains(oldGroup, a) {
				continue
			}
			plan = append(plan, handoffPush{to: a, key: uint64(e.Key), value: uint64(e.Value), ttl: ttl})
		}
	}
	return plan
}

// runHandoff executes the plan for one view transition. It runs on its own
// goroutine (registered in n.handoffs before spawn): pushes are plain
// inserts with the remaining TTL, so a lost push degrades to the pre-
// handoff behavior — the key's next query misses and re-inserts. Pushes
// are grouped by destination, and a destination is abandoned on its first
// transport failure: a newcomer that crashed mid-transition costs one
// failed call, not one CallTimeout per entry it was owed.
func (n *Node) runHandoff(old, next *view, entries []core.Entry) {
	defer n.handoffs.Done()
	plan := planHandoff(old, next, n.cfg.Addr, entries, n.now())
	dests := make([]string, 0, 4)
	byDest := make(map[string][]handoffPush)
	for _, p := range plan {
		if _, seen := byDest[p.to]; !seen {
			dests = append(dests, p.to)
		}
		byDest[p.to] = append(byDest[p.to], p)
	}
	for _, dest := range dests {
		for _, p := range byDest[dest] {
			select {
			case <-n.stop:
				return
			default:
			}
			n.handoffMsgs.Add(1)
			n.counters.Inc(stats.MsgControl)
			resp, err := n.call(p.to, transport.Request{
				Op: transport.OpInsert, Key: p.key, Value: p.value, TTL: p.ttl,
			})
			if err != nil {
				break // unreachable; its keys degrade to broadcast-on-miss
			}
			if resp.OK {
				n.handoffKeys.Add(1)
			}
		}
	}
}
