package node

import (
	"context"

	"pdht/internal/core"
	"pdht/internal/replica"
	"pdht/internal/stats"
	"pdht/internal/store"
	"pdht/internal/transport"
)

// Key handoff and replica repair: when a confirmed membership change moves
// or shrinks a key's replica set, the surviving copies must reach the set's
// new members or the index silently loses first redundancy, then the entry
// itself — the next query pays a broadcast the paper's model doesn't
// predict, and under sustained churn the partial index never reaches its
// steady-state hit rate. The planning rules (designated pusher, orphan
// rescue, TTL preservation, no deletion) live in replica.PlanRepair; this
// file snapshots the cache, feeds the planner, and executes the plan.
//
// Pushes carry ViewHash 0: a repair push is, by definition, a message
// between two sides of a view transition, so the stale-view guard must not
// apply.

// planHandoff computes the pushes this node owes for a view transition:
// the cache snapshot reduced to its live entries (with REMAINING TTLs) and
// handed to the replica repair planner. Pure function of (old view, new
// view, self, cache snapshot).
func planHandoff(old, next *view, self string, entries []core.Entry, now int) []replica.Push {
	held := make([]replica.Entry, 0, len(entries))
	for _, e := range entries {
		if ttl := e.Expires - now; ttl >= 1 {
			held = append(held, replica.Entry{Key: e.Key, Value: uint64(e.Value), TTL: ttl})
		}
	}
	return replica.PlanRepair(old, next, self, held)
}

// runHandoff executes the plan for one view transition. It runs on its own
// goroutine (registered in n.handoffs before spawn): pushes are plain
// inserts with the remaining TTL, so a lost push degrades to the pre-
// handoff behavior — the key's next query misses and re-inserts (or a later
// hit read-repairs it). Every push is bounded by CallTimeout and aborted by
// node shutdown — a destination that blackholes traffic cannot pin the
// pusher goroutine past Close. Pushes are grouped by destination, and a
// destination is abandoned on its first transport failure: a newcomer that
// crashed mid-transition costs one failed call, not one CallTimeout per
// entry it was owed.
func (n *Node) runHandoff(old, next *view, entries []core.Entry) {
	defer n.handoffs.Done()
	// The pushes outlive any request, so the deadline comes from the
	// node's own lifecycle: a context cancelled when n.stop closes, with
	// callWithin capping each push at CallTimeout on top.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		select {
		case <-n.stop:
			cancel()
		case <-ctx.Done():
		}
	}()
	plan := planHandoff(old, next, n.cfg.Addr, entries, n.now())
	dests := make([]string, 0, 4)
	byDest := make(map[string][]replica.Push)
	for _, p := range plan {
		if _, seen := byDest[p.To]; !seen {
			dests = append(dests, p.To)
		}
		byDest[p.To] = append(byDest[p.To], p)
	}
	for _, dest := range dests {
		for _, p := range byDest[dest] {
			if ctx.Err() != nil {
				return
			}
			n.m.handoffMsgs.Add(1)
			n.counters.Inc(stats.MsgControl)
			resp, err := n.callWithin(ctx, p.To, transport.Request{
				Op: transport.OpInsert, Key: uint64(p.Key), Value: p.Value, TTL: p.TTL,
			})
			if err != nil {
				n.m.handoffPushFailed.Add(1)
				break // unreachable; its keys degrade to broadcast-on-miss
			}
			if resp.OK {
				n.m.handoffPushOK.Add(1)
				n.m.handoffKeys.Add(1)
				if n.persist != nil {
					// Audit trail only: the holder keeps its copy (the
					// planner's no-deletion rule), so replay ignores these.
					_ = n.persist.Append(store.Record{Op: store.OpHandoff, Key: uint64(p.Key), Value: p.Value})
				}
			} else {
				// The peer answered but refused (full cache, malformed
				// TTL): the push did not land.
				n.m.handoffPushFailed.Add(1)
			}
		}
	}
}
