package node

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pdht/internal/keyspace"
	"pdht/internal/obs"
	"pdht/internal/transport"
)

// TestWireTraceCapturesServerSideFailover is the tentpole's end-to-end
// proof, over real TCP sockets: a 3-node r=2 cluster indexes a key, the
// key's primary is killed, and the next query's trace must show the
// failover from BOTH sides of the wire — the client-side probe that failed
// at the dead primary, and the backup's own server-side index-lookup hit,
// stitched into the same QueryTrace. The indexing query before the kill
// must likewise carry server-side legs from at least two distinct peers
// (the broadcast answerers and the replica inserts), proving spans
// propagate across the whole fan-out, not just the first hop.
func TestWireTraceCapturesServerSideFailover(t *testing.T) {
	var mu sync.Mutex
	var traces []obs.QueryTrace
	cfg := obsClusterConfig()
	cfg.Repl = 2
	cfg.TraceHook = func(qt obs.QueryTrace) {
		mu.Lock()
		traces = append(traces, qt)
		mu.Unlock()
	}
	c, err := NewCluster(transport.NewTCP(), 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.WaitConverged(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	const key = 8888
	c.PublishReplicated([]uint64{key}, 3)

	// Pick the querier outside the key's replica group, so its probe
	// sequence walks primary-first instead of short-circuiting at itself.
	querier, primary, backup := -1, "", ""
	for i := 0; i < c.Size(); i++ {
		n := c.Node(i)
		n.mu.Lock()
		rs, _ := n.view.set(n.cfg.Addr, keyspace.Key(key))
		n.mu.Unlock()
		if rs.Primary != "" && !rs.Contains(c.Addr(i)) {
			querier, primary = i, rs.Primary
			if len(rs.Backups) > 0 {
				backup = rs.Backups[0]
			}
			break
		}
	}
	if querier < 0 || backup == "" {
		t.Fatal("no node outside the replica group; enlarge the cluster")
	}

	// Index the key (miss → broadcast → insert at the replica set).
	mustQuery(t, c.Node(querier), key)

	mu.Lock()
	missTrace := traces[len(traces)-1]
	mu.Unlock()
	if got := distinctServerPeers(missTrace); len(got) < 2 {
		t.Errorf("indexing trace has server-side legs from %d peers %v, want ≥ 2;\n%s",
			len(got), got, missTrace.Timeline())
	}

	victim := -1
	for i := 0; i < c.Size(); i++ {
		if c.Addr(i) == primary {
			victim = i
		}
	}
	if victim < 0 {
		t.Fatalf("primary %s is not a cluster member", primary)
	}
	if err := c.Kill(victim); err != nil {
		t.Fatal(err)
	}

	// Query immediately, before gossip evicts the dead primary: the probe
	// must fail at the primary and the backup must answer from its index.
	res := mustQuery(t, c.Node(querier), key)
	if !res.FromIndex {
		t.Fatalf("failover query did not hit the index: %+v", res)
	}

	mu.Lock()
	defer mu.Unlock()
	for _, qt := range traces {
		if qt.Key != key || qt.Outcome != "hit" {
			continue
		}
		failedAtPrimary, serverHitAtBackup := false, false
		for _, leg := range qt.Legs {
			if leg.Name == "probe" && leg.Target == primary && leg.Outcome == "failed" {
				failedAtPrimary = true
			}
			if leg.Peer == backup && leg.Name == "index-lookup" && leg.Outcome == "hit" {
				serverHitAtBackup = true
			}
		}
		if failedAtPrimary && serverHitAtBackup {
			return // both sides of the failover are on one record
		}
	}
	for _, qt := range traces {
		t.Logf("trace:\n%s", qt.Timeline())
	}
	t.Fatal("no trace shows the failed probe at the primary AND the backup's server-side hit")
}

// distinctServerPeers collects the distinct peers that contributed
// server-side legs (legs stitched from Response.Spans carry Peer) to one
// trace.
func distinctServerPeers(qt obs.QueryTrace) []string {
	seen := make(map[string]bool)
	var out []string
	for _, leg := range qt.Legs {
		if leg.Peer != "" && !seen[leg.Peer] {
			seen[leg.Peer] = true
			out = append(out, leg.Peer)
		}
	}
	return out
}

// TestClusterReportMatchesNodeReports: the fleet aggregation must agree
// with the ground truth — the sum of every node's own Report. Queries and
// hits only move when the test queries, so they match exactly; the message
// counters also move with background gossip, so the fleet's msgs/query is
// bracketed between the sums taken before and after the poll.
func TestClusterReportMatchesNodeReports(t *testing.T) {
	c, err := NewCluster(transport.NewMemory(), 3, obsClusterConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.WaitConverged(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	keys := []uint64{100, 101, 102, 103, 104}
	c.PublishReplicated(keys, 3)
	for round := 0; round < 3; round++ {
		for i, k := range keys {
			mustQuery(t, c.Node(i%3), k)
		}
	}

	sumMsgs := func() float64 {
		var total float64
		for i := 0; i < c.Size(); i++ {
			for _, v := range c.Node(i).Report().Messages {
				total += float64(v)
			}
		}
		return total
	}

	var queries, hits uint64
	for i := 0; i < c.Size(); i++ {
		r := c.Node(i).Report()
		queries += r.Queries
		hits += r.Hits
	}
	msgsBefore := sumMsgs()
	fleet, err := c.Node(0).ClusterReport(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	msgsAfter := sumMsgs()

	if len(fleet.Peers) != 3 {
		t.Fatalf("fleet has %d rows, want 3: %+v", len(fleet.Peers), fleet.Peers)
	}
	if fleet.Queries != queries || fleet.Hits != hits {
		t.Errorf("fleet queries/hits = %d/%d, Σ Reports = %d/%d",
			fleet.Queries, fleet.Hits, queries, hits)
	}
	lo, hi := msgsBefore/float64(queries), msgsAfter/float64(queries)
	if fleet.MsgsPerQuery < lo || fleet.MsgsPerQuery > hi {
		t.Errorf("fleet msgs/query = %v, want within [%v, %v] (Σ messages / Σ queries)",
			fleet.MsgsPerQuery, lo, hi)
	}
	if fleet.HitRate <= 0 || fleet.P99 <= 0 {
		t.Errorf("fleet aggregates missing: hit rate %v, p99 %v", fleet.HitRate, fleet.P99)
	}

	// The client-only path sees the same fleet.
	rc, err := DialRemote(context.Background(), c.tr, RemoteConfig{Seeds: []string{c.Addr(0)}})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	remote, err := rc.ClusterReport(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(remote.Peers) != 3 {
		t.Fatalf("remote fleet has %d rows, want 3", len(remote.Peers))
	}
	if remote.Queries < fleet.Queries {
		t.Errorf("remote fleet queries = %d, want ≥ %d", remote.Queries, fleet.Queries)
	}
}

// TestTraceSamplingZeroStaysClientSide: with sampling 0 a traced query
// still produces its client-side record, but no RPC carries a trace ID, so
// no server-side legs appear.
func TestTraceSamplingZeroStaysClientSide(t *testing.T) {
	var mu sync.Mutex
	var traces []obs.QueryTrace
	cfg := obsClusterConfig()
	cfg.TraceSampling = 0
	cfg.TraceHook = func(qt obs.QueryTrace) {
		mu.Lock()
		traces = append(traces, qt)
		mu.Unlock()
	}
	c, err := NewCluster(transport.NewMemory(), 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	mustPublish(t, c.Node(1), 55, 550)
	mustQuery(t, c.Node(0), 55)
	mustQuery(t, c.Node(0), 55)

	mu.Lock()
	defer mu.Unlock()
	if len(traces) == 0 {
		t.Fatal("sampling 0 suppressed client-side traces entirely")
	}
	for _, qt := range traces {
		if len(qt.Legs) == 0 {
			t.Errorf("trace for key %d lost its client-side legs", qt.Key)
		}
		if peers := distinctServerPeers(qt); len(peers) != 0 {
			t.Errorf("sampling 0 leaked server-side legs from %v:\n%s", peers, qt.Timeline())
		}
	}
}

// TestSampleWireID pins the sampler's contract: rate 0 never samples,
// rate 1 always does (and never returns the on-the-wire "untraced" zero),
// and a middling rate samples roughly its share of a large sequence.
func TestSampleWireID(t *testing.T) {
	var seq atomic.Uint64
	for i := 0; i < 1000; i++ {
		if id := sampleWireID(&seq, 0); id != 0 {
			t.Fatalf("rate 0 sampled id %d", id)
		}
		if id := sampleWireID(&seq, 1); id == 0 {
			t.Fatal("rate 1 returned the untraced sentinel 0")
		}
	}
	const n = 20000
	hits := 0
	for i := 0; i < n; i++ {
		if sampleWireID(&seq, 0.25) != 0 {
			hits++
		}
	}
	got := float64(hits) / n
	if got < 0.20 || got > 0.30 {
		t.Errorf("rate 0.25 sampled %.3f of %d queries, want ≈ 0.25", got, n)
	}
}

// TestQueryHitPathAllocsUnchangedBySampling is the zero-overhead guard:
// without a trace hook or slow-query log no query owns a trace, so the
// sampling knob — whatever its value — must not change the hit path's
// allocation count by even one. AllocsPerRun reads process-wide mallocs,
// so each setting is measured several times and the minima compared,
// keeping background gossip ticks out of the verdict.
func TestQueryHitPathAllocsUnchangedBySampling(t *testing.T) {
	measure := func(sampling float64) float64 {
		cfg := DefaultConfig()
		cfg.RoundDuration = time.Second
		cfg.KeyTtl = 1 << 20
		cfg.GossipInterval = 10 * time.Millisecond
		cfg.TraceSampling = sampling
		c, err := NewCluster(transport.NewMemory(), 3, cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if err := c.WaitConverged(5 * time.Second); err != nil {
			t.Fatal(err)
		}
		const key = 424242
		mustPublish(t, c.Node(1), key, 7)
		if res := mustQuery(t, c.Node(0), key); !res.Answered {
			t.Fatal("warm-up query unanswered")
		}
		if res := mustQuery(t, c.Node(0), key); !res.FromIndex {
			t.Fatal("warm-up repeat did not hit the index")
		}
		ctx := context.Background()
		best := float64(1 << 30)
		for rep := 0; rep < 5; rep++ {
			allocs := testing.AllocsPerRun(50, func() {
				if res, err := c.Node(0).Query(ctx, key); err != nil || !res.FromIndex {
					t.Fatal("steady-state query missed the index")
				}
			})
			if allocs < best {
				best = allocs
			}
		}
		return best
	}
	off := measure(0)
	on := measure(1)
	if on != off {
		t.Errorf("hookless hit path allocates %.1f with sampling on vs %.1f with sampling off; the knob must be free without traces", on, off)
	}
}
