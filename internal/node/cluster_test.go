package node

import (
	"math"
	"math/rand/v2"
	"strconv"
	"testing"
	"time"

	"pdht/internal/keyspace"
	"pdht/internal/transport"
	"pdht/internal/zipf"
)

// TestClusterZipfWorkloadWithChurn is the cluster-path integration test:
// six nodes on the in-memory transport, a Zipf-skewed workload over a
// replicated corpus, one node crashed mid-workload and later restarted,
// with the selection algorithm's end-to-end behavior asserted at each
// phase — miss → broadcast → insert → subsequent hit; gossip convergence
// within a bounded number of protocol periods after the crash (dead peer
// evicted from every live view, no coordinator); key handoff on the view
// changes; hit-rate recovery to within tolerance of the pre-kill SolveTTL
// prediction after the restart; and TTL expiry of unqueried keys at the
// end.
func TestClusterZipfWorkloadWithChurn(t *testing.T) {
	const (
		nodes = 6
		keys  = 150
	)
	cfg := DefaultConfig()
	cfg.RoundDuration = 50 * time.Millisecond
	cfg.KeyTtl = 10 // 500ms of lifetime
	cfg.Repl = 3
	cfg.Capacity = 4 * keys
	cfg.GossipInterval = 25 * time.Millisecond
	cfg.SuspicionTimeout = 100 * time.Millisecond
	cfg.SyncInterval = 50 * time.Millisecond
	// The convergence budget, in protocol periods: detection (a few
	// probes) + suspicion + dissemination. Generous enough that only a
	// protocol bug can miss it, bounded enough to mean something.
	bound := 100*cfg.GossipInterval + 2*cfg.SuspicionTimeout

	c, err := NewCluster(transport.NewMemory(), nodes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.WaitConverged(bound); err != nil {
		t.Fatal(err)
	}

	// A corpus of hashed keys, each replicated at 3 content stores so a
	// single crash cannot orphan content.
	corpus := make([]uint64, keys)
	for i := range corpus {
		corpus[i] = uint64(keyspace.HashString("article:" + strconv.Itoa(i)))
	}
	c.PublishReplicated(corpus, 3)

	// Phase 1: Zipf workload from all live nodes. The skew makes head
	// keys repeat heavily; repeats inside keyTtl must hit the index.
	dist, err := zipf.New(1.2, keys)
	if err != nil {
		t.Fatal(err)
	}
	sampler := zipf.NewSampler(dist, rand.New(rand.NewPCG(7, 11)))
	rng := rand.New(rand.NewPCG(1, 2))
	answered, fromIndex := 0, 0
	for q := 0; q < 600; q++ {
		res := mustQuery(t, c.Node(rng.IntN(nodes)), corpus[sampler.Sample()])
		if res.Answered {
			answered++
		}
		if res.FromIndex {
			fromIndex++
		}
	}
	if answered != 600 {
		t.Fatalf("phase 1: %d/600 queries answered; replicated content must always resolve", answered)
	}
	// With α=1.2 over 150 keys, well over half the queries are repeats of
	// the head; almost all of those land within keyTtl. Require a
	// conservative floor so scheduler jitter cannot flake the test.
	if fromIndex < 200 {
		t.Fatalf("phase 1: only %d/600 queries hit the index", fromIndex)
	}
	// The pre-kill operating point: SolveTTL's prediction fitted to the
	// observed workload, the yardstick recovery is measured against.
	// The fit needs at least one elapsed round for a finite fQry.
	waitFor(t, 5*time.Second, func() bool { return c.Node(0).Report().Rounds >= 1 }, "round clock to advance")
	pre := c.Node(0).Report()
	if pre.Model == nil {
		t.Fatalf("node 0 report lacks the SolveTTL comparison before the kill: %+v", pre)
	}

	// Phase 2: crash a node mid-workload (not the seed). The gossip
	// layer must converge — dead peer suspected, confirmed, and evicted
	// from every live view — within the protocol-period bound, with no
	// coordinator involved. Queries keep being answered throughout.
	const victim = 3
	if err := c.Kill(victim); err != nil {
		t.Fatal(err)
	}
	killed := time.Now()
	for q := 0; q < 200; q++ {
		from := rng.IntN(nodes)
		if from == victim {
			from = (victim + 1) % nodes
		}
		res := mustQuery(t, c.Node(from), corpus[sampler.Sample()])
		if !res.Answered {
			t.Fatalf("phase 2: query %d unanswered during churn", q)
		}
	}
	if err := c.WaitConverged(bound - time.Since(killed)); err != nil {
		t.Fatalf("phase 2: dead peer not evicted within %v: %v", bound, err)
	}
	// The view change moved replica groups, so the survivors must have
	// handed off the affected entries.
	var handoffMsgs uint64
	for i := 0; i < nodes; i++ {
		if i != victim {
			handoffMsgs += c.Node(i).Report().HandoffMsgs
		}
	}
	if handoffMsgs == 0 {
		t.Fatal("phase 2: no node pushed a handoff after the view change")
	}

	// Phase 3: restart the victim. It rejoins through a live member,
	// refutes its own death with a higher incarnation, and every view
	// readopts it — again within the bound.
	if err := c.Restart(victim); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitConverged(bound); err != nil {
		t.Fatalf("phase 3: restarted node not readopted: %v", err)
	}
	for q := 0; q < 100; q++ {
		res := mustQuery(t, c.Node(victim), corpus[sampler.Sample()])
		if !res.Answered {
			t.Fatalf("phase 3: query %d from restarted node unanswered", q)
		}
	}

	// Recovery: after convergence the steady state must return. Measure
	// the hit rate over a fresh window and compare it against the
	// pre-kill SolveTTL prediction — the paper's model, fitted before
	// the churn, must still describe the recovered cluster.
	recAnswered, recHits := 0, 0
	for q := 0; q < 400; q++ {
		res := mustQuery(t, c.Node(rng.IntN(nodes)), corpus[sampler.Sample()])
		if res.Answered {
			recAnswered++
		}
		if res.FromIndex {
			recHits++
		}
	}
	if recAnswered != 400 {
		t.Fatalf("recovery: %d/400 queries answered", recAnswered)
	}
	recRate := float64(recHits) / 400
	predicted := pre.Model.PredictedHitRate
	t.Logf("recovery hit rate %.3f vs pre-kill SolveTTL prediction %.3f (phase-1 measured %.3f)",
		recRate, predicted, float64(fromIndex)/600)
	if math.Abs(recRate-predicted) > 0.2 {
		t.Fatalf("recovered hit rate %.3f is not within 0.2 of the pre-kill prediction %.3f", recRate, predicted)
	}
	if recRate < 0.5*float64(fromIndex)/600 {
		t.Fatalf("recovered hit rate %.3f collapsed below half the pre-kill measurement %.3f",
			recRate, float64(fromIndex)/600)
	}

	// Phase 4: a freshly-seen cold key walks the full selection path.
	cold := uint64(keyspace.HashString("cold:never-queried-before"))
	mustPublish(t, c.Node(0), cold, 31415)
	res := mustQuery(t, c.Node(1), cold)
	if !res.Answered || res.FromIndex || res.Value != 31415 {
		t.Fatalf("cold query = %+v, want broadcast answer 31415", res)
	}
	if res.BroadcastMsgs == 0 {
		t.Fatal("cold query cost no broadcast messages")
	}
	res = mustQuery(t, c.Node(2), cold)
	if !res.FromIndex {
		t.Fatalf("repeat of cold key = %+v, want index hit", res)
	}

	// Phase 5: silence. Every entry must expire within keyTtl; the index
	// drains to empty with no coordination — the paper's defining claim,
	// and proof that handed-off entries carried their remaining TTL
	// rather than a refreshed one.
	if c.IndexedKeys() == 0 {
		t.Fatal("index already empty before the silence phase — workload too weak")
	}
	time.Sleep(2 * time.Duration(cfg.KeyTtl) * cfg.RoundDuration)
	if got := c.IndexedKeys(); got != 0 {
		t.Fatalf("%d keys still indexed after %v of silence, want 0", got, 2*time.Duration(cfg.KeyTtl)*cfg.RoundDuration)
	}

	// The per-node reports must carry the model comparison next to the
	// measurement (the live Figures 3–4 readout).
	r := c.Node(0).Report()
	if r.Model == nil {
		t.Fatalf("node 0 report lacks the SolveTTL comparison: %+v", r)
	}
	t.Logf("node 0 after run:\n%s", r)
}
