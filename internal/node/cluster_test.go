package node

import (
	"math/rand/v2"
	"strconv"
	"testing"
	"time"

	"pdht/internal/keyspace"
	"pdht/internal/transport"
	"pdht/internal/zipf"
)

// TestClusterZipfWorkloadWithChurn is the cluster-path integration test:
// six nodes on the in-memory transport, a Zipf-skewed workload over a
// replicated corpus, one node crashed mid-run and later restarted, with
// the selection algorithm's end-to-end behavior asserted at each phase —
// miss → broadcast → insert → subsequent hit, service through churn, and
// TTL expiry of unqueried keys afterwards.
func TestClusterZipfWorkloadWithChurn(t *testing.T) {
	const (
		nodes = 6
		keys  = 150
	)
	cfg := DefaultConfig()
	cfg.RoundDuration = 50 * time.Millisecond
	cfg.KeyTtl = 10 // 500ms of lifetime
	cfg.Repl = 3
	cfg.Capacity = 4 * keys

	c, err := NewCluster(transport.NewMemory(), nodes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	waitFor(t, 5*time.Second, func() bool {
		for i := 0; i < nodes; i++ {
			if len(c.Node(i).Members()) != nodes {
				return false
			}
		}
		return true
	}, "full membership")

	// A corpus of hashed keys, each replicated at 3 content stores so a
	// single crash cannot orphan content.
	corpus := make([]uint64, keys)
	for i := range corpus {
		corpus[i] = uint64(keyspace.HashString("article:" + strconv.Itoa(i)))
	}
	c.PublishReplicated(corpus, 3)

	// Phase 1: Zipf workload from all live nodes. The skew makes head
	// keys repeat heavily; repeats inside keyTtl must hit the index.
	dist, err := zipf.New(1.2, keys)
	if err != nil {
		t.Fatal(err)
	}
	sampler := zipf.NewSampler(dist, rand.New(rand.NewPCG(7, 11)))
	rng := rand.New(rand.NewPCG(1, 2))
	answered, fromIndex := 0, 0
	for q := 0; q < 600; q++ {
		res := c.Node(rng.IntN(nodes)).Query(corpus[sampler.Sample()])
		if res.Answered {
			answered++
		}
		if res.FromIndex {
			fromIndex++
		}
	}
	if answered != 600 {
		t.Fatalf("phase 1: %d/600 queries answered; replicated content must always resolve", answered)
	}
	// With α=1.2 over 150 keys, well over half the queries are repeats of
	// the head; almost all of those land within keyTtl. Require a
	// conservative floor so scheduler jitter cannot flake the test.
	if fromIndex < 200 {
		t.Fatalf("phase 1: only %d/600 queries hit the index", fromIndex)
	}

	// Phase 2: crash a node mid-run (not the seed). Queries keep being
	// answered: index probes to the dead peer fail over to the replica
	// flood, broadcasts tolerate the silent member, content is
	// replicated around the hole.
	const victim = 3
	if err := c.Kill(victim); err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 200; q++ {
		from := rng.IntN(nodes)
		if from == victim {
			from = (victim + 1) % nodes
		}
		res := c.Node(from).Query(corpus[sampler.Sample()])
		if !res.Answered {
			t.Fatalf("phase 2: query %d unanswered during churn", q)
		}
	}

	// Phase 3: restart the victim. It rejoins with an empty cache and
	// serves again; the whole cluster still answers everything.
	if err := c.Restart(victim); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool { return len(c.Node(victim).Members()) == nodes }, "restarted node readopting the view")
	if got := c.Node(victim).Report().IndexedKeys; got != 0 {
		t.Fatalf("restarted node has %d cached entries, want 0 (crash loses volatile state)", got)
	}
	for q := 0; q < 100; q++ {
		res := c.Node(victim).Query(corpus[sampler.Sample()])
		if !res.Answered {
			t.Fatalf("phase 3: query %d from restarted node unanswered", q)
		}
	}

	// Phase 4: a freshly-seen cold key walks the full selection path.
	cold := uint64(keyspace.HashString("cold:never-queried-before"))
	c.Node(0).Publish(cold, 31415)
	res := c.Node(1).Query(cold)
	if !res.Answered || res.FromIndex || res.Value != 31415 {
		t.Fatalf("cold query = %+v, want broadcast answer 31415", res)
	}
	if res.BroadcastMsgs == 0 {
		t.Fatal("cold query cost no broadcast messages")
	}
	res = c.Node(2).Query(cold)
	if !res.FromIndex {
		t.Fatalf("repeat of cold key = %+v, want index hit", res)
	}

	// Phase 5: silence. Every entry must expire within keyTtl; the index
	// drains to empty with no coordination — the paper's defining claim.
	if c.IndexedKeys() == 0 {
		t.Fatal("index already empty before the silence phase — workload too weak")
	}
	time.Sleep(2 * time.Duration(cfg.KeyTtl) * cfg.RoundDuration)
	if got := c.IndexedKeys(); got != 0 {
		t.Fatalf("%d keys still indexed after %v of silence, want 0", got, 2*time.Duration(cfg.KeyTtl)*cfg.RoundDuration)
	}

	// The per-node reports must carry the model comparison next to the
	// measurement (the live Figures 3–4 readout).
	r := c.Node(0).Report()
	if r.Model == nil {
		t.Fatalf("node 0 report lacks the SolveTTL comparison: %+v", r)
	}
	t.Logf("node 0 after run:\n%s", r)
}
