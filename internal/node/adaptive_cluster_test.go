package node

import (
	"math"
	"math/rand/v2"
	"strconv"
	"testing"
	"time"

	"pdht/internal/keyspace"
	"pdht/internal/model"
	"pdht/internal/transport"
	"pdht/internal/workload"
	"pdht/internal/zipf"
)

// adaptiveClusterCfg is the shared scenario of the adaptive integration
// test: enough maintenance (env = 0.5) that fMin is large enough to gate
// the Zipf tail, and a deliberately tiny static keyTtl the control plane
// must outgrow. Repl stays at 3 — with the replica-coherent refresh
// fan-out charged against every hit (WriteFanout = repl−1), a 6-peer
// cluster at repl 4 is priced out of indexing entirely (fMin = +Inf),
// which is the honest answer but not the regime this test exercises.
func adaptiveClusterCfg() Config {
	cfg := DefaultConfig()
	cfg.RoundDuration = 8 * time.Millisecond
	cfg.KeyTtl = 4 // badly undersized on purpose
	cfg.Repl = 3
	cfg.Capacity = 256
	cfg.MaintainEnv = 0.5
	cfg.GossipInterval = 25 * time.Millisecond
	cfg.SuspicionTimeout = 100 * time.Millisecond
	cfg.SyncInterval = 50 * time.Millisecond
	cfg.RetuneInterval = 240 * cfg.RoundDuration // ≈1.9s windows
	return cfg
}

// driveRounds paces a Zipf workload at one query per node per round for the
// given number of rounds, applying any scheduled popularity shifts, and
// returns (queries, index hits, total messages). round numbering continues
// across calls via *round.
func driveRounds(t *testing.T, c *Cluster, sampler *zipf.Sampler, corpus []uint64,
	shifts workload.Schedule, round *int, rounds int) (q, hits, msgs int) {
	t.Helper()
	tick := time.NewTicker(c.Node(0).Config().RoundDuration)
	defer tick.Stop()
	for i := 0; i < rounds; i++ {
		shifts.Apply(*round, sampler)
		for n := 0; n < c.Size(); n++ {
			res := mustQuery(t, c.Node(n), corpus[sampler.Sample()])
			if !res.Answered {
				t.Fatalf("round %d: query from node %d unanswered", *round, n)
			}
			q++
			if res.FromIndex {
				hits++
			}
			msgs += res.Total()
		}
		*round++
		<-tick.C
	}
	return q, hits, msgs
}

// TestAdaptiveClusterShiftRecovery is the acceptance test of the control
// plane: a 6-node adaptive cluster under a mid-run Zipf popularity shuffle
//
//   - converges its tuned keyTtl to within 25% of SolveTTL's recommendation
//     (keyTtl = 1/fMin) for the post-shift workload,
//   - recovers its hit rate within a bounded number of retune periods,
//   - measurably gates below-fMin keys while sketch memory stays bounded,
//   - and beats a static-KeyTtl run of the same workload on messages/query.
func TestAdaptiveClusterShiftRecovery(t *testing.T) {
	const (
		nodes       = 6
		keys        = 150
		alpha       = 1.2
		preRounds   = 520 // ≈2 retune windows before the shift
		postRounds  = 760 // ≈3 retune windows after it
		measureTail = 180 // hit-rate measurement window, in rounds
	)
	corpus := make([]uint64, keys)
	for i := range corpus {
		corpus[i] = uint64(keyspace.HashString("adaptive:" + strconv.Itoa(i)))
	}
	dist, err := zipf.New(alpha, keys)
	if err != nil {
		t.Fatal(err)
	}
	shifts := workload.Schedule{{Round: preRounds, Kind: workload.ShiftShuffle}}

	type phase struct{ hitRate, msgsPerQuery float64 }
	runCluster := func(adaptive bool) (pre, post phase, rep Report, gated uint64) {
		cfg := adaptiveClusterCfg()
		cfg.Adaptive = adaptive
		c, err := NewCluster(transport.NewMemory(), nodes, cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if err := c.WaitConverged(5 * time.Second); err != nil {
			t.Fatal(err)
		}
		c.PublishReplicated(corpus, 3)
		// Identical sampler and schedule for both runs: the A/B differs
		// only in the policy.
		sampler := zipf.NewSampler(dist, rand.New(rand.NewPCG(11, 13)))
		round := 0
		var totQ, totMsgs int
		q, h, m := driveRounds(t, c, sampler, corpus, shifts, &round, preRounds-measureTail)
		totQ, totMsgs = totQ+q, totMsgs+m
		q, h, m = driveRounds(t, c, sampler, corpus, shifts, &round, measureTail)
		totQ, totMsgs = totQ+q, totMsgs+m
		pre = phase{hitRate: float64(h) / float64(q), msgsPerQuery: float64(m) / float64(q)}
		// The shift fires on the first round of the next drive.
		q, h, m = driveRounds(t, c, sampler, corpus, shifts, &round, postRounds-measureTail)
		totQ, totMsgs = totQ+q, totMsgs+m
		q, h, m = driveRounds(t, c, sampler, corpus, shifts, &round, measureTail)
		totQ, totMsgs = totQ+q, totMsgs+m
		post = phase{hitRate: float64(h) / float64(q), msgsPerQuery: float64(totMsgs) / float64(totQ)}
		for i := 0; i < nodes; i++ {
			r := c.Node(i).Report()
			if r.Adaptive != nil {
				gated += r.Adaptive.GatedInserts
			}
		}
		return pre, post, c.Node(0).Report(), gated
	}

	preA, postA, repA, gatedA := runCluster(true)
	if repA.Adaptive == nil {
		t.Fatal("adaptive cluster reports no control-plane state")
	}
	if repA.Adaptive.Retunes < 2 {
		t.Fatalf("node 0 retuned %d times, want at least 2", repA.Adaptive.Retunes)
	}

	// (1) TTL convergence: the tuned keyTtl must land within 25% of the
	// model's recommendation for the *post-shift* workload, computed here
	// from the true scenario parameters (the shuffle permutes key ranks
	// but preserves the exponent, rate and universe).
	cfg := adaptiveClusterCfg()
	p := model.Params{
		NumPeers: nodes, Keys: keys, Stor: cfg.Capacity, Repl: cfg.Repl,
		Alpha: alpha, FQry: 1.0, // one query per node per round, by construction
		Env: cfg.MaintainEnv, Dup: 1.8, Dup2: 1.8,
		// The nodes fan the reset-on-hit refresh out to the replica set,
		// and the tuner charges for it; the reference model must too.
		WriteFanout: float64(cfg.Repl - 1),
	}
	sol, err := model.Solve(p, dist)
	if err != nil {
		t.Fatal(err)
	}
	want := model.IdealKeyTtl(sol)
	if want < 1 {
		t.Fatalf("scenario mis-sized: model recommends keyTtl %v", want)
	}
	got := float64(repA.Adaptive.KeyTtl)
	t.Logf("tuned keyTtl %v vs SolveTTL recommendation %.1f (fMin %.4g, fitted α %.2f, distinct %d)",
		got, want, repA.Adaptive.Tuner.Last.FMin, repA.Adaptive.Tuner.Last.Alpha, repA.Adaptive.Tuner.Last.DistinctKeys)
	if rel := math.Abs(got-want) / want; rel > 0.25 {
		t.Fatalf("tuned keyTtl %v is %.0f%% off the post-shift recommendation %.1f", got, 100*rel, want)
	}

	// (2) Hit-rate recovery within the bounded post-shift drive (three
	// retune periods): the final measurement window must be back to at
	// least 70% of the pre-shift operating point.
	t.Logf("hit rate: pre-shift %.3f → post-shift %.3f", preA.hitRate, postA.hitRate)
	if postA.hitRate < 0.7*preA.hitRate {
		t.Fatalf("post-shift hit rate %.3f did not recover to 70%% of pre-shift %.3f within 3 retune periods",
			postA.hitRate, preA.hitRate)
	}

	// (3) The fMin gate fired, and sketch memory stays bounded.
	if gatedA == 0 {
		t.Fatal("no insert was gated anywhere in the cluster")
	}
	if mem := repA.Adaptive.Tuner.MemoryBytes; mem <= 0 || mem > 1<<21 {
		t.Fatalf("per-node sketch memory %d bytes outside the bounded range", mem)
	}

	// (4) The A/B: the same workload under the static KeyTtl must cost
	// more messages per query than the adaptive run paid.
	_, postS, _, _ := runCluster(false)
	t.Logf("messages per query over the full run: adaptive %.2f vs static %.2f (gated %d)",
		postA.msgsPerQuery, postS.msgsPerQuery, gatedA)
	if postA.msgsPerQuery >= postS.msgsPerQuery {
		t.Fatalf("adaptive paid %.2f msgs/query, static %.2f — the control plane does not pay for itself",
			postA.msgsPerQuery, postS.msgsPerQuery)
	}
}
