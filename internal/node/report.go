package node

import (
	"fmt"
	"sort"
	"strings"

	"pdht/internal/adapt"
	"pdht/internal/gossip"
	"pdht/internal/model"
	"pdht/internal/stats"
	"pdht/internal/zipf"
)

// Report is a node's self-measurement: the live counterpart of the
// simulator's sim.Result, with the analytical prediction alongside so a
// deployment can see the paper's model and its own traffic on one line.
type Report struct {
	Addr    string
	Members int
	Rounds  int

	// Query-path counters.
	Queries, Hits, Misses         uint64
	Broadcasts, BroadcastAnswered uint64
	Inserts, Refreshes            uint64
	Unanswered, RPCFailures       uint64
	// StaleViews counts routed RPCs a peer refused because the two sides
	// disagreed on membership — each one a mis-route the hash check
	// turned into an explicit miss.
	StaleViews uint64
	// HandoffMsgs counts entry pushes sent on view changes (the replica
	// repair pass); HandoffKeys the ones the new owner accepted.
	HandoffMsgs, HandoffKeys uint64
	// ReadRepairs counts replica-set members re-inserted on a hit because
	// they answered the reset-on-hit refresh without holding the entry —
	// the read-repair path closing holes churn and lost write legs punch.
	ReadRepairs uint64

	// Adaptive is the control plane's state — nil unless the node runs
	// with Config.Adaptive.
	Adaptive *AdaptiveState

	// ViewVersion is the gossip version of the installed view;
	// Membership the full gossip table behind it (the live status view).
	ViewVersion uint64
	Membership  []gossip.Member

	// HitRate is Hits/Queries — the measured pIndxd of eq. 14.
	HitRate float64
	// IndexedKeys is the number of live entries in this node's cache (the
	// sweeper's gauge); StoredKeys the local content store size.
	IndexedKeys int
	StoredKeys  int
	// Messages is the per-class message breakdown this node paid.
	Messages map[stats.MsgClass]int64

	// Model carries the SolveTTL prediction for a scenario fitted to the
	// observed workload, nil when the node has not seen enough traffic
	// (fewer than 2 members or no queries) to fit one.
	Model *ModelComparison
}

// AdaptiveState reports the query-adaptive control plane: what the tuner
// fitted, what it actuated, and what that cost.
type AdaptiveState struct {
	// KeyTtl is the expiration time currently attached to inserts and
	// refreshes (the tuned value once a retune succeeded, the static
	// config knob before that); Retunes counts successful refits.
	KeyTtl  int
	Retunes uint64
	// GatedInserts counts broadcast-resolved keys the fMin gate refused
	// to index.
	GatedInserts uint64
	// Tuner is the control plane's own snapshot: the fitted scenario
	// (α, fQry, distinct keys), fMin, the gate threshold, and the fixed
	// memory footprint of the frequency summaries.
	Tuner adapt.Snapshot
}

// ModelComparison puts the measured operating point next to the analytical
// model's, the live analogue of the paper's Figures 3–4 comparison.
type ModelComparison struct {
	// The fitted scenario: cluster size, observed distinct keys, the
	// Zipf exponent max-likelihood-fitted to the node's own query
	// counts (EstimateAlpha), and the measured per-peer query rate.
	Peers        int
	DistinctKeys int
	Alpha        float64
	FQry         float64
	KeyTtl       float64
	// PredictedHitRate is eq. 14's pIndxd; PredictedIndexSize eq. 15 —
	// both evaluated at the fitted scenario.
	PredictedHitRate   float64
	PredictedIndexSize float64
	// MeasuredHitRate repeats Report.HitRate; MeasuredIndexSize estimates
	// the cluster-wide distinct indexed keys from this node's share
	// (live entries × members ÷ repl).
	MeasuredHitRate   float64
	MeasuredIndexSize float64
	// PredictedMsgsPerQuery is eq. 17's total cluster cost divided by the
	// cluster query rate (NumPeers × fQry): the model's prediction for the
	// measured msgs/query a FleetReport aggregates.
	PredictedMsgsPerQuery float64
}

// Report assembles the node's current self-measurement.
func (n *Node) Report() Report {
	n.mu.Lock()
	members := len(n.view.members)
	viewVersion := n.view.version
	repl := n.view.repl
	distinct := len(n.queryCounts)
	counts := make([]int, 0, distinct)
	for _, c := range n.queryCounts {
		counts = append(counts, int(c))
	}
	stored := len(n.store)
	live := n.cache.Live(n.now())
	n.mu.Unlock()

	r := Report{
		Addr:              n.cfg.Addr,
		Members:           members,
		Rounds:            n.now(),
		Queries:           n.m.queries.Value(),
		Hits:              n.m.hits.Value(),
		Misses:            n.m.misses.Value(),
		Broadcasts:        n.m.broadcasts.Value(),
		BroadcastAnswered: n.m.broadcastAnswered.Value(),
		Inserts:           n.m.inserts.Value(),
		Refreshes:         n.m.refreshes.Value(),
		Unanswered:        n.m.unanswered.Value(),
		RPCFailures:       n.m.rpcFailures.Value(),
		StaleViews:        n.m.staleViews.Value(),
		HandoffMsgs:       n.m.handoffMsgs.Value(),
		HandoffKeys:       n.m.handoffKeys.Value(),
		ReadRepairs:       n.m.readRepairs.Value(),
		ViewVersion:       viewVersion,
		Membership:        n.gossip.Snapshot(),
		IndexedKeys:       live,
		StoredKeys:        stored,
		Messages:          n.counters.Snapshot(),
	}
	if r.Queries > 0 {
		r.HitRate = float64(r.Hits) / float64(r.Queries)
	}
	if n.tuner != nil {
		r.Adaptive = &AdaptiveState{
			KeyTtl:       n.keyTtl(),
			Retunes:      n.m.retunes.Value(),
			GatedInserts: n.m.gatedInserts.Value(),
			Tuner:        n.tuner.Snapshot(),
		}
	}
	r.Model = n.modelComparison(r, members, repl, distinct, counts)
	return r
}

// modelComparison fits the paper's scenario to the observed workload and
// evaluates SolveTTL at it. Returns nil when the model would be ill-posed.
func (n *Node) modelComparison(r Report, members, repl, distinct int, counts []int) *ModelComparison {
	if members < 2 || r.Queries == 0 || distinct == 0 || r.Rounds == 0 {
		return nil
	}
	alpha, err := zipf.EstimateAlpha(counts, distinct)
	if err != nil {
		alpha = 1.2 // the paper's literature constant [Srip01]
	}
	p := model.Params{
		NumPeers: members,
		Keys:     distinct,
		Stor:     n.cfg.Capacity,
		Repl:     repl,
		Alpha:    alpha,
		// This node's rate stands in for the per-peer average: every
		// peer of the paper's scenario queries at the same rate.
		FQry: float64(r.Queries) / float64(r.Rounds),
		FUpd: 0,
		Env:  n.cfg.MaintainEnv,
		Dup:  1.8,
		Dup2: 1.8,
	}
	if n.cfg.FloodOnMiss {
		// Hits fan the reset-on-hit refresh out to the whole replica set;
		// the prediction must pay the same extra write legs the node does.
		p.WriteFanout = float64(repl - 1)
	}
	sol, err := model.SolveTTL(p, nil, float64(n.keyTtl()))
	if err != nil {
		return nil
	}
	mc := &ModelComparison{
		Peers:              members,
		DistinctKeys:       distinct,
		Alpha:              alpha,
		FQry:               p.FQry,
		KeyTtl:             sol.KeyTtl,
		PredictedHitRate:   sol.PIndxd,
		PredictedIndexSize: sol.IndexSize,
		MeasuredHitRate:    r.HitRate,
		MeasuredIndexSize:  float64(r.IndexedKeys) * float64(members) / float64(repl),
	}
	if clusterQPS := float64(members) * p.FQry; clusterQPS > 0 {
		mc.PredictedMsgsPerQuery = sol.Cost / clusterQPS
	}
	return mc
}

// String renders the report as the multi-line status block the CLI prints.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "node %s: %d members (view v%d), round %d\n", r.Addr, r.Members, r.ViewVersion, r.Rounds)
	fmt.Fprintf(&b, "  queries %d  hits %d  misses %d  hit-rate %.1f%%\n",
		r.Queries, r.Hits, r.Misses, 100*r.HitRate)
	fmt.Fprintf(&b, "  broadcasts %d (answered %d)  inserts %d  refreshes %d  unanswered %d  rpc-failures %d\n",
		r.Broadcasts, r.BroadcastAnswered, r.Inserts, r.Refreshes, r.Unanswered, r.RPCFailures)
	fmt.Fprintf(&b, "  stale-views %d  handoff %d/%d keys accepted/pushed  read-repairs %d\n",
		r.StaleViews, r.HandoffKeys, r.HandoffMsgs, r.ReadRepairs)
	fmt.Fprintf(&b, "  index entries %d  published keys %d\n", r.IndexedKeys, r.StoredKeys)
	if a := r.Adaptive; a != nil {
		fmt.Fprintf(&b, "  adaptive: keyTtl %d  retunes %d  gated inserts %d  sketches %d KiB\n",
			a.KeyTtl, a.Retunes, a.GatedInserts, a.Tuner.MemoryBytes/1024)
		if a.Tuner.Ready {
			d := a.Tuner.Last
			fmt.Fprintf(&b, "    fitted α=%.2f fQry=%.3g distinct≈%d → fMin=%.3g, gate threshold %d\n",
				d.Alpha, d.FQry, d.DistinctKeys, d.FMin, d.GateThreshold)
		}
	}
	if len(r.Membership) > 0 {
		b.WriteString("  membership:")
		for _, m := range r.Membership {
			fmt.Fprintf(&b, " %s=%s/%d", m.Addr, m.Status, m.Incarnation)
		}
		b.WriteByte('\n')
	}
	classes := make([]stats.MsgClass, 0, len(r.Messages))
	for c := range r.Messages {
		if r.Messages[c] > 0 {
			classes = append(classes, c)
		}
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
	if len(classes) > 0 {
		b.WriteString("  messages:")
		for _, c := range classes {
			fmt.Fprintf(&b, " %s=%d", c, r.Messages[c])
		}
		b.WriteByte('\n')
	}
	if m := r.Model; m != nil {
		fmt.Fprintf(&b, "  model (SolveTTL @ %d peers, %d keys, α=%.2f, fQry=%.3g, keyTtl=%.0f):\n",
			m.Peers, m.DistinctKeys, m.Alpha, m.FQry, m.KeyTtl)
		fmt.Fprintf(&b, "    hit rate: measured %.1f%% vs predicted %.1f%%\n",
			100*m.MeasuredHitRate, 100*m.PredictedHitRate)
		fmt.Fprintf(&b, "    index size: measured ≈%.0f keys vs predicted %.0f keys\n",
			m.MeasuredIndexSize, m.PredictedIndexSize)
	}
	return b.String()
}
