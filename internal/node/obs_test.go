package node

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand/v2"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"pdht/internal/keyspace"
	"pdht/internal/obs"
	"pdht/internal/transport"
	"pdht/internal/zipf"
)

// obsClusterConfig is the fast-clock configuration the telemetry tests run
// their clusters with: 50ms rounds, a keyTtl long enough that nothing
// expires mid-test, and gossip quick enough that convergence is cheap.
func obsClusterConfig() Config {
	cfg := DefaultConfig()
	cfg.RoundDuration = 50 * time.Millisecond
	cfg.KeyTtl = 200 // 10s of lifetime; no expiry during a test
	cfg.Repl = 3
	cfg.GossipInterval = 25 * time.Millisecond
	cfg.SuspicionTimeout = 100 * time.Millisecond
	cfg.SyncInterval = 50 * time.Millisecond
	return cfg
}

// metricValue extracts one un-labelled (or fully labelled, when series
// includes the braces) sample value from a Prometheus exposition.
func metricValue(t *testing.T, exposition, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(exposition, "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("series %s: bad value %q: %v", series, rest, err)
			}
			return v
		}
	}
	t.Fatalf("series %q not in exposition:\n%s", series, exposition)
	return 0
}

// TestMetricsMatchReport drives real traffic through a 3-node cluster and
// asserts the two observation surfaces agree exactly: the /metrics
// exposition's node counters equal the Report fields, because both are views
// over the same atomics. Run on the debug HTTP plane end to end (httptest
// over DebugHandler) so the handler, the JSON report and the health check
// are covered in one live pass.
func TestMetricsMatchReport(t *testing.T) {
	c, err := NewCluster(transport.NewMemory(), 3, obsClusterConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.WaitConverged(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Published keys resolve (miss → broadcast → insert, then hits on
	// repeats); unpublished keys go through the whole miss path unanswered.
	keys := make([]uint64, 20)
	for i := range keys {
		keys[i] = uint64(1000 + i)
	}
	c.PublishReplicated(keys, 3)
	n := c.Node(0)
	for round := 0; round < 3; round++ {
		for _, k := range keys {
			mustQuery(t, n, k)
		}
	}
	for k := uint64(9000); k < 9005; k++ {
		mustQuery(t, n, k) // nobody holds these
	}

	srv := httptest.NewServer(n.DebugHandler())
	defer srv.Close()
	get := func(path string) (string, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	report := n.Report()
	exposition, ctype := get("/metrics")
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Errorf("/metrics content type %q", ctype)
	}

	for _, check := range []struct {
		series string
		want   uint64
	}{
		{"pdht_node_queries_total", report.Queries},
		{"pdht_node_hits_total", report.Hits},
		{"pdht_node_misses_total", report.Misses},
		{"pdht_node_broadcasts_total", report.Broadcasts},
		{"pdht_node_broadcasts_answered_total", report.BroadcastAnswered},
		{"pdht_node_inserts_total", report.Inserts},
		{"pdht_node_unanswered_total", report.Unanswered},
		{"pdht_node_refreshes_total", report.Refreshes},
		{"pdht_node_read_repairs_total", report.ReadRepairs},
	} {
		if got := metricValue(t, exposition, check.series); got != float64(check.want) {
			t.Errorf("%s = %v, Report says %d", check.series, got, check.want)
		}
	}
	// Every unary query lands in exactly one outcome bucket of the latency
	// histogram; their counts partition Queries.
	var histTotal float64
	for _, outcome := range []string{"hit", "broadcast", "miss"} {
		histTotal += metricValue(t, exposition,
			fmt.Sprintf("pdht_node_query_seconds_count{outcome=%q}", outcome))
	}
	if histTotal != float64(report.Queries) {
		t.Errorf("query_seconds buckets sum to %v, Report.Queries = %d", histTotal, report.Queries)
	}
	// The transport layer saw every probe this node issued.
	if v := metricValue(t, exposition, `pdht_transport_requests_total{op="query"}`); v == 0 {
		t.Error("no outbound query RPCs counted on the transport")
	}
	if v := metricValue(t, exposition, "pdht_gossip_view_version"); v < 1 {
		t.Errorf("gossip view version gauge = %v", v)
	}

	body, ctype := get("/report")
	if !strings.HasPrefix(ctype, "application/json") {
		t.Errorf("/report content type %q", ctype)
	}
	var decoded Report
	if err := json.Unmarshal([]byte(body), &decoded); err != nil {
		t.Fatalf("/report JSON: %v", err)
	}
	if decoded.Queries != report.Queries || decoded.Hits != report.Hits {
		t.Errorf("/report says %d/%d queries/hits, Report %d/%d",
			decoded.Queries, decoded.Hits, report.Queries, report.Hits)
	}

	if body, _ := get("/healthz"); body != "ok\n" {
		t.Errorf("/healthz = %q", body)
	}
}

// TestReportJSONRoundTrip pins the report's wire form: a live report
// marshals, unmarshals back into an equal structure, and the per-class
// message map is keyed by the class names (MsgClass.MarshalText), not by
// bare integers.
func TestReportJSONRoundTrip(t *testing.T) {
	c, err := NewCluster(transport.NewMemory(), 2, obsClusterConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	mustPublish(t, c.Node(1), 42, 420)
	mustQuery(t, c.Node(0), 42) // miss → broadcast → insert
	mustQuery(t, c.Node(0), 42) // hit

	report := c.Node(0).Report()
	data, err := json.Marshal(report)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"broadcast":`) {
		t.Errorf("Messages map not keyed by class name:\n%s", data)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Queries != report.Queries || back.Hits != report.Hits ||
		back.Broadcasts != report.Broadcasts || back.ViewVersion != report.ViewVersion {
		t.Errorf("round trip changed counters: %+v vs %+v", back, report)
	}
	for class, count := range report.Messages {
		if back.Messages[class] != count {
			t.Errorf("round trip changed Messages[%s]: %d vs %d", class, back.Messages[class], count)
		}
	}
}

// TestQueryReportRace hammers the query path from several goroutines while
// other goroutines continuously assemble reports and render the exposition —
// the torn-read audit of satellite: every counter the two surfaces serve is
// an atomic on the registry, so -race must stay quiet and no read can tear.
func TestQueryReportRace(t *testing.T) {
	c, err := NewCluster(transport.NewMemory(), 3, obsClusterConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	keys := []uint64{1, 2, 3, 4, 5}
	c.PublishReplicated(keys, 3)
	n := c.Node(0)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				mustQuery(t, n, keys[(g+i)%len(keys)])
			}
		}(g)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sink strings.Builder
			for {
				select {
				case <-stop:
					return
				default:
				}
				r := n.Report()
				if r.Hits > r.Queries {
					t.Errorf("torn read: %d hits > %d queries", r.Hits, r.Queries)
					return
				}
				sink.Reset()
				if err := n.Metrics().WritePrometheus(&sink); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
}

// TestTraceCapturesFailover kills a key's primary and asserts the next
// query's trace records the failover: a failed probe at the dead primary,
// then a hit at a ranked backup — the per-leg causality record the trace
// plane exists for.
func TestTraceCapturesFailover(t *testing.T) {
	var mu sync.Mutex
	var traces []obs.QueryTrace
	cfg := obsClusterConfig()
	cfg.TraceHook = func(qt obs.QueryTrace) {
		mu.Lock()
		traces = append(traces, qt)
		mu.Unlock()
	}
	c, err := NewCluster(transport.NewMemory(), 5, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.WaitConverged(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	const key = 7777
	c.PublishReplicated([]uint64{key}, 5)
	// Index the key at its whole replica set (miss → broadcast → insert).
	mustQuery(t, c.Node(0), key)

	// Pick a querier whose routing designates SOMEONE ELSE as the key's
	// primary — a group member's own routing short-circuits at itself, so
	// the querier must sit outside the replica group for the probe sequence
	// to walk primary-first.
	querier, primary := -1, ""
	for i := 0; i < c.Size(); i++ {
		n := c.Node(i)
		n.mu.Lock()
		rs, _ := n.view.set(n.cfg.Addr, keyspace.Key(key))
		n.mu.Unlock()
		if rs.Primary != "" && rs.Primary != c.Addr(i) && !rs.Contains(c.Addr(i)) {
			querier, primary = i, rs.Primary
			break
		}
	}
	if querier < 0 {
		t.Fatal("no node outside the replica group; enlarge the cluster")
	}
	victim := -1
	for i := 0; i < c.Size(); i++ {
		if c.Addr(i) == primary {
			victim = i
		}
	}
	if victim < 0 {
		t.Fatalf("primary %s is not a cluster member", primary)
	}
	if err := c.Kill(victim); err != nil {
		t.Fatal(err)
	}

	// Query immediately, before gossip evicts the dead primary: the probe
	// sequence must walk through it and fail over to a backup's index.
	res := mustQuery(t, c.Node(querier), key)
	if !res.FromIndex {
		t.Fatalf("failover query did not hit the index: %+v", res)
	}

	mu.Lock()
	defer mu.Unlock()
	for _, qt := range traces {
		if qt.Key != key || qt.Outcome != "hit" {
			continue
		}
		failedAtPrimary, hitAtBackup := false, false
		for _, leg := range qt.Legs {
			if leg.Name != "probe" {
				continue
			}
			if leg.Target == primary && leg.Outcome == "failed" {
				failedAtPrimary = true
			}
			if leg.Target != primary && leg.Outcome == "hit" && failedAtPrimary {
				hitAtBackup = true
			}
		}
		if failedAtPrimary && hitAtBackup {
			return // the failover is on record
		}
	}
	for _, qt := range traces {
		t.Logf("trace:\n%s", qt.Timeline())
	}
	t.Fatal("no trace shows the failed-primary → backup-hit failover")
}

// TestScrapeShowsRetuneStep is the EXPERIMENTS.md §7 recipe as a pinned
// test: scrape /metrics through an adaptive run and a churn event. The
// pdht_adapt_keyttl gauge reads NaN until the first successful refit, then
// steps to the tuned value in the same scrape that shows pdht_adapt_retunes
// go positive — the retune boundary, visible from the outside. Killing a
// member then moves the gossip gauges (view version up, alive count down)
// with no traffic at all, because they are scrape-time views of the
// membership state.
func TestScrapeShowsRetuneStep(t *testing.T) {
	const (
		nodes = 6
		keys  = 120
	)
	cfg := adaptiveClusterCfg()
	cfg.Adaptive = true
	cfg.RetuneInterval = 120 * cfg.RoundDuration
	c, err := NewCluster(transport.NewMemory(), nodes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.WaitConverged(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	corpus := make([]uint64, keys)
	for i := range corpus {
		corpus[i] = uint64(keyspace.HashString("scrape:" + strconv.Itoa(i)))
	}
	c.PublishReplicated(corpus, 3)

	srv := httptest.NewServer(c.Node(0).DebugHandler())
	defer srv.Close()
	scrape := func() string {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	// Before any traffic: no fit has landed, so the fitted gauges must be
	// NaN — distinguishable from "fitted zero" — and the retune count zero.
	first := scrape()
	if v := metricValue(t, first, "pdht_adapt_retunes"); v != 0 {
		t.Fatalf("retunes = %v before any traffic", v)
	}
	if v := metricValue(t, first, "pdht_adapt_keyttl"); !math.IsNaN(v) {
		t.Fatalf("keyttl = %v before the first fit, want NaN", v)
	}

	// Drive the Zipf workload in chunks, scraping between chunks, until a
	// scrape shows the step: retunes ≥ 1 and a finite tuned keyTtl.
	dist, err := zipf.New(1.2, keys)
	if err != nil {
		t.Fatal(err)
	}
	sampler := zipf.NewSampler(dist, rand.New(rand.NewPCG(17, 19)))
	round, stepped := 0, false
	for chunk := 0; chunk < 10 && !stepped; chunk++ {
		driveRounds(t, c, sampler, corpus, nil, &round, 60)
		exp := scrape()
		retunes := metricValue(t, exp, "pdht_adapt_retunes")
		keyttl := metricValue(t, exp, "pdht_adapt_keyttl")
		t.Logf("round %d: pdht_adapt_retunes %v, pdht_adapt_keyttl %v", round, retunes, keyttl)
		if retunes >= 1 {
			if math.IsNaN(keyttl) || keyttl <= 0 {
				t.Fatalf("retune landed but keyttl gauge reads %v", keyttl)
			}
			stepped = true
		}
	}
	if !stepped {
		t.Fatalf("no retune visible on /metrics after %d rounds", round)
	}

	// The churn leg: kill a member and watch the gossip gauges move on
	// node 0's scrape alone.
	before := scrape()
	viewBefore := metricValue(t, before, "pdht_gossip_view_version")
	if v := metricValue(t, before, "pdht_gossip_members_alive"); v != nodes {
		t.Fatalf("members_alive = %v before the kill, want %d", v, nodes)
	}
	if err := c.Kill(nodes - 1); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		exp := scrape()
		if metricValue(t, exp, "pdht_gossip_view_version") > viewBefore &&
			metricValue(t, exp, "pdht_gossip_members_alive") == nodes-1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("gossip gauges never registered the death:\nview %v alive %v",
				metricValue(t, exp, "pdht_gossip_view_version"),
				metricValue(t, exp, "pdht_gossip_members_alive"))
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestSlowQueryLog checks the ring fills from real traffic when the
// threshold is zero--adjacent: with a 1ns threshold every query is "slow",
// so the log must retain the most recent ones, newest first.
func TestSlowQueryLog(t *testing.T) {
	cfg := obsClusterConfig()
	cfg.SlowQueryThreshold = time.Nanosecond
	cfg.SlowQueryCapacity = 4
	c, err := NewCluster(transport.NewMemory(), 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	n := c.Node(0)
	c.PublishReplicated([]uint64{11, 12, 13}, 2)
	for i := 0; i < 6; i++ {
		mustQuery(t, n, uint64(11+i%3))
	}
	got := n.SlowQueries()
	if len(got) != 4 {
		t.Fatalf("slow log holds %d traces, want the ring capacity 4", len(got))
	}
	for _, qt := range got {
		if len(qt.Legs) == 0 {
			t.Errorf("slow-log trace for key %d has no legs", qt.Key)
		}
	}
}
