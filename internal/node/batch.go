package node

import (
	"context"
	"sync"

	"pdht/internal/core"
	"pdht/internal/keyspace"
	"pdht/internal/replica"
	"pdht/internal/stats"
	"pdht/internal/transport"
)

// KV is one key→value pair of a batched publish.
type KV struct {
	Key   uint64
	Value uint64
}

// handleBatch serves one OpBatch request: every item executes against the
// index cache under a single lock acquisition, and every item gets its own
// result — one malformed or refused item never fails the round trip. The
// view-hash check already ran in handle (once, for the whole batch).
func (n *Node) handleBatch(req transport.Request) transport.Response {
	results := make([]transport.BatchResult, len(req.Batch))
	var refreshed uint64
	n.mu.Lock()
	now := n.now() // read under mu; see LiveKeys
	for i, it := range req.Batch {
		k := keyspace.Key(it.Key)
		switch it.Op {
		case transport.OpQuery:
			v, ok := n.cache.Get(k, now)
			results[i] = transport.BatchResult{OK: true, Found: ok, Value: v64(v)}
			if ok && it.TTL > 0 {
				// The amortized reset-on-hit rule: a batched query carries
				// the TTL so the refresh the unary path pays a separate
				// OpRefresh message for rides the same round trip.
				if n.cache.Refresh(k, now+it.TTL, now) {
					refreshed++
				}
			}
		case transport.OpInsert:
			if it.TTL < 1 {
				results[i] = transport.BatchResult{Err: "insert without ttl"}
				continue
			}
			results[i] = transport.BatchResult{OK: n.cache.Put(k, core.Value(it.Value), now+it.TTL, now)}
		case transport.OpRefresh:
			if it.TTL < 1 {
				results[i] = transport.BatchResult{Err: "refresh without ttl"}
				continue
			}
			ok := n.cache.Refresh(k, now+it.TTL, now)
			if ok {
				refreshed++
			}
			results[i] = transport.BatchResult{OK: ok}
		default:
			results[i] = transport.BatchResult{Err: "op " + it.Op.String() + " not batchable"}
		}
	}
	n.mu.Unlock()
	n.m.refreshes.Add(refreshed)
	return transport.Response{OK: true, Batch: results}
}

// QueryMany resolves a batch of keys with one OpBatch request per
// destination peer: keys are grouped by responsible node, each group
// crosses the wire in a single round trip (query items carry keyTtl, so
// the reset-on-hit refresh is amortized into the same message), and every
// key still gets the full selection algorithm — a key that misses its
// responsible peer falls back to the replica flood, the broadcast and the
// gated insert of the unary path, concurrently per key.
//
// Results align with keys. The context governs the whole fan-out exactly
// as in Query; on cancellation the partial results gathered so far are
// returned with context.Canceled or ErrTimeout.
func (n *Node) QueryMany(ctx context.Context, keys []uint64) ([]QueryResult, error) {
	if len(keys) == 0 {
		return nil, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, ctxErr(err)
	}
	n.m.queries.Add(uint64(len(keys)))
	if n.tuner != nil {
		// The batch leg feeds the control plane key by key: the sketches
		// must see the true query stream, not one event per batch.
		for _, key := range keys {
			n.tuner.Observe(key)
		}
	}

	results := make([]QueryResult, len(keys))
	n.mu.Lock()
	if n.closing {
		n.mu.Unlock()
		return nil, ErrClosed
	}
	hash := n.view.hash
	var hops int64
	groups := make(map[string][]int) // destination → indexes into keys
	var local []int
	for i, key := range keys {
		k := keyspace.Key(key)
		if _, tracked := n.queryCounts[k]; tracked || len(n.queryCounts) < 8*n.cfg.Capacity {
			n.queryCounts[k]++
		}
		responsible, h, ok := n.view.route(n.cfg.Addr, k)
		results[i].Responsible = responsible
		results[i].IndexMsgs = h
		hops += int64(h)
		switch {
		case !ok:
			// No route (cannot happen with self in the view); the
			// fallback still broadcasts.
		case responsible == n.cfg.Addr:
			local = append(local, i)
		default:
			groups[responsible] = append(groups[responsible], i)
		}
	}
	n.mu.Unlock()
	n.counters.Add(stats.MsgIndexLookup, hops)
	ttl := n.keyTtl()

	// Local group: this node is the responsible peer, no wire at all.
	if len(local) > 0 {
		n.mu.Lock()
		now := n.now() // read under mu; see LiveKeys
		for _, i := range local {
			k := keyspace.Key(keys[i])
			if v, ok := n.cache.Get(k, now); ok {
				results[i].Answered, results[i].FromIndex = true, true
				results[i].Value, results[i].AnsweredBy = v64(v), n.cfg.Addr
				if n.cache.Refresh(k, now+ttl, now) {
					n.m.refreshes.Add(1)
				}
			}
		}
		n.mu.Unlock()
	}

	// Remote groups: exactly one OpBatch per destination, concurrently.
	// Result slots are disjoint per group, so no lock is needed.
	var wg sync.WaitGroup
	for addr, idxs := range groups {
		wg.Add(1)
		go func(addr string, idxs []int) {
			defer wg.Done()
			items := make([]transport.BatchItem, len(idxs))
			for j, i := range idxs {
				items[j] = transport.BatchItem{Op: transport.OpQuery, Key: keys[i], TTL: ttl}
			}
			resp, err := n.callWithin(ctx, addr, transport.Request{
				Op: transport.OpBatch, From: n.cfg.Addr, ViewHash: hash, Batch: items,
			})
			if err != nil || !n.accept(ctx, resp) || len(resp.Batch) != len(idxs) {
				return // the whole group falls back per key
			}
			for j, i := range idxs {
				if br := resp.Batch[j]; br.Err == "" && br.Found {
					results[i].Answered, results[i].FromIndex = true, true
					results[i].Value, results[i].AnsweredBy = br.Value, addr
				}
			}
		}(addr, idxs)
	}
	wg.Wait()

	// Count hits now; unresolved keys take the fallback path. The check
	// runs before spawning fallbacks so a cancelled batch returns without
	// firing len(keys) broadcasts.
	var fallbacks []int
	for i := range results {
		if results[i].Answered {
			n.m.hits.Add(1)
		} else {
			fallbacks = append(fallbacks, i)
		}
	}
	// Replica-coherent reset-on-hit for the batch hits: the query items
	// already refreshed the answering peer (the TTL rode with them); the
	// other members of each hit key's set get their refresh in one OpBatch
	// per destination, with read repair for members that answered without
	// holding an entry. Runs before the fallbacks so only phase-1 hits are
	// synced here — fallback hits sync through syncHit.
	n.syncBatchHits(ctx, keys, results, ttl)
	if err := ctx.Err(); err != nil {
		return results, ctxErr(err)
	}
	var ferr error
	var errMu sync.Mutex
	for _, i := range fallbacks {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := n.fallbackQuery(ctx, keys[i], &results[i]); err != nil {
				errMu.Lock()
				if ferr == nil {
					ferr = err
				}
				errMu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	return results, ferr
}

// syncBatchHits fans the reset-on-hit refresh of every phase-1 batch hit
// out to the rest of the key's replica set — one OpBatch of refresh items
// per destination — and read-repairs members that answered without holding
// an entry with a follow-up OpBatch of inserts. The batched counterpart of
// syncHit: same coherence, one round trip per destination instead of one
// RPC per (key, member). Placement and the stale-view hash are snapshotted
// from the SAME view here — stamping the query-time hash onto placements
// computed from a newer view would get every leg refused mid-transition.
func (n *Node) syncBatchHits(ctx context.Context, keys []uint64, results []QueryResult, ttl int) {
	if !n.cfg.FloodOnMiss {
		// No failover probing → no replica coherence to maintain: the
		// query items already refreshed the answering primaries.
		return
	}
	type slot struct {
		i     int // index into keys/results
		key   uint64
		value uint64
	}
	// Under the lock, only the cheap part: snapshot the hash and each hit
	// key's raw replica group (the overlay instance is also mutated by the
	// sweeper's maintenance, so idx reads stay behind n.mu). The per-hit
	// ranking work — address hashing, sorting — runs after release, so a
	// large batch does not serialize every other RPC behind n.mu.
	type hit struct {
		s     slot
		group []string
	}
	var hits []hit
	n.mu.Lock()
	hash := n.view.hash
	for i := range results {
		if !results[i].Answered || !results[i].FromIndex {
			continue
		}
		hits = append(hits, hit{slot{i, keys[i], results[i].Value}, n.view.replicas(keyspace.Key(keys[i]))})
	}
	n.mu.Unlock()

	groups := make(map[string][]slot)
	var local []slot
	for _, h := range hits {
		rs := replica.NewSet(keyspace.Key(h.s.key), results[h.s.i].Responsible, h.group)
		for _, addr := range rs.All() {
			if addr == results[h.s.i].AnsweredBy {
				continue // the query item's TTL already refreshed it
			}
			if addr == n.cfg.Addr {
				local = append(local, h.s)
			} else {
				groups[addr] = append(groups[addr], h.s)
			}
		}
	}

	if len(local) > 0 {
		n.mu.Lock()
		now := n.now() // read under mu; see LiveKeys
		for _, s := range local {
			k := keyspace.Key(s.key)
			if n.cache.Refresh(k, now+ttl, now) || n.cache.Put(k, core.Value(s.value), now+ttl, now) {
				n.m.refreshes.Add(1)
			}
		}
		n.mu.Unlock()
	}

	// resMu guards the per-result counters: a key's backups live at
	// different destinations, so two goroutines may touch the same result.
	var resMu sync.Mutex
	var wg sync.WaitGroup
	for addr, slots := range groups {
		wg.Add(1)
		go func(addr string, slots []slot) {
			defer wg.Done()
			items := make([]transport.BatchItem, len(slots))
			for j, s := range slots {
				items[j] = transport.BatchItem{Op: transport.OpRefresh, Key: s.key, TTL: ttl}
			}
			n.counters.Add(stats.MsgUpdate, int64(len(items)))
			resMu.Lock()
			for _, s := range slots {
				results[s.i].RefreshMsgs++
			}
			resMu.Unlock()
			resp, err := n.callWithin(ctx, addr, transport.Request{
				Op: transport.OpBatch, From: n.cfg.Addr, ViewHash: hash, Batch: items,
			})
			if err != nil || !n.accept(ctx, resp) || len(resp.Batch) != len(slots) {
				return
			}
			// Read repair: members that answered the refresh without the
			// entry get it re-inserted, one more round trip.
			var repairs []slot
			for j, s := range slots {
				if br := resp.Batch[j]; br.Err == "" && !br.OK {
					repairs = append(repairs, s)
				}
			}
			if len(repairs) == 0 || ctx.Err() != nil {
				return
			}
			items = make([]transport.BatchItem, len(repairs))
			for j, s := range repairs {
				items[j] = transport.BatchItem{Op: transport.OpInsert, Key: s.key, Value: s.value, TTL: ttl}
			}
			n.counters.Add(stats.MsgUpdate, int64(len(items)))
			n.m.readRepairs.Add(uint64(len(items)))
			resMu.Lock()
			for _, s := range repairs {
				results[s.i].RepairMsgs++
			}
			resMu.Unlock()
			if resp, err := n.callWithin(ctx, addr, transport.Request{
				Op: transport.OpBatch, From: n.cfg.Addr, ViewHash: hash, Batch: items,
			}); err == nil {
				n.accept(ctx, resp)
			}
		}(addr, slots)
	}
	wg.Wait()
}

// fallbackQuery finishes one key the batch probe could not resolve: the
// failover probes beyond the responsible peer (which the batch already
// asked), then the broadcast and gated insert of the unary miss path.
func (n *Node) fallbackQuery(ctx context.Context, key uint64, res *QueryResult) error {
	k := keyspace.Key(key)
	n.mu.Lock()
	hash := n.view.hash
	rs, _ := n.view.set(n.cfg.Addr, k)
	n.mu.Unlock()

	probes := rs.All()
	if !n.cfg.FloodOnMiss {
		probes = nil
		if res.Responsible != "" {
			probes = []string{res.Responsible}
		}
	}
	for _, addr := range probes {
		if addr == res.Responsible {
			continue // the batch leg already asked it
		}
		if err := ctx.Err(); err != nil {
			return ctxErr(err)
		}
		res.IndexMsgs++
		n.counters.Inc(stats.MsgReplicaFlood)
		value, ok := n.probeIndex(ctx, addr, k, hash)
		if !ok {
			continue
		}
		res.Answered, res.FromIndex, res.Value, res.AnsweredBy = true, true, value, addr
		n.m.hits.Add(1)
		res.RefreshMsgs, res.RepairMsgs = n.syncHit(ctx, rs, addr, k, value, hash)
		return nil
	}
	n.m.misses.Add(1)
	return n.missPath(ctx, k, res, probes, hash)
}
