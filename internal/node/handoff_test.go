package node

import (
	"slices"
	"strconv"
	"testing"
	"time"

	"pdht/internal/keyspace"
	"pdht/internal/transport"
)

// replicasOf reads a node's current replica group for key.
func replicasOf(n *Node, key uint64) []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.view.replicas(keyspace.Key(key))
}

// remainingTTL reads the remaining lifetime, in rounds, of key in a node's
// index cache.
func remainingTTL(n *Node, key uint64) (int, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	now := n.now()
	exp, ok := n.cache.Expires(keyspace.Key(key), now)
	if !ok {
		return 0, false
	}
	return exp - now, true
}

// churnConfig tunes the membership layer fast enough for churn tests:
// 10ms protocol period, 50ms suspicion window, 20ms round.
func churnConfig() Config {
	cfg := DefaultConfig()
	cfg.RoundDuration = 20 * time.Millisecond
	cfg.GossipInterval = 10 * time.Millisecond
	cfg.SuspicionTimeout = 50 * time.Millisecond
	cfg.SyncInterval = 20 * time.Millisecond
	return cfg
}

// convergenceBound is the churn tests' convergence budget: a generous
// number of protocol periods plus the suspicion window — failing it means
// the protocol, not the scheduler, is broken.
func convergenceBound(cfg Config) time.Duration {
	return 100*cfg.GossipInterval + 2*cfg.SuspicionTimeout
}

// TestHandoffOnDeathServesFromNewOwner is the acceptance path of the
// membership subsystem, on the memory transport: a node dies, the cluster
// converges with no coordinator, and a key whose replica group moved is
// served from its NEW owner — with its remaining TTL intact, not a fresh
// keyTtl.
func TestHandoffOnDeathServesFromNewOwner(t *testing.T) {
	cfg := churnConfig()
	cfg.Repl = 2
	cfg.KeyTtl = 100 // 2s of lifetime at the 20ms round
	c, err := NewCluster(transport.NewMemory(), 5, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.WaitConverged(convergenceBound(cfg)); err != nil {
		t.Fatal(err)
	}

	// Index a corpus: publish everywhere, query once each — every key
	// lands in its replica group's caches with keyTtl of lifetime.
	keys := make([]uint64, 40)
	for i := range keys {
		keys[i] = uint64(keyspace.HashString("handoff:" + strconv.Itoa(i)))
	}
	c.PublishReplicated(keys, 5)
	for _, k := range keys {
		if res := mustQuery(t, c.Node(0), k); !res.Answered {
			t.Fatalf("seeding query for %d unanswered", k)
		}
	}

	// Let the TTLs decay measurably: after ~30 rounds of silence the
	// remaining lifetime (~70 rounds) is far from a fresh keyTtl (100),
	// so a handoff that re-stamped entries would be caught.
	time.Sleep(30 * cfg.RoundDuration)

	// Pick a key whose replica group contains the victim.
	const victim = 2
	victimAddr := c.Addr(victim)
	var key uint64
	var oldGroup []string
	for _, k := range keys {
		group := replicasOf(c.Node(0), k)
		if slices.Contains(group, victimAddr) {
			key, oldGroup = k, group
			break
		}
	}
	if oldGroup == nil {
		t.Fatalf("no key routed to victim %s across %d keys", victimAddr, len(keys))
	}

	if err := c.Kill(victim); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitConverged(convergenceBound(cfg)); err != nil {
		t.Fatalf("dead peer not evicted from every live view: %v", err)
	}

	// The new replica group must include an owner the old group did not
	// have (the group refills to Repl from the survivors).
	var live *Node
	for i := 0; i < c.Size(); i++ {
		if i != victim {
			live = c.Node(i)
			break
		}
	}
	newGroup := replicasOf(live, key)
	var newcomer string
	for _, a := range newGroup {
		if !slices.Contains(oldGroup, a) {
			newcomer = a
		}
	}
	if newcomer == "" {
		t.Fatalf("replica group %v→%v did not move to any new owner", oldGroup, newGroup)
	}
	var newcomerNode *Node
	for i := 0; i < c.Size(); i++ {
		if c.Addr(i) == newcomer {
			newcomerNode = c.Node(i)
		}
	}

	// The handoff must have pushed the entry to the newcomer with its
	// REMAINING lifetime: well under the original keyTtl, well over the
	// decay the test itself caused. waitFor: the push is asynchronous.
	waitFor(t, 5*time.Second, func() bool {
		_, ok := remainingTTL(newcomerNode, key)
		return ok
	}, "handed-off entry appearing at the new owner")
	ttl, _ := remainingTTL(newcomerNode, key)
	if ttl >= cfg.KeyTtl-5 {
		t.Fatalf("handed-off entry has %d rounds of lifetime — a fresh keyTtl (%d), not the remaining TTL", ttl, cfg.KeyTtl)
	}
	if ttl < cfg.KeyTtl/3 {
		t.Fatalf("handed-off entry has only %d rounds left of %d; the transfer lost most of the lifetime", ttl, cfg.KeyTtl)
	}

	// And the cluster serves the key from the index — through the new
	// group, with the dead node gone from every view.
	res := mustQuery(t, live, key)
	if !res.FromIndex {
		t.Fatalf("query after handoff = %+v, want an index hit from the new group", res)
	}
	if !slices.Contains(newGroup, res.AnsweredBy) {
		t.Fatalf("answered by %s, outside the new replica group %v", res.AnsweredBy, newGroup)
	}
}

// TestHandoffTCPSmoke runs the same story over real sockets, smaller: a
// 3-node TCP cluster, one crash, convergence with no coordinator, and an
// index hit on a key whose group moved.
func TestHandoffTCPSmoke(t *testing.T) {
	cfg := churnConfig()
	cfg.Repl = 2
	cfg.KeyTtl = 200
	c, err := NewCluster(transport.NewTCP(), 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.WaitConverged(convergenceBound(cfg)); err != nil {
		t.Fatal(err)
	}

	keys := make([]uint64, 20)
	for i := range keys {
		keys[i] = uint64(keyspace.HashString("tcp-handoff:" + strconv.Itoa(i)))
	}
	c.PublishReplicated(keys, 3)
	for _, k := range keys {
		if res := mustQuery(t, c.Node(0), k); !res.Answered {
			t.Fatalf("seeding query for %d unanswered", k)
		}
	}

	const victim = 1
	victimAddr := c.Addr(victim)
	var key uint64
	for _, k := range keys {
		if slices.Contains(replicasOf(c.Node(0), k), victimAddr) {
			key = k
			break
		}
	}
	if key == 0 {
		t.Fatalf("no key routed to victim %s", victimAddr)
	}

	if err := c.Kill(victim); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitConverged(convergenceBound(cfg)); err != nil {
		t.Fatalf("TCP cluster did not converge after a crash: %v", err)
	}
	waitFor(t, 5*time.Second, func() bool {
		return mustQuery(t, c.Node(0), key).FromIndex || mustQuery(t, c.Node(2), key).FromIndex
	}, "moved key served from the index over TCP")
}
