// Package node is the live peer: the paper's selection algorithm
// (StrategyPartialTTL — query the index, broadcast on a miss, insert the
// result with keyTtl, refresh on a hit) executed over a real transport
// instead of simulated rounds. Node is the serving member engine,
// RemoteClient the non-serving engine behind the public client package,
// and Cluster the multi-node harness with kill/restart.
//
// Each Node serves six RPCs (Query/Insert/Refresh/Broadcast/Gossip/Batch, see
// internal/transport), keeps a TTL index cache (core.Cache) for the key
// range it is responsible for, a local content store standing in for the
// unstructured network's content, and a membership view over which it runs
// a real structured-overlay instance (internal/dht's trie, ring or
// Kademlia) to decide responsibility and replica placement — the same
// routing structures the simulator uses, now consulted per live query.
//
// Every index entry lives at an r-member replica set (replica.Set: the
// routing-designated primary plus the keyspace-ranked backups). Writes —
// inserts and the reset-on-hit refresh, unary and batched — fan out to the
// whole set concurrently; reads probe the primary and fail over through
// the backups before any broadcast, and a hit read-repairs set members
// that answered without holding the entry. Config.Repl sizes the set,
// Config.FloodOnMiss gates the failover probing.
//
// Membership is owned by internal/gossip (SWIM: probing, suspicion,
// incarnations, anti-entropy). Every confirmed change rebuilds the view at
// a new version, and a repair pass (replica.PlanRepair) pushes index
// entries whose replica set moved to the set's new members with their
// remaining TTL, so the paper's expiry semantics survive the transfer.
//
// Rounds: the paper's clock unit (one round = one second) maps to a
// configurable RoundDuration. TTLs cross the wire in rounds, so a cluster
// agrees on expiry behavior as long as its nodes share a RoundDuration —
// tests shrink it to milliseconds to exercise expiry quickly.
package node

import (
	"fmt"
	"hash/fnv"
	"math/rand/v2"
	"sort"
	"strings"

	"pdht/internal/dht"
	"pdht/internal/keyspace"
	"pdht/internal/netsim"
	"pdht/internal/replica"
)

// Backend selects which structured overlay the membership view runs.
type Backend string

const (
	// BackendRing is the Chord-style ring — the default: responsibility
	// is fully deterministic in the membership list, so every node with
	// the same view computes identical replica groups.
	BackendRing Backend = "ring"
	// BackendTrie is the P-Grid-style binary trie.
	BackendTrie Backend = "trie"
	// BackendKademlia is the XOR-metric overlay.
	BackendKademlia Backend = "kademlia"
)

// view is a node's local instance of the structured overlay, built over the
// current membership list. Every member maps to a deterministic
// netsim.PeerID (its rank in the sorted address list) and the backend is
// constructed with an rng seeded from the membership itself, so two nodes
// sharing a view agree on replica groups without exchanging routing state.
//
// THE RANK-SHIFT HAZARD: that agreement holds only while the membership
// lists are byte-identical. Ranks are positions in the sorted list, so two
// nodes whose lists differ by a single member disagree on the rank — and
// therefore the replica group — of potentially *every* key sorted after
// the divergence point (TestRankShiftDisagreement demonstrates it). During
// churn this is unavoidable: views transition at different instants on
// different nodes. The silent failure mode would be a probe answered by a
// peer that computed a different group — a false miss that costs a
// broadcast, or an insert parked on a peer nobody else will ever probe.
// The guard is hash: every view carries the fnv64a of its membership list
// (the same value that seeds the backend rng), routed RPCs
// (query/insert/refresh) carry the sender's hash, and a receiver whose
// hash differs refuses with transport.StaleView plus its gossip state —
// turning silent mis-routing into an explicit, convergence-accelerating
// error the caller treats as a miss.
//
// Routing happens locally — the view walks its own finger/trie/bucket
// tables and reports the hop count the lookup would have cost (the
// measured cSIndx of eq. 7) — and only the terminal RPC to the responsible
// peer crosses the wire. This is the standard client-side-routing
// compromise: full iterative routing would make every hop a real message
// without changing which peer answers.
type view struct {
	members []string // sorted, includes self
	rank    map[string]netsim.PeerID
	net     *netsim.Network
	idx     dht.Index
	rng     *rand.Rand
	repl    int // effective replication (clamped to cluster size)
	// hash fingerprints the membership list — equal hashes mean equal
	// lists mean identical replica-group arithmetic on both ends.
	hash uint64
	// version is the gossip view version this view was built from,
	// monotonically increasing; stale OnChange notifications (delivered
	// out of order under concurrency) are discarded by comparing it.
	version uint64
}

// viewSeed derives the shared rng seed from the membership list.
func viewSeed(members []string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(strings.Join(members, "\n")))
	return h.Sum64()
}

// buildView constructs the overlay over members. repl is clamped to the
// cluster size — a 2-node cluster cannot hold 3 replicas.
func buildView(members []string, backend Backend, repl int, env float64) (*view, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("node: view needs at least one member")
	}
	sorted := append([]string(nil), members...)
	sort.Strings(sorted)
	if repl > len(sorted) {
		repl = len(sorted)
	}
	if repl < 1 {
		repl = 1
	}
	seed := viewSeed(sorted)
	v := &view{
		members: sorted,
		rank:    make(map[string]netsim.PeerID, len(sorted)),
		net:     netsim.New(len(sorted)),
		rng:     rand.New(rand.NewPCG(seed, 0x9e3779b97f4a7c15)),
		repl:    repl,
		hash:    seed,
	}
	active := make([]netsim.PeerID, len(sorted))
	for i, addr := range sorted {
		v.rank[addr] = netsim.PeerID(i)
		active[i] = netsim.PeerID(i)
	}
	var err error
	switch backend {
	case BackendRing, "":
		v.idx, err = dht.NewRing(v.net, active, dht.RingConfig{Repl: repl, Env: env}, v.rng)
	case BackendTrie:
		v.idx, err = dht.NewTrie(v.net, active, dht.TrieConfig{GroupSize: repl, Env: env}, v.rng)
	case BackendKademlia:
		v.idx, err = dht.NewKademlia(v.net, active, dht.KademliaConfig{K: repl, Env: env}, v.rng)
	default:
		return nil, fmt.Errorf("node: unknown backend %q", backend)
	}
	if err != nil {
		return nil, err
	}
	return v, nil
}

// route resolves the responsible member for key starting from the member
// at from, returning the address and the hop count the lookup cost.
func (v *view) route(from string, key keyspace.Key) (addr string, hops int, ok bool) {
	pid, known := v.rank[from]
	if !known {
		return "", 0, false
	}
	rt := v.idx.Route(pid, key, v.rng)
	if !rt.OK {
		return "", rt.Hops, false
	}
	return v.members[rt.Responsible], rt.Hops, true
}

// replicas returns the addresses of key's replica group, responsible-peer
// ordering preserved. The slice is freshly allocated — callers hold it
// across lock boundaries.
func (v *view) replicas(key keyspace.Key) []string {
	group := v.idx.ReplicaGroup(key)
	out := make([]string, len(group))
	for i, p := range group {
		out[i] = v.members[p]
	}
	return out
}

// Replicas and Contains make *view a replica.View, the slice the repair
// planner (replica.PlanRepair) sees of a membership view.

// Replicas returns the addresses of key's replica group.
func (v *view) Replicas(key keyspace.Key) []string { return v.replicas(key) }

// Contains reports whether addr is a member of this view.
func (v *view) Contains(addr string) bool {
	_, ok := v.rank[addr]
	return ok
}

// set returns key's ordered replica set under this view: the
// routing-designated responsible peer first (resolved from self), then the
// rest of the group in the keyspace ranking — the probe, failover and
// write-fanout order of the live replication scheme. hops reports the
// local routing cost to the primary.
func (v *view) set(self string, key keyspace.Key) (s replicaSet, hops int) {
	responsible, hops, ok := v.route(self, key)
	if !ok {
		return replicaSet{}, hops
	}
	return replica.NewSet(key, responsible, v.replicas(key)), hops
}

// replicaSet aliases the replica package's set type — it appears in enough
// node signatures that the shorter name keeps them readable.
type replicaSet = replica.Set

// maintain runs one round of routing-table probing on the local overlay
// instance and reports its cost.
func (v *view) maintain() dht.MaintenanceStats {
	return v.idx.Maintain(v.rng)
}
