// Package node is the live peer: the paper's selection algorithm
// (StrategyPartialTTL — query the index, broadcast on a miss, insert the
// result with keyTtl, refresh on a hit) executed over a real transport
// instead of simulated rounds. Node is the serving member engine,
// RemoteClient the non-serving engine behind the public client package,
// and Cluster the multi-node harness with kill/restart.
//
// Each Node serves six RPCs (Query/Insert/Refresh/Broadcast/Gossip/Batch, see
// internal/transport), keeps a TTL index cache (core.Cache) for the key
// range it is responsible for, a local content store standing in for the
// unstructured network's content, and a membership view that decides
// responsibility and replica placement — an incremental consistent-hash
// ring (keyspace.MemberRing) for the default ring backend, or a full
// simulator overlay instance (internal/dht's trie or Kademlia) for the
// others.
//
// Every index entry lives at an r-member replica set (replica.Set: the
// routing-designated primary plus the keyspace-ranked backups). Writes —
// inserts and the reset-on-hit refresh, unary and batched — fan out to the
// whole set concurrently; reads probe the primary and fail over through
// the backups before any broadcast, and a hit read-repairs set members
// that answered without holding the entry. Config.Repl sizes the set,
// Config.FloodOnMiss gates the failover probing.
//
// Membership is owned by internal/gossip (SWIM: probing, suspicion,
// incarnations, anti-entropy). Every confirmed change produces a new view
// at a new version — by DELTA application on the ring backend (only the
// changed members' virtual nodes are spliced, and only index entries in
// the affected key arcs are even considered for handoff) — and a repair
// pass (replica.PlanRepair) pushes index entries whose replica set moved
// to the set's new members with their remaining TTL, so the paper's expiry
// semantics survive the transfer.
//
// Rounds: the paper's clock unit (one round = one second) maps to a
// configurable RoundDuration. TTLs cross the wire in rounds, so a cluster
// agrees on expiry behavior as long as its nodes share a RoundDuration —
// tests shrink it to milliseconds to exercise expiry quickly.
package node

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand/v2"
	"sort"
	"strings"

	"pdht/internal/dht"
	"pdht/internal/keyspace"
	"pdht/internal/netsim"
	"pdht/internal/replica"
)

// Backend selects which structured overlay the membership view runs.
type Backend string

const (
	// BackendRing is the Chord-style ring — the default: responsibility
	// is fully deterministic in the membership list, so every node with
	// the same view computes identical replica groups. It is the only
	// backend with incremental view maintenance (keyspace.MemberRing):
	// a membership delta splices the changed members' vnodes instead of
	// rebuilding routing state over all n members, which is what makes
	// thousand-node fleets affordable.
	BackendRing Backend = "ring"
	// BackendTrie is the P-Grid-style binary trie.
	BackendTrie Backend = "trie"
	// BackendKademlia is the XOR-metric overlay.
	BackendKademlia Backend = "kademlia"
)

// view is a node's local instance of the membership-derived routing state.
//
// For the ring backend it wraps a keyspace.MemberRing: virtual-node
// positions are pure hashes of member ADDRESSES, so a member's placement
// never depends on the rest of the list and a delta (the usual case: one
// join or one confirmed death out of a thousand members) is applied by
// splicing a handful of vnodes — O(changed) hashing plus one merge pass —
// instead of the former O(n) rebuild per membership event. The trie and
// Kademlia backends keep the simulator-overlay construction (netsim +
// dht.Index over rank PeerIDs) and rebuild in full per change.
//
// THE RANK-SHIFT HAZARD (why agreement still needs a guard): placement
// agreement holds only while two nodes' membership lists are
// byte-identical. During churn, views transition at different instants on
// different nodes, and two nodes whose lists differ by one member disagree
// on the replica group of many keys (TestRankShiftDisagreement
// demonstrates it). The silent failure mode would be a probe answered by a
// peer that computed a different group — a false miss that costs a
// broadcast, or an insert parked on a peer nobody else will ever probe.
// The guard is hash: every view carries the fnv64a of its membership list,
// routed RPCs (query/insert/refresh) carry the sender's hash, and a
// receiver whose hash differs refuses with transport.StaleView plus its
// gossip state — turning silent mis-routing into an explicit,
// convergence-accelerating error the caller treats as a miss.
//
// Routing happens locally — the view computes the replica group and
// reports the hop count an ideal overlay lookup would have cost (the
// measured cSIndx of eq. 7) — and only the terminal RPC to the responsible
// peer crosses the wire. This is the standard client-side-routing
// compromise: full iterative routing would make every hop a real message
// without changing which peer answers.
//
// A view is immutable once installed (version is fixed at install time
// under the node lock); concurrent readers — handoff pushers, report
// snapshots — share it freely.
type view struct {
	members []string // sorted, includes self
	repl    int      // effective replication (clamped to cluster size)
	// hash fingerprints the membership list — equal hashes mean equal
	// lists mean identical replica-group arithmetic on both ends.
	hash uint64
	// version is the gossip view version this view was built from,
	// monotonically increasing; stale OnChange notifications (delivered
	// out of order under concurrency) are discarded by comparing it.
	version uint64

	// ring is the incremental overlay (ring backend only).
	ring *keyspace.MemberRing
	env  float64    // maintenance environment (probe probability)
	mrng *rand.Rand // maintenance cost model rng (ring backend)

	// Legacy full-rebuild overlays (trie, kademlia).
	rank map[string]netsim.PeerID
	net  *netsim.Network
	idx  dht.Index
	rng  *rand.Rand
}

// viewSeed derives the shared rng seed from the membership list.
func viewSeed(members []string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(strings.Join(members, "\n")))
	return h.Sum64()
}

// buildView constructs routing state over members from scratch. repl is
// clamped to the cluster size — a 2-node cluster cannot hold 3 replicas.
func buildView(members []string, backend Backend, repl int, env float64) (*view, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("node: view needs at least one member")
	}
	sorted := append([]string(nil), members...)
	sort.Strings(sorted)
	if repl < 1 {
		repl = 1
	}
	effective := repl
	if effective > len(sorted) {
		effective = len(sorted)
	}
	seed := viewSeed(sorted)
	v := &view{
		members: sorted,
		repl:    effective,
		hash:    seed,
		env:     env,
	}
	switch backend {
	case BackendRing, "":
		// The ring keeps the UNclamped target so growth past repl members
		// un-clamps naturally on delta application.
		v.ring = keyspace.NewMemberRing(sorted, repl)
		v.mrng = rand.New(rand.NewPCG(seed, 0x9e3779b97f4a7c15))
		return v, nil
	case BackendTrie, BackendKademlia:
	default:
		return nil, fmt.Errorf("node: unknown backend %q", backend)
	}
	v.rank = make(map[string]netsim.PeerID, len(sorted))
	v.net = netsim.New(len(sorted))
	v.rng = rand.New(rand.NewPCG(seed, 0x9e3779b97f4a7c15))
	active := make([]netsim.PeerID, len(sorted))
	for i, addr := range sorted {
		v.rank[addr] = netsim.PeerID(i)
		active[i] = netsim.PeerID(i)
	}
	var err error
	switch backend {
	case BackendTrie:
		v.idx, err = dht.NewTrie(v.net, active, dht.TrieConfig{GroupSize: effective, Env: env}, v.rng)
	case BackendKademlia:
		v.idx, err = dht.NewKademlia(v.net, active, dht.KademliaConfig{K: effective, Env: env}, v.rng)
	}
	if err != nil {
		return nil, err
	}
	return v, nil
}

// applyDelta derives the successor view from this one by splicing a
// membership delta — the incremental path that replaced the full rebuild
// per membership event. alive must be sorted; joined/left are the sorted
// set differences versus v.members. Returns nil when this view has no
// incremental overlay (trie/kademlia) — the caller falls back to
// buildView.
func (v *view) applyDelta(alive, joined, left []string, version uint64) *view {
	if v.ring == nil {
		return nil
	}
	ring := v.ring.Apply(joined, left)
	seed := viewSeed(alive)
	effective := ring.Repl()
	if effective > len(alive) {
		effective = len(alive)
	}
	return &view{
		members: alive,
		repl:    effective,
		hash:    seed,
		version: version,
		ring:    ring,
		env:     v.env,
		mrng:    rand.New(rand.NewPCG(seed, 0x9e3779b97f4a7c15)),
	}
}

// transitionArcs returns the set of key arcs whose replica group can
// differ across the transition old→next: the arcs owned by leavers on the
// old ring plus those owned by joiners on the new ring. Keys outside the
// set provably keep their exact replica group (see keyspace.Affected), so
// handoff planning skips them without looking. Falls back to the whole key
// space when either view lacks ring geometry.
func transitionArcs(old, next *view, joined, left []string) keyspace.ArcSet {
	if old == nil || next == nil || old.ring == nil || next.ring == nil {
		return keyspace.Everything()
	}
	arcs := old.ring.Affected(left)
	if arcs.All {
		return arcs
	}
	more := next.ring.Affected(joined)
	if more.All {
		return more
	}
	arcs.Arcs = append(arcs.Arcs, more.Arcs...)
	return arcs
}

// diffSorted returns the set differences between two sorted string slices:
// joined = in next but not prev, left = in prev but not next.
func diffSorted(prev, next []string) (joined, left []string) {
	i, j := 0, 0
	for i < len(prev) && j < len(next) {
		switch {
		case prev[i] == next[j]:
			i++
			j++
		case prev[i] < next[j]:
			left = append(left, prev[i])
			i++
		default:
			joined = append(joined, next[j])
			j++
		}
	}
	left = append(left, prev[i:]...)
	joined = append(joined, next[j:]...)
	return joined, left
}

// route resolves the responsible member for key starting from the member
// at from, returning the address and the hop count the lookup cost.
func (v *view) route(from string, key keyspace.Key) (addr string, hops int, ok bool) {
	if v.ring != nil {
		if !v.ring.Contains(from) {
			return "", 0, false
		}
		group := v.ring.Group(key)
		if len(group) == 0 {
			return "", 0, false
		}
		return group[0], v.ring.RouteHops(from, key), true
	}
	pid, known := v.rank[from]
	if !known {
		return "", 0, false
	}
	rt := v.idx.Route(pid, key, v.rng)
	if !rt.OK {
		return "", rt.Hops, false
	}
	return v.members[rt.Responsible], rt.Hops, true
}

// replicas returns the addresses of key's replica group, responsible-peer
// ordering preserved. The slice is freshly allocated — callers hold it
// across lock boundaries.
func (v *view) replicas(key keyspace.Key) []string {
	if v.ring != nil {
		return v.ring.Group(key)
	}
	group := v.idx.ReplicaGroup(key)
	out := make([]string, len(group))
	for i, p := range group {
		out[i] = v.members[p]
	}
	return out
}

// Replicas and Contains make *view a replica.View, the slice the repair
// planner (replica.PlanRepair) sees of a membership view.

// Replicas returns the addresses of key's replica group.
func (v *view) Replicas(key keyspace.Key) []string { return v.replicas(key) }

// Contains reports whether addr is a member of this view.
func (v *view) Contains(addr string) bool {
	if v.ring != nil {
		return v.ring.Contains(addr)
	}
	_, ok := v.rank[addr]
	return ok
}

// set returns key's ordered replica set under this view: the
// routing-designated responsible peer first (resolved from self), then the
// rest of the group in the keyspace ranking — the probe, failover and
// write-fanout order of the live replication scheme. hops reports the
// local routing cost to the primary.
func (v *view) set(self string, key keyspace.Key) (s replicaSet, hops int) {
	responsible, hops, ok := v.route(self, key)
	if !ok {
		return replicaSet{}, hops
	}
	return replica.NewSet(key, responsible, v.replicas(key)), hops
}

// replicaSet aliases the replica package's set type — it appears in enough
// node signatures that the shorter name keeps them readable.
type replicaSet = replica.Set

// maintain runs one round of routing-table probing and reports its cost.
// The legacy overlays walk their materialized finger/trie/bucket tables;
// the ring backend has no per-peer routing state to repair (fingers are
// computed on demand from the vnode array), so it charges the same cost
// model the simulator's ring would — each of ≈ vnodes·log₂(vnodes) ideal
// finger entries probed with probability env per round — sampled from a
// normal approximation of the binomial so a thousand-node fleet does not
// burn CPU drawing per-entry Bernoulli variables.
func (v *view) maintain() dht.MaintenanceStats {
	if v.ring == nil {
		return v.idx.Maintain(v.rng)
	}
	if v.env <= 0 {
		return dht.MaintenanceStats{}
	}
	vn := float64(len(v.members) * keyspace.RingVnodes)
	entries := vn * math.Ceil(math.Log2(vn+1))
	mean := entries * v.env
	probes := int(mean + math.Sqrt(mean*(1-v.env))*v.mrng.NormFloat64() + 0.5)
	if probes < 0 {
		probes = 0
	}
	return dht.MaintenanceStats{Probes: probes}
}
