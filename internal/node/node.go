package node

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pdht/internal/adapt"
	"pdht/internal/core"
	"pdht/internal/gossip"
	"pdht/internal/keyspace"
	"pdht/internal/obs"
	"pdht/internal/replica"
	"pdht/internal/stats"
	"pdht/internal/store"
	"pdht/internal/topk"
	"pdht/internal/transport"
)

// Config parameterizes one live node.
type Config struct {
	// Addr is the address to serve on; empty lets the transport pick.
	Addr string
	// Seed is an existing cluster member to join, empty for the first
	// node of a cluster.
	Seed string
	// Backend selects the structured overlay (default BackendRing).
	Backend Backend
	// Repl is the replica-group size (the paper's repl), clamped to the
	// cluster size. Default 3.
	Repl int
	// KeyTtl is the expiration time, in rounds, attached to inserted and
	// refreshed keys — the paper's keyTtl knob. Default 120.
	KeyTtl int
	// Capacity is this node's index cache size (the paper's stor).
	// Default 1024.
	Capacity int
	// RoundDuration maps the paper's one-second round onto wall time.
	// All nodes of a cluster must agree on it. Default 1s.
	RoundDuration time.Duration
	// CallTimeout bounds each outbound RPC. Default 2s.
	CallTimeout time.Duration
	// FloodOnMiss extends an index search that misses, is refused or
	// times out at the primary to the rest of the replica set, in the
	// deterministic keyspace-ranked failover order — the cSIndx2 flood
	// the selection algorithm needs because TTL expiry leaves replicas
	// loosely synchronized, and the failover that masks a dead primary.
	// It also gates the replica-coherent write fan-out: with it on, hits
	// refresh (and read-repair) the whole set. DefaultConfig turns it on.
	FloodOnMiss bool
	// MaintainEnv is the per-entry per-round probe probability of the
	// local overlay instance (the paper's env). Zero disables probing.
	MaintainEnv float64
	// GossipInterval is the SWIM protocol period of the membership layer
	// (internal/gossip). Zero maps it onto one round — membership beats
	// at the paper's clock unless tuned separately.
	GossipInterval time.Duration
	// SuspicionTimeout is how long an unresponsive peer may stay suspect
	// before it is confirmed dead and evicted from the view. Zero means
	// 4× GossipInterval.
	SuspicionTimeout time.Duration
	// SyncInterval is the anti-entropy period: how often full membership
	// tables are exchanged with one random peer. Zero means 4×
	// GossipInterval.
	SyncInterval time.Duration
	// DeadSyncFraction is the fraction of anti-entropy rounds aimed at a
	// retained dead member instead of a live peer — the only channel
	// through which the two sides of a healed partition, each holding the
	// other confirmed dead, rediscover each other. Zero takes the gossip
	// default (0.125); negative disables. Large clusters on slow sync
	// clocks shorten heal-to-convergence by raising it.
	DeadSyncFraction float64
	// Adaptive turns the query-adaptive control plane on: the node
	// sketches its own query stream (internal/adapt), periodically refits
	// the paper's model to it, attaches the tuned keyTtl to inserts and
	// refreshes instead of the static KeyTtl, and refuses to index keys
	// whose estimated query rate falls below the fitted fMin.
	Adaptive bool
	// RetuneInterval is how often the adaptive control loop refits —
	// also the width of its observation windows. Zero means 60 rounds.
	RetuneInterval time.Duration
	// Tuner parameterizes the control plane (zero fields take
	// adapt.DefaultConfig); ignored unless Adaptive is set.
	Tuner adapt.Config
	// Metrics is the registry every layer's instruments land on. Nil gives
	// the node a private registry (still served by Metrics() and
	// DebugHandler()); supply one to aggregate several nodes — registration
	// is idempotent, but shared counters then sum across them.
	Metrics *obs.Registry
	// TraceHook, when set, receives every finished query's trace — the
	// per-leg record of probes, broadcasts, gate verdicts, refreshes and
	// repairs. Called synchronously at the end of Query; keep it cheap.
	TraceHook func(obs.QueryTrace)
	// SlowQueryThreshold enables the slow-query log: finished queries at or
	// above it are retained in a ring (newest first, served on /traces).
	// Zero disables the log.
	SlowQueryThreshold time.Duration
	// SlowQueryCapacity is the ring size of the slow-query log. Default 64.
	SlowQueryCapacity int
	// TraceSampling is the fraction of traced queries whose trace also
	// propagates over the wire: sampled queries carry a TraceID on every
	// RPC leg, and instrumented servers return server-side spans that are
	// stitched into the QueryTrace (legs with Peer set). It only applies
	// to queries that are traced at all (TraceHook, slow-query log, or a
	// caller-supplied trace) — with none of those, the hot path allocates
	// nothing regardless of this knob. DefaultConfig sets 1.0; zero
	// disables wire propagation while keeping client-side traces.
	TraceSampling float64
	// TopKScorer shapes how this node scores its local content against a
	// top-k probe's terms (see topk.Scorer); nil means topk.MatchScorer —
	// a matched term contributes its full weight. Scores above a term's
	// weight are clamped: the threshold bound depends on it.
	TopKScorer topk.Scorer
	// Store is the persistence plane (internal/store): every index and
	// content mutation is journaled through it, and New replays its
	// recovered state — index entries re-admitted at their remaining TTL,
	// content entries verbatim — before the node joins gossip, so a
	// restarted peer rejoins warm and the existing handoff machinery
	// announces the recovered keys to their replica sets. Nil (the
	// default) means no persistence and costs the mutation paths nothing.
	// Ownership transfers on success: a Node New returns closes the store
	// in its Close; on a failed New the caller keeps ownership (and a
	// FileStore stays reopenable — recovery mutates nothing).
	Store store.Store
}

// DefaultConfig returns the configuration a live deployment starts from.
func DefaultConfig() Config {
	return Config{
		Backend:       BackendRing,
		Repl:          3,
		KeyTtl:        120,
		Capacity:      1024,
		RoundDuration: time.Second,
		CallTimeout:   2 * time.Second,
		FloodOnMiss:   true,
		TraceSampling: 1,
	}
}

// setDefaults fills zero fields; FloodOnMiss keeps its explicit value.
func (c *Config) setDefaults() {
	if c.Backend == "" {
		c.Backend = BackendRing
	}
	if c.Repl == 0 {
		c.Repl = 3
	}
	if c.KeyTtl == 0 {
		c.KeyTtl = 120
	}
	if c.Capacity == 0 {
		c.Capacity = 1024
	}
	if c.RoundDuration == 0 {
		c.RoundDuration = time.Second
	}
	if c.CallTimeout == 0 {
		c.CallTimeout = 2 * time.Second
	}
	if c.GossipInterval == 0 {
		c.GossipInterval = c.RoundDuration
	}
	if c.SuspicionTimeout == 0 {
		c.SuspicionTimeout = 4 * c.GossipInterval
	}
	if c.SyncInterval == 0 {
		c.SyncInterval = 4 * c.GossipInterval
	}
	if c.RetuneInterval == 0 {
		c.RetuneInterval = 60 * c.RoundDuration
	}
	if c.SlowQueryCapacity == 0 {
		c.SlowQueryCapacity = 64
	}
}

func (c Config) validate() error {
	switch {
	case c.Repl < 1:
		return fmt.Errorf("node: Repl %d must be positive", c.Repl)
	case c.KeyTtl < 1:
		return fmt.Errorf("node: KeyTtl %d must be positive", c.KeyTtl)
	case c.Capacity < 1:
		return fmt.Errorf("node: Capacity %d must be positive", c.Capacity)
	case c.RoundDuration < 0:
		return fmt.Errorf("node: negative RoundDuration")
	case c.MaintainEnv < 0 || c.MaintainEnv > 1:
		return fmt.Errorf("node: MaintainEnv %v must be a probability", c.MaintainEnv)
	case c.GossipInterval < 0 || c.SuspicionTimeout < 0 || c.SyncInterval < 0:
		return fmt.Errorf("node: negative gossip interval")
	case c.RetuneInterval < 0:
		return fmt.Errorf("node: negative RetuneInterval")
	case c.SlowQueryThreshold < 0:
		return fmt.Errorf("node: negative SlowQueryThreshold")
	case c.SlowQueryCapacity < 0:
		return fmt.Errorf("node: negative SlowQueryCapacity")
	case c.TraceSampling < 0 || c.TraceSampling > 1:
		return fmt.Errorf("node: TraceSampling %v must be a probability", c.TraceSampling)
	}
	return nil
}

// Node is one live peer of the partial DHT.
type Node struct {
	cfg    Config
	tr     transport.Transport
	srv    transport.Server
	epoch  time.Time
	gossip *gossip.Service

	// mu guards the mutable peer state: membership view, index cache,
	// content store and per-key query counts. RPCs are never issued
	// while holding it.
	mu          sync.Mutex
	view        *view
	closing     bool // Close started; no new handoff goroutines
	cache       *core.Cache
	store       map[keyspace.Key]uint64
	queryCounts map[keyspace.Key]uint64

	// persist is the durability plane (Config.Store), nil when the node
	// runs in-memory. Mutations reach it through the cache hook (index)
	// and the Publish paths (content), always under mu; closeErr carries
	// its Close result out of closeOnce.
	persist  store.Store
	closeErr error

	// pool is the outbound connection pool (pool.go), shared logic with
	// the non-serving RemoteClient.
	pool *pool

	// The adaptive control plane: nil unless cfg.Adaptive. The tuner owns
	// the actuator state; the insert/refresh paths read its current keyTtl
	// recommendation lock-free via keyTtl().
	tuner *adapt.Tuner

	// planner schedules top-k probes (always present; it reads the tuner's
	// count-min sketch when the node is adaptive, plans on yield history
	// alone otherwise). It has its own lock.
	planner *topk.Planner

	// The telemetry plane: reg is the registry /metrics renders, m the
	// node-layer instruments on it (Report reads the same atomics), slowLog
	// the ring of traces that crossed SlowQueryThreshold. counters keeps
	// the per-class message breakdown, exposed as gauges on reg.
	reg       *obs.Registry
	m         *nodeMetrics
	slowLog   *obs.SlowLog
	traceHook func(obs.QueryTrace)
	counters  stats.Counters

	// traceSeq drives wire-trace ID generation and sub-rate sampling
	// decisions — one atomic add per *traced* query, nothing on the
	// untraced hot path.
	traceSeq atomic.Uint64

	stop      chan struct{}
	done      sync.WaitGroup
	handoffs  sync.WaitGroup // in-flight handoff pushers
	closeOnce sync.Once
}

// New starts a node: it serves its RPC endpoint, bootstraps membership
// from the seed peer if one is configured (one gossip full-state sync;
// convergence follows over the protocol), and starts the membership loop
// and the background expiry sweeper.
func New(tr transport.Transport, cfg Config) (*Node, error) {
	cfg.setDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cache, err := core.NewCache(cfg.Capacity)
	if err != nil {
		return nil, err
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	// Every RPC this node issues or serves crosses the instrumented
	// transport, so the wire metrics land on the same registry.
	tr = transport.Instrument(tr, transport.NewMetrics(reg))
	n := &Node{
		cfg:         cfg,
		tr:          tr,
		epoch:       time.Now(),
		cache:       cache,
		store:       make(map[keyspace.Key]uint64),
		queryCounts: make(map[keyspace.Key]uint64),
		pool:        newPool(tr),
		reg:         reg,
		m:           newNodeMetrics(reg),
		traceHook:   cfg.TraceHook,
		stop:        make(chan struct{}),
	}
	if cfg.SlowQueryThreshold > 0 {
		n.slowLog = obs.NewSlowLog(cfg.SlowQueryCapacity, cfg.SlowQueryThreshold)
	}
	n.registerGauges(reg)
	if cfg.Adaptive {
		t, err := adapt.NewTuner(cfg.Tuner)
		if err != nil {
			return nil, err
		}
		n.tuner = t
		t.RegisterMetrics(reg)
	}
	if n.tuner != nil {
		n.planner = topk.NewPlanner(n.tuner.Count)
	} else {
		n.planner = topk.NewPlanner(nil)
	}
	if cfg.Store != nil {
		n.persist = cfg.Store
		n.persist.RegisterMetrics(reg)
		// Replay before the endpoint serves and before gossip joins: the
		// node's very first membership view already covers the recovered
		// entries, so the existing handoff machinery announces them to
		// their replica sets on the first view change. The hook is
		// installed only after replay — recovery must not re-journal what
		// it just read.
		n.recoverPersisted()
		cache.SetHook(n.persistHook)
	}
	srv, err := tr.Serve(cfg.Addr, n.handle)
	if err != nil {
		return nil, err
	}
	n.srv = srv
	n.cfg.Addr = srv.Addr() // the transport may have picked the address
	// The endpoint is already reachable (a restarted node reuses a known
	// address), so the view is installed under the lock; until then
	// handle() answers "starting".
	v, err := buildView([]string{n.cfg.Addr}, cfg.Backend, cfg.Repl, cfg.MaintainEnv)
	if err != nil {
		srv.Close()
		return nil, err
	}
	n.mu.Lock()
	n.view = v
	n.mu.Unlock()
	g, err := gossip.New(gossip.Config{
		Addr:             n.cfg.Addr,
		ProbeInterval:    cfg.GossipInterval,
		SuspicionTimeout: cfg.SuspicionTimeout,
		SyncInterval:     cfg.SyncInterval,
		DeadSyncFraction: cfg.DeadSyncFraction,
		OnChange:         n.applyMembership,
	}, n.gossipCall)
	if err != nil {
		srv.Close()
		return nil, err
	}
	g.RegisterMetrics(reg)
	// Assigned under mu: the endpoint is already serving, and handle()
	// checks readiness (view and gossip installed) under the same lock.
	n.mu.Lock()
	n.gossip = g
	n.mu.Unlock()
	if cfg.Seed != "" {
		// The bootstrap join is one RPC on a network that may well be
		// lossy — a single dropped packet must not kill the boot, so the
		// exchange retries a few times before giving up. It also moves a
		// full membership table each way, so it gets more patience than
		// an ordinary call.
		var err error
		for attempt := 0; attempt < 3; attempt++ {
			ctx, cancel := context.WithTimeout(context.Background(), 4*cfg.CallTimeout)
			err = n.gossip.Join(ctx, cfg.Seed)
			cancel()
			if err == nil {
				break
			}
		}
		if err != nil {
			srv.Close()
			n.pool.close() // join may have pooled a connection to the seed
			return nil, fmt.Errorf("node: %w", err)
		}
	}
	n.gossip.Start()
	n.done.Add(1)
	go n.sweeper()
	if n.tuner != nil {
		n.done.Add(1)
		go n.retuner()
	}
	return n, nil
}

// Addr returns the node's serving address.
func (n *Node) Addr() string { return n.cfg.Addr }

// Config returns the node's effective configuration.
func (n *Node) Config() Config { return n.cfg }

// now is the node's round clock.
func (n *Node) now() int { return int(time.Since(n.epoch) / n.cfg.RoundDuration) }

// keyTtl is the expiration time attached to inserts and refreshes from here
// on: the tuner's latest recommendation when the control plane has one, the
// static config knob otherwise. Entries already granted a TTL keep it — a
// retune only changes what future inserts and refreshes receive.
func (n *Node) keyTtl() int {
	if n.tuner != nil {
		if ttl, ok := n.tuner.KeyTtl(); ok {
			return ttl
		}
	}
	return n.cfg.KeyTtl
}

// Tuner exposes the adaptive control plane, nil unless Config.Adaptive.
func (n *Node) Tuner() *adapt.Tuner { return n.tuner }

// ---- persistence ----

// roundOf converts an absolute wall-clock deadline onto the node's round
// clock, rounding up so a deadline mid-round carries the entry through
// that round rather than lapsing it early.
func (n *Node) roundOf(deadline time.Time) int {
	d := deadline.Sub(n.epoch)
	rounds := int(d / n.cfg.RoundDuration)
	if d%n.cfg.RoundDuration > 0 {
		rounds++
	}
	return rounds
}

// roundDeadline is the inverse seam: the absolute wall-clock instant a
// cache expiry round maps to — what the journal records instead of a
// duration, so the remaining-TTL invariant survives a restart.
func (n *Node) roundDeadline(expires int) time.Time {
	return n.epoch.Add(time.Duration(expires) * n.cfg.RoundDuration)
}

// recoverPersisted replays the store's recovered state into the peer:
// content entries verbatim, index entries re-admitted at their REMAINING
// TTL — the journaled absolute deadline converted onto this process's
// fresh round clock, so an entry granted 120 rounds that crashed with 50
// left comes back with 50, not 120. Entries whose deadline passed while
// the process was down were already dropped (and counted) by the store's
// own replay. Runs in New before the endpoint serves and before the cache
// hook is installed, so recovery is single-threaded and journals nothing.
func (n *Node) recoverPersisted() {
	now := n.now()
	for _, e := range n.persist.Recovered() {
		if e.Deadline.IsZero() {
			n.store[keyspace.Key(e.Key)] = e.Value
			continue
		}
		expires := n.roundOf(e.Deadline)
		if expires <= now {
			continue // lapsed in the gap between store open and replay
		}
		n.cache.Put(keyspace.Key(e.Key), core.Value(e.Value), expires, now)
	}
}

// persistHook is the cache mutation hook: every index state change is
// journaled synchronously under mu (the cache's serialization), carrying
// its absolute expiry deadline. An append error degrades durability, not
// serving — the store counts it (pdht_store_append_errors_total) and the
// node keeps answering.
func (n *Node) persistHook(m core.Mutation) {
	rec := store.Record{Key: uint64(m.Key), Value: uint64(m.Value)}
	switch m.Kind {
	case core.MutInsert:
		rec.Op = store.OpInsert
		rec.Deadline = n.roundDeadline(m.Expires)
	case core.MutRefresh:
		rec.Op = store.OpRefresh
		rec.Deadline = n.roundDeadline(m.Expires)
	case core.MutExpire, core.MutEvict:
		rec.Op = store.OpExpire
	default:
		return
	}
	_ = n.persist.Append(rec)
}

// Close shuts the node down: the membership loop stops, the endpoint
// stops accepting, in-flight handoff pushers finish (their remaining calls
// fail fast once the pool closes), outbound connections close, the
// sweeper exits, and the persistence store — last, so every mutation the
// shutdown itself caused is journaled — flushes and closes. Idempotent.
func (n *Node) Close() error {
	n.closeOnce.Do(func() {
		n.mu.Lock()
		n.closing = true // no new handoff goroutines from here on
		n.mu.Unlock()
		close(n.stop)
		n.gossip.Stop()
		n.srv.Close()
		n.pool.close()
		n.handoffs.Wait()
		n.done.Wait()
		if n.persist != nil {
			n.closeErr = n.persist.Close()
		}
	})
	n.done.Wait()
	return n.closeErr
}

// ---- membership ----

// gossipCall carries one membership-protocol message over the node's
// pooled connections — the Caller internal/gossip is wired with.
func (n *Node) gossipCall(ctx context.Context, addr string, msg transport.Gossip) (transport.Gossip, bool, error) {
	n.counters.Inc(stats.MsgControl)
	resp, err := n.callCtx(ctx, addr, transport.Request{
		Op: transport.OpGossip, From: n.cfg.Addr, Gossip: &msg,
	})
	if err != nil {
		return transport.Gossip{}, false, err
	}
	if resp.Err != "" {
		return transport.Gossip{}, false, fmt.Errorf("node: gossip to %s: %s", addr, resp.Err)
	}
	if resp.Gossip == nil {
		return transport.Gossip{}, resp.OK, nil
	}
	return *resp.Gossip, resp.OK, nil
}

// applyMembership is the gossip OnChange hook: a confirmed membership
// change arrived, so derive the next view at the new version and, if
// replica groups moved, hand the affected index entries to their new
// owners. Notifications can arrive out of order (gossip fires them from
// the protocol loop and inbound handlers concurrently); stale versions are
// discarded.
//
// The notification carries the full alive set, not a delta — deltas from
// concurrent out-of-order notifications could not be replayed safely — so
// the node computes its OWN delta against the view it actually holds (a
// linear walk of two sorted lists) and applies it incrementally on the
// ring backend: only the changed members' vnodes are spliced, and only
// cache entries inside the transition's affected arcs are snapshotted for
// handoff planning. At a thousand members this turns every membership
// event from an O(n) rebuild plus a full-index scan into work proportional
// to the change.
func (n *Node) applyMembership(alive []string, version uint64) {
	sorted := append([]string(nil), alive...)
	sort.Strings(sorted)
	n.mu.Lock()
	if n.closing || version <= n.view.version {
		n.mu.Unlock()
		return
	}
	old := n.view
	joined, left := diffSorted(old.members, sorted)
	if len(joined) == 0 && len(left) == 0 {
		// Same membership at a newer version (e.g. an incarnation-only
		// change): adopt the version, nothing to hand off. The view is
		// immutable once installed, so install a shallow successor.
		next := *old
		next.version = version
		n.view = &next
		n.mu.Unlock()
		return
	}
	arcs := keyspace.Everything()
	v := old.applyDelta(sorted, joined, left, version)
	if v != nil {
		arcs = transitionArcs(old, v, joined, left)
	} else {
		built, err := buildView(sorted, n.cfg.Backend, n.cfg.Repl, n.cfg.MaintainEnv)
		if err != nil {
			// Cannot happen with a non-empty alive set (it includes self)
			// and a validated config; keep the old view rather than dying.
			n.mu.Unlock()
			return
		}
		built.version = version
		v = built
	}
	n.view = v
	var entries []core.Entry
	if old.hash != v.hash {
		if arcs.All {
			entries = n.cache.Entries(n.now())
		} else {
			entries = n.cache.EntriesWhere(n.now(), arcs.Contains)
		}
	}
	if len(entries) > 0 {
		n.handoffs.Add(1)
		go n.runHandoff(old, v, entries)
	}
	n.mu.Unlock()
}

// Members returns the node's current membership view, sorted.
func (n *Node) Members() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]string(nil), n.view.members...)
}

// ViewVersion returns the gossip version of the installed view.
func (n *Node) ViewVersion() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.view.version
}

// ViewHash returns the membership fingerprint of the installed view —
// equal hashes on two nodes mean byte-identical member lists and identical
// replica-group arithmetic. The chaos harness uses it for O(n) fleet
// convergence checks instead of comparing member lists pairwise.
func (n *Node) ViewHash() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.view.hash
}

// ReplicaSet returns the addresses this node's current view places key's
// replica group on, primary first — the placement oracle chaos accounting
// compares across a fleet to detect double ownership.
func (n *Node) ReplicaSet(key uint64) []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.view.replicas(keyspace.Key(key))
}

// IndexHas reports whether the node's index currently holds an unexpired
// entry for key, without refreshing it — a read-only accounting probe.
func (n *Node) IndexHas(key uint64) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	_, ok := n.cache.Expires(keyspace.Key(key), n.now())
	return ok
}

// Membership returns the full gossip table — every member ever heard of
// with its status and incarnation — sorted by address. The CLI's live
// status view.
func (n *Node) Membership() []gossip.Member {
	return n.gossip.Snapshot()
}

// ---- RPC server side ----

// handle dispatches one inbound request, recording server-side spans when
// the request belongs to a sampled cluster-wide trace. The common case —
// TraceID zero — is a direct tail call into serve; a time.Now pair and a
// small span slice are paid only by traced requests.
func (n *Node) handle(req transport.Request) transport.Response {
	if req.TraceID == 0 {
		return n.serve(req)
	}
	start := time.Now()
	resp := n.serve(req)
	resp.Spans = n.serverSpans(req, resp, time.Since(start))
	return resp
}

// serverSpans describes what serve just did for the querying peer's
// causality tree: the operation's server-side leg plus, when the mutation
// was journaled, the store-append sub-step. Offsets are relative to request
// receipt (see obs.Span).
func (n *Node) serverSpans(req transport.Request, resp transport.Response, d time.Duration) []obs.Span {
	var name, outcome string
	switch req.Op {
	case transport.OpQuery:
		name, outcome = "index-lookup", hitMiss(resp.Found)
	case transport.OpInsert:
		name, outcome = "insert", storedRefused(resp.OK)
	case transport.OpRefresh:
		name = "refresh"
		if resp.OK {
			outcome = "ok"
		} else {
			outcome = "missing"
		}
	case transport.OpBroadcast:
		name, outcome = "content-lookup", hitMiss(resp.Found)
	case transport.OpBatch:
		name, outcome = "batch", fmt.Sprintf("%d items", len(req.Batch))
	case transport.OpTopK:
		name = "topk-scan"
		if resp.TopK != nil {
			outcome = fmt.Sprintf("%d entries", len(resp.TopK.Entries))
		}
	default:
		return nil // gossip and stats traffic is not part of query traces
	}
	switch resp.Err {
	case "":
	case transport.StaleView:
		outcome = "stale-view"
	default:
		outcome = "error"
	}
	spans := []obs.Span{{Name: name, Outcome: outcome, Duration: d}}
	if n.persist != nil && resp.Err == "" && resp.OK &&
		(req.Op == transport.OpInsert || req.Op == transport.OpRefresh) {
		// The journal append happened inside the op, under mu; it is shown
		// as an instantaneous sub-step at the op's end.
		spans = append(spans, obs.Span{Name: "store-append", Outcome: "ok", Start: d})
	}
	return spans
}

// storedRefused is the insert-leg outcome label.
func storedRefused(ok bool) string {
	if ok {
		return "stored"
	}
	return "refused"
}

// serve executes one inbound request. It runs on a transport goroutine;
// everything it touches is behind mu.
func (n *Node) serve(req transport.Request) transport.Response {
	n.mu.Lock()
	ready := n.view != nil && n.gossip != nil
	var hash uint64
	if n.view != nil {
		hash = n.view.hash
	}
	n.mu.Unlock()
	if !ready {
		return transport.Response{Err: "node starting"}
	}
	// Routed operations are only answered between nodes that agree on
	// the membership list — and therefore on replica-group arithmetic.
	// A hash mismatch would silently mis-route (see the rank-shift note
	// on view), so it is refused with the responder's gossip state
	// attached: the stale side converges instead of trusting a wrong
	// answer. Zero skips the check (handoff pushes span view changes by
	// design).
	switch req.Op {
	case transport.OpQuery, transport.OpInsert, transport.OpRefresh, transport.OpBatch:
		if req.ViewHash != 0 && req.ViewHash != hash {
			st := n.gossip.State()
			return transport.Response{Err: transport.StaleView, Gossip: &st}
		}
	}
	switch req.Op {
	case transport.OpQuery:
		n.mu.Lock()
		v, ok := n.cache.Get(keyspace.Key(req.Key), n.now())
		n.mu.Unlock()
		return transport.Response{OK: true, Found: ok, Value: v64(v)}
	case transport.OpInsert:
		if req.TTL < 1 {
			return transport.Response{Err: "insert without ttl"}
		}
		n.mu.Lock()
		now := n.now() // read under mu; see LiveKeys
		stored := n.cache.Put(keyspace.Key(req.Key), core.Value(req.Value), now+req.TTL, now)
		n.mu.Unlock()
		return transport.Response{OK: stored}
	case transport.OpRefresh:
		if req.TTL < 1 {
			return transport.Response{Err: "refresh without ttl"}
		}
		n.mu.Lock()
		now := n.now()
		ok := n.cache.Refresh(keyspace.Key(req.Key), now+req.TTL, now)
		n.mu.Unlock()
		if ok {
			n.m.refreshes.Add(1)
		}
		return transport.Response{OK: ok}
	case transport.OpBroadcast:
		n.mu.Lock()
		v, ok := n.store[keyspace.Key(req.Key)]
		n.mu.Unlock()
		return transport.Response{OK: true, Found: ok, Value: v}
	case transport.OpGossip:
		if req.Gossip == nil {
			return transport.Response{Err: "gossip without payload"}
		}
		reply, ok := n.gossip.HandleMessage(*req.Gossip)
		return transport.Response{OK: ok, Gossip: &reply}
	case transport.OpBatch:
		return n.handleBatch(req)
	case transport.OpTopK:
		return n.serveTopK(req)
	case transport.OpStats:
		snap := n.reg.Snapshot()
		snap.Addr = n.cfg.Addr
		return transport.Response{OK: true, Stats: &snap}
	default:
		return transport.Response{Err: fmt.Sprintf("unknown op %v", req.Op)}
	}
}

// ---- RPC client side ----

// callWithin performs one outbound RPC bounded by both the caller's
// context and the configured per-call timeout: a cancelled request aborts
// its in-flight legs, and a patient caller still cannot hang on one dead
// peer longer than CallTimeout. When the caller's trace has a wire ID, the
// request carries it and any server-side spans in the reply are stitched
// into the trace under the callee's address.
func (n *Node) callWithin(ctx context.Context, addr string, req transport.Request) (transport.Response, error) {
	cctx, cancel := context.WithTimeout(ctx, n.cfg.CallTimeout)
	defer cancel()
	if tr := obs.TraceFrom(ctx); tr != nil {
		if id := tr.WireID(); id != 0 {
			req.TraceID = id
			start := time.Now()
			resp, err := n.callCtx(cctx, addr, req)
			if err == nil {
				tr.AddSpans(addr, start, resp.Spans)
			}
			return resp, err
		}
	}
	return n.callCtx(cctx, addr, req)
}

// callCtx is call with the deadline under caller control — the membership
// layer probes on its own, tighter clock.
func (n *Node) callCtx(ctx context.Context, addr string, req transport.Request) (transport.Response, error) {
	resp, err := n.pool.call(ctx, addr, req)
	if err != nil {
		n.m.rpcFailures.Add(1)
	}
	return resp, err
}

// ---- content ----

// Publish installs key→value in this node's local content store — the
// content the unstructured broadcast searches. It models the node being a
// content provider; published keys are what broadcasts can resolve.
// Fails with ErrClosed after Close.
func (n *Node) Publish(ctx context.Context, key, value uint64) error {
	if err := ctx.Err(); err != nil {
		return ctxErr(err)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closing {
		return ErrClosed
	}
	n.store[keyspace.Key(key)] = value
	if n.persist != nil {
		_ = n.persist.Append(store.Record{Op: store.OpPublish, Key: key, Value: value})
	}
	return nil
}

// PublishMany installs a batch of key→value pairs in the local content
// store — one lock acquisition for the whole batch.
func (n *Node) PublishMany(ctx context.Context, pairs []KV) error {
	if err := ctx.Err(); err != nil {
		return ctxErr(err)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closing {
		return ErrClosed
	}
	for _, p := range pairs {
		n.store[keyspace.Key(p.Key)] = p.Value
		if n.persist != nil {
			_ = n.persist.Append(store.Record{Op: store.OpPublish, Key: p.Key, Value: p.Value})
		}
	}
	return nil
}

// StoredKeys returns the size of the local content store.
func (n *Node) StoredKeys() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.store)
}

// LiveKeys returns the keys currently live in this node's index cache —
// test and measurement plumbing for cluster-wide index-size ground truth.
// The round is read under mu: a value captured before lock acquisition can
// go stale while the lock is contended, and the snapshot would then
// include entries the sweeper is about to collect (see cache.Entries).
func (n *Node) LiveKeys() []uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	keys := n.cache.Keys(n.now())
	out := make([]uint64, len(keys))
	for i, k := range keys {
		out[i] = uint64(k)
	}
	return out
}

// liveEntries snapshots the live cache rows — keys with values and expiry
// rounds — with the round clock read under the same lock that serializes
// the cache, so the snapshot can never contain an entry already expired
// at snapshot time.
func (n *Node) liveEntries() []core.Entry {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.cache.Entries(n.now())
}

// ---- the selection algorithm ----

// QueryResult reports one end-to-end query, mirroring core.QueryOutcome
// with live-deployment detail.
type QueryResult struct {
	// Answered reports whether the query resolved at all; FromIndex
	// whether the index answered it (the pIndxd events of eq. 14).
	Answered  bool
	FromIndex bool
	Value     uint64
	// Responsible is the peer routing selected; AnsweredBy the peer that
	// actually supplied the value (a replica on a flood hit, a content
	// holder on a broadcast).
	Responsible string
	AnsweredBy  string
	// IndexMsgs, BroadcastMsgs and InsertMsgs break down the cost in the
	// legs of eq. 17; RefreshMsgs counts the reset-on-hit refresh legs a
	// hit fans out to the key's replica set, and RepairMsgs the read-repair
	// re-inserts sent to set members that answered the refresh without
	// holding the entry (the primary after losing it to churn).
	IndexMsgs     int
	BroadcastMsgs int
	InsertMsgs    int
	RefreshMsgs   int
	RepairMsgs    int
	// InsertGated reports that the broadcast resolved the key but the
	// adaptive control plane refused to index it (estimated rate below
	// fMin).
	InsertGated bool
}

// Total returns the query's full message cost.
func (r QueryResult) Total() int {
	return r.IndexMsgs + r.BroadcastMsgs + r.InsertMsgs + r.RefreshMsgs + r.RepairMsgs
}

// Query resolves key with the selection algorithm of §5.1: search the
// index (routing locally, asking the responsible peer — and on a miss the
// rest of the replica group — over the wire), broadcast on a miss, insert
// the broadcast result with keyTtl, and refresh the TTL on a hit.
//
// The context bounds the whole request: cancellation or deadline expiry
// aborts the in-flight index, broadcast and insert legs and returns
// context.Canceled or ErrTimeout (every outbound leg is additionally
// capped at CallTimeout). A query that runs to completion but resolves
// nothing is not an error — Answered stays false.
func (n *Node) Query(ctx context.Context, key uint64) (QueryResult, error) {
	if err := ctx.Err(); err != nil {
		return QueryResult{}, ctxErr(err)
	}
	// Tracing is opt-in per node (hook or slow log) or per call (a trace
	// already in ctx); the untraced hot path pays one context lookup.
	tr := obs.TraceFrom(ctx)
	owned := tr == nil && (n.traceHook != nil || n.slowLog != nil)
	if owned {
		tr = obs.NewTrace(key)
		ctx = obs.WithTrace(ctx, tr)
	}
	if tr != nil && tr.WireID() == 0 {
		// Cluster-wide propagation is sampled per traced query; an
		// unsampled (or caller-disabled) trace stays client-side only.
		tr.SetWireID(sampleWireID(&n.traceSeq, n.cfg.TraceSampling))
	}
	start := time.Now()
	res, err := n.query(ctx, key)
	n.m.observeQuery(res, time.Since(start))
	if owned {
		qt := tr.Finish(queryOutcome(res, err))
		if n.slowLog != nil {
			n.slowLog.Record(qt)
		}
		if n.traceHook != nil {
			n.traceHook(qt)
		}
	}
	return res, err
}

// queryOutcome labels a finished query for its trace.
func queryOutcome(res QueryResult, err error) string {
	switch {
	case err != nil:
		return "error"
	case res.FromIndex:
		return "hit"
	case res.InsertGated:
		return "gated"
	case res.Answered:
		return "broadcast"
	default:
		return "unanswered"
	}
}

// query is the selection algorithm proper; Query wraps it with the latency
// histogram and the optional trace.
func (n *Node) query(ctx context.Context, key uint64) (QueryResult, error) {
	k := keyspace.Key(key)
	n.m.queries.Inc()
	if n.tuner != nil {
		// Feed the frequency sketches — O(1), allocation-free, before
		// the lock (the tuner has its own).
		n.tuner.Observe(key)
	}

	n.mu.Lock()
	if n.closing {
		n.mu.Unlock()
		return QueryResult{}, ErrClosed
	}
	// The per-key counts only feed Report's Zipf fit; cap the tracked
	// universe so a wide or adversarial key stream cannot grow memory
	// without bound (the index cache itself is capacity-bounded).
	if _, tracked := n.queryCounts[k]; tracked || len(n.queryCounts) < 8*n.cfg.Capacity {
		n.queryCounts[k]++
	}
	rs, hops := n.view.set(n.cfg.Addr, k)
	hash := n.view.hash
	n.mu.Unlock()

	if !n.cfg.FloodOnMiss && rs.Primary != "" {
		// No failover probing → no replica coherence to maintain either:
		// the set collapses to the primary, so the hit path below fans
		// nothing out (matching the tuner's WriteFanout accounting).
		rs = replicaSet{Primary: rs.Primary}
	}
	probes := rs.All()

	res := QueryResult{Responsible: rs.Primary}
	res.IndexMsgs = hops
	n.counters.Add(stats.MsgIndexLookup, int64(hops))

	// 1. Index search: the primary, failing over through the ranked
	// backups on a miss, refusal or timeout.
	for i, addr := range probes {
		if err := ctx.Err(); err != nil {
			return res, ctxErr(err)
		}
		if i > 0 {
			// Hops already priced the path to the primary; each failover
			// probe is one more message.
			res.IndexMsgs++
			n.counters.Inc(stats.MsgReplicaFlood)
		}
		value, ok := n.probeIndex(ctx, addr, k, hash)
		if !ok {
			continue
		}
		res.Answered, res.FromIndex, res.Value, res.AnsweredBy = true, true, value, addr
		n.m.hits.Add(1)
		res.RefreshMsgs, res.RepairMsgs = n.syncHit(ctx, rs, addr, k, value, hash)
		return res, nil
	}
	n.m.misses.Add(1)
	err := n.missPath(ctx, k, &res, probes, hash)
	return res, err
}

// missPath runs legs 2 and 3 of the selection algorithm after the index
// came up empty: broadcast the key to the membership, and insert the
// resolved value with keyTtl at the replica group unless the adaptive
// control plane gates it. Shared by the unary and batched query paths.
func (n *Node) missPath(ctx context.Context, k keyspace.Key, res *QueryResult, replicas []string, hash uint64) error {
	// The membership snapshot is taken here, not on the hit fast path,
	// which never needs it.
	n.mu.Lock()
	members := append([]string(nil), n.view.members...)
	n.mu.Unlock()
	n.m.broadcasts.Add(1)
	tr := obs.TraceFrom(ctx)
	var legStart time.Time
	if tr != nil {
		legStart = time.Now()
	}
	value, foundAt, msgs := n.broadcast(ctx, k, members)
	res.BroadcastMsgs = msgs
	if foundAt == "" {
		if tr != nil {
			tr.Leg("broadcast", "", "unanswered", legStart)
		}
		if err := ctx.Err(); err != nil {
			// The broadcast was cut short by the caller, not answered
			// in the negative.
			return ctxErr(err)
		}
		n.m.unanswered.Add(1)
		return nil
	}
	if tr != nil {
		tr.Leg("broadcast", foundAt, "answered", legStart)
	}
	n.m.broadcastAnswered.Add(1)
	res.Answered, res.Value, res.AnsweredBy = true, value, foundAt

	// Insert the resolved key with keyTtl at every replica — unless the
	// control plane estimates its query rate below fMin, in which case
	// indexing it would cost more than the broadcasts it saves (the §2
	// decision, taken per key, online).
	if n.tuner != nil && !n.tuner.ShouldIndex(uint64(k)) {
		n.m.gatedInserts.Add(1)
		res.InsertGated = true
		if tr != nil {
			tr.Mark("insert-gate", "", "gated")
		}
		return nil
	}
	if tr != nil {
		if n.tuner != nil {
			tr.Mark("insert-gate", "", "allowed")
		}
		legStart = time.Now()
	}
	res.InsertMsgs = n.insert(ctx, k, value, replicas, hash)
	if tr != nil {
		tr.Leg("insert", "", "ok", legStart)
	}
	n.m.inserts.Add(1)
	if err := ctx.Err(); err != nil {
		return ctxErr(err)
	}
	return nil
}

// probeIndex asks one peer (possibly ourselves) whether key is live in its
// index cache. The probe carries the caller's membership hash; a stale-view
// refusal is treated as a miss after feeding the peer's state to gossip.
func (n *Node) probeIndex(ctx context.Context, addr string, k keyspace.Key, hash uint64) (uint64, bool) {
	tr := obs.TraceFrom(ctx)
	var legStart time.Time
	if tr != nil {
		legStart = time.Now()
	}
	if addr == n.cfg.Addr {
		n.mu.Lock()
		v, ok := n.cache.Get(k, n.now())
		n.mu.Unlock()
		if tr != nil {
			tr.Leg("probe", addr, hitMiss(ok), legStart)
		}
		return v64(v), ok
	}
	resp, err := n.callWithin(ctx, addr, transport.Request{Op: transport.OpQuery, Key: uint64(k), ViewHash: hash})
	switch {
	case err != nil:
		if tr != nil {
			tr.Leg("probe", addr, "failed", legStart)
		}
		return 0, false
	case !n.accept(ctx, resp):
		if tr != nil {
			tr.Leg("probe", addr, "refused", legStart)
		}
		return 0, false
	}
	if tr != nil {
		tr.Leg("probe", addr, hitMiss(resp.Found), legStart)
	}
	return resp.Value, resp.Found
}

// hitMiss is the probe-leg outcome label.
func hitMiss(found bool) string {
	if found {
		return "hit"
	}
	return "miss"
}

// accept inspects an application-level reply: a StaleView refusal feeds
// the peer's attached membership state to gossip (the "caller refetches
// the view" half of the protocol) and reports the reply unusable, as does
// any other application error. A traced query records the re-sync as an
// instantaneous "stale-view" leg.
func (n *Node) accept(ctx context.Context, resp transport.Response) bool {
	if resp.Err == "" {
		return true
	}
	if resp.Err == transport.StaleView {
		n.m.staleViews.Add(1)
		if tr := obs.TraceFrom(ctx); tr != nil {
			tr.Mark("stale-view", "", "resync")
		}
		if resp.Gossip != nil {
			n.gossip.MergeState(*resp.Gossip)
		}
	}
	return false
}

// syncHit applies the reset-on-hit rule across the key's whole replica set
// and read-repairs the holes it finds: every member's TTL is refreshed
// concurrently (each leg derives its deadline from the caller's ctx, capped
// at CallTimeout), keeping the set's expiry coherent so a failover probe
// after the primary dies still finds a live entry. A member that answers
// the refresh without holding the entry — the primary after losing it to
// churn, a restart or a failed insert leg — is re-inserted from the value
// the hit supplied. Members that do not answer at all are left alone:
// repairing a dead peer would burn a CallTimeout per query on an address
// the membership layer is already evicting.
//
// The fan-out is synchronous — the read-repair guarantee is "the set is
// whole when Query returns", which the tests pin — so a SILENTLY
// partitioned member (no RST; a crashed process refuses in microseconds)
// can hold a hit for up to CallTimeout until suspicion convicts it. The
// legs run concurrently, so that bound does not stack per member.
func (n *Node) syncHit(ctx context.Context, rs replicaSet, hitAddr string, k keyspace.Key, value uint64, hash uint64) (refreshMsgs, repairMsgs int) {
	ttl := n.keyTtl()
	targets := rs.All()
	if !rs.Contains(hitAddr) {
		// Routing resolved no set (cannot happen with self in the view):
		// fall back to the plain reset-on-hit rule at the answering peer.
		targets = []string{hitAddr}
	}
	tr := obs.TraceFrom(ctx)
	var mu sync.Mutex
	replica.Fanout(ctx, targets, func(ctx context.Context, addr string) bool {
		if addr == n.cfg.Addr {
			n.mu.Lock()
			now := n.now()
			ok := n.cache.Refresh(k, now+ttl, now)
			if !ok {
				// Local read repair: no message, and self's share of the
				// set is populated again.
				ok = n.cache.Put(k, core.Value(value), now+ttl, now)
			}
			n.mu.Unlock()
			if ok {
				n.m.refreshes.Add(1)
			}
			return ok
		}
		mu.Lock()
		refreshMsgs++
		mu.Unlock()
		var legStart time.Time
		if tr != nil {
			legStart = time.Now()
		}
		n.counters.Inc(stats.MsgUpdate)
		resp, err := n.callWithin(ctx, addr, transport.Request{Op: transport.OpRefresh, Key: uint64(k), TTL: ttl, ViewHash: hash})
		if err != nil || !n.accept(ctx, resp) {
			if tr != nil {
				tr.Leg("refresh", addr, "failed", legStart)
			}
			return false
		}
		if resp.OK {
			if tr != nil {
				tr.Leg("refresh", addr, "ok", legStart)
			}
			return true
		}
		// The member answered but does not hold the entry: read repair.
		if tr != nil {
			tr.Leg("refresh", addr, "missing", legStart)
			legStart = time.Now()
		}
		mu.Lock()
		repairMsgs++
		mu.Unlock()
		n.m.readRepairs.Add(1)
		n.counters.Inc(stats.MsgUpdate)
		rresp, err := n.callWithin(ctx, addr, transport.Request{Op: transport.OpInsert, Key: uint64(k), Value: value, TTL: ttl, ViewHash: hash})
		ok := err == nil && rresp.Err == "" && rresp.OK
		if tr != nil {
			if ok {
				tr.Leg("read-repair", addr, "ok", legStart)
			} else {
				tr.Leg("read-repair", addr, "failed", legStart)
			}
		}
		return ok
	})
	return refreshMsgs, repairMsgs
}

// broadcast fans the query out to every known member — the unstructured
// search (cSUnstr). The local store is checked first for free; remote
// members are asked concurrently and the lexicographically first answer
// wins, keeping the result independent of goroutine scheduling. The legs
// inherit the caller's context: a cancelled request aborts every in-flight
// leg instead of waiting out CallTimeout on each.
func (n *Node) broadcast(ctx context.Context, k keyspace.Key, members []string) (value uint64, foundAt string, msgs int) {
	n.mu.Lock()
	v, ok := n.store[k]
	n.mu.Unlock()
	if ok {
		return v, n.cfg.Addr, 0
	}
	type answer struct {
		addr  string
		value uint64
	}
	var wg sync.WaitGroup
	answers := make(chan answer, len(members))
	for _, m := range members {
		if m == n.cfg.Addr {
			continue
		}
		msgs++
		wg.Add(1)
		go func(m string) {
			defer wg.Done()
			resp, err := n.callWithin(ctx, m, transport.Request{Op: transport.OpBroadcast, Key: uint64(k)})
			if err == nil && resp.Found {
				answers <- answer{m, resp.Value}
			}
		}(m)
	}
	n.counters.Add(stats.MsgBroadcast, int64(msgs))
	wg.Wait()
	close(answers)
	for a := range answers {
		if foundAt == "" || a.addr < foundAt {
			value, foundAt = a.value, a.addr
		}
	}
	return value, foundAt, msgs
}

// insert installs key→value with keyTtl at every member of the replica
// set, returning the number of messages spent. The write legs run
// concurrently (replica.Fanout), each bounded by the caller's ctx capped at
// CallTimeout; a cancelled request stops spawning legs, and the replicas
// already written keep their entries — they expire on their own.
func (n *Node) insert(ctx context.Context, k keyspace.Key, value uint64, replicas []string, hash uint64) (msgs int) {
	ttl := n.keyTtl()
	var mu sync.Mutex
	replica.Fanout(ctx, replicas, func(ctx context.Context, addr string) bool {
		if addr == n.cfg.Addr {
			n.mu.Lock()
			now := n.now()
			ok := n.cache.Put(k, core.Value(value), now+ttl, now)
			n.mu.Unlock()
			return ok
		}
		mu.Lock()
		msgs++
		mu.Unlock()
		n.counters.Inc(stats.MsgUpdate)
		resp, err := n.callWithin(ctx, addr, transport.Request{Op: transport.OpInsert, Key: uint64(k), Value: value, TTL: ttl, ViewHash: hash})
		return err == nil && n.accept(ctx, resp) && resp.OK
	})
	return msgs
}

// ---- background work ----

// sweeper is the background expiry loop: once per round it collects
// expired cache entries (keys that stopped being queried silently fall out
// — the defining behavior of the selection algorithm), updates the
// index-size gauge, and runs routing-table maintenance when configured.
func (n *Node) sweeper() {
	defer n.done.Done()
	tick := time.NewTicker(n.cfg.RoundDuration)
	defer tick.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-tick.C:
			n.mu.Lock()
			live := n.cache.Live(n.now()) // prunes expired entries
			var probes int
			if n.cfg.MaintainEnv > 0 {
				probes = n.view.maintain().Probes
			}
			n.mu.Unlock()
			n.m.indexSize.Set(int64(live))
			if probes > 0 {
				n.counters.Add(stats.MsgMaintenance, int64(probes))
			}
		}
	}
}

// retuner is the adaptive control loop: every RetuneInterval it closes the
// tuner's observation window, refits the paper's model to the traffic this
// node saw, and installs the recommended keyTtl for future inserts and
// refreshes. Entries already in the cache keep the TTL they were granted —
// shrinking the recommendation never mass-expires the index. A window with
// no traffic (or too few members to pose the model) leaves the previous
// recommendation standing.
func (n *Node) retuner() {
	defer n.done.Done()
	tick := time.NewTicker(n.cfg.RetuneInterval)
	defer tick.Stop()
	last := n.now()
	for {
		select {
		case <-n.stop:
			return
		case <-tick.C:
			now := n.now()
			window := now - last
			if window < 1 {
				continue // sub-round interval; wait for the clock
			}
			last = now
			n.mu.Lock()
			members := len(n.view.members)
			n.mu.Unlock()
			in := adapt.Inputs{
				Members:      members,
				Observers:    1, // a peer observes only its own queries
				Capacity:     n.cfg.Capacity,
				Repl:         n.cfg.Repl,
				Env:          n.cfg.MaintainEnv,
				WindowRounds: window,
				// Hits fan the refresh out to the whole set whenever
				// reads can fail over to it.
				RefreshFanout: n.cfg.FloodOnMiss,
			}
			if _, err := n.tuner.Retune(in); err == nil {
				n.m.retunes.Add(1)
			}
			// The top-k planner's yield history ages with the same clock
			// as the tuner's observation windows.
			n.planner.Decay()
		}
	}
}

// v64 narrows a core.Value to the wire representation.
func v64(v core.Value) uint64 { return uint64(v) }
