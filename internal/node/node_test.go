package node

import (
	"math"
	"strings"
	"testing"
	"time"

	"pdht/internal/transport"
)

// testConfig shrinks the round to 50ms so TTL behavior is observable in a
// test run; keyTtl 4 rounds = 200ms of lifetime.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.RoundDuration = 50 * time.Millisecond
	cfg.KeyTtl = 4
	cfg.CallTimeout = 2 * time.Second
	return cfg
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestSingleNodeMissBroadcastInsertHit(t *testing.T) {
	nd, err := New(transport.NewMemory(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer nd.Close()
	mustPublish(t, nd, 99, 4242)

	first := mustQuery(t, nd, 99)
	if !first.Answered || first.FromIndex {
		t.Fatalf("first query = %+v, want answered from broadcast", first)
	}
	if first.Value != 4242 {
		t.Fatalf("first query value = %d, want 4242", first.Value)
	}
	second := mustQuery(t, nd, 99)
	if !second.Answered || !second.FromIndex {
		t.Fatalf("second query = %+v, want index hit", second)
	}
}

func TestClusterMissBroadcastInsertHit(t *testing.T) {
	c, err := NewCluster(transport.NewMemory(), 3, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	waitFor(t, 5*time.Second, func() bool {
		for i := 0; i < c.Size(); i++ {
			if len(c.Node(i).Members()) != 3 {
				return false
			}
		}
		return true
	}, "full membership")

	// Content lives only at node 2; node 0 queries.
	const key = 7777
	mustPublish(t, c.Node(2), key, 1234)

	first := mustQuery(t, c.Node(0), key)
	if !first.Answered || first.FromIndex || first.Value != 1234 {
		t.Fatalf("first query = %+v, want broadcast answer 1234", first)
	}
	if first.BroadcastMsgs != 2 {
		t.Fatalf("broadcast cost %d messages, want 2 (full fan-out minus self)", first.BroadcastMsgs)
	}
	if first.AnsweredBy != c.Node(2).Addr() {
		t.Fatalf("answered by %s, want the content holder %s", first.AnsweredBy, c.Node(2).Addr())
	}

	// The insert leg must have installed the key; a repeat query — from a
	// different node — hits the index without broadcasting.
	second := mustQuery(t, c.Node(1), key)
	if !second.Answered || !second.FromIndex || second.Value != 1234 {
		t.Fatalf("second query = %+v, want index hit 1234", second)
	}
	if second.BroadcastMsgs != 0 {
		t.Fatalf("index hit still broadcast %d messages", second.BroadcastMsgs)
	}
}

func TestUnansweredQuery(t *testing.T) {
	c, err := NewCluster(transport.NewMemory(), 2, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res := mustQuery(t, c.Node(0), 31337) // nobody published it
	if res.Answered {
		t.Fatalf("query for unpublished key answered: %+v", res)
	}
	if got := c.Node(0).Report().Unanswered; got != 1 {
		t.Fatalf("unanswered counter = %d, want 1", got)
	}
}

// TestTTLRefreshAndExpiry drives the defining TTL behavior end to end: a
// queried key outlives its original TTL through reset-on-hit, then expires
// once queries stop.
func TestTTLRefreshAndExpiry(t *testing.T) {
	cfg := testConfig() // keyTtl 4 rounds × 50ms = 200ms
	c, err := NewCluster(transport.NewMemory(), 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const key = 555
	mustPublish(t, c.Node(1), key, 1)
	if res := mustQuery(t, c.Node(0), key); !res.Answered {
		t.Fatal("seed query unanswered")
	}

	// Query every ~half TTL for 3× the TTL: each hit must refresh the
	// entry, keeping it alive far beyond the original 200ms.
	deadline := time.Now().Add(600 * time.Millisecond)
	for time.Now().Before(deadline) {
		res := mustQuery(t, c.Node(0), key)
		if !res.Answered {
			t.Fatal("key fell out of the index while being queried")
		}
		time.Sleep(80 * time.Millisecond)
	}
	if res := mustQuery(t, c.Node(0), key); !res.FromIndex {
		t.Fatalf("query after sustained refreshing = %+v, want index hit", res)
	}

	// Stop querying; after 2× TTL the entry must be gone from every
	// node's cache, and the next query must fall back to broadcast.
	time.Sleep(2 * time.Duration(cfg.KeyTtl) * cfg.RoundDuration)
	if got := c.IndexedKeys(); got != 0 {
		t.Fatalf("%d keys still indexed after TTL silence, want 0", got)
	}
	res := mustQuery(t, c.Node(0), key)
	if !res.Answered || res.FromIndex {
		t.Fatalf("post-expiry query = %+v, want broadcast answer", res)
	}
}

func TestRefreshCountsAtStoringPeer(t *testing.T) {
	c, err := NewCluster(transport.NewMemory(), 3, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const key = 808
	mustPublish(t, c.Node(0), key, 9)
	mustQuery(t, c.Node(0), key) // miss → insert
	res := mustQuery(t, c.Node(0), key)
	if !res.FromIndex {
		t.Fatalf("second query = %+v, want hit", res)
	}
	// The reset-on-hit rule is an explicit OpRefresh at the answering
	// peer; at least one node must have counted it (the answerer may be
	// the querier itself when it is in the replica group).
	total := uint64(0)
	for i := 0; i < 3; i++ {
		total += c.Node(i).Report().Refreshes
	}
	if total == 0 {
		t.Fatal("no node recorded a TTL refresh after an index hit")
	}
}

// TestBackendGenericity runs the miss→insert→hit cycle over all three
// structured overlays — the paper's claim that the selection algorithm is
// indifferent to the DHT underneath, now over live RPC.
func TestBackendGenericity(t *testing.T) {
	for _, backend := range []Backend{BackendRing, BackendTrie, BackendKademlia} {
		t.Run(string(backend), func(t *testing.T) {
			cfg := testConfig()
			cfg.Backend = backend
			c, err := NewCluster(transport.NewMemory(), 4, cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			waitFor(t, 5*time.Second, func() bool {
				for i := 0; i < c.Size(); i++ {
					if len(c.Node(i).Members()) != 4 {
						return false
					}
				}
				return true
			}, "full membership")
			for k := uint64(1); k <= 20; k++ {
				mustPublish(t, c.Node(int(k)%4), k, k*10)
			}
			for k := uint64(1); k <= 20; k++ {
				if res := mustQuery(t, c.Node(0), k); !res.Answered || res.Value != k*10 {
					t.Fatalf("%s: cold query %d = %+v", backend, k, res)
				}
			}
			hits := 0
			for k := uint64(1); k <= 20; k++ {
				if res := mustQuery(t, c.Node(1), k); res.FromIndex {
					hits++
				}
			}
			if hits < 15 {
				t.Fatalf("%s: only %d/20 repeat queries hit the index", backend, hits)
			}
		})
	}
}

func TestJoinPropagatesMembership(t *testing.T) {
	tr := transport.NewMemory()
	cfg := testConfig()
	seed, err := New(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer seed.Close()
	cfg2 := cfg
	cfg2.Seed = seed.Addr()
	a, err := New(tr, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := New(tr, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	// a joined before b existed; the seed's forwarding must deliver b's
	// arrival to a without a ever talking to b.
	waitFor(t, 5*time.Second, func() bool { return len(a.Members()) == 3 }, "join forwarding to earlier member")
	waitFor(t, 5*time.Second, func() bool { return len(b.Members()) == 3 }, "joiner adopting full view")
}

func TestReportModelComparison(t *testing.T) {
	c, err := NewCluster(transport.NewMemory(), 3, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for k := uint64(1); k <= 30; k++ {
		mustPublish(t, c.Node(int(k)%3), k, k)
	}
	// A skewed workload: key k queried ~30/k times.
	for k := uint64(1); k <= 30; k++ {
		for q := uint64(0); q < 30/k; q++ {
			mustQuery(t, c.Node(0), k)
		}
	}
	// The model needs at least one elapsed round for a finite fQry.
	waitFor(t, 5*time.Second, func() bool { return c.Node(0).Report().Rounds >= 1 }, "round clock to advance")
	r := c.Node(0).Report()
	if r.Model == nil {
		t.Fatalf("report carries no model comparison: %+v", r)
	}
	m := r.Model
	if m.PredictedHitRate < 0 || m.PredictedHitRate > 1 || math.IsNaN(m.PredictedHitRate) {
		t.Fatalf("predicted hit rate %v out of [0,1]", m.PredictedHitRate)
	}
	if m.PredictedIndexSize <= 0 || math.IsNaN(m.PredictedIndexSize) {
		t.Fatalf("predicted index size %v must be positive", m.PredictedIndexSize)
	}
	if m.MeasuredHitRate != r.HitRate {
		t.Fatalf("measured hit rate %v diverges from report %v", m.MeasuredHitRate, r.HitRate)
	}
	if m.Alpha <= 0 {
		t.Fatalf("fitted alpha %v must be positive", m.Alpha)
	}
	// The rendered report must show the two operating points side by side.
	s := r.String()
	for _, want := range []string{"measured", "predicted", "hit rate", "index size"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendered report lacks %q:\n%s", want, s)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Repl: -1},
		{KeyTtl: -5},
		{Capacity: -1},
		{MaintainEnv: 2},
	}
	for _, cfg := range bad {
		if _, err := New(transport.NewMemory(), cfg); err == nil {
			t.Fatalf("config %+v accepted", cfg)
		}
	}
	if _, err := New(transport.NewMemory(), Config{Backend: "carrier-pigeon"}); err == nil {
		t.Fatal("unknown backend accepted")
	}
}

func TestCloseIsIdempotentAndStopsServing(t *testing.T) {
	tr := transport.NewMemory()
	nd, err := New(tr, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	addr := nd.Addr()
	if err := nd.Close(); err != nil {
		t.Fatal(err)
	}
	if err := nd.Close(); err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.Seed = addr
	if _, err := New(tr, cfg); err == nil {
		t.Fatal("joining a closed node succeeded")
	}
}
