package node

import (
	"context"
	"errors"
	"sync"

	"pdht/internal/transport"
)

// pool is an outbound connection pool over one transport: one multiplexed
// client per peer, dialed on first use, re-dialed after transport-level
// failures. Node and RemoteClient share it — the reconnect-under-churn
// semantics of the request path live here, once.
type pool struct {
	tr transport.Transport

	mu      sync.Mutex
	clients map[string]transport.Client
	closed  bool
}

func newPool(tr transport.Transport) *pool {
	return &pool{tr: tr, clients: make(map[string]transport.Client)}
}

// get returns a pooled connection to addr, dialing on first use. The dial
// happens outside the pool lock — a slow or blackholed peer must not stall
// outbound calls to everyone else — so two goroutines can race to dial the
// same peer; the loser's connection is closed and the winner's kept.
func (p *pool) get(addr string) (transport.Client, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, transport.ErrClosed
	}
	if c, ok := p.clients[addr]; ok {
		p.mu.Unlock()
		return c, nil
	}
	p.mu.Unlock()

	c, err := p.tr.Dial(addr)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		c.Close()
		return nil, transport.ErrClosed
	}
	if existing, ok := p.clients[addr]; ok {
		c.Close()
		return existing, nil
	}
	p.clients[addr] = c
	return c, nil
}

// drop discards a connection that returned an error, so the next call
// re-dials — the reconnect path under churn.
func (p *pool) drop(addr string, c transport.Client) {
	p.mu.Lock()
	if p.clients[addr] == c {
		delete(p.clients, addr)
	}
	p.mu.Unlock()
	c.Close()
}

// close shuts the pool down for good: existing connections close and get
// refuses to dial new ones.
func (p *pool) close() {
	p.mu.Lock()
	p.closed = true
	clients := p.clients
	p.clients = make(map[string]transport.Client)
	p.mu.Unlock()
	for _, c := range clients {
		c.Close()
	}
}

// call performs one RPC to addr under ctx. A timeout means that one call
// expired, not that the shared multiplexed connection is broken — tearing
// it down would fail every concurrent in-flight call to that peer — so the
// pooled client is only dropped on transport-level errors.
func (p *pool) call(ctx context.Context, addr string, req transport.Request) (transport.Response, error) {
	c, err := p.get(addr)
	if err != nil {
		return transport.Response{}, err
	}
	resp, err := c.Call(ctx, req)
	if err != nil {
		if !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
			p.drop(addr, c)
		}
		return transport.Response{}, err
	}
	return resp, nil
}
