package node

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pdht/internal/gossip"
	"pdht/internal/keyspace"
	"pdht/internal/obs"
	"pdht/internal/replica"
	"pdht/internal/topk"
	"pdht/internal/transport"
)

// RemoteConfig parameterizes a non-serving client. The Backend and Repl
// knobs MUST match the cluster's: the view hash only fingerprints the
// membership list, so a client with a different replica arithmetic would
// mis-route without any peer noticing.
type RemoteConfig struct {
	// Seeds are cluster members to bootstrap (and re-bootstrap) the
	// membership view from. At least one is required.
	Seeds []string
	// Backend and Repl mirror the cluster's Config fields.
	Backend Backend
	Repl    int
	// KeyTtl is the expiration time, in rounds, this client attaches to
	// its inserts and refreshes. Default 120.
	KeyTtl int
	// CallTimeout bounds each outbound RPC. Default 2s.
	CallTimeout time.Duration
	// TraceHook, when set, receives every finished Query's trace — the
	// per-leg record of probes, the broadcast, the insert and any
	// stale-view re-sync. Called synchronously at the end of Query; keep
	// it cheap.
	TraceHook func(obs.QueryTrace)
	// TraceSampling is the fraction of traced queries whose trace also
	// propagates over the wire, stitching server-side spans from the
	// probed members into the QueryTrace. Zero — the zero-value default,
	// unlike the serving node's DefaultConfig — keeps traces client-side;
	// the public client layer sets 1.0 unless WithTraceSampling overrides.
	TraceSampling float64
}

func (c *RemoteConfig) setDefaults() {
	if c.Backend == "" {
		c.Backend = BackendRing
	}
	if c.Repl == 0 {
		c.Repl = 3
	}
	if c.KeyTtl == 0 {
		c.KeyTtl = 120
	}
	if c.CallTimeout == 0 {
		c.CallTimeout = 2 * time.Second
	}
}

func (c RemoteConfig) validate() error {
	switch {
	case len(c.Seeds) == 0:
		return fmt.Errorf("node: remote client needs at least one seed")
	case c.Repl < 1:
		return fmt.Errorf("node: Repl %d must be positive", c.Repl)
	case c.KeyTtl < 1:
		return fmt.Errorf("node: KeyTtl %d must be positive", c.KeyTtl)
	}
	return nil
}

// RemoteClient speaks the wire protocol to an existing cluster without
// joining it: it serves nothing, gossips nothing, and never appears in any
// membership view. It bootstraps the member list with one anti-entropy
// fetch from a seed (a GossipSync with no sender identity, which the
// receiving member answers without adopting the asker), builds the same
// overlay view the members run, and routes queries, batches and inserts
// client-side — one wire message per probed peer. A StaleView refusal
// carries the responder's membership state, so the client re-syncs and
// retries instead of failing.
//
// It is the engine behind the public client package's non-serving mode.
type RemoteClient struct {
	cfg  RemoteConfig
	pool *pool

	// traceSeq drives wire-trace sampling, as on the serving node.
	traceSeq atomic.Uint64

	// planner schedules top-k probes. A client observes no query stream,
	// so it has no count-min sketch: weights stay uniform and the plan is
	// driven by yield history alone.
	planner *topk.Planner

	mu     sync.Mutex
	view   *view
	closed bool
}

// DialRemote connects a non-serving client to the cluster behind the
// seeds: the first reachable seed supplies the membership view. Fails with
// ErrNoMembers when no seed answers.
func DialRemote(ctx context.Context, tr transport.Transport, cfg RemoteConfig) (*RemoteClient, error) {
	cfg.setDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	c := &RemoteClient{cfg: cfg, pool: newPool(tr), planner: topk.NewPlanner(nil)}
	if err := c.Resync(ctx); err != nil {
		c.pool.close()
		return nil, err
	}
	return c, nil
}

// Close releases the client's connections. Idempotent.
func (c *RemoteClient) Close() error {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	c.pool.close()
	return nil
}

// Members returns the client's current view of the cluster membership.
func (c *RemoteClient) Members() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.view == nil {
		return nil
	}
	return append([]string(nil), c.view.members...)
}

// currentView snapshots the installed view, or fails typed.
func (c *RemoteClient) currentView() (*view, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	if c.view == nil {
		return nil, ErrNoMembers
	}
	return c.view, nil
}

// callWithin bounds one RPC by the caller's context and CallTimeout. When
// the caller's trace has a wire ID, the request carries it and server-side
// spans in the reply are stitched into the trace — same contract as the
// serving node's callWithin.
func (c *RemoteClient) callWithin(ctx context.Context, addr string, req transport.Request) (transport.Response, error) {
	cctx, cancel := context.WithTimeout(ctx, c.cfg.CallTimeout)
	defer cancel()
	if tr := obs.TraceFrom(ctx); tr != nil {
		if id := tr.WireID(); id != 0 {
			req.TraceID = id
			start := time.Now()
			resp, err := c.pool.call(cctx, addr, req)
			if err == nil {
				tr.AddSpans(addr, start, resp.Spans)
			}
			return resp, err
		}
	}
	return c.pool.call(cctx, addr, req)
}

// Resync refetches the membership table from any reachable peer — current
// members first, then the configured seeds — and rebuilds the view. The
// request carries no sender identity, so the answering member does not
// adopt the client into the membership.
func (c *RemoteClient) Resync(ctx context.Context) error {
	candidates := c.Members()
	seen := make(map[string]bool, len(candidates)+len(c.cfg.Seeds))
	for _, a := range candidates {
		seen[a] = true
	}
	for _, s := range c.cfg.Seeds {
		if !seen[s] {
			candidates = append(candidates, s)
		}
	}
	for _, addr := range candidates {
		resp, err := c.callWithin(ctx, addr, transport.Request{
			Op: transport.OpGossip, Gossip: &transport.Gossip{Kind: transport.GossipSync},
		})
		if err != nil || resp.Err != "" || resp.Gossip == nil {
			if err := ctx.Err(); err != nil {
				return ctxErr(err)
			}
			continue
		}
		return c.install(resp.Gossip.Updates)
	}
	if err := ctx.Err(); err != nil {
		return ctxErr(err)
	}
	return ErrNoMembers
}

// install rebuilds the view from a wire membership table. Suspects count
// as alive, exactly as in the members' own views, so the hash agrees.
func (c *RemoteClient) install(updates []transport.PeerState) error {
	alive := make([]string, 0, len(updates))
	for _, u := range updates {
		if gossip.Status(u.Status) != gossip.StatusDead {
			alive = append(alive, u.Addr)
		}
	}
	if len(alive) == 0 {
		return ErrNoMembers
	}
	v, err := buildView(alive, c.cfg.Backend, c.cfg.Repl, 0)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	c.view = v
	return nil
}

// handleStale folds a StaleView response's attached membership state into
// a fresh view, reporting whether the caller should retry.
func (c *RemoteClient) handleStale(resp transport.Response) bool {
	if resp.Err != transport.StaleView || resp.Gossip == nil {
		return false
	}
	return c.install(resp.Gossip.Updates) == nil
}

// clientSet orders key's replica group into the probe/write order: the
// placement-designated responsible peer first, then the rest of the group
// in the keyspace ranking — the same order the members walk, so client and
// cluster agree on the primary and the failover sequence.
func clientSet(v *view, k keyspace.Key) replicaSet {
	group := v.replicas(k)
	if len(group) == 0 {
		return replicaSet{}
	}
	return replica.NewSet(k, group[0], group)
}

// syncHit is the client-side reset-on-hit: refresh every member of the hit
// key's replica set concurrently (each leg bounded by the caller's ctx
// capped at CallTimeout) and read-repair members that answered without
// holding the entry, exactly as a member node's syncHit does.
func (c *RemoteClient) syncHit(ctx context.Context, v *view, rs replicaSet, key, value uint64, res *QueryResult) {
	var mu sync.Mutex
	replica.Fanout(ctx, rs.All(), func(ctx context.Context, addr string) bool {
		mu.Lock()
		res.RefreshMsgs++
		mu.Unlock()
		resp, err := c.callWithin(ctx, addr, transport.Request{
			Op: transport.OpRefresh, Key: key, TTL: c.cfg.KeyTtl, ViewHash: v.hash,
		})
		if err != nil || resp.Err != "" {
			return false
		}
		if resp.OK {
			return true
		}
		// Answered without the entry: read repair.
		mu.Lock()
		res.RepairMsgs++
		mu.Unlock()
		rresp, err := c.callWithin(ctx, addr, transport.Request{
			Op: transport.OpInsert, Key: key, Value: value, TTL: c.cfg.KeyTtl, ViewHash: v.hash,
		})
		return err == nil && rresp.Err == "" && rresp.OK
	})
}

// Query resolves key with the selection algorithm, driven from outside the
// cluster: probe the replica group responsible for the key (one wire
// message per probe — the client routes locally, like the members do),
// broadcast to the membership on a miss, and insert the resolved value
// with KeyTtl. A stale view is refreshed from the refusing peer's attached
// state and the query retried once; a stale view that cannot be refreshed
// fails with ErrStaleView — the member list is untrustworthy, so routing
// on it would silently mis-route.
func (c *RemoteClient) Query(ctx context.Context, key uint64) (QueryResult, error) {
	tr := obs.TraceFrom(ctx)
	owned := tr == nil && c.cfg.TraceHook != nil
	if owned {
		tr = obs.NewTrace(key)
		ctx = obs.WithTrace(ctx, tr)
	}
	if tr != nil && tr.WireID() == 0 {
		tr.SetWireID(sampleWireID(&c.traceSeq, c.cfg.TraceSampling))
	}
	res, err := c.query(ctx, key)
	if owned {
		c.cfg.TraceHook(tr.Finish(queryOutcome(res, err)))
	}
	return res, err
}

// query is the client-side selection algorithm proper; Query wraps it with
// the optional trace.
func (c *RemoteClient) query(ctx context.Context, key uint64) (QueryResult, error) {
	tr := obs.TraceFrom(ctx)
	var res QueryResult
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return res, ctxErr(err)
		}
		v, err := c.currentView()
		if err != nil {
			return res, err
		}
		k := keyspace.Key(key)
		rs := clientSet(v, k)
		res = QueryResult{Responsible: rs.Primary}
		recovered, unrecoverable := false, false
		for _, addr := range rs.All() {
			res.IndexMsgs++
			var legStart time.Time
			if tr != nil {
				legStart = time.Now()
			}
			resp, err := c.callWithin(ctx, addr, transport.Request{
				Op: transport.OpQuery, Key: key, ViewHash: v.hash,
			})
			if err != nil {
				if tr != nil {
					tr.Leg("probe", addr, "failed", legStart)
				}
				continue
			}
			if resp.Err == transport.StaleView {
				if tr != nil {
					tr.Leg("probe", addr, "refused", legStart)
				}
				if c.handleStale(resp) {
					if tr != nil {
						tr.Mark("stale-view", addr, "resync")
					}
					recovered = true
					break
				}
				unrecoverable = true
				continue
			}
			if resp.Err != "" || !resp.Found {
				if tr != nil {
					tr.Leg("probe", addr, "miss", legStart)
				}
				continue
			}
			if tr != nil {
				tr.Leg("probe", addr, "hit", legStart)
			}
			res.Answered, res.FromIndex = true, true
			res.Value, res.AnsweredBy = resp.Value, addr
			// Reset-on-hit across the whole set, with read repair.
			c.syncHit(ctx, v, rs, key, resp.Value, &res)
			return res, nil
		}
		if recovered && attempt == 0 {
			continue // fresh view installed; re-route once
		}
		if unrecoverable && !recovered {
			return res, ErrStaleView
		}
		return res, c.resolveMiss(ctx, key, &res)
	}
}

// QueryTopK coordinates one distributed top-k query from outside the
// cluster: the same threshold-algorithm round protocol a member node runs
// (see Node.QueryTopK), with the client as coordinator. Term weights stay
// uniform — a client observes no query stream to sketch — so the adaptive
// half is the probe order and depth learned from previous answers' yield.
// The coordinator itself is not a member, so every probe is a wire leg.
func (c *RemoteClient) QueryTopK(ctx context.Context, terms []uint64, k int) (topk.Result, error) {
	if err := ctx.Err(); err != nil {
		return topk.Result{}, ctxErr(err)
	}
	if k < 1 {
		return topk.Result{}, fmt.Errorf("node: top-k k = %d must be positive", k)
	}
	if len(terms) == 0 {
		return topk.Result{}, fmt.Errorf("node: top-k query without terms")
	}
	v, err := c.currentView()
	if err != nil {
		return topk.Result{}, err
	}
	tr := obs.TraceFrom(ctx)
	owned := tr == nil && c.cfg.TraceHook != nil
	if owned {
		tr = obs.NewTrace(terms[0])
		ctx = obs.WithTrace(ctx, tr)
	}
	if tr != nil && tr.WireID() == 0 {
		tr.SetWireID(sampleWireID(&c.traceSeq, c.cfg.TraceSampling))
	}

	cfg := topk.RunConfig{
		K:     k,
		Terms: terms,
		Plan:  c.planner.Plan(v.members, "", k, c.cfg.Repl),
	}
	type source struct {
		addr  string
		score float64
	}
	var bmu sync.Mutex
	best := make(map[uint64]source)
	probe := func(pctx context.Context, addr string, req topk.Req) (topk.Resp, error) {
		r, err := c.callWithin(pctx, addr, transport.Request{Op: transport.OpTopK, TopK: &req})
		if err != nil {
			return topk.Resp{}, err
		}
		if r.Err != "" || r.TopK == nil {
			return topk.Resp{}, fmt.Errorf("node: topk probe: %s", r.Err)
		}
		bmu.Lock()
		for _, e := range r.TopK.Entries {
			if cur, ok := best[e.Doc]; !ok || e.Score > cur.score {
				best[e.Doc] = source{addr: addr, score: e.Score}
			}
		}
		bmu.Unlock()
		return *r.TopK, nil
	}
	legStart := time.Now()
	onRound := func(info topk.RoundInfo) {
		if tr != nil {
			tr.Leg("topk-round", "",
				fmt.Sprintf("%d legs, %d candidates", info.Legs, info.Candidates), legStart)
			legStart = time.Now()
		}
	}
	res := topk.Run(ctx, cfg, probe, onRound)
	for _, e := range res.Entries {
		if src, ok := best[e.Doc]; ok {
			c.planner.Credit(src.addr)
		}
	}
	if owned {
		outcome := "topk"
		if res.Early {
			outcome = "topk-early"
		}
		if ctx.Err() != nil {
			outcome = "error"
		}
		c.cfg.TraceHook(tr.Finish(outcome))
	}
	if err := ctx.Err(); err != nil {
		return res, ctxErr(err)
	}
	return res, nil
}

// resolveMiss runs the client's miss path: broadcast to every member, and
// insert the resolved value at the replica group with KeyTtl. The view is
// re-snapshotted here — a stale-view refusal on the probe leg may have
// just installed a fresher one, and the insert must carry its hash.
func (c *RemoteClient) resolveMiss(ctx context.Context, key uint64, res *QueryResult) error {
	v, err := c.currentView()
	if err != nil {
		return err
	}
	tr := obs.TraceFrom(ctx)
	var legStart time.Time
	if tr != nil {
		legStart = time.Now()
	}
	type answer struct {
		addr  string
		value uint64
	}
	var wg sync.WaitGroup
	answers := make(chan answer, len(v.members))
	for _, m := range v.members {
		res.BroadcastMsgs++
		wg.Add(1)
		go func(m string) {
			defer wg.Done()
			resp, err := c.callWithin(ctx, m, transport.Request{Op: transport.OpBroadcast, Key: key})
			if err == nil && resp.Err == "" && resp.Found {
				answers <- answer{m, resp.Value}
			}
		}(m)
	}
	wg.Wait()
	close(answers)
	var foundAt string
	var value uint64
	for a := range answers {
		if foundAt == "" || a.addr < foundAt {
			value, foundAt = a.value, a.addr
		}
	}
	if foundAt == "" {
		if tr != nil {
			tr.Leg("broadcast", "", "unanswered", legStart)
		}
		if err := ctx.Err(); err != nil {
			return ctxErr(err)
		}
		return nil // ran to completion; nobody holds the key
	}
	if tr != nil {
		tr.Leg("broadcast", foundAt, "answered", legStart)
		legStart = time.Now()
	}
	res.Answered, res.Value, res.AnsweredBy = true, value, foundAt
	res.InsertMsgs = c.insert(ctx, v, key, value)
	if tr != nil {
		tr.Leg("insert", "", "ok", legStart)
	}
	if err := ctx.Err(); err != nil {
		return ctxErr(err)
	}
	return nil
}

// insert installs key→value with KeyTtl at every member of the replica
// set, returning the message count. The legs run concurrently
// (replica.Fanout), each bounded by the caller's ctx capped at
// CallTimeout — one stalled member cannot serialize the others out of
// their write.
func (c *RemoteClient) insert(ctx context.Context, v *view, key, value uint64) (msgs int) {
	var mu sync.Mutex
	replica.Fanout(ctx, v.replicas(keyspace.Key(key)), func(ctx context.Context, addr string) bool {
		mu.Lock()
		msgs++
		mu.Unlock()
		resp, err := c.callWithin(ctx, addr, transport.Request{
			Op: transport.OpInsert, Key: key, Value: value, TTL: c.cfg.KeyTtl, ViewHash: v.hash,
		})
		return err == nil && resp.Err == "" && resp.OK
	})
	return msgs
}

// QueryMany resolves a batch of keys with one OpBatch request per
// destination peer: group by responsible member, a single round trip per
// group (query items carry KeyTtl, amortizing the reset-on-hit refresh),
// and the full per-key fallback — replica flood, broadcast, insert — for
// keys the batch could not resolve.
func (c *RemoteClient) QueryMany(ctx context.Context, keys []uint64) ([]QueryResult, error) {
	if len(keys) == 0 {
		return nil, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, ctxErr(err)
	}
	v, err := c.currentView()
	if err != nil {
		return nil, err
	}
	results := make([]QueryResult, len(keys))
	groups := make(map[string][]int)
	for i, key := range keys {
		rs := clientSet(v, keyspace.Key(key))
		if rs.Primary == "" {
			continue
		}
		results[i].Responsible = rs.Primary
		groups[rs.Primary] = append(groups[rs.Primary], i)
	}

	var staleOnce sync.Once
	var wg sync.WaitGroup
	for addr, idxs := range groups {
		wg.Add(1)
		go func(addr string, idxs []int) {
			defer wg.Done()
			items := make([]transport.BatchItem, len(idxs))
			for j, i := range idxs {
				items[j] = transport.BatchItem{Op: transport.OpQuery, Key: keys[i], TTL: c.cfg.KeyTtl}
			}
			resp, err := c.callWithin(ctx, addr, transport.Request{
				Op: transport.OpBatch, ViewHash: v.hash, Batch: items,
			})
			if err != nil {
				return
			}
			if resp.Err == transport.StaleView {
				// Refresh the view once for the whole batch; the keys of
				// this group resolve through the fallback.
				staleOnce.Do(func() { c.handleStale(resp) })
				return
			}
			if resp.Err != "" || len(resp.Batch) != len(idxs) {
				return
			}
			for j, i := range idxs {
				results[i].IndexMsgs++
				if br := resp.Batch[j]; br.Err == "" && br.Found {
					results[i].Answered, results[i].FromIndex = true, true
					results[i].Value, results[i].AnsweredBy = br.Value, addr
				}
			}
		}(addr, idxs)
	}
	wg.Wait()
	// Replica-coherent reset-on-hit for the batch hits, before the
	// fallbacks run — fallback hits sync through syncHit on their own.
	c.syncBatchHits(ctx, v, keys, results)
	if err := ctx.Err(); err != nil {
		return results, ctxErr(err)
	}

	var ferr error
	var errMu sync.Mutex
	for i := range results {
		if results[i].Answered {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := c.fallbackQuery(ctx, keys[i], &results[i]); err != nil {
				errMu.Lock()
				if ferr == nil {
					ferr = err
				}
				errMu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	return results, ferr
}

// syncBatchHits fans the reset-on-hit refresh of every phase-1 batch hit
// out to the rest of the key's replica set — one OpBatch of refresh items
// per destination — and read-repairs members that answered without holding
// an entry with a follow-up OpBatch of inserts. The client-side counterpart
// of the member node's syncBatchHits.
func (c *RemoteClient) syncBatchHits(ctx context.Context, v *view, keys []uint64, results []QueryResult) {
	type slot struct {
		i     int
		key   uint64
		value uint64
	}
	groups := make(map[string][]slot)
	for i := range results {
		if !results[i].Answered || !results[i].FromIndex {
			continue
		}
		k := keyspace.Key(keys[i])
		for _, addr := range clientSet(v, k).All() {
			if addr == results[i].AnsweredBy {
				continue // the query item's TTL already refreshed it
			}
			groups[addr] = append(groups[addr], slot{i, keys[i], results[i].Value})
		}
	}
	// resMu guards the per-result counters: a key's backups live at
	// different destinations, so two goroutines may touch the same result.
	var resMu sync.Mutex
	var wg sync.WaitGroup
	for addr, slots := range groups {
		wg.Add(1)
		go func(addr string, slots []slot) {
			defer wg.Done()
			items := make([]transport.BatchItem, len(slots))
			for j, s := range slots {
				items[j] = transport.BatchItem{Op: transport.OpRefresh, Key: s.key, TTL: c.cfg.KeyTtl}
			}
			resMu.Lock()
			for _, s := range slots {
				results[s.i].RefreshMsgs++
			}
			resMu.Unlock()
			resp, err := c.callWithin(ctx, addr, transport.Request{
				Op: transport.OpBatch, ViewHash: v.hash, Batch: items,
			})
			if err != nil || resp.Err != "" || len(resp.Batch) != len(slots) {
				return
			}
			var repairs []slot
			for j, s := range slots {
				if br := resp.Batch[j]; br.Err == "" && !br.OK {
					repairs = append(repairs, s)
				}
			}
			if len(repairs) == 0 || ctx.Err() != nil {
				return
			}
			items = make([]transport.BatchItem, len(repairs))
			for j, s := range repairs {
				items[j] = transport.BatchItem{Op: transport.OpInsert, Key: s.key, Value: s.value, TTL: c.cfg.KeyTtl}
			}
			resMu.Lock()
			for _, s := range repairs {
				results[s.i].RepairMsgs++
			}
			resMu.Unlock()
			c.callWithin(ctx, addr, transport.Request{
				Op: transport.OpBatch, ViewHash: v.hash, Batch: items,
			})
		}(addr, slots)
	}
	wg.Wait()
}

// fallbackQuery finishes one key the batch probe could not resolve: the
// failover probes beyond the responsible peer, then broadcast and insert.
func (c *RemoteClient) fallbackQuery(ctx context.Context, key uint64, res *QueryResult) error {
	v, err := c.currentView()
	if err != nil {
		return err
	}
	rs := clientSet(v, keyspace.Key(key))
	for _, addr := range rs.All() {
		if addr == res.Responsible {
			continue // the batch leg already asked it
		}
		if err := ctx.Err(); err != nil {
			return ctxErr(err)
		}
		res.IndexMsgs++
		resp, err := c.callWithin(ctx, addr, transport.Request{
			Op: transport.OpQuery, Key: key, ViewHash: v.hash,
		})
		if err != nil || resp.Err != "" || !resp.Found {
			continue
		}
		res.Answered, res.FromIndex = true, true
		res.Value, res.AnsweredBy = resp.Value, addr
		c.syncHit(ctx, v, rs, key, resp.Value, res)
		return nil
	}
	return c.resolveMiss(ctx, key, res)
}

// Publish makes key→value resolvable through the cluster's index: the
// client cannot host content (it answers no broadcasts), so it installs
// the pair at the key's replica group with KeyTtl. Like every indexed
// entry, it expires unless queries keep refreshing it — a client that
// wants its keys to outlive KeyTtl republished them or runs a member node.
// Fails with ErrNoMembers when no replica accepted the insert.
func (c *RemoteClient) Publish(ctx context.Context, key, value uint64) error {
	return c.PublishMany(ctx, []KV{{Key: key, Value: value}})
}

// PublishMany installs a batch of pairs with one OpBatch request per
// destination peer: each pair targets its replica group, items are grouped
// by destination, and a single round trip per destination carries them
// all. A pair counts as published when at least one replica stored it.
func (c *RemoteClient) PublishMany(ctx context.Context, pairs []KV) error {
	if len(pairs) == 0 {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return ctxErr(err)
	}
	v, err := c.currentView()
	if err != nil {
		return err
	}
	type slot struct {
		item transport.BatchItem
		pair int // index into pairs
	}
	groups := make(map[string][]slot)
	for i, p := range pairs {
		for _, addr := range v.replicas(keyspace.Key(p.Key)) {
			groups[addr] = append(groups[addr], slot{
				item: transport.BatchItem{Op: transport.OpInsert, Key: p.Key, Value: p.Value, TTL: c.cfg.KeyTtl},
				pair: i,
			})
		}
	}
	// stored: at least one replica accepted the pair; acked: at least one
	// replica answered for it at all — the line between "index refused
	// it" and "nobody reachable". Both guarded by statusMu.
	stored := make([]bool, len(pairs))
	acked := make([]bool, len(pairs))
	var statusMu sync.Mutex
	var wg sync.WaitGroup
	for addr, slots := range groups {
		wg.Add(1)
		go func(addr string, slots []slot) {
			defer wg.Done()
			items := make([]transport.BatchItem, len(slots))
			for j, s := range slots {
				items[j] = s.item
			}
			resp, err := c.callWithin(ctx, addr, transport.Request{
				Op: transport.OpBatch, ViewHash: v.hash, Batch: items,
			})
			if err != nil || resp.Err != "" || len(resp.Batch) != len(slots) {
				return
			}
			statusMu.Lock()
			for j, s := range slots {
				acked[s.pair] = true
				if resp.Batch[j].OK {
					stored[s.pair] = true
				}
			}
			statusMu.Unlock()
		}(addr, slots)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return ctxErr(err)
	}
	for i, ok := range stored {
		if ok {
			continue
		}
		if acked[i] {
			return fmt.Errorf("node: no replica stored key %d (index refused it)", pairs[i].Key)
		}
		return fmt.Errorf("%w: no replica of key %d answered", ErrNoMembers, pairs[i].Key)
	}
	return nil
}

// ClusterReport polls every member of the client's view for a metrics
// snapshot over OpStats and aggregates them into a fleet-wide report —
// what pdht-top renders. Members that fail to answer within the context
// (or CallTimeout) are skipped; the report covers the reachable fleet.
// Unlike a member node's ClusterReport, no model prediction is attached:
// the client observes no query stream of its own to fit one to.
func (c *RemoteClient) ClusterReport(ctx context.Context) (obs.FleetReport, error) {
	if err := ctx.Err(); err != nil {
		return obs.FleetReport{}, ctxErr(err)
	}
	v, err := c.currentView()
	if err != nil {
		return obs.FleetReport{}, err
	}
	snaps := fetchFleet(ctx, v.members, func(ctx context.Context, addr string) (obs.Snapshot, error) {
		resp, err := c.callWithin(ctx, addr, transport.Request{Op: transport.OpStats})
		return statsFromResponse(addr, resp, err)
	})
	if len(snaps) == 0 {
		if err := ctx.Err(); err != nil {
			return obs.FleetReport{}, ctxErr(err)
		}
		return obs.FleetReport{}, ErrNoMembers
	}
	return obs.BuildFleetReport(snaps), nil
}
