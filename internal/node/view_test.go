package node

import (
	"context"
	"testing"
	"time"

	"pdht/internal/keyspace"
	"pdht/internal/transport"
)

// TestRankShiftDisagreement demonstrates the hazard the view hash exists
// for: two nodes whose membership lists differ by one member silently
// disagree on replica groups, because ranks are positions in the sorted
// list and every address after the divergence point shifts. Without a
// guard, a query routed under one view and answered under the other is a
// false miss — or an insert parked where nobody will probe it.
func TestRankShiftDisagreement(t *testing.T) {
	full := []string{"n0", "n1", "n2", "n3", "n4", "n5"}
	short := []string{"n0", "n1", "n3", "n4", "n5"} // n2 evicted

	vFull, err := buildView(full, BackendRing, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	vShort, err := buildView(short, BackendRing, 3, 0)
	if err != nil {
		t.Fatal(err)
	}

	disagreements := 0
	for k := uint64(0); k < 200; k++ {
		key := keyspace.HashString("rank-shift-probe")
		key ^= keyspace.Key(k * 0x9e3779b97f4a7c15)
		a, b := vFull.replicas(key), vShort.replicas(key)
		if len(a) != len(b) {
			disagreements++
			continue
		}
		for i := range a {
			if a[i] != b[i] {
				disagreements++
				break
			}
		}
	}
	if disagreements == 0 {
		t.Fatal("views differing by one member agreed on every replica group; the rank-shift hazard test is vacuous")
	}
	t.Logf("views differing by one member disagreed on %d/200 replica groups", disagreements)

	// The guard: the membership hash differs, so routed RPCs between the
	// two views are rejectable before they mis-route.
	if vFull.hash == vShort.hash {
		t.Fatal("different membership lists produced the same view hash")
	}
	// And hashing is stable: rebuilding the same list reproduces it.
	vAgain, err := buildView(append([]string(nil), full...), BackendRing, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if vAgain.hash != vFull.hash {
		t.Fatal("same membership list produced different view hashes")
	}
}

// TestStaleViewRejected drives the guard over the wire: a routed RPC
// carrying a mismatched membership hash must be refused with
// transport.StaleView — and the refusal must carry the responder's gossip
// state so the stale caller can converge. Unhashed RPCs (handoff pushes)
// must still land.
func TestStaleViewRejected(t *testing.T) {
	tr := transport.NewMemory()
	cfg := testConfig()
	nd, err := New(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer nd.Close()

	cl, err := tr.Dial(nd.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()

	nd.mu.Lock()
	hash := nd.view.hash
	nd.mu.Unlock()

	for _, op := range []transport.Op{transport.OpQuery, transport.OpInsert, transport.OpRefresh} {
		resp, err := cl.Call(ctx, transport.Request{Op: op, Key: 1, TTL: 5, ViewHash: hash ^ 0xdead})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Err != transport.StaleView {
			t.Fatalf("%v with wrong hash answered %+v, want %q", op, resp, transport.StaleView)
		}
		if resp.Gossip == nil || !resp.Gossip.Full || len(resp.Gossip.Updates) == 0 {
			t.Fatalf("%v stale-view refusal carries no membership state: %+v", op, resp)
		}
	}

	// The matching hash — and the unhashed handoff form — are served.
	if resp, err := cl.Call(ctx, transport.Request{Op: transport.OpInsert, Key: 1, Value: 2, TTL: 5, ViewHash: hash}); err != nil || !resp.OK {
		t.Fatalf("insert with matching hash = %+v, %v; want stored", resp, err)
	}
	if resp, err := cl.Call(ctx, transport.Request{Op: transport.OpQuery, Key: 1}); err != nil || !resp.Found {
		t.Fatalf("unhashed query = %+v, %v; want found", resp, err)
	}
}
