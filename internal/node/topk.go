package node

import (
	"context"
	"fmt"
	"sync"
	"time"

	"pdht/internal/keyspace"
	"pdht/internal/obs"
	"pdht/internal/stats"
	"pdht/internal/topk"
	"pdht/internal/transport"
)

// This file is the node's half of the distributed top-k protocol
// (internal/topk): serving OpTopK probes against the local content store,
// and coordinating whole queries over the membership via QueryTopK.

// serveTopK answers one OpTopK probe: score the local content store
// against the request's terms and return the best entries of the asked
// window. Content is unrouted — any peer may hold any document — so the
// op is not subject to the ViewHash check.
func (n *Node) serveTopK(req transport.Request) transport.Response {
	if req.TopK == nil {
		return transport.Response{Err: "topk without payload"}
	}
	n.mu.Lock()
	resp := topk.Serve(*req.TopK, func(term uint64) (uint64, bool) {
		doc, ok := n.store[keyspace.Key(term)]
		return doc, ok
	}, n.cfg.TopKScorer)
	n.mu.Unlock()
	return transport.Response{OK: true, TopK: &resp}
}

// QueryTopK coordinates one distributed top-k query: the k best documents
// cluster-wide for the term set, under the threshold-algorithm round
// protocol of internal/topk. The probe schedule is adaptive — the
// planner's yield history orders peers and the tuner's count-min sketch
// (when the node is adaptive) weights terms — so hot peers are probed
// deep and first, and cold peers are skipped entirely once the threshold
// bound is met (Result.Early).
//
// The context bounds the whole query; cancellation aborts the in-flight
// round and returns the context error. Every remote probe is additionally
// capped at CallTimeout, and a probe that fails is treated as an empty
// peer — replication at the other holders keeps the answer correct.
func (n *Node) QueryTopK(ctx context.Context, terms []uint64, k int) (topk.Result, error) {
	if err := ctx.Err(); err != nil {
		return topk.Result{}, ctxErr(err)
	}
	if k < 1 {
		return topk.Result{}, fmt.Errorf("node: top-k k = %d must be positive", k)
	}
	if len(terms) == 0 {
		return topk.Result{}, fmt.Errorf("node: top-k query without terms")
	}
	// Same tracing contract as Query: opt-in per node or per call, wire
	// propagation sampled per traced query.
	tr := obs.TraceFrom(ctx)
	owned := tr == nil && (n.traceHook != nil || n.slowLog != nil)
	if owned {
		tr = obs.NewTrace(terms[0])
		ctx = obs.WithTrace(ctx, tr)
	}
	if tr != nil && tr.WireID() == 0 {
		tr.SetWireID(sampleWireID(&n.traceSeq, n.cfg.TraceSampling))
	}
	res, err := n.queryTopK(ctx, terms, k)
	if owned {
		outcome := "topk"
		switch {
		case err != nil:
			outcome = "error"
		case res.Early:
			outcome = "topk-early"
		}
		qt := tr.Finish(outcome)
		if n.slowLog != nil {
			n.slowLog.Record(qt)
		}
		if n.traceHook != nil {
			n.traceHook(qt)
		}
	}
	return res, err
}

// queryTopK runs the round protocol proper; QueryTopK wraps it with the
// trace plumbing.
func (n *Node) queryTopK(ctx context.Context, terms []uint64, k int) (topk.Result, error) {
	n.m.topkQueries.Inc()
	if n.tuner != nil {
		// Every term feeds the frequency sketch the planner's weights are
		// derived from — top-k load shapes the control plane like unary
		// query load does.
		for _, t := range terms {
			n.tuner.Observe(t)
		}
	}

	n.mu.Lock()
	if n.closing {
		n.mu.Unlock()
		return topk.Result{}, ErrClosed
	}
	members := append([]string(nil), n.view.members...)
	n.mu.Unlock()

	cfg := topk.RunConfig{
		K:       k,
		Terms:   terms,
		Weights: n.planner.Weights(terms),
		Plan:    n.planner.Plan(members, n.cfg.Addr, k, n.cfg.Repl),
	}

	// best tracks, per candidate document, the peer whose probe reported
	// its winning score — the planner's Credit feedback after the query.
	type source struct {
		addr  string
		score float64
	}
	var bmu sync.Mutex
	best := make(map[uint64]source)

	probe := func(pctx context.Context, addr string, req topk.Req) (topk.Resp, error) {
		var resp topk.Resp
		if addr == n.cfg.Addr {
			// The local self-scan: served in-process, no wire leg.
			r := n.serveTopK(transport.Request{Op: transport.OpTopK, From: n.cfg.Addr, TopK: &req})
			if r.Err != "" {
				return topk.Resp{}, fmt.Errorf("node: %s", r.Err)
			}
			resp = *r.TopK
		} else {
			r, err := n.callWithin(pctx, addr, transport.Request{
				Op: transport.OpTopK, From: n.cfg.Addr, TopK: &req,
			})
			if err != nil {
				return topk.Resp{}, err
			}
			if r.Err != "" || r.TopK == nil {
				return topk.Resp{}, fmt.Errorf("node: topk probe: %s", r.Err)
			}
			resp = *r.TopK
		}
		bmu.Lock()
		for _, e := range resp.Entries {
			if cur, ok := best[e.Doc]; !ok || e.Score > cur.score {
				best[e.Doc] = source{addr: addr, score: e.Score}
			}
		}
		bmu.Unlock()
		return resp, nil
	}

	tr := obs.TraceFrom(ctx)
	legStart := time.Now()
	onRound := func(info topk.RoundInfo) {
		n.m.topkRounds.Inc()
		n.m.topkLegs.Add(uint64(info.Legs))
		n.m.topkCandidates.Set(int64(info.Candidates))
		n.counters.Add(stats.MsgTopK, int64(info.Legs))
		if tr != nil {
			tr.Leg("topk-round", "",
				fmt.Sprintf("%d legs, %d candidates", info.Legs, info.Candidates), legStart)
			legStart = time.Now()
		}
	}

	res := topk.Run(ctx, cfg, probe, onRound)
	if res.Early {
		n.m.topkEarly.Inc()
	}
	if n.tuner != nil {
		n.tuner.ObserveTopK(res.Legs)
	}
	// Credit the peers whose content made the final answer: tomorrow's
	// first round starts at today's productive peers.
	for _, e := range res.Entries {
		if src, ok := best[e.Doc]; ok {
			n.planner.Credit(src.addr)
		}
	}
	if err := ctx.Err(); err != nil {
		return res, ctxErr(err)
	}
	return res, nil
}
