package node

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"pdht/internal/topk"
	"pdht/internal/transport"
)

// opCountingTransport wraps a transport and counts, at the wire level,
// every OpTopK call that actually left a client — the independent witness
// that early termination saves legs, not just the coordinator's own
// bookkeeping.
type opCountingTransport struct {
	transport.Transport
	topkCalls atomic.Int64
}

func (t *opCountingTransport) Dial(addr string) (transport.Client, error) {
	c, err := t.Transport.Dial(addr)
	if err != nil {
		return nil, err
	}
	return &opCountingClient{Client: c, n: &t.topkCalls}, nil
}

type opCountingClient struct {
	transport.Client
	n *atomic.Int64
}

func (c *opCountingClient) Call(ctx context.Context, req transport.Request) (transport.Response, error) {
	if req.Op == transport.OpTopK {
		c.n.Add(1)
	}
	return c.Client.Call(ctx, req)
}

// topkCluster boots n nodes on a counting transport and converges them.
func topkCluster(tb testing.TB, n int) (*Cluster, *opCountingTransport) {
	tb.Helper()
	cfg := DefaultConfig()
	cfg.RoundDuration = time.Second
	cfg.KeyTtl = 1 << 20
	cfg.GossipInterval = 10 * time.Millisecond
	ct := &opCountingTransport{Transport: transport.NewMemory()}
	c, err := NewCluster(ct, n, cfg)
	if err != nil {
		tb.Fatal(err)
	}
	if err := c.WaitConverged(5 * time.Second); err != nil {
		c.Close()
		tb.Fatal(err)
	}
	return c, ct
}

// publishDoc makes doc match every one of terms at the given cluster slot.
func publishDoc(tb testing.TB, c *Cluster, slot int, doc uint64, terms []uint64) {
	tb.Helper()
	for _, term := range terms {
		mustPublish(tb, c.Node(slot), term, doc)
	}
}

// The early-termination contract end to end: a warm coordinator answers a
// top-k query with the exact exhaustive-oracle result while issuing
// strictly fewer OpTopK wire legs than the full fan-out, with the saving
// visible both in the Result and at the transport.
func TestTopKEarlyTermination(t *testing.T) {
	c, ct := topkCluster(t, 6)
	defer c.Close()

	terms := []uint64{9001, 9002, 9003, 9004}
	// Two full-score documents, each replicated at two peers; the rest of
	// the cluster holds a partial match only. The oracle's top 2 is
	// therefore {100, 101}, both at the maximum score of 4.
	publishDoc(t, c, 0, 100, terms)
	publishDoc(t, c, 1, 100, terms)
	publishDoc(t, c, 2, 101, terms)
	publishDoc(t, c, 3, 101, terms)
	publishDoc(t, c, 4, 200, terms[:1])
	publishDoc(t, c, 5, 201, terms[:1])

	ctx := context.Background()
	coord := c.Node(0)

	// Warm-up: the first query may drain widely, but it must already be
	// exact — and it seeds the planner's yield history for the real run.
	warm, err := coord.QueryTopK(ctx, terms, 2)
	if err != nil {
		t.Fatal(err)
	}
	assertTopK(t, warm, []topk.Entry{{Doc: 100, Score: 4}, {Doc: 101, Score: 4}})

	ct.topkCalls.Store(0)
	res, err := coord.QueryTopK(ctx, terms, 2)
	if err != nil {
		t.Fatal(err)
	}
	assertTopK(t, res, []topk.Entry{{Doc: 100, Score: 4}, {Doc: 101, Score: 4}})

	exhaustive := int64(c.Size() - 1) // UniformPlan: every member but the coordinator
	if wire := ct.topkCalls.Load(); wire >= exhaustive {
		t.Fatalf("warm top-k paid %d wire legs, want fewer than the %d-leg fan-out", wire, exhaustive)
	}
	if int64(res.Legs) != ct.topkCalls.Load() {
		t.Fatalf("Result.Legs = %d, transport counted %d", res.Legs, ct.topkCalls.Load())
	}
	if !res.Early {
		t.Fatalf("warm top-k did not terminate early: %+v", res)
	}
	if res.Skipped == 0 {
		t.Fatalf("warm top-k probed every peer: %+v", res)
	}

	// The coordinator's own instruments saw both queries.
	if got := coord.m.topkQueries.Value(); got != 2 {
		t.Fatalf("pdht_topk_queries_total = %d, want 2", got)
	}
	if coord.m.topkLegs.Value() == 0 || coord.m.topkRounds.Value() == 0 {
		t.Fatal("topk legs/rounds counters never moved")
	}
	if coord.m.topkEarly.Value() == 0 {
		t.Fatal("pdht_topk_early_term_total never moved")
	}
	if coord.m.topkCandidates.Value() < 2 {
		t.Fatalf("pdht_topk_candidates = %d, want ≥ 2", coord.m.topkCandidates.Value())
	}
}

// Killing a holder of the best document mid-view must not lose the answer:
// the probe to the dead peer fails, the protocol treats it as empty, and
// the replica holding the same content supplies the full-score entry —
// failover inside a round, not an error.
func TestTopKKillPrimaryFailsOverToReplica(t *testing.T) {
	c, _ := topkCluster(t, 5)
	defer c.Close()

	terms := []uint64{7001, 7002, 7003}
	// Doc 100 replicated at slots 1 and 2; everything else partial.
	publishDoc(t, c, 1, 100, terms)
	publishDoc(t, c, 2, 100, terms)
	publishDoc(t, c, 3, 300, terms[:1])
	publishDoc(t, c, 4, 301, terms[:1])

	ctx := context.Background()
	coord := c.Node(0)
	warm, err := coord.QueryTopK(ctx, terms, 1)
	if err != nil {
		t.Fatal(err)
	}
	assertTopK(t, warm, []topk.Entry{{Doc: 100, Score: 3}})

	// Crash one holder without waiting for gossip to evict it: the
	// coordinator's view (and plan) still schedules the dead peer.
	if err := c.Kill(1); err != nil {
		t.Fatal(err)
	}
	res, err := coord.QueryTopK(ctx, terms, 1)
	if err != nil {
		t.Fatal(err)
	}
	assertTopK(t, res, []topk.Entry{{Doc: 100, Score: 3}})
	// The dead peer may or may not have been scheduled before the bound
	// was met; when it was, it must be accounted as failed, not fatal.
	if res.Failed == 0 && res.Skipped == 0 {
		t.Fatalf("dead peer neither failed nor skipped: %+v", res)
	}
}

// An adaptive coordinator's top-k traffic must reach the control plane:
// the query's terms feed the count-min sketch (weighting future plans) and
// the leg count lands in the tuner's top-k window.
func TestQueryTopKFeedsTuner(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RoundDuration = time.Second
	cfg.KeyTtl = 1 << 20
	cfg.Adaptive = true
	nd, err := New(transport.NewMemory(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer nd.Close()

	const term = 6123
	mustPublish(t, nd, term, 42)
	res, err := nd.QueryTopK(context.Background(), []uint64{term}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The query itself feeds the sketch before planning, so the term is
	// already weighted above uniform — the score is the weight, not 1.
	if len(res.Entries) != 1 || res.Entries[0].Doc != 42 || res.Entries[0].Score < 1 {
		t.Fatalf("top-k entries = %+v, want doc 42 at weighted score ≥ 1", res.Entries)
	}
	if nd.tuner.Count(term) == 0 {
		t.Fatal("top-k terms never reached the frequency sketch")
	}
	if w := nd.planner.Weights([]uint64{term}); len(w) != 1 || w[0] <= 1 {
		t.Fatalf("planner weights = %v, want the sketched term above uniform", w)
	}
}

// A non-member RemoteClient coordinates the same protocol over the wire:
// exact answer, every probe a wire leg, yield history learned across
// queries.
func TestRemoteClientQueryTopK(t *testing.T) {
	c, ct := topkCluster(t, 4)
	defer c.Close()

	terms := []uint64{5001, 5002}
	publishDoc(t, c, 0, 100, terms)
	publishDoc(t, c, 1, 100, terms)
	publishDoc(t, c, 2, 400, terms[:1])
	publishDoc(t, c, 3, 401, terms[:1])

	ctx := context.Background()
	cl, err := DialRemote(ctx, ct, RemoteConfig{Seeds: []string{c.Addr(0)}})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	warm, err := cl.QueryTopK(ctx, terms, 1)
	if err != nil {
		t.Fatal(err)
	}
	assertTopK(t, warm, []topk.Entry{{Doc: 100, Score: 2}})

	res, err := cl.QueryTopK(ctx, terms, 1)
	if err != nil {
		t.Fatal(err)
	}
	assertTopK(t, res, []topk.Entry{{Doc: 100, Score: 2}})
	// The client is not a member: no free self-scan, every probe pays.
	if res.Legs != res.Probed {
		t.Fatalf("client-coordinated legs = %d, probed = %d, want equal", res.Legs, res.Probed)
	}
}

// QueryTopK validates its arguments and honors cancellation.
func TestQueryTopKArgumentsAndCancel(t *testing.T) {
	nd, err := New(transport.NewMemory(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer nd.Close()
	ctx := context.Background()
	if _, err := nd.QueryTopK(ctx, []uint64{1}, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := nd.QueryTopK(ctx, nil, 3); err == nil {
		t.Fatal("empty term set accepted")
	}
	canceled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := nd.QueryTopK(canceled, []uint64{1}, 3); err == nil {
		t.Fatal("canceled context accepted")
	}
}

// assertTopK compares a result's entries against the expected oracle list.
func assertTopK(tb testing.TB, res topk.Result, want []topk.Entry) {
	tb.Helper()
	if len(res.Entries) != len(want) {
		tb.Fatalf("top-k entries = %+v, want %+v", res.Entries, want)
	}
	for i := range want {
		if res.Entries[i] != want[i] {
			tb.Fatalf("top-k entries[%d] = %+v, want %+v", i, res.Entries[i], want[i])
		}
	}
}

// BenchmarkQueryTopK prices one coordinated top-k query (k=10 over a
// 6-peer corpus, memory transport, warm planner) — the baseline the
// adaptive planner's savings are measured against.
func BenchmarkQueryTopK(b *testing.B) {
	c, _ := topkCluster(b, 6)
	defer c.Close()

	terms := []uint64{8001, 8002, 8003, 8004}
	for slot := 0; slot < 6; slot++ {
		// Every slot holds a distinct full-score doc, so k=10 merges six
		// candidates and drains the cluster — the no-early-exit worst case.
		publishDoc(b, c, slot, uint64(1000+slot), terms)
	}
	ctx := context.Background()
	coord := c.Node(0)
	if _, err := coord.QueryTopK(ctx, terms, 10); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := coord.QueryTopK(ctx, terms, 10)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Entries) == 0 {
			b.Fatal("benchmark query returned nothing")
		}
	}
}
