package node

import (
	"context"
	"errors"
	"testing"

	"pdht/internal/transport"
)

// fakeMember serves a raw handler that looks like a cluster member to a
// RemoteClient: it answers the bootstrap GossipSync with *table (read at
// call time, so the table can be filled in after the addresses exist) and
// every routed op with the scripted response.
func fakeMember(t *testing.T, tr transport.Transport, table *[]transport.PeerState, routed func(transport.Request) transport.Response) string {
	t.Helper()
	srv, err := tr.Serve("", func(req transport.Request) transport.Response {
		if req.Op == transport.OpGossip {
			return transport.Response{OK: true, Gossip: &transport.Gossip{
				Kind: transport.GossipAck, Full: true, Updates: *table,
			}}
		}
		return routed(req)
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv.Addr()
}

// TestRemoteClientUnrecoverableStaleView pins the ErrStaleView taxonomy: a
// cluster that refuses every routed op as stale WITHOUT attaching its
// membership state leaves the client no way to converge — the query must
// fail typed instead of routing over an untrustworthy member list.
func TestRemoteClientUnrecoverableStaleView(t *testing.T) {
	tr := transport.NewMemory()
	staleNoState := func(req transport.Request) transport.Response {
		return transport.Response{Err: transport.StaleView} // no Gossip attached
	}
	var table []transport.PeerState
	a := fakeMember(t, tr, &table, staleNoState)
	b := fakeMember(t, tr, &table, staleNoState)
	table = []transport.PeerState{{Addr: a}, {Addr: b}}

	cl, err := DialRemote(context.Background(), tr, RemoteConfig{Seeds: []string{a}})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Query(context.Background(), 42); !errors.Is(err, ErrStaleView) {
		t.Fatalf("query against stale-refusing cluster: err = %v, want ErrStaleView", err)
	}
}

// TestRemoteClientStaleRecoveryRetries pins the recoverable half: a
// refusal that attaches fresh membership state installs it, and the retry
// resolves against the updated view.
func TestRemoteClientStaleRecoveryRetries(t *testing.T) {
	tr := transport.NewMemory()
	// The fresh member answers queries; the old one refuses stale but
	// points at the new single-member table.
	var newTable, oldTable []transport.PeerState
	answered := false
	fresh := fakeMember(t, tr, &newTable, func(req transport.Request) transport.Response {
		if req.Op == transport.OpQuery {
			answered = true
			return transport.Response{OK: true, Found: true, Value: 99}
		}
		return transport.Response{OK: true}
	})
	newTable = []transport.PeerState{{Addr: fresh}}
	old := fakeMember(t, tr, &oldTable, func(req transport.Request) transport.Response {
		return transport.Response{Err: transport.StaleView, Gossip: &transport.Gossip{
			Kind: transport.GossipSync, Full: true, Updates: newTable,
		}}
	})
	oldTable = []transport.PeerState{{Addr: old}}

	cl, err := DialRemote(context.Background(), tr, RemoteConfig{Seeds: []string{old}})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	res, err := cl.Query(context.Background(), 42)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Answered || !res.FromIndex || res.Value != 99 || !answered {
		t.Fatalf("post-recovery query = %+v (answered=%v), want index hit 99 at the fresh member", res, answered)
	}
}
