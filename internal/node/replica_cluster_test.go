package node

import (
	"context"
	"strconv"
	"testing"
	"time"

	"pdht/internal/keyspace"
	"pdht/internal/replica"
	"pdht/internal/transport"
)

// replicaConfig is the replication tests' scenario: r=2 replica sets, a
// long TTL so nothing lapses mid-test, and a suspicion window far beyond
// the test's measurement phase — the point is what happens BEFORE the
// membership layer convicts the dead peer and handoff repairs the sets.
func replicaConfig() Config {
	cfg := DefaultConfig()
	cfg.RoundDuration = 50 * time.Millisecond
	cfg.KeyTtl = 200 // 10s of lifetime
	cfg.Repl = 2
	cfg.GossipInterval = 50 * time.Millisecond
	cfg.SuspicionTimeout = 30 * time.Second // the view must NOT converge mid-test
	cfg.SyncInterval = 200 * time.Millisecond
	return cfg
}

// setOf reads a node's current replica set for key: primary first, then
// the keyspace-ranked backups.
func setOf(n *Node, key uint64) replica.Set {
	n.mu.Lock()
	defer n.mu.Unlock()
	rs, _ := n.view.set(n.cfg.Addr, keyspace.Key(key))
	return rs
}

// rawInsert installs key→value directly at one peer with ViewHash 0 (the
// handoff convention), bypassing the replica fan-out — the tests' tool for
// building replica sets with deliberate holes.
func rawInsert(t *testing.T, tr transport.Transport, addr string, key, value uint64, ttl int) {
	t.Helper()
	cl, err := tr.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	resp, err := cl.Call(context.Background(), transport.Request{
		Op: transport.OpInsert, Key: key, Value: value, TTL: ttl,
	})
	if err != nil || resp.Err != "" || !resp.OK {
		t.Fatalf("raw insert at %s: %v / %+v", addr, err, resp)
	}
}

// TestReplicaFailoverServesWithoutBroadcast is the acceptance test of the
// replica subsystem: with r=2, killing the primary of a hot key keeps
// queries answering from the backup at the cost of ONE extra RPC — no
// broadcast leg — and the corpus-wide hit rate holds within 0.1 of its
// pre-kill value, all before the membership layer has converged on the
// death (suspicion is configured far beyond the test's horizon).
func TestReplicaFailoverServesWithoutBroadcast(t *testing.T) {
	cfg := replicaConfig()
	c, err := NewCluster(transport.NewMemory(), 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.WaitConverged(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	keys := make([]uint64, 30)
	for i := range keys {
		keys[i] = uint64(keyspace.HashString("failover:" + strconv.Itoa(i)))
	}
	c.PublishReplicated(keys, 4)
	for _, k := range keys {
		if res := mustQuery(t, c.Node(0), k); !res.Answered {
			t.Fatalf("seeding query for %d unanswered", k)
		}
	}

	// The hot key: primary at a node that is neither the querier (slot 0)
	// nor the querier's address anywhere in the set, so every probe
	// crosses the wire and the RPC arithmetic is exact.
	querier := c.Node(0)
	var hot uint64
	var hotSet replica.Set
	var victim int
	for _, k := range keys {
		rs := setOf(querier, k)
		if rs.Size() == 2 && rs.Primary != querier.Addr() && !rs.Contains(querier.Addr()) {
			for i := 0; i < c.Size(); i++ {
				if c.Addr(i) == rs.Primary {
					hot, hotSet, victim = k, rs, i
				}
			}
			if hot != 0 {
				break
			}
		}
	}
	if hot == 0 {
		t.Fatal("no key found with a fully remote r=2 set")
	}

	// Pre-kill baseline: a hit at the primary, at hops index messages.
	base := mustQuery(t, querier, hot)
	if !base.FromIndex || base.AnsweredBy != hotSet.Primary {
		t.Fatalf("pre-kill query = %+v, want a hit at primary %s", base, hotSet.Primary)
	}

	preVersion := querier.ViewVersion()
	if err := c.Kill(victim); err != nil {
		t.Fatal(err)
	}

	// The failover: an index hit from the backup, exactly one RPC more
	// than the baseline, and no broadcast.
	res := mustQuery(t, querier, hot)
	if !res.FromIndex {
		t.Fatalf("post-kill query = %+v, want an index hit from the backup", res)
	}
	if res.AnsweredBy != hotSet.Backups[0] {
		t.Fatalf("answered by %s, want backup %s", res.AnsweredBy, hotSet.Backups[0])
	}
	if res.BroadcastMsgs != 0 {
		t.Fatalf("failover paid %d broadcast messages, want none", res.BroadcastMsgs)
	}
	if res.IndexMsgs != base.IndexMsgs+1 {
		t.Fatalf("failover cost %d index messages vs baseline %d, want exactly one extra",
			res.IndexMsgs, base.IndexMsgs)
	}

	// Corpus-wide availability: every key still answers from the index,
	// so the hit rate holds within 0.1 of the (perfect) pre-kill value.
	hits := 0
	for _, k := range keys {
		r := mustQuery(t, querier, k)
		if !r.Answered {
			t.Fatalf("key %d unanswered after the kill", k)
		}
		if r.FromIndex {
			hits++
		}
	}
	if rate := float64(hits) / float64(len(keys)); rate < 0.9 {
		t.Fatalf("post-kill hit rate %.2f dipped more than 0.1 below the pre-kill 1.0", rate)
	}
	// All of it happened on the pre-kill view: the membership layer never
	// convicted the victim during the measurement.
	if v := querier.ViewVersion(); v != preVersion {
		t.Fatalf("view moved from v%d to v%d mid-test; the suspicion window is mis-sized", preVersion, v)
	}
	if got := len(querier.Members()); got != 4 {
		t.Fatalf("querier sees %d members, want the full pre-kill 4", got)
	}
}

// TestReadRepairHealsPrimary drives the read-repair path: a key that lives
// only at its backup (a hole at the primary, as churn or a lost write leg
// would leave) is queried, answers from the backup, and the hit re-inserts
// it at the primary — the next query hits the primary again.
func TestReadRepairHealsPrimary(t *testing.T) {
	cfg := replicaConfig()
	tr := transport.NewMemory()
	c, err := NewCluster(tr, 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.WaitConverged(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	querier := c.Node(0)
	var key uint64
	var rs replica.Set
	for i := 0; ; i++ {
		if i > 1000 {
			t.Fatal("no key found with a fully remote r=2 set")
		}
		k := uint64(keyspace.HashString("readrepair:" + strconv.Itoa(i)))
		if s := setOf(querier, k); s.Size() == 2 && !s.Contains(querier.Addr()) {
			key, rs = k, s
			break
		}
	}

	// Build the hole: the entry exists only at the backup.
	rawInsert(t, tr, rs.Backups[0], key, 77, cfg.KeyTtl)

	res := mustQuery(t, querier, key)
	if !res.FromIndex || res.AnsweredBy != rs.Backups[0] {
		t.Fatalf("query = %+v, want a failover hit at backup %s", res, rs.Backups[0])
	}
	if res.RepairMsgs != 1 {
		t.Fatalf("hit sent %d repair messages, want exactly 1 (the primary)", res.RepairMsgs)
	}
	if res.RefreshMsgs != 2 {
		t.Fatalf("hit fanned %d refresh legs, want 2 (both set members)", res.RefreshMsgs)
	}

	// The primary holds the entry again, and the next query hits it.
	var primaryNode *Node
	for i := 0; i < c.Size(); i++ {
		if c.Addr(i) == rs.Primary {
			primaryNode = c.Node(i)
		}
	}
	if _, ok := remainingTTL(primaryNode, key); !ok {
		t.Fatal("read repair did not re-insert the entry at the primary")
	}
	if res := mustQuery(t, querier, key); res.AnsweredBy != rs.Primary {
		t.Fatalf("post-repair query answered by %s, want the healed primary %s", res.AnsweredBy, rs.Primary)
	}
}

// TestBatchRefreshFanoutRepairsBackups drives the batched counterpart: a
// QueryMany hit at the primary fans the reset-on-hit refresh to the backup
// in an OpBatch, discovers the backup never got the entry, and re-inserts
// it there — so the set is whole again and a primary death after the batch
// still leaves the key served.
func TestBatchRefreshFanoutRepairsBackups(t *testing.T) {
	cfg := replicaConfig()
	tr := transport.NewMemory()
	c, err := NewCluster(tr, 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.WaitConverged(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	querier := c.Node(0)
	var key uint64
	var rs replica.Set
	for i := 0; ; i++ {
		if i > 1000 {
			t.Fatal("no key found with a fully remote r=2 set")
		}
		k := uint64(keyspace.HashString("batchrepair:" + strconv.Itoa(i)))
		if s := setOf(querier, k); s.Size() == 2 && !s.Contains(querier.Addr()) {
			key, rs = k, s
			break
		}
	}

	// The entry exists only at the primary: the batch leg will hit there,
	// and the backup's refresh must come back "not held".
	rawInsert(t, tr, rs.Primary, key, 88, cfg.KeyTtl)

	results, err := querier.QueryMany(context.Background(), []uint64{key})
	if err != nil {
		t.Fatal(err)
	}
	res := results[0]
	if !res.FromIndex || res.AnsweredBy != rs.Primary {
		t.Fatalf("batch query = %+v, want a hit at primary %s", res, rs.Primary)
	}
	if res.RefreshMsgs != 1 || res.RepairMsgs != 1 {
		t.Fatalf("batch hit fanned refresh=%d repair=%d, want 1 and 1 (the backup)", res.RefreshMsgs, res.RepairMsgs)
	}

	var backupNode *Node
	for i := 0; i < c.Size(); i++ {
		if c.Addr(i) == rs.Backups[0] {
			backupNode = c.Node(i)
		}
	}
	if _, ok := remainingTTL(backupNode, key); !ok {
		t.Fatal("batched read repair did not install the entry at the backup")
	}

	// The repaired backup carries the set through a primary death.
	for i := 0; i < c.Size(); i++ {
		if c.Addr(i) == rs.Primary {
			if err := c.Kill(i); err != nil {
				t.Fatal(err)
			}
		}
	}
	if res := mustQuery(t, querier, key); !res.FromIndex || res.AnsweredBy != rs.Backups[0] {
		t.Fatalf("post-kill query = %+v, want the repaired backup %s to answer", res, rs.Backups[0])
	}
}
