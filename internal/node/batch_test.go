package node

import (
	"context"
	"errors"
	"strconv"
	"sync"
	"testing"
	"time"

	"pdht/internal/keyspace"
	"pdht/internal/transport"
)

// countingTransport wraps a transport and tallies outbound calls by
// destination and op — the instrument behind the one-request-per-peer
// assertion.
type countingTransport struct {
	inner transport.Transport

	mu    sync.Mutex
	calls map[string]map[transport.Op]int
}

func newCountingTransport(inner transport.Transport) *countingTransport {
	return &countingTransport{inner: inner, calls: make(map[string]map[transport.Op]int)}
}

func (t *countingTransport) Serve(addr string, h transport.Handler) (transport.Server, error) {
	return t.inner.Serve(addr, h)
}

func (t *countingTransport) Dial(addr string) (transport.Client, error) {
	c, err := t.inner.Dial(addr)
	if err != nil {
		return nil, err
	}
	return &countingClient{t: t, addr: addr, inner: c}, nil
}

func (t *countingTransport) count(addr string, op transport.Op) {
	t.mu.Lock()
	defer t.mu.Unlock()
	m := t.calls[addr]
	if m == nil {
		m = make(map[transport.Op]int)
		t.calls[addr] = m
	}
	m[op]++
}

// snapshot returns the tallies and resets them.
func (t *countingTransport) snapshot() map[string]map[transport.Op]int {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := t.calls
	t.calls = make(map[string]map[transport.Op]int)
	return out
}

type countingClient struct {
	t     *countingTransport
	addr  string
	inner transport.Client
}

func (c *countingClient) Call(ctx context.Context, req transport.Request) (transport.Response, error) {
	c.t.count(c.addr, req.Op)
	return c.inner.Call(ctx, req)
}

func (c *countingClient) Close() error { return c.inner.Close() }

// blackholeTransport wraps a transport; calls to the victim address hang
// until the caller's context expires — a SYN-blackholed peer.
type blackholeTransport struct {
	inner  transport.Transport
	victim string
}

func (t *blackholeTransport) Serve(addr string, h transport.Handler) (transport.Server, error) {
	return t.inner.Serve(addr, h)
}

func (t *blackholeTransport) Dial(addr string) (transport.Client, error) {
	if addr == t.victim {
		return blackholeClient{}, nil
	}
	return t.inner.Dial(addr)
}

type blackholeClient struct{}

func (blackholeClient) Call(ctx context.Context, req transport.Request) (transport.Response, error) {
	<-ctx.Done()
	return transport.Response{}, ctx.Err()
}

func (blackholeClient) Close() error { return nil }

// bootWithTransport builds a cluster where the node under test speaks
// through its own (wrapped) transport while the rest share the plain
// memory network. Returns the instrumented node and the full peer set.
func bootWithTransport(t *testing.T, mem *transport.Memory, nutTr transport.Transport, peers int, cfg Config) (nut *Node, others []*Node) {
	t.Helper()
	seedCfg := cfg
	seedCfg.Seed = ""
	seed, err := New(mem, seedCfg)
	if err != nil {
		t.Fatal(err)
	}
	others = []*Node{seed}
	cfg.Seed = seed.Addr()
	for i := 1; i < peers; i++ {
		nd, err := New(mem, cfg)
		if err != nil {
			t.Fatal(err)
		}
		others = append(others, nd)
	}
	nut, err = New(nutTr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	all := append(append([]*Node(nil), others...), nut)
	waitFor(t, 5*time.Second, func() bool {
		for _, nd := range all {
			if len(nd.Members()) != peers+1 {
				return false
			}
		}
		return true
	}, "full membership")
	return nut, others
}

// TestQueryManyOneRequestPerDestination is the batching acceptance
// criterion: a 32-key warm batch issues exactly one OpBatch request per
// destination peer — no unary index probes, no refresh messages, no
// broadcasts.
func TestQueryManyOneRequestPerDestination(t *testing.T) {
	mem := transport.NewMemory()
	ct := newCountingTransport(mem)
	nut, others := bootWithTransport(t, mem, ct, 3, testConfig())
	defer nut.Close()
	for _, nd := range others {
		defer nd.Close()
	}

	keys := make([]uint64, 32)
	ctx := context.Background()
	for i := range keys {
		keys[i] = uint64(keyspace.HashString("batch-accept:" + strconv.Itoa(i)))
		mustPublish(t, others[i%len(others)], keys[i], uint64(i))
	}
	// Warm the index: every key resolves by broadcast and is inserted at
	// its replica group.
	warm, err := nut.QueryMany(ctx, keys)
	if err != nil {
		t.Fatal(err)
	}
	for i := range warm {
		if !warm[i].Answered {
			t.Fatalf("warm-up key %d unanswered", keys[i])
		}
	}

	ct.snapshot() // discard warm-up and membership traffic
	results, err := nut.QueryMany(ctx, keys)
	if err != nil {
		t.Fatal(err)
	}
	destinations := make(map[string]bool)
	for i := range results {
		if !results[i].FromIndex {
			t.Fatalf("warm key %d = %+v, want index hit", keys[i], results[i])
		}
		if results[i].Responsible != nut.Addr() {
			destinations[results[i].Responsible] = true
		}
	}
	if len(destinations) == 0 {
		t.Fatal("every key landed on the caller; the assertion is vacuous")
	}
	// Every destination sees only OpBatch traffic: one query round trip
	// (the grouping under test), plus at most one batched reset-on-hit
	// refresh round trip for the keys it backs up — the replica-coherence
	// traffic rides OpBatch too, never unary RPCs. The warm-up wrote every
	// replica, so no read-repair batch follows.
	calls := ct.snapshot()
	for addr, ops := range calls {
		for op, n := range ops {
			if op == transport.OpGossip {
				continue // background membership traffic is not the query path
			}
			if op != transport.OpBatch {
				t.Fatalf("destination %s saw %d %v requests, want OpBatch only", addr, n, op)
			}
			if n > 2 {
				t.Fatalf("destination %s saw %d OpBatch requests, want 1 query + at most 1 refresh", addr, n)
			}
		}
	}
	for addr := range destinations {
		if n := calls[addr][transport.OpBatch]; n < 1 || n > 2 {
			t.Fatalf("destination %s saw %d OpBatch requests, want 1 query + at most 1 refresh", addr, n)
		}
	}
}

// TestQueryManyPartialResults drives the per-key contract: in one batch, a
// warm key hits the index, a published-but-unindexed key falls back to the
// broadcast, and an unpublished key comes back unanswered — with no error
// and no cross-contamination.
func TestQueryManyPartialResults(t *testing.T) {
	c, err := NewCluster(transport.NewMemory(), 3, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	const warmKey, coldKey, ghostKey = 1111, 2222, 3333
	mustPublish(t, c.Node(1), warmKey, 10)
	mustPublish(t, c.Node(2), coldKey, 20)
	if res := mustQuery(t, c.Node(0), warmKey); !res.Answered {
		t.Fatal("warm-up query unanswered")
	}

	results, err := c.Node(0).QueryMany(ctx, []uint64{warmKey, coldKey, ghostKey})
	if err != nil {
		t.Fatal(err)
	}
	if !results[0].Answered || !results[0].FromIndex || results[0].Value != 10 {
		t.Fatalf("warm key = %+v, want index hit 10", results[0])
	}
	if !results[1].Answered || results[1].FromIndex || results[1].Value != 20 {
		t.Fatalf("cold key = %+v, want broadcast answer 20", results[1])
	}
	if results[2].Answered {
		t.Fatalf("ghost key = %+v, want unanswered", results[2])
	}

	// The fallback's insert leg must have indexed the cold key: a repeat
	// batch serves both real keys from the index.
	again, err := c.Node(0).QueryMany(ctx, []uint64{warmKey, coldKey})
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range again {
		if !res.FromIndex {
			t.Fatalf("repeat batch key %d = %+v, want index hit", i, res)
		}
	}
}

// TestQueryManyFeedsTuner asserts the control plane sees the true stream:
// a 32-key batch lands as 32 individual observations, not one.
func TestQueryManyFeedsTuner(t *testing.T) {
	cfg := testConfig()
	cfg.Adaptive = true
	nd, err := New(transport.NewMemory(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer nd.Close()
	keys := make([]uint64, 32)
	for i := range keys {
		keys[i] = uint64(i + 1)
	}
	if _, err := nd.QueryMany(context.Background(), keys); err != nil {
		t.Fatal(err)
	}
	if got := nd.Tuner().Snapshot().Observed; got != 32 {
		t.Fatalf("tuner observed %d queries for a 32-key batch, want 32", got)
	}
}

// TestQueryCancellationAbortsBroadcast is the cancellation acceptance
// criterion: with one member blackholed, a query for an unresolvable key
// blocks in the broadcast leg; cancelling the context aborts the in-flight
// legs and surfaces context.Canceled, a deadline surfaces ErrTimeout (and
// errors.Is(…, context.DeadlineExceeded) still holds). Both must return
// long before CallTimeout.
func TestQueryCancellationAbortsBroadcast(t *testing.T) {
	mem := transport.NewMemory()
	cfg := testConfig()
	cfg.CallTimeout = 30 * time.Second    // the caller's ctx must win, not this
	cfg.GossipInterval = 10 * time.Minute // no probing: the blackhole must stay in the view
	cfg.SuspicionTimeout = time.Hour
	cfg.SyncInterval = time.Hour

	seed, err := New(mem, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer seed.Close()
	joinCfg := cfg
	joinCfg.Seed = seed.Addr()
	victim, err := New(mem, joinCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer victim.Close()
	nut, err := New(&blackholeTransport{inner: mem, victim: victim.Addr()}, joinCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer nut.Close()
	waitFor(t, 5*time.Second, func() bool { return len(nut.Members()) == 3 }, "membership at the node under test")

	t.Run("cancel", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(30 * time.Millisecond)
			cancel()
		}()
		start := time.Now()
		_, err := nut.Query(ctx, 987654) // published nowhere
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled query: err = %v, want context.Canceled", err)
		}
		if waited := time.Since(start); waited > 5*time.Second {
			t.Fatalf("cancelled query returned after %v; in-flight legs were not aborted", waited)
		}
	})

	t.Run("deadline", func(t *testing.T) {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
		defer cancel()
		start := time.Now()
		_, err := nut.Query(ctx, 987655)
		if !errors.Is(err, ErrTimeout) {
			t.Fatalf("expired query: err = %v, want ErrTimeout", err)
		}
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("ErrTimeout must wrap context.DeadlineExceeded, got %v", err)
		}
		if waited := time.Since(start); waited > 5*time.Second {
			t.Fatalf("expired query returned after %v; in-flight legs were not aborted", waited)
		}
	})

	t.Run("batch", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(30 * time.Millisecond)
			cancel()
		}()
		_, err := nut.QueryMany(ctx, []uint64{987656, 987657})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled batch: err = %v, want context.Canceled", err)
		}
	})
}

// TestQueryAfterCloseFailsTyped pins the error taxonomy on the lifecycle
// edge: a closed node refuses queries and publishes with ErrClosed.
func TestQueryAfterCloseFailsTyped(t *testing.T) {
	nd, err := New(transport.NewMemory(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	nd.Close()
	if _, err := nd.Query(context.Background(), 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("Query after Close: err = %v, want ErrClosed", err)
	}
	if err := nd.Publish(context.Background(), 1, 2); !errors.Is(err, ErrClosed) {
		t.Fatalf("Publish after Close: err = %v, want ErrClosed", err)
	}
	if _, err := nd.QueryMany(context.Background(), []uint64{1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("QueryMany after Close: err = %v, want ErrClosed", err)
	}
}
