package node

import (
	"context"
	"testing"
)

// mustQuery is the test shorthand for the context-first Query API: a
// background context and a hard failure on typed errors (closed node,
// timeout), which no happy-path test expects.
func mustQuery(tb testing.TB, n *Node, key uint64) QueryResult {
	tb.Helper()
	res, err := n.Query(context.Background(), key)
	if err != nil {
		tb.Fatalf("Query(%d): %v", key, err)
	}
	return res
}

// mustPublish installs key→value in n's content store, failing the test on
// a typed error.
func mustPublish(tb testing.TB, n *Node, key, value uint64) {
	tb.Helper()
	if err := n.Publish(context.Background(), key, value); err != nil {
		tb.Fatalf("Publish(%d): %v", key, err)
	}
}
