package dht

import (
	"testing"

	"pdht/internal/keyspace"
	"pdht/internal/netsim"
	"pdht/internal/stats"
)

func TestRingJoin(t *testing.T) {
	ring, net, rng := newTestRing(t, 600, 256, RingConfig{Repl: 8, Env: 0.2}, 50)
	before := net.Counters().Get(stats.MsgControl)
	joiner := netsim.PeerID(300)
	if err := ring.Join(joiner, rng); err != nil {
		t.Fatal(err)
	}
	if !ring.Member(joiner) {
		t.Fatal("joiner not a member")
	}
	if net.Counters().Get(stats.MsgControl) == before {
		t.Error("join was free")
	}
	if got := len(ring.byID[joiner]); got != 4 { // default vnodes
		t.Errorf("joiner has %d vnodes, want 4", got)
	}
	// Ring order still sorted after the splices.
	for i := 1; i < len(ring.state); i++ {
		if ring.state[i-1].pos >= ring.state[i].pos {
			t.Fatal("ring order broken by join")
		}
	}
	// The joiner routes and is routable.
	for i := 0; i < 100; i++ {
		key := keyspace.Key(rng.Uint64())
		if res := ring.Route(joiner, key, rng); !res.OK {
			t.Fatalf("joiner's lookup failed")
		}
	}
}

func TestRingJoinDuplicateRejected(t *testing.T) {
	ring, _, rng := newTestRing(t, 100, 64, RingConfig{Repl: 4, Env: 0.1}, 51)
	if err := ring.Join(0, rng); err == nil {
		t.Error("joining twice succeeded")
	}
}

func TestRingLeave(t *testing.T) {
	ring, _, rng := newTestRing(t, 256, 256, RingConfig{Repl: 8, Env: 0.2}, 52)
	leaver := netsim.PeerID(77)
	if err := ring.Leave(leaver); err != nil {
		t.Fatal(err)
	}
	if ring.Member(leaver) {
		t.Fatal("leaver still a member")
	}
	if len(ring.ActivePeers()) != 255 {
		t.Errorf("active = %d", len(ring.ActivePeers()))
	}
	// No vnode of the leaver survives, and routing never lands on it.
	for _, vn := range ring.state {
		if vn.peer == leaver {
			t.Fatal("leaver's vnode survived")
		}
	}
	for i := 0; i < 200; i++ {
		key := keyspace.Key(rng.Uint64())
		from, _ := ring.net.RandomOnline(rng)
		res := ring.Route(from, key, rng)
		if !res.OK {
			t.Fatal("lookup failed after leave")
		}
		if res.Responsible == leaver {
			t.Fatal("routed to the departed peer")
		}
	}
}

func TestRingLeaveGuards(t *testing.T) {
	ring, _, _ := newTestRing(t, 10, 1, RingConfig{Repl: 1, Env: 0.1}, 53)
	if err := ring.Leave(5); err == nil {
		t.Error("leaving without membership succeeded")
	}
	if err := ring.Leave(0); err == nil {
		t.Error("the last member left the ring")
	}
}

func TestRingMaintenanceCollectsDepartures(t *testing.T) {
	ring, _, rng := newTestRing(t, 256, 256, RingConfig{Repl: 8, Env: 1.0}, 54)
	for i := 0; i < 25; i++ {
		if err := ring.Leave(netsim.PeerID(i * 10)); err != nil {
			t.Fatal(err)
		}
	}
	ms := ring.Maintain(rng)
	if ms.Stale == 0 {
		t.Fatal("no stale fingers found after mass departure")
	}
	if ms.Repaired < ms.Stale*8/10 {
		t.Errorf("repaired %d of %d", ms.Repaired, ms.Stale)
	}
	ms2 := ring.Maintain(rng)
	if ms2.Stale > ms.Stale/5 {
		t.Errorf("second pass still found %d stale fingers", ms2.Stale)
	}
}

func TestRingMembershipCycle(t *testing.T) {
	ring, _, rng := newTestRing(t, 512, 256, RingConfig{Repl: 8, Env: 0.2}, 55)
	for i := 0; i < 64; i++ {
		if err := ring.Leave(netsim.PeerID(i)); err != nil {
			t.Fatal(err)
		}
		if err := ring.Join(netsim.PeerID(256+i), rng); err != nil {
			t.Fatal(err)
		}
		if i%8 == 0 {
			ring.Maintain(rng)
			from, _ := ring.net.RandomOnline(rng)
			// Skip non-member origins — they enter via a random
			// member anyway.
			if res := ring.Route(from, keyspace.Key(rng.Uint64()), rng); !res.OK {
				t.Fatalf("routing broke after %d membership changes", 2*i)
			}
		}
	}
	if len(ring.ActivePeers()) != 256 {
		t.Errorf("active = %d", len(ring.ActivePeers()))
	}
}

func TestRingShrinksBelowRepl(t *testing.T) {
	ring, _, _ := newTestRing(t, 10, 5, RingConfig{Repl: 4, Env: 0.1}, 56)
	// Shrink to 2 peers: groups degrade to 2 distinct members.
	for _, p := range []netsim.PeerID{0, 1, 2} {
		if err := ring.Leave(p); err != nil {
			t.Fatal(err)
		}
	}
	group := ring.ReplicaGroup(keyspace.HashString("k"))
	if len(group) != 2 {
		t.Errorf("group size %d after shrink, want 2", len(group))
	}
}
