package dht

import (
	"math/rand/v2"
	"testing"

	"pdht/internal/keyspace"
	"pdht/internal/netsim"
	"pdht/internal/stats"
)

var _ Index = (*Kademlia)(nil)

func newTestKademlia(t *testing.T, nNet, nActive int, cfg KademliaConfig, seed uint64) (*Kademlia, *netsim.Network, *rand.Rand) {
	t.Helper()
	net := netsim.New(nNet)
	rng := rand.New(rand.NewPCG(seed, seed^0xcafe))
	kad, err := NewKademlia(net, activeRange(nActive), cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	return kad, net, rng
}

func TestKademliaConfigValidation(t *testing.T) {
	net := netsim.New(10)
	rng := rand.New(rand.NewPCG(1, 2))
	cases := []struct {
		active []netsim.PeerID
		cfg    KademliaConfig
	}{
		{activeRange(10), KademliaConfig{K: 0}},
		{activeRange(10), KademliaConfig{K: 11}},
		{nil, KademliaConfig{K: 1}},
		{activeRange(10), KademliaConfig{K: 2, Alpha: -1}},
		{activeRange(10), KademliaConfig{K: 2, Env: 1.5}},
	}
	for i, c := range cases {
		if _, err := NewKademlia(net, c.active, c.cfg, rng); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestKademliaReplicaGroupIsXORClosest(t *testing.T) {
	kad, _, rng := newTestKademlia(t, 256, 256, KademliaConfig{K: 8, Env: 0.1}, 1)
	for i := 0; i < 50; i++ {
		key := keyspace.Key(rng.Uint64())
		group := kad.ReplicaGroup(key)
		if len(group) != 8 {
			t.Fatalf("group size %d", len(group))
		}
		// Every non-member must be at least as far as the farthest
		// member.
		var maxD uint64
		inGroup := make(map[netsim.PeerID]bool)
		for _, p := range group {
			inGroup[p] = true
			if d := kadNodeKey(p) ^ uint64(key); d > maxD {
				maxD = d
			}
		}
		for _, p := range kad.ActivePeers() {
			if inGroup[p] {
				continue
			}
			if d := kadNodeKey(p) ^ uint64(key); d < maxD {
				t.Fatalf("peer %d closer than a group member", p)
			}
		}
	}
}

func TestKademliaRouteNoChurn(t *testing.T) {
	kad, net, rng := newTestKademlia(t, 1024, 1024, KademliaConfig{K: 16, Env: 0.1}, 2)
	var hops int
	const lookups = 300
	for i := 0; i < lookups; i++ {
		from := netsim.PeerID(rng.IntN(1024))
		key := keyspace.Key(rng.Uint64())
		res := kad.Route(from, key, rng)
		if !res.OK {
			t.Fatalf("lookup %d failed without churn", i)
		}
		found := false
		for _, p := range kad.ReplicaGroup(key) {
			if p == res.Responsible {
				found = true
			}
		}
		if !found {
			t.Fatal("terminated outside the replica group")
		}
		hops += res.Hops
	}
	mean := float64(hops) / lookups
	// Iterative Kademlia contacts O(log n) peers; with K=16 buckets the
	// constant is small.
	if mean < 1 || mean > 10 {
		t.Errorf("mean contacted peers = %v, want a few", mean)
	}
	if net.Counters().Get(stats.MsgIndexLookup) != int64(hops) {
		t.Error("lookup counter mismatch")
	}
}

func TestKademliaRouteFromOutsider(t *testing.T) {
	kad, _, rng := newTestKademlia(t, 600, 512, KademliaConfig{K: 8, Env: 0.1}, 3)
	res := kad.Route(netsim.PeerID(550), keyspace.Key(rng.Uint64()), rng)
	if !res.OK {
		t.Fatal("outsider lookup failed")
	}
	if res.Hops < 1 {
		t.Error("outsider lookup cannot be free")
	}
}

func TestKademliaRouteUnderChurn(t *testing.T) {
	kad, net, rng := newTestKademlia(t, 1024, 1024, KademliaConfig{K: 16, Env: 0.1}, 4)
	for i := 0; i < 1024; i++ {
		if rng.Float64() < 0.3 {
			net.SetOnline(netsim.PeerID(i), false)
		}
	}
	ok := 0
	const lookups = 300
	for i := 0; i < lookups; i++ {
		from, found := net.RandomOnline(rng)
		if !found {
			t.Fatal("network died")
		}
		res := kad.Route(from, keyspace.Key(rng.Uint64()), rng)
		if res.OK {
			if !net.Online(res.Responsible) {
				t.Fatal("terminated at an offline peer")
			}
			ok++
		}
	}
	if ok < lookups*90/100 {
		t.Errorf("only %d/%d lookups succeeded under churn", ok, lookups)
	}
}

func TestKademliaRouteAllOffline(t *testing.T) {
	kad, net, rng := newTestKademlia(t, 64, 64, KademliaConfig{K: 4, Env: 0.1}, 5)
	for i := 0; i < 64; i++ {
		net.SetOnline(netsim.PeerID(i), false)
	}
	if res := kad.Route(0, keyspace.HashString("k"), rng); res.OK {
		t.Error("route succeeded on a dead network")
	}
}

func TestKademliaMaintenance(t *testing.T) {
	kad, net, rng := newTestKademlia(t, 512, 512, KademliaConfig{K: 8, Env: 1.0}, 6)
	for i := 0; i < 512; i++ {
		if rng.Float64() < 0.2 {
			net.SetOnline(netsim.PeerID(i), false)
		}
	}
	ms := kad.Maintain(rng)
	if ms.Probes == 0 || ms.Stale == 0 {
		t.Fatalf("maintenance found nothing: %+v", ms)
	}
	if ms.Repaired < ms.Stale*9/10 {
		t.Errorf("repaired %d of %d", ms.Repaired, ms.Stale)
	}
	ms2 := kad.Maintain(rng)
	if ms2.Stale > ms.Stale/10 {
		t.Errorf("second pass still found %d stale contacts", ms2.Stale)
	}
	if got := net.Counters().Get(stats.MsgMaintenance); got != int64(ms.Probes+ms2.Probes) {
		t.Error("maintenance counter mismatch")
	}
}

func TestKademliaRoutingEntriesBounded(t *testing.T) {
	kad, _, _ := newTestKademlia(t, 256, 256, KademliaConfig{K: 8, Env: 0.1}, 7)
	// Buckets hold at most K contacts each; with 256 peers only ~8
	// buckets are populated, so entries/peer is a small multiple of K.
	perPeer := float64(kad.RoutingEntries()) / 256
	if perPeer < 8 || perPeer > 8*10 {
		t.Errorf("entries per peer = %v", perPeer)
	}
	if !kad.Member(0) || kad.Member(999) {
		t.Error("membership wrong")
	}
}

func TestKademliaJoinLeave(t *testing.T) {
	kad, net, rng := newTestKademlia(t, 600, 512, KademliaConfig{K: 8, Env: 1.0}, 8)
	joiner := netsim.PeerID(550)
	before := net.Counters().Get(stats.MsgControl)
	if err := kad.Join(joiner, rng); err != nil {
		t.Fatal(err)
	}
	if net.Counters().Get(stats.MsgControl)-before != 8 {
		t.Error("join should cost K messages")
	}
	if err := kad.Join(joiner, rng); err == nil {
		t.Error("duplicate join accepted")
	}
	// The joiner routes and appears in replica groups near its node ID.
	for i := 0; i < 50; i++ {
		if res := kad.Route(joiner, keyspace.Key(rng.Uint64()), rng); !res.OK {
			t.Fatal("joiner's lookup failed")
		}
	}
	group := kad.ReplicaGroup(keyspace.Key(kadNodeKey(joiner)))
	found := false
	for _, p := range group {
		if p == joiner {
			found = true
		}
	}
	if !found {
		t.Error("joiner absent from its own neighborhood")
	}

	// Leave and verify routing still works and maintenance collects the
	// stale contacts.
	if err := kad.Leave(joiner); err != nil {
		t.Fatal(err)
	}
	if kad.Member(joiner) {
		t.Fatal("leaver still a member")
	}
	if err := kad.Leave(joiner); err == nil {
		t.Error("double leave accepted")
	}
	ms := kad.Maintain(rng)
	if ms.Stale == 0 {
		t.Error("maintenance found no stale contacts after departure")
	}
	for i := 0; i < 100; i++ {
		from, _ := net.RandomOnline(rng)
		res := kad.Route(from, keyspace.Key(rng.Uint64()), rng)
		if !res.OK {
			t.Fatal("lookup failed after leave")
		}
		if res.Responsible == joiner {
			t.Fatal("routed to the departed peer")
		}
	}
}

func TestKademliaLastMemberCannotLeave(t *testing.T) {
	kad, _, _ := newTestKademlia(t, 4, 1, KademliaConfig{K: 1, Env: 0.1}, 9)
	if err := kad.Leave(0); err == nil {
		t.Error("last member left")
	}
}

func TestBucketOf(t *testing.T) {
	if bucketOf(1) != 0 {
		t.Errorf("bucketOf(1) = %d", bucketOf(1))
	}
	if bucketOf(0x8000000000000000) != 63 {
		t.Errorf("bucketOf(msb) = %d", bucketOf(0x8000000000000000))
	}
	if bucketOf(0b1010) != 3 {
		t.Errorf("bucketOf(10) = %d", bucketOf(0b1010))
	}
}
