package dht

import (
	"fmt"
	"math/rand/v2"

	"pdht/internal/netsim"
	"pdht/internal/stats"
)

// Dynamic trie membership: peers joining and leaving the DHT outright, as
// opposed to the liveness churn that Maintain copes with. In P-Grid a
// newcomer bootstraps off an existing peer and adopts (a refinement of) its
// path; here the trie shape is fixed — leaves were provisioned from the
// expected index size, per the paper's numActivePeers — so a joiner adopts
// the path of the least-populated leaf, which keeps replica groups
// balanced. Leaving is crash-style: no goodbye messages; the departed
// peer's entries in other routing tables go stale and are collected by the
// probing maintenance like any churn casualty.

// Join adds peer p to the trie. It costs Depth() messages of class
// stats.MsgControl: one pairwise exchange per trie level to fill the
// routing table, following P-Grid's bootstrap. Fails if p is already a
// member.
func (t *Trie) Join(p netsim.PeerID, rng *rand.Rand) error {
	if _, member := t.peers[p]; member {
		return fmt.Errorf("dht: peer %d is already a trie member", p)
	}
	// Adopt the path of the emptiest leaf.
	leaf := 0
	for l := 1; l < len(t.leaves); l++ {
		if len(t.leaves[l]) < len(t.leaves[leaf]) {
			leaf = l
		}
	}
	t.leaves[leaf] = append(t.leaves[leaf], p)
	t.peers[p] = len(t.state)
	t.state = append(t.state, triePeer{id: p, leaf: leaf})
	t.active = append(t.active, p)
	t.buildTable(&t.state[len(t.state)-1], rng)
	t.net.Send(stats.MsgControl, int64(t.depth))
	return nil
}

// Leave removes peer p from the trie permanently. Crash semantics: no
// messages are sent; stale references to p elsewhere are repaired by
// Maintain. Fails if p is not a member. Removing the last member of a leaf
// is allowed but leaves that key range unroutable until someone joins —
// the caller (or a replication controller, which the paper cites as
// [VaCh02] and scopes out) is responsible for not draining leaves.
func (t *Trie) Leave(p netsim.PeerID) error {
	idx, member := t.peers[p]
	if !member {
		return fmt.Errorf("dht: peer %d is not a trie member", p)
	}
	leaf := t.state[idx].leaf

	// Remove from the leaf membership (order not significant).
	members := t.leaves[leaf]
	for i, m := range members {
		if m == p {
			members[i] = members[len(members)-1]
			t.leaves[leaf] = members[:len(members)-1]
			break
		}
	}

	// Remove from the active list.
	for i, m := range t.active {
		if m == p {
			t.active[i] = t.active[len(t.active)-1]
			t.active = t.active[:len(t.active)-1]
			break
		}
	}

	// Swap-remove from state, fixing the moved peer's index.
	last := len(t.state) - 1
	if idx != last {
		t.state[idx] = t.state[last]
		t.peers[t.state[idx].id] = idx
	}
	t.state = t.state[:last]
	delete(t.peers, p)
	return nil
}

// Member reports whether p currently participates in the trie.
func (t *Trie) Member(p netsim.PeerID) bool {
	_, ok := t.peers[p]
	return ok
}

// LeafSizes returns the current membership count of every leaf, for
// balance checks and capacity planning.
func (t *Trie) LeafSizes() []int {
	out := make([]int, len(t.leaves))
	for i, members := range t.leaves {
		out[i] = len(members)
	}
	return out
}
