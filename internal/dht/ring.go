package dht

import (
	"fmt"
	"math/bits"
	"math/rand/v2"
	"sort"

	"pdht/internal/keyspace"
	"pdht/internal/netsim"
	"pdht/internal/stats"
)

// RingConfig parameterizes the Chord-style ring DHT.
type RingConfig struct {
	// Repl is the replica-group size: a key is held by the Repl distinct
	// peers succeeding it on the ring.
	Repl int
	// Env is the per-entry per-round probe probability, as in TrieConfig.
	Env float64
	// VirtualNodes is how many ring positions each peer occupies.
	// Chord's arc lengths are exponentially skewed with one position per
	// peer — the longest arc owner stores Θ(log n) times its fair share
	// and overflows its cache — so balanced deployments run O(log n)
	// virtual nodes. Default 4.
	VirtualNodes int
}

func (c *RingConfig) setDefaults() {
	if c.VirtualNodes == 0 {
		c.VirtualNodes = 4
	}
}

func (c RingConfig) validate(nActive int) error {
	if c.Repl < 1 {
		return fmt.Errorf("dht: Repl %d must be positive", c.Repl)
	}
	if nActive < 1 {
		return fmt.Errorf("dht: ring needs at least one active peer")
	}
	if c.Repl > nActive {
		return fmt.Errorf("dht: Repl %d exceeds active peers %d", c.Repl, nActive)
	}
	if c.Env < 0 || c.Env > 1 {
		return fmt.Errorf("dht: Env %v must be a probability", c.Env)
	}
	if c.VirtualNodes < 1 {
		return fmt.Errorf("dht: VirtualNodes %d must be positive", c.VirtualNodes)
	}
	return nil
}

// ringFinger is one finger-table entry: the vnode believed to succeed
// position start. The target is identified by (peer, pos) rather than an
// index so that membership changes, which splice the vnode array, cannot
// corrupt finger tables.
type ringFinger struct {
	start uint64
	peer  netsim.PeerID
	pos   uint64
}

// ringVnode is one virtual node: a ring position owned by a physical peer,
// with its own finger table.
type ringVnode struct {
	peer    netsim.PeerID
	pos     uint64
	fingers []ringFinger
}

// Ring is a Chord-style DHT: each active peer occupies VirtualNodes hashed
// positions on a 64-bit ring; a key is owned by the Repl distinct peers
// succeeding it. Greedy finger routing resolves lookups in O(log n) hops;
// hops between virtual nodes of the same physical peer are free. Peers can
// Join and Leave at runtime.
type Ring struct {
	net    *netsim.Network
	cfg    RingConfig
	active []netsim.PeerID
	byID   map[netsim.PeerID][]int // peer → its vnode indices
	state  []ringVnode             // in ring order
}

// vnodePositions returns the deterministic ring positions of a peer.
func vnodePositions(p netsim.PeerID, vnodes int) []uint64 {
	out := make([]uint64, vnodes)
	for v := 0; v < vnodes; v++ {
		out[v] = uint64(keyspace.HashString(fmt.Sprintf("ring-peer:%d:%d", p, v)))
	}
	return out
}

// NewRing builds the ring over the given active peers. Positions are
// hashes of (peer, vnode), so the layout is deterministic.
func NewRing(net *netsim.Network, active []netsim.PeerID, cfg RingConfig, rng *rand.Rand) (*Ring, error) {
	cfg.setDefaults()
	if err := cfg.validate(len(active)); err != nil {
		return nil, err
	}
	r := &Ring{
		net:    net,
		cfg:    cfg,
		active: append([]netsim.PeerID(nil), active...),
	}
	r.state = make([]ringVnode, 0, len(active)*cfg.VirtualNodes)
	for _, p := range active {
		for _, pos := range vnodePositions(p, cfg.VirtualNodes) {
			r.state = append(r.state, ringVnode{peer: p, pos: pos})
		}
	}
	sort.Slice(r.state, func(i, j int) bool { return r.state[i].pos < r.state[j].pos })
	r.rebuildByID()
	for i := range r.state {
		r.buildFingers(i)
	}
	_ = rng // ring construction is fully deterministic
	return r, nil
}

// rebuildByID recomputes the peer → vnode-index map after any splice.
func (r *Ring) rebuildByID() {
	r.byID = make(map[netsim.PeerID][]int, len(r.active))
	for i := range r.state {
		p := r.state[i].peer
		r.byID[p] = append(r.byID[p], i)
	}
}

// buildFingers computes the classic Chord fingers of one vnode: successors
// of pos + 2^k, deduplicated by target.
func (r *Ring) buildFingers(i int) {
	vn := &r.state[i]
	vn.fingers = vn.fingers[:0]
	last := -1
	for k := 0; k < 64; k++ {
		start := vn.pos + (uint64(1) << k) // wraps naturally
		j := r.successorIndex(start)
		if j == i || j == last {
			continue
		}
		vn.fingers = append(vn.fingers, ringFinger{start: start, peer: r.state[j].peer, pos: r.state[j].pos})
		last = j
	}
}

// successorIndex returns the index of the first vnode at or after position
// x on the ring.
func (r *Ring) successorIndex(x uint64) int {
	n := len(r.state)
	i := sort.Search(n, func(i int) bool { return r.state[i].pos >= x })
	if i == n {
		return 0
	}
	return i
}

// resolve finds the current index of a finger target, ok=false when the
// vnode no longer exists (its peer left).
func (r *Ring) resolve(f ringFinger) (int, bool) {
	i := r.successorIndex(f.pos)
	if i >= len(r.state) {
		return 0, false
	}
	if r.state[i].pos != f.pos || r.state[i].peer != f.peer {
		return 0, false
	}
	return i, true
}

// groupIndices returns the vnode indices of the Repl distinct peers
// succeeding key, in ring order (first vnode of each). Fewer than Repl
// peers are returned when the ring has shrunk below the replication
// factor.
func (r *Ring) groupIndices(key keyspace.Key) []int {
	n := len(r.state)
	start := r.successorIndex(uint64(key))
	seen := make(map[netsim.PeerID]bool, r.cfg.Repl)
	out := make([]int, 0, r.cfg.Repl)
	for i := 0; i < n && len(out) < r.cfg.Repl; i++ {
		vn := (start + i) % n
		p := r.state[vn].peer
		if seen[p] {
			continue
		}
		seen[p] = true
		out = append(out, vn)
	}
	return out
}

// ReplicaGroup implements Index: the Repl distinct peers succeeding the
// key.
func (r *Ring) ReplicaGroup(key keyspace.Key) []netsim.PeerID {
	idx := r.groupIndices(key)
	group := make([]netsim.PeerID, len(idx))
	for i, vn := range idx {
		group[i] = r.state[vn].peer
	}
	return group
}

// ActivePeers implements Index.
func (r *Ring) ActivePeers() []netsim.PeerID { return r.active }

// RoutingEntries implements Index.
func (r *Ring) RoutingEntries() int {
	total := 0
	for i := range r.state {
		total += len(r.state[i].fingers)
	}
	return total
}

// Member reports whether p currently participates in the ring.
func (r *Ring) Member(p netsim.PeerID) bool {
	_, ok := r.byID[p]
	return ok
}

// ringDist is the clockwise distance from a to b.
func ringDist(a, b uint64) uint64 { return b - a } // unsigned wraparound

// inGroup reports whether peer p is one of the Repl distinct successors of
// key.
func (r *Ring) inGroup(p netsim.PeerID, key keyspace.Key) bool {
	for _, vn := range r.groupIndices(key) {
		if r.state[vn].peer == p {
			return true
		}
	}
	return false
}

// Route implements Index: greedy Chord routing over virtual nodes. Each
// inter-peer hop costs one message; moving between virtual nodes of the
// same peer is local and free. When fingers fail (churn or departures),
// the lookup walks successors.
func (r *Ring) Route(from netsim.PeerID, key keyspace.Key, rng *rand.Rand) RouteResult {
	res := RouteResult{}
	var curIdx int
	if vns, ok := r.byID[from]; ok && r.net.Online(from) {
		curIdx = vns[0]
	} else {
		entry, ok := randomOnlineOf(r.net, r.active, rng)
		if !ok {
			return res
		}
		res.Hops++
		curIdx = r.byID[entry][0]
	}
	target := uint64(key)
	budget := 4*len(r.state[curIdx].fingers) + 4*r.cfg.VirtualNodes + 32
	for hop := 0; hop < budget; hop++ {
		cur := &r.state[curIdx]
		if r.net.Online(cur.peer) && r.inGroup(cur.peer, key) {
			res.OK = true
			res.Responsible = cur.peer
			r.net.Send(stats.MsgIndexLookup, int64(res.Hops))
			return res
		}
		next, ok := r.bestFinger(cur, curIdx, target)
		if !ok {
			next, ok = r.nextOnlineSuccessor(curIdx)
			if !ok {
				break
			}
		}
		if r.state[next].peer != cur.peer {
			res.Hops++
		}
		curIdx = next
	}
	r.net.Send(stats.MsgIndexLookup, int64(res.Hops))
	return res
}

// bestFinger returns the usable finger whose position is closest to the
// target without passing it (Chord's closest preceding node). The peer's
// other virtual nodes count as fingers too — their tables are local.
func (r *Ring) bestFinger(cur *ringVnode, curIdx int, target uint64) (int, bool) {
	want := ringDist(cur.pos, target)
	bestIdx := -1
	var bestDist uint64
	consider := func(vn int) {
		cand := &r.state[vn]
		if !r.net.Online(cand.peer) {
			return
		}
		d := ringDist(cur.pos, cand.pos)
		if d == 0 || d > want {
			return // behind us or overshooting the target
		}
		if bestIdx == -1 || d > bestDist {
			bestIdx, bestDist = vn, d
		}
	}
	for _, f := range cur.fingers {
		if vn, ok := r.resolve(f); ok {
			consider(vn)
		}
	}
	for _, vn := range r.byID[cur.peer] {
		if vn != curIdx {
			consider(vn)
		}
	}
	if bestIdx == -1 {
		return 0, false
	}
	return bestIdx, true
}

// nextOnlineSuccessor returns the index of the first vnode strictly after
// idx whose peer is online.
func (r *Ring) nextOnlineSuccessor(idx int) (int, bool) {
	n := len(r.state)
	for i := 1; i < n; i++ {
		j := (idx + i) % n
		if r.net.Online(r.state[j].peer) {
			return j, true
		}
	}
	return 0, false
}

// Maintain implements Index: every vnode of every online peer probes each
// finger with probability Env. A probe finds an entry stale when its
// target is offline, has left the ring, or is no longer the true successor
// of the finger's start (membership moved it); repairs re-point at the
// current online successor and are piggybacked, hence free.
func (r *Ring) Maintain(rng *rand.Rand) MaintenanceStats {
	var ms MaintenanceStats
	for i := range r.state {
		vn := &r.state[i]
		if !r.net.Online(vn.peer) {
			continue
		}
		for j := range vn.fingers {
			if rng.Float64() >= r.cfg.Env {
				continue
			}
			f := &vn.fingers[j]
			if f.peer == vn.peer {
				continue // probing yourself is free
			}
			ms.Probes++
			cur, exists := r.resolve(*f)
			// The entry should point at the *effective* successor
			// of its start: the first online vnode at or after it.
			// Comparing against the raw successor would flag a
			// correctly detoured finger as stale on every probe
			// while the raw successor is offline.
			eff := r.successorIndex(f.start)
			if !r.net.Online(r.state[eff].peer) {
				var ok bool
				eff, ok = r.nextOnlineSuccessor(eff)
				if !ok {
					continue // nobody online to point at
				}
			}
			if exists && cur == eff && r.net.Online(f.peer) {
				continue
			}
			ms.Stale++
			if r.state[eff].peer != vn.peer {
				f.peer = r.state[eff].peer
				f.pos = r.state[eff].pos
				ms.Repaired++
			}
		}
	}
	r.net.Send(stats.MsgMaintenance, int64(ms.Probes))
	return ms
}

// Join adds peer p to the ring: its VirtualNodes positions are spliced
// into the ring and each new vnode builds a finger table, which in Chord
// costs about ½·log₂(vnodes) lookup messages per finger table — counted as
// stats.MsgControl. Existing peers' fingers pick up the newcomer lazily
// through maintenance.
func (r *Ring) Join(p netsim.PeerID, rng *rand.Rand) error {
	if r.Member(p) {
		return fmt.Errorf("dht: peer %d is already a ring member", p)
	}
	for _, pos := range vnodePositions(p, r.cfg.VirtualNodes) {
		i := sort.Search(len(r.state), func(i int) bool { return r.state[i].pos >= pos })
		r.state = append(r.state, ringVnode{})
		copy(r.state[i+1:], r.state[i:])
		r.state[i] = ringVnode{peer: p, pos: pos}
	}
	r.active = append(r.active, p)
	r.rebuildByID()
	for _, vn := range r.byID[p] {
		r.buildFingers(vn)
	}
	perTable := bits.Len(uint(len(r.state)))/2 + 1
	r.net.Send(stats.MsgControl, int64(r.cfg.VirtualNodes*perTable))
	return nil
}

// Leave removes peer p from the ring permanently, crash-style: no
// messages; fingers pointing at p go stale and are collected by Maintain.
// The last member cannot leave (an empty ring has no routing to speak of).
func (r *Ring) Leave(p netsim.PeerID) error {
	if !r.Member(p) {
		return fmt.Errorf("dht: peer %d is not a ring member", p)
	}
	if len(r.active) == 1 {
		return fmt.Errorf("dht: peer %d is the last ring member and cannot leave", p)
	}
	kept := r.state[:0]
	for _, vn := range r.state {
		if vn.peer != p {
			kept = append(kept, vn)
		}
	}
	r.state = kept
	for i, m := range r.active {
		if m == p {
			r.active[i] = r.active[len(r.active)-1]
			r.active = r.active[:len(r.active)-1]
			break
		}
	}
	r.rebuildByID()
	return nil
}
