package dht

import (
	"math/rand/v2"
	"testing"

	"pdht/internal/keyspace"
	"pdht/internal/netsim"
	"pdht/internal/stats"
)

func TestJoinAddsToEmptiestLeaf(t *testing.T) {
	trie, net, rng := newTestTrie(t, 600, 512, TrieConfig{GroupSize: 8, Env: 0.1}, 30)
	before := net.Counters().Get(stats.MsgControl)
	joiner := netsim.PeerID(512) // outside the original membership
	if err := trie.Join(joiner, rng); err != nil {
		t.Fatal(err)
	}
	if !trie.Member(joiner) {
		t.Fatal("joiner not a member")
	}
	if got := net.Counters().Get(stats.MsgControl) - before; got != int64(trie.Depth()) {
		t.Errorf("join cost %d messages, want depth %d", got, trie.Depth())
	}
	// Balance: no leaf may now differ from another by more than one.
	sizes := trie.LeafSizes()
	min, max := sizes[0], sizes[0]
	for _, s := range sizes {
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	if max-min > 1 {
		t.Errorf("leaf sizes unbalanced after join: min %d max %d", min, max)
	}
	if len(trie.ActivePeers()) != 513 {
		t.Errorf("active peers = %d", len(trie.ActivePeers()))
	}
}

func TestJoinDuplicateRejected(t *testing.T) {
	trie, _, rng := newTestTrie(t, 100, 64, TrieConfig{GroupSize: 8, Env: 0.1}, 31)
	if err := trie.Join(0, rng); err == nil {
		t.Error("joining an existing member succeeded")
	}
}

func TestJoinedPeerRoutesAndIsRoutable(t *testing.T) {
	trie, _, rng := newTestTrie(t, 600, 512, TrieConfig{GroupSize: 8, Env: 0.1}, 32)
	joiner := netsim.PeerID(550)
	if err := trie.Join(joiner, rng); err != nil {
		t.Fatal(err)
	}
	// The joiner can route lookups itself…
	for i := 0; i < 50; i++ {
		key := keyspace.Key(rng.Uint64())
		res := trie.Route(joiner, key, rng)
		if !res.OK {
			t.Fatalf("joiner's lookup %d failed", i)
		}
	}
	// …and receives lookups for its leaf's keys.
	leaf := trie.state[trie.peers[joiner]].leaf
	hits := 0
	for i := 0; i < 2000 && hits == 0; i++ {
		key := keyspace.Key(rng.Uint64())
		if trie.leafOf(key) != leaf {
			continue
		}
		res := trie.Route(netsim.PeerID(i%512), key, rng)
		if !res.OK {
			t.Fatal("lookup to joiner's leaf failed")
		}
		if res.Responsible == joiner {
			hits++
		}
	}
	// The joiner is one of ~9 leaf members; Route picks whichever member
	// it lands on, so we only require that routing to the leaf works and
	// the joiner holds the leaf's keys.
	found := false
	for _, p := range trie.ReplicaGroup(keyFor(t, trie, leaf, rng)) {
		if p == joiner {
			found = true
		}
	}
	if !found {
		t.Error("joiner absent from its leaf's replica group")
	}
}

// keyFor finds a key routed to the given leaf.
func keyFor(t *testing.T, trie *Trie, leaf int, rng *rand.Rand) keyspace.Key {
	t.Helper()
	for i := 0; i < 100000; i++ {
		key := keyspace.Key(rng.Uint64())
		if trie.leafOf(key) == leaf {
			return key
		}
	}
	t.Fatal("no key found for leaf")
	return 0
}

func TestLeaveRemovesCompletely(t *testing.T) {
	trie, _, rng := newTestTrie(t, 512, 512, TrieConfig{GroupSize: 8, Env: 0.1}, 33)
	leaver := netsim.PeerID(100)
	leaf := trie.state[trie.peers[leaver]].leaf
	if err := trie.Leave(leaver); err != nil {
		t.Fatal(err)
	}
	if trie.Member(leaver) {
		t.Fatal("leaver still a member")
	}
	if len(trie.ActivePeers()) != 511 {
		t.Errorf("active peers = %d", len(trie.ActivePeers()))
	}
	for _, m := range trie.leaves[leaf] {
		if m == leaver {
			t.Fatal("leaver still in its leaf")
		}
	}
	// Routing still works everywhere, including the leaver's old leaf.
	for i := 0; i < 200; i++ {
		key := keyspace.Key(rng.Uint64())
		from, _ := trie.net.RandomOnline(rng)
		res := trie.Route(from, key, rng)
		if !res.OK {
			t.Fatalf("lookup failed after leave")
		}
		if res.Responsible == leaver {
			t.Fatal("route terminated at the departed peer")
		}
	}
}

func TestLeaveNonMemberRejected(t *testing.T) {
	trie, _, _ := newTestTrie(t, 100, 64, TrieConfig{GroupSize: 8, Env: 0.1}, 34)
	if err := trie.Leave(99); err == nil {
		t.Error("leaving without membership succeeded")
	}
}

func TestMaintenanceCollectsDepartedRefs(t *testing.T) {
	trie, _, rng := newTestTrie(t, 512, 512, TrieConfig{GroupSize: 8, Env: 1.0}, 35)
	// Remove 10% of members outright (still online — departed, not
	// churned). Their refs must be detected and repaired.
	for i := 0; i < 51; i++ {
		if err := trie.Leave(netsim.PeerID(i * 10)); err != nil {
			t.Fatal(err)
		}
	}
	ms := trie.Maintain(rng)
	if ms.Stale == 0 {
		t.Fatal("maintenance found no stale refs after mass departure")
	}
	if ms.Repaired < ms.Stale*9/10 {
		t.Errorf("repaired %d of %d", ms.Repaired, ms.Stale)
	}
	ms2 := trie.Maintain(rng)
	if ms2.Stale > ms.Stale/10 {
		t.Errorf("second pass still found %d stale refs", ms2.Stale)
	}
}

func TestChurnedMembershipCycle(t *testing.T) {
	// A full cycle: a quarter of peers leave, the same number join,
	// routing keeps working throughout.
	trie, _, rng := newTestTrie(t, 1024, 512, TrieConfig{GroupSize: 8, Env: 0.2}, 36)
	for i := 0; i < 128; i++ {
		if err := trie.Leave(netsim.PeerID(i * 4)); err != nil {
			t.Fatal(err)
		}
		if err := trie.Join(netsim.PeerID(512+i), rng); err != nil {
			t.Fatal(err)
		}
		if i%16 == 0 {
			trie.Maintain(rng)
			from, _ := trie.net.RandomOnline(rng)
			if res := trie.Route(from, keyspace.Key(rng.Uint64()), rng); !res.OK {
				t.Fatalf("routing broke after %d membership changes", 2*i)
			}
		}
	}
	if got := len(trie.ActivePeers()); got != 512 {
		t.Errorf("active peers = %d after balanced join/leave", got)
	}
	// All leaves still populated.
	for leaf, size := range trie.LeafSizes() {
		if size == 0 {
			t.Errorf("leaf %d drained", leaf)
		}
	}
}

func TestLeaveCanDrainLeaf(t *testing.T) {
	// Draining a leaf is allowed but documented: its key range becomes
	// unroutable.
	trie, _, rng := newTestTrie(t, 32, 16, TrieConfig{GroupSize: 8, Env: 0.1}, 37)
	if trie.Depth() != 1 {
		t.Fatalf("depth = %d, want 1", trie.Depth())
	}
	leaf0 := append([]netsim.PeerID(nil), trie.leaves[0]...)
	for _, p := range leaf0 {
		if err := trie.Leave(p); err != nil {
			t.Fatal(err)
		}
	}
	key := keyFor(t, trie, 0, rng)
	from := trie.leaves[1][0]
	if res := trie.Route(from, key, rng); res.OK {
		t.Error("route into a drained leaf claimed success")
	}
}
