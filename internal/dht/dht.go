// Package dht implements the structured overlay ("traditional DHT") that
// the partial index lives in. The paper targets the classical designs —
// P-Grid [Aber01], CAN [RaFr01], Pastry [RoDr01], Chord [StMo01] — whose
// search cost is logarithmic (eq. 7) and whose dominant holding cost is
// keeping routing tables alive under churn by probing entries [MaCa03]
// (eq. 8).
//
// Two implementations are provided behind one interface: Trie, a P-Grid-
// style binary-trie DHT (the authors' own system, and the binary key space
// eq. 7 assumes), and Ring, a Chord-style ring. The selection algorithm in
// internal/core is written against the interface only, realizing the
// paper's claim that the scheme "can be used for any of the DHT based
// systems".
package dht

import (
	"math/rand/v2"

	"pdht/internal/keyspace"
	"pdht/internal/netsim"
)

// RouteResult is the outcome of routing one lookup.
type RouteResult struct {
	// OK reports whether the lookup reached an online responsible peer.
	OK bool
	// Responsible is the online peer the lookup terminated at.
	Responsible netsim.PeerID
	// Hops is the number of routing messages spent, including the hop to
	// the entry peer when the querying peer is not part of the DHT.
	Hops int
}

// MaintenanceStats reports one round of routing-table probing.
type MaintenanceStats struct {
	// Probes is the number of probe messages sent (class
	// stats.MsgMaintenance).
	Probes int
	// Stale is how many probes hit an offline entry.
	Stale int
	// Repaired is how many stale entries were replaced with a live peer.
	// Repairs are free in message terms: the paper assumes replacement
	// information is piggybacked on queries.
	Repaired int
}

// Index is a structured overlay: route lookups, identify replica groups,
// and keep routing state alive under churn. Implementations count every
// message they would send on the underlying network's counters.
type Index interface {
	// Route routes a lookup for key, starting at from (which need not be
	// an active DHT peer — the paper only requires it to know one online
	// active peer). It returns the online responsible peer reached.
	Route(from netsim.PeerID, key keyspace.Key, rng *rand.Rand) RouteResult
	// ReplicaGroup returns every peer — online or not — responsible for
	// key. The slice is owned by the index.
	ReplicaGroup(key keyspace.Key) []netsim.PeerID
	// Maintain runs one round of probing: each online active peer checks
	// each routing entry with the configured per-round probability.
	Maintain(rng *rand.Rand) MaintenanceStats
	// ActivePeers returns the peers participating in the DHT. The slice
	// is owned by the index.
	ActivePeers() []netsim.PeerID
	// RoutingEntries returns the total number of routing-table entries
	// across active peers (the quantity maintenance cost scales with).
	RoutingEntries() int
}

// randomOnlineOf returns a random online member of peers, or ok=false if
// all are offline.
func randomOnlineOf(net *netsim.Network, peers []netsim.PeerID, rng *rand.Rand) (netsim.PeerID, bool) {
	if len(peers) == 0 {
		return 0, false
	}
	for tries := 0; tries < 32; tries++ {
		p := peers[rng.IntN(len(peers))]
		if net.Online(p) {
			return p, true
		}
	}
	start := rng.IntN(len(peers))
	for i := range peers {
		p := peers[(start+i)%len(peers)]
		if net.Online(p) {
			return p, true
		}
	}
	return 0, false
}
