package dht

import (
	"math/rand/v2"
	"testing"

	"pdht/internal/keyspace"
	"pdht/internal/netsim"
)

func benchTrie(b *testing.B, nActive int) (*Trie, *rand.Rand) {
	b.Helper()
	net := netsim.New(nActive)
	rng := rand.New(rand.NewPCG(1, 2))
	trie, err := NewTrie(net, activeRange(nActive), TrieConfig{GroupSize: 16, Env: 1.0 / 14.0}, rng)
	if err != nil {
		b.Fatal(err)
	}
	return trie, rng
}

func benchRing(b *testing.B, nActive int) (*Ring, *rand.Rand) {
	b.Helper()
	net := netsim.New(nActive)
	rng := rand.New(rand.NewPCG(1, 2))
	ring, err := NewRing(net, activeRange(nActive), RingConfig{Repl: 16, Env: 1.0 / 14.0}, rng)
	if err != nil {
		b.Fatal(err)
	}
	return ring, rng
}

func BenchmarkTrieRoute(b *testing.B) {
	trie, rng := benchTrie(b, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := trie.Route(netsim.PeerID(i%4096), keyspace.Key(rng.Uint64()), rng)
		if !res.OK {
			b.Fatal("route failed")
		}
	}
}

func BenchmarkRingRoute(b *testing.B) {
	ring, rng := benchRing(b, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := ring.Route(netsim.PeerID(i%4096), keyspace.Key(rng.Uint64()), rng)
		if !res.OK {
			b.Fatal("route failed")
		}
	}
}

func BenchmarkTrieMaintainRound(b *testing.B) {
	trie, rng := benchTrie(b, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trie.Maintain(rng)
	}
}

func BenchmarkRingMaintainRound(b *testing.B) {
	ring, rng := benchRing(b, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ring.Maintain(rng)
	}
}

func BenchmarkTrieReplicaGroup(b *testing.B) {
	trie, rng := benchTrie(b, 4096)
	keys := make([]keyspace.Key, 1024)
	for i := range keys {
		keys[i] = keyspace.Key(rng.Uint64())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trie.ReplicaGroup(keys[i%len(keys)])
	}
}

func BenchmarkRingReplicaGroup(b *testing.B) {
	ring, rng := benchRing(b, 4096)
	keys := make([]keyspace.Key, 1024)
	for i := range keys {
		keys[i] = keyspace.Key(rng.Uint64())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ring.ReplicaGroup(keys[i%len(keys)])
	}
}

func BenchmarkTrieJoinLeave(b *testing.B) {
	trie, rng := benchTrie(b, 2048)
	net := trie.net
	_ = net
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := netsim.PeerID(2048) // churner outside initial membership
		if err := trie.Join(p, rng); err != nil {
			b.Fatal(err)
		}
		if err := trie.Leave(p); err != nil {
			b.Fatal(err)
		}
	}
}
