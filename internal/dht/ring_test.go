package dht

import (
	"math"
	"math/rand/v2"
	"testing"

	"pdht/internal/keyspace"
	"pdht/internal/netsim"
	"pdht/internal/stats"
)

func newTestRing(t *testing.T, nNet, nActive int, cfg RingConfig, seed uint64) (*Ring, *netsim.Network, *rand.Rand) {
	t.Helper()
	net := netsim.New(nNet)
	rng := rand.New(rand.NewPCG(seed, seed^0x1234567))
	ring, err := NewRing(net, activeRange(nActive), cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	return ring, net, rng
}

func TestRingConfigValidation(t *testing.T) {
	net := netsim.New(10)
	rng := rand.New(rand.NewPCG(1, 2))
	cases := []struct {
		active []netsim.PeerID
		cfg    RingConfig
	}{
		{activeRange(10), RingConfig{Repl: 0}},
		{activeRange(10), RingConfig{Repl: 11}},
		{nil, RingConfig{Repl: 1}},
		{activeRange(10), RingConfig{Repl: 2, Env: 2}},
	}
	for i, c := range cases {
		if _, err := NewRing(net, c.active, c.cfg, rng); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestRingOrderAndFingers(t *testing.T) {
	ring, _, _ := newTestRing(t, 1024, 1024, RingConfig{Repl: 8, Env: 0.1}, 1)
	for i := 1; i < len(ring.state); i++ {
		if ring.state[i-1].pos >= ring.state[i].pos {
			t.Fatal("ring positions not strictly sorted")
		}
	}
	if want := 1024 * 4; len(ring.state) != want { // default 4 vnodes
		t.Fatalf("vnodes = %d, want %d", len(ring.state), want)
	}
	// Chord: ~log₂(vnodes) distinct fingers per vnode.
	mean := float64(ring.RoutingEntries()) / float64(len(ring.state))
	if mean < 6 || mean > 16 {
		t.Errorf("mean fingers per vnode = %v, want ≈ log₂(4096) = 12", mean)
	}
}

func TestRingReplicaGroupAreDistinctSuccessors(t *testing.T) {
	ring, _, rng := newTestRing(t, 256, 256, RingConfig{Repl: 5, Env: 0.1}, 2)
	for i := 0; i < 100; i++ {
		key := keyspace.Key(rng.Uint64())
		group := ring.ReplicaGroup(key)
		if len(group) != 5 {
			t.Fatalf("group size %d, want 5", len(group))
		}
		// Members must be the first 5 *distinct* peers walking the
		// ring from the key's successor vnode.
		start := ring.successorIndex(uint64(key))
		seen := make(map[netsim.PeerID]bool)
		var want []netsim.PeerID
		for j := 0; len(want) < 5; j++ {
			p := ring.state[(start+j)%len(ring.state)].peer
			if !seen[p] {
				seen[p] = true
				want = append(want, p)
			}
		}
		for j := range want {
			if group[j] != want[j] {
				t.Fatalf("group[%d] = %d, want %d", j, group[j], want[j])
			}
		}
	}
}

func TestRingVirtualNodesBalanceLoad(t *testing.T) {
	// The reason virtual nodes exist: the maximum per-peer share of keys
	// must come down as vnodes go up.
	maxShare := func(vnodes int) float64 {
		ring, _, _ := newTestRing(t, 128, 128, RingConfig{Repl: 1, Env: 0.1, VirtualNodes: vnodes}, 3)
		counts := make(map[netsim.PeerID]int)
		for i := 0; i < 4096; i++ {
			key := keyspace.Key(uint64(i) * 0x9e3779b97f4a7c15)
			counts[ring.ReplicaGroup(key)[0]]++
		}
		max := 0
		for _, c := range counts {
			if c > max {
				max = c
			}
		}
		return float64(max) / 4096
	}
	one, eight := maxShare(1), maxShare(8)
	if eight >= one {
		t.Errorf("8 vnodes max share %v not below 1 vnode's %v", eight, one)
	}
}

func TestRingRouteNoChurn(t *testing.T) {
	ring, net, rng := newTestRing(t, 1024, 1024, RingConfig{Repl: 8, Env: 0.1}, 3)
	var hops int
	const lookups = 500
	for i := 0; i < lookups; i++ {
		from := netsim.PeerID(rng.IntN(1024))
		key := keyspace.Key(rng.Uint64())
		res := ring.Route(from, key, rng)
		if !res.OK {
			t.Fatalf("lookup %d failed without churn", i)
		}
		found := false
		for _, p := range ring.ReplicaGroup(key) {
			if p == res.Responsible {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("route terminated at non-responsible peer")
		}
		hops += res.Hops
	}
	mean := float64(hops) / lookups
	// Greedy Chord converges in ≈ ½·log₂(n) = 5 hops; replication lets
	// some lookups stop early.
	if mean < 2 || mean > 8 {
		t.Errorf("mean hops = %v, want ≈ ½·log₂(1024) = 5", mean)
	}
	if net.Counters().Get(stats.MsgIndexLookup) != int64(hops) {
		t.Error("lookup counter mismatch")
	}
}

func TestRingRouteLogarithmicScaling(t *testing.T) {
	meanHops := func(n int) float64 {
		ring, _, rng := newTestRing(t, n, n, RingConfig{Repl: 4, Env: 0.1}, 4)
		total := 0
		const lookups = 300
		for i := 0; i < lookups; i++ {
			res := ring.Route(netsim.PeerID(rng.IntN(n)), keyspace.Key(rng.Uint64()), rng)
			if !res.OK {
				t.Fatal("lookup failed")
			}
			total += res.Hops
		}
		return float64(total) / lookups
	}
	small, large := meanHops(128), meanHops(4096)
	if large <= small {
		t.Fatalf("hops must grow with n: %v vs %v", small, large)
	}
	// 32× more peers is 5 more bits; hops should grow by ≈ 2.5, i.e.
	// clearly sub-linear.
	if large > small+5 || large > small*math.Log2(4096)/math.Log2(128)*2 {
		t.Errorf("hop growth not logarithmic: %v → %v", small, large)
	}
}

func TestRingRouteUnderChurn(t *testing.T) {
	ring, net, rng := newTestRing(t, 1024, 1024, RingConfig{Repl: 16, Env: 0.1}, 5)
	for i := 0; i < 1024; i++ {
		if rng.Float64() < 0.3 {
			net.SetOnline(netsim.PeerID(i), false)
		}
	}
	succeeded := 0
	const lookups = 300
	for i := 0; i < lookups; i++ {
		from, ok := net.RandomOnline(rng)
		if !ok {
			t.Fatal("network died")
		}
		res := ring.Route(from, keyspace.Key(rng.Uint64()), rng)
		if res.OK {
			if !net.Online(res.Responsible) {
				t.Fatal("terminated at an offline peer")
			}
			succeeded++
		}
	}
	if succeeded < lookups*95/100 {
		t.Errorf("only %d/%d lookups succeeded under churn", succeeded, lookups)
	}
}

func TestRingRouteAllOffline(t *testing.T) {
	ring, net, rng := newTestRing(t, 64, 64, RingConfig{Repl: 4, Env: 0.1}, 6)
	for i := 0; i < 64; i++ {
		net.SetOnline(netsim.PeerID(i), false)
	}
	if res := ring.Route(0, keyspace.HashString("k"), rng); res.OK {
		t.Error("route succeeded on a dead network")
	}
}

func TestRingMaintenance(t *testing.T) {
	ring, net, rng := newTestRing(t, 512, 512, RingConfig{Repl: 8, Env: 1.0}, 7)
	for i := 0; i < 512; i++ {
		if rng.Float64() < 0.2 {
			net.SetOnline(netsim.PeerID(i), false)
		}
	}
	ms := ring.Maintain(rng)
	if ms.Probes == 0 || ms.Stale == 0 {
		t.Fatalf("maintenance found nothing: %+v", ms)
	}
	if ms.Repaired < ms.Stale*9/10 {
		t.Errorf("repaired %d of %d stale fingers", ms.Repaired, ms.Stale)
	}
	ms2 := ring.Maintain(rng)
	if ms2.Stale > ms.Stale/10 {
		t.Errorf("second pass still found %d stale fingers", ms2.Stale)
	}
	if got := net.Counters().Get(stats.MsgMaintenance); got != int64(ms.Probes+ms2.Probes) {
		t.Error("maintenance counter mismatch")
	}
}

func TestRingSingletonDegenerate(t *testing.T) {
	ring, _, rng := newTestRing(t, 4, 1, RingConfig{Repl: 1, Env: 0.1}, 8)
	res := ring.Route(0, keyspace.HashString("k"), rng)
	if !res.OK || res.Responsible != 0 {
		t.Errorf("singleton ring route = %+v", res)
	}
	if res.Hops != 0 {
		t.Errorf("singleton lookup should be free, hops = %d", res.Hops)
	}
}

func TestRingDeterministicConstruction(t *testing.T) {
	a, _, _ := newTestRing(t, 128, 128, RingConfig{Repl: 4, Env: 0.1}, 9)
	b, _, _ := newTestRing(t, 128, 128, RingConfig{Repl: 4, Env: 0.1}, 10)
	// Positions derive from peer IDs only, so two rings over the same
	// peers are identical regardless of seed.
	for i := range a.state {
		if a.state[i].peer != b.state[i].peer || a.state[i].pos != b.state[i].pos {
			t.Fatal("ring layout depends on rng, should be deterministic")
		}
	}
}

func TestRingConfigVirtualNodesValidation(t *testing.T) {
	net := netsim.New(10)
	rng := rand.New(rand.NewPCG(1, 2))
	if _, err := NewRing(net, activeRange(10), RingConfig{Repl: 2, VirtualNodes: -1}, rng); err == nil {
		t.Error("negative VirtualNodes accepted")
	}
}

// Cross-implementation property: for the same key both DHTs return a replica
// group of the configured size with no duplicates.
func TestGroupsHaveNoDuplicates(t *testing.T) {
	trie, _, trng := newTestTrie(t, 512, 512, TrieConfig{GroupSize: 8, Env: 0.1}, 11)
	ring, _, _ := newTestRing(t, 512, 512, RingConfig{Repl: 8, Env: 0.1}, 12)
	for i := 0; i < 100; i++ {
		key := keyspace.Key(trng.Uint64())
		for name, group := range map[string][]netsim.PeerID{
			"trie": trie.ReplicaGroup(key),
			"ring": ring.ReplicaGroup(key),
		} {
			seen := make(map[netsim.PeerID]bool)
			for _, p := range group {
				if seen[p] {
					t.Fatalf("%s: duplicate peer %d in group", name, p)
				}
				seen[p] = true
			}
		}
	}
}
