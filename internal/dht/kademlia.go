package dht

import (
	"fmt"
	"math/bits"
	"math/rand/v2"
	"sort"

	"pdht/internal/keyspace"
	"pdht/internal/netsim"
	"pdht/internal/stats"
)

// KademliaConfig parameterizes the Kademlia-style XOR-metric DHT. Kademlia
// postdates the paper's "traditional DHT" list but belongs to the same
// logarithmic family eq. 7 models; carrying the selection algorithm over it
// unchanged is the strongest form of the paper's genericity claim this
// repo exercises.
type KademliaConfig struct {
	// K is the bucket width and the replica-group size: a key lives on
	// the K peers whose node IDs are XOR-closest to it.
	K int
	// Alpha is the lookup parallelism (how many contacts an iterative
	// lookup keeps in flight). Classic Kademlia uses 3.
	Alpha int
	// Env is the per-contact per-round probe probability, as elsewhere.
	Env float64
}

func (c *KademliaConfig) setDefaults() {
	if c.Alpha == 0 {
		c.Alpha = 3
	}
}

func (c KademliaConfig) validate(nActive int) error {
	if c.K < 1 {
		return fmt.Errorf("dht: K %d must be positive", c.K)
	}
	if nActive < 1 {
		return fmt.Errorf("dht: kademlia needs at least one active peer")
	}
	if c.K > nActive {
		return fmt.Errorf("dht: K %d exceeds active peers %d", c.K, nActive)
	}
	if c.Alpha < 1 {
		return fmt.Errorf("dht: Alpha %d must be positive", c.Alpha)
	}
	if c.Env < 0 || c.Env > 1 {
		return fmt.Errorf("dht: Env %v must be a probability", c.Env)
	}
	return nil
}

// kadNode is one peer's Kademlia state: a 64-bit node ID and 64 buckets,
// bucket b holding up to K contacts whose IDs differ from ours first at
// bit 63−b (i.e. XOR distance in [2^b, 2^(b+1))).
type kadNode struct {
	id      netsim.PeerID
	nodeKey uint64
	buckets [64][]netsim.PeerID
}

// Kademlia is the XOR-metric DHT: node IDs and keys share one space, a key
// is stored on the K peers closest to it by XOR, and lookups iterate —
// the querier itself contacts ever-closer peers learned from responses,
// paying one message per contacted peer.
type Kademlia struct {
	net    *netsim.Network
	cfg    KademliaConfig
	active []netsim.PeerID
	nodes  map[netsim.PeerID]*kadNode
}

// kadNodeKey derives a peer's node ID.
func kadNodeKey(p netsim.PeerID) uint64 {
	return uint64(keyspace.HashString(fmt.Sprintf("kad-peer:%d", p)))
}

// bucketOf returns the bucket index for a contact at XOR distance d > 0:
// the position of the highest set bit.
func bucketOf(d uint64) int { return bits.Len64(d) - 1 }

// NewKademlia builds the routing state over the given active peers. Bucket
// filling inspects every peer pair (O(n²)); this is construction-time
// bookkeeping a real network amortizes over its lifetime, not message
// traffic.
func NewKademlia(net *netsim.Network, active []netsim.PeerID, cfg KademliaConfig, rng *rand.Rand) (*Kademlia, error) {
	cfg.setDefaults()
	if err := cfg.validate(len(active)); err != nil {
		return nil, err
	}
	k := &Kademlia{
		net:    net,
		cfg:    cfg,
		active: append([]netsim.PeerID(nil), active...),
		nodes:  make(map[netsim.PeerID]*kadNode, len(active)),
	}
	for _, p := range k.active {
		k.nodes[p] = &kadNode{id: p, nodeKey: kadNodeKey(p)}
	}
	// Fill buckets from a random permutation so that bucket contents are
	// not biased by peer-ID order.
	perm := append([]netsim.PeerID(nil), k.active...)
	rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	for _, p := range k.active {
		n := k.nodes[p]
		for _, q := range perm {
			if q == p {
				continue
			}
			b := bucketOf(n.nodeKey ^ k.nodes[q].nodeKey)
			if len(n.buckets[b]) < cfg.K {
				n.buckets[b] = append(n.buckets[b], q)
			}
		}
	}
	return k, nil
}

// ActivePeers implements Index.
func (k *Kademlia) ActivePeers() []netsim.PeerID { return k.active }

// RoutingEntries implements Index.
func (k *Kademlia) RoutingEntries() int {
	total := 0
	for _, n := range k.nodes {
		for b := range n.buckets {
			total += len(n.buckets[b])
		}
	}
	return total
}

// Member reports whether p participates.
func (k *Kademlia) Member(p netsim.PeerID) bool {
	_, ok := k.nodes[p]
	return ok
}

// ReplicaGroup implements Index: the K peers XOR-closest to the key,
// online or not. Linear scan — group identification is the simulator's
// omniscient bookkeeping, not a message-bearing operation.
func (k *Kademlia) ReplicaGroup(key keyspace.Key) []netsim.PeerID {
	type cand struct {
		p netsim.PeerID
		d uint64
	}
	cands := make([]cand, 0, len(k.active))
	for _, p := range k.active {
		cands = append(cands, cand{p, k.nodes[p].nodeKey ^ uint64(key)})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].d < cands[j].d })
	n := k.cfg.K
	if n > len(cands) {
		n = len(cands)
	}
	out := make([]netsim.PeerID, n)
	for i := 0; i < n; i++ {
		out[i] = cands[i].p
	}
	return out
}

// closestContacts returns up to want contacts from n's buckets, sorted by
// XOR distance to target — what a Kademlia node puts in a FIND_NODE
// response. Contacts whose peers have left the DHT are skipped (they
// linger in buckets until maintenance collects them).
func (k *Kademlia) closestContacts(n *kadNode, target uint64, want int) []netsim.PeerID {
	type cand struct {
		p netsim.PeerID
		d uint64
	}
	var cands []cand
	for b := range n.buckets {
		for _, p := range n.buckets[b] {
			pn, ok := k.nodes[p]
			if !ok {
				continue
			}
			cands = append(cands, cand{p, pn.nodeKey ^ target})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].d < cands[j].d })
	if want > len(cands) {
		want = len(cands)
	}
	out := make([]netsim.PeerID, want)
	for i := 0; i < want; i++ {
		out[i] = cands[i].p
	}
	return out
}

// Route implements Index with the iterative Kademlia lookup: the querier
// keeps a shortlist of the closest contacts it has heard of, contacts the
// closest not-yet-queried one (one message each, timeouts against offline
// peers included), merges the response's contacts, and stops when it has
// queried an online member of the key's replica group.
func (k *Kademlia) Route(from netsim.PeerID, key keyspace.Key, rng *rand.Rand) RouteResult {
	res := RouteResult{}
	target := uint64(key)

	group := make(map[netsim.PeerID]bool, k.cfg.K)
	for _, p := range k.ReplicaGroup(key) {
		group[p] = true
	}

	// The querier's own knowledge seeds the shortlist; outsiders bootstrap
	// through a random online member (one message, as elsewhere).
	start, isMember := k.nodes[from]
	if !isMember || !k.net.Online(from) {
		entry, ok := randomOnlineOf(k.net, k.active, rng)
		if !ok {
			return res
		}
		res.Hops++
		start = k.nodes[entry]
		if group[entry] {
			res.OK, res.Responsible = true, entry
			k.net.Send(stats.MsgIndexLookup, int64(res.Hops))
			return res
		}
	} else if group[from] {
		res.OK, res.Responsible = true, from
		k.net.Send(stats.MsgIndexLookup, int64(res.Hops))
		return res
	}

	dist := func(p netsim.PeerID) uint64 { return k.nodes[p].nodeKey ^ target }
	shortlist := k.closestContacts(start, target, k.cfg.K)
	queried := map[netsim.PeerID]bool{start.id: true}
	budget := 8*k.cfg.K + 32
	for hop := 0; hop < budget; hop++ {
		// Closest unqueried contact on the shortlist.
		var next netsim.PeerID = -1
		for _, p := range shortlist {
			if queried[p] {
				continue
			}
			if next == -1 || dist(p) < dist(next) {
				next = p
			}
		}
		if next == -1 {
			break // shortlist exhausted
		}
		queried[next] = true
		res.Hops++ // the FIND message (or its timeout)
		if !k.net.Online(next) {
			continue
		}
		if group[next] {
			res.OK, res.Responsible = true, next
			k.net.Send(stats.MsgIndexLookup, int64(res.Hops))
			return res
		}
		// Merge the response's contacts and keep the K closest.
		shortlist = mergeClosest(shortlist,
			k.closestContacts(k.nodes[next], target, k.cfg.K),
			k.cfg.K, dist)
	}
	k.net.Send(stats.MsgIndexLookup, int64(res.Hops))
	return res
}

// mergeClosest merges two contact lists, deduplicates, and keeps the n
// closest under dist.
func mergeClosest(a, b []netsim.PeerID, n int, dist func(netsim.PeerID) uint64) []netsim.PeerID {
	seen := make(map[netsim.PeerID]bool, len(a)+len(b))
	merged := make([]netsim.PeerID, 0, len(a)+len(b))
	for _, list := range [2][]netsim.PeerID{a, b} {
		for _, p := range list {
			if !seen[p] {
				seen[p] = true
				merged = append(merged, p)
			}
		}
	}
	sort.Slice(merged, func(i, j int) bool { return dist(merged[i]) < dist(merged[j]) })
	if len(merged) > n {
		merged = merged[:n]
	}
	return merged
}

// Maintain implements Index: every online peer probes each bucket contact
// with probability Env; a probe that hits an offline contact evicts it and
// refills the bucket with a random online peer of the right distance —
// Kademlia's least-recently-seen eviction collapsed to one round.
func (k *Kademlia) Maintain(rng *rand.Rand) MaintenanceStats {
	var ms MaintenanceStats
	for _, p := range k.active {
		n := k.nodes[p]
		if !k.net.Online(p) {
			continue
		}
		for b := range n.buckets {
			bucket := n.buckets[b]
			for i := 0; i < len(bucket); i++ {
				if rng.Float64() >= k.cfg.Env {
					continue
				}
				ms.Probes++
				if _, member := k.nodes[bucket[i]]; member && k.net.Online(bucket[i]) {
					continue
				}
				ms.Stale++
				if repl, ok := k.refill(n, b, rng); ok {
					bucket[i] = repl
					ms.Repaired++
				} else {
					// Nobody suitable: drop the contact.
					bucket[i] = bucket[len(bucket)-1]
					bucket = bucket[:len(bucket)-1]
					n.buckets[b] = bucket
					i--
					ms.Repaired++
				}
			}
		}
	}
	k.net.Send(stats.MsgMaintenance, int64(ms.Probes))
	return ms
}

// Join adds peer p: it fills its own buckets (bookkeeping) and announces
// itself to the K peers closest to its node ID — K messages of class
// stats.MsgControl, Kademlia's join lookup collapsed to its effect. Those
// peers insert the newcomer into the matching bucket if there is room;
// everyone else learns of it through maintenance refills.
func (k *Kademlia) Join(p netsim.PeerID, rng *rand.Rand) error {
	if k.Member(p) {
		return fmt.Errorf("dht: peer %d is already a kademlia member", p)
	}
	n := &kadNode{id: p, nodeKey: kadNodeKey(p)}
	for _, q := range k.active {
		b := bucketOf(n.nodeKey ^ k.nodes[q].nodeKey)
		if len(n.buckets[b]) < k.cfg.K {
			n.buckets[b] = append(n.buckets[b], q)
		}
	}
	k.nodes[p] = n
	k.active = append(k.active, p)
	for _, q := range k.ReplicaGroup(keyspace.Key(n.nodeKey)) {
		if q == p {
			continue
		}
		qn := k.nodes[q]
		b := bucketOf(qn.nodeKey ^ n.nodeKey)
		if len(qn.buckets[b]) < k.cfg.K {
			qn.buckets[b] = append(qn.buckets[b], p)
		}
	}
	k.net.Send(stats.MsgControl, int64(k.cfg.K))
	return nil
}

// Leave removes peer p, crash-style: no messages; its contacts elsewhere
// go stale and are collected by Maintain. The last member cannot leave.
func (k *Kademlia) Leave(p netsim.PeerID) error {
	if !k.Member(p) {
		return fmt.Errorf("dht: peer %d is not a kademlia member", p)
	}
	if len(k.active) == 1 {
		return fmt.Errorf("dht: peer %d is the last kademlia member and cannot leave", p)
	}
	delete(k.nodes, p)
	for i, m := range k.active {
		if m == p {
			k.active[i] = k.active[len(k.active)-1]
			k.active = k.active[:len(k.active)-1]
			break
		}
	}
	return nil
}

// refill looks for a random online peer whose distance to n falls in
// bucket b and who is not already a contact there.
func (k *Kademlia) refill(n *kadNode, b int, rng *rand.Rand) (netsim.PeerID, bool) {
	have := make(map[netsim.PeerID]bool, len(n.buckets[b]))
	for _, p := range n.buckets[b] {
		have[p] = true
	}
	for tries := 0; tries < 48; tries++ {
		q := k.active[rng.IntN(len(k.active))]
		if q == n.id || have[q] || !k.net.Online(q) {
			continue
		}
		if bucketOf(n.nodeKey^k.nodes[q].nodeKey) == b {
			return q, true
		}
	}
	return 0, false
}
