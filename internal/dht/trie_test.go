package dht

import (
	"math/rand/v2"
	"testing"

	"pdht/internal/keyspace"
	"pdht/internal/netsim"
	"pdht/internal/stats"
)

// Compile-time interface checks.
var (
	_ Index = (*Trie)(nil)
	_ Index = (*Ring)(nil)
)

func activeRange(n int) []netsim.PeerID {
	out := make([]netsim.PeerID, n)
	for i := range out {
		out[i] = netsim.PeerID(i)
	}
	return out
}

func newTestTrie(t *testing.T, nNet, nActive int, cfg TrieConfig, seed uint64) (*Trie, *netsim.Network, *rand.Rand) {
	t.Helper()
	net := netsim.New(nNet)
	rng := rand.New(rand.NewPCG(seed, seed^0xabcdef))
	trie, err := NewTrie(net, activeRange(nActive), cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	return trie, net, rng
}

func TestTrieConstruction(t *testing.T) {
	trie, _, _ := newTestTrie(t, 2000, 1024, TrieConfig{GroupSize: 8, Env: 0.1}, 1)
	// 1024/8 = 128 leaves → depth 7.
	if trie.Depth() != 7 {
		t.Errorf("Depth = %d, want 7", trie.Depth())
	}
	if len(trie.leaves) != 128 {
		t.Errorf("leaves = %d, want 128", len(trie.leaves))
	}
	for i, members := range trie.leaves {
		if len(members) != 8 {
			t.Errorf("leaf %d has %d members, want 8", i, len(members))
		}
	}
	if len(trie.ActivePeers()) != 1024 {
		t.Errorf("ActivePeers = %d", len(trie.ActivePeers()))
	}
	if trie.RoutingEntries() == 0 {
		t.Error("no routing entries built")
	}
}

func TestTrieConfigValidation(t *testing.T) {
	net := netsim.New(10)
	rng := rand.New(rand.NewPCG(1, 2))
	cases := []struct {
		active []netsim.PeerID
		cfg    TrieConfig
	}{
		{activeRange(10), TrieConfig{GroupSize: 0}},
		{nil, TrieConfig{GroupSize: 5}},
		{activeRange(10), TrieConfig{GroupSize: 5, Env: 1.5}},
		{activeRange(10), TrieConfig{GroupSize: 5, Env: -0.1}},
		{activeRange(10), TrieConfig{GroupSize: 5, Redundancy: -1}},
	}
	for i, c := range cases {
		if _, err := NewTrie(net, c.active, c.cfg, rng); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestTrieSingleLeafDegenerate(t *testing.T) {
	trie, _, rng := newTestTrie(t, 20, 10, TrieConfig{GroupSize: 8, Env: 0.1}, 2)
	if trie.Depth() != 0 {
		t.Fatalf("Depth = %d, want 0 for 10 peers with group size 8", trie.Depth())
	}
	key := keyspace.HashString("anything")
	if got := len(trie.ReplicaGroup(key)); got != 10 {
		t.Errorf("single leaf should hold everyone, got %d", got)
	}
	res := trie.Route(0, key, rng)
	if !res.OK {
		t.Fatal("route failed in a single-leaf trie")
	}
	if res.Hops != 0 {
		t.Errorf("active peer in a single-leaf trie should be responsible itself, hops = %d", res.Hops)
	}
}

func TestTrieReplicaGroupMatchesKeyPrefix(t *testing.T) {
	trie, _, _ := newTestTrie(t, 1000, 512, TrieConfig{GroupSize: 8, Env: 0.1}, 3)
	rng := rand.New(rand.NewPCG(99, 100))
	for i := 0; i < 200; i++ {
		key := keyspace.Key(rng.Uint64())
		leaf := trie.leafOf(key)
		group := trie.ReplicaGroup(key)
		if len(group) == 0 {
			t.Fatal("empty replica group")
		}
		for _, p := range group {
			if trie.state[trie.peers[p]].leaf != leaf {
				t.Fatalf("peer %d in group for key %s but lives in leaf %d ≠ %d",
					p, key, trie.state[trie.peers[p]].leaf, leaf)
			}
		}
	}
}

func TestTrieRouteNoChurn(t *testing.T) {
	trie, net, rng := newTestTrie(t, 1200, 1024, TrieConfig{GroupSize: 8, Env: 0.1}, 4)
	var totalHops int
	const lookups = 500
	for i := 0; i < lookups; i++ {
		from := netsim.PeerID(rng.IntN(1024))
		key := keyspace.Key(rng.Uint64())
		res := trie.Route(from, key, rng)
		if !res.OK {
			t.Fatalf("lookup %d failed without churn", i)
		}
		if res.Hops > trie.Depth() {
			t.Fatalf("lookup took %d hops, depth is %d", res.Hops, trie.Depth())
		}
		// The peer reached must actually be responsible.
		found := false
		for _, p := range trie.ReplicaGroup(key) {
			if p == res.Responsible {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("route terminated at non-responsible peer %d", res.Responsible)
		}
		totalHops += res.Hops
	}
	// Expected hops ≈ depth/2 = 3.5 (eq. 7's ½·log₂ shape).
	mean := float64(totalHops) / lookups
	if mean < 2 || mean > 5 {
		t.Errorf("mean hops = %v, want ≈ depth/2 = 3.5", mean)
	}
	if net.Counters().Get(stats.MsgIndexLookup) != int64(totalHops) {
		t.Errorf("counters %d ≠ hops %d",
			net.Counters().Get(stats.MsgIndexLookup), totalHops)
	}
}

func TestTrieRouteFromOutsider(t *testing.T) {
	// Peers 512.. are not DHT members; their lookups pay the extra entry
	// hop the paper prescribes for non-participants.
	trie, _, rng := newTestTrie(t, 1024, 512, TrieConfig{GroupSize: 8, Env: 0.1}, 5)
	res := trie.Route(netsim.PeerID(700), keyspace.Key(rng.Uint64()), rng)
	if !res.OK {
		t.Fatal("outsider lookup failed")
	}
	if res.Hops < 1 {
		t.Error("outsider lookup cannot be free")
	}
}

func TestTrieRouteUnderChurn(t *testing.T) {
	trie, net, rng := newTestTrie(t, 1024, 1024, TrieConfig{GroupSize: 16, Env: 0.1}, 6)
	// Take 30% of peers offline.
	for i := 0; i < 1024; i++ {
		if rng.Float64() < 0.3 {
			net.SetOnline(netsim.PeerID(i), false)
		}
	}
	succeeded := 0
	const lookups = 300
	for i := 0; i < lookups; i++ {
		from, ok := net.RandomOnline(rng)
		if !ok {
			t.Fatal("network died")
		}
		key := keyspace.Key(rng.Uint64())
		res := trie.Route(from, key, rng)
		if res.OK {
			if !net.Online(res.Responsible) {
				t.Fatal("route terminated at an offline peer")
			}
			succeeded++
		}
	}
	// With 16-peer groups and 30% churn, a whole group being offline is
	// essentially impossible; routing should nearly always succeed.
	if succeeded < lookups*95/100 {
		t.Errorf("only %d/%d lookups succeeded under 30%% churn", succeeded, lookups)
	}
}

func TestTrieRouteAllOffline(t *testing.T) {
	trie, net, rng := newTestTrie(t, 64, 64, TrieConfig{GroupSize: 8, Env: 0.1}, 7)
	for i := 0; i < 64; i++ {
		net.SetOnline(netsim.PeerID(i), false)
	}
	res := trie.Route(0, keyspace.HashString("k"), rng)
	if res.OK {
		t.Error("route succeeded on a dead network")
	}
}

func TestTrieMaintenanceProbesAndRepairs(t *testing.T) {
	trie, net, rng := newTestTrie(t, 512, 512, TrieConfig{GroupSize: 8, Env: 1.0}, 8)
	// Kill 20% of peers; with env=1 every entry of every online peer is
	// probed, so every stale entry is found.
	for i := 0; i < 512; i++ {
		if rng.Float64() < 0.2 {
			net.SetOnline(netsim.PeerID(i), false)
		}
	}
	ms := trie.Maintain(rng)
	if ms.Probes == 0 {
		t.Fatal("no probes with env=1")
	}
	if ms.Stale == 0 {
		t.Fatal("no stale entries found despite 20% churn")
	}
	if ms.Repaired < ms.Stale*9/10 {
		t.Errorf("repaired %d of %d stale entries", ms.Repaired, ms.Stale)
	}
	if got := net.Counters().Get(stats.MsgMaintenance); got != int64(ms.Probes) {
		t.Errorf("maintenance counter %d ≠ probes %d", got, ms.Probes)
	}
	// A second pass finds (almost) nothing stale: repairs stuck.
	ms2 := trie.Maintain(rng)
	if ms2.Stale > ms.Stale/10 {
		t.Errorf("second pass still found %d stale entries", ms2.Stale)
	}
}

func TestTrieMaintenanceRateScalesWithEnv(t *testing.T) {
	probesAt := func(env float64) int {
		trie, _, rng := newTestTrie(t, 256, 256, TrieConfig{GroupSize: 8, Env: env}, 9)
		total := 0
		for r := 0; r < 20; r++ {
			total += trie.Maintain(rng).Probes
		}
		return total
	}
	lo, hi := probesAt(0.05), probesAt(0.5)
	if lo >= hi {
		t.Errorf("probes: env=0.05 gave %d, env=0.5 gave %d", lo, hi)
	}
	// Expectation: probes/round ≈ env · entries.
	trie, _, rng := newTestTrie(t, 256, 256, TrieConfig{GroupSize: 8, Env: 0.25}, 10)
	entries := trie.RoutingEntries()
	total := 0
	const rounds = 40
	for r := 0; r < rounds; r++ {
		total += trie.Maintain(rng).Probes
	}
	got := float64(total) / rounds
	want := 0.25 * float64(entries)
	if got < want*0.8 || got > want*1.2 {
		t.Errorf("probes/round = %v, want ≈ %v", got, want)
	}
}

func TestTrieOfflinePeersDoNotProbe(t *testing.T) {
	trie, net, rng := newTestTrie(t, 64, 64, TrieConfig{GroupSize: 8, Env: 1.0}, 11)
	for i := 0; i < 64; i++ {
		net.SetOnline(netsim.PeerID(i), false)
	}
	if ms := trie.Maintain(rng); ms.Probes != 0 {
		t.Errorf("offline peers sent %d probes", ms.Probes)
	}
}

func TestTrieRouteDeterministic(t *testing.T) {
	run := func() int {
		trie, _, rng := newTestTrie(t, 512, 512, TrieConfig{GroupSize: 8, Env: 0.1}, 12)
		hops := 0
		for i := 0; i < 100; i++ {
			res := trie.Route(netsim.PeerID(i), keyspace.Key(uint64(i)*0x9e3779b97f4a7c15), rng)
			hops += res.Hops
		}
		return hops
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same seed, different hop totals: %d vs %d", a, b)
	}
}

func TestTrieSubtreeRangeInvariants(t *testing.T) {
	trie, _, _ := newTestTrie(t, 600, 512, TrieConfig{GroupSize: 8, Env: 0.1}, 13)
	d := trie.Depth() // 6 → 64 leaves
	for leaf := 0; leaf < len(trie.leaves); leaf++ {
		for lvl := 0; lvl < d; lvl++ {
			lo, hi := trie.subtreeRange(leaf, lvl)
			if lo < 0 || hi > len(trie.leaves) || lo >= hi {
				t.Fatalf("subtreeRange(%d,%d) = [%d,%d)", leaf, lvl, lo, hi)
			}
			if leaf >= lo && leaf < hi {
				t.Fatalf("complementary subtree of leaf %d at level %d contains itself", leaf, lvl)
			}
			// All leaves in the range diverge from leaf exactly at lvl.
			for l := lo; l < hi; l++ {
				if got := trie.divergenceLevel(leaf, l); got != lvl {
					t.Fatalf("leaf %d vs %d: divergence %d, want %d", leaf, l, got, lvl)
				}
			}
		}
	}
}
