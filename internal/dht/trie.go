package dht

import (
	"fmt"
	"math/bits"
	"math/rand/v2"

	"pdht/internal/keyspace"
	"pdht/internal/netsim"
	"pdht/internal/stats"
)

// TrieConfig parameterizes the P-Grid-style trie DHT.
type TrieConfig struct {
	// GroupSize is the target number of peers sharing each leaf path —
	// the replica group. The paper replicates the index with factor repl,
	// so GroupSize is normally set to repl.
	GroupSize int
	// Redundancy is how many references each routing level keeps to the
	// complementary subtree. More refs survive churn longer at the price
	// of more probing. Default 3.
	Redundancy int
	// Env is the probability that an entry is probed in a given round —
	// the paper's env constant (eq. 8), 1/14 in the evaluated scenario.
	Env float64
}

func (c *TrieConfig) setDefaults() {
	if c.Redundancy == 0 {
		c.Redundancy = 3
	}
}

func (c TrieConfig) validate(nActive int) error {
	if c.GroupSize < 1 {
		return fmt.Errorf("dht: GroupSize %d must be positive", c.GroupSize)
	}
	if nActive < 1 {
		return fmt.Errorf("dht: trie needs at least one active peer")
	}
	if c.Redundancy < 1 {
		return fmt.Errorf("dht: Redundancy %d must be positive", c.Redundancy)
	}
	if c.Env < 0 || c.Env > 1 {
		return fmt.Errorf("dht: Env %v must be a probability", c.Env)
	}
	return nil
}

// trieRef is one routing-table entry: a peer believed to cover the
// complementary subtree at some level.
type trieRef struct {
	peer netsim.PeerID
}

// triePeer is the per-peer routing state.
type triePeer struct {
	id   netsim.PeerID
	leaf int
	// table[i] holds refs to peers whose path agrees with ours on the
	// first i bits and differs at bit i.
	table [][]trieRef
}

// Trie is a P-Grid-style binary-trie DHT: active peers share leaf paths of
// a balanced trie of depth Depth(); a peer is responsible for every key
// whose first Depth() bits equal its path. Routing resolves one bit per
// hop, giving the logarithmic search cost of eq. 7.
type Trie struct {
	net    *netsim.Network
	cfg    TrieConfig
	active []netsim.PeerID
	depth  int
	leaves [][]netsim.PeerID     // leaf index → member peers
	peers  map[netsim.PeerID]int // active peer → index into state
	state  []triePeer
}

// NewTrie builds a balanced trie over the given active peers. The depth is
// the largest d with 2^d leaves of at least GroupSize peers each, so every
// leaf is a full replica group; peers are dealt to leaves round-robin.
func NewTrie(net *netsim.Network, active []netsim.PeerID, cfg TrieConfig, rng *rand.Rand) (*Trie, error) {
	cfg.setDefaults()
	if err := cfg.validate(len(active)); err != nil {
		return nil, err
	}
	nLeaves := len(active) / cfg.GroupSize
	depth := 0
	if nLeaves >= 2 {
		depth = bits.Len(uint(nLeaves)) - 1 // floor(log2)
	}
	nLeaves = 1 << depth

	t := &Trie{
		net:    net,
		cfg:    cfg,
		active: append([]netsim.PeerID(nil), active...),
		depth:  depth,
		leaves: make([][]netsim.PeerID, nLeaves),
		peers:  make(map[netsim.PeerID]int, len(active)),
		state:  make([]triePeer, 0, len(active)),
	}
	for i, p := range t.active {
		leaf := i % nLeaves
		t.leaves[leaf] = append(t.leaves[leaf], p)
		t.peers[p] = len(t.state)
		t.state = append(t.state, triePeer{id: p, leaf: leaf})
	}
	for i := range t.state {
		t.buildTable(&t.state[i], rng)
	}
	return t, nil
}

// buildTable fills a peer's routing table: Redundancy random refs per level
// into the complementary subtree.
func (t *Trie) buildTable(tp *triePeer, rng *rand.Rand) {
	tp.table = make([][]trieRef, t.depth)
	for lvl := 0; lvl < t.depth; lvl++ {
		lo, hi := t.subtreeRange(tp.leaf, lvl)
		span := hi - lo
		want := t.cfg.Redundancy
		refs := make([]trieRef, 0, want)
		seen := make(map[netsim.PeerID]bool, want)
		// The complementary subtree spans span leaves with GroupSize
		// peers each; sample refs uniformly from it.
		for tries := 0; len(refs) < want && tries < 16*want; tries++ {
			leaf := lo + rng.IntN(span)
			members := t.leaves[leaf]
			p := members[rng.IntN(len(members))]
			if seen[p] || p == tp.id {
				continue
			}
			seen[p] = true
			refs = append(refs, trieRef{peer: p})
		}
		tp.table[lvl] = refs
	}
}

// subtreeRange returns the half-open leaf range [lo, hi) of the subtree
// complementary to leaf at the given level: the leaves agreeing with leaf
// on the first lvl bits and differing at bit lvl.
func (t *Trie) subtreeRange(leaf, lvl int) (lo, hi int) {
	// Bit lvl of the leaf index, counted from the most significant of
	// the depth bits.
	shift := t.depth - 1 - lvl
	flipped := leaf ^ (1 << shift)
	lo = flipped &^ ((1 << shift) - 1)
	return lo, lo + (1 << shift)
}

// Depth returns the trie depth: key bits resolved by routing.
func (t *Trie) Depth() int { return t.depth }

// leafOf returns the leaf responsible for key: its first depth bits.
func (t *Trie) leafOf(key keyspace.Key) int {
	if t.depth == 0 {
		return 0
	}
	return int(uint64(key) >> (keyspace.Bits - t.depth))
}

// ReplicaGroup implements Index.
func (t *Trie) ReplicaGroup(key keyspace.Key) []netsim.PeerID {
	return t.leaves[t.leafOf(key)]
}

// ActivePeers implements Index.
func (t *Trie) ActivePeers() []netsim.PeerID { return t.active }

// RoutingEntries implements Index.
func (t *Trie) RoutingEntries() int {
	total := 0
	for i := range t.state {
		for _, refs := range t.state[i].table {
			total += len(refs)
		}
	}
	return total
}

// Route implements Index: prefix routing, resolving at least one bit per
// hop. A query from a non-active peer first hops to a random online active
// peer (the entry point the paper requires non-participants to know).
func (t *Trie) Route(from netsim.PeerID, key keyspace.Key, rng *rand.Rand) RouteResult {
	res := RouteResult{}
	curIdx, okIdx := t.peers[from]
	if !okIdx || !t.net.Online(from) {
		entry, ok := randomOnlineOf(t.net, t.active, rng)
		if !ok {
			return res
		}
		res.Hops++
		curIdx = t.peers[entry]
	}
	target := t.leafOf(key)
	// Each iteration either terminates at the responsible leaf or
	// forwards to a ref that agrees with the key on strictly more bits;
	// with a full routing table that is ≤ depth hops. Churn can force
	// detours through random re-entry, so a generous budget backstops
	// termination.
	budget := 4*t.depth + 8
	for hop := 0; hop < budget; hop++ {
		cur := &t.state[curIdx]
		if cur.leaf == target {
			res.OK = true
			res.Responsible = cur.id
			t.net.Send(stats.MsgIndexLookup, int64(res.Hops))
			return res
		}
		lvl := t.divergenceLevel(cur.leaf, target)
		next, ok := t.liveRef(cur, lvl, rng)
		if !ok {
			// Every ref for this level is offline: re-enter the
			// DHT somewhere else and keep routing. This is the
			// retry a real P-Grid peer performs when its
			// routing table is stale.
			entry, okEntry := randomOnlineOf(t.net, t.active, rng)
			if !okEntry {
				break
			}
			res.Hops++
			curIdx = t.peers[entry]
			continue
		}
		res.Hops++
		curIdx = t.peers[next]
	}
	t.net.Send(stats.MsgIndexLookup, int64(res.Hops))
	return res
}

// divergenceLevel returns the first bit (from the most significant of the
// depth bits) where two leaf indices differ.
func (t *Trie) divergenceLevel(a, b int) int {
	diff := uint(a ^ b)
	// Highest set bit of diff, as a level counted from the top.
	return t.depth - bits.Len(diff)
}

// liveRef returns a usable ref at the given level — online and still a
// trie member (Leave can orphan refs just like going offline can stale
// them) — preferring a uniformly random one.
func (t *Trie) liveRef(tp *triePeer, lvl int, rng *rand.Rand) (netsim.PeerID, bool) {
	refs := tp.table[lvl]
	var pick netsim.PeerID
	count := 0
	for _, r := range refs {
		if !t.net.Online(r.peer) {
			continue
		}
		if _, member := t.peers[r.peer]; !member {
			continue
		}
		count++
		if rng.IntN(count) == 0 {
			pick = r.peer
		}
	}
	if count == 0 {
		return 0, false
	}
	return pick, true
}

// Maintain implements Index: every online active peer probes each routing
// entry with probability Env; probes that hit an offline peer trigger a
// (message-free, piggybacked) repair — the entry is re-pointed at a random
// peer of the same complementary subtree.
func (t *Trie) Maintain(rng *rand.Rand) MaintenanceStats {
	var ms MaintenanceStats
	for i := range t.state {
		tp := &t.state[i]
		if !t.net.Online(tp.id) {
			continue
		}
		for lvl := range tp.table {
			for j := range tp.table[lvl] {
				if rng.Float64() >= t.cfg.Env {
					continue
				}
				ms.Probes++
				ref := &tp.table[lvl][j]
				if _, member := t.peers[ref.peer]; member && t.net.Online(ref.peer) {
					continue
				}
				ms.Stale++
				if p, ok := t.repairTarget(tp, lvl, rng); ok {
					ref.peer = p
					ms.Repaired++
				}
			}
		}
	}
	t.net.Send(stats.MsgMaintenance, int64(ms.Probes))
	return ms
}

// repairTarget picks a random online peer in the complementary subtree at
// the given level.
func (t *Trie) repairTarget(tp *triePeer, lvl int, rng *rand.Rand) (netsim.PeerID, bool) {
	lo, hi := t.subtreeRange(tp.leaf, lvl)
	span := hi - lo
	for tries := 0; tries < 32; tries++ {
		leaf := lo + rng.IntN(span)
		members := t.leaves[leaf]
		p := members[rng.IntN(len(members))]
		if p != tp.id && t.net.Online(p) {
			return p, true
		}
	}
	return 0, false
}
