package transport

import (
	"context"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"
)

// A dial to a bound-then-released port must classify as ErrRefused: the
// host answered, nothing listens. The refinement still matches
// ErrUnreachable, so every existing "peer did not answer" path holds.
func TestDialRefusedKind(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	_, err = NewTCP().Dial(addr)
	if err == nil {
		t.Fatal("dial to closed port succeeded")
	}
	if !errors.Is(err, ErrRefused) {
		t.Fatalf("err = %v, want ErrRefused", err)
	}
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("ErrRefused must still match ErrUnreachable: %v", err)
	}
	if errors.Is(err, ErrDialTimeout) {
		t.Fatalf("a refusal must not classify as a timeout: %v", err)
	}
}

// A dial whose deadline expires must classify as ErrDialTimeout — the SYN
// blackhole shape of a partition or dead host. An expired dialer deadline
// exercises the timeout path without depending on unroutable addresses.
func TestDialTimeoutKind(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	tr := NewTCP()
	tr.Dialer.Deadline = time.Now().Add(-time.Second)
	_, err = tr.Dial(ln.Addr().String())
	if err == nil {
		t.Fatal("dial with expired deadline succeeded")
	}
	if !errors.Is(err, ErrDialTimeout) {
		t.Fatalf("err = %v, want ErrDialTimeout", err)
	}
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("ErrDialTimeout must still match ErrUnreachable: %v", err)
	}
	if errors.Is(err, ErrRefused) {
		t.Fatalf("a timeout must not classify as a refusal: %v", err)
	}
}

func TestDialErrorKindsAreDistinct(t *testing.T) {
	if errors.Is(ErrDialTimeout, ErrRefused) || errors.Is(ErrRefused, ErrDialTimeout) {
		t.Fatal("the two dial error kinds must not match each other")
	}
	if !errors.Is(ErrDialTimeout, ErrUnreachable) || !errors.Is(ErrRefused, ErrUnreachable) {
		t.Fatal("both kinds must refine ErrUnreachable")
	}
}

// TestTCPReuseAfterHealedPartition is the pool-shape regression: a client
// whose peer dies mid-flight fails permanently (terminal error), and a
// fresh dial to the SAME address after the peer returns must succeed —
// the re-dial path a connection pool takes after a partition heals. Before
// the error-kind split, both halves of that sequence reported the same
// undifferentiated failure, hiding whether the peer was gone or merely
// restarting.
func TestTCPReuseAfterHealedPartition(t *testing.T) {
	tr := NewTCP()
	var calls atomic.Int64
	echo := func(req Request) Response {
		calls.Add(1)
		return Response{OK: true, Value: req.Key}
	}
	srv, err := tr.Serve("127.0.0.1:0", echo)
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()

	cl, err := tr.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := cl.Call(ctx, Request{Op: OpQuery, Key: 1}); err != nil {
		t.Fatalf("healthy call failed: %v", err)
	}

	// Partition: the peer's endpoint dies. The pooled client becomes
	// terminally broken — every further call on it must fail fast.
	srv.Close()
	if _, err := cl.Call(ctx, Request{Op: OpQuery, Key: 2}); err == nil {
		t.Fatal("call on a dead connection succeeded")
	}
	if _, err := cl.Call(ctx, Request{Op: OpQuery, Key: 3}); err == nil {
		t.Fatal("dead pooled client must stay failed until dropped")
	}
	cl.Close()

	// While the peer is down, a re-dial classifies as a refusal.
	if _, err := tr.Dial(addr); !errors.Is(err, ErrRefused) {
		t.Fatalf("dial to downed peer: err = %v, want ErrRefused", err)
	}

	// Heal: the peer comes back on the same address; a fresh dial and
	// call must work — the pool's drop-then-redial path end to end.
	srv2, err := tr.Serve(addr, echo)
	if err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	defer srv2.Close()
	cl2, err := tr.Dial(addr)
	if err != nil {
		t.Fatalf("re-dial after heal: %v", err)
	}
	defer cl2.Close()
	if _, err := cl2.Call(ctx, Request{Op: OpQuery, Key: 4}); err != nil {
		t.Fatalf("call after heal failed: %v", err)
	}
	if calls.Load() < 2 {
		t.Fatalf("server saw %d calls, want ≥ 2", calls.Load())
	}
}
