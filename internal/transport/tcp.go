package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// TCP is the socket transport: length-prefixed JSON frames (wire.go) over
// one TCP connection per dialed peer. Concurrent Calls from any number of
// goroutines are multiplexed on that connection and matched back to their
// callers by frame ID, so a slow request does not block an unrelated one.
type TCP struct {
	// Dialer customizes outbound connections (timeouts, local address).
	// The zero value is ready to use.
	Dialer net.Dialer

	// metrics, when set by Instrument, hooks the byte counters into every
	// connection this transport opens or accepts. Atomic because one TCP
	// value may be instrumented while another goroutine dials through it.
	metrics atomic.Pointer[Metrics]
}

// countConn wraps conn with the byte counters when the transport is
// instrumented; otherwise it returns conn untouched.
func (t *TCP) countConn(conn net.Conn) net.Conn {
	m := t.metrics.Load()
	if m == nil {
		return conn
	}
	return countingConn{Conn: conn, in: m.bytesIn, out: m.bytesOut}
}

// NewTCP returns the socket transport.
func NewTCP() *TCP { return &TCP{} }

// Serve binds addr ("" means "127.0.0.1:0") and serves connections until
// Close. Each accepted connection gets a reader goroutine; each request on
// it gets a handler goroutine, so handlers may themselves issue outbound
// Calls without deadlocking the connection.
func (t *TCP) Serve(addr string, h Handler) (Server, error) {
	if h == nil {
		return nil, fmt.Errorf("transport: nil handler")
	}
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &tcpServer{ln: ln, handler: h, conns: make(map[net.Conn]bool), wrap: t.countConn}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// defaultDialTimeout bounds Dial when the Dialer has no timeout of its
// own: a SYN-blackholed peer must fail in seconds, not the OS connect
// timeout (minutes), because callers treat a dial failure as "peer did not
// answer" and fall back.
const defaultDialTimeout = 5 * time.Second

// Dial connects to addr. The connection is established eagerly so that a
// dead peer surfaces here rather than at the first Call.
func (t *TCP) Dial(addr string) (Client, error) {
	d := t.Dialer
	if d.Timeout == 0 {
		d.Timeout = defaultDialTimeout
	}
	conn, err := d.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", classifyDialError(err), addr, err)
	}
	c := &tcpClient{conn: t.countConn(conn), pending: make(map[uint64]chan Response)}
	go c.readLoop()
	return c, nil
}

// classifyDialError maps a net dial failure onto the transport's error
// vocabulary: timeouts (SYN blackhole — partition or dead host) become
// ErrDialTimeout, refusals (host up, port closed) ErrRefused, anything
// else plain ErrUnreachable. All three match ErrUnreachable in errors.Is.
func classifyDialError(err error) error {
	var nerr net.Error
	if errors.As(err, &nerr) && nerr.Timeout() {
		return ErrDialTimeout
	}
	if errors.Is(err, syscall.ECONNREFUSED) {
		return ErrRefused
	}
	return ErrUnreachable
}

// tcpServer is one listening endpoint.
type tcpServer struct {
	ln      net.Listener
	handler Handler
	wrap    func(net.Conn) net.Conn // byte-counting hook; identity when uninstrumented
	wg      sync.WaitGroup

	mu     sync.Mutex
	conns  map[net.Conn]bool
	closed bool
}

func (s *tcpServer) Addr() string { return s.ln.Addr().String() }

func (s *tcpServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// serveConn reads frames off one connection and dispatches each request to
// its own goroutine. Responses are written under a per-connection mutex so
// concurrent handlers cannot interleave frames.
func (s *tcpServer) serveConn(raw net.Conn) {
	defer s.wg.Done()
	defer func() {
		raw.Close()
		s.mu.Lock()
		delete(s.conns, raw)
		s.mu.Unlock()
	}()
	conn := s.wrap(raw) // byte counting; raw stays the map key
	var writeMu sync.Mutex
	for {
		f, err := readFrame(conn)
		if err != nil {
			return // EOF, reset, or garbage: drop the connection
		}
		if f.Req == nil {
			continue // not a request; a confused peer, ignore
		}
		s.wg.Add(1)
		go func(f frame) {
			defer s.wg.Done()
			resp := s.handler(*f.Req)
			writeMu.Lock()
			err := writeFrame(conn, frame{ID: f.ID, Resp: &resp})
			writeMu.Unlock()
			if err != nil {
				conn.Close() // peer gone; reader loop will exit
			}
		}(f)
	}
}

// Close stops accepting, closes open connections, and waits for in-flight
// handlers to return.
func (s *tcpServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return nil
}

// tcpClient multiplexes calls over one connection.
type tcpClient struct {
	conn    net.Conn
	writeMu sync.Mutex // serializes writeFrame

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan Response
	err     error // terminal error, set once the read loop exits
}

// readLoop routes response frames to their waiting callers. On connection
// death every outstanding and future call fails with the terminal error.
func (c *tcpClient) readLoop() {
	for {
		f, err := readFrame(c.conn)
		if err != nil {
			c.fail(fmt.Errorf("%w: %v", ErrUnreachable, err))
			return
		}
		if f.Resp == nil {
			continue
		}
		c.mu.Lock()
		ch, ok := c.pending[f.ID]
		delete(c.pending, f.ID)
		c.mu.Unlock()
		if ok {
			ch <- *f.Resp // buffered; never blocks
		}
	}
}

// fail marks the client dead and unblocks every waiter.
func (c *tcpClient) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	pending := c.pending
	c.pending = make(map[uint64]chan Response)
	c.mu.Unlock()
	for _, ch := range pending {
		close(ch)
	}
}

func (c *tcpClient) Call(ctx context.Context, req Request) (Response, error) {
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return Response{}, err
	}
	c.nextID++
	id := c.nextID
	ch := make(chan Response, 1)
	c.pending[id] = ch
	c.mu.Unlock()

	c.writeMu.Lock()
	err := writeFrame(c.conn, frame{ID: id, Req: &req})
	c.writeMu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		c.fail(fmt.Errorf("%w: %v", ErrUnreachable, err))
		return Response{}, ErrUnreachable
	}

	select {
	case resp, ok := <-ch:
		if !ok {
			c.mu.Lock()
			err := c.err
			c.mu.Unlock()
			if err == nil {
				err = ErrClosed
			}
			return Response{}, err
		}
		return resp, nil
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return Response{}, ctx.Err()
	}
}

// Close tears the connection down; outstanding calls fail.
func (c *tcpClient) Close() error {
	err := c.conn.Close()
	c.fail(ErrClosed)
	return err
}
