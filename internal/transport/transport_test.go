package transport

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"
)

// echoHandler answers every request with a response derived from it, so a
// test can verify the response reached the right caller.
func echoHandler(req Request) Response {
	return Response{OK: true, Found: req.Op == OpQuery, Value: req.Key + 1}
}

// transports enumerates the implementations under test. Every behavior in
// this file must hold for both.
func transports(t *testing.T) map[string]Transport {
	t.Helper()
	return map[string]Transport{
		"memory": NewMemory(),
		"tcp":    NewTCP(),
	}
}

func TestCallRoundtrip(t *testing.T) {
	for name, tr := range transports(t) {
		t.Run(name, func(t *testing.T) {
			srv, err := tr.Serve("", echoHandler)
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()
			cl, err := tr.Dial(srv.Addr())
			if err != nil {
				t.Fatal(err)
			}
			defer cl.Close()
			resp, err := cl.Call(context.Background(), Request{Op: OpQuery, Key: 41})
			if err != nil {
				t.Fatal(err)
			}
			if !resp.OK || !resp.Found || resp.Value != 42 {
				t.Fatalf("resp = %+v, want OK found value 42", resp)
			}
		})
	}
}

// TestConcurrentCallsCorrelate drives many goroutines through one client
// and checks every caller gets its own answer — the request/response
// correlation the TCP mux exists for. Run with -race in CI.
func TestConcurrentCallsCorrelate(t *testing.T) {
	for name, tr := range transports(t) {
		t.Run(name, func(t *testing.T) {
			srv, err := tr.Serve("", echoHandler)
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()
			cl, err := tr.Dial(srv.Addr())
			if err != nil {
				t.Fatal(err)
			}
			defer cl.Close()

			const callers, callsEach = 16, 50
			var wg sync.WaitGroup
			errs := make(chan error, callers)
			for g := 0; g < callers; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < callsEach; i++ {
						key := uint64(g*1000 + i)
						resp, err := cl.Call(context.Background(), Request{Op: OpQuery, Key: key})
						if err != nil {
							errs <- err
							return
						}
						if resp.Value != key+1 {
							errs <- fmt.Errorf("caller %d: got value %d for key %d", g, resp.Value, key)
							return
						}
					}
				}(g)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
		})
	}
}

func TestUnreachablePeer(t *testing.T) {
	for name, tr := range transports(t) {
		t.Run(name, func(t *testing.T) {
			srv, err := tr.Serve("", echoHandler)
			if err != nil {
				t.Fatal(err)
			}
			addr := srv.Addr()
			cl, err := tr.Dial(addr)
			if err != nil {
				t.Fatal(err)
			}
			defer cl.Close()
			if _, err := cl.Call(context.Background(), Request{Op: OpQuery}); err != nil {
				t.Fatalf("call before close: %v", err)
			}
			srv.Close()
			// The established client must observe the peer's death.
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			if _, err := cl.Call(ctx, Request{Op: OpQuery}); err == nil {
				t.Fatal("call to closed endpoint succeeded")
			}
			// A fresh dial+call must fail too (memory dials lazily, so
			// the error may surface at Call instead of Dial).
			if cl2, err := tr.Dial(addr); err == nil {
				ctx2, cancel2 := context.WithTimeout(context.Background(), 2*time.Second)
				defer cancel2()
				if _, err := cl2.Call(ctx2, Request{Op: OpQuery}); err == nil {
					t.Fatal("dial+call to closed endpoint succeeded")
				}
				cl2.Close()
			}
		})
	}
}

func TestClosedClient(t *testing.T) {
	for name, tr := range transports(t) {
		t.Run(name, func(t *testing.T) {
			srv, err := tr.Serve("", echoHandler)
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()
			cl, err := tr.Dial(srv.Addr())
			if err != nil {
				t.Fatal(err)
			}
			cl.Close()
			if _, err := cl.Call(context.Background(), Request{Op: OpQuery}); err == nil {
				t.Fatal("call on closed client succeeded")
			}
		})
	}
}

func TestServeRejectsNilHandler(t *testing.T) {
	for name, tr := range transports(t) {
		t.Run(name, func(t *testing.T) {
			if _, err := tr.Serve("", nil); err == nil {
				t.Fatal("Serve(nil handler) succeeded")
			}
		})
	}
}

func TestMemoryAddressCollision(t *testing.T) {
	m := NewMemory()
	srv, err := m.Serve("a", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Serve("a", echoHandler); err == nil {
		t.Fatal("second Serve on same address succeeded")
	}
	// After closing, the name is free again — churn restart semantics.
	srv.Close()
	if _, err := m.Serve("a", echoHandler); err != nil {
		t.Fatalf("Serve after Close: %v", err)
	}
}

func TestMemoryIsolation(t *testing.T) {
	m1, m2 := NewMemory(), NewMemory()
	srv, err := m1.Serve("shared", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := m2.Dial("shared")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Call(context.Background(), Request{}); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("cross-network call: err = %v, want ErrUnreachable", err)
	}
}

func TestFrameRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	in := frame{ID: 7, Req: &Request{Op: OpInsert, From: "n1", Key: 9, Value: 10, TTL: 30}}
	if err := writeFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.ID != 7 || out.Resp != nil || out.Req == nil || !reflect.DeepEqual(*out.Req, *in.Req) {
		t.Fatalf("roundtrip: got %+v", out)
	}
}

// TestBatchRoundtrip sends an OpBatch request through both transports and
// checks the per-item results survive the wire — including a per-item
// failure that must not disturb its neighbors (the partial-failure
// contract of the batched API).
func TestBatchRoundtrip(t *testing.T) {
	// The handler answers each item positionally: even keys are found,
	// odd keys miss, and a zero-TTL insert is refused per item.
	batchHandler := func(req Request) Response {
		if req.Op != OpBatch {
			return Response{Err: "want batch"}
		}
		results := make([]BatchResult, len(req.Batch))
		for i, it := range req.Batch {
			switch {
			case it.Op == OpInsert && it.TTL < 1:
				results[i] = BatchResult{Err: "insert without ttl"}
			case it.Op == OpQuery && it.Key%2 == 0:
				results[i] = BatchResult{OK: true, Found: true, Value: it.Key * 10}
			default:
				results[i] = BatchResult{OK: true}
			}
		}
		return Response{OK: true, Batch: results}
	}
	for name, tr := range transports(t) {
		t.Run(name, func(t *testing.T) {
			srv, err := tr.Serve("", batchHandler)
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()
			cl, err := tr.Dial(srv.Addr())
			if err != nil {
				t.Fatal(err)
			}
			defer cl.Close()
			resp, err := cl.Call(context.Background(), Request{Op: OpBatch, Batch: []BatchItem{
				{Op: OpQuery, Key: 2, TTL: 30},
				{Op: OpQuery, Key: 3},
				{Op: OpInsert, Key: 4, Value: 9}, // malformed: no TTL
				{Op: OpQuery, Key: 6},
			}})
			if err != nil {
				t.Fatal(err)
			}
			want := []BatchResult{
				{OK: true, Found: true, Value: 20},
				{OK: true},
				{Err: "insert without ttl"},
				{OK: true, Found: true, Value: 60},
			}
			if !resp.OK || !reflect.DeepEqual(resp.Batch, want) {
				t.Fatalf("batch results = %+v, want %+v", resp.Batch, want)
			}
		})
	}
}

// TestBatchCancellationMidCall cancels the context while an OpBatch call
// is in flight at a slow peer: the call must return promptly with the
// context's error on both transports instead of waiting the handler out.
func TestBatchCancellationMidCall(t *testing.T) {
	for name, tr := range transports(t) {
		t.Run(name, func(t *testing.T) {
			release := make(chan struct{})
			slow := func(req Request) Response {
				<-release
				return Response{OK: true, Batch: make([]BatchResult, len(req.Batch))}
			}
			srv, err := tr.Serve("", slow)
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()
			defer close(release) // let the in-flight handler finish
			cl, err := tr.Dial(srv.Addr())
			if err != nil {
				t.Fatal(err)
			}
			defer cl.Close()

			ctx, cancel := context.WithCancel(context.Background())
			go func() {
				time.Sleep(20 * time.Millisecond)
				cancel()
			}()
			start := time.Now()
			_, err = cl.Call(ctx, Request{Op: OpBatch, Batch: []BatchItem{{Op: OpQuery, Key: 1}}})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("cancelled call: err = %v, want context.Canceled", err)
			}
			if waited := time.Since(start); waited > time.Second {
				t.Fatalf("cancelled call returned after %v, want promptly", waited)
			}
		})
	}
}

func TestFrameLengthGuard(t *testing.T) {
	// A length prefix claiming 512 MiB must be rejected before any
	// allocation, not trusted.
	hostile := []byte{0x20, 0x00, 0x00, 0x00}
	if _, err := readFrame(bytes.NewReader(hostile)); err == nil {
		t.Fatal("oversized frame length accepted")
	}
}

// TestFanoutLegDeadlinesAreIndependent models the replica write fan-out
// (internal/replica.Fanout): one caller fires concurrent legs at several
// peers, each leg with its own context derived from the request's. A leg
// whose peer stalls must time out on ITS deadline without delaying or
// poisoning the legs to healthy peers — otherwise one dead replica would
// cost every write the full timeout.
func TestFanoutLegDeadlinesAreIndependent(t *testing.T) {
	for name, tr := range transports(t) {
		t.Run(name, func(t *testing.T) {
			release := make(chan struct{})
			stuck, err := tr.Serve("", func(req Request) Response {
				<-release // stalls until the test ends
				return Response{OK: true}
			})
			if err != nil {
				t.Fatal(err)
			}
			defer stuck.Close()
			defer close(release)
			healthy, err := tr.Serve("", echoHandler)
			if err != nil {
				t.Fatal(err)
			}
			defer healthy.Close()

			ctx := context.Background()
			type leg struct {
				resp Response
				err  error
				took time.Duration
			}
			results := make(map[string]leg)
			var mu sync.Mutex
			var wg sync.WaitGroup
			for _, addr := range []string{stuck.Addr(), healthy.Addr(), healthy.Addr()} {
				wg.Add(1)
				go func(addr string) {
					defer wg.Done()
					legCtx, cancel := context.WithTimeout(ctx, 150*time.Millisecond)
					defer cancel()
					cl, err := tr.Dial(addr)
					if err != nil {
						t.Error(err)
						return
					}
					defer cl.Close()
					start := time.Now()
					resp, err := cl.Call(legCtx, Request{Op: OpInsert, Key: 7, Value: 8, TTL: 9})
					mu.Lock()
					if _, dup := results[addr]; !dup || err == nil {
						results[addr] = leg{resp, err, time.Since(start)}
					}
					mu.Unlock()
				}(addr)
			}
			wg.Wait()

			if l := results[healthy.Addr()]; l.err != nil || !l.resp.OK {
				t.Fatalf("healthy leg = %+v / %v, want a clean response", l.resp, l.err)
			}
			l := results[stuck.Addr()]
			if l.err == nil {
				t.Fatalf("stuck leg returned %+v, want a deadline error", l.resp)
			}
			if !errors.Is(l.err, context.DeadlineExceeded) {
				t.Fatalf("stuck leg failed with %v, want context.DeadlineExceeded", l.err)
			}
			if l.took > 2*time.Second {
				t.Fatalf("stuck leg held its caller %v, want release at the 150ms leg deadline", l.took)
			}
		})
	}
}
