package transport

import (
	"context"
	"fmt"
	"sync"
)

// Memory is an in-process loopback transport: a registry of named endpoints
// whose handlers are invoked directly by Call (on a short-lived goroutine,
// so context cancellation abandons a slow call exactly like the TCP
// client). It gives the cluster tests real RPC semantics — including
// unreachable peers when an endpoint is killed and deadline expiry
// mid-call — with none of the framing nondeterminism of sockets.
//
// Each Memory value is its own isolated network; two clusters built on two
// Memory instances cannot see each other.
type Memory struct {
	mu       sync.Mutex
	handlers map[string]Handler
	nextAddr int
}

// NewMemory returns an empty loopback network.
func NewMemory() *Memory {
	return &Memory{handlers: make(map[string]Handler)}
}

// Serve registers a handler under addr. An empty addr is assigned a fresh
// "mem-N" name. Registering an address twice fails — a live endpoint holds
// its name until closed.
func (m *Memory) Serve(addr string, h Handler) (Server, error) {
	if h == nil {
		return nil, fmt.Errorf("transport: nil handler")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if addr == "" {
		addr = fmt.Sprintf("mem-%d", m.nextAddr)
		m.nextAddr++
	}
	if _, taken := m.handlers[addr]; taken {
		return nil, fmt.Errorf("transport: address %q already serving", addr)
	}
	m.handlers[addr] = h
	return &memServer{net: m, addr: addr}, nil
}

// Dial returns a client for addr. Dialing is lazy: the endpoint is looked
// up at each Call, so a client dialed before its peer serves — or kept
// across a peer's kill/restart — behaves like a real reconnecting client.
func (m *Memory) Dial(addr string) (Client, error) {
	return &memClient{net: m, addr: addr}, nil
}

// lookup returns the live handler for addr.
func (m *Memory) lookup(addr string) (Handler, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.handlers[addr]
	return h, ok
}

// memServer is one registered endpoint.
type memServer struct {
	net    *Memory
	addr   string
	closed sync.Once
}

func (s *memServer) Addr() string { return s.addr }

// Close deregisters the endpoint; subsequent Calls to it fail with
// ErrUnreachable, modeling a crashed peer.
func (s *memServer) Close() error {
	s.closed.Do(func() {
		s.net.mu.Lock()
		delete(s.net.handlers, s.addr)
		s.net.mu.Unlock()
	})
	return nil
}

// memClient calls one endpoint by name.
type memClient struct {
	net  *Memory
	addr string

	mu     sync.Mutex
	closed bool
}

func (c *memClient) Call(ctx context.Context, req Request) (Response, error) {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return Response{}, ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return Response{}, err
	}
	h, ok := c.net.lookup(c.addr)
	if !ok {
		return Response{}, fmt.Errorf("%w: %s", ErrUnreachable, c.addr)
	}
	// The handler runs on its own goroutine so cancellation can abandon a
	// slow call mid-flight — the same deadline semantics as the TCP
	// client. The handler keeps running to completion (as it would on a
	// real network: the server cannot tell the caller gave up); its
	// response is discarded.
	done := make(chan Response, 1)
	go func() { done <- h(req) }()
	select {
	case resp := <-done:
		return resp, nil
	case <-ctx.Done():
		return Response{}, ctx.Err()
	}
}

func (c *memClient) Close() error {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	return nil
}
