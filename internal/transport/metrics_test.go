package transport

import (
	"context"
	"strings"
	"testing"
	"time"

	"pdht/internal/obs"
)

// exerciseInstrumented runs a few calls through an instrumented transport
// and checks the per-op counters, latency histograms and in-flight gauge —
// the backend-independent part of the contract.
func exerciseInstrumented(t *testing.T, raw Transport) *obs.Registry {
	t.Helper()
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	tr := Instrument(raw, m)

	srv, err := tr.Serve("", func(req Request) Response {
		if req.Op == OpQuery {
			return Response{Found: true, Value: req.Key * 2}
		}
		return Response{OK: true}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := tr.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx := context.Background()
	for i := 0; i < 3; i++ {
		resp, err := c.Call(ctx, Request{Op: OpQuery, Key: 7})
		if err != nil || !resp.Found || resp.Value != 14 {
			t.Fatalf("query %d: resp %+v err %v", i, resp, err)
		}
	}
	if resp, err := c.Call(ctx, Request{Op: OpInsert, Key: 7, Value: 14}); err != nil || !resp.OK {
		t.Fatalf("insert: resp %+v err %v", resp, err)
	}

	if got := m.requests[opSlot(OpQuery)].Value(); got != 3 {
		t.Errorf("query requests = %d, want 3", got)
	}
	if got := m.served[opSlot(OpQuery)].Value(); got != 3 {
		t.Errorf("query served = %d, want 3", got)
	}
	if got := m.requests[opSlot(OpInsert)].Value(); got != 1 {
		t.Errorf("insert requests = %d, want 1", got)
	}
	if got := m.latency[opSlot(OpQuery)].Count(); got != 3 {
		t.Errorf("query latency count = %d, want 3", got)
	}
	if got := m.failures[opSlot(OpQuery)].Value(); got != 0 {
		t.Errorf("query failures = %d, want 0", got)
	}
	if got := m.inflight.Value(); got != 0 {
		t.Errorf("inflight after quiesce = %d, want 0", got)
	}
	return reg
}

func TestInstrumentMemory(t *testing.T) {
	reg := exerciseInstrumented(t, NewMemory())
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `pdht_transport_requests_total{op="query"} 3`) {
		t.Errorf("exposition missing per-op counter:\n%s", b.String())
	}
	// The loopback moves no bytes.
	if !strings.Contains(b.String(), "pdht_transport_bytes_in_total 0") {
		t.Errorf("memory transport should report zero bytes:\n%s", b.String())
	}
}

func TestInstrumentTCPCountsBytes(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	tr := Instrument(NewTCP(), m)

	srv, err := tr.Serve("", func(req Request) Response {
		return Response{Found: true, Value: req.Key}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := tr.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := c.Call(ctx, Request{Op: OpQuery, Key: 99}); err != nil {
		t.Fatal(err)
	}

	// Both directions saw at least a frame header + JSON body; the client's
	// outbound bytes are the server's inbound bytes and vice versa, and both
	// land in the same shared counters.
	if in := m.bytesIn.Value(); in < 8 {
		t.Errorf("bytes in = %d, want at least a frame each way", in)
	}
	if out := m.bytesOut.Value(); out < 8 {
		t.Errorf("bytes out = %d, want at least a frame each way", out)
	}
}

func TestInstrumentCountsFailures(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	tr := Instrument(NewMemory(), m)
	c, err := tr.Dial("nobody-home")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Call(context.Background(), Request{Op: OpQuery, Key: 1}); err == nil {
		t.Fatal("call to missing endpoint succeeded")
	}
	if got := m.failures[opSlot(OpQuery)].Value(); got != 1 {
		t.Errorf("failures = %d, want 1", got)
	}
}
