package transport

import (
	"context"
	"net"
	"time"

	"pdht/internal/obs"
)

// opSlots covers the Op range plus slot 0 for anything out of range, so the
// per-op metric lookup is an array index, not a map access, on the hot path.
const opSlots = int(OpStats) + 1

// opLabel is the label value of slot i ("other" for the out-of-range slot).
func opLabel(i int) string {
	if i == 0 {
		return "other"
	}
	return Op(i).String()
}

// opSlot maps an Op to its metric slot.
func opSlot(op Op) int {
	if op >= 1 && int(op) < opSlots {
		return int(op)
	}
	return 0
}

// Metrics holds the wire layer's registered instruments: outbound requests,
// failures and latency by operation, inbound requests served by operation,
// the in-flight gauge, and — on transports that move real bytes — bytes
// in/out. One Metrics is shared by every client and server the instrumented
// transport creates, so a node's whole wire activity lands in one registry.
type Metrics struct {
	requests [opSlots]*obs.Counter
	failures [opSlots]*obs.Counter
	served   [opSlots]*obs.Counter
	latency  [opSlots]*obs.Histogram
	inflight *obs.Gauge
	bytesIn  *obs.Counter
	bytesOut *obs.Counter
}

// NewMetrics registers the transport instruments on reg under
// pdht_transport_*. Registration is idempotent, so two transports sharing a
// registry share the instruments.
func NewMetrics(reg *obs.Registry) *Metrics {
	m := &Metrics{}
	for i := 0; i < opSlots; i++ {
		op := obs.L("op", opLabel(i))
		m.requests[i] = reg.Counter("pdht_transport_requests_total",
			"Outbound RPCs issued, by operation.", op)
		m.failures[i] = reg.Counter("pdht_transport_failures_total",
			"Outbound RPCs that returned a transport error, by operation.", op)
		m.served[i] = reg.Counter("pdht_transport_served_total",
			"Inbound RPCs served, by operation.", op)
		m.latency[i] = reg.Histogram("pdht_transport_request_seconds",
			"Outbound RPC round-trip latency, by operation.", nil, op)
	}
	m.inflight = reg.Gauge("pdht_transport_inflight",
		"Outbound RPCs currently awaiting a response.")
	m.bytesIn = reg.Counter("pdht_transport_bytes_in_total",
		"Bytes read off the wire (TCP only; the memory loopback moves none).")
	m.bytesOut = reg.Counter("pdht_transport_bytes_out_total",
		"Bytes written to the wire (TCP only; the memory loopback moves none).")
	return m
}

// Instrument wraps t so every Call and every served request lands in m:
// per-op request/served/failure counters, per-op latency histograms, and the
// in-flight gauge — on memory and TCP alike. On *TCP the byte counters are
// additionally hooked into the connection layer; the memory loopback moves
// no bytes, so there they stay zero by construction.
func Instrument(t Transport, m *Metrics) Transport {
	if tcp, ok := t.(*TCP); ok {
		// First instrumentation wins the byte counters: two nodes sharing
		// one TCP value cannot split bytes per frame anyway (the wrapper
		// still gives each its own per-op counters).
		tcp.metrics.CompareAndSwap(nil, m)
	}
	return &instrumented{next: t, m: m}
}

type instrumented struct {
	next Transport
	m    *Metrics
}

func (t *instrumented) Serve(addr string, h Handler) (Server, error) {
	m := t.m
	return t.next.Serve(addr, func(req Request) Response {
		m.served[opSlot(req.Op)].Inc()
		return h(req)
	})
}

func (t *instrumented) Dial(addr string) (Client, error) {
	c, err := t.next.Dial(addr)
	if err != nil {
		return nil, err
	}
	return &instrumentedClient{next: c, m: t.m}, nil
}

type instrumentedClient struct {
	next Client
	m    *Metrics
}

func (c *instrumentedClient) Call(ctx context.Context, req Request) (Response, error) {
	s := opSlot(req.Op)
	c.m.requests[s].Inc()
	c.m.inflight.Inc()
	start := time.Now()
	resp, err := c.next.Call(ctx, req)
	c.m.inflight.Dec()
	c.m.latency[s].Observe(time.Since(start))
	if err != nil {
		c.m.failures[s].Inc()
	}
	return resp, err
}

func (c *instrumentedClient) Close() error { return c.next.Close() }

// countingConn wraps a net.Conn so every byte crossing it lands in the
// transport byte counters. Both the TCP client and server wrap their
// connections with it when the transport is instrumented.
type countingConn struct {
	net.Conn
	in, out *obs.Counter
}

func (c countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if n > 0 {
		c.in.Add(uint64(n))
	}
	return n, err
}

func (c countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	if n > 0 {
		c.out.Add(uint64(n))
	}
	return n, err
}
