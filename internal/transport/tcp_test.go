package transport

import (
	"context"
	"net"
	"sync/atomic"
	"testing"
	"time"
)

// TestTCPSlowRequestDoesNotBlockFastOne verifies the multiplexing claim:
// two calls share one connection, the first is slow, and the second must
// complete before the first does.
func TestTCPSlowRequestDoesNotBlockFastOne(t *testing.T) {
	tr := NewTCP()
	release := make(chan struct{})
	srv, err := tr.Serve("", func(req Request) Response {
		if req.Op == OpBroadcast { // the designated slow op
			<-release
		}
		return Response{OK: true}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := tr.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	slowDone := make(chan error, 1)
	go func() {
		_, err := cl.Call(context.Background(), Request{Op: OpBroadcast})
		slowDone <- err
	}()
	// The fast call must finish while the slow one is still parked.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := cl.Call(ctx, Request{Op: OpQuery}); err != nil {
		t.Fatalf("fast call blocked behind slow one: %v", err)
	}
	close(release)
	if err := <-slowDone; err != nil {
		t.Fatalf("slow call: %v", err)
	}
}

// TestTCPContextCancel checks a caller can abandon a call that the server
// will never answer, and the client remains usable afterwards.
func TestTCPContextCancel(t *testing.T) {
	tr := NewTCP()
	var hang atomic.Bool
	hang.Store(true)
	release := make(chan struct{})
	srv, err := tr.Serve("", func(req Request) Response {
		if hang.Load() {
			<-release
		}
		return Response{OK: true}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	defer close(release)
	cl, err := tr.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := cl.Call(ctx, Request{Op: OpQuery}); err == nil {
		t.Fatal("call outlived its context")
	}
	hang.Store(false)
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if _, err := cl.Call(ctx2, Request{Op: OpQuery}); err != nil {
		t.Fatalf("client unusable after a canceled call: %v", err)
	}
}

// TestTCPGarbageConnection feeds the server raw garbage and checks it
// drops the connection without taking the endpoint down.
func TestTCPGarbageConnection(t *testing.T) {
	tr := NewTCP()
	srv, err := tr.Serve("", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	raw, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	// Oversized length prefix followed by junk.
	raw.Write([]byte{0xff, 0xff, 0xff, 0xff, 'j', 'u', 'n', 'k'})
	raw.Close()

	// The endpoint must still serve well-formed clients.
	cl, err := tr.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := cl.Call(ctx, Request{Op: OpQuery, Key: 1}); err != nil {
		t.Fatalf("endpoint died after garbage connection: %v", err)
	}
}

// TestTCPDialUnreachable checks eager dialing reports a dead address.
func TestTCPDialUnreachable(t *testing.T) {
	tr := NewTCP()
	tr.Dialer.Timeout = 2 * time.Second
	// Bind-then-close yields a port that is very likely unbound.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	if _, err := tr.Dial(addr); err == nil {
		t.Fatal("dial to closed port succeeded")
	}
}
