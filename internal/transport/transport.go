// Package transport is the wire layer of the live node subsystem: how one
// pdht node calls another. The simulator never needed it — overlay
// algorithms there walk the topology in-process and only count the messages
// they would have sent — but a real deployment needs connections, framing,
// request/response correlation and failure semantics. This package provides
// exactly that and nothing else: the node layer (internal/node) decides
// *what* to send, the transport decides *how*.
//
// Two implementations share the Transport interface:
//
//   - Memory: an in-process loopback network. Calls are delivered
//     synchronously to the receiving handler, endpoints can be killed and
//     revived to model churn, and everything is deterministic — the
//     substrate of the multi-node cluster tests.
//
//   - TCP: length-prefixed JSON frames over real sockets, one multiplexed
//     connection per peer pair with request-ID correlation, so concurrent
//     calls from many goroutines share a connection without head-of-line
//     coupling between caller goroutines.
//
// Failure model: a Call either returns the peer's Response or an error
// (unreachable peer, closed endpoint, timeout via context). Callers treat
// any error as "that peer did not answer" — the selection algorithm's
// fallback path (broadcast) does the rest, exactly as the paper's churn
// analysis assumes.
package transport

import (
	"context"
	"errors"
)

// Handler serves one request and returns the response. Handlers are invoked
// concurrently — one goroutine per in-flight request — and must be safe for
// concurrent use. Application-level failures travel in Response.Err;
// transport-level failures are the transport's own.
type Handler func(req Request) Response

// Server is one listening endpoint.
type Server interface {
	// Addr returns the address peers dial to reach this endpoint. For TCP
	// this is the bound address (useful when listening on ":0").
	Addr() string
	// Close stops the endpoint: the listener is torn down, open
	// connections are closed, and in-flight handlers are allowed to
	// finish. Close is idempotent.
	Close() error
}

// Client is a dialed connection to one remote endpoint. Clients are safe
// for concurrent use; concurrent Calls are multiplexed.
type Client interface {
	// Call sends req and waits for the matching response. The context
	// bounds the wait; cancellation abandons the call (the response, if
	// it ever arrives, is discarded).
	Call(ctx context.Context, req Request) (Response, error)
	// Close releases the connection. Outstanding calls fail with
	// ErrClosed.
	Close() error
}

// Transport creates servers and clients over one medium.
type Transport interface {
	// Serve starts an endpoint at addr with the given handler. An empty
	// addr asks the transport to pick one (Memory invents a name, TCP
	// binds "127.0.0.1:0").
	Serve(addr string, h Handler) (Server, error)
	// Dial connects to the endpoint at addr. Dialing may be lazy: an
	// unreachable peer can surface at the first Call instead.
	Dial(addr string) (Client, error)
}

// Errors shared by the implementations.
var (
	// ErrClosed reports an operation on a closed client or server.
	ErrClosed = errors.New("transport: endpoint closed")
	// ErrUnreachable reports that the remote endpoint does not exist or
	// stopped existing.
	ErrUnreachable = errors.New("transport: peer unreachable")

	// ErrDialTimeout and ErrRefused are refinements of ErrUnreachable a
	// dial failure is classified into: a timeout means the peer (or the
	// path to it) blackholes SYNs — a partition or a dead host — while a
	// refusal means the host answered but nothing listens on the port — a
	// crashed or not-yet-started process. Both satisfy
	// errors.Is(err, ErrUnreachable), so existing callers keep treating
	// them as "that peer did not answer"; callers that care (retry
	// policies, operator diagnostics) can tell them apart with errors.Is
	// against the specific kind.
	ErrDialTimeout error = &unreachableKind{"dial timeout"}
	ErrRefused     error = &unreachableKind{"connection refused"}
)

// unreachableKind is a named refinement of ErrUnreachable.
type unreachableKind struct{ kind string }

func (e *unreachableKind) Error() string { return "transport: peer unreachable: " + e.kind }

// Is makes every refinement match ErrUnreachable under errors.Is.
func (e *unreachableKind) Is(target error) bool { return target == ErrUnreachable }
