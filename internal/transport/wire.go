package transport

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

// Op identifies what a request asks the receiving node to do. The five
// operations are the RPC surface of the selection algorithm (§5.1): joining
// the overlay, searching the index at a responsible peer, inserting a
// resolved key with its expiration time, refreshing the expiration time on
// a hit, and the unstructured broadcast fallback.
type Op uint8

const (
	// OpJoin announces a node to the cluster. From carries the joiner's
	// address; the response returns the responder's full membership view.
	OpJoin Op = iota + 1
	// OpQuery asks a responsible peer whether Key is live in its index
	// cache. Found/Value report the outcome; the entry's TTL is NOT
	// reset — the querier follows up with OpRefresh, making the paper's
	// reset-on-hit rule an explicit, countable message.
	OpQuery
	// OpInsert installs Key→Value with TTL rounds of lifetime in the
	// receiver's index cache — the insert leg after a broadcast success.
	OpInsert
	// OpRefresh resets the expiration time of a live entry to TTL rounds
	// from now — the reset-on-hit rule of §5.1.
	OpRefresh
	// OpBroadcast asks a peer whether it can answer Key from its local
	// content store — one message of the unstructured search (cSUnstr).
	OpBroadcast
)

// String returns the short label used in logs and errors.
func (o Op) String() string {
	switch o {
	case OpJoin:
		return "join"
	case OpQuery:
		return "query"
	case OpInsert:
		return "insert"
	case OpRefresh:
		return "refresh"
	case OpBroadcast:
		return "broadcast"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// Request is the wire envelope of one call. One struct covers all five
// operations — fields unused by an op are zero and omitted from the
// encoding — because the cost of a per-op type hierarchy outweighs five
// optional fields.
type Request struct {
	Op   Op     `json:"op"`
	From string `json:"from,omitempty"` // sender's own listen address
	// Forward asks a Join receiver to re-announce the joiner to the
	// members it already knows. The re-announcements are sent with
	// Forward=false, which bounds the propagation at one hop.
	Forward bool   `json:"forward,omitempty"`
	Key     uint64 `json:"key,omitempty"`
	Value   uint64 `json:"value,omitempty"`
	// TTL is the entry lifetime in rounds for OpInsert/OpRefresh.
	TTL int `json:"ttl,omitempty"`
}

// Response is the wire envelope of one reply.
type Response struct {
	// OK reports that the operation was accepted (an insert stored, a
	// refresh found a live entry, a join was recorded).
	OK bool `json:"ok,omitempty"`
	// Found and Value report a successful OpQuery or OpBroadcast.
	Found bool   `json:"found,omitempty"`
	Value uint64 `json:"value,omitempty"`
	// Peers is the responder's membership view, returned on OpJoin so the
	// joiner can adopt it.
	Peers []string `json:"peers,omitempty"`
	// Err carries an application-level failure (malformed request,
	// unknown op). Transport-level failures never appear here.
	Err string `json:"err,omitempty"`
}

// frame is the unit the TCP codec moves: a correlation ID plus either a
// request (client→server) or a response (server→client).
type frame struct {
	ID   uint64    `json:"id"`
	Req  *Request  `json:"req,omitempty"`
	Resp *Response `json:"resp,omitempty"`
}

// maxFrameSize bounds a frame body so a corrupt or hostile length prefix
// cannot ask for gigabytes. Responses carry at most a membership list;
// 1 MiB is three orders of magnitude above any legitimate frame.
const maxFrameSize = 1 << 20

// writeFrame encodes f as a 4-byte big-endian length prefix followed by the
// JSON body. The caller serializes writes to w.
func writeFrame(w io.Writer, f frame) error {
	body, err := json.Marshal(f)
	if err != nil {
		return fmt.Errorf("transport: encode frame: %w", err)
	}
	if len(body) > maxFrameSize {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit %d", len(body), maxFrameSize)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

// readFrame reads one length-prefixed frame from r.
func readFrame(r io.Reader) (frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return frame{}, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrameSize {
		return frame{}, fmt.Errorf("transport: frame length %d exceeds limit %d", n, maxFrameSize)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return frame{}, err
	}
	var f frame
	if err := json.Unmarshal(body, &f); err != nil {
		return frame{}, fmt.Errorf("transport: decode frame: %w", err)
	}
	return f, nil
}
