package transport

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"pdht/internal/obs"
	"pdht/internal/topk"
)

// Op identifies what a request asks the receiving node to do. The
// operations are the RPC surface of the selection algorithm (§5.1) plus
// the membership layer: searching the index at a responsible peer,
// inserting a resolved key with its expiration time, refreshing the
// expiration time on a hit, the unstructured broadcast fallback, the
// SWIM gossip exchange that replaces one-shot joins, and the batched
// index access the client API fans out per destination peer.
type Op uint8

const (
	// OpQuery asks a responsible peer whether Key is live in its index
	// cache. Found/Value report the outcome; the entry's TTL is NOT
	// reset — the querier follows up with OpRefresh, making the paper's
	// reset-on-hit rule an explicit, countable message.
	OpQuery Op = iota + 1
	// OpInsert installs Key→Value with TTL rounds of lifetime in the
	// receiver's index cache — the insert leg after a broadcast success,
	// and the push leg of a membership-change key handoff.
	OpInsert
	// OpRefresh resets the expiration time of a live entry to TTL rounds
	// from now — the reset-on-hit rule of §5.1.
	OpRefresh
	// OpBroadcast asks a peer whether it can answer Key from its local
	// content store — one message of the unstructured search (cSUnstr).
	OpBroadcast
	// OpGossip carries one message of the SWIM membership protocol
	// (internal/gossip): a probe, an indirect probe request, or an
	// anti-entropy state exchange. The payload travels in Request.Gossip;
	// the reply in Response.Gossip.
	OpGossip
	// OpBatch packs several index operations (query/insert/refresh) for
	// the same destination into one request — the amortize-per-request
	// leg of the batched client API. Items travel in Request.Batch and
	// each produces one Response.Batch entry at the same position, so a
	// partial failure (one malformed item, one full cache) stays per-key
	// instead of failing the round trip. The ViewHash check applies once
	// to the whole batch.
	OpBatch
	// OpStats asks a peer for a frozen snapshot of its metrics registry —
	// the fleet-aggregation RPC behind Client.ClusterReport and pdht-top.
	// The reply travels in Response.Stats. Not subject to the ViewHash
	// check: statistics are valid across view transitions.
	OpStats
	// OpTopK asks a peer to score a multi-term query against its local
	// content store and return its best k_i entries — one probe leg of
	// the distributed top-k round protocol (internal/topk). The payload
	// travels in Request.TopK, the scored window in Response.TopK. Not
	// subject to the ViewHash check: content is unrouted, so any two
	// views agree on what a peer holds.
	OpTopK
)

// String returns the short label used in logs and errors.
func (o Op) String() string {
	switch o {
	case OpQuery:
		return "query"
	case OpInsert:
		return "insert"
	case OpRefresh:
		return "refresh"
	case OpBroadcast:
		return "broadcast"
	case OpGossip:
		return "gossip"
	case OpBatch:
		return "batch"
	case OpStats:
		return "stats"
	case OpTopK:
		return "topk"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// StaleView is the Response.Err marker a node returns when a routed RPC
// (query/insert/refresh) carries a membership hash different from its own:
// the two nodes would compute different replica groups, so answering would
// silently mis-route. The response carries the responder's full gossip
// state so the caller can converge and re-route instead of trusting a
// wrong answer.
const StaleView = "stale view"

// GossipKind identifies one message of the SWIM membership protocol.
type GossipKind uint8

const (
	// GossipPing is the direct liveness probe of one protocol period.
	GossipPing GossipKind = iota + 1
	// GossipPingReq asks the receiver to probe Target on the sender's
	// behalf — the indirect probe that keeps an asymmetric link failure
	// from killing a live peer.
	GossipPingReq
	// GossipSync is the anti-entropy exchange: Updates carry the sender's
	// full membership table and the reply carries the receiver's. Joining
	// a cluster is one GossipSync to the seed.
	GossipSync
	// GossipAck is the reply kind: acknowledgment plus piggybacked
	// updates (or the full table when answering a GossipSync).
	GossipAck
)

// PeerState is one row of the gossip membership table on the wire: an
// address, its status (gossip.StatusAlive/Suspect/Dead as uint8) and the
// incarnation number that orders conflicting claims about it.
type PeerState struct {
	Addr        string `json:"addr"`
	Status      uint8  `json:"status,omitempty"`
	Incarnation uint64 `json:"inc,omitempty"`
}

// Gossip is the membership payload of OpGossip requests and responses.
type Gossip struct {
	Kind GossipKind `json:"kind"`
	// From is the message originator's address.
	From string `json:"from,omitempty"`
	// Target is the peer to probe on behalf of From (GossipPingReq).
	Target string `json:"target,omitempty"`
	// Full marks Updates as the sender's complete membership table (an
	// anti-entropy exchange) rather than a piggybacked delta batch.
	Full bool `json:"full,omitempty"`
	// Updates are membership deltas piggybacked on the message.
	Updates []PeerState `json:"updates,omitempty"`
}

// BatchItem is one operation of an OpBatch request. Op selects what the
// receiver does with it: OpQuery looks Key up (and, when TTL is positive,
// applies the reset-on-hit rule in the same round trip — the refresh leg
// the unary path pays a separate message for), OpInsert installs Key→Value
// with TTL rounds of lifetime, OpRefresh resets a live entry's expiration.
// Any other op is refused per item, not per batch.
type BatchItem struct {
	Op    Op     `json:"op"`
	Key   uint64 `json:"key"`
	Value uint64 `json:"value,omitempty"`
	TTL   int    `json:"ttl,omitempty"`
}

// BatchResult is the outcome of one BatchItem, at the same index.
type BatchResult struct {
	// OK mirrors Response.OK (an insert stored, a refresh found a live
	// entry); Found and Value report a query item's outcome.
	OK    bool   `json:"ok,omitempty"`
	Found bool   `json:"found,omitempty"`
	Value uint64 `json:"value,omitempty"`
	// Err is this item's application-level failure; other items of the
	// batch are unaffected.
	Err string `json:"err,omitempty"`
}

// Request is the wire envelope of one call. One struct covers all the
// operations — fields unused by an op are zero and omitted from the
// encoding — because the cost of a per-op type hierarchy outweighs a few
// optional fields.
type Request struct {
	Op    Op     `json:"op"`
	From  string `json:"from,omitempty"` // sender's own listen address
	Key   uint64 `json:"key,omitempty"`
	Value uint64 `json:"value,omitempty"`
	// TTL is the entry lifetime in rounds for OpInsert/OpRefresh.
	TTL int `json:"ttl,omitempty"`
	// ViewHash is the sender's membership hash on routed operations
	// (query/insert/refresh/batch). A receiver whose own hash differs answers
	// with the StaleView error instead of mis-routing; zero skips the
	// check (handoff pushes, which are valid across view transitions).
	ViewHash uint64 `json:"view,omitempty"`
	// Batch carries the items of an OpBatch request.
	Batch []BatchItem `json:"batch,omitempty"`
	// Gossip is the membership payload of OpGossip.
	Gossip *Gossip `json:"gossip,omitempty"`
	// TraceID, when nonzero, marks the request as part of a sampled
	// cluster-wide trace: an instrumented server records server-side
	// spans for the operation and returns them in Response.Spans so the
	// caller can stitch a cross-peer causality tree. Zero — the common
	// case — costs nothing on either side.
	TraceID uint64 `json:"trace,omitempty"`
	// TopK carries the scored-list window an OpTopK probe asks for.
	TopK *topk.Req `json:"topk,omitempty"`
}

// Response is the wire envelope of one reply.
type Response struct {
	// OK reports that the operation was accepted (an insert stored, a
	// refresh found a live entry, an indirect probe reached its target).
	OK bool `json:"ok,omitempty"`
	// Found and Value report a successful OpQuery or OpBroadcast.
	Found bool   `json:"found,omitempty"`
	Value uint64 `json:"value,omitempty"`
	// Err carries an application-level failure (malformed request,
	// unknown op, StaleView). Transport-level failures never appear here.
	Err string `json:"err,omitempty"`
	// Batch carries the per-item outcomes of an OpBatch request, one
	// entry per Request.Batch item, positions aligned.
	Batch []BatchResult `json:"batch,omitempty"`
	// Gossip carries the reply of an OpGossip exchange — and, on a
	// StaleView error, the responder's full membership state so the
	// caller can converge without an extra round trip.
	Gossip *Gossip `json:"gossip,omitempty"`
	// Spans are the server-side steps recorded for a request that carried
	// a TraceID, offsets relative to request receipt.
	Spans []obs.Span `json:"spans,omitempty"`
	// Stats is the registry snapshot answering an OpStats request.
	Stats *obs.Snapshot `json:"stats,omitempty"`
	// TopK is the scored window answering an OpTopK probe.
	TopK *topk.Resp `json:"topk,omitempty"`
}

// frame is the unit the TCP codec moves: a correlation ID plus either a
// request (client→server) or a response (server→client).
type frame struct {
	ID   uint64    `json:"id"`
	Req  *Request  `json:"req,omitempty"`
	Resp *Response `json:"resp,omitempty"`
}

// maxFrameSize bounds a frame body so a corrupt or hostile length prefix
// cannot ask for gigabytes. Responses carry at most a membership list;
// 1 MiB is three orders of magnitude above any legitimate frame.
const maxFrameSize = 1 << 20

// writeFrame encodes f as a 4-byte big-endian length prefix followed by the
// JSON body. The caller serializes writes to w.
func writeFrame(w io.Writer, f frame) error {
	body, err := json.Marshal(f)
	if err != nil {
		return fmt.Errorf("transport: encode frame: %w", err)
	}
	if len(body) > maxFrameSize {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit %d", len(body), maxFrameSize)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

// readFrame reads one length-prefixed frame from r.
func readFrame(r io.Reader) (frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return frame{}, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrameSize {
		return frame{}, fmt.Errorf("transport: frame length %d exceeds limit %d", n, maxFrameSize)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return frame{}, err
	}
	var f frame
	if err := json.Unmarshal(body, &f); err != nil {
		return frame{}, fmt.Errorf("transport: decode frame: %w", err)
	}
	return f, nil
}
