package core

import (
	"math"
	"testing"
)

func TestNewTTLEstimatorValidation(t *testing.T) {
	for _, a := range []float64{0, -0.5, 1.5, math.NaN()} {
		if _, err := NewTTLEstimator(a); err == nil {
			t.Errorf("alpha %v accepted", a)
		}
	}
	if _, err := NewTTLEstimator(1); err != nil {
		t.Errorf("alpha 1 rejected: %v", err)
	}
}

func TestEstimatorReadiness(t *testing.T) {
	e, _ := NewTTLEstimator(0.1)
	if e.Ready() {
		t.Error("ready with no observations")
	}
	if _, ok := e.FMin(); ok {
		t.Error("FMin available when not ready")
	}
	e.ObserveBroadcast(700)
	e.ObserveLookup(90)
	if e.Ready() {
		t.Error("ready without maintenance observations")
	}
	e.ObserveMaintenance(500, 1000)
	if !e.Ready() {
		t.Error("not ready with all three observed")
	}
}

func TestEstimatorConvergesToPaperValues(t *testing.T) {
	// Feed the estimator noiseless paper-scenario observations:
	// cSUnstr = 720, cSIndx2 ≈ 97, cRtn ≈ 0.51. It must recover
	// fMin = cRtn/(cSUnstr − cSIndx) and keyTtl = 1/fMin.
	e, _ := NewTTLEstimator(0.2)
	for i := 0; i < 200; i++ {
		e.ObserveBroadcast(720)
		e.ObserveLookup(97)
		e.ObserveMaintenance(20400, 40000) // 0.51 per key
	}
	cU, cI, cR := e.Estimates()
	if math.Abs(cU-720) > 1e-9 || math.Abs(cI-97) > 1e-9 || math.Abs(cR-0.51) > 1e-9 {
		t.Fatalf("estimates = %v %v %v", cU, cI, cR)
	}
	fMin, ok := e.FMin()
	if !ok {
		t.Fatal("FMin not available")
	}
	want := 0.51 / (720 - 97)
	if math.Abs(fMin-want) > 1e-12 {
		t.Errorf("fMin = %v, want %v", fMin, want)
	}
	ttl, ok := e.KeyTtl(1, 0)
	if !ok || ttl != int(math.Round(1/want)) {
		t.Errorf("KeyTtl = %d,%v want %d", ttl, ok, int(math.Round(1/want)))
	}
}

func TestEstimatorTracksShiftingLoad(t *testing.T) {
	// When broadcast searches get cheaper (smaller network, say), fMin
	// rises and the recommended TTL falls.
	e, _ := NewTTLEstimator(0.2)
	for i := 0; i < 100; i++ {
		e.ObserveBroadcast(720)
		e.ObserveLookup(50)
		e.ObserveMaintenance(1000, 2000)
	}
	ttlBefore, _ := e.KeyTtl(1, 0)
	for i := 0; i < 300; i++ {
		e.ObserveBroadcast(200)
	}
	ttlAfter, ok := e.KeyTtl(1, 0)
	if !ok {
		t.Fatal("estimator lost readiness")
	}
	if ttlAfter >= ttlBefore {
		t.Errorf("TTL should fall when broadcasting gets cheap: %d → %d", ttlBefore, ttlAfter)
	}
}

func TestEstimatorClamps(t *testing.T) {
	e, _ := NewTTLEstimator(0.5)
	e.ObserveBroadcast(720)
	e.ObserveLookup(7)
	e.ObserveMaintenance(1, 100000) // minuscule per-key cost → huge TTL
	ttl, ok := e.KeyTtl(10, 500)
	if !ok || ttl != 500 {
		t.Errorf("KeyTtl = %d,%v want clamped to 500", ttl, ok)
	}
	e2, _ := NewTTLEstimator(0.5)
	e2.ObserveBroadcast(100)
	e2.ObserveLookup(7)
	e2.ObserveMaintenance(1e6, 10) // ruinous per-key cost → TTL below min
	ttl2, ok2 := e2.KeyTtl(10, 500)
	if !ok2 || ttl2 != 10 {
		t.Errorf("KeyTtl = %d,%v want clamped to 10", ttl2, ok2)
	}
}

func TestEstimatorBroadcastNotWorthIt(t *testing.T) {
	// Index search as expensive as broadcast: indexing can never
	// amortize; no recommendation.
	e, _ := NewTTLEstimator(0.3)
	e.ObserveBroadcast(50)
	e.ObserveLookup(80)
	e.ObserveMaintenance(100, 10)
	if _, ok := e.FMin(); ok {
		t.Error("FMin offered although lookup costs more than broadcast")
	}
	if _, ok := e.KeyTtl(1, 0); ok {
		t.Error("KeyTtl offered although lookup costs more than broadcast")
	}
}

func TestEstimatorIgnoresGarbage(t *testing.T) {
	e, _ := NewTTLEstimator(0.3)
	e.ObserveBroadcast(math.NaN())
	e.ObserveBroadcast(math.Inf(1))
	e.ObserveBroadcast(-5)
	if e.nUnstr != 0 {
		t.Error("garbage observations were recorded")
	}
	e.ObserveMaintenance(100, 0) // zero keys clamps to 1, not a crash
	if e.cRtn != 100 {
		t.Errorf("cRtn = %v, want 100 with indexedKeys clamped to 1", e.cRtn)
	}
}
