package core

import (
	"math/rand/v2"
	"testing"

	"pdht/internal/dht"
	"pdht/internal/keyspace"
	"pdht/internal/netsim"
	"pdht/internal/stats"
)

// testIndex builds a small trie-backed partial index: 256 active peers in
// groups of 8.
func testIndex(t testing.TB, cfg IndexConfig, seed uint64) (*PartialIndex, *netsim.Network, *rand.Rand) {
	t.Helper()
	net := netsim.New(300)
	rng := rand.New(rand.NewPCG(seed, seed^0x77))
	active := make([]netsim.PeerID, 256)
	for i := range active {
		active[i] = netsim.PeerID(i)
	}
	trie, err := dht.NewTrie(net, active, dht.TrieConfig{GroupSize: 8, Env: 0.1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	pi, err := NewPartialIndex(net, trie, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	return pi, net, rng
}

func ttlConfig() IndexConfig {
	return IndexConfig{KeyTtl: 50, PeerCapacity: 64, FloodOnMiss: true, ResetTTLOnHit: true}
}

func TestNewPartialIndexValidation(t *testing.T) {
	net := netsim.New(10)
	rng := rand.New(rand.NewPCG(1, 2))
	trie, err := dht.NewTrie(net, []netsim.PeerID{0, 1, 2, 3}, dht.TrieConfig{GroupSize: 2, Env: 0.1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewPartialIndex(net, trie, IndexConfig{PeerCapacity: 0}, rng); err == nil {
		t.Error("PeerCapacity 0 accepted")
	}
	if _, err := NewPartialIndex(net, trie, IndexConfig{PeerCapacity: 5, SubnetDegree: -1}, rng); err == nil {
		t.Error("negative SubnetDegree accepted")
	}
}

func TestInsertThenLookupHits(t *testing.T) {
	pi, net, _ := testIndex(t, ttlConfig(), 1)
	key := k("title=weather iraklion")
	ir := pi.Insert(5, key, 42)
	if !ir.OK || ir.Stored == 0 {
		t.Fatalf("insert failed: %+v", ir)
	}
	lr := pi.Lookup(200, key)
	if !lr.Hit || lr.Value != 42 {
		t.Fatalf("lookup after insert: %+v", lr)
	}
	if !net.Online(lr.AnsweredBy) {
		t.Error("answered by an offline peer")
	}
	if pi.IndexedKeys() != 1 {
		t.Errorf("IndexedKeys = %d, want 1", pi.IndexedKeys())
	}
}

func TestLookupMissOnEmptyIndex(t *testing.T) {
	pi, _, _ := testIndex(t, ttlConfig(), 2)
	lr := pi.Lookup(3, k("nothing"))
	if lr.Hit {
		t.Fatal("hit on empty index")
	}
	if !lr.RouteOK {
		t.Fatal("routing failed without churn")
	}
	// FloodOnMiss: the miss cost includes the replica-subnet flood.
	if lr.FloodMsgs == 0 {
		t.Error("miss did not flood the replica subnet despite FloodOnMiss")
	}
}

func TestLookupNoFloodWhenDisabled(t *testing.T) {
	cfg := ttlConfig()
	cfg.FloodOnMiss = false
	pi, _, _ := testIndex(t, cfg, 3)
	lr := pi.Lookup(3, k("nothing"))
	if lr.FloodMsgs != 0 {
		t.Errorf("flooded %d messages with FloodOnMiss off", lr.FloodMsgs)
	}
}

func TestEntriesExpireWithoutQueries(t *testing.T) {
	pi, net, _ := testIndex(t, ttlConfig(), 4)
	key := k("ephemeral")
	pi.Insert(0, key, 1)
	for r := 0; r < 49; r++ {
		net.AdvanceRound()
	}
	if lr := pi.Lookup(1, key); !lr.Hit {
		t.Fatal("entry expired before its TTL")
	}
	// The hit at round 49 reset the TTL; advance past the new expiry.
	for r := 0; r < 51; r++ {
		net.AdvanceRound()
	}
	if lr := pi.Lookup(1, key); lr.Hit {
		t.Fatal("entry survived past its reset TTL without queries")
	}
	if pi.IndexedKeys() != 0 {
		t.Errorf("IndexedKeys = %d after expiry", pi.IndexedKeys())
	}
}

func TestTTLResetKeepsPopularKeysAlive(t *testing.T) {
	pi, net, _ := testIndex(t, ttlConfig(), 5)
	key := k("popular")
	pi.Insert(0, key, 1)
	// Query every 40 rounds — inside the 50-round TTL — for 10 cycles:
	// the key must never fall out (§5.1: reset-on-query keeps frequently
	// queried keys indexed).
	for cycle := 0; cycle < 10; cycle++ {
		for r := 0; r < 40; r++ {
			net.AdvanceRound()
		}
		if lr := pi.Lookup(2, key); !lr.Hit {
			t.Fatalf("popular key fell out at cycle %d", cycle)
		}
	}
}

func TestNoResetWhenDisabled(t *testing.T) {
	cfg := ttlConfig()
	cfg.ResetTTLOnHit = false
	pi, net, _ := testIndex(t, cfg, 6)
	key := k("fixed-lease")
	pi.Insert(0, key, 1)
	for r := 0; r < 30; r++ {
		net.AdvanceRound()
	}
	if lr := pi.Lookup(1, key); !lr.Hit {
		t.Fatal("entry gone before TTL")
	}
	for r := 0; r < 25; r++ { // round 55 > insert TTL of 50
		net.AdvanceRound()
	}
	if lr := pi.Lookup(1, key); lr.Hit {
		t.Fatal("hit at round 55: TTL was reset despite ResetTTLOnHit=false")
	}
}

func TestSeedIsFreeAndPermanentWithoutTTL(t *testing.T) {
	cfg := IndexConfig{KeyTtl: 0, PeerCapacity: 64} // index-everything mode
	pi, net, _ := testIndex(t, cfg, 7)
	before := net.Counters().Total()
	for i := 0; i < 100; i++ {
		if err := pi.Seed(keyspace.Key(uint64(i)*0x9e3779b97f4a7c15), Value(i)); err != nil {
			t.Fatal(err)
		}
	}
	if net.Counters().Total() != before {
		t.Error("Seed sent messages")
	}
	if got := pi.IndexedKeys(); got != 100 {
		t.Errorf("IndexedKeys = %d, want 100", got)
	}
	for r := 0; r < 10000; r++ {
		net.AdvanceRound()
	}
	if got := pi.IndexedKeys(); got != 100 {
		t.Errorf("permanent entries expired: %d left", got)
	}
	thirteen := uint64(13)
	lr := pi.Lookup(9, keyspace.Key(thirteen*0x9e3779b97f4a7c15))
	if !lr.Hit || lr.Value != 13 {
		t.Errorf("seeded entry unreadable: %+v", lr)
	}
}

func TestUpdateOverwritesValue(t *testing.T) {
	cfg := IndexConfig{KeyTtl: 0, PeerCapacity: 64}
	pi, net, _ := testIndex(t, cfg, 8)
	key := k("article")
	pi.Seed(key, 1)
	before := net.Counters().Get(stats.MsgUpdate)
	ur := pi.Update(17, key, 2)
	if !ur.OK {
		t.Fatalf("update failed: %+v", ur)
	}
	if net.Counters().Get(stats.MsgUpdate) <= before {
		t.Error("update gossip not recorded as MsgUpdate")
	}
	if lr := pi.Lookup(30, key); lr.Value != 2 {
		t.Errorf("value after update = %v, want 2", lr.Value)
	}
}

func TestFloodOnMissFindsDriftedReplica(t *testing.T) {
	// Insert while the primary's group is partially offline, so only
	// some replicas store the key; a later lookup routed to a
	// non-holding member must still find it through the subnet flood
	// (the whole point of eq. 16's extra cost).
	pi, net, rng := testIndex(t, ttlConfig(), 9)
	key := k("drifted")
	group := pi.DHT().ReplicaGroup(key)
	// Take half the group offline during the insert.
	for i, p := range group {
		if i%2 == 0 {
			net.SetOnline(p, false)
		}
	}
	ir := pi.Insert(0, key, 7)
	if !ir.OK {
		t.Fatal("insert failed with half the group online")
	}
	// Bring everyone back; now the peers that were offline hold nothing.
	for _, p := range group {
		net.SetOnline(p, true)
	}
	hits := 0
	for trial := 0; trial < 30; trial++ {
		from := netsim.PeerID(rng.IntN(256))
		if lr := pi.Lookup(from, key); lr.Hit {
			hits++
		}
	}
	if hits != 30 {
		t.Errorf("only %d/30 lookups hit a partially replicated key", hits)
	}
}

func TestIndexedKeysMatchesExactCount(t *testing.T) {
	pi, net, rng := testIndex(t, ttlConfig(), 10)
	for i := 0; i < 60; i++ {
		pi.Insert(netsim.PeerID(rng.IntN(256)), keyspace.Key(rng.Uint64()), Value(i))
		if i%10 == 0 {
			net.AdvanceRound()
		}
	}
	approxN, exactN := pi.IndexedKeys(), pi.ExactIndexedKeys()
	if approxN != exactN {
		t.Errorf("IndexedKeys = %d, ExactIndexedKeys = %d", approxN, exactN)
	}
	for r := 0; r < 60; r++ {
		net.AdvanceRound()
	}
	if pi.IndexedKeys() != 0 || pi.ExactIndexedKeys() != 0 {
		t.Error("counts non-zero after everything expired")
	}
}

func TestMaintainDelegates(t *testing.T) {
	pi, net, _ := testIndex(t, ttlConfig(), 11)
	ms := pi.Maintain()
	if ms.Probes == 0 {
		t.Error("no probes from Maintain")
	}
	if net.Counters().Get(stats.MsgMaintenance) != int64(ms.Probes) {
		t.Error("maintenance counter mismatch")
	}
}
