package core

import (
	"math/rand/v2"

	"pdht/internal/keyspace"
	"pdht/internal/netsim"
)

// Broadcaster abstracts the unstructured network's search — the fallback
// for queries the index cannot answer and the discovery mechanism that
// feeds the index. internal/overlay provides the implementation; the
// interface keeps the selection algorithm independent of the topology.
type Broadcaster interface {
	// Search looks for key in the unstructured network on behalf of
	// from. It returns the value found (the content pointer a real
	// system would return) and the number of messages spent; messages
	// are also recorded on the network counters.
	Search(from netsim.PeerID, key keyspace.Key, rng *rand.Rand) (value Value, found bool, msgs int)
}

// QueryOutcome reports one end-to-end query through the selection
// algorithm.
type QueryOutcome struct {
	// Answered reports whether the query was resolved at all.
	Answered bool
	// FromIndex reports whether the index answered (the pIndxd events of
	// eq. 14).
	FromIndex bool
	// Value is the resolved value when Answered.
	Value Value
	// IndexMsgs, BroadcastMsgs and InsertMsgs break down the cost in the
	// three legs of eq. 17: cSIndx2, cSUnstr, cSIndx2.
	IndexMsgs     int
	BroadcastMsgs int
	InsertMsgs    int
	// InsertGated reports that the broadcast resolved the key but the
	// insert gate refused to index it — the per-key to-index-or-not
	// decision of §2, taken online by an adaptive tuner.
	InsertGated bool
	// RouteHops is the routing-hop part of IndexMsgs (the measured
	// eq. 7), and RouteOK whether routing reached a responsible peer.
	RouteHops int
	RouteOK   bool
}

// Total returns the query's full message cost.
func (o QueryOutcome) Total() int {
	return o.IndexMsgs + o.BroadcastMsgs + o.InsertMsgs
}

// PDHT is the query-adaptive partial DHT: the Section-5 selection algorithm
// over a distributed TTL index and an unstructured broadcaster.
//
// On every query the peer first searches the index (it cannot know whether
// the key is indexed — reason IV of §5.1). On a miss it broadcasts, and on
// broadcast success inserts the resolved key into the index with expiration
// keyTtl, so the next querier finds it cheaply. Keys that stop being
// queried silently expire.
type PDHT struct {
	index *PartialIndex
	bc    Broadcaster
	rng   *rand.Rand
	gate  func(keyspace.Key) bool
}

// NewPDHT wires the selection algorithm over an index layer and a
// broadcaster.
func NewPDHT(index *PartialIndex, bc Broadcaster, rng *rand.Rand) *PDHT {
	return &PDHT{index: index, bc: bc, rng: rng}
}

// Index exposes the underlying index layer.
func (p *PDHT) Index() *PartialIndex { return p.index }

// SetInsertGate installs the per-key to-index-or-not hook: after a broadcast
// resolves a key, the gate decides whether it enters the index at all. A nil
// gate (the default) admits every key — the paper's plain §5.1 behavior,
// where TTL expiry alone prunes the index. An adaptive control plane
// (internal/adapt) gates keys whose estimated query rate falls below fMin,
// saving the insert leg of eq. 17 for keys that would expire unqueried.
func (p *PDHT) SetInsertGate(gate func(keyspace.Key) bool) { p.gate = gate }

// Query resolves key for the peer from, following §5.1 exactly:
// index search → broadcast on miss → insert the broadcast result.
func (p *PDHT) Query(from netsim.PeerID, key keyspace.Key) QueryOutcome {
	out := QueryOutcome{}
	lr := p.index.Lookup(from, key)
	out.IndexMsgs = lr.RouteHops + lr.FloodMsgs
	out.RouteHops = lr.RouteHops
	out.RouteOK = lr.RouteOK
	if lr.Hit {
		out.Answered, out.FromIndex, out.Value = true, true, lr.Value
		return out
	}
	value, found, msgs := p.bc.Search(from, key, p.rng)
	out.BroadcastMsgs = msgs
	if !found {
		return out
	}
	out.Answered, out.Value = true, value
	if p.gate != nil && !p.gate(key) {
		out.InsertGated = true
		return out
	}
	ir := p.index.Insert(from, key, value)
	out.InsertMsgs = ir.RouteHops + ir.GossipMsgs
	return out
}
