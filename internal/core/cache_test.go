package core

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"pdht/internal/keyspace"
)

func k(s string) keyspace.Key { return keyspace.HashString(s) }

func TestNewCacheValidation(t *testing.T) {
	if _, err := NewCache(0); err == nil {
		t.Error("capacity 0 accepted")
	}
	if _, err := NewCache(-1); err == nil {
		t.Error("negative capacity accepted")
	}
	c, err := NewCache(5)
	if err != nil {
		t.Fatal(err)
	}
	if c.Capacity() != 5 {
		t.Errorf("Capacity = %d", c.Capacity())
	}
}

func TestCachePutGet(t *testing.T) {
	c, _ := NewCache(10)
	if !c.Put(k("a"), 42, 100, 0) {
		t.Fatal("Put rejected")
	}
	v, ok := c.Get(k("a"), 50)
	if !ok || v != 42 {
		t.Errorf("Get = %v,%v", v, ok)
	}
	if _, ok := c.Get(k("missing"), 50); ok {
		t.Error("found a key never stored")
	}
}

func TestCacheExpiry(t *testing.T) {
	c, _ := NewCache(10)
	c.Put(k("a"), 1, 100, 0)
	if _, ok := c.Get(k("a"), 99); !ok {
		t.Error("entry unreadable just before expiry")
	}
	if _, ok := c.Get(k("a"), 100); ok {
		t.Error("entry readable at its expiry round")
	}
	// The expired Get collected the entry: it stays gone even for reads
	// at earlier rounds (lazy collection is one-way).
	if _, ok := c.Get(k("a"), 0); ok {
		t.Error("collected entry came back")
	}
	if c.Live(0) != 0 {
		t.Errorf("Live = %d, want 0", c.Live(0))
	}
}

func TestCachePutRejectsDeadOnArrival(t *testing.T) {
	c, _ := NewCache(10)
	if c.Put(k("a"), 1, 5, 5) {
		t.Error("accepted an entry already expired")
	}
	if c.Put(k("a"), 1, 4, 5) {
		t.Error("accepted an entry from the past")
	}
}

func TestCacheEvictsSoonestExpiring(t *testing.T) {
	c, _ := NewCache(3)
	c.Put(k("a"), 1, 100, 0)
	c.Put(k("b"), 2, 50, 0) // soonest to lapse → first victim
	c.Put(k("c"), 3, 150, 0)
	if !c.Put(k("d"), 4, 120, 0) {
		t.Fatal("Put into full cache rejected despite older victim")
	}
	if _, ok := c.Get(k("b"), 0); ok {
		t.Error("victim b still present")
	}
	for _, key := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k(key), 0); !ok {
			t.Errorf("entry %s lost", key)
		}
	}
}

func TestCacheRejectsWorseThanVictims(t *testing.T) {
	c, _ := NewCache(2)
	c.Put(k("a"), 1, 100, 0)
	c.Put(k("b"), 2, 100, 0)
	// The incoming entry would expire before every stored entry: keeping
	// the stored ones answers more future queries.
	if c.Put(k("c"), 3, 10, 0) {
		t.Error("accepted an entry worse than all victims")
	}
	if c.Live(0) != 2 {
		t.Errorf("Live = %d, want 2", c.Live(0))
	}
}

func TestCacheEvictionPrefersExpired(t *testing.T) {
	c, _ := NewCache(2)
	c.Put(k("a"), 1, 10, 0)
	c.Put(k("b"), 2, 100, 0)
	// At round 20, a is expired; inserting c must reclaim a's slot and
	// keep b.
	if !c.Put(k("c"), 3, 50, 20) {
		t.Fatal("Put rejected despite expired entry")
	}
	if _, ok := c.Get(k("b"), 20); !ok {
		t.Error("live entry b evicted while an expired one existed")
	}
}

func TestCacheOverwriteDoesNotEvict(t *testing.T) {
	c, _ := NewCache(2)
	c.Put(k("a"), 1, 100, 0)
	c.Put(k("b"), 2, 100, 0)
	if !c.Put(k("a"), 9, 200, 0) {
		t.Fatal("overwrite rejected")
	}
	if c.Live(0) != 2 {
		t.Errorf("Live = %d after overwrite, want 2", c.Live(0))
	}
	if v, _ := c.Get(k("a"), 0); v != 9 {
		t.Errorf("overwritten value = %v", v)
	}
}

func TestCacheRefresh(t *testing.T) {
	c, _ := NewCache(5)
	c.Put(k("a"), 1, 100, 0)
	if !c.Refresh(k("a"), 300, 50) {
		t.Fatal("Refresh of live entry failed")
	}
	if exp, ok := c.Expires(k("a"), 50); !ok || exp != 300 {
		t.Errorf("Expires = %v,%v want 300", exp, ok)
	}
	// Refresh never shortens a TTL.
	c.Refresh(k("a"), 200, 50)
	if exp, _ := c.Expires(k("a"), 50); exp != 300 {
		t.Errorf("Refresh shortened expiry to %d", exp)
	}
	if c.Refresh(k("missing"), 400, 50) {
		t.Error("refreshed a missing key")
	}
	if c.Refresh(k("a"), 400, 300) {
		t.Error("refreshed an expired entry")
	}
}

func TestCacheNeverExpires(t *testing.T) {
	c, _ := NewCache(2)
	c.Put(k("a"), 1, NeverExpires, 0)
	if _, ok := c.Get(k("a"), 1<<40); !ok {
		t.Error("NeverExpires entry expired")
	}
}

// Property: a cache never reports more live entries than its capacity, and
// Get never returns an expired entry.
func TestCacheInvariants(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 22))
	f := func() bool {
		c, _ := NewCache(1 + rng.IntN(8))
		now := 0
		for op := 0; op < 200; op++ {
			key := keyspace.Key(rng.Uint64N(16)) // small space → collisions
			switch rng.IntN(4) {
			case 0, 1:
				c.Put(key, Value(op), now+1+rng.IntN(50), now)
			case 2:
				if _, ok := c.Get(key, now); ok {
					if exp, ok2 := c.Expires(key, now); !ok2 || exp <= now {
						return false
					}
				}
			case 3:
				now += rng.IntN(10)
			}
			if c.Live(now) > c.Capacity() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(func() bool { return f() }, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestEntriesSnapshotPreservesTTLAcrossReinsert is the handoff contract: a
// snapshot taken with Entries, re-inserted into another cache with each
// entry's remaining TTL, must reproduce the original expiry rounds — the
// paper's expiry semantics survive a key transfer between peers.
func TestEntriesSnapshotPreservesTTLAcrossReinsert(t *testing.T) {
	src, _ := NewCache(8)
	now := 100
	src.Put(k("a"), 1, now+5, now)
	src.Put(k("b"), 2, now+50, now)
	src.Put(k("c"), 3, now+2, now)
	src.Put(k("dead"), 4, now+1, now)

	later := now + 1 // "dead" lapses here
	snap := src.Entries(later)
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d entries, want 3 (expired entry must be collected)", len(snap))
	}

	dst, _ := NewCache(8)
	for _, e := range snap {
		// The receiving peer computes its own expiry from the remaining
		// TTL, exactly like an OpInsert with TTL = Expires−now.
		if !dst.Put(e.Key, e.Value, later+(e.Expires-later), later) {
			t.Fatalf("re-insert of %v rejected", e.Key)
		}
	}
	for _, e := range snap {
		exp, ok := dst.Expires(e.Key, later)
		if !ok || exp != e.Expires {
			t.Fatalf("key %v expires at %d after round trip, want %d", e.Key, exp, e.Expires)
		}
		v, ok := dst.Get(e.Key, later)
		if !ok || v != e.Value {
			t.Fatalf("key %v = %v after round trip, want %v", e.Key, v, e.Value)
		}
	}
	// And the snapshot itself must not have disturbed the source.
	if got := src.Live(later); got != 3 {
		t.Fatalf("source has %d live entries after snapshot, want 3", got)
	}
}
