package core

import (
	"testing"

	"pdht/internal/keyspace"
	"pdht/internal/netsim"
)

func BenchmarkCachePutGet(b *testing.B) {
	c, err := NewCache(100)
	if err != nil {
		b.Fatal(err)
	}
	keys := make([]keyspace.Key, 256)
	for i := range keys {
		keys[i] = keyspace.Key(uint64(i) * 0x9e3779b97f4a7c15)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := keys[i%len(keys)]
		c.Put(key, Value(i), i+100, i)
		c.Get(key, i)
	}
}

func BenchmarkIndexLookupHit(b *testing.B) {
	pi, net, rng := benchIndex(b)
	key := keyspace.HashString("hot")
	pi.Insert(0, key, 1)
	_ = net
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lr := pi.Lookup(netsim.PeerID(i%256), key)
		if !lr.Hit {
			b.Fatal("miss on a hot key")
		}
	}
	_ = rng
}

func BenchmarkIndexLookupMiss(b *testing.B) {
	pi, _, rng := benchIndex(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lr := pi.Lookup(netsim.PeerID(i%256), keyspace.Key(rng.Uint64()))
		if lr.Hit {
			b.Fatal("hit on a random key")
		}
	}
}

func BenchmarkIndexInsert(b *testing.B) {
	pi, _, rng := benchIndex(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pi.Insert(netsim.PeerID(i%256), keyspace.Key(rng.Uint64()), Value(i))
	}
}

func benchIndex(b *testing.B) (*PartialIndex, *netsim.Network, interface{ Uint64() uint64 }) {
	b.Helper()
	pi, net, rng := testIndex(b, IndexConfig{
		KeyTtl: 1 << 30, PeerCapacity: 4096,
		FloodOnMiss: true, ResetTTLOnHit: true,
	}, 99)
	return pi, net, rng
}
