package core

import (
	"fmt"
	"hash/fnv"
	"math/rand/v2"

	"pdht/internal/dht"
	"pdht/internal/keyspace"
	"pdht/internal/netsim"
	"pdht/internal/replica"
	"pdht/internal/stats"
)

// IndexConfig parameterizes the distributed partial index.
type IndexConfig struct {
	// KeyTtl is the expiration time, in rounds, attached to inserted
	// keys. Zero or negative means entries never expire — the
	// index-everything mode of the Section-4 baselines.
	KeyTtl int
	// PeerCapacity is each active peer's cache size (the paper's stor).
	PeerCapacity int
	// SubnetDegree is the gossip degree of each replica subnetwork.
	// Degree 1 yields mean degree ≈ 2 and a flood duplication near the
	// paper's dup2 = 1.8. Default 1.
	SubnetDegree int
	// FloodOnMiss controls §5's replica-subnet query flood: when the
	// responsible peer cannot answer, it propagates the query through the
	// replica subnetwork (the cSIndx2 = cSIndx + repl·dup2 of eq. 16).
	// The selection algorithm needs it because TTL expiry leaves replicas
	// poorly synchronized; the proactively updated baselines do not.
	FloodOnMiss bool
	// ResetTTLOnHit controls the selection algorithm's defining rule: a
	// query for a stored key resets its expiration time.
	ResetTTLOnHit bool
}

func (c *IndexConfig) setDefaults() {
	if c.SubnetDegree == 0 {
		c.SubnetDegree = 1
	}
}

func (c IndexConfig) validate() error {
	if c.PeerCapacity < 1 {
		return fmt.Errorf("core: PeerCapacity %d must be positive", c.PeerCapacity)
	}
	if c.SubnetDegree < 1 {
		return fmt.Errorf("core: SubnetDegree %d must be positive", c.SubnetDegree)
	}
	return nil
}

// LookupResult reports one index search.
type LookupResult struct {
	// RouteOK reports whether routing reached a responsible peer at all.
	RouteOK bool
	// Hit reports whether the key was found live in the index.
	Hit bool
	// Value is the stored value when Hit.
	Value Value
	// AnsweredBy is the peer that held the live entry when Hit.
	AnsweredBy netsim.PeerID
	// RouteHops and FloodMsgs break down the message cost (also recorded
	// on the network counters).
	RouteHops int
	FloodMsgs int
}

// PartialIndex is the distributed index: per-peer TTL caches over the
// active peers of a DHT, wired together by replica subnetworks for gossip.
// All methods count their messages on the underlying network.
type PartialIndex struct {
	net *netsim.Network
	idx dht.Index
	cfg IndexConfig
	rng *rand.Rand

	caches  map[netsim.PeerID]*Cache
	subnets map[uint64]*replica.Subnet
	byKey   map[keyspace.Key]*replica.Subnet
	// liveUntil tracks, per key, the latest expiry of any replica — the
	// index-size bookkeeping behind Fig. 3's "index size" series.
	liveUntil map[keyspace.Key]int
}

// NewPartialIndex builds the index layer over a DHT.
func NewPartialIndex(net *netsim.Network, idx dht.Index, cfg IndexConfig, rng *rand.Rand) (*PartialIndex, error) {
	cfg.setDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	pi := &PartialIndex{
		net:       net,
		idx:       idx,
		cfg:       cfg,
		rng:       rng,
		caches:    make(map[netsim.PeerID]*Cache),
		subnets:   make(map[uint64]*replica.Subnet),
		byKey:     make(map[keyspace.Key]*replica.Subnet),
		liveUntil: make(map[keyspace.Key]int),
	}
	for _, p := range idx.ActivePeers() {
		c, err := NewCache(cfg.PeerCapacity)
		if err != nil {
			return nil, err
		}
		pi.caches[p] = c
	}
	return pi, nil
}

// DHT exposes the underlying structured overlay.
func (pi *PartialIndex) DHT() dht.Index { return pi.idx }

// Config returns the index configuration.
func (pi *PartialIndex) Config() IndexConfig { return pi.cfg }

// SetKeyTtl changes the TTL attached to future inserts and refreshes —
// the knob a self-tuning deployment (core.TTLEstimator) turns. Entries
// already in the index keep their current expiry until their next hit.
// ttl ≤ 0 means future entries never expire.
func (pi *PartialIndex) SetKeyTtl(ttl int) { pi.cfg.KeyTtl = ttl }

// expiry converts the configured TTL into an absolute round.
func (pi *PartialIndex) expiry(now int) int {
	if pi.cfg.KeyTtl <= 0 {
		return NeverExpires
	}
	return now + pi.cfg.KeyTtl
}

// groupSignature fingerprints a replica group so subnets are shared between
// keys with the same group (every key of a trie leaf, for instance).
func groupSignature(members []netsim.PeerID) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, p := range members {
		v := uint64(p)
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

// subnetFor returns (building lazily) the replica subnetwork of key's
// group.
func (pi *PartialIndex) subnetFor(key keyspace.Key) (*replica.Subnet, error) {
	if s, ok := pi.byKey[key]; ok {
		return s, nil
	}
	group := pi.idx.ReplicaGroup(key)
	sig := groupSignature(group)
	s, ok := pi.subnets[sig]
	if !ok {
		var err error
		s, err = replica.NewSubnet(pi.net, group, pi.cfg.SubnetDegree, pi.rng)
		if err != nil {
			return nil, err
		}
		pi.subnets[sig] = s
	}
	pi.byKey[key] = s
	return s, nil
}

// Lookup searches the index for key on behalf of from: route through the
// DHT, check the responsible peer's cache, and — in FloodOnMiss mode —
// propagate the query through the replica subnetwork before giving up.
// A hit resets the entry's TTL when ResetTTLOnHit is set.
func (pi *PartialIndex) Lookup(from netsim.PeerID, key keyspace.Key) LookupResult {
	res := LookupResult{}
	now := pi.net.Round()
	rt := pi.idx.Route(from, key, pi.rng)
	res.RouteHops = rt.Hops
	if !rt.OK {
		return res
	}
	res.RouteOK = true
	if v, ok := pi.caches[rt.Responsible].Get(key, now); ok {
		res.Hit, res.Value, res.AnsweredBy = true, v, rt.Responsible
		pi.noteHit(key, rt.Responsible, now)
		return res
	}
	if !pi.cfg.FloodOnMiss {
		return res
	}
	subnet, err := pi.subnetFor(key)
	if err != nil {
		return res
	}
	fs := subnet.Flood(rt.Responsible, func(p netsim.PeerID) bool {
		_, ok := pi.caches[p].Get(key, now)
		return ok
	}, stats.MsgReplicaFlood)
	res.FloodMsgs = fs.Messages
	if fs.Found {
		v, _ := pi.caches[fs.FoundAt].Get(key, now)
		res.Hit, res.Value, res.AnsweredBy = true, v, fs.FoundAt
		pi.noteHit(key, fs.FoundAt, now)
	}
	return res
}

// noteHit applies the TTL reset at the answering peer.
func (pi *PartialIndex) noteHit(key keyspace.Key, at netsim.PeerID, now int) {
	if !pi.cfg.ResetTTLOnHit || pi.cfg.KeyTtl <= 0 {
		return
	}
	exp := pi.expiry(now)
	pi.caches[at].Refresh(key, exp, now)
	if exp > pi.liveUntil[key] {
		pi.liveUntil[key] = exp
	}
}

// InsertResult reports one index insert.
type InsertResult struct {
	// OK reports whether the entry reached at least one online replica.
	OK bool
	// Stored is how many peers installed the entry.
	Stored int
	// RouteHops and GossipMsgs break down the cost.
	RouteHops  int
	GossipMsgs int
}

// Insert routes key to its responsible peer and gossips the entry through
// the replica subnetwork, installing it with the configured TTL at every
// online member the rumor reaches — the insert leg of the selection
// algorithm (the second cSIndx2 of eq. 17).
func (pi *PartialIndex) Insert(from netsim.PeerID, key keyspace.Key, value Value) InsertResult {
	res := InsertResult{}
	now := pi.net.Round()
	rt := pi.idx.Route(from, key, pi.rng)
	res.RouteHops = rt.Hops
	if !rt.OK {
		return res
	}
	subnet, err := pi.subnetFor(key)
	if err != nil {
		return res
	}
	fs := subnet.Flood(rt.Responsible, nil, stats.MsgReplicaFlood)
	res.GossipMsgs = fs.Messages
	exp := pi.expiry(now)
	for _, p := range subnet.Members() {
		if !pi.net.Online(p) {
			continue
		}
		if pi.caches[p].Put(key, value, exp, now) {
			res.Stored++
		}
	}
	if res.Stored > 0 {
		res.OK = true
		if exp > pi.liveUntil[key] {
			pi.liveUntil[key] = exp
		}
	}
	return res
}

// Seed installs key at every member of its replica group without sending
// messages: initial state for the index-everything and oracle baselines
// (their indexes exist before the measurement window opens).
func (pi *PartialIndex) Seed(key keyspace.Key, value Value) error {
	subnet, err := pi.subnetFor(key)
	if err != nil {
		return err
	}
	now := pi.net.Round()
	exp := pi.expiry(now)
	for _, p := range subnet.Members() {
		pi.caches[p].Put(key, value, exp, now)
	}
	if exp > pi.liveUntil[key] {
		pi.liveUntil[key] = exp
	}
	return nil
}

// Update routes a new value for key to its responsible peer and gossips it
// to the replicas — the proactive consistency traffic (cUpd, eq. 9) the
// index-everything baseline pays for every key update. Only peers already
// holding the key (or with room) store the new version.
func (pi *PartialIndex) Update(from netsim.PeerID, key keyspace.Key, value Value) InsertResult {
	res := InsertResult{}
	now := pi.net.Round()
	rt := pi.idx.Route(from, key, pi.rng)
	res.RouteHops = rt.Hops
	if !rt.OK {
		return res
	}
	subnet, err := pi.subnetFor(key)
	if err != nil {
		return res
	}
	fs := subnet.Flood(rt.Responsible, nil, stats.MsgUpdate)
	res.GossipMsgs = fs.Messages
	exp := pi.expiry(now)
	for _, p := range subnet.Members() {
		if !pi.net.Online(p) {
			continue
		}
		if pi.caches[p].Put(key, value, exp, now) {
			res.Stored++
		}
	}
	res.OK = res.Stored > 0
	if res.OK && exp > pi.liveUntil[key] {
		pi.liveUntil[key] = exp
	}
	return res
}

// IndexedKeys returns the number of keys currently live in the index — the
// quantity eq. 15 predicts in expectation. Long-expired bookkeeping is
// pruned as a side effect.
func (pi *PartialIndex) IndexedKeys() int {
	now := pi.net.Round()
	n := 0
	for key, exp := range pi.liveUntil {
		if exp <= now {
			delete(pi.liveUntil, key)
			continue
		}
		n++
	}
	return n
}

// ExactIndexedKeys counts the distinct keys with at least one live replica
// by scanning every cache — the ground truth IndexedKeys approximates
// (IndexedKeys can overcount when capacity evictions removed a key's last
// replica before its bookkeeping expiry). Linear in total cache content;
// meant for tests and occasional measurements.
func (pi *PartialIndex) ExactIndexedKeys() int {
	now := pi.net.Round()
	live := make(map[keyspace.Key]bool)
	for _, c := range pi.caches {
		for key := range c.entries {
			if live[key] {
				continue
			}
			if _, ok := c.Get(key, now); ok {
				live[key] = true
			}
		}
	}
	return len(live)
}

// Maintain runs one round of DHT routing-table probing.
func (pi *PartialIndex) Maintain() dht.MaintenanceStats {
	return pi.idx.Maintain(pi.rng)
}
