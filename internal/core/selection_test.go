package core

import (
	"math/rand/v2"
	"testing"

	"pdht/internal/keyspace"
	"pdht/internal/netsim"
	"pdht/internal/stats"
)

// fakeBroadcaster simulates the unstructured network: it knows which keys
// exist and charges a fixed fee per search.
type fakeBroadcaster struct {
	net      *netsim.Network
	existing map[keyspace.Key]Value
	fee      int
	searches int
}

func (b *fakeBroadcaster) Search(from netsim.PeerID, key keyspace.Key, rng *rand.Rand) (Value, bool, int) {
	b.searches++
	b.net.Send(stats.MsgBroadcast, int64(b.fee))
	v, ok := b.existing[key]
	return v, ok, b.fee
}

func testPDHT(t *testing.T, seed uint64) (*PDHT, *fakeBroadcaster, *netsim.Network) {
	t.Helper()
	pi, net, rng := testIndex(t, ttlConfig(), seed)
	bc := &fakeBroadcaster{net: net, existing: make(map[keyspace.Key]Value), fee: 100}
	return NewPDHT(pi, bc, rng), bc, net
}

func TestQueryMissThenBroadcastThenInsert(t *testing.T) {
	p, bc, _ := testPDHT(t, 1)
	key := k("article-1")
	bc.existing[key] = 11

	out := p.Query(3, key)
	if !out.Answered || out.FromIndex {
		t.Fatalf("first query should answer from broadcast: %+v", out)
	}
	if out.Value != 11 {
		t.Errorf("value = %v", out.Value)
	}
	if out.BroadcastMsgs != 100 {
		t.Errorf("broadcast msgs = %d", out.BroadcastMsgs)
	}
	if out.InsertMsgs == 0 {
		t.Error("broadcast success must insert into the index")
	}

	// Second query: answered from the index, no broadcast.
	out2 := p.Query(4, key)
	if !out2.Answered || !out2.FromIndex {
		t.Fatalf("second query should hit the index: %+v", out2)
	}
	if out2.BroadcastMsgs != 0 || out2.InsertMsgs != 0 {
		t.Errorf("index hit should not broadcast or insert: %+v", out2)
	}
	if bc.searches != 1 {
		t.Errorf("broadcaster searched %d times, want 1", bc.searches)
	}
	// The index hit must be cheaper than the miss path.
	if out2.Total() >= out.Total() {
		t.Errorf("hit cost %d not below miss cost %d", out2.Total(), out.Total())
	}
}

func TestQueryNonexistentKey(t *testing.T) {
	p, bc, _ := testPDHT(t, 2)
	out := p.Query(5, k("no-such-article"))
	if out.Answered {
		t.Fatal("answered a query for nothing")
	}
	if out.InsertMsgs != 0 {
		t.Error("inserted a nonexistent key")
	}
	if bc.searches != 1 {
		t.Errorf("searches = %d", bc.searches)
	}
	if p.Index().IndexedKeys() != 0 {
		t.Error("index grew on a failed query")
	}
}

func TestUnpopularKeysTimeOutPopularStay(t *testing.T) {
	// The paper's headline behaviour (§5.1): frequently queried keys stay
	// in the index; unpopular ones fall out after keyTtl.
	p, bc, net := testPDHT(t, 3)
	hot, cold := k("hot"), k("cold")
	bc.existing[hot] = 1
	bc.existing[cold] = 2

	p.Query(0, hot)
	p.Query(0, cold)
	// Query hot every 30 rounds (TTL is 50); never query cold again.
	for r := 1; r <= 120; r++ {
		net.AdvanceRound()
		if r%30 == 0 {
			out := p.Query(netsim.PeerID(r%256), hot)
			if !out.FromIndex {
				t.Fatalf("round %d: hot key missed the index", r)
			}
		}
	}
	if got := p.Index().IndexedKeys(); got != 1 {
		t.Errorf("IndexedKeys = %d, want only the hot key", got)
	}
	// Cold key is re-fetchable, at broadcast price.
	out := p.Query(9, cold)
	if !out.Answered || out.FromIndex {
		t.Errorf("cold key should need a broadcast again: %+v", out)
	}
}

func TestAdaptationToDistributionShift(t *testing.T) {
	// §5.2/§6: the index must follow a change in query popularity — old
	// favorites expire, new favorites enter.
	p, bc, net := testPDHT(t, 4)
	oldKeys := make([]keyspace.Key, 5)
	newKeys := make([]keyspace.Key, 5)
	for i := range oldKeys {
		oldKeys[i] = keyspace.Key(uint64(i+1) * 0x9e3779b97f4a7c15)
		newKeys[i] = keyspace.Key(uint64(i+100) * 0x9e3779b97f4a7c15)
		bc.existing[oldKeys[i]] = Value(i)
		bc.existing[newKeys[i]] = Value(i + 100)
	}
	// Phase 1: old keys are hot.
	for r := 0; r < 100; r++ {
		net.AdvanceRound()
		if r%10 == 0 {
			for _, key := range oldKeys {
				p.Query(netsim.PeerID(r%256), key)
			}
		}
	}
	if got := p.Index().IndexedKeys(); got != 5 {
		t.Fatalf("phase 1: IndexedKeys = %d, want 5", got)
	}
	// Phase 2: popularity flips.
	for r := 0; r < 150; r++ {
		net.AdvanceRound()
		if r%10 == 0 {
			for _, key := range newKeys {
				p.Query(netsim.PeerID(r%256), key)
			}
		}
	}
	if got := p.Index().IndexedKeys(); got != 5 {
		t.Fatalf("phase 2: IndexedKeys = %d, want 5 (new head only)", got)
	}
	// All new keys answer from the index; all old ones need broadcast.
	for _, key := range newKeys {
		if out := p.Query(1, key); !out.FromIndex {
			t.Error("new hot key not in index after shift")
		}
	}
	for _, key := range oldKeys {
		if out := p.Query(1, key); out.FromIndex {
			t.Error("stale key still indexed after shift")
		}
	}
}

func TestQueryCountsOnNetworkCounters(t *testing.T) {
	p, bc, net := testPDHT(t, 5)
	key := k("counted")
	bc.existing[key] = 3
	before := net.Counters().Total()
	out := p.Query(0, key)
	delta := net.Counters().Total() - before
	if delta != int64(out.Total()) {
		t.Errorf("counters moved by %d, outcome says %d", delta, out.Total())
	}
}
