package core

import (
	"fmt"
	"math"
)

// TTLEstimator self-tunes keyTtl from locally observable quantities — the
// mechanism the paper leaves as future work ("a mechanism to self-tune
// keyTtl based on the query distribution and frequency", §5.1.1), built
// here on the paper's own formula: keyTtl = 1/fMin with
// fMin = cIndKey/(cSUnstr − cSIndx) (eq. 2).
//
// Every quantity is estimated with an exponentially weighted moving average
// from events a peer sees anyway: the cost of its broadcast searches
// (cSUnstr), the hop count of its index lookups (cSIndx), and the
// network-wide maintenance load amortized per indexed key (cIndKey ≈ cRtn
// under the selection algorithm, which needs no proactive updates). The
// §5.1.1 sensitivity analysis is what makes this sound: a ±50% estimation
// error barely moves the savings, so EWMA-grade accuracy suffices.
type TTLEstimator struct {
	alpha float64 // EWMA weight of a new observation

	cSUnstr float64
	cSIndx  float64
	cRtn    float64
	nUnstr  int64
	nIndx   int64
	nRtn    int64
}

// NewTTLEstimator returns an estimator with the given EWMA weight in
// (0, 1]; 0.05–0.2 is sensible — fast enough to follow daily load swings,
// slow enough to smooth Poisson noise.
func NewTTLEstimator(alpha float64) (*TTLEstimator, error) {
	if alpha <= 0 || alpha > 1 || math.IsNaN(alpha) {
		return nil, fmt.Errorf("core: EWMA weight %v must be in (0,1]", alpha)
	}
	return &TTLEstimator{alpha: alpha}, nil
}

func (e *TTLEstimator) observe(field *float64, n *int64, x float64) {
	if x < 0 || math.IsNaN(x) || math.IsInf(x, 0) {
		return
	}
	*n++
	if *n == 1 {
		*field = x
		return
	}
	*field += e.alpha * (x - *field)
}

// ObserveBroadcast records the message cost of one unstructured search.
func (e *TTLEstimator) ObserveBroadcast(msgs float64) {
	e.observe(&e.cSUnstr, &e.nUnstr, msgs)
}

// ObserveLookup records the message cost of one index search (routing hops
// plus replica flood).
func (e *TTLEstimator) ObserveLookup(msgs float64) {
	e.observe(&e.cSIndx, &e.nIndx, msgs)
}

// ObserveMaintenance records one round of maintenance: probe messages sent
// network-wide and the number of keys currently indexed. Their ratio is the
// per-key holding cost cRtn of eq. 8.
func (e *TTLEstimator) ObserveMaintenance(probes float64, indexedKeys int) {
	if indexedKeys < 1 {
		indexedKeys = 1
	}
	e.observe(&e.cRtn, &e.nRtn, probes/float64(indexedKeys))
}

// Ready reports whether every component has at least one observation.
func (e *TTLEstimator) Ready() bool {
	return e.nUnstr > 0 && e.nIndx > 0 && e.nRtn > 0
}

// Estimates returns the current (cSUnstr, cSIndx, cRtn) estimates.
func (e *TTLEstimator) Estimates() (cSUnstr, cSIndx, cRtn float64) {
	return e.cSUnstr, e.cSIndx, e.cRtn
}

// FMin returns the estimated minimum worthwhile query frequency (eq. 2),
// or ok=false when the estimator is not ready or broadcast search is no
// more expensive than the index (indexing can then never amortize).
func (e *TTLEstimator) FMin() (float64, bool) {
	if !e.Ready() {
		return 0, false
	}
	denom := e.cSUnstr - e.cSIndx
	if denom <= 0 || e.cRtn <= 0 {
		return 0, false
	}
	return e.cRtn / denom, true
}

// KeyTtl returns the recommended expiration time 1/fMin in whole rounds,
// clamped to [min, max] (both in rounds; max ≤ 0 means unclamped above).
// ok=false means no recommendation yet — keep the current setting.
func (e *TTLEstimator) KeyTtl(min, max int) (int, bool) {
	fMin, ok := e.FMin()
	if !ok {
		return 0, false
	}
	ttl := int(math.Round(1 / fMin))
	if ttl < min {
		ttl = min
	}
	if max > 0 && ttl > max {
		ttl = max
	}
	return ttl, true
}
