// Package core implements the paper's primary contribution: the
// query-adaptive partial DHT (Section 5). Keys enter the distributed index
// when a broadcast search resolves them, live there with an expiration time
// keyTtl that is reset whenever the storing peer receives a query for them,
// and silently fall out when they stop being queried. The effect is that
// exactly the keys worth indexing — those queried at least about once per
// keyTtl — stay in the index, with no global coordination.
//
// The package is written against the dht.Index interface, so the selection
// algorithm runs unchanged over the P-Grid-style trie or the Chord-style
// ring (the paper: "generic enough such that it can be used for any of the
// DHT based systems"). PDHT is the simulator-side selection algorithm;
// Cache is the capacity-bounded TTL index one peer holds (the live node
// subsystem reuses it verbatim); TTLEstimator is the online keyTtl
// self-tuner of §5.1.1.
package core

import (
	"fmt"
	"math"

	"pdht/internal/keyspace"
)

// Value is the payload stored under an index key. The simulator stores
// article identifiers/version numbers; real deployments would store
// pointers to content holders.
type Value uint64

// NeverExpires is the expiry of entries in a TTL-free index (the
// index-everything baseline).
const NeverExpires = math.MaxInt

// cacheEntry is one stored key with its lapse round.
type cacheEntry struct {
	value   Value
	expires int
}

// MutationKind labels one cache state change for the mutation hook.
type MutationKind uint8

const (
	// MutInsert: a key was stored (or overwritten) until Expires.
	MutInsert MutationKind = iota + 1
	// MutRefresh: a live entry's expiry was extended to Expires.
	MutRefresh
	// MutExpire: an expired entry was collected (lazily on sight, or by a
	// Live/Keys/Entries sweep).
	MutExpire
	// MutEvict: a live entry was evicted to make room for an insert.
	MutEvict
)

// Mutation describes one cache state change: what happened to which key,
// and — for inserts and refreshes — the expiry round the entry now carries.
type Mutation struct {
	Kind    MutationKind
	Key     keyspace.Key
	Value   Value
	Expires int
}

// SetHook installs fn to observe every cache mutation: inserts, refreshes
// that actually extended an expiry, expirations and capacity evictions.
// This is the write-through seam of the persistence plane (internal/store):
// a node that journals every Mutation can rebuild this cache after a crash.
// The hook is called synchronously under whatever serialization the caller
// already imposes on the cache (the Cache itself is not goroutine-safe);
// nil (the default) removes the hook and costs the mutation paths nothing.
func (c *Cache) SetHook(fn func(Mutation)) { c.hook = fn }

// notify funnels one mutation to the hook, if any.
func (c *Cache) notify(kind MutationKind, key keyspace.Key, value Value, expires int) {
	if c.hook != nil {
		c.hook(Mutation{Kind: kind, Key: key, Value: value, Expires: expires})
	}
}

// Cache is one peer's local index storage: at most capacity key–value
// pairs, each carrying an expiration round. Expired entries are treated as
// absent and collected lazily. This is the "cache of 100 key-value pairs
// that can be used for indexing" each peer contributes in the paper's
// scenario (stor).
type Cache struct {
	capacity int
	entries  map[keyspace.Key]cacheEntry
	hook     func(Mutation)
}

// NewCache returns an empty cache with the given capacity.
func NewCache(capacity int) (*Cache, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("core: cache capacity %d must be positive", capacity)
	}
	return &Cache{capacity: capacity, entries: make(map[keyspace.Key]cacheEntry, capacity)}, nil
}

// Capacity returns the maximum number of entries.
func (c *Cache) Capacity() int { return c.capacity }

// Get returns the value stored under key if it has not expired by round
// now. An expired entry is deleted on sight.
func (c *Cache) Get(key keyspace.Key, now int) (Value, bool) {
	e, ok := c.entries[key]
	if !ok {
		return 0, false
	}
	if e.expires <= now {
		delete(c.entries, key)
		c.notify(MutExpire, key, e.value, e.expires)
		return 0, false
	}
	return e.value, true
}

// Put stores key→value until the expires round. When the cache is full, the
// entry closest to expiry — the least recently queried under TTL-reset
// semantics — is evicted first; an incoming entry that would expire sooner
// than everything already stored is rejected. Returns whether the entry was
// stored.
func (c *Cache) Put(key keyspace.Key, value Value, expires, now int) bool {
	if expires <= now {
		return false
	}
	if _, exists := c.entries[key]; !exists && len(c.entries) >= c.capacity {
		if !c.evictOne(expires, now) {
			return false
		}
	}
	c.entries[key] = cacheEntry{value: value, expires: expires}
	c.notify(MutInsert, key, value, expires)
	return true
}

// evictOne makes room for an incoming entry: all expired entries are
// collected, and if none were, the live entry with the earliest expiry
// (ties broken by key) is evicted — provided it expires no later than the
// incoming entry. The full sweep and total tie-break keep simulation runs
// bit-for-bit reproducible despite Go's randomized map iteration.
func (c *Cache) evictOne(incomingExpires, now int) bool {
	var victim keyspace.Key
	best := math.MaxInt
	collected := false
	for k, e := range c.entries {
		if e.expires <= now {
			delete(c.entries, k)
			c.notify(MutExpire, k, e.value, e.expires)
			collected = true
			continue
		}
		if e.expires < best || (e.expires == best && k < victim) {
			best = e.expires
			victim = k
		}
	}
	if collected {
		return true
	}
	if best > incomingExpires {
		return false
	}
	v := c.entries[victim]
	delete(c.entries, victim)
	c.notify(MutEvict, victim, v.value, v.expires)
	return true
}

// Refresh resets the expiry of an existing, live entry — the TTL reset a
// query triggers at the storing peer (§5.1). Returns false if the key is
// absent or already expired.
func (c *Cache) Refresh(key keyspace.Key, expires, now int) bool {
	e, ok := c.entries[key]
	if !ok || e.expires <= now {
		if ok {
			delete(c.entries, key)
			c.notify(MutExpire, key, e.value, e.expires)
		}
		return false
	}
	if expires > e.expires {
		e.expires = expires
		c.entries[key] = e
		// Only an actual extension is worth a journal record: under
		// TTL-reset semantics a hot key is refreshed many times per round
		// and most of those resets change nothing.
		c.notify(MutRefresh, key, e.value, expires)
	}
	return true
}

// Live returns the number of unexpired entries at round now, collecting
// expired ones.
func (c *Cache) Live(now int) int {
	for k, e := range c.entries {
		if e.expires <= now {
			delete(c.entries, k)
			c.notify(MutExpire, k, e.value, e.expires)
		}
	}
	return len(c.entries)
}

// Keys returns the keys of all unexpired entries at round now, collecting
// expired ones. Order is unspecified. Live-node measurement plumbing: the
// cluster-wide distinct-key count is the ground truth behind eq. 15.
func (c *Cache) Keys(now int) []keyspace.Key {
	out := make([]keyspace.Key, 0, len(c.entries))
	for k, e := range c.entries {
		if e.expires <= now {
			delete(c.entries, k)
			c.notify(MutExpire, k, e.value, e.expires)
			continue
		}
		out = append(out, k)
	}
	return out
}

// Entry is one live cache row as Entries snapshots it: the key, its value,
// and the round it lapses.
type Entry struct {
	Key     keyspace.Key
	Value   Value
	Expires int
}

// Entries returns a snapshot of all unexpired entries at round now,
// collecting expired ones. Order is unspecified. This is the handoff and
// reporting surface: a caller that needs keys *with* their remaining
// lifetimes takes one consistent snapshot here instead of interleaving
// Keys with per-key Expires lookups that the expiry sweeper could race.
// Re-inserting a snapshot entry elsewhere with TTL = Expires−now preserves
// the paper's expiry semantics across the transfer.
//
// now must be computed under the same serialization that guards the cache:
// a round value captured before lock acquisition can go stale while the
// lock is contended, and the snapshot would then include entries already
// expired at snapshot time — exactly what the persistence and handoff
// layers must never receive.
func (c *Cache) Entries(now int) []Entry {
	out := make([]Entry, 0, len(c.entries))
	for k, e := range c.entries {
		if e.expires <= now {
			delete(c.entries, k)
			c.notify(MutExpire, k, e.value, e.expires)
			continue
		}
		out = append(out, Entry{Key: k, Value: e.value, Expires: e.expires})
	}
	return out
}

// EntriesWhere is Entries restricted to keys satisfying keep (nil keeps
// everything). Expired entries are collected exactly as Entries does. The
// handoff path uses it to snapshot only the keys inside the arcs a
// membership change can actually move (keyspace.ArcSet.Contains) instead
// of copying the whole index per view transition.
func (c *Cache) EntriesWhere(now int, keep func(keyspace.Key) bool) []Entry {
	if keep == nil {
		return c.Entries(now)
	}
	var out []Entry
	for k, e := range c.entries {
		if e.expires <= now {
			delete(c.entries, k)
			c.notify(MutExpire, k, e.value, e.expires)
			continue
		}
		if keep(k) {
			out = append(out, Entry{Key: k, Value: e.value, Expires: e.expires})
		}
	}
	return out
}

// Expires returns the expiry round of a live entry, with ok=false when the
// key is absent or expired.
func (c *Cache) Expires(key keyspace.Key, now int) (int, bool) {
	e, ok := c.entries[key]
	if !ok || e.expires <= now {
		return 0, false
	}
	return e.expires, true
}
