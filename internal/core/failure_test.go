package core

import (
	"testing"

	"pdht/internal/keyspace"
	"pdht/internal/netsim"
)

// Failure injection: the selection algorithm under partial and total
// infrastructure loss. The paper's premise is extreme transience; these
// tests pin down what each layer does when its dependencies vanish
// mid-operation.

func TestInsertIntoFullyOfflineGroupFails(t *testing.T) {
	pi, net, _ := testIndex(t, ttlConfig(), 40)
	key := k("doomed")
	for _, p := range pi.DHT().ReplicaGroup(key) {
		net.SetOnline(p, false)
	}
	ir := pi.Insert(200, key, 1)
	if ir.OK || ir.Stored != 0 {
		t.Errorf("insert into a dead group claimed success: %+v", ir)
	}
	if pi.IndexedKeys() != 0 {
		t.Error("dead-group insert grew the index")
	}
}

func TestLookupWithWholeDHTOffline(t *testing.T) {
	pi, net, _ := testIndex(t, ttlConfig(), 41)
	pi.Insert(0, k("x"), 1)
	for _, p := range pi.DHT().ActivePeers() {
		net.SetOnline(p, false)
	}
	lr := pi.Lookup(260, k("x")) // peer 260 is outside the DHT and online
	if lr.RouteOK || lr.Hit {
		t.Errorf("lookup succeeded against a dead DHT: %+v", lr)
	}
}

func TestQueryFallsBackToBroadcastWhenDHTDead(t *testing.T) {
	// End-to-end: the whole DHT goes dark, but content still exists in
	// the unstructured network. Queries must still be answered — at
	// broadcast price — and the failed insert must not corrupt anything.
	pi, net, rng := testIndex(t, ttlConfig(), 42)
	bc := &fakeBroadcaster{net: net, existing: map[keyspace.Key]Value{k("news"): 9}, fee: 50}
	p := NewPDHT(pi, bc, rng)
	for _, peer := range pi.DHT().ActivePeers() {
		net.SetOnline(peer, false)
	}
	out := p.Query(260, k("news"))
	if !out.Answered {
		t.Fatal("query unanswered although the content exists in the overlay")
	}
	if out.FromIndex {
		t.Error("claimed an index hit with the DHT offline")
	}
	if out.BroadcastMsgs != 50 {
		t.Errorf("broadcast msgs = %d", out.BroadcastMsgs)
	}
}

func TestRecoveryAfterBlackout(t *testing.T) {
	// The DHT dies, comes back, and the selection algorithm repopulates
	// it via the ordinary miss-broadcast-insert path: self-healing with
	// no special recovery code.
	pi, net, rng := testIndex(t, ttlConfig(), 43)
	bc := &fakeBroadcaster{net: net, existing: map[keyspace.Key]Value{k("phoenix"): 7}, fee: 50}
	p := NewPDHT(pi, bc, rng)

	if out := p.Query(1, k("phoenix")); !out.Answered {
		t.Fatal("warm-up query failed")
	}
	for _, peer := range pi.DHT().ActivePeers() {
		net.SetOnline(peer, false)
	}
	if out := p.Query(2, k("phoenix")); out.FromIndex {
		t.Fatal("index hit during blackout")
	}
	for _, peer := range pi.DHT().ActivePeers() {
		net.SetOnline(peer, true)
	}
	// First query after recovery re-inserts (the blackout-era entry
	// still lives in the caches, so this may even hit directly).
	p.Query(3, k("phoenix"))
	out := p.Query(4, k("phoenix"))
	if !out.FromIndex {
		t.Error("index did not recover after the blackout")
	}
}

func TestCapacityPressureEvictsColdestNotHottest(t *testing.T) {
	// Shrink the caches so the working set exceeds capacity: the
	// TTL-soonest (least-recently-queried) entries must be the ones to
	// go, keeping hot keys hittable.
	cfg := ttlConfig()
	cfg.PeerCapacity = 2
	pi, net, rng := testIndex(t, cfg, 44)
	bc := &fakeBroadcaster{net: net, existing: make(map[keyspace.Key]Value), fee: 50}
	p := NewPDHT(pi, bc, rng)

	hot := k("hot")
	bc.existing[hot] = 1
	for i := 0; i < 40; i++ {
		cold := keyspace.Key(uint64(i+1000) * 0x9e3779b97f4a7c15)
		bc.existing[cold] = Value(i)
	}
	p.Query(0, hot)
	for i := 0; i < 40; i++ {
		net.AdvanceRound()
		// Keep the hot key hot…
		if i%3 == 0 {
			p.Query(netsim.PeerID(i%256), hot)
		}
		// …while cold keys churn through the tiny caches.
		p.Query(netsim.PeerID(i%256), keyspace.Key(uint64(i+1000)*0x9e3779b97f4a7c15))
	}
	out := p.Query(9, hot)
	if !out.FromIndex {
		t.Error("hot key evicted under capacity pressure despite constant queries")
	}
}
