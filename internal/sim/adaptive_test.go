package sim

import (
	"testing"

	"pdht/internal/workload"
)

// adaptiveConfig is a compact scenario whose per-key holding cost (env = 1)
// makes fMin large enough that the tail of the Zipf distribution is not
// worth indexing — the regime where the adaptive gate has a decision to make.
func adaptiveConfig() Config {
	cfg := quickConfig(StrategyPartialAdaptive)
	// High replication keeps broadcasts cheap (cSUnstr = peers/repl·dup)
	// and env = 1 makes holding an entry expensive, so fMin lands where
	// the Zipf tail genuinely is not worth indexing.
	cfg.Peers = 200
	cfg.Keys = 1000
	cfg.Stor = 50
	cfg.Repl = 10
	cfg.Env = 1
	cfg.FQry = 0.2
	cfg.Rounds = 200
	cfg.WarmupRounds = 60
	cfg.TunePeriod = 40
	cfg.KeyTtl = 4 // a deliberately poor static setting for the A/B below
	return cfg
}

// TestPartialAdaptiveRunsAndGates is the simulator-level smoke test of the
// control plane: the run completes, queries resolve, the tuner retunes, and
// below-fMin keys are measurably gated.
func TestPartialAdaptiveRunsAndGates(t *testing.T) {
	res, err := Run(adaptiveConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries == 0 || res.Answered != res.Queries {
		t.Fatalf("%d/%d queries answered, want all", res.Answered, res.Queries)
	}
	if res.Tuner.Retunes == 0 {
		t.Fatal("the control loop never retuned")
	}
	if res.GatedInserts == 0 {
		t.Fatal("no insert was gated; the fMin gate is inert")
	}
	if res.Tuner.MemoryBytes == 0 || res.Tuner.MemoryBytes > 1<<21 {
		t.Fatalf("sketch memory %d bytes outside the bounded range", res.Tuner.MemoryBytes)
	}
	if res.KeyTtlUsed == 4 {
		t.Fatal("keyTtl never moved off the static setting")
	}
	t.Logf("adaptive: ttl %d→%d, hit rate %.3f, %d gated inserts, fMin %.4g",
		4, res.KeyTtlUsed, res.HitRate, res.GatedInserts, res.Tuner.Last.FMin)
}

// TestAdaptiveBeatsStaticUnderShift is the A/B the strategy exists for: the
// same scenario, same seed, same mid-run popularity shuffle — once with the
// static (badly sized) keyTtl, once with the control plane driving it. The
// adaptive run must pay fewer messages per query.
func TestAdaptiveBeatsStaticUnderShift(t *testing.T) {
	shift := workload.Schedule{{Round: 130, Kind: workload.ShiftShuffle}}

	static := adaptiveConfig()
	static.Strategy = StrategyPartialTTL
	static.Shifts = shift
	sres, err := Run(static)
	if err != nil {
		t.Fatal(err)
	}

	adaptive := adaptiveConfig()
	adaptive.Shifts = shift
	ares, err := Run(adaptive)
	if err != nil {
		t.Fatal(err)
	}

	if ares.Answered != ares.Queries || sres.Answered != sres.Queries {
		t.Fatalf("unanswered queries: adaptive %d/%d, static %d/%d",
			ares.Answered, ares.Queries, sres.Answered, sres.Queries)
	}
	staticCost := sres.MsgPerRound / (float64(sres.Queries) / float64(sres.MeasuredRounds))
	adaptiveCost := ares.MsgPerRound / (float64(ares.Queries) / float64(ares.MeasuredRounds))
	t.Logf("messages per query: static %.1f (ttl %d, hit %.3f) vs adaptive %.1f (ttl %d, hit %.3f, %d gated)",
		staticCost, sres.KeyTtlUsed, sres.HitRate, adaptiveCost, ares.KeyTtlUsed, ares.HitRate, ares.GatedInserts)
	if adaptiveCost >= staticCost {
		t.Fatalf("adaptive pays %.2f msgs/query, static %.2f — the control plane does not pay for itself",
			adaptiveCost, staticCost)
	}
}
