package sim

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sync"

	"pdht/internal/netsim"
	"pdht/internal/stats"
	"pdht/internal/topk"
	"pdht/internal/workload"
	"pdht/internal/zipf"
)

// topkSim is StrategyPartialTopK's query plane: the real threshold-
// algorithm coordinator (topk.Run) over the simulated population. Content
// follows a group/copies model — every copy document of a term-group
// matches all of the group's terms and lives at a distinct peer — so the
// exact top-k answer of a query is known in closed form (min(k, copies)
// documents at the full score) and every resolved query can be checked
// against that oracle.
//
// Like the run loop's single adaptTuner, one shared Planner stands in for
// every peer running the same control loop over its share of the stream;
// TopKUniform replaces it with the full-fan-out UniformPlan baseline.
type topkSim struct {
	cfg    Config
	net    *netsim.Network
	addrs  []string
	byAddr map[string]netsim.PeerID
	// stores holds each peer's term→doc content, immutable after
	// construction so the coordinator's concurrent probes can read it
	// without locks.
	stores  []map[uint64]uint64
	planner *topk.Planner     // nil under TopKUniform
	counts  map[uint64]uint64 // exact term counts, the count-min stand-in
	queries *workload.TopKGen

	// Measurement-window accumulators the run loop drains into Result.
	mQueries, mLegs, mEarly int
}

// topkTermID maps (group, slot) onto the disjoint term-key universe.
func (t *topkSim) topkTermID(group, slot int) uint64 {
	return uint64(group*t.cfg.TopKGroupSize+slot) + 1
}

// topkDocID names the copy-th replica document of a group. Copies carry
// distinct IDs — they are distinct documents with identical term sets, so
// the oracle's top-k has min(k, copies) members, which keeps early
// termination reachable whenever k ≤ copies.
func (t *topkSim) topkDocID(group, copy int) uint64 {
	return uint64(group*t.cfg.TopKCopies+copy) + 1
}

// newTopKSim places the group/copies corpus and wires the workload and
// planner.
func newTopKSim(cfg Config, net *netsim.Network, rng *rand.Rand) (*topkSim, error) {
	t := &topkSim{
		cfg:    cfg,
		net:    net,
		addrs:  make([]string, cfg.Peers),
		byAddr: make(map[string]netsim.PeerID, cfg.Peers),
		stores: make([]map[uint64]uint64, cfg.Peers),
	}
	for i := range t.addrs {
		t.addrs[i] = fmt.Sprintf("peer:%d", i)
		t.byAddr[t.addrs[i]] = netsim.PeerID(i)
	}
	for g := 0; g < cfg.TopKGroups; g++ {
		for c, p := range rng.Perm(cfg.Peers)[:cfg.TopKCopies] {
			if t.stores[p] == nil {
				t.stores[p] = make(map[uint64]uint64)
			}
			for s := 0; s < cfg.TopKGroupSize; s++ {
				t.stores[p][t.topkTermID(g, s)] = t.topkDocID(g, c)
			}
		}
	}

	sampler := zipf.NewSampler(zipf.MustNew(cfg.Alpha, cfg.TopKGroups),
		rand.New(rand.NewPCG(cfg.Seed^0x7777, cfg.Seed^0x8888)))
	var err error
	t.queries, err = workload.NewTopKGen(sampler, cfg.Peers, cfg.FQry,
		cfg.TopKTerms, cfg.TopKGroupSize,
		rand.New(rand.NewPCG(cfg.Seed^0x9999, cfg.Seed^0xaaaa)))
	if err != nil {
		return nil, err
	}
	if !cfg.TopKUniform {
		t.counts = make(map[uint64]uint64)
		t.planner = topk.NewPlanner(func(term uint64) uint64 { return t.counts[term] })
	}
	return t, nil
}

// answer coordinates one top-k query with the real round protocol and
// checks the result against the closed-form oracle. Wire legs land on the
// network's MsgTopK counter; window accumulators move when measuring.
func (t *topkSim) answer(q workload.TopKQuery, measuring bool) (exact bool) {
	terms := make([]uint64, len(q.Slots))
	for i, s := range q.Slots {
		terms[i] = t.topkTermID(q.Group, s)
	}
	var weights []float64
	if t.planner != nil {
		// Observe before planning, exactly as the node coordinator feeds
		// its sketch: the query's own terms already weigh into its plan.
		for _, term := range terms {
			t.counts[term]++
		}
		weights = t.planner.Weights(terms)
	}

	self := t.addrs[q.Origin]
	var plan topk.Plan
	if t.planner != nil {
		plan = t.planner.Plan(t.addrs, self, t.cfg.TopKK, t.cfg.TopKCopies)
	} else {
		plan = topk.UniformPlan(t.addrs, self, t.cfg.TopKK)
	}

	// Snapshot liveness before the concurrent probes: the fabric itself is
	// single-threaded by design.
	online := make([]bool, len(t.addrs))
	for i := range online {
		online[i] = t.net.Online(netsim.PeerID(i))
	}
	type source struct {
		addr  string
		score float64
	}
	var bmu sync.Mutex
	best := make(map[uint64]source)
	probe := func(_ context.Context, addr string, req topk.Req) (topk.Resp, error) {
		p := t.byAddr[addr]
		if !online[p] {
			return topk.Resp{}, fmt.Errorf("sim: peer %s offline", addr)
		}
		st := t.stores[p]
		resp := topk.Serve(req, func(term uint64) (uint64, bool) {
			doc, ok := st[term]
			return doc, ok
		}, nil)
		bmu.Lock()
		for _, e := range resp.Entries {
			if cur, ok := best[e.Doc]; !ok || e.Score > cur.score {
				best[e.Doc] = source{addr: addr, score: e.Score}
			}
		}
		bmu.Unlock()
		return resp, nil
	}

	res := topk.Run(context.Background(), topk.RunConfig{
		K:       t.cfg.TopKK,
		Terms:   terms,
		Weights: weights,
		Plan:    plan,
	}, probe, nil)

	t.net.Send(stats.MsgTopK, int64(res.Legs))
	if t.planner != nil {
		for _, e := range res.Entries {
			if src, ok := best[e.Doc]; ok {
				t.planner.Credit(src.addr)
			}
		}
	}
	if measuring {
		t.mQueries++
		t.mLegs += res.Legs
		if res.Early {
			t.mEarly++
		}
	}

	// The oracle: min(k, copies) copy documents of the group, each at the
	// full score (every copy matches every query term).
	full := 0.0
	if weights == nil {
		full = float64(len(terms))
	} else {
		for _, w := range weights {
			full += w
		}
	}
	want := t.cfg.TopKK
	if t.cfg.TopKCopies < want {
		want = t.cfg.TopKCopies
	}
	if len(res.Entries) != want {
		return false
	}
	for _, e := range res.Entries {
		if e.Score != full {
			return false
		}
	}
	return true
}
