package sim

import (
	"testing"

	"pdht/internal/stats"
)

// topkConfig scales the scenario down to a fast A/B: 64 peers, 50 term-
// groups replicated at 12 peers each, 3-term queries asking for the top 4.
func topkConfig(uniform bool) Config {
	cfg := DefaultConfig()
	cfg.Strategy = StrategyPartialTopK
	cfg.Peers = 64
	cfg.Keys = 200
	cfg.Repl = 10
	cfg.FQry = 0.05
	cfg.Rounds = 80
	cfg.WarmupRounds = 40
	cfg.TopKK = 4
	cfg.TopKTerms = 3
	cfg.TopKGroups = 50
	cfg.TopKGroupSize = 4
	cfg.TopKCopies = 12
	cfg.TopKUniform = uniform
	return cfg
}

// The headline A/B of the adaptive planner: at identical workloads and
// identical (exact) answers, the yield-history plan must pay fewer wire
// legs per query than the uniform full fan-out, by terminating early on
// the Zipf head's queries.
func TestAdaptiveTopKBeatsUniformK(t *testing.T) {
	uni, err := Run(topkConfig(true))
	if err != nil {
		t.Fatal(err)
	}
	ada, err := Run(topkConfig(false))
	if err != nil {
		t.Fatal(err)
	}

	for name, res := range map[string]Result{"uniform": uni, "adaptive": ada} {
		if res.Queries == 0 {
			t.Fatalf("%s run issued no queries", name)
		}
		// Both sides must answer every query exactly — the saving below
		// is only meaningful at equal answer quality.
		if res.Answered != res.Queries {
			t.Fatalf("%s answered %d of %d queries exactly", name, res.Answered, res.Queries)
		}
		if res.ByClass[stats.MsgTopK] == 0 {
			t.Fatalf("%s run recorded no MsgTopK traffic", name)
		}
	}

	// The uniform baseline pays the full fan-out on every query: all
	// members probed once, only the coordinator's self-scan free.
	if want := float64(uni.Config.Peers - 1); uni.TopKLegsPerQuery != want {
		t.Fatalf("uniform legs/query = %v, want the full fan-out %v", uni.TopKLegsPerQuery, want)
	}
	if uni.TopKEarlyRate != 0 {
		t.Fatalf("uniform early-termination rate = %v, want 0 (it drains everything)", uni.TopKEarlyRate)
	}

	// The observed saving is ~2×; 20% is the regression floor.
	if ada.TopKLegsPerQuery >= 0.8*uni.TopKLegsPerQuery {
		t.Fatalf("adaptive legs/query = %v did not beat uniform %v by ≥20%%",
			ada.TopKLegsPerQuery, uni.TopKLegsPerQuery)
	}
	if ada.TopKEarlyRate == 0 {
		t.Fatal("adaptive planner never terminated a query early")
	}
	t.Logf("legs/query: uniform %.1f, adaptive %.1f (early rate %.2f)",
		uni.TopKLegsPerQuery, ada.TopKLegsPerQuery, ada.TopKEarlyRate)
}

// StrategyPartialTopK's extra configuration is validated.
func TestTopKConfigValidation(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.TopKK = 0 },
		func(c *Config) { c.TopKTerms = 0 },
		func(c *Config) { c.TopKTerms = c.TopKGroupSize + 1 },
		func(c *Config) { c.TopKGroups = 0 },
		func(c *Config) { c.TopKCopies = 0 },
		func(c *Config) { c.TopKCopies = c.Peers + 1 },
		func(c *Config) { c.SelfTuneTTL = true },
	}
	for i, mut := range mutations {
		cfg := topkConfig(false)
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
	if s, err := ParseStrategy("partialTopK"); err != nil || s != StrategyPartialTopK {
		t.Fatalf("ParseStrategy(partialTopK) = %v, %v", s, err)
	}
	if got := StrategyPartialTopK.String(); got != "partialTopK" {
		t.Fatalf("String() = %q", got)
	}
}
