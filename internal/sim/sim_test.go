package sim

import (
	"math"
	"testing"

	"pdht/internal/churn"
	"pdht/internal/stats"
	"pdht/internal/workload"
)

// quickConfig returns a fast test configuration (seconds for the whole
// file) that keeps the Table 1 proportions.
func quickConfig(s Strategy) Config {
	cfg := DefaultConfig()
	cfg.Strategy = s
	cfg.Peers = 1000
	cfg.Keys = 2000
	cfg.Repl = 10
	cfg.Rounds = 120
	cfg.WarmupRounds = 40
	return cfg
}

func TestConfigValidation(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.Strategy = Strategy(99) },
		func(c *Config) { c.Peers = 0 },
		func(c *Config) { c.OverlayDegree = 0 },
		func(c *Config) { c.SubnetDegree = 0 },
		func(c *Config) { c.Walkers = 0 },
		func(c *Config) { c.Redundancy = 0 },
		func(c *Config) { c.Rounds = 0 },
		func(c *Config) { c.WarmupRounds = -1 },
		func(c *Config) { c.KeyTtl = -5 },
		func(c *Config) { c.TraceEvery = -1 },
		func(c *Config) { c.Churn = churn.Model{MeanOnline: -1, MeanOffline: 5} },
	}
	for i, mut := range mutations {
		cfg := DefaultConfig()
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestStrategyString(t *testing.T) {
	names := map[Strategy]string{
		StrategyNoIndex:      "noIndex",
		StrategyIndexAll:     "indexAll",
		StrategyPartialIdeal: "partial",
		StrategyPartialTTL:   "partialTTL",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(s), s.String(), want)
		}
	}
}

func TestRunRejectsInvalidConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Peers = -1
	if _, err := Run(cfg); err == nil {
		t.Error("Run accepted invalid config")
	}
}

func TestAllStrategiesAnswerEverythingWithoutChurn(t *testing.T) {
	for _, s := range []Strategy{StrategyNoIndex, StrategyIndexAll, StrategyPartialIdeal, StrategyPartialTTL} {
		res, err := Run(quickConfig(s))
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if res.Queries == 0 {
			t.Fatalf("%v: no queries measured", s)
		}
		if res.Answered != res.Queries {
			t.Errorf("%v: answered %d of %d queries in a static network",
				s, res.Answered, res.Queries)
		}
	}
}

func TestStrategyCostOrderingMatchesFig1(t *testing.T) {
	// At the busy frequency (1/30), Fig. 1's ordering is
	// partial < indexAll < noIndex, and the TTL algorithm sits between
	// ideal partial and noIndex.
	costs := make(map[Strategy]float64)
	for _, s := range []Strategy{StrategyNoIndex, StrategyIndexAll, StrategyPartialIdeal, StrategyPartialTTL} {
		res, err := Run(quickConfig(s))
		if err != nil {
			t.Fatal(err)
		}
		costs[s] = res.MsgPerRound
	}
	if costs[StrategyPartialIdeal] > costs[StrategyIndexAll]*1.1 {
		t.Errorf("ideal partial (%v) should not exceed indexAll (%v)",
			costs[StrategyPartialIdeal], costs[StrategyIndexAll])
	}
	if costs[StrategyIndexAll] >= costs[StrategyNoIndex] {
		t.Errorf("at 1/30 indexAll (%v) must beat noIndex (%v)",
			costs[StrategyIndexAll], costs[StrategyNoIndex])
	}
	if costs[StrategyPartialTTL] >= costs[StrategyNoIndex] {
		t.Errorf("TTL selection (%v) must beat noIndex (%v)",
			costs[StrategyPartialTTL], costs[StrategyNoIndex])
	}
}

func TestMeasurementsTrackModelWithinBand(t *testing.T) {
	// The simulator and the analytical model must agree on the order of
	// magnitude — the V1 validation experiment. The walk-based search
	// duplicates more than the model's dup = 1.8, and the trie
	// over-provisions active peers, so the band is generous.
	for _, s := range []Strategy{StrategyNoIndex, StrategyIndexAll, StrategyPartialIdeal, StrategyPartialTTL} {
		res, err := Run(quickConfig(s))
		if err != nil {
			t.Fatal(err)
		}
		ratio := res.MsgPerRound / res.ModelMsgPerRound
		if ratio < 0.4 || ratio > 3 {
			t.Errorf("%v: measured %v vs model %v (ratio %.2f) outside [0.4, 3]",
				s, res.MsgPerRound, res.ModelMsgPerRound, ratio)
		}
	}
}

func TestHitRateSemantics(t *testing.T) {
	noIdx, err := Run(quickConfig(StrategyNoIndex))
	if err != nil {
		t.Fatal(err)
	}
	if noIdx.HitRate != 0 {
		t.Errorf("noIndex hit rate = %v, want 0", noIdx.HitRate)
	}
	all, err := Run(quickConfig(StrategyIndexAll))
	if err != nil {
		t.Fatal(err)
	}
	if all.HitRate < 0.999 {
		t.Errorf("indexAll hit rate = %v, want 1", all.HitRate)
	}
	ttl, err := Run(quickConfig(StrategyPartialTTL))
	if err != nil {
		t.Fatal(err)
	}
	// The measured pIndxd must be high (Zipf head) but below 1 (cold
	// keys miss at least once).
	if ttl.HitRate < 0.6 || ttl.HitRate >= 1 {
		t.Errorf("TTL hit rate = %v, want in [0.6, 1)", ttl.HitRate)
	}
}

func TestTTLIndexSmallerThanFullIndex(t *testing.T) {
	ttl, err := Run(quickConfig(StrategyPartialTTL))
	if err != nil {
		t.Fatal(err)
	}
	if ttl.MeanIndexedKeys <= 0 {
		t.Fatal("TTL index never held anything")
	}
	if ttl.MeanIndexedKeys >= float64(ttl.Config.Keys) {
		t.Errorf("TTL index holds %v of %d keys — nothing expired",
			ttl.MeanIndexedKeys, ttl.Config.Keys)
	}
	if ttl.KeyTtlUsed <= 0 {
		t.Error("derived keyTtl not recorded")
	}
	if f := ttl.IndexFraction(); f <= 0 || f >= 1 {
		t.Errorf("IndexFraction = %v", f)
	}
}

func TestIndexShrinksAtLowerQueryRates(t *testing.T) {
	// Fig. 3's headline, measured: fewer queries → smaller TTL index.
	busy := quickConfig(StrategyPartialTTL)
	calm := quickConfig(StrategyPartialTTL)
	calm.FQry = 1.0 / 600.0
	calm.Rounds = 400 // calm traffic needs a longer window to stabilize
	busyRes, err := Run(busy)
	if err != nil {
		t.Fatal(err)
	}
	calmRes, err := Run(calm)
	if err != nil {
		t.Fatal(err)
	}
	if calmRes.MeanIndexedKeys >= busyRes.MeanIndexedKeys {
		t.Errorf("index: calm %v not below busy %v",
			calmRes.MeanIndexedKeys, busyRes.MeanIndexedKeys)
	}
}

func TestRunWithChurnStillAnswers(t *testing.T) {
	cfg := quickConfig(StrategyPartialTTL)
	cfg.Churn = churn.Model{MeanOnline: 600, MeanOffline: 200}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries == 0 {
		t.Fatal("no queries under churn")
	}
	rate := float64(res.Answered) / float64(res.Queries)
	if rate < 0.95 {
		t.Errorf("answer rate under churn = %v, want ≥ 0.95", rate)
	}
	if res.ByClass[stats.MsgMaintenance] <= 0 {
		t.Error("no maintenance traffic under churn")
	}
}

func TestDeterministicRuns(t *testing.T) {
	a, err := Run(quickConfig(StrategyPartialTTL))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(quickConfig(StrategyPartialTTL))
	if err != nil {
		t.Fatal(err)
	}
	if a.MsgPerRound != b.MsgPerRound || a.Queries != b.Queries || a.HitRate != b.HitRate {
		t.Errorf("same seed diverged: %v/%v vs %v/%v",
			a.MsgPerRound, a.HitRate, b.MsgPerRound, b.HitRate)
	}
	c := quickConfig(StrategyPartialTTL)
	c.Seed = 999
	cRes, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if cRes.MsgPerRound == a.MsgPerRound && cRes.Queries == a.Queries {
		t.Error("different seeds produced identical measurements")
	}
}

func TestTraceRecordsAdaptation(t *testing.T) {
	// The S2 experiment in miniature: shuffle the query distribution
	// mid-run; the hit rate must dip and then recover as the index
	// adapts (§5.2).
	cfg := quickConfig(StrategyPartialTTL)
	cfg.Rounds = 360
	cfg.WarmupRounds = 120
	cfg.KeyTtl = 60 // short TTL → fast adaptation at test scale
	shiftRound := 300
	cfg.Shifts = workload.Schedule{{Round: shiftRound, Kind: workload.ShiftShuffle}}
	cfg.TraceEvery = 30
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) == 0 {
		t.Fatal("no trace recorded")
	}
	var before, dip, after float64
	before, dip, after = -1, -1, -1
	for _, tp := range res.Trace {
		switch {
		case tp.Round == shiftRound-30+29 || (tp.Round < shiftRound && tp.Round >= shiftRound-31):
			before = tp.HitRate
		case tp.Round >= shiftRound && tp.Round < shiftRound+31 && dip < 0:
			dip = tp.HitRate
		case tp.Round >= shiftRound+149 && after < 0:
			after = tp.HitRate
		}
	}
	if before < 0 || dip < 0 || after < 0 {
		t.Fatalf("trace windows missing: before=%v dip=%v after=%v (trace %+v)", before, dip, after, res.Trace)
	}
	if dip >= before {
		t.Errorf("hit rate did not dip after the shuffle: before=%v dip=%v", before, dip)
	}
	if after <= dip+0.05 {
		t.Errorf("hit rate did not recover: dip=%v after=%v", dip, after)
	}
}

func TestNumActiveForCapacityFirst(t *testing.T) {
	p := quickConfig(StrategyIndexAll).ModelParams()
	// 2000 keys / stor 100 = 20 leaves → next pow2 is 32 → 320 peers.
	if got := numActiveFor(p, 2000); got != 320 {
		t.Errorf("numActiveFor(2000) = %d, want 320", got)
	}
	// Tiny index still needs at least one replica group.
	if got := numActiveFor(p, 1); got < p.Repl {
		t.Errorf("numActiveFor(1) = %d, below repl %d", got, p.Repl)
	}
	// Population-bound: never exceeds peers.
	if got := numActiveFor(p, 1e9); got > p.NumPeers {
		t.Errorf("numActiveFor(huge) = %d exceeds population %d", got, p.NumPeers)
	}
}

func TestModelParamsRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	p := cfg.ModelParams()
	if p.NumPeers != cfg.Peers || p.Keys != cfg.Keys || p.Repl != cfg.Repl ||
		math.Abs(p.FQry-cfg.FQry) > 1e-15 || p.Stor != cfg.Stor {
		t.Errorf("ModelParams mismatch: %+v vs %+v", p, cfg)
	}
}

// TestReplicationMasksChurn is the replicated-vs-single A/B under churn:
// the same workload, the same churn process, the same pinned keyTtl — the
// runs differ only in the replica-set size. With r=1 every entry lost to an
// offline peer is a hit-rate cliff until the next miss re-inserts it; with
// r=5 the replica flood fails over to an online copy, so both the index hit
// rate and the overall answer rate must come out measurably higher.
func TestReplicationMasksChurn(t *testing.T) {
	run := func(repl int) Result {
		cfg := quickConfig(StrategyPartialTTL)
		cfg.Repl = repl
		cfg.KeyTtl = 60 // pinned: the A/B must not also move the TTL knob
		cfg.Churn = churn.Model{MeanOnline: 600, MeanOffline: 200}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Queries == 0 {
			t.Fatal("no queries under churn")
		}
		return res
	}
	single := run(1)
	replicated := run(5)
	t.Logf("hit rate: r=1 %.3f vs r=5 %.3f; answer rate: r=1 %.3f vs r=5 %.3f",
		single.HitRate, replicated.HitRate,
		float64(single.Answered)/float64(single.Queries),
		float64(replicated.Answered)/float64(replicated.Queries))
	if replicated.HitRate <= single.HitRate {
		t.Errorf("replication did not lift the hit rate under churn: r=5 %.3f vs r=1 %.3f",
			replicated.HitRate, single.HitRate)
	}
	ansSingle := float64(single.Answered) / float64(single.Queries)
	ansRepl := float64(replicated.Answered) / float64(replicated.Queries)
	if ansRepl <= ansSingle {
		t.Errorf("replication did not lift the answer rate under churn: r=5 %.3f vs r=1 %.3f",
			ansRepl, ansSingle)
	}
}
