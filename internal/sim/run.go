package sim

import (
	"fmt"
	"math/rand/v2"

	"pdht/internal/adapt"
	"pdht/internal/churn"
	"pdht/internal/core"
	"pdht/internal/dht"
	"pdht/internal/keyspace"
	"pdht/internal/metadata"
	"pdht/internal/model"
	"pdht/internal/netsim"
	"pdht/internal/overlay"
	"pdht/internal/stats"
	"pdht/internal/workload"
	"pdht/internal/zipf"
)

// overlayBroadcaster adapts the unstructured overlay to core.Broadcaster.
type overlayBroadcaster struct {
	graph *overlay.Graph
	store *overlay.Store
	byKey map[keyspace.Key]int
	cfg   overlay.SearchConfig
	repl  int
}

func (b *overlayBroadcaster) Search(from netsim.PeerID, key keyspace.Key, rng *rand.Rand) (core.Value, bool, int) {
	found, msgs := b.graph.Search(from, b.cfg, b.repl, b.store.OnlineHolderMatch(key), rng)
	if !found {
		return 0, false, msgs
	}
	return core.Value(b.byKey[key]), true, msgs
}

// run holds the wired-up state of one simulation.
type run struct {
	cfg     Config
	net     *netsim.Network
	rng     *rand.Rand
	keys    []keyspace.Key
	bc      *overlayBroadcaster
	churn   *churn.Process
	queries *workload.QueryGen
	updates *workload.UpdateGen

	// Index-bearing strategies.
	index *core.PartialIndex
	pdht  *core.PDHT
	tuner *core.TTLEstimator
	// The adaptive control plane (StrategyPartialAdaptive): one tuner
	// observing the whole population's stream, as if every peer ran the
	// same control loop over its share.
	adaptTuner   *adapt.Tuner
	gatedInserts int
	// The distributed top-k plane (StrategyPartialTopK).
	topk *topkSim
	// Oracle knowledge for StrategyPartialIdeal: ranks 1..maxRank are
	// indexed. Under the identity rank→key mapping that is key < maxRank.
	maxRank int

	keyTtl      int
	activePeers int
	modelMsg    float64

	hops          stats.Welford
	routeFailures int
}

// Run executes one simulation and returns its measurements.
func Run(cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	r, err := setup(cfg)
	if err != nil {
		return Result{}, err
	}
	return r.loop()
}

func setup(cfg Config) (*run, error) {
	p := cfg.ModelParams()
	r := &run{
		cfg: cfg,
		net: netsim.New(cfg.Peers),
		rng: rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0x9e3779b97f4a7c15)),
	}

	// Key universe: index i ↔ popularity rank i+1 under the identity
	// mapping.
	switch cfg.KeySource {
	case KeysCorpus:
		var err error
		r.keys, err = corpusKeys(cfg.Keys, cfg.Seed)
		if err != nil {
			return nil, err
		}
	default:
		r.keys = make([]keyspace.Key, cfg.Keys)
		for i := range r.keys {
			r.keys[i] = keyspace.HashString(fmt.Sprintf("key:%d", i))
		}
	}
	byKey := make(map[keyspace.Key]int, cfg.Keys)
	for i, k := range r.keys {
		byKey[k] = i
	}

	// Unstructured overlay with randomly replicated content.
	graph, err := overlay.NewRandomGraph(r.net, cfg.OverlayDegree, r.rng)
	if err != nil {
		return nil, err
	}
	store := overlay.NewStore(r.net)
	for _, key := range r.keys {
		if _, err := store.ReplicateRandom(key, cfg.Repl, r.rng); err != nil {
			return nil, err
		}
	}
	r.bc = &overlayBroadcaster{
		graph: graph,
		store: store,
		byKey: byKey,
		cfg:   overlay.SearchConfig{Walkers: cfg.Walkers, FloodTTL: 64},
		repl:  cfg.Repl,
	}

	// Workload.
	sampler := zipf.NewSampler(zipf.MustNew(cfg.Alpha, cfg.Keys),
		rand.New(rand.NewPCG(cfg.Seed^0xabcd, cfg.Seed^0xef01)))
	r.queries, err = workload.NewQueryGen(sampler, cfg.Peers, cfg.FQry,
		rand.New(rand.NewPCG(cfg.Seed^0x1111, cfg.Seed^0x2222)))
	if err != nil {
		return nil, err
	}
	r.updates, err = workload.NewUpdateGen(cfg.Keys, cfg.FUpd,
		rand.New(rand.NewPCG(cfg.Seed^0x3333, cfg.Seed^0x4444)))
	if err != nil {
		return nil, err
	}

	// Analytical solution: sizes the DHT, derives keyTtl, and supplies
	// the prediction column.
	dist := zipf.MustNew(cfg.Alpha, cfg.Keys)
	sol, err := model.Solve(p, dist)
	if err != nil {
		return nil, err
	}
	r.maxRank = sol.MaxRank

	switch cfg.Strategy {
	case StrategyNoIndex:
		r.modelMsg = model.NoIndexCost(p)
		// No DHT at all.
	case StrategyIndexAll:
		r.modelMsg = model.IndexAllCost(p)
		r.activePeers = numActiveFor(p, float64(cfg.Keys))
		if err := r.buildIndex(core.IndexConfig{
			KeyTtl:       0,
			PeerCapacity: cfg.Stor,
			SubnetDegree: cfg.SubnetDegree,
		}); err != nil {
			return nil, err
		}
		for i, key := range r.keys {
			if err := r.index.Seed(key, core.Value(i)); err != nil {
				return nil, err
			}
		}
	case StrategyPartialIdeal:
		r.modelMsg = model.PartialCost(sol)
		r.activePeers = numActiveFor(p, float64(max(sol.MaxRank, 1)))
		if err := r.buildIndex(core.IndexConfig{
			KeyTtl:       0,
			PeerCapacity: cfg.Stor,
			SubnetDegree: cfg.SubnetDegree,
		}); err != nil {
			return nil, err
		}
		for i := 0; i < sol.MaxRank && i < len(r.keys); i++ {
			if err := r.index.Seed(r.keys[i], core.Value(i)); err != nil {
				return nil, err
			}
		}
	case StrategyPartialTTL, StrategyPartialAdaptive:
		r.keyTtl = cfg.KeyTtl
		if r.keyTtl == 0 {
			if cfg.SelfTuneTTL || cfg.Strategy == StrategyPartialAdaptive {
				// A deployment without the analytical model
				// starts from a coarse guess (ten minutes) and
				// lets its control loop correct it.
				r.keyTtl = 600
			} else {
				ideal := model.IdealKeyTtl(sol)
				if ideal < 1 {
					ideal = 1
				}
				r.keyTtl = int(ideal)
			}
		}
		if cfg.SelfTuneTTL {
			r.tuner, err = core.NewTTLEstimator(0.1)
			if err != nil {
				return nil, err
			}
		}
		if cfg.Strategy == StrategyPartialAdaptive {
			r.adaptTuner, err = adapt.NewTuner(cfg.Adapt)
			if err != nil {
				return nil, err
			}
		}
		// The prediction column and DHT sizing: partialTTL at the TTL it
		// runs with; partialAdaptive at the model-ideal TTL its control
		// loop should converge to (unless an explicit KeyTtl pins it).
		refTtl := float64(r.keyTtl)
		if cfg.Strategy == StrategyPartialAdaptive && cfg.KeyTtl == 0 {
			if ideal := model.IdealKeyTtl(sol); ideal >= 1 {
				refTtl = ideal
			}
		}
		ttlSol, err := model.SolveTTL(p, dist, refTtl)
		if err != nil {
			return nil, err
		}
		r.modelMsg = ttlSol.Cost
		r.activePeers = numActiveFor(p, ttlSol.IndexSize)
		if err := r.buildIndex(core.IndexConfig{
			KeyTtl:        r.keyTtl,
			PeerCapacity:  cfg.Stor,
			SubnetDegree:  cfg.SubnetDegree,
			FloodOnMiss:   true,
			ResetTTLOnHit: true,
		}); err != nil {
			return nil, err
		}
		r.pdht = core.NewPDHT(r.index, r.bc, r.rng)
		if t := r.adaptTuner; t != nil {
			r.pdht.SetInsertGate(func(k keyspace.Key) bool { return t.ShouldIndex(uint64(k)) })
		}
	case StrategyPartialTopK:
		// No index and no analytical counterpart: the top-k plane is the
		// reproduction's extension beyond the paper's point queries, so
		// the prediction column stays empty and cost is measured only.
		r.topk, err = newTopKSim(cfg, r.net,
			rand.New(rand.NewPCG(cfg.Seed^0xbbbb, cfg.Seed^0xcccc)))
		if err != nil {
			return nil, err
		}
	}

	// Churn last, so that construction sees the full population; the
	// process starts in its stationary distribution.
	if cfg.Churn.MeanOnline != 0 || cfg.Churn.MeanOffline != 0 {
		r.churn, err = churn.NewProcess(r.net, cfg.Churn,
			rand.New(rand.NewPCG(cfg.Seed^0x5555, cfg.Seed^0x6666)))
		if err != nil {
			return nil, err
		}
	}
	return r, nil
}

// buildIndex provisions the configured DHT backend over the first
// activePeers peers and the partial-index layer above it.
func (r *run) buildIndex(icfg core.IndexConfig) error {
	active := make([]netsim.PeerID, r.activePeers)
	for i := range active {
		active[i] = netsim.PeerID(i)
	}
	var (
		idx dht.Index
		err error
	)
	switch r.cfg.Backend {
	case BackendRing:
		idx, err = dht.NewRing(r.net, active, dht.RingConfig{
			Repl: r.cfg.Repl,
			Env:  r.cfg.Env,
		}, r.rng)
	case BackendKademlia:
		idx, err = dht.NewKademlia(r.net, active, dht.KademliaConfig{
			K:   r.cfg.Repl,
			Env: r.cfg.Env,
		}, r.rng)
	default:
		idx, err = dht.NewTrie(r.net, active, dht.TrieConfig{
			GroupSize:  r.cfg.Repl,
			Redundancy: r.cfg.Redundancy,
			Env:        r.cfg.Env,
		}, r.rng)
	}
	if err != nil {
		return err
	}
	r.index, err = core.NewPartialIndex(r.net, idx, icfg, r.rng)
	return err
}

// loop drives the rounds and collects measurements.
func (r *run) loop() (Result, error) {
	cfg := r.cfg
	res := Result{
		Config:           cfg,
		KeyTtlUsed:       r.keyTtl,
		ActivePeers:      r.activePeers,
		ModelMsgPerRound: r.modelMsg,
	}
	if cfg.CollectKeyCounts {
		res.KeyQueryCounts = make([]int, cfg.Keys)
	}
	var (
		qbuf        []workload.Query
		tqbuf       []workload.TopKQuery
		ubuf        []workload.Update
		baseline    map[stats.MsgClass]int64
		sizeSamples int
		sizeSum     float64

		// Per-trace-window accumulators.
		winStart   map[stats.MsgClass]int64
		winQueries int
		winHits    int
		winAns     int
	)
	if cfg.TraceEvery > 0 {
		winStart = r.net.Counters().Snapshot()
	}
	total := cfg.WarmupRounds + cfg.Rounds
	for round := 0; round < total; round++ {
		if round > 0 {
			r.net.AdvanceRound()
		}
		if r.churn != nil {
			r.churn.Step()
		}
		if r.topk != nil {
			cfg.Shifts.Apply(r.net.Round(), r.topk.queries.Sampler())
		} else {
			cfg.Shifts.Apply(r.net.Round(), r.queries.Sampler())
		}
		measuring := round >= cfg.WarmupRounds
		if round == cfg.WarmupRounds {
			baseline = r.net.Counters().Snapshot()
		}

		if r.index != nil {
			ms := r.index.Maintain()
			if r.tuner != nil {
				r.tuner.ObserveMaintenance(float64(ms.Probes), r.index.IndexedKeys())
				period := cfg.TunePeriod
				if period == 0 {
					period = 50
				}
				if round > 0 && round%period == 0 {
					if ttl, ok := r.tuner.KeyTtl(10, 0); ok {
						r.keyTtl = ttl
						r.index.SetKeyTtl(ttl)
					}
				}
			}
			if r.adaptTuner != nil {
				period := cfg.TunePeriod
				if period == 0 {
					period = 50
				}
				if round > 0 && round%period == 0 {
					in := adapt.Inputs{
						Members:      cfg.Peers,
						Observers:    cfg.Peers,
						Capacity:     cfg.Stor,
						Repl:         cfg.Repl,
						Env:          cfg.Env,
						WindowRounds: period,
					}
					if d, err := r.adaptTuner.Retune(in); err == nil {
						r.keyTtl = d.KeyTtl
						r.index.SetKeyTtl(d.KeyTtl)
					}
				}
			}
		}

		// Proactive updates: only the always-consistent strategies pay
		// them (§5.1 drops cUpd under TTL selection, with or without
		// the adaptive control plane).
		if r.index != nil && cfg.Strategy != StrategyPartialTTL && cfg.Strategy != StrategyPartialAdaptive {
			ubuf = r.updates.Round(ubuf)
			for _, u := range ubuf {
				if cfg.Strategy == StrategyPartialIdeal && u.Key >= r.maxRank {
					continue // not indexed, nothing to update
				}
				origin, ok := r.net.RandomOnline(r.rng)
				if !ok {
					continue
				}
				r.index.Update(origin, r.keys[u.Key], core.Value(u.Key))
			}
		}

		if r.topk != nil {
			// The planner's yield history decays on the same window
			// rotation the adaptive tuner uses, so shifted workloads'
			// new hot peers overtake the old.
			if r.topk.planner != nil {
				period := cfg.TunePeriod
				if period == 0 {
					period = 50
				}
				if round > 0 && round%period == 0 {
					r.topk.planner.Decay()
				}
			}
			tqbuf = r.topk.queries.Round(tqbuf)
			for _, q := range tqbuf {
				if !r.net.Online(q.Origin) {
					continue // offline peers don't query
				}
				exact := r.topk.answer(q, measuring)
				winQueries++
				if exact {
					winAns++
				}
				if measuring {
					res.Queries++
					if exact {
						res.Answered++
					}
				}
			}
		} else {
			qbuf = r.queries.Round(qbuf)
			for _, q := range qbuf {
				if !r.net.Online(q.Origin) {
					continue // offline peers don't query
				}
				answered, fromIndex := r.answer(q)
				winQueries++
				if answered {
					winAns++
				}
				if fromIndex {
					winHits++
				}
				if measuring {
					if res.KeyQueryCounts != nil {
						res.KeyQueryCounts[q.Key]++
					}
					res.Queries++
					if answered {
						res.Answered++
					}
					if fromIndex {
						res.HitRate++ // running count; normalized below
					}
				}
			}
		}

		if measuring && r.index != nil && (round-cfg.WarmupRounds)%10 == 0 {
			sizeSum += float64(r.index.IndexedKeys())
			sizeSamples++
		}

		if cfg.TraceEvery > 0 && (round+1)%cfg.TraceEvery == 0 {
			snap := r.net.Counters().Snapshot()
			var winMsgs int64
			for _, n := range stats.Diff(snap, winStart) {
				winMsgs += n
			}
			tp := TracePoint{
				Round:       r.net.Round(),
				MsgPerRound: float64(winMsgs) / float64(cfg.TraceEvery),
			}
			if r.index != nil {
				tp.IndexedKeys = r.index.IndexedKeys()
			}
			if winQueries > 0 {
				tp.HitRate = float64(winHits) / float64(winQueries)
				tp.AnswerRate = float64(winAns) / float64(winQueries)
			}
			res.Trace = append(res.Trace, tp)
			winStart = snap
			winQueries, winHits, winAns = 0, 0, 0
		}
	}

	res.MeasuredRounds = cfg.Rounds
	res.KeyTtlUsed = r.keyTtl // final value, after any self-tuning
	final := r.net.Counters().Snapshot()
	delta := stats.Diff(final, baseline)
	res.ByClass = make(map[stats.MsgClass]float64, len(delta))
	var totalMsgs int64
	for c, n := range delta {
		res.ByClass[c] = float64(n) / float64(cfg.Rounds)
		totalMsgs += n
	}
	res.MsgPerRound = float64(totalMsgs) / float64(cfg.Rounds)
	if res.Queries > 0 {
		res.HitRate /= float64(res.Queries)
	}
	if sizeSamples > 0 {
		res.MeanIndexedKeys = sizeSum / float64(sizeSamples)
	} else if cfg.Strategy == StrategyIndexAll {
		res.MeanIndexedKeys = float64(cfg.Keys)
	} else if cfg.Strategy == StrategyPartialIdeal {
		res.MeanIndexedKeys = float64(r.maxRank)
	}
	res.MeanLookupHops = r.hops.Mean()
	res.RouteFailures = r.routeFailures
	res.GatedInserts = r.gatedInserts
	if r.adaptTuner != nil {
		res.Tuner = r.adaptTuner.Snapshot()
	}
	if r.topk != nil && r.topk.mQueries > 0 {
		res.TopKLegsPerQuery = float64(r.topk.mLegs) / float64(r.topk.mQueries)
		res.TopKEarlyRate = float64(r.topk.mEarly) / float64(r.topk.mQueries)
	}
	return res, nil
}

// answer resolves one query under the configured strategy.
func (r *run) answer(q workload.Query) (answered, fromIndex bool) {
	key := r.keys[q.Key]
	switch r.cfg.Strategy {
	case StrategyNoIndex:
		_, found, _ := r.bc.Search(q.Origin, key, r.rng)
		return found, false
	case StrategyIndexAll:
		lr := r.index.Lookup(q.Origin, key)
		r.noteRoute(lr.RouteHops, lr.RouteOK)
		return lr.Hit, lr.Hit
	case StrategyPartialIdeal:
		// The oracle: peers know whether the key's current rank is
		// indexed. Under identity mapping rank = key index + 1.
		if q.Rank <= r.maxRank {
			lr := r.index.Lookup(q.Origin, key)
			r.noteRoute(lr.RouteHops, lr.RouteOK)
			if lr.Hit {
				return true, true
			}
			// Churn can hide all replicas of an indexed key; the
			// peer falls back to broadcast like eq. 13's miss
			// path.
			_, found, _ := r.bc.Search(q.Origin, key, r.rng)
			return found, false
		}
		_, found, _ := r.bc.Search(q.Origin, key, r.rng)
		return found, false
	case StrategyPartialTTL, StrategyPartialAdaptive:
		if r.adaptTuner != nil {
			r.adaptTuner.Observe(uint64(key))
		}
		out := r.pdht.Query(q.Origin, key)
		r.noteRoute(out.RouteHops, out.RouteOK)
		if out.InsertGated {
			r.gatedInserts++
		}
		if r.tuner != nil {
			r.tuner.ObserveLookup(float64(out.IndexMsgs))
			if out.BroadcastMsgs > 0 {
				r.tuner.ObserveBroadcast(float64(out.BroadcastMsgs))
			}
		}
		return out.Answered, out.FromIndex
	default:
		return false, false
	}
}

// corpusKeys builds a key universe of n distinct keys from generated news
// articles — the paper's 20-keys-per-article metadata population.
// Canonical predicates can repeat across articles (shared dates, authors,
// terms), so articles are generated in batches until n unique keys exist.
func corpusKeys(n int, seed uint64) ([]keyspace.Key, error) {
	keys := make([]keyspace.Key, 0, n)
	seen := make(map[keyspace.Key]bool, n)
	perBatch := n/15 + 8 // ~21 keys/article with cross-article repeats
	for batch := 0; len(keys) < n; batch++ {
		if batch > 64 {
			return nil, fmt.Errorf("sim: corpus cannot supply %d unique keys", n)
		}
		arts := metadata.GenerateArticles(perBatch, seed+uint64(batch)*0x9e3779b9)
		for i := range arts {
			for _, ik := range arts[i].Keys(20) {
				if seen[ik.Key] {
					continue
				}
				seen[ik.Key] = true
				keys = append(keys, ik.Key)
				if len(keys) == n {
					return keys, nil
				}
			}
		}
	}
	return keys, nil
}

// noteRoute records one index lookup's routing cost and outcome.
func (r *run) noteRoute(hops int, ok bool) {
	r.hops.Observe(float64(hops))
	if !ok {
		r.routeFailures++
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
