package sim

import (
	"math"
	"testing"
)

func TestBackendString(t *testing.T) {
	if BackendTrie.String() != "trie" || BackendRing.String() != "ring" ||
		BackendKademlia.String() != "kademlia" {
		t.Error("backend names wrong")
	}
}

func TestKademliaBackendRuns(t *testing.T) {
	cfg := quickConfig(StrategyPartialTTL)
	cfg.Backend = BackendKademlia
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Answered != res.Queries {
		t.Errorf("kademlia backend answered %d of %d", res.Answered, res.Queries)
	}
	if res.HitRate < 0.6 {
		t.Errorf("kademlia backend hit rate = %v", res.HitRate)
	}
}

func TestRingBackendRuns(t *testing.T) {
	// A1 ablation: the selection algorithm must work unchanged over a
	// Chord-style ring — the paper's DHT-genericity claim.
	cfg := quickConfig(StrategyPartialTTL)
	cfg.Backend = BackendRing
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Answered != res.Queries {
		t.Errorf("ring backend answered %d of %d", res.Answered, res.Queries)
	}
	if res.HitRate < 0.6 {
		t.Errorf("ring backend hit rate = %v", res.HitRate)
	}
}

func TestBackendsAgreeOnDynamics(t *testing.T) {
	// Same scenario on all three backends: hit rates and index sizes
	// must be close — the selection dynamics do not depend on the DHT
	// flavor.
	base := quickConfig(StrategyPartialTTL)
	results := make(map[Backend]Result)
	for _, b := range []Backend{BackendTrie, BackendRing, BackendKademlia} {
		cfg := base
		cfg.Backend = b
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%v: %v", b, err)
		}
		results[b] = res
	}
	ref := results[BackendTrie]
	for _, b := range []Backend{BackendRing, BackendKademlia} {
		if math.Abs(ref.HitRate-results[b].HitRate) > 0.1 {
			t.Errorf("hit rates diverge: trie=%v %v=%v",
				ref.HitRate, b, results[b].HitRate)
		}
		ratio := ref.MeanIndexedKeys / results[b].MeanIndexedKeys
		if ratio < 0.7 || ratio > 1.4 {
			t.Errorf("index sizes diverge: trie=%v %v=%v",
				ref.MeanIndexedKeys, b, results[b].MeanIndexedKeys)
		}
	}
}

func TestInvalidBackendRejected(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Backend = Backend(9)
	if err := cfg.Validate(); err == nil {
		t.Error("unknown backend accepted")
	}
}

func TestSelfTuningConvergesTowardModelTTL(t *testing.T) {
	// The self-tuner starts from a coarse 600-round guess; after enough
	// observations its TTL must land in the same decade as the paper's
	// 1/fMin choice.
	cfg := quickConfig(StrategyPartialTTL)
	cfg.SelfTuneTTL = true
	cfg.Rounds = 400
	cfg.TunePeriod = 40
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reference, err := Run(quickConfig(StrategyPartialTTL)) // model-derived TTL
	if err != nil {
		t.Fatal(err)
	}
	if res.KeyTtlUsed == 600 {
		t.Fatal("self-tuner never adjusted the TTL")
	}
	ratio := float64(res.KeyTtlUsed) / float64(reference.KeyTtlUsed)
	if ratio < 0.1 || ratio > 10 {
		t.Errorf("tuned TTL %d vs model TTL %d — off by more than a decade",
			res.KeyTtlUsed, reference.KeyTtlUsed)
	}
	// And the tuned system must still perform: §5.1.1 says ±50% TTL
	// error barely dents savings, so even rough tuning keeps the hit
	// rate close to the reference.
	if math.Abs(res.HitRate-reference.HitRate) > 0.15 {
		t.Errorf("self-tuned hit rate %v far from reference %v",
			res.HitRate, reference.HitRate)
	}
}

func TestSelfTuningValidation(t *testing.T) {
	cfg := quickConfig(StrategyPartialTTL)
	cfg.TunePeriod = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative TunePeriod accepted")
	}
}
