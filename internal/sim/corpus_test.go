package sim

import (
	"testing"
)

func TestKeySourceString(t *testing.T) {
	if KeysSynthetic.String() != "synthetic" || KeysCorpus.String() != "corpus" {
		t.Error("key source names wrong")
	}
}

func TestCorpusKeysUniqueAndSized(t *testing.T) {
	keys, err := corpusKeys(2000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2000 {
		t.Fatalf("got %d keys, want 2000", len(keys))
	}
	seen := make(map[uint64]bool, len(keys))
	for _, k := range keys {
		if seen[uint64(k)] {
			t.Fatal("duplicate key in corpus universe")
		}
		seen[uint64(k)] = true
	}
}

func TestCorpusKeysDeterministic(t *testing.T) {
	a, err := corpusKeys(500, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := corpusKeys(500, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("corpus keys differ across runs with the same seed")
		}
	}
}

func TestCorpusBackedSimulation(t *testing.T) {
	cfg := quickConfig(StrategyPartialTTL)
	cfg.KeySource = KeysCorpus
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Answered != res.Queries || res.Queries == 0 {
		t.Errorf("corpus run answered %d of %d", res.Answered, res.Queries)
	}
	if res.HitRate < 0.6 {
		t.Errorf("corpus run hit rate = %v", res.HitRate)
	}
	// The cost picture must stay in the same ballpark as synthetic keys —
	// the model does not care what the keys mean. (Exact equality is not
	// expected: a different key population lands on different trie
	// leaves, which changes flood orders and cache pressure.)
	synth, err := Run(quickConfig(StrategyPartialTTL))
	if err != nil {
		t.Fatal(err)
	}
	ratio := res.MsgPerRound / synth.MsgPerRound
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("corpus vs synthetic cost ratio %v", ratio)
	}
	if hitDiff := res.HitRate - synth.HitRate; hitDiff > 0.1 || hitDiff < -0.1 {
		t.Errorf("corpus vs synthetic hit rates diverge: %v vs %v", res.HitRate, synth.HitRate)
	}
}

func TestInvalidKeySourceRejected(t *testing.T) {
	cfg := DefaultConfig()
	cfg.KeySource = KeySource(7)
	if err := cfg.Validate(); err == nil {
		t.Error("unknown key source accepted")
	}
}
