// Package sim runs message-level simulations of the paper's scenario: a
// population of churning peers holding randomly replicated content,
// querying with Zipf-distributed frequencies, under one of five strategies —
// broadcast everything (noIndex, eq. 12), index everything (indexAll,
// eq. 11), ideal partial indexing with oracle knowledge (eq. 13), the
// decentralized TTL selection algorithm (eq. 17, the paper's contribution),
// and the selection algorithm under the live adaptive control plane
// (internal/adapt), which retunes keyTtl and gates below-fMin inserts from
// online frequency sketches.
//
// It is the measurement side of the reproduction: the analytical package
// predicts message rates, this package counts actual messages from actual
// floods, walks, lookups, gossip and probes over the substrates in
// internal/overlay, internal/dht and internal/replica.
package sim

import (
	"fmt"

	"pdht/internal/adapt"
	"pdht/internal/churn"
	"pdht/internal/model"
	"pdht/internal/stats"
	"pdht/internal/workload"
)

// Strategy selects how queries are answered.
type Strategy int

const (
	// StrategyNoIndex answers every query with an unstructured search.
	StrategyNoIndex Strategy = iota
	// StrategyIndexAll maintains a DHT over all keys and answers every
	// query from it, paying proactive update propagation.
	StrategyIndexAll
	// StrategyPartialIdeal is the Section-4 oracle: peers know which
	// keys are indexed (the maxRank most popular); queries for them go
	// to the index, the rest go straight to broadcast.
	StrategyPartialIdeal
	// StrategyPartialTTL is the Section-5 selection algorithm: no
	// global knowledge, TTL-cached entries, insert-on-miss.
	StrategyPartialTTL
	// StrategyPartialAdaptive is the selection algorithm under the live
	// control plane (internal/adapt): an online tuner sketches the query
	// stream, refits the model every TunePeriod rounds, drives keyTtl
	// from the fit, and gates inserts of keys whose estimated rate falls
	// below fMin. The A/B counterpart of StrategyPartialTTL under
	// mid-run popularity shifts.
	StrategyPartialAdaptive
	// StrategyPartialTopK runs the distributed top-k query plane
	// (internal/topk) over the simulated population: multi-term queries
	// resolved by the threshold-algorithm round protocol, with probe
	// schedules from either the adaptive Planner (yield history plus
	// sketch-fed term weights) or the uniform full-fan-out baseline
	// (Config.TopKUniform) — the A/B the adaptive planner's savings are
	// measured on.
	StrategyPartialTopK
)

// String names the strategy as the paper does.
func (s Strategy) String() string {
	switch s {
	case StrategyNoIndex:
		return "noIndex"
	case StrategyIndexAll:
		return "indexAll"
	case StrategyPartialIdeal:
		return "partial"
	case StrategyPartialTTL:
		return "partialTTL"
	case StrategyPartialAdaptive:
		return "partialAdaptive"
	case StrategyPartialTopK:
		return "partialTopK"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// ParseStrategy resolves a strategy name as printed by String.
func ParseStrategy(name string) (Strategy, error) {
	for _, s := range []Strategy{StrategyNoIndex, StrategyIndexAll, StrategyPartialIdeal, StrategyPartialTTL, StrategyPartialAdaptive, StrategyPartialTopK} {
		if s.String() == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("sim: unknown strategy %q (want noIndex, indexAll, partial, partialTTL, partialAdaptive or partialTopK)", name)
}

// ParseBackend resolves a backend name as printed by Backend.String.
func ParseBackend(name string) (Backend, error) {
	for _, b := range []Backend{BackendTrie, BackendRing, BackendKademlia} {
		if b.String() == name {
			return b, nil
		}
	}
	return 0, fmt.Errorf("sim: unknown backend %q (want trie, ring or kademlia)", name)
}

// Backend selects the structured overlay under the index — the paper's
// scheme is DHT-agnostic, and running all backends through the same
// experiments demonstrates it.
type Backend int

const (
	// BackendTrie is the P-Grid-style binary-trie DHT [Aber01].
	BackendTrie Backend = iota
	// BackendRing is the Chord-style ring DHT [StMo01].
	BackendRing
	// BackendKademlia is the XOR-metric DHT with iterative lookups.
	BackendKademlia
)

// String names the backend.
func (b Backend) String() string {
	switch b {
	case BackendTrie:
		return "trie"
	case BackendRing:
		return "ring"
	case BackendKademlia:
		return "kademlia"
	default:
		return fmt.Sprintf("backend(%d)", int(b))
	}
}

// KeySource selects where the simulated key universe comes from.
type KeySource int

const (
	// KeysSynthetic uses hashed synthetic identifiers ("key:0" …) —
	// cheap and sufficient for the cost experiments.
	KeysSynthetic KeySource = iota
	// KeysCorpus draws keys from a generated news corpus: the metadata
	// predicates of synthetic articles, exactly the key population the
	// paper's news system would index (2,000 articles × 20 keys).
	KeysCorpus
)

// String names the key source.
func (k KeySource) String() string {
	switch k {
	case KeysSynthetic:
		return "synthetic"
	case KeysCorpus:
		return "corpus"
	default:
		return fmt.Sprintf("keysource(%d)", int(k))
	}
}

// Config describes one simulation run. The zero value is not runnable; use
// DefaultConfig as a starting point.
type Config struct {
	Strategy Strategy
	// Backend selects the DHT implementation (default BackendTrie).
	Backend Backend
	// KeySource selects the key universe (default KeysSynthetic).
	KeySource KeySource

	// Scenario parameters, mirroring model.Params/Table 1.
	Peers int
	Keys  int
	Stor  int
	Repl  int
	Alpha float64
	FQry  float64
	FUpd  float64
	Env   float64
	Dup   float64 // used only for the model prediction columns
	Dup2  float64

	// Substrate knobs.
	OverlayDegree int // unstructured graph connections per peer
	SubnetDegree  int // replica gossip connections per member
	Walkers       int // random-walk search width
	// Redundancy is the trie's refs per routing level. The model's
	// routing-table size is log₂(numActivePeers) ≈ depth·1.7, so 2 keeps
	// the probing volume near eq. 8 while surviving churn.
	Redundancy int

	// KeyTtl for StrategyPartialTTL, in rounds. Zero derives the paper's
	// choice 1/fMin from the analytical model.
	KeyTtl int
	// SelfTuneTTL replaces the model-derived keyTtl with the online
	// estimator (core.TTLEstimator): the run starts from a deliberately
	// coarse initial TTL and retunes every TunePeriod rounds from
	// observed costs — the paper's §5.1.1 future-work mechanism.
	// StrategyPartialTTL only.
	SelfTuneTTL bool
	// TunePeriod is the retuning interval in rounds (default 50), shared
	// by SelfTuneTTL and StrategyPartialAdaptive.
	TunePeriod int
	// Adapt parameterizes the StrategyPartialAdaptive control plane;
	// zero fields take adapt.DefaultConfig.
	Adapt adapt.Config

	// Run length.
	Rounds       int
	WarmupRounds int

	// Churn; a zero model means a static network.
	Churn churn.Model

	// Shifts optionally rearranges query popularity mid-run.
	Shifts workload.Schedule

	// StrategyPartialTopK content and query shape. Terms are partitioned
	// into TopKGroups groups of TopKGroupSize; each group has TopKCopies
	// copy documents, each matching all of the group's terms, placed at
	// distinct random peers. Queries draw a Zipf-ranked group and ask for
	// the TopKK best documents matching TopKTerms of its terms.
	TopKK         int
	TopKTerms     int
	TopKGroups    int
	TopKGroupSize int
	TopKCopies    int
	// TopKUniform replaces the adaptive Planner with the full-fan-out
	// UniformPlan — the non-adaptive baseline of the A/B.
	TopKUniform bool

	// TraceEvery > 0 records a TracePoint every that many rounds
	// (including warmup), for time-series plots such as the adaptation
	// experiment.
	TraceEvery int

	// CollectKeyCounts records per-key query counts over the measurement
	// window (Result.KeyQueryCounts) — the observable a deployment would
	// feed zipf.EstimateAlpha to calibrate the model from live traffic.
	CollectKeyCounts bool

	Seed uint64
}

// TracePoint is one time-series sample of a traced run.
type TracePoint struct {
	Round       int
	HitRate     float64 // fraction of window queries answered from the index
	AnswerRate  float64 // fraction of window queries answered at all
	IndexedKeys int
	MsgPerRound float64 // window message rate
}

// DefaultConfig returns a laptop-scale version of the paper's scenario:
// the Table 1 proportions at one-tenth population, which keeps every
// cost relationship intact while letting the full strategy × frequency
// sweep run in seconds.
func DefaultConfig() Config {
	return Config{
		Strategy:      StrategyPartialTTL,
		Peers:         2000,
		Keys:          4000,
		Stor:          100,
		Repl:          20,
		Alpha:         1.2,
		FQry:          1.0 / 30.0,
		FUpd:          1.0 / 86400.0,
		Env:           1.0 / 14.0,
		Dup:           1.8,
		Dup2:          1.8,
		OverlayDegree: 4,
		SubnetDegree:  1,
		Walkers:       16,
		Redundancy:    2,
		Rounds:        300,
		WarmupRounds:  50,
		TopKK:         5,
		TopKTerms:     3,
		TopKGroups:    200,
		TopKGroupSize: 4,
		TopKCopies:    20,
		Seed:          1,
	}
}

// ModelParams translates the scenario into the analytical model's Params.
func (c Config) ModelParams() model.Params {
	return model.Params{
		NumPeers: c.Peers,
		Keys:     c.Keys,
		Stor:     c.Stor,
		Repl:     c.Repl,
		Alpha:    c.Alpha,
		FQry:     c.FQry,
		FUpd:     c.FUpd,
		Env:      c.Env,
		Dup:      c.Dup,
		Dup2:     c.Dup2,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.ModelParams().Validate(); err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	switch {
	case c.Strategy < StrategyNoIndex || c.Strategy > StrategyPartialTopK:
		return fmt.Errorf("sim: unknown strategy %d", int(c.Strategy))
	case c.SelfTuneTTL && c.Strategy == StrategyPartialAdaptive:
		return fmt.Errorf("sim: SelfTuneTTL is a StrategyPartialTTL mechanism; partialAdaptive has its own tuner")
	case c.OverlayDegree < 1 || c.OverlayDegree >= c.Peers:
		return fmt.Errorf("sim: OverlayDegree %d out of [1,%d)", c.OverlayDegree, c.Peers)
	case c.SubnetDegree < 1:
		return fmt.Errorf("sim: SubnetDegree %d must be positive", c.SubnetDegree)
	case c.Walkers < 1:
		return fmt.Errorf("sim: Walkers %d must be positive", c.Walkers)
	case c.Redundancy < 1:
		return fmt.Errorf("sim: Redundancy %d must be positive", c.Redundancy)
	case c.TraceEvery < 0:
		return fmt.Errorf("sim: TraceEvery %d must be non-negative", c.TraceEvery)
	case c.Rounds < 1:
		return fmt.Errorf("sim: Rounds %d must be positive", c.Rounds)
	case c.WarmupRounds < 0:
		return fmt.Errorf("sim: WarmupRounds %d must be non-negative", c.WarmupRounds)
	case c.KeyTtl < 0:
		return fmt.Errorf("sim: KeyTtl %d must be non-negative", c.KeyTtl)
	case c.Backend != BackendTrie && c.Backend != BackendRing && c.Backend != BackendKademlia:
		return fmt.Errorf("sim: unknown backend %d", int(c.Backend))
	case c.KeySource != KeysSynthetic && c.KeySource != KeysCorpus:
		return fmt.Errorf("sim: unknown key source %d", int(c.KeySource))
	case c.TunePeriod < 0:
		return fmt.Errorf("sim: TunePeriod %d must be non-negative", c.TunePeriod)
	}
	if c.Strategy == StrategyPartialTopK {
		switch {
		case c.TopKK < 1:
			return fmt.Errorf("sim: TopKK %d must be positive", c.TopKK)
		case c.TopKTerms < 1 || c.TopKTerms > c.TopKGroupSize:
			return fmt.Errorf("sim: TopKTerms %d out of [1,%d]", c.TopKTerms, c.TopKGroupSize)
		case c.TopKGroups < 1:
			return fmt.Errorf("sim: TopKGroups %d must be positive", c.TopKGroups)
		case c.TopKCopies < 1 || c.TopKCopies > c.Peers:
			return fmt.Errorf("sim: TopKCopies %d out of [1,%d]", c.TopKCopies, c.Peers)
		case c.SelfTuneTTL:
			return fmt.Errorf("sim: SelfTuneTTL is a StrategyPartialTTL mechanism; partialTopK has no index TTL")
		}
	}
	if c.Churn.MeanOnline != 0 || c.Churn.MeanOffline != 0 {
		if err := c.Churn.Validate(); err != nil {
			return fmt.Errorf("sim: %w", err)
		}
	}
	return nil
}

// Result is the measured outcome of one run.
type Result struct {
	Config Config
	// MeasuredRounds is the number of rounds inside the measurement
	// window.
	MeasuredRounds int
	// MsgPerRound is the measured total message rate — the quantity on
	// Fig. 1's y-axis.
	MsgPerRound float64
	// ByClass breaks the rate down into the model's cost components.
	ByClass map[stats.MsgClass]float64
	// Queries and Answered count query outcomes in the window.
	Queries  int
	Answered int
	// HitRate is the fraction of queries answered from the index — the
	// measured pIndxd.
	HitRate float64
	// MeanIndexedKeys is the time-averaged number of live index keys —
	// the measured eq. 15.
	MeanIndexedKeys float64
	// MeanLookupHops is the measured per-lookup routing cost — the
	// quantity eq. 7 models as ½·log₂(numActivePeers).
	MeanLookupHops float64
	// RouteFailures counts lookups that never reached a responsible
	// peer (stale routing state under churn).
	RouteFailures int
	// ActivePeers is how many peers the DHT was provisioned with (0 for
	// noIndex).
	ActivePeers int
	// KeyTtlUsed is the TTL the run actually used (derived or given).
	KeyTtlUsed int
	// ModelMsgPerRound is the analytical prediction for this strategy at
	// these parameters, for side-by-side comparison.
	ModelMsgPerRound float64
	// Trace holds the time series when Config.TraceEvery > 0.
	Trace []TracePoint
	// KeyQueryCounts holds per-key query counts over the measurement
	// window when Config.CollectKeyCounts is set, indexed by key index.
	KeyQueryCounts []int
	// GatedInserts counts broadcast-resolved keys the fMin gate refused
	// to index; Tuner is the control plane's final state. Both are zero
	// values unless Strategy == StrategyPartialAdaptive.
	GatedInserts int
	Tuner        adapt.Snapshot
	// TopKLegsPerQuery is the mean OpTopK wire legs one top-k query paid
	// and TopKEarlyRate the fraction that terminated before draining every
	// peer — StrategyPartialTopK's cost and savings figures (zero
	// otherwise).
	TopKLegsPerQuery float64
	TopKEarlyRate    float64
}

// IndexFraction returns the measured mean index size as a fraction of all
// keys (Fig. 3's solid curve).
func (r Result) IndexFraction() float64 {
	if r.Config.Keys == 0 {
		return 0
	}
	return r.MeanIndexedKeys / float64(r.Config.Keys)
}

// numActiveFor sizes the DHT for an expected steady-state index of
// expectedKeys keys. The model's numActivePeers = keys·repl/stor assumes
// perfect packing; a binary trie needs a power-of-two leaf count, and every
// leaf member replicates every key of the leaf, so leaves are chosen
// capacity-first: the smallest power of two with leaves·stor ≥ expectedKeys,
// at repl peers per leaf. The result slightly over-provisions relative to
// the model (documented in EXPERIMENTS.md) but never overflows peer caches.
func numActiveFor(p model.Params, expectedKeys float64) int {
	if expectedKeys < 1 {
		expectedKeys = 1
	}
	leaves := 1
	for float64(leaves)*float64(p.Stor) < expectedKeys {
		leaves <<= 1
	}
	active := leaves * p.Repl
	if active > p.NumPeers {
		// Population-bound: fall back to the largest power-of-two
		// leaf count the population can fill, accepting evictions.
		leaves = 1
		for (leaves<<1)*p.Repl <= p.NumPeers {
			leaves <<= 1
		}
		active = leaves * p.Repl
	}
	if active < p.Repl {
		active = p.Repl
	}
	return active
}
