package sim

import "testing"

func TestParseStrategy(t *testing.T) {
	for _, s := range []Strategy{StrategyNoIndex, StrategyIndexAll, StrategyPartialIdeal, StrategyPartialTTL} {
		got, err := ParseStrategy(s.String())
		if err != nil || got != s {
			t.Errorf("ParseStrategy(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := ParseStrategy("bogus"); err == nil {
		t.Error("bogus strategy accepted")
	}
	if _, err := ParseStrategy(""); err == nil {
		t.Error("empty strategy accepted")
	}
}

func TestParseBackend(t *testing.T) {
	for _, b := range []Backend{BackendTrie, BackendRing} {
		got, err := ParseBackend(b.String())
		if err != nil || got != b {
			t.Errorf("ParseBackend(%q) = %v, %v", b.String(), got, err)
		}
	}
	if _, err := ParseBackend("chord"); err == nil {
		t.Error("unknown backend accepted")
	}
}
