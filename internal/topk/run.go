package topk

import (
	"context"
	"math"
	"sort"
	"sync"
)

// ProbeFunc issues one probe to addr and returns its answer. The
// coordinator treats an error like a broadcast treats silence: the peer
// contributes nothing and stops holding the threshold bound up — content
// replication at the other holders keeps the answer correct, which is the
// round protocol's failover story.
type ProbeFunc func(ctx context.Context, addr string, req Req) (Resp, error)

// RunConfig parameterizes one coordinated top-k query.
type RunConfig struct {
	// K is how many results the caller wants.
	K int
	// Terms and Weights define the scoring scale; nil Weights means
	// uniform 1. Weights travel with every probe so all peers score
	// against the coordinator's scale.
	Terms   []uint64
	Weights []float64
	// Plan is the probe schedule (Planner.Plan or UniformPlan).
	Plan Plan
}

// RoundInfo is one round's summary, delivered to the OnRound hook for
// trace legs and logs.
type RoundInfo struct {
	Round      int
	Legs       int // wire legs issued this round
	Candidates int
	// Kth is the k-th best candidate score after the round; -Inf while
	// fewer than K candidates exist. Bound is the threshold the query
	// must meet to terminate.
	Kth   float64
	Bound float64
}

// Result is one resolved top-k query.
type Result struct {
	// Entries are the k best documents, (score desc, doc asc); fewer when
	// the whole cluster holds fewer matches.
	Entries []Entry
	// Rounds and Legs measure the protocol: probe rounds run and wire
	// legs paid (local self-scans are free).
	Rounds int
	Legs   int
	// Probed/Skipped/Failed partition the plan: peers contacted, peers
	// never probed because the bound was met first, probes that errored.
	Probed  int
	Skipped int
	Failed  int
	// Candidates is the final size of the candidate set — the heap the
	// pdht_topk_candidates gauge reports.
	Candidates int
	// Early reports that the threshold test stopped the query before
	// every peer was drained — the traffic the protocol saved.
	Early bool
}

// Run executes the threshold-algorithm round protocol. Each round probes
// the next batch of the plan (the batch doubles every round) and deepens
// already-probed peers whose unsent entries could still displace the k-th
// candidate; after merging, the query terminates as soon as the k-th
// candidate's score meets the threshold bound. onRound may be nil.
//
// Scores merge under max-aggregation: replicas of a document report the
// same local score, so the merged candidate keeps the best report and
// duplicates collapse. A canceled ctx stops probing and returns the best
// answer assembled so far.
func Run(ctx context.Context, cfg RunConfig, probe ProbeFunc, onRound func(RoundInfo)) Result {
	var res Result
	k := cfg.K
	if k > MaxK {
		k = MaxK
	}
	probes := cfg.Plan.Probes
	if k <= 0 || len(probes) == 0 || len(cfg.Terms) == 0 {
		return res
	}

	// maxScore = Σ positive weights: the best any document can score, and
	// the bound an unprobed peer holds over the query.
	maxScore := 0.0
	if len(cfg.Weights) == 0 {
		n := len(cfg.Terms)
		if n > MaxTerms {
			n = MaxTerms
		}
		maxScore = float64(n)
	} else {
		for i, w := range cfg.Weights {
			if i >= MaxTerms {
				break
			}
			if w > 0 && !math.IsInf(w, 0) {
				maxScore += w
			}
		}
	}

	type peerState struct {
		probed bool
		dead   bool
		offset int
		more   float64 // upper bound on this peer's unseen entries
	}
	st := make([]peerState, len(probes))
	for i := range st {
		st[i].more = maxScore
	}
	cand := make(map[uint64]float64)

	batch := cfg.Plan.FirstBatch
	if batch < 1 {
		batch = 1
	}
	for {
		kth := kthScore(cand, k)
		bound := 0.0
		for i := range st {
			if !st[i].dead && st[i].more > bound {
				bound = st[i].more
			}
		}
		if len(cand) >= k && kth >= bound {
			for i := range st {
				if !st[i].dead && (!st[i].probed || st[i].more > 0) {
					res.Early = true
					break
				}
			}
			break
		}

		// Schedule: deepen peers whose unsent entries could still matter,
		// then open the next batch of unprobed peers.
		var round []int
		for i := range st {
			if st[i].probed && !st[i].dead && st[i].more > 0 &&
				(len(cand) < k || st[i].more > kth) {
				round = append(round, i)
			}
		}
		opened := 0
		for i := range st {
			if !st[i].probed && opened < batch {
				round = append(round, i)
				opened++
			}
		}
		if len(round) == 0 || ctx.Err() != nil {
			break
		}

		resps := make([]Resp, len(round))
		errs := make([]error, len(round))
		var wg sync.WaitGroup
		for j, idx := range round {
			wg.Add(1)
			go func(j, idx int) {
				defer wg.Done()
				resps[j], errs[j] = probe(ctx, probes[idx].Addr, Req{
					Terms:   cfg.Terms,
					Weights: cfg.Weights,
					K:       probes[idx].K,
					Offset:  st[idx].offset,
				})
			}(j, idx)
		}
		wg.Wait()

		legs := 0
		for j, idx := range round {
			s := &st[idx]
			s.probed = true
			if !probes[idx].Local {
				legs++
			}
			if errs[j] != nil {
				s.dead = true
				s.more = 0
				res.Failed++
				continue
			}
			for _, e := range resps[j].Entries {
				if cur, ok := cand[e.Doc]; !ok || e.Score > cur {
					cand[e.Doc] = e.Score
				}
			}
			s.offset += len(resps[j].Entries)
			s.more = resps[j].More
			if s.more < 0 || math.IsNaN(s.more) {
				s.more = 0
			}
			if s.more > maxScore { // a lying peer cannot hold the bound up
				s.more = maxScore
			}
		}
		res.Rounds++
		res.Legs += legs
		batch *= 2

		if onRound != nil {
			onRound(RoundInfo{
				Round:      res.Rounds,
				Legs:       legs,
				Candidates: len(cand),
				Kth:        kthScore(cand, k),
				Bound:      bound,
			})
		}
	}

	for i := range st {
		if st[i].probed {
			res.Probed++
		} else {
			res.Skipped++
		}
	}
	res.Candidates = len(cand)

	all := make([]Entry, 0, len(cand))
	for doc, sc := range cand {
		all = append(all, Entry{Doc: doc, Score: sc})
	}
	sortEntries(all)
	if len(all) > k {
		all = all[:k]
	}
	res.Entries = all
	return res
}

// kthScore returns the k-th best candidate score, or -Inf while fewer
// than k candidates exist.
func kthScore(cand map[uint64]float64, k int) float64 {
	if len(cand) < k {
		return math.Inf(-1)
	}
	scores := make([]float64, 0, len(cand))
	for _, s := range cand {
		scores = append(scores, s)
	}
	// Selection by full sort: candidate sets are a few times k.
	sort.Float64s(scores)
	return scores[len(scores)-k]
}
