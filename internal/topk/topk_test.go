package topk

import (
	"context"
	"errors"
	"fmt"
	"math"
	"reflect"
	"sync"
	"testing"
)

// fleet is an in-memory cluster for coordinator tests: one content store
// per peer, addressed "p0", "p1", …
type fleet struct {
	stores []map[uint64]uint64
	mu     sync.Mutex
	calls  map[string]int // probes per peer, local or not
	down   map[string]bool
}

func newFleet(stores ...map[uint64]uint64) *fleet {
	return &fleet{stores: stores, calls: map[string]int{}, down: map[string]bool{}}
}

func (f *fleet) members() []string {
	out := make([]string, len(f.stores))
	for i := range f.stores {
		out[i] = fmt.Sprintf("p%d", i)
	}
	return out
}

func (f *fleet) probe(_ context.Context, addr string, req Req) (Resp, error) {
	f.mu.Lock()
	f.calls[addr]++
	dead := f.down[addr]
	f.mu.Unlock()
	if dead {
		return Resp{}, errors.New("connection refused")
	}
	var idx int
	fmt.Sscanf(addr, "p%d", &idx)
	return Serve(req, func(term uint64) (uint64, bool) {
		doc, ok := f.stores[idx][term]
		return doc, ok
	}, nil), nil
}

// oracle drains every peer and returns the exact global top-k.
func (f *fleet) oracle(terms []uint64, weights []float64, k int) []Entry {
	cand := map[uint64]float64{}
	for i := range f.stores {
		if f.down[f.members()[i]] {
			continue
		}
		resp := Serve(Req{Terms: terms, Weights: weights, K: MaxK}, func(term uint64) (uint64, bool) {
			doc, ok := f.stores[i][term]
			return doc, ok
		}, nil)
		for _, e := range resp.Entries {
			if e.Score > cand[e.Doc] {
				cand[e.Doc] = e.Score
			}
		}
	}
	all := make([]Entry, 0, len(cand))
	for doc, sc := range cand {
		all = append(all, Entry{Doc: doc, Score: sc})
	}
	sortEntries(all)
	if len(all) > k {
		all = all[:k]
	}
	return all
}

func TestServeRankingAndWindows(t *testing.T) {
	store := map[uint64]uint64{
		1: 100, // doc 100 matches terms 1, 2, 3 → score 3
		2: 100,
		3: 100,
		4: 200, // doc 200 matches terms 4, 5 → score 2
		5: 200,
		6: 300, // doc 300 matches term 6 → score 1
	}
	lookup := func(term uint64) (uint64, bool) { doc, ok := store[term]; return doc, ok }
	terms := []uint64{1, 2, 3, 4, 5, 6}

	resp := Serve(Req{Terms: terms, K: 2}, lookup, nil)
	want := []Entry{{Doc: 100, Score: 3}, {Doc: 200, Score: 2}}
	if !reflect.DeepEqual(resp.Entries, want) {
		t.Fatalf("entries = %+v, want %+v", resp.Entries, want)
	}
	if resp.More != 1 {
		t.Fatalf("More = %v, want 1 (doc 300 unsent)", resp.More)
	}

	// The deepening window continues the same ranking.
	resp = Serve(Req{Terms: terms, K: 2, Offset: 2}, lookup, nil)
	if len(resp.Entries) != 1 || resp.Entries[0].Doc != 300 || resp.More != 0 {
		t.Fatalf("offset window = %+v More=%v, want doc 300 then drained", resp.Entries, resp.More)
	}

	// Past the end: drained, empty.
	resp = Serve(Req{Terms: terms, K: 2, Offset: 9}, lookup, nil)
	if len(resp.Entries) != 0 || resp.More != 0 {
		t.Fatalf("past-end window = %+v More=%v, want empty drained", resp.Entries, resp.More)
	}
}

func TestServeWeightsAndTies(t *testing.T) {
	store := map[uint64]uint64{1: 10, 2: 20}
	lookup := func(term uint64) (uint64, bool) { doc, ok := store[term]; return doc, ok }
	resp := Serve(Req{Terms: []uint64{1, 2}, Weights: []float64{2, 0.5}, K: 2}, lookup, nil)
	want := []Entry{{Doc: 10, Score: 2}, {Doc: 20, Score: 0.5}}
	if !reflect.DeepEqual(resp.Entries, want) {
		t.Fatalf("weighted entries = %+v, want %+v", resp.Entries, want)
	}

	// Equal scores tie-break by ascending doc.
	resp = Serve(Req{Terms: []uint64{1, 2}, K: 2}, lookup, nil)
	if resp.Entries[0].Doc != 10 || resp.Entries[1].Doc != 20 {
		t.Fatalf("tie order = %+v, want doc 10 before 20", resp.Entries)
	}
}

// overScorer violates the threshold invariant; Serve must clamp it.
type overScorer struct{}

func (overScorer) Score(term, doc uint64, weight float64) float64 { return weight * 100 }

func TestServeClampsScorer(t *testing.T) {
	lookup := func(term uint64) (uint64, bool) { return 7, true }
	resp := Serve(Req{Terms: []uint64{1}, K: 1}, lookup, overScorer{})
	if resp.Entries[0].Score != 1 {
		t.Fatalf("score = %v, want clamped to weight 1", resp.Entries[0].Score)
	}
}

// twoHotFleet builds six peers where docs 100 and 101 each match all four
// query terms at two replica peers, and the cold peers hold partial
// matches only.
func twoHotFleet() (*fleet, []uint64) {
	terms := []uint64{1, 2, 3, 4}
	full := func(doc uint64) map[uint64]uint64 {
		return map[uint64]uint64{1: doc, 2: doc, 3: doc, 4: doc}
	}
	f := newFleet(
		full(100),                         // p0
		full(100),                         // p1 (replica of p0's content)
		full(101),                         // p2
		full(101),                         // p3
		map[uint64]uint64{1: 200, 2: 200}, // p4: partial match
		map[uint64]uint64{3: 300},         // p5: partial match
	)
	return f, terms
}

func TestRunMatchesOracleAndTerminatesEarly(t *testing.T) {
	f, terms := twoHotFleet()
	// Warm plan: the hot holders are known, so the first round covers
	// exactly them.
	plan := Plan{Probes: []Probe{
		{Addr: "p0", K: 2}, {Addr: "p2", K: 2},
		{Addr: "p1", K: 1}, {Addr: "p3", K: 1}, {Addr: "p4", K: 1}, {Addr: "p5", K: 1},
	}, FirstBatch: 2}
	res := Run(context.Background(), RunConfig{K: 2, Terms: terms, Plan: plan}, f.probe, nil)

	want := f.oracle(terms, nil, 2)
	if !reflect.DeepEqual(res.Entries, want) {
		t.Fatalf("entries = %+v, want oracle %+v", res.Entries, want)
	}
	if !res.Early {
		t.Fatal("expected early termination: both full-score docs found in round 1")
	}
	if res.Legs >= len(f.stores) {
		t.Fatalf("legs = %d, want fewer than the %d-peer fan-out", res.Legs, len(f.stores))
	}
	if res.Skipped == 0 {
		t.Fatal("expected cold peers to be skipped entirely")
	}
	if res.Rounds != 1 {
		t.Fatalf("rounds = %d, want 1", res.Rounds)
	}
}

func TestRunDrainsWhenBoundNotMet(t *testing.T) {
	// No doc matches every term, so nothing reaches maxScore and the
	// protocol must visit every peer before answering.
	f := newFleet(
		map[uint64]uint64{1: 10},
		map[uint64]uint64{2: 20},
		map[uint64]uint64{3: 30},
	)
	terms := []uint64{1, 2, 3}
	res := Run(context.Background(), RunConfig{K: 2, Terms: terms, Plan: UniformPlan(f.members(), "", 2)}, f.probe, nil)
	want := f.oracle(terms, nil, 2)
	if !reflect.DeepEqual(res.Entries, want) {
		t.Fatalf("entries = %+v, want oracle %+v", res.Entries, want)
	}
	if res.Early {
		t.Fatal("nothing reaches the bound; termination must be by draining")
	}
	if res.Probed != 3 || res.Skipped != 0 {
		t.Fatalf("probed/skipped = %d/%d, want 3/0", res.Probed, res.Skipped)
	}
}

func TestRunFailsOverToReplica(t *testing.T) {
	f, terms := twoHotFleet()
	f.down["p0"] = true // the primary holder of doc 100 is dead
	res := Run(context.Background(), RunConfig{K: 2, Terms: terms, Plan: UniformPlan(f.members(), "", 2)}, f.probe, nil)
	want := f.oracle(terms, nil, 2) // oracle skips the dead peer too
	if !reflect.DeepEqual(res.Entries, want) {
		t.Fatalf("entries = %+v, want %+v despite dead primary", res.Entries, want)
	}
	if res.Failed != 1 {
		t.Fatalf("failed = %d, want 1", res.Failed)
	}
	for _, e := range res.Entries {
		if e.Doc == 100 && e.Score != 4 {
			t.Fatalf("doc 100 score = %v, want 4 from replica p1", e.Score)
		}
	}
}

func TestRunDeepensExhaustedWindow(t *testing.T) {
	// One peer holds three docs; k_i = 1 forces deepening rounds until
	// the second-best doc is surfaced.
	f := newFleet(map[uint64]uint64{1: 10, 2: 10, 3: 20, 4: 30})
	terms := []uint64{1, 2, 3, 4}
	plan := Plan{Probes: []Probe{{Addr: "p0", K: 1}}, FirstBatch: 1}
	res := Run(context.Background(), RunConfig{K: 2, Terms: terms, Plan: plan}, f.probe, nil)
	want := []Entry{{Doc: 10, Score: 2}, {Doc: 20, Score: 1}}
	if !reflect.DeepEqual(res.Entries, want) {
		t.Fatalf("entries = %+v, want %+v", res.Entries, want)
	}
	if res.Rounds < 2 {
		t.Fatalf("rounds = %d, want ≥ 2 (k_i=1 must deepen)", res.Rounds)
	}
}

func TestRunLocalProbesAreFree(t *testing.T) {
	f, terms := twoHotFleet()
	plan := UniformPlan(f.members(), "p0", 2)
	res := Run(context.Background(), RunConfig{K: 2, Terms: terms, Plan: plan}, f.probe, nil)
	if res.Legs != res.Probed-1 {
		t.Fatalf("legs = %d with %d probed peers; the self-probe must not count", res.Legs, res.Probed)
	}
}

func TestRunCanceledContext(t *testing.T) {
	f, terms := twoHotFleet()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := Run(ctx, RunConfig{K: 2, Terms: terms, Plan: UniformPlan(f.members(), "", 2)}, f.probe, nil)
	if res.Legs != 0 || len(res.Entries) != 0 {
		t.Fatalf("canceled run issued %d legs, %d entries; want none", res.Legs, len(res.Entries))
	}
}

func TestRunRoundHook(t *testing.T) {
	f, terms := twoHotFleet()
	var rounds []RoundInfo
	Run(context.Background(), RunConfig{K: 2, Terms: terms, Plan: UniformPlan(f.members(), "", 2)},
		f.probe, func(ri RoundInfo) { rounds = append(rounds, ri) })
	if len(rounds) == 0 {
		t.Fatal("round hook never fired")
	}
	last := rounds[len(rounds)-1]
	if last.Candidates == 0 || math.IsInf(last.Kth, -1) {
		t.Fatalf("last round = %+v, want candidates and a finite kth", last)
	}
}

func TestPlannerLearnsHotPeers(t *testing.T) {
	p := NewPlanner(nil)
	members := []string{"pa", "pb", "pc", "pd"}
	for i := 0; i < 5; i++ {
		p.Credit("pc")
	}
	p.Credit("pd")
	plan := p.Plan(members, "", 4, 2)
	if plan.Probes[0].Addr != "pc" || plan.Probes[1].Addr != "pd" {
		t.Fatalf("probe order = %+v, want pc then pd first", plan.Probes)
	}
	if plan.Probes[0].K != 4 {
		t.Fatalf("hot k_i = %d, want full k", plan.Probes[0].K)
	}
	if cold := plan.Probes[3]; cold.K >= 4 {
		t.Fatalf("cold k_i = %d, want shallower than k", cold.K)
	}
	if plan.FirstBatch != 2 {
		t.Fatalf("first batch = %d, want the 2 hot peers", plan.FirstBatch)
	}

	// Decay lets a shifted workload's new head take over.
	for i := 0; i < 10; i++ {
		p.Decay()
	}
	for i := 0; i < 3; i++ {
		p.Credit("pa")
	}
	plan = p.Plan(members, "", 4, 2)
	if plan.Probes[0].Addr != "pa" {
		t.Fatalf("after decay+shift, probe order = %+v, want pa first", plan.Probes)
	}
}

func TestPlannerSelfFirstAndWeights(t *testing.T) {
	counts := map[uint64]uint64{7: 100}
	p := NewPlanner(func(term uint64) uint64 { return counts[term] })
	p.Credit("pb")
	plan := p.Plan([]string{"pa", "pb", "pc"}, "pc", 3, 2)
	if plan.Probes[0].Addr != "pc" || !plan.Probes[0].Local {
		t.Fatalf("probe order = %+v, want local self first", plan.Probes)
	}
	w := p.Weights([]uint64{7, 8})
	if w[0] <= w[1] {
		t.Fatalf("weights = %v, want the hot term weighted above the cold one", w)
	}
	if w[1] != 1 {
		t.Fatalf("cold term weight = %v, want 1", w[1])
	}
}

func TestUniformPlanFullFanout(t *testing.T) {
	plan := UniformPlan([]string{"a", "b", "c"}, "b", 5)
	if plan.FirstBatch != 3 {
		t.Fatalf("first batch = %d, want all 3", plan.FirstBatch)
	}
	for _, pr := range plan.Probes {
		if pr.K != 5 {
			t.Fatalf("k_i = %d, want uniform 5", pr.K)
		}
		if (pr.Addr == "b") != pr.Local {
			t.Fatalf("local flag wrong on %+v", pr)
		}
	}
}
