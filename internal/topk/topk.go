// Package topk executes distributed top-k queries over the partial DHT's
// content plane: "the best k documents cluster-wide for a multi-term
// query", the query class ADiT and Akbarinia et al. address for P2P
// systems (see PAPERS.md).
//
// Every peer can score its local content store against a term set: a
// document matches a term when the peer published it under that key, and
// its local score is the sum of the matched terms' weights, shaped by a
// pluggable Scorer (Serve). A coordinator — a member node or a
// client-only RemoteClient — runs a threshold-algorithm round protocol
// (Run): fetch each probed peer's top k_i entries via the OpTopK wire op,
// merge them into a global candidate set under max-aggregation, and
// maintain the threshold bound
//
//	bound = max( per-peer score of the best *unsent* entry,
//	             maxScore for every peer not yet probed )
//
// where maxScore = Σ term weights is the best score any document can
// reach. The threshold invariant: a Scorer must never exceed the term's
// weight, so no unseen document — at a probed peer or an unprobed one —
// can score above the bound. Once the k-th best candidate's score meets
// the bound the query terminates early instead of exhaustively draining
// every peer; documents tied with the k-th score may resolve either way.
//
// The adaptive half lives in Plan: per-peer k_i and the round-size
// schedule are derived from internal/adapt's count-min sketch (term
// weights) and space-saving summary (which peers' content keeps winning
// top-k slots), so hot peers get deep first-round probes and cold peers
// are deferred — and, when the bound is met, never probed at all.
package topk

import (
	"math"
	"sort"
)

// MaxTerms bounds the term set of one query; excess terms are ignored.
const MaxTerms = 64

// MaxK bounds k on both sides of the wire so a hostile request cannot ask
// a peer to serialize its entire store.
const MaxK = 1024

// Req is the payload of one OpTopK probe: score these terms against your
// local content store and return your best K entries from Offset on.
type Req struct {
	// Terms are the metadata keys of the query (see internal/metadata).
	Terms []uint64 `json:"terms"`
	// Weights are the coordinator-assigned term weights, aligned with
	// Terms; a missing or empty slice means uniform weight 1. The
	// coordinator derives them from its count-min sketch, so every peer
	// scores against the same scale and the threshold bound stays sound.
	Weights []float64 `json:"weights,omitempty"`
	// K is how many entries to return — the per-peer k_i of the round.
	K int `json:"k"`
	// Offset skips the peer's first Offset entries: the deepening rounds
	// re-fetch the same deterministic ranking further down.
	Offset int `json:"offset,omitempty"`
}

// Entry is one scored document.
type Entry struct {
	// Doc is the document identifier (the value published under the
	// matched term keys, e.g. an article ID).
	Doc uint64 `json:"doc"`
	// Score is the document's score: at a peer, the local score; in a
	// Result, the best score any probed peer reported for it.
	Score float64 `json:"score"`
}

// Resp is a peer's answer to one probe: its best entries in the requested
// window, highest score first, ties broken by ascending Doc.
type Resp struct {
	Entries []Entry `json:"entries,omitempty"`
	// More is the score of the peer's best entry beyond the returned
	// window — the peer's contribution to the threshold bound. Zero means
	// the peer is drained.
	More float64 `json:"more,omitempty"`
}

// Scorer shapes the contribution of one matched term to a document's
// local score. The threshold invariant requires 0 ≤ Score ≤ weight —
// Serve clamps violations — because the coordinator bounds every unseen
// document by the sum of the weights it handed out.
type Scorer interface {
	Score(term, doc uint64, weight float64) float64
}

// MatchScorer is the default Scorer: a matched term contributes exactly
// its weight, so a document's score is the weighted count of terms it
// matches.
type MatchScorer struct{}

// Score returns the term's full weight.
func (MatchScorer) Score(term, doc uint64, weight float64) float64 { return weight }

// Serve computes one peer's answer to a probe. lookup resolves a term key
// to the document the peer published under it (the content store's view);
// s may be nil for MatchScorer. Serve is deterministic: the ranking is
// (score desc, doc asc), so deepening rounds with increasing Offset walk
// one stable list.
func Serve(req Req, lookup func(term uint64) (doc uint64, ok bool), s Scorer) Resp {
	if s == nil {
		s = MatchScorer{}
	}
	k := req.K
	if k <= 0 {
		return Resp{}
	}
	if k > MaxK {
		k = MaxK
	}
	terms := req.Terms
	if len(terms) > MaxTerms {
		terms = terms[:MaxTerms]
	}
	offset := req.Offset
	if offset < 0 {
		offset = 0
	}

	scores := make(map[uint64]float64, len(terms))
	for i, t := range terms {
		w := 1.0
		if i < len(req.Weights) {
			w = req.Weights[i]
		}
		if !(w > 0) || math.IsInf(w, 0) { // drops NaN and non-positive
			continue
		}
		doc, ok := lookup(t)
		if !ok {
			continue
		}
		c := s.Score(t, doc, w)
		switch {
		case !(c > 0): // NaN or non-positive contributes nothing
			continue
		case c > w: // the threshold invariant, enforced
			c = w
		}
		scores[doc] += c
	}
	if len(scores) == 0 {
		return Resp{}
	}

	all := make([]Entry, 0, len(scores))
	for doc, sc := range scores {
		all = append(all, Entry{Doc: doc, Score: sc})
	}
	sortEntries(all)
	if offset >= len(all) {
		return Resp{}
	}
	end := offset + k
	if end > len(all) {
		end = len(all)
	}
	resp := Resp{Entries: append([]Entry(nil), all[offset:end]...)}
	if end < len(all) {
		resp.More = all[end].Score
	}
	return resp
}

// sortEntries orders entries by (score desc, doc asc) — the one total
// order every peer and every coordinator agrees on.
func sortEntries(es []Entry) {
	sort.Slice(es, func(i, j int) bool {
		if es[i].Score != es[j].Score {
			return es[i].Score > es[j].Score
		}
		return es[i].Doc < es[j].Doc
	})
}
