package topk

import (
	"math"
	"sort"
	"sync"

	"pdht/internal/adapt"
)

// plannerPeers is the capacity of the space-saving summary of productive
// peers. A top-k answer set concentrates on the holders of the hot
// documents — a handful of peers under a Zipf workload — so a small
// summary captures the head that matters.
const plannerPeers = 32

// Probe is one scheduled probe of a Plan: ask Addr for its best K entries.
type Probe struct {
	Addr string
	// K is the per-peer k_i: how deep the first probe of this peer goes.
	K int
	// Local marks the coordinator's own address — served in-process, not
	// a wire leg.
	Local bool
}

// Plan is the probe schedule of one top-k query, in descending priority.
type Plan struct {
	Probes []Probe
	// FirstBatch is how many probes the first round issues; each
	// subsequent round doubles the batch, so a mis-ranked plan still
	// drains the cluster in O(log peers) rounds.
	FirstBatch int
}

// UniformPlan is the non-adaptive baseline: every member probed in one
// full-fan-out round with k_i = k. It is also the exhaustive oracle's
// schedule when k is large enough to drain every peer.
func UniformPlan(members []string, self string, k int) Plan {
	probes := make([]Probe, 0, len(members))
	for _, m := range members {
		probes = append(probes, Probe{Addr: m, K: k, Local: m == self})
	}
	return Plan{Probes: probes, FirstBatch: len(probes)}
}

// Planner derives adaptive probe schedules from the same statistics the
// keyTtl tuner runs on: a count-min view of term popularity (weights) and
// a space-saving summary of which peers' documents keep winning top-k
// slots (probe order and depth). One Planner serves all of a node's
// queries; it is safe for concurrent use.
type Planner struct {
	mu sync.Mutex
	// hot tracks peer-address hashes by how often their entries made a
	// final top-k answer.
	hot *adapt.TopK
	// termCount reads a term's observed query count from the count-min
	// sketch; nil means no sketch (uniform weights).
	termCount func(term uint64) uint64
}

// NewPlanner returns a Planner. termCount may be nil when no frequency
// sketch is available (a client-only coordinator, a non-adaptive node);
// the planner then plans on yield history alone with uniform weights.
func NewPlanner(termCount func(term uint64) uint64) *Planner {
	hot, err := adapt.NewTopK(plannerPeers)
	if err != nil {
		panic(err) // plannerPeers is a positive constant
	}
	return &Planner{hot: hot, termCount: termCount}
}

// Weights derives the per-term weights from the count-min sketch:
// 1 + log₂(1+count), so a hot term outweighs a cold one without letting
// one runaway counter flatten every other term's contribution. Returns
// nil — uniform weight 1 — when no sketch is wired.
func (p *Planner) Weights(terms []uint64) []float64 {
	if p == nil || p.termCount == nil {
		return nil
	}
	w := make([]float64, len(terms))
	for i, t := range terms {
		w[i] = 1 + math.Log2(1+float64(p.termCount(t)))
	}
	return w
}

// Plan schedules probes over members: peers with top-k yield history
// first (deep k_i = k), cold peers after (shallow k_i, deferred to later
// rounds and skipped entirely once the bound is met). self, when a
// member, is always scheduled first — a local scan is free. repl sizes
// the cold-start first round: content is replicated at repl peers, so
// probing fewer than that cannot even cover one document's holders.
func (p *Planner) Plan(members []string, self string, k, repl int) Plan {
	type ranked struct {
		addr string
		heat uint64
	}
	rs := make([]ranked, 0, len(members))
	p.mu.Lock()
	for _, m := range members {
		heat, _ := p.hot.Count(addrHash(m))
		rs = append(rs, ranked{addr: m, heat: heat})
	}
	p.mu.Unlock()
	sort.Slice(rs, func(i, j int) bool {
		if (rs[i].addr == self) != (rs[j].addr == self) {
			return rs[i].addr == self
		}
		if rs[i].heat != rs[j].heat {
			return rs[i].heat > rs[j].heat
		}
		return rs[i].addr < rs[j].addr
	})

	kCold := (k + 1) / 2
	if kCold < 1 {
		kCold = 1
	}
	probes := make([]Probe, len(rs))
	hotN := 0
	for i, r := range rs {
		ki := kCold
		if r.heat > 0 || r.addr == self {
			ki = k
			hotN++
		}
		probes[i] = Probe{Addr: r.addr, K: ki, Local: r.addr == self}
	}

	first := hotN
	if first < repl {
		first = repl
	}
	if first < 2 {
		first = 2
	}
	if first > len(probes) {
		first = len(probes)
	}
	return Plan{Probes: probes, FirstBatch: first}
}

// Credit records that addr contributed an entry to a final top-k answer —
// the feedback loop that concentrates future first rounds on productive
// peers.
func (p *Planner) Credit(addr string) {
	p.mu.Lock()
	p.hot.Observe(addrHash(addr))
	p.mu.Unlock()
}

// Decay halves the yield counts — called on the tuner's window rotation
// so a shifted workload's new hot peers overtake the old within a few
// windows.
func (p *Planner) Decay() {
	p.mu.Lock()
	p.hot.Decay()
	p.mu.Unlock()
}

// addrHash maps a peer address into the space-saving summary's key space
// (FNV-1a, the hash the membership view already uses for its own hashing).
func addrHash(addr string) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(addr); i++ {
		h ^= uint64(addr[i])
		h *= prime64
	}
	return h
}
