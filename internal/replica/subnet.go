// This file is the simulation half's replica subnetwork (§3.3.2,
// [DaHa03]): the peers responsible for a key maintain "an unstructured
// replica subnetwork among each other"; an update reaches one responsible
// peer through the index and is then gossiped to the others, costing
// repl·dup2 messages. Peers that were offline pull missed updates when
// they come back — the hybrid push/pull scheme. The same subnetwork
// carries the query floods of the selection algorithm (eq. 16): a
// responsible peer that cannot answer a query floods its replica group,
// because TTL expiry leaves replicas poorly synchronized.
package replica

import (
	"fmt"
	"math/rand/v2"

	"pdht/internal/netsim"
	"pdht/internal/stats"
)

// Subnet is the unstructured gossip graph among one replica group's
// members. Adjacency is by member index, so a subnet costs O(members)
// regardless of the network size.
type Subnet struct {
	net     *netsim.Network
	members []netsim.PeerID
	index   map[netsim.PeerID]int
	adj     [][]int // member index → neighbor member indices
}

// FloodStats reports one gossip flood.
type FloodStats struct {
	// Messages is the number of transmissions (class is the caller's
	// choice), duplicates included — the repl·dup2 of eq. 9/16.
	Messages int
	// Reached is the number of distinct online members that saw the
	// rumor, including the origin.
	Reached int
	// Found/FoundAt report the first member matching the optional
	// predicate.
	Found   bool
	FoundAt netsim.PeerID
}

// NewSubnet builds a gossip graph among members in which every member opens
// `degree` connections (symmetric, so mean degree ≈ 2·degree — a flood then
// duplicates with factor ≈ 2·degree−1; degree 1–2 matches the paper's
// dup2 = 1.8). members must be distinct.
func NewSubnet(net *netsim.Network, members []netsim.PeerID, degree int, rng *rand.Rand) (*Subnet, error) {
	n := len(members)
	if n < 1 {
		return nil, fmt.Errorf("replica: subnet needs at least one member")
	}
	if degree < 1 && n > 1 {
		return nil, fmt.Errorf("replica: degree %d must be positive", degree)
	}
	if degree >= n && n > 1 {
		degree = n - 1
	}
	s := &Subnet{
		net:     net,
		members: append([]netsim.PeerID(nil), members...),
		index:   make(map[netsim.PeerID]int, n),
		adj:     make([][]int, n),
	}
	for i, p := range s.members {
		if _, dup := s.index[p]; dup {
			return nil, fmt.Errorf("replica: duplicate member %d", p)
		}
		s.index[p] = i
	}
	if n == 1 {
		return s, nil
	}
	seen := make([]map[int]bool, n)
	for i := range seen {
		seen[i] = make(map[int]bool, 2*degree)
	}
	for i := 0; i < n; i++ {
		for opened := 0; opened < degree; {
			j := rng.IntN(n)
			if j == i || seen[i][j] {
				if len(seen[i]) >= n-1 {
					break // fully connected already
				}
				continue
			}
			seen[i][j] = true
			seen[j][i] = true
			s.adj[i] = append(s.adj[i], j)
			s.adj[j] = append(s.adj[j], i)
			opened++
		}
	}
	return s, nil
}

// Members returns the group members (online or not). The slice is owned by
// the subnet.
func (s *Subnet) Members() []netsim.PeerID { return s.members }

// Contains reports whether p is a group member.
func (s *Subnet) Contains(p netsim.PeerID) bool {
	_, ok := s.index[p]
	return ok
}

// Flood gossips a rumor from the given member through all online members:
// every member forwards to all its subnet neighbors except the sender,
// duplicates delivered and counted. match may be nil. Messages are recorded
// under the given class (stats.MsgReplicaFlood for query floods,
// stats.MsgUpdate for update propagation).
func (s *Subnet) Flood(from netsim.PeerID, match func(netsim.PeerID) bool, class stats.MsgClass) FloodStats {
	res := FloodStats{}
	start, ok := s.index[from]
	if !ok || !s.net.Online(from) {
		return res
	}
	visited := make([]bool, len(s.members))
	visited[start] = true
	res.Reached = 1
	if match != nil && match(from) {
		res.Found, res.FoundAt = true, from
	}
	frontier := []int{start}
	for len(frontier) > 0 {
		var next []int
		for _, i := range frontier {
			for _, j := range s.adj[i] {
				q := s.members[j]
				if !s.net.Online(q) {
					continue
				}
				res.Messages++
				if visited[j] {
					continue
				}
				visited[j] = true
				res.Reached++
				if match != nil && !res.Found && match(q) {
					res.Found, res.FoundAt = true, q
				}
				next = append(next, j)
			}
		}
		frontier = next
	}
	s.net.Send(class, int64(res.Messages))
	return res
}

// RandomOnlineMember returns a random online member, for pulls and entry
// points.
func (s *Subnet) RandomOnlineMember(rng *rand.Rand) (netsim.PeerID, bool) {
	var pick netsim.PeerID
	count := 0
	for _, p := range s.members {
		if !s.net.Online(p) {
			continue
		}
		count++
		if rng.IntN(count) == 0 {
			pick = p
		}
	}
	if count == 0 {
		return 0, false
	}
	return pick, true
}
