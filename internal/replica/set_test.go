package replica

import (
	"context"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pdht/internal/keyspace"
)

func TestNewSetPrimaryFirstThenRanking(t *testing.T) {
	key := keyspace.HashString("some hot key")
	group := []string{"addr-a", "addr-b", "addr-c", "addr-d"}
	s := NewSet(key, "addr-c", group)
	if s.Primary != "addr-c" {
		t.Fatalf("primary = %q, want addr-c", s.Primary)
	}
	if len(s.Backups) != 3 || s.Size() != 4 {
		t.Fatalf("backups = %v (size %d), want the 3 other members", s.Backups, s.Size())
	}
	// The backup order is the keyspace ranking: successor-walk order of
	// the hashed addresses from the key.
	points := make([]keyspace.Key, 0, 3)
	rest := make([]string, 0, 3)
	for _, a := range group {
		if a != "addr-c" {
			rest = append(rest, a)
			points = append(points, keyspace.HashString(a))
		}
	}
	want := make([]string, 0, 3)
	for _, idx := range keyspace.RankClosest(key, points) {
		want = append(want, rest[idx])
	}
	if !reflect.DeepEqual(s.Backups, want) {
		t.Fatalf("backups = %v, want ranking order %v", s.Backups, want)
	}
	// All() is primary-first.
	all := s.All()
	if all[0] != "addr-c" || !reflect.DeepEqual(all[1:], s.Backups) {
		t.Fatalf("All() = %v, want primary first then backups", all)
	}
}

func TestNewSetDeterministicAcrossCallers(t *testing.T) {
	// Two peers that agree on the membership list must walk the same
	// failover order — the property that makes the ranking protocol-free.
	key := keyspace.HashString("agreement")
	group := []string{"n1", "n2", "n3", "n4", "n5"}
	shuffled := []string{"n4", "n1", "n5", "n3", "n2"}
	a := NewSet(key, "n2", group)
	b := NewSet(key, "n2", shuffled)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("sets differ with the same members: %+v vs %+v", a, b)
	}
}

func TestNewSetPromotesPrimaryAndDedupes(t *testing.T) {
	key := keyspace.HashString("promotion")
	s := NewSet(key, "", []string{"x", "y", "x", "z", "y"})
	if s.Primary == "" {
		t.Fatal("no primary promoted from the ranking")
	}
	if s.Size() != 3 {
		t.Fatalf("size = %d after dedupe, want 3", s.Size())
	}
	for _, b := range s.Backups {
		if b == s.Primary {
			t.Fatalf("primary %q repeated in backups %v", s.Primary, s.Backups)
		}
	}
	if !s.Contains("x") || !s.Contains("y") || !s.Contains("z") || s.Contains("w") || s.Contains("") {
		t.Fatal("Contains disagrees with membership")
	}
	if got := NewSet(key, "solo", nil); got.Primary != "solo" || got.Size() != 1 {
		t.Fatalf("empty group set = %+v, want just the primary", got)
	}
}

func TestFanoutRunsAllLegsConcurrently(t *testing.T) {
	// Every leg blocks until all legs have started: serial execution would
	// deadlock, so completing at all proves concurrency.
	addrs := []string{"a", "b", "c", "d"}
	var started sync.WaitGroup
	started.Add(len(addrs))
	done := make(chan struct{})
	ok := Fanout(context.Background(), addrs, func(ctx context.Context, addr string) bool {
		started.Done()
		started.Wait()
		return addr != "c"
	})
	close(done)
	if ok != 3 {
		t.Fatalf("Fanout reported %d successful legs, want 3", ok)
	}
}

func TestFanoutStopsSpawningWhenCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var legs atomic.Int32
	ok := Fanout(ctx, []string{"a", "b", "c"}, func(ctx context.Context, addr string) bool {
		legs.Add(1)
		return true
	})
	if legs.Load() != 0 || ok != 0 {
		t.Fatalf("cancelled Fanout ran %d legs (ok %d), want none", legs.Load(), ok)
	}

	// Legs already in flight keep their context: cancellation reaches them
	// through ctx, not by abandonment.
	ctx2, cancel2 := context.WithCancel(context.Background())
	var sawCancel atomic.Bool
	var once sync.Once
	Fanout(ctx2, []string{"a", "b"}, func(ctx context.Context, addr string) bool {
		once.Do(cancel2)
		select {
		case <-ctx.Done():
			sawCancel.Store(true)
		case <-time.After(2 * time.Second):
		}
		return false
	})
	if !sawCancel.Load() {
		t.Fatal("in-flight leg never observed the cancellation")
	}
}
