package replica

import (
	"math/rand/v2"
	"testing"

	"pdht/internal/keyspace"
	"pdht/internal/netsim"
	"pdht/internal/stats"
)

func membersRange(n int) []netsim.PeerID {
	out := make([]netsim.PeerID, n)
	for i := range out {
		out[i] = netsim.PeerID(i * 3) // non-contiguous IDs on purpose
	}
	return out
}

func newTestSubnet(t *testing.T, netSize, members, degree int, seed uint64) (*Subnet, *netsim.Network, *rand.Rand) {
	t.Helper()
	net := netsim.New(netSize)
	rng := rand.New(rand.NewPCG(seed, seed^0xfeed))
	s, err := NewSubnet(net, membersRange(members), degree, rng)
	if err != nil {
		t.Fatal(err)
	}
	return s, net, rng
}

func TestNewSubnetValidation(t *testing.T) {
	net := netsim.New(100)
	rng := rand.New(rand.NewPCG(1, 2))
	if _, err := NewSubnet(net, nil, 2, rng); err == nil {
		t.Error("empty member list accepted")
	}
	if _, err := NewSubnet(net, membersRange(5), 0, rng); err == nil {
		t.Error("zero degree accepted")
	}
	if _, err := NewSubnet(net, []netsim.PeerID{1, 1}, 1, rng); err == nil {
		t.Error("duplicate members accepted")
	}
	// Degree clamping: asking for more connections than peers exist.
	if _, err := NewSubnet(net, membersRange(3), 10, rng); err != nil {
		t.Errorf("over-large degree should clamp, got %v", err)
	}
	// A single-member subnet is legal (repl = 1).
	if _, err := NewSubnet(net, membersRange(1), 0, rng); err != nil {
		t.Errorf("singleton subnet rejected: %v", err)
	}
}

func TestSubnetFloodReachesAllOnline(t *testing.T) {
	s, net, _ := newTestSubnet(t, 200, 50, 2, 3)
	fs := s.Flood(s.Members()[0], nil, stats.MsgUpdate)
	if fs.Reached != 50 {
		t.Errorf("flood reached %d of 50 members", fs.Reached)
	}
	if fs.Messages < 49 {
		t.Errorf("flood sent only %d messages", fs.Messages)
	}
	// dup2 ballpark: mean degree ≈ 4, so duplicates ≈ 3× reach; the
	// paper's repl·dup2 = 1.8·repl says messages stay a small multiple
	// of the group size.
	if fs.Messages > 50*6 {
		t.Errorf("flood sent %d messages for 50 members — duplication way off", fs.Messages)
	}
	if got := net.Counters().Get(stats.MsgUpdate); got != int64(fs.Messages) {
		t.Error("counter mismatch")
	}
}

func TestSubnetFloodSkipsOffline(t *testing.T) {
	s, net, _ := newTestSubnet(t, 200, 40, 2, 4)
	for i, p := range s.Members() {
		if i%2 == 1 {
			net.SetOnline(p, false)
		}
	}
	fs := s.Flood(s.Members()[0], nil, stats.MsgUpdate)
	if fs.Reached > 20 {
		t.Errorf("reached %d members but only 20 online", fs.Reached)
	}
}

func TestSubnetFloodFromOfflineOrNonMember(t *testing.T) {
	s, net, _ := newTestSubnet(t, 200, 10, 2, 5)
	if fs := s.Flood(199, nil, stats.MsgUpdate); fs.Reached != 0 {
		t.Error("non-member flooded the subnet")
	}
	p := s.Members()[0]
	net.SetOnline(p, false)
	if fs := s.Flood(p, nil, stats.MsgUpdate); fs.Reached != 0 {
		t.Error("offline member flooded the subnet")
	}
}

func TestSubnetFloodMatch(t *testing.T) {
	s, _, _ := newTestSubnet(t, 200, 30, 2, 6)
	want := s.Members()[17]
	fs := s.Flood(s.Members()[0], func(p netsim.PeerID) bool { return p == want }, stats.MsgReplicaFlood)
	if !fs.Found || fs.FoundAt != want {
		t.Errorf("flood match failed: %+v", fs)
	}
}

func TestSubnetContains(t *testing.T) {
	s, _, _ := newTestSubnet(t, 100, 5, 2, 7)
	if !s.Contains(s.Members()[2]) {
		t.Error("member not contained")
	}
	if s.Contains(99) {
		t.Error("non-member contained")
	}
}

func TestRandomOnlineMember(t *testing.T) {
	s, net, rng := newTestSubnet(t, 100, 10, 2, 8)
	for _, p := range s.Members()[1:] {
		net.SetOnline(p, false)
	}
	for i := 0; i < 20; i++ {
		p, ok := s.RandomOnlineMember(rng)
		if !ok || p != s.Members()[0] {
			t.Fatalf("RandomOnlineMember = %v,%v", p, ok)
		}
	}
	net.SetOnline(s.Members()[0], false)
	if _, ok := s.RandomOnlineMember(rng); ok {
		t.Error("found an online member in a dead group")
	}
}

func TestVersionedUpdatePropagates(t *testing.T) {
	s, net, _ := newTestSubnet(t, 300, 50, 2, 9)
	v := NewVersioned(net, s)
	key := keyspace.HashString("article-7")
	fs := v.Update(s.Members()[0], key)
	if fs.Reached != 50 {
		t.Fatalf("update reached %d members", fs.Reached)
	}
	if v.Latest(key) != 1 {
		t.Errorf("Latest = %d, want 1", v.Latest(key))
	}
	if got := v.StaleMembers(key); got != 0 {
		t.Errorf("%d stale members after full propagation", got)
	}
	for _, p := range s.Members() {
		if v.VersionAt(p, key) != 1 {
			t.Errorf("member %d at version %d", p, v.VersionAt(p, key))
		}
	}
}

func TestVersionedOfflineMembersGoStale(t *testing.T) {
	s, net, _ := newTestSubnet(t, 300, 40, 2, 10)
	v := NewVersioned(net, s)
	key := keyspace.HashString("k")
	offline := s.Members()[:10]
	for _, p := range offline {
		net.SetOnline(p, false)
	}
	v.Update(s.Members()[20], key)
	if got := v.StaleMembers(key); got != 10 {
		t.Errorf("StaleMembers = %d, want 10", got)
	}
	for _, p := range offline {
		if v.VersionAt(p, key) != 0 {
			t.Errorf("offline member %d received the update", p)
		}
	}
}

func TestVersionedPullSyncOnRejoin(t *testing.T) {
	s, net, rng := newTestSubnet(t, 300, 40, 2, 11)
	v := NewVersioned(net, s)
	k1, k2 := keyspace.HashString("a"), keyspace.HashString("b")
	p := s.Members()[5]
	net.SetOnline(p, false)
	v.Update(s.Members()[0], k1)
	v.Update(s.Members()[0], k2)
	v.Update(s.Members()[0], k1) // k1 twice: version 2

	net.SetOnline(p, true)
	before := net.Counters().Get(stats.MsgUpdate)
	refreshed, ok := v.PullSync(p, rng)
	if !ok {
		t.Fatal("pull failed with the group online")
	}
	if refreshed != 2 {
		t.Errorf("refreshed %d keys, want 2", refreshed)
	}
	if net.Counters().Get(stats.MsgUpdate) != before+1 {
		t.Error("pull must cost exactly one request message")
	}
	if v.VersionAt(p, k1) != 2 || v.VersionAt(p, k2) != 1 {
		t.Errorf("versions after pull: k1=%d k2=%d", v.VersionAt(p, k1), v.VersionAt(p, k2))
	}
	if v.StaleMembers(k1) != 0 {
		t.Errorf("still %d stale members for k1", v.StaleMembers(k1))
	}
}

func TestVersionedPullSyncEdgeCases(t *testing.T) {
	s, net, rng := newTestSubnet(t, 100, 5, 2, 12)
	v := NewVersioned(net, s)
	if _, ok := v.PullSync(99, rng); ok {
		t.Error("non-member pulled successfully")
	}
	for _, p := range s.Members() {
		net.SetOnline(p, false)
	}
	if _, ok := v.PullSync(s.Members()[0], rng); ok {
		t.Error("pull succeeded from a dead group")
	}
}

func TestVersionedUpdateFromOfflinePeerIsLost(t *testing.T) {
	s, net, _ := newTestSubnet(t, 100, 10, 2, 13)
	v := NewVersioned(net, s)
	p := s.Members()[0]
	net.SetOnline(p, false)
	key := keyspace.HashString("k")
	fs := v.Update(p, key)
	if fs.Reached != 0 {
		t.Errorf("offline origin reached %d members", fs.Reached)
	}
	// The version counter advanced but nobody holds it — the paper's
	// poorly synchronized replicas, measurable as staleness.
	if v.StaleMembers(key) != 10 {
		t.Errorf("StaleMembers = %d, want 10", v.StaleMembers(key))
	}
}
