package replica

import (
	"reflect"
	"sort"
	"testing"

	"pdht/internal/keyspace"
)

// staticView is a test View: one fixed replica set for every key, over a
// fixed membership.
type staticView struct {
	set     []string
	members map[string]bool
}

func newStaticView(set []string, members ...string) staticView {
	v := staticView{set: set, members: make(map[string]bool)}
	for _, m := range members {
		v.members[m] = true
	}
	return v
}

func (v staticView) Replicas(keyspace.Key) []string { return v.set }
func (v staticView) Contains(addr string) bool      { return v.members[addr] }

func pushTargets(plan []Push) []string {
	out := make([]string, len(plan))
	for i, p := range plan {
		out[i] = p.To
	}
	sort.Strings(out)
	return out
}

func TestPlanRepairDesignatedPusher(t *testing.T) {
	// Set moves from {a,b,c} to {a,b,d}: c died, d is the new member.
	old := newStaticView([]string{"a", "b", "c"}, "a", "b", "c")
	next := newStaticView([]string{"a", "b", "d"}, "a", "b", "d")
	entries := []Entry{{Key: 1, Value: 10, TTL: 7}}

	// The first surviving member of the old set pushes to the newcomer…
	plan := PlanRepair(old, next, "a", entries)
	if want := []string{"d"}; !reflect.DeepEqual(pushTargets(plan), want) {
		t.Fatalf("pusher a plans %v, want %v", pushTargets(plan), want)
	}
	if plan[0].TTL != 7 || plan[0].Value != 10 {
		t.Fatalf("push %+v lost the remaining TTL or value", plan[0])
	}
	// …and every other survivor stays silent.
	if plan := PlanRepair(old, next, "b", entries); len(plan) != 0 {
		t.Fatalf("survivor b plans %v, want nothing", plan)
	}
	// A holder outside both sets (a stray copy while the old set still has
	// a survivor) also stays silent — the survivors own the repair.
	if plan := PlanRepair(old, next, "z", entries); len(plan) != 0 {
		t.Fatalf("stray holder z plans %v, want nothing", plan)
	}
}

func TestPlanRepairFirstSurvivorWins(t *testing.T) {
	// a died: b becomes the designated pusher, c stays silent.
	old := newStaticView([]string{"a", "b", "c"}, "a", "b", "c")
	next := newStaticView([]string{"b", "c", "d"}, "b", "c", "d")
	entries := []Entry{{Key: 2, Value: 20, TTL: 3}}
	if plan := PlanRepair(old, next, "b", entries); !reflect.DeepEqual(pushTargets(plan), []string{"d"}) {
		t.Fatalf("pusher b plans %v, want [d]", pushTargets(plan))
	}
	if plan := PlanRepair(old, next, "c", entries); len(plan) != 0 {
		t.Fatalf("survivor c plans %v, want nothing", plan)
	}
}

func TestPlanRepairOrphanRescue(t *testing.T) {
	// The entire old set {x,y} died; self holds a copy from an even older
	// view. Without rescue the entry is unreachable despite being alive.
	old := newStaticView([]string{"x", "y"}, "x", "y")
	next := newStaticView([]string{"a", "b"}, "a", "b", "self")
	entries := []Entry{{Key: 3, Value: 30, TTL: 5}}
	plan := PlanRepair(old, next, "self", entries)
	if want := []string{"a", "b"}; !reflect.DeepEqual(pushTargets(plan), want) {
		t.Fatalf("orphan rescue plans %v, want %v", pushTargets(plan), want)
	}
	// A rescuer inside the new set does not push to itself.
	next2 := newStaticView([]string{"a", "self"}, "a", "self")
	plan = PlanRepair(old, next2, "self", entries)
	if want := []string{"a"}; !reflect.DeepEqual(pushTargets(plan), want) {
		t.Fatalf("in-set rescuer plans %v, want %v", pushTargets(plan), want)
	}
}

func TestPlanRepairSkipsLapsedAndUnmovedEntries(t *testing.T) {
	old := newStaticView([]string{"a", "b"}, "a", "b")
	// Set unchanged: nothing to push even for the designated pusher.
	if plan := PlanRepair(old, old, "a", []Entry{{Key: 4, TTL: 9}}); len(plan) != 0 {
		t.Fatalf("unmoved set plans %v, want nothing", plan)
	}
	next := newStaticView([]string{"a", "c"}, "a", "c")
	// Lapsed between snapshot and planning: dropped.
	if plan := PlanRepair(old, next, "a", []Entry{{Key: 5, TTL: 0}}); len(plan) != 0 {
		t.Fatalf("lapsed entry planned %v, want nothing", plan)
	}
}
