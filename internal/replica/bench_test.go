package replica

import (
	"math/rand/v2"
	"testing"

	"pdht/internal/keyspace"
	"pdht/internal/netsim"
	"pdht/internal/stats"
)

func benchSubnet(b *testing.B, members int) (*Subnet, *netsim.Network, *rand.Rand) {
	b.Helper()
	net := netsim.New(members * 3)
	rng := rand.New(rand.NewPCG(1, 2))
	s, err := NewSubnet(net, membersRange(members), 2, rng)
	if err != nil {
		b.Fatal(err)
	}
	return s, net, rng
}

func BenchmarkSubnetFlood(b *testing.B) {
	s, _, _ := benchSubnet(b, 50)
	origin := s.Members()[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Flood(origin, nil, stats.MsgReplicaFlood)
	}
}

func BenchmarkVersionedUpdate(b *testing.B) {
	s, net, _ := benchSubnet(b, 50)
	v := NewVersioned(net, s)
	key := keyspace.HashString("bench")
	origin := s.Members()[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Update(origin, key)
	}
}

func BenchmarkPullSync(b *testing.B) {
	s, net, rng := benchSubnet(b, 50)
	v := NewVersioned(net, s)
	for i := 0; i < 20; i++ {
		v.Update(s.Members()[0], keyspace.Key(uint64(i)*0x9e3779b97f4a7c15))
	}
	p := s.Members()[1]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := v.PullSync(p, rng); !ok {
			b.Fatal("pull failed")
		}
	}
}
