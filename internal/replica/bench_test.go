package replica

import (
	"math/rand/v2"
	"testing"

	"pdht/internal/keyspace"
	"pdht/internal/netsim"
	"pdht/internal/stats"
)

func benchSubnet(b *testing.B, members int) (*Subnet, *netsim.Network, *rand.Rand) {
	b.Helper()
	net := netsim.New(members * 3)
	rng := rand.New(rand.NewPCG(1, 2))
	s, err := NewSubnet(net, membersRange(members), 2, rng)
	if err != nil {
		b.Fatal(err)
	}
	return s, net, rng
}

func BenchmarkSubnetFlood(b *testing.B) {
	s, _, _ := benchSubnet(b, 50)
	origin := s.Members()[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Flood(origin, nil, stats.MsgReplicaFlood)
	}
}

func BenchmarkVersionedUpdate(b *testing.B) {
	s, net, _ := benchSubnet(b, 50)
	v := NewVersioned(net, s)
	key := keyspace.HashString("bench")
	origin := s.Members()[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Update(origin, key)
	}
}

func BenchmarkPullSync(b *testing.B) {
	s, net, rng := benchSubnet(b, 50)
	v := NewVersioned(net, s)
	for i := 0; i < 20; i++ {
		v.Update(s.Members()[0], keyspace.Key(uint64(i)*0x9e3779b97f4a7c15))
	}
	p := s.Members()[1]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := v.PullSync(p, rng); !ok {
			b.Fatal("pull failed")
		}
	}
}

func BenchmarkNewSet(b *testing.B) {
	// The live hot path: every query builds the probe order from the
	// routed primary and the replica group.
	group := []string{"10.0.0.1:7001", "10.0.0.2:7001", "10.0.0.3:7001", "10.0.0.4:7001"}
	key := keyspace.HashString("bench-set")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewSet(key, group[2], group)
	}
}

func BenchmarkPlanRepair(b *testing.B) {
	// 256 held entries across a 6→5 member transition, the handoff
	// planner's working size in the cluster tests.
	old := benchView{set: []string{"a", "b", "c"}, members: "abcdef"}
	next := benchView{set: []string{"a", "b", "d"}, members: "abdef"}
	entries := make([]Entry, 256)
	for i := range entries {
		entries[i] = Entry{Key: keyspace.Key(uint64(i) * 0x9e3779b97f4a7c15), Value: uint64(i), TTL: 50}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PlanRepair(old, next, "a", entries)
	}
}

// benchView is a minimal repair-planner View for benchmarks.
type benchView struct {
	set     []string
	members string
}

func (v benchView) Replicas(keyspace.Key) []string { return v.set }
func (v benchView) Contains(addr string) bool {
	for i := 0; i < len(v.members); i++ {
		if string(v.members[i]) == addr {
			return true
		}
	}
	return false
}
